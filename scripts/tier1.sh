#!/usr/bin/env bash
# Tier-1 gate: release build, full test suite, and lint-clean clippy.
# Run from anywhere; operates on the repository that contains this script.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline --workspace
cargo test --offline --workspace -q
# The thread-safe substrate must behave identically with an inline pool and
# with worker threads (the cell scheduler and kernel pool both key off the
# pool size, which CAE_NUM_THREADS fixes per process).
CAE_NUM_THREADS=1 cargo test --offline --workspace -q
CAE_NUM_THREADS=4 cargo test --offline --workspace -q
# Tracing is observational: the whole suite must also pass with every span,
# counter and gauge recorded ...
CAE_TRACE=1 cargo test --offline --workspace -q
# The SIMD layer's backends are bit-identical by contract: the full suite
# must pass with the dispatch forced to the scalar fallback, and the parity
# suite must hold under both the scalar and the auto-detected backend.
CAE_SIMD=scalar cargo test --offline --workspace -q
CAE_SIMD=scalar cargo test --release --offline -p cae-tensor --test simd_parity -q
cargo test --release --offline -p cae-tensor --test simd_parity -q
# ... and a traced table run must reproduce the untraced report
# byte-for-byte.
trace_tmp="$(mktemp -d)"
trap 'rm -rf "$trace_tmp"' EXIT
CAE_BUDGET=smoke CAE_TRACE=0 CAE_RESULTS_DIR="$trace_tmp/off" \
  cargo run --release --offline -p cae-bench --bin table02 >/dev/null
CAE_BUDGET=smoke CAE_TRACE=1 CAE_RESULTS_DIR="$trace_tmp/on" \
  cargo run --release --offline -p cae-bench --bin table02 >/dev/null
cmp "$trace_tmp/off/table_ii.json" "$trace_tmp/on/table_ii.json"
test -s "$trace_tmp/on/TRACE_table_ii.json"
# Backend bit-identity end to end: a scalar-forced table run must reproduce
# the auto-detected report byte-for-byte.
CAE_BUDGET=smoke CAE_TRACE=0 CAE_SIMD=scalar CAE_RESULTS_DIR="$trace_tmp/scalar" \
  cargo run --release --offline -p cae-bench --bin table02 >/dev/null
cmp "$trace_tmp/off/table_ii.json" "$trace_tmp/scalar/table_ii.json"
# Inference-path bit-identity: with fusion disabled (CAE_FUSE=0) the frozen
# graph must reproduce the legacy Var-based eval path (CAE_INFER=0 routes
# every eval forward through the pre-refactor code) byte-for-byte across a
# full table run.
CAE_BUDGET=smoke CAE_TRACE=0 CAE_INFER=0 CAE_RESULTS_DIR="$trace_tmp/legacy" \
  cargo run --release --offline -p cae-bench --bin table02 >/dev/null
CAE_BUDGET=smoke CAE_TRACE=0 CAE_FUSE=0 CAE_RESULTS_DIR="$trace_tmp/unfused" \
  cargo run --release --offline -p cae-bench --bin table02 >/dev/null
cmp "$trace_tmp/legacy/table_ii.json" "$trace_tmp/unfused/table_ii.json"
# ... and the frozen-graph parity suite must hold under both the scalar and
# the auto-detected SIMD backend.
CAE_SIMD=scalar cargo test --release --offline -p cae-nn --test frozen_parity -q
cargo test --release --offline -p cae-nn --test frozen_parity -q
# Fault isolation: with deterministic injection and no retries the table
# must still complete, rendering the injected failures as FAILED rows —
# annotated (the run is traced) with a training-health verdict saying why.
CAE_BUDGET=smoke CAE_TRACE=1 CAE_FAULT_INJECT=0.2:7 CAE_CELL_RETRIES=0 \
  CAE_RESULTS_DIR="$trace_tmp/fault" \
  cargo run --release --offline -p cae-bench --bin table02 >/dev/null
grep -q 'FAILED(' "$trace_tmp/fault/table_ii.json"
grep -q 'injected fault' "$trace_tmp/fault/table_ii.json"
grep -q 'health:' "$trace_tmp/fault/table_ii.json"
# ... and with retries enough to absorb every injected fault, the report
# must be byte-identical to the uninjected baseline (retries re-run the
# identical cell seed).
CAE_BUDGET=smoke CAE_TRACE=0 CAE_FAULT_INJECT=0.2:7 CAE_CELL_RETRIES=20 \
  CAE_RESULTS_DIR="$trace_tmp/retry" \
  cargo run --release --offline -p cae-bench --bin table02 >/dev/null
cmp "$trace_tmp/off/table_ii.json" "$trace_tmp/retry/table_ii.json"
# Profiler smoke: `profile <id>` must produce flamegraph-folded stacks and
# a self-time table that accounts for the experiment span's wall-clock.
cargo run --release --offline -- profile table02 --budget smoke \
  --out "$trace_tmp/profile" | tee "$trace_tmp/profile_out.txt" >/dev/null
test -s "$trace_tmp/profile/PROFILE_table02.txt"
grep -q 'self-time coverage' "$trace_tmp/profile_out.txt"
# Metrics smoke: metric recording (enabled here via the exporter-interval
# knob) must not perturb results — the run must reproduce the untraced
# report byte-for-byte — and the exposition must be byte-stable: two
# snapshots of the same quiescent process render identical
# METRICS_table02.json.
CAE_BUDGET=smoke CAE_TRACE=0 CAE_METRICS_INTERVAL_MS=200 \
  CAE_RESULTS_DIR="$trace_tmp/metrics_on" \
  cargo run --release --offline -p cae-bench --bin table02 >/dev/null
cmp "$trace_tmp/off/table_ii.json" "$trace_tmp/metrics_on/table_ii.json"
cargo run --release --offline -- metrics table02 --budget smoke \
  --out "$trace_tmp/m1" --dup "$trace_tmp/m2" >/dev/null
cmp "$trace_tmp/m1/METRICS_table02.json" "$trace_tmp/m2/METRICS_table02.json"
grep -q 'cae_serve_phase\|cae_gemm_calls' "$trace_tmp/m1/metrics_table02.prom"
# Serving smoke: a tiny pretrained student served over a simulated request
# trace must produce a fresh non-empty BENCH_serve.json reporting
# byte-identical predictions across batching configurations ...
CAE_BUDGET=smoke \
  cargo run --release --offline -p cae-bench --bin bench_serve >/dev/null
test -s BENCH_serve.json
grep -q '"predictions_identical": true' BENCH_serve.json
# ... and two serve-bench runs with different batching cutoffs must write
# byte-identical prediction logs (the serve determinism invariant, checked
# by external byte-diff rather than in-process comparison).
CAE_BUDGET=smoke cargo run --release --offline -- serve-bench \
  --requests 200 --clients 4 --max-batch 8 --max-latency-us 20000 \
  --log "$trace_tmp/serve_a.log" >/dev/null
CAE_BUDGET=smoke cargo run --release --offline -- serve-bench \
  --requests 200 --clients 8 --max-batch 32 --max-latency-us 50000 \
  --log "$trace_tmp/serve_b.log" >/dev/null
cmp "$trace_tmp/serve_a.log" "$trace_tmp/serve_b.log"
# Cell-parallel scaling smoke: a 2-thread cell-parallel run must reproduce
# the serial report byte-for-byte, with and without GEMM autotuning — and,
# when the host actually has the cores, it must not be slower than serial
# (the cooperative scheduler's whole point). Skipped on single-core hosts:
# time-slicing two pool threads on one core measures nothing.
if [ "$(nproc)" -ge 2 ]; then
  serial_start=$(date +%s%N)
  CAE_BUDGET=smoke CAE_TRACE=0 CAE_NUM_THREADS=1 CAE_CELL_PARALLEL=0 \
    CAE_RESULTS_DIR="$trace_tmp/scale_serial" \
    cargo run --release --offline -p cae-bench --bin table02 >/dev/null
  serial_ns=$(( $(date +%s%N) - serial_start ))
  par_start=$(date +%s%N)
  CAE_BUDGET=smoke CAE_TRACE=0 CAE_NUM_THREADS=2 CAE_CELL_PARALLEL=1 \
    CAE_RESULTS_DIR="$trace_tmp/scale_2t" \
    cargo run --release --offline -p cae-bench --bin table02 >/dev/null
  par_ns=$(( $(date +%s%N) - par_start ))
  cmp "$trace_tmp/scale_serial/table_ii.json" "$trace_tmp/scale_2t/table_ii.json"
  CAE_BUDGET=smoke CAE_TRACE=0 CAE_NUM_THREADS=2 CAE_CELL_PARALLEL=1 \
    CAE_AUTOTUNE=0 CAE_RESULTS_DIR="$trace_tmp/scale_2t_notune" \
    cargo run --release --offline -p cae-bench --bin table02 >/dev/null
  cmp "$trace_tmp/scale_serial/table_ii.json" "$trace_tmp/scale_2t_notune/table_ii.json"
  # Sanity, not a benchmark: allow 10% noise headroom, but a 2-thread run
  # that is materially slower than serial means the levels are fighting.
  if [ $((par_ns * 10)) -gt $((serial_ns * 11)) ]; then
    echo "2-thread cell-parallel run slower than serial: ${par_ns}ns vs ${serial_ns}ns" >&2
    exit 1
  fi
else
  echo "scaling smoke skipped: host has $(nproc) core(s)"
fi
# Regression gate: current BENCH_*.json records vs the committed baselines
# (tolerance bands in crates/bench/src/compare.rs). Also asserts the
# disabled-path tracing overhead stays under its 3% cap.
cargo run --release --offline -p cae-bench --bin bench_compare
cargo clippy --offline --workspace --all-targets -- -D warnings
