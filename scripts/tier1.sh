#!/usr/bin/env bash
# Tier-1 gate: release build, full test suite, and lint-clean clippy.
# Run from anywhere; operates on the repository that contains this script.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline --workspace
cargo test --offline --workspace -q
cargo clippy --offline --workspace --all-targets -- -D warnings
