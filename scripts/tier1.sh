#!/usr/bin/env bash
# Tier-1 gate: release build, full test suite, and lint-clean clippy.
# Run from anywhere; operates on the repository that contains this script.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline --workspace
cargo test --offline --workspace -q
# The thread-safe substrate must behave identically with an inline pool and
# with worker threads (the cell scheduler and kernel pool both key off the
# pool size, which CAE_NUM_THREADS fixes per process).
CAE_NUM_THREADS=1 cargo test --offline --workspace -q
CAE_NUM_THREADS=4 cargo test --offline --workspace -q
cargo clippy --offline --workspace --all-targets -- -D warnings
