//! Custom bench harness: regenerates every paper table and figure.
//!
//! Run with `cargo bench -p cae-bench --bench tables`. The budget defaults
//! to `fast` (minutes on two CPU cores); override with
//! `CAE_BUDGET=smoke|fast|full`.

use std::time::Instant;

fn main() {
    // Respect `cargo bench -- <filter>`: run only experiments whose name
    // contains the filter. `--bench`/flags are ignored.
    let filters: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| !a.starts_with('-'))
        .collect();
    let budget = cae_bench::budget_from_env("fast");
    println!("# CAE-DFKD table benchmarks (budget: {budget:?})\n");
    let mut total = 0.0f64;
    for name in cae_bench::paper_experiment_ids() {
        if !filters.is_empty() && !filters.iter().any(|f| name.contains(f.as_str())) {
            continue;
        }
        let start = Instant::now();
        let report = cae_bench::run_one(name, &budget);
        let secs = start.elapsed().as_secs_f64();
        total += secs;
        cae_bench::emit(&report);
        println!("bench {name}: regenerated in {secs:.1}s\n");
    }
    println!("# total: {total:.1}s");
}
