//! Criterion micro-benchmarks of the hot kernels behind the DFKD loop.

use cae_core::cend::CendLayer;
use cae_core::cncl::{cncl_loss, CnclConfig};
use cae_core::config::{DfkdConfig, ExperimentBudget};
use cae_core::memory::MemoryBank;
use cae_core::method::MethodSpec;
use cae_core::teacher::train_supervised;
use cae_core::trainer::DfkdTrainer;
use cae_data::world::VisionWorld;
use cae_data::SplitDataset;
use cae_nn::models::{Arch, DfkdGenerator, GeneratorConfig};
use cae_nn::module::{Classifier, ForwardCtx, Generator};
use cae_tensor::conv::Conv2dSpec;
use cae_tensor::linalg;
use cae_tensor::rng::TensorRng;
use cae_tensor::{Tensor, Var};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_matmul(c: &mut Criterion) {
    let mut rng = TensorRng::seed_from(0);
    let a = rng.normal_tensor(&[64, 128], 0.0, 1.0);
    let b = rng.normal_tensor(&[128, 96], 0.0, 1.0);
    c.bench_function("matmul_64x128x96", |bench| {
        bench.iter(|| black_box(linalg::matmul(black_box(&a), black_box(&b))))
    });
}

fn bench_conv2d(c: &mut Criterion) {
    let mut rng = TensorRng::seed_from(1);
    let x = rng.normal_tensor(&[8, 8, 12, 12], 0.0, 1.0);
    let w = rng.normal_tensor(&[16, 8, 3, 3], 0.0, 0.3);
    let spec = Conv2dSpec::new(3, 1, 1);
    c.bench_function("conv2d_8x8x12x12_to_16", |bench| {
        bench.iter(|| black_box(cae_tensor::conv::conv2d(black_box(&x), &w, None, spec)))
    });
    c.bench_function("conv2d_backward_same", |bench| {
        let y = cae_tensor::conv::conv2d(&x, &w, None, spec);
        bench.iter(|| {
            black_box(cae_tensor::conv::conv2d_backward(
                black_box(&x),
                &w,
                &y,
                spec,
            ))
        })
    });
}

/// Layer shapes that actually occur in the DFKD training loop: the
/// generator's latent-to-feature projection, the CNCL similarity matrix,
/// the linear-head weight gradient, and a strided student trunk conv.
fn bench_dfkd_layer_shapes(c: &mut Criterion) {
    let mut rng = TensorRng::seed_from(9);
    let z = rng.normal_tensor(&[16, 64], 0.0, 1.0);
    let wfc = rng.normal_tensor(&[64, 216], 0.0, 0.1);
    c.bench_function("matmul_generator_fc_16x64x216", |bench| {
        bench.iter(|| black_box(linalg::matmul(black_box(&z), &wfc)))
    });

    let anchors = rng.normal_tensor(&[16, 64], 0.0, 1.0);
    let candidates = rng.normal_tensor(&[64, 64], 0.0, 1.0);
    c.bench_function("matmul_nt_cncl_sim_16x64x64", |bench| {
        bench.iter(|| black_box(linalg::matmul_nt(black_box(&anchors), &candidates)))
    });

    let emb = rng.normal_tensor(&[16, 64], 0.0, 1.0);
    let dlogits = rng.normal_tensor(&[16, 64], 0.0, 1.0);
    c.bench_function("matmul_tn_head_grad_64x16x64", |bench| {
        bench.iter(|| black_box(linalg::matmul_tn(black_box(&emb), &dlogits)))
    });

    let xs = rng.normal_tensor(&[16, 12, 12, 12], 0.0, 1.0);
    let ws = rng.normal_tensor(&[24, 12, 3, 3], 0.0, 0.3);
    let spec = Conv2dSpec::new(3, 2, 1);
    c.bench_function("conv2d_stride2_16x12x12x12_to_24", |bench| {
        bench.iter(|| black_box(cae_tensor::conv::conv2d(black_box(&xs), &ws, None, spec)))
    });
    c.bench_function("conv2d_stride2_backward_same", |bench| {
        let y = cae_tensor::conv::conv2d(&xs, &ws, None, spec);
        bench.iter(|| {
            black_box(cae_tensor::conv::conv2d_backward(
                black_box(&xs),
                &ws,
                &y,
                spec,
            ))
        })
    });
}

fn bench_cend(c: &mut Criterion) {
    let mut rng = TensorRng::seed_from(2);
    let e_off = rng.normal_tensor(&[20, 64], 0.0, 1.0);
    let layer = CendLayer::with_default_sources(4, 0.3);
    let classes: Vec<usize> = (0..16).map(|i| i % 20).collect();
    c.bench_function("cend_diffuse_batch_16x64", |bench| {
        bench.iter(|| black_box(layer.diffuse_batch(&e_off, &classes, &mut rng)))
    });
}

fn bench_memory_bank(c: &mut Criterion) {
    let mut rng = TensorRng::seed_from(3);
    let images = rng.normal_tensor(&[16, 3, 12, 12], 0.0, 1.0);
    let labels: Vec<usize> = (0..16).collect();
    c.bench_function("memory_push_sample_16", |bench| {
        let mut bank = MemoryBank::new(512, &[3, 12, 12]);
        bank.push_batch(&images, &labels);
        bench.iter(|| {
            bank.push_batch(&images, &labels);
            black_box(bank.sample_batch(16, &mut rng))
        })
    });
}

struct LoopFixture {
    teacher: Box<dyn Classifier>,
}

fn loop_fixture() -> LoopFixture {
    let world = VisionWorld::new(6, 12, 33);
    let split = SplitDataset::sample(&world, 24, 8, 3);
    let mut rng = TensorRng::seed_from(4);
    let teacher = Arch::ResNet34.build(6, 6, &mut rng);
    train_supervised(teacher.as_ref(), &split.train, 40, 16, 0.1, &mut rng);
    LoopFixture { teacher }
}

fn make_trainer<'a>(fix: &'a LoopFixture, spec: &MethodSpec) -> DfkdTrainer<'a> {
    let mut rng = TensorRng::seed_from(5);
    let student = Arch::ResNet18.build(6, 6, &mut rng);
    let names = ["a", "b", "c", "d", "e", "f"];
    DfkdTrainer::new(
        fix.teacher.as_ref(),
        student,
        &names,
        12,
        spec,
        DfkdConfig { batch_size: 16, ..Default::default() },
        &ExperimentBudget::fast(),
        7,
    )
}

fn bench_dfkd_steps(c: &mut Criterion) {
    let fix = loop_fixture();
    let mut group = c.benchmark_group("dfkd_steps");
    group.sample_size(10);
    group.bench_function("generator_step_cae", |bench| {
        let mut t = make_trainer(&fix, &MethodSpec::cae_dfkd(4));
        bench.iter(|| black_box(t.generator_step()))
    });
    group.bench_function("generator_step_vanilla", |bench| {
        let mut t = make_trainer(&fix, &MethodSpec::vanilla());
        bench.iter(|| black_box(t.generator_step()))
    });
    group.bench_function("student_step_cae", |bench| {
        let mut t = make_trainer(&fix, &MethodSpec::cae_dfkd(4));
        t.generator_step();
        bench.iter(|| black_box(t.student_step()))
    });
    group.finish();
}

fn bench_cncl(c: &mut Criterion) {
    let mut rng = TensorRng::seed_from(6);
    let student = Arch::ResNet18.build(6, 6, &mut rng);
    let generator = DfkdGenerator::new(GeneratorConfig::new(64, 16, 12), &mut rng);
    let e_off = rng.normal_tensor(&[6, 64], 0.0, 1.0);
    let cend = CendLayer::with_default_sources(4, 0.3);
    let mut group = c.benchmark_group("cncl");
    group.sample_size(10);
    group.bench_function("cncl_loss_k4_n4", |bench| {
        bench.iter(|| {
            black_box(cncl_loss(
                student.as_ref(),
                &generator,
                &e_off,
                &cend,
                CnclConfig::default(),
                &mut rng,
            ))
        })
    });
    group.finish();
}

fn bench_generator_forward(c: &mut Criterion) {
    let mut rng = TensorRng::seed_from(7);
    let generator = DfkdGenerator::new(GeneratorConfig::new(64, 24, 12), &mut rng);
    let z = Var::constant(rng.normal_tensor(&[16, 64], 0.0, 1.0));
    c.bench_function("generator_forward_16x12px", |bench| {
        bench.iter(|| black_box(generator.generate(&z, &mut ForwardCtx::eval())))
    });
}

fn bench_upsample(c: &mut Criterion) {
    let mut rng = TensorRng::seed_from(8);
    let x = rng.normal_tensor(&[8, 16, 6, 6], 0.0, 1.0);
    c.bench_function("upsample_nearest_2x", |bench| {
        bench.iter(|| black_box(cae_tensor::conv::upsample_nearest2d(black_box(&x), 2)))
    });
    let t = Tensor::zeros(&[4, 3, 12, 12]);
    c.bench_function("tensor_clone_4x3x12x12", |bench| {
        bench.iter(|| black_box(t.clone()))
    });
}

criterion_group!(
    kernels,
    bench_matmul,
    bench_conv2d,
    bench_dfkd_layer_shapes,
    bench_cend,
    bench_memory_bank,
    bench_dfkd_steps,
    bench_cncl,
    bench_generator_forward,
    bench_upsample,
);
criterion_main!(kernels);
