//! # cae-bench
//!
//! Benchmark harness regenerating every table and figure of the CAE-DFKD
//! paper.
//!
//! * `cargo bench -p cae-bench` runs two harnesses:
//!   * `tables` — regenerates **every** paper table/figure at the budget
//!     selected by the `CAE_BUDGET` env var (`smoke`, `fast` — default, or
//!     `full`) and prints the same rows/series the paper reports;
//!   * `kernels` — Criterion micro-benchmarks of the hot kernels (conv,
//!     matmul, CEND sampling, CNCL loss, generator/student steps, memory
//!     bank).
//! * `cargo run -p cae-bench --release --bin table02` (… `table01`–`table11`,
//!   `fig02`, `fig05`, `all_tables`) regenerates one table at the `full`
//!   budget (or the `CAE_BUDGET` override) and writes the JSON artifact to
//!   `results/`.

use cae_core::config::ExperimentBudget;
use cae_core::report::Report;
use std::path::PathBuf;

pub mod compare;

/// Reads the experiment budget from `CAE_BUDGET` (`smoke` / `fast` /
/// `full`), defaulting to `default_name`.
///
/// # Panics
/// Panics if the variable holds an unknown value.
pub fn budget_from_env(default_name: &str) -> ExperimentBudget {
    let name = std::env::var("CAE_BUDGET").unwrap_or_else(|_| default_name.to_owned());
    match name.as_str() {
        "smoke" => ExperimentBudget::smoke(),
        "fast" => ExperimentBudget::fast(),
        "full" => ExperimentBudget::full(),
        other => panic!("unknown CAE_BUDGET '{other}' (expected smoke|fast|full)"),
    }
}

/// Directory where JSON report artifacts are written.
pub fn results_dir() -> PathBuf {
    std::env::var("CAE_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("results"))
}

/// Prints a report and persists its JSON artifact; used by every bin.
/// When tracing is enabled, also drains the trace accumulated while the
/// report was produced and writes `trace_<stem>.jsonl` plus
/// `TRACE_<stem>.json` next to the report JSON.
pub fn emit(report: &Report) {
    println!("{report}");
    match report.save_json(&results_dir()) {
        Ok(path) => println!("  saved: {}\n", path.display()),
        Err(e) => eprintln!("  could not save JSON artifact: {e}\n"),
    }
    export_trace(&report.file_stem());
}

/// Drains the trace (if tracing is enabled and anything was recorded) and
/// writes its JSONL + summary artifacts under [`results_dir`]. Returns the
/// summary path when one was written.
pub fn export_trace(stem: &str) -> Option<std::path::PathBuf> {
    if !cae_trace::enabled() {
        return None;
    }
    let trace = cae_trace::drain();
    if trace.is_empty() {
        return None;
    }
    match trace.save(&results_dir(), stem) {
        Ok((jsonl, summary)) => {
            println!("  trace: {} + {}\n", jsonl.display(), summary.display());
            Some(summary)
        }
        Err(e) => {
            eprintln!("  could not save trace artifacts: {e}\n");
            None
        }
    }
}

/// Runs one experiment by registry id, traced (shared by the bins).
///
/// # Panics
/// Panics with the known ids for unknown names, and with the runner's
/// original panic message if the experiment itself failed (single-table
/// bins want loud failure; [`run_by_id`](cae_core::experiments::run_by_id)
/// returns the typed error for callers like `all_tables` that continue).
pub fn run_one(name: &str, budget: &ExperimentBudget) -> Report {
    use cae_core::experiments as ex;
    match ex::run_by_id(name, budget) {
        Some(Ok(report)) => report,
        Some(Err(e)) => panic!("{e}"),
        None => {
            let known: Vec<&str> = ex::registry().iter().map(|e| e.id).collect();
            panic!("unknown experiment '{name}' (known: {})", known.join("|"))
        }
    }
}

/// Whether checkpoint/resume is enabled for sweep bins. Defaults to on;
/// `CAE_RESUME` set to `0`, `off`, `false` or `no` (case-insensitive)
/// forces every experiment to re-run.
pub fn resume_enabled() -> bool {
    match std::env::var("CAE_RESUME") {
        Ok(v) => !matches!(
            v.trim().to_ascii_lowercase().as_str(),
            "0" | "off" | "false" | "no"
        ),
        Err(_) => true,
    }
}

/// Checks whether `entry` already has a completed report artifact under
/// [`results_dir`] and returns its path if so. "Completed" means the file
/// exists *and* parses back as a [`Report`] — a torn artifact from an
/// interrupted earlier run is treated as absent and re-run.
pub fn completed_artifact(entry: &cae_core::experiments::ExperimentEntry) -> Option<PathBuf> {
    completed_artifact_in(&results_dir(), entry)
}

fn completed_artifact_in(
    dir: &std::path::Path,
    entry: &cae_core::experiments::ExperimentEntry,
) -> Option<PathBuf> {
    let path = dir.join(format!("{}.json", entry.artifact_stem));
    let json = std::fs::read_to_string(&path).ok()?;
    Report::from_json(&json).ok()?;
    Some(path)
}

/// Registry ids of the paper's tables and figures, in paper order.
pub fn paper_experiment_ids() -> Vec<&'static str> {
    cae_core::experiments::registry()
        .iter()
        .filter(|e| e.in_paper)
        .map(|e| e.id)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_one_rejects_unknown_ids_with_the_known_list() {
        let err = std::panic::catch_unwind(|| {
            run_one("tableXX", &ExperimentBudget::smoke());
        })
        .expect_err("unknown id must panic");
        let msg = err.downcast_ref::<String>().expect("string panic");
        assert!(msg.contains("table02") && msg.contains("ablations"), "{msg}");
    }

    #[test]
    fn paper_ids_come_from_the_registry() {
        let ids = paper_experiment_ids();
        assert_eq!(ids.len(), 13);
        assert_eq!(ids[0], "table01");
        assert!(!ids.contains(&"ablations"));
    }

    #[test]
    fn budget_parsing() {
        std::env::remove_var("CAE_BUDGET");
        assert_eq!(budget_from_env("fast"), ExperimentBudget::fast());
        assert_eq!(budget_from_env("smoke"), ExperimentBudget::smoke());
    }

    #[test]
    fn completed_artifact_requires_a_parseable_report() {
        let entry = cae_core::experiments::find("table02").expect("registered");
        let dir = std::env::temp_dir().join(format!("cae_resume_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("table_ii.json");

        // No artifact yet: not completed.
        std::fs::remove_file(&path).ok();
        assert_eq!(completed_artifact_in(&dir, entry), None);

        // Torn artifact (interrupted write): treated as absent.
        std::fs::write(&path, "{\"id\": \"Table II\", \"tru").expect("write");
        assert_eq!(completed_artifact_in(&dir, entry), None, "torn JSON must not count");

        // A real report artifact counts.
        let mut report = cae_core::report::Report::new("Table II", "demo", &["a"]);
        report.push_row("x", [1.0]);
        report.save_json(&dir).expect("save");
        assert_eq!(completed_artifact_in(&dir, entry), Some(path));
        std::fs::remove_dir_all(&dir).ok();
    }
}
