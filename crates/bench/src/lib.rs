//! # cae-bench
//!
//! Benchmark harness regenerating every table and figure of the CAE-DFKD
//! paper.
//!
//! * `cargo bench -p cae-bench` runs two harnesses:
//!   * `tables` — regenerates **every** paper table/figure at the budget
//!     selected by the `CAE_BUDGET` env var (`smoke`, `fast` — default, or
//!     `full`) and prints the same rows/series the paper reports;
//!   * `kernels` — Criterion micro-benchmarks of the hot kernels (conv,
//!     matmul, CEND sampling, CNCL loss, generator/student steps, memory
//!     bank).
//! * `cargo run -p cae-bench --release --bin table02` (… `table01`–`table11`,
//!   `fig02`, `fig05`, `all_tables`) regenerates one table at the `full`
//!   budget (or the `CAE_BUDGET` override) and writes the JSON artifact to
//!   `results/`.

use cae_core::config::ExperimentBudget;
use cae_core::report::Report;
use std::path::PathBuf;

/// Reads the experiment budget from `CAE_BUDGET` (`smoke` / `fast` /
/// `full`), defaulting to `default_name`.
///
/// # Panics
/// Panics if the variable holds an unknown value.
pub fn budget_from_env(default_name: &str) -> ExperimentBudget {
    let name = std::env::var("CAE_BUDGET").unwrap_or_else(|_| default_name.to_owned());
    match name.as_str() {
        "smoke" => ExperimentBudget::smoke(),
        "fast" => ExperimentBudget::fast(),
        "full" => ExperimentBudget::full(),
        other => panic!("unknown CAE_BUDGET '{other}' (expected smoke|fast|full)"),
    }
}

/// Directory where JSON report artifacts are written.
pub fn results_dir() -> PathBuf {
    std::env::var("CAE_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("results"))
}

/// Prints a report and persists its JSON artifact; used by every bin.
pub fn emit(report: &Report) {
    println!("{report}");
    match report.save_json(&results_dir()) {
        Ok(path) => println!("  saved: {}\n", path.display()),
        Err(e) => eprintln!("  could not save JSON artifact: {e}\n"),
    }
}

/// Runs one named experiment end to end (shared by the bins).
pub fn run_one(name: &str, budget: &ExperimentBudget) -> Report {
    use cae_core::experiments as ex;
    match name {
        "table01" => ex::table01::run(budget),
        "table02" => ex::table02::run(budget),
        "table03" => ex::table03::run(budget),
        "table04" => ex::table04::run(budget),
        "table05" => ex::table05::run(budget),
        "table06" => ex::table06::run(budget),
        "table07" => ex::table07::run(budget),
        "table08" => ex::table08::run(budget),
        "table09" => ex::table09::run(budget),
        "table10" => ex::table10::run(budget),
        "table11" => ex::table11::run(budget),
        "fig02" => ex::fig02::run(budget),
        "fig05" => ex::fig05::run(budget),
        "ablations" => ex::ablations::run(budget),
        other => panic!("unknown experiment '{other}'"),
    }
}

/// All experiment names in paper order.
pub const ALL_EXPERIMENTS: [&str; 13] = [
    "table01", "fig02", "table02", "table03", "table04", "table05", "table06", "table07",
    "table08", "table09", "table10", "table11", "fig05",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_parsing() {
        std::env::remove_var("CAE_BUDGET");
        assert_eq!(budget_from_env("fast"), ExperimentBudget::fast());
        assert_eq!(budget_from_env("smoke"), ExperimentBudget::smoke());
    }
}
