//! Materializes the paper's qualitative Figure 2b: grids of synthetic
//! images produced by each method's generator, written as PPM files under
//! `results/synthetics/`.

use cae_core::config::DfkdConfig;
use cae_core::method::MethodSpec;
use cae_core::teacher::pretrained;
use cae_core::trainer::DfkdTrainer;
use cae_data::presets::ClassificationPreset;
use cae_data::viz::{tile_batch, write_ppm};
use cae_nn::models::Arch;
use cae_tensor::rng::TensorRng;

fn main() {
    let budget = cae_bench::budget_from_env("fast");
    let preset = ClassificationPreset::C100Sim;
    let split = preset.generate(budget.seed);
    let config = DfkdConfig::default();
    let teacher = pretrained(
        "teacher",
        Arch::ResNet34,
        &split.train,
        &budget,
        config.batch_size,
    );
    let dir = cae_bench::results_dir().join("synthetics");

    // Real images for visual reference.
    let mut rng = TensorRng::seed_from(1);
    let indices: Vec<usize> = (0..16).map(|_| rng.index(split.train.len())).collect();
    let (real, _) = split.train.batch(&indices);
    write_ppm(&tile_batch(&real, 4), &dir.join("real.ppm")).expect("write real grid");
    println!("wrote {}", dir.join("real.ppm").display());

    for spec in [
        MethodSpec::vanilla(),
        MethodSpec::nayer_like(),
        MethodSpec::cae_dfkd(4),
    ] {
        let mut srng = TensorRng::seed_from(2);
        let student = Arch::ResNet18.build(preset.num_classes(), budget.base_width, &mut srng);
        let names = preset.class_names();
        let mut trainer = DfkdTrainer::new(
            teacher.as_ref(),
            student,
            &names,
            preset.resolution(),
            &spec,
            config,
            &budget,
            budget.seed,
        );
        trainer.run(&budget);
        let (images, _) = trainer.memory().sample_batch(16, &mut srng);
        let file = dir.join(format!(
            "{}.ppm",
            spec.name.to_lowercase().replace([' ', '-'], "_")
        ));
        write_ppm(&tile_batch(&images, 4), &file).expect("write synthetic grid");
        println!("wrote {}", file.display());
    }
}
