//! Regenerates paper Table 11 (registry id `table11`) at the full budget.

fn main() {
    let budget = cae_bench::budget_from_env("full");
    let report = cae_bench::run_one("table11", &budget);
    cae_bench::emit(&report);
}
