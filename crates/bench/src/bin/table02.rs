//! Regenerates paper Table 02 (registry id `table02`) at the full budget.

fn main() {
    let budget = cae_bench::budget_from_env("full");
    let report = cae_bench::run_one("table02", &budget);
    cae_bench::emit(&report);
}
