//! Regenerates paper Table 01 (registry id `table01`) at the full budget.

fn main() {
    let budget = cae_bench::budget_from_env("full");
    let report = cae_bench::run_one("table01", &budget);
    cae_bench::emit(&report);
}
