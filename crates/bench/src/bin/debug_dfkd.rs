//! Diagnostic: epoch-by-epoch generator/student losses, teacher CE on the
//! memory bank, and student accuracy, for every method at default
//! hyper-parameters. Useful when tuning budgets or investigating a
//! regression in the DFKD dynamics.

use cae_core::config::{DfkdConfig, ExperimentBudget};
use cae_core::method::MethodSpec;
use cae_core::metrics::classification::top1_accuracy;
use cae_core::teacher::{pretrained, pretrained_frozen};
use cae_core::trainer::DfkdTrainer;
use cae_data::presets::ClassificationPreset;
use cae_nn::infer::FreezeMode;
use cae_nn::models::Arch;
use cae_tensor::rng::TensorRng;

fn main() {
    let budget = ExperimentBudget {
        pretrain_steps: 120,
        dfkd_epochs: 8,
        generator_steps_per_epoch: 4,
        student_steps_per_epoch: 10,
        finetune_steps: 0,
        base_width: 4,
        seed: 3,
    };
    let preset = ClassificationPreset::C10Sim;
    let split = preset.generate(budget.seed);
    let config = DfkdConfig::default();
    let teacher = pretrained("teacher", Arch::ResNet34, &split.train, &budget, config.batch_size);
    // The memory-bank CE probe below only needs logits, so it reads from the
    // shared frozen compilation of the same teacher.
    let frozen_teacher = pretrained_frozen(
        "teacher",
        Arch::ResNet34,
        &split.train,
        &budget,
        config.batch_size,
        FreezeMode::from_env(),
    );
    println!(
        "teacher acc: {:.3}",
        top1_accuracy(teacher.as_ref(), &split.test, 32)
    );

    for spec in [
        MethodSpec::vanilla(),
        MethodSpec::nayer_like(),
        MethodSpec::cae_dfkd(4),
    ] {
        println!("== {} ==", spec.name);
        let mut rng = TensorRng::seed_from(3);
        let student = Arch::ResNet18.build(preset.num_classes(), budget.base_width, &mut rng);
        let names = preset.class_names();
        let mut t = DfkdTrainer::new(
            teacher.as_ref(),
            student,
            &names,
            preset.resolution(),
            &spec,
            config,
            &budget,
            3,
        );
        for epoch in 0..budget.dfkd_epochs {
            let mut gl = 0.0;
            let mut sl = 0.0;
            for _ in 0..budget.generator_steps_per_epoch {
                gl += t.generator_step();
            }
            for _ in 0..budget.student_steps_per_epoch {
                sl += t.student_step().unwrap_or(0.0);
            }
            let acc = top1_accuracy(t.student(), &split.test, 32);
            let (imgs, labels) = t.memory().sample_batch(32, &mut rng);
            let logits = cae_tensor::Var::constant(frozen_teacher.forward(&imgs));
            let ce = cae_nn::loss::cross_entropy(&logits, &labels).item();
            println!(
                "epoch {epoch}: g_loss {:+.3} s_loss {:.3} teacherCE(mem) {:.3} student_acc {:.3}",
                gl / budget.generator_steps_per_epoch as f32,
                sl / budget.student_steps_per_epoch as f32,
                ce,
                acc
            );
        }
    }
}
