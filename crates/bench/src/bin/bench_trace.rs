//! Tracing-overhead benchmark: times a `table02` run with tracing disabled
//! (`CAE_TRACE=0`) and enabled (`CAE_TRACE=1`), checks the two reports
//! byte-for-byte — tracing is observational and must not perturb a single
//! result — and writes `BENCH_trace.json` at the repository root plus the
//! enabled run's aggregated trace summary as `TRACE_table02.json`.
//!
//! The enablement guard is read once per process, so each configuration
//! runs in a fresh child process of this same binary (the same re-exec
//! pattern as `bench_experiments`). The disabled child exercises the fully
//! instrumented build with every recording call short-circuiting on one
//! atomic load — the overhead budget DESIGN.md states (<2% wall-clock) is
//! measured here as `overhead_pct`, enabled vs disabled.
//!
//! Budget defaults to `smoke`; override with `CAE_BUDGET=smoke|fast|full`.
//! Run with `cargo run --release -p cae-bench --bin bench_trace`.

use cae_bench::{budget_from_env, run_one};
use serde::Value;
use std::process::Command;
use std::time::Instant;

const CHILD_ENV: &str = "CAE_BENCH_TRACE_CHILD";
const CHILD_TRACE_ENV: &str = "CAE_BENCH_TRACE_SUMMARY";
const CHILD_JSONL_ENV: &str = "CAE_BENCH_TRACE_JSONL";

/// Child mode: run table02, write its JSON report to the given path, and —
/// when tracing is on — the drained trace summary to `CAE_BENCH_TRACE_SUMMARY`
/// plus the raw span jsonl to `CAE_BENCH_TRACE_JSONL` (the input
/// `bench_compare`'s trace-diff attribution and `cae-dfkd trace-diff`
/// consume).
fn run_child(out_path: &str) {
    let budget = budget_from_env("smoke");
    let report = run_one("table02", &budget);
    std::fs::write(out_path, report.to_json()).expect("failed to write child report");
    if cae_trace::enabled() {
        let trace = cae_trace::drain();
        assert!(!trace.is_empty(), "traced run recorded nothing");
        let path = std::env::var(CHILD_TRACE_ENV).expect("trace summary path missing");
        std::fs::write(&path, trace.summary_json()).expect("failed to write trace summary");
        if let Ok(jsonl_path) = std::env::var(CHILD_JSONL_ENV) {
            std::fs::write(&jsonl_path, trace.to_jsonl()).expect("failed to write raw trace");
        }
    }
}

struct Outcome {
    mode: &'static str,
    seconds: f64,
    report_json: String,
}

fn run_config(
    mode: &'static str,
    trace: &str,
    summary_path: &std::path::Path,
    jsonl_path: &std::path::Path,
) -> Outcome {
    let exe = std::env::current_exe().expect("current_exe");
    let out = std::env::temp_dir().join(format!("cae_bench_trace_{mode}.json"));
    let started = Instant::now();
    let status = Command::new(&exe)
        .env(CHILD_ENV, out.display().to_string())
        .env(CHILD_TRACE_ENV, summary_path.display().to_string())
        .env(CHILD_JSONL_ENV, jsonl_path.display().to_string())
        .env("CAE_TRACE", trace)
        .status()
        .expect("failed to spawn child");
    let seconds = started.elapsed().as_secs_f64();
    assert!(status.success(), "{mode} child exited with {status}");
    let report_json = std::fs::read_to_string(&out).expect("child report missing");
    std::fs::remove_file(&out).ok();
    Outcome { mode, seconds, report_json }
}

fn main() {
    if let Ok(out_path) = std::env::var(CHILD_ENV) {
        run_child(&out_path);
        return;
    }

    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let summary_path = std::path::Path::new(root).join("TRACE_table02.json");
    let jsonl_path = std::path::Path::new(root).join("trace_table02.jsonl");
    println!("timing table02 with tracing disabled vs enabled ...");
    let disabled = run_config("disabled", "0", &summary_path, &jsonl_path);
    println!("  CAE_TRACE=0: {:.1}s", disabled.seconds);
    let enabled = run_config("enabled", "1", &summary_path, &jsonl_path);
    println!("  CAE_TRACE=1: {:.1}s", enabled.seconds);

    let identical = disabled.report_json == enabled.report_json;
    assert!(identical, "tracing changed the table02 report — it must be observational only");
    let overhead_pct = (enabled.seconds - disabled.seconds) / disabled.seconds.max(1e-9) * 100.0;
    println!("  overhead: {overhead_pct:+.2}% (reports identical: {identical})");

    let record = |o: &Outcome| {
        Value::Object(vec![
            ("mode".to_string(), Value::String(o.mode.to_string())),
            ("seconds".to_string(), Value::Number(o.seconds)),
        ])
    };
    let json = serde_json::to_string_pretty(&Value::Object(vec![
        ("experiment".to_string(), Value::String("table02".to_string())),
        (
            "budget".to_string(),
            Value::String(std::env::var("CAE_BUDGET").unwrap_or_else(|_| "smoke".to_string())),
        ),
        ("runs".to_string(), Value::Array(vec![record(&disabled), record(&enabled)])),
        ("overhead_pct".to_string(), Value::Number(overhead_pct)),
        ("reports_identical".to_string(), Value::Bool(identical)),
        (
            "trace_summary".to_string(),
            Value::String("TRACE_table02.json".to_string()),
        ),
        (
            "trace_jsonl".to_string(),
            Value::String("trace_table02.jsonl".to_string()),
        ),
    ]))
    .expect("benchmark record always serializes");
    let path = std::path::Path::new(root).join("BENCH_trace.json");
    std::fs::write(&path, json + "\n").expect("failed to write BENCH_trace.json");
    println!("wrote {} and {}", path.display(), summary_path.display());
}
