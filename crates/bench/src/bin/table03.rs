//! Regenerates paper Table 03 (registry id `table03`) at the full budget.

fn main() {
    let budget = cae_bench::budget_from_env("full");
    let report = cae_bench::run_one("table03", &budget);
    cae_bench::emit(&report);
}
