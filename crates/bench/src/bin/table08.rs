//! Regenerates paper Table 08 (registry id `table08`) at the full budget.

fn main() {
    let budget = cae_bench::budget_from_env("full");
    let report = cae_bench::run_one("table08", &budget);
    cae_bench::emit(&report);
}
