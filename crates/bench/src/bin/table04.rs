//! Regenerates paper Table 04 (registry id `table04`) at the full budget.

fn main() {
    let budget = cae_bench::budget_from_env("full");
    let report = cae_bench::run_one("table04", &budget);
    cae_bench::emit(&report);
}
