//! Regenerates paper Figure 02 (registry id `fig02`) at the full budget.

fn main() {
    let budget = cae_bench::budget_from_env("full");
    let report = cae_bench::run_one("fig02", &budget);
    cae_bench::emit(&report);
}
