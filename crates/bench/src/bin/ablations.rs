//! Regenerates the design-choice ablation suite (memory capacity, λ_adv,
//! CEND magnitude) at the full budget.

fn main() {
    let budget = cae_bench::budget_from_env("full");
    let report = cae_bench::run_one("ablations", &budget);
    cae_bench::emit(&report);
}
