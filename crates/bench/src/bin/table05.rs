//! Regenerates paper Table 05 (registry id `table05`) at the full budget.

fn main() {
    let budget = cae_bench::budget_from_env("full");
    let report = cae_bench::run_one("table05", &budget);
    cae_bench::emit(&report);
}
