//! Regenerates paper Figure 05 (registry id `fig05`) at the full budget.

fn main() {
    let budget = cae_bench::budget_from_env("full");
    let report = cae_bench::run_one("fig05", &budget);
    cae_bench::emit(&report);
}
