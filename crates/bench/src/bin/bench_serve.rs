//! Serving benchmark: dynamic batching vs one-request-at-a-time on a
//! frozen student, plus the int8 accuracy delta. Writes `BENCH_serve.json`
//! at the repository root.
//!
//! A small student is pretrained on the C10Sim preset (cached by the
//! teacher layer), frozen in fused mode, and served over a deterministic
//! synthetic request trace three ways:
//!
//! * **sequential** — one closed-loop client, `max_batch = 1`: every
//!   request pays the full queue/handoff cost and the batch-1 forward.
//!   This is the baseline the speedup gate divides by.
//! * **batched** — open-loop client floods at several
//!   `(max_batch, max_latency_us)` cutoff configurations; the best
//!   throughput becomes `batched_rps`.
//! * **int8** — the same student frozen with int8 weight quantization,
//!   evaluated for accuracy against the f32 freeze and re-served to check
//!   batching determinism under quantization.
//!
//! Every run serves the *same* trace, so the prediction logs must be
//! byte-identical across configurations (`predictions_identical`) — the
//! serve determinism invariant, re-proven here on every bench run.
//!
//! Budget defaults to `smoke` (`CAE_BUDGET=smoke|fast|full`); the trace
//! length defaults to 400 requests (`CAE_SERVE_REQUESTS=n`).
//! Run with `cargo run --release -p cae-bench --bin bench_serve`.

use cae_bench::budget_from_env;
use cae_core::metrics::classification::frozen_top1_accuracy;
use cae_core::teacher;
use cae_data::presets::ClassificationPreset;
use cae_nn::infer::{FreezeOptions, FrozenClassifier};
use cae_nn::models::Arch;
use cae_serve::{
    prediction_log, run_closed_loop, run_open_loop, RequestTrace, RunResult, ServeOptions,
};
use serde::Value;

/// One batching configuration to sweep.
struct BatchConfig {
    name: &'static str,
    max_batch: usize,
    max_latency_us: u64,
    clients: usize,
}

const CONFIGS: [BatchConfig; 3] = [
    BatchConfig { name: "b8_l20ms_c4", max_batch: 8, max_latency_us: 20_000, clients: 4 },
    BatchConfig { name: "b16_l50ms_c8", max_batch: 16, max_latency_us: 50_000, clients: 8 },
    BatchConfig { name: "b32_l50ms_c8", max_batch: 32, max_latency_us: 50_000, clients: 8 },
];

fn requests_from_env() -> usize {
    std::env::var("CAE_SERVE_REQUESTS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(400)
}

fn run_record(name: &str, run: &RunResult) -> Value {
    // Per-phase percentiles come from the lock-free serve.phase.*
    // histograms, reset per run by the drivers — queue-wait, batch
    // assembly, forward and completion handoff, in pipeline order.
    let phases = run
        .phases
        .iter()
        .map(|p| {
            Value::Object(vec![
                ("phase".to_string(), Value::String(p.phase.to_string())),
                ("count".to_string(), Value::Number(p.count as f64)),
                ("p50_us".to_string(), Value::Number(p.p50_us as f64)),
                ("p99_us".to_string(), Value::Number(p.p99_us as f64)),
            ])
        })
        .collect();
    Value::Object(vec![
        ("name".to_string(), Value::String(name.to_string())),
        ("rps".to_string(), Value::Number(run.throughput_rps())),
        ("p50_us".to_string(), Value::Number(run.latency_percentile_us(0.5) as f64)),
        ("p99_us".to_string(), Value::Number(run.latency_percentile_us(0.99) as f64)),
        ("mean_batch".to_string(), Value::Number(run.mean_batch())),
        ("phases".to_string(), Value::Array(phases)),
    ])
}

fn main() {
    // Phase histograms are the source of the per-request latency
    // decomposition in every record below; recording costs two relaxed
    // atomic adds per phase sample.
    cae_trace::metrics::force_enabled(true);
    let budget = budget_from_env("smoke");
    let requests = requests_from_env();
    let preset = ClassificationPreset::C10Sim;
    let split = preset.generate(budget.seed);

    println!("pretraining serve student (ResNet18, {} steps) ...", budget.pretrain_steps);
    let student = teacher::pretrained("serve-student", Arch::ResNet18, &split.train, &budget, 32);
    let freeze = |opts: &FreezeOptions| -> FrozenClassifier { student.freeze_with(opts) };

    let acc_f32 = frozen_top1_accuracy(&freeze(&FreezeOptions::fused()), &split.test, 32);
    let acc_int8 = frozen_top1_accuracy(&freeze(&FreezeOptions::fused().int8()), &split.test, 32);
    let delta_points = (acc_f32 - acc_int8) as f64 * 100.0;
    println!("accuracy: f32 {acc_f32:.3}, int8 {acc_int8:.3} (delta {delta_points:+.2} pts)");

    let trace = RequestTrace::synthetic(requests, 3, preset.resolution(), budget.seed ^ 0x7e5e);

    // Warm the tensor pool and GEMM workspaces outside the timed runs.
    let warmup = RequestTrace::synthetic(16, 3, preset.resolution(), 1);
    run_closed_loop(freeze(&FreezeOptions::fused()), ServeOptions::default(), &warmup);

    // Two sequential passes, keeping the faster: the baseline is the
    // noisiest term of the speedup ratio on a shared host, and the ratio
    // should compare peak capability to peak capability (the batched side
    // already takes the best of several configs). Their logs must match —
    // a free repeat-determinism check.
    println!("sequential baseline ({requests} requests, max_batch=1) ...");
    let sequential = (0..2)
        .map(|_| {
            run_closed_loop(
                freeze(&FreezeOptions::fused()),
                ServeOptions::default().with_max_batch(1),
                &trace,
            )
        })
        .reduce(|a, b| {
            assert_eq!(prediction_log(&a.predictions), prediction_log(&b.predictions));
            if a.throughput_rps() >= b.throughput_rps() { a } else { b }
        })
        .expect("two sequential passes");
    assert_eq!(sequential.predictions.len(), trace.len());
    let reference_log = prediction_log(&sequential.predictions);
    println!(
        "  {:.0} rps, p50 {}us, p99 {}us",
        sequential.throughput_rps(),
        sequential.latency_percentile_us(0.5),
        sequential.latency_percentile_us(0.99)
    );
    if let Some(phases) = sequential.phase_summary() {
        println!("    phases: {phases}");
    }

    let mut predictions_identical = true;
    let mut config_records = Vec::new();
    let mut best: Option<(&BatchConfig, RunResult)> = None;
    for config in &CONFIGS {
        let opts = ServeOptions::default()
            .with_max_batch(config.max_batch)
            .with_max_latency_us(config.max_latency_us);
        let run = run_open_loop(freeze(&FreezeOptions::fused()), opts, &trace, config.clients);
        assert_eq!(run.predictions.len(), trace.len());
        if prediction_log(&run.predictions) != reference_log {
            predictions_identical = false;
        }
        println!(
            "  {}: {:.0} rps, p50 {}us, p99 {}us, mean batch {:.1}",
            config.name,
            run.throughput_rps(),
            run.latency_percentile_us(0.5),
            run.latency_percentile_us(0.99),
            run.mean_batch()
        );
        if let Some(phases) = run.phase_summary() {
            println!("    phases: {phases}");
        }
        config_records.push(run_record(config.name, &run));
        let better = best
            .as_ref()
            .is_none_or(|(_, b)| run.throughput_rps() > b.throughput_rps());
        if better {
            best = Some((config, run));
        }
    }
    let (best_config, best_run) = best.expect("at least one batching config");

    // int8 serve determinism: the quantized student must also be
    // batching-invariant (its dequantized weights are plain f32 tensors).
    let int8_seq = run_closed_loop(
        freeze(&FreezeOptions::fused().int8()),
        ServeOptions::default().with_max_batch(1),
        &trace,
    );
    let int8_batched = run_open_loop(
        freeze(&FreezeOptions::fused().int8()),
        ServeOptions::default().with_max_batch(16).with_max_latency_us(50_000),
        &trace,
        4,
    );
    if prediction_log(&int8_seq.predictions) != prediction_log(&int8_batched.predictions) {
        predictions_identical = false;
    }

    let batched_rps = best_run.throughput_rps();
    let sequential_rps = sequential.throughput_rps();
    let batched_speedup = batched_rps / sequential_rps.max(1e-12);
    let batched_p99_us = best_run.latency_percentile_us(0.99);
    let p99_within_cutoff = batched_p99_us <= best_config.max_latency_us;
    println!(
        "best: {} at {batched_rps:.0} rps ({batched_speedup:.2}x sequential), \
         p99 {batched_p99_us}us (cutoff {}us), predictions identical: {predictions_identical}",
        best_config.name, best_config.max_latency_us
    );

    let json = serde_json::to_string_pretty(&Value::Object(vec![
        (
            "budget".to_string(),
            Value::String(std::env::var("CAE_BUDGET").unwrap_or_else(|_| "smoke".to_string())),
        ),
        ("requests".to_string(), Value::Number(requests as f64)),
        ("arch".to_string(), Value::String("ResNet18".to_string())),
        ("preset".to_string(), Value::String(preset.name().to_string())),
        ("sequential".to_string(), run_record("sequential", &sequential)),
        ("configs".to_string(), Value::Array(config_records)),
        ("best_config".to_string(), Value::String(best_config.name.to_string())),
        ("batched_rps".to_string(), Value::Number(batched_rps)),
        ("batched_speedup".to_string(), Value::Number(batched_speedup)),
        ("batched_p99_us".to_string(), Value::Number(batched_p99_us as f64)),
        ("p99_within_cutoff".to_string(), Value::Bool(p99_within_cutoff)),
        ("predictions_identical".to_string(), Value::Bool(predictions_identical)),
        (
            "int8".to_string(),
            Value::Object(vec![
                ("acc_f32".to_string(), Value::Number(acc_f32 as f64)),
                ("acc_int8".to_string(), Value::Number(acc_int8 as f64)),
                ("delta_points".to_string(), Value::Number(delta_points)),
            ]),
        ),
    ]))
    .expect("benchmark record always serializes");
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let path = std::path::Path::new(root).join("BENCH_serve.json");
    std::fs::write(&path, json + "\n").expect("failed to write BENCH_serve.json");
    println!("wrote {}", path.display());
}
