//! Regenerates paper Table 10 (registry id `table10`) at the full budget.

fn main() {
    let budget = cae_bench::budget_from_env("full");
    let report = cae_bench::run_one("table10", &budget);
    cae_bench::emit(&report);
}
