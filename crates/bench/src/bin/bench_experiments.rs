//! Cell-parallel scheduler benchmark: times a serial vs a cell-parallel
//! `table02` run and writes `BENCH_experiments.json` at the repository
//! root.
//!
//! The tensor pool is sized once per process (`CAE_NUM_THREADS`), so each
//! configuration runs in a fresh child process of this same binary:
//!
//! * `serial`   — `CAE_NUM_THREADS=1`, `CAE_CELL_PARALLEL=0`: every cell on
//!   one thread, the seed-equivalent baseline;
//! * `parallel` — `CAE_NUM_THREADS=<cores, capped at 4>`,
//!   `CAE_CELL_PARALLEL=1`: whole cells fan out over the pool.
//!
//! Besides wall-clock, the record checks the two reports byte-for-byte —
//! per-cell seeding means thread count must never change a result. On a
//! single-core host the parallel run still executes (4 pool threads
//! time-slicing one core) but shows no speedup; `host_parallelism` is
//! recorded so readers can interpret the ratio honestly.
//!
//! Budget defaults to `fast`; override with `CAE_BUDGET=smoke|fast|full`.
//! Run with `cargo run --release -p cae-bench --bin bench_experiments`.

use cae_bench::{budget_from_env, run_one};
use serde::Value;
use std::process::Command;
use std::time::Instant;

const CHILD_ENV: &str = "CAE_BENCH_EXPERIMENTS_CHILD";

/// Child mode: run table02 and write its JSON report to the given path.
fn run_child(out_path: &str) {
    let budget = budget_from_env("fast");
    let report = run_one("table02", &budget);
    std::fs::write(out_path, report.to_json()).expect("failed to write child report");
}

struct Outcome {
    mode: &'static str,
    threads: usize,
    seconds: f64,
    report_json: String,
}

/// Parent mode: re-exec this binary once per configuration and time it.
fn run_config(mode: &'static str, threads: usize, cell_parallel: &str) -> Outcome {
    let exe = std::env::current_exe().expect("current_exe");
    let out = std::env::temp_dir().join(format!("cae_bench_experiments_{mode}.json"));
    let started = Instant::now();
    let status = Command::new(&exe)
        .env(CHILD_ENV, out.display().to_string())
        .env("CAE_NUM_THREADS", threads.to_string())
        .env("CAE_CELL_PARALLEL", cell_parallel)
        .status()
        .expect("failed to spawn child");
    let seconds = started.elapsed().as_secs_f64();
    assert!(status.success(), "{mode} child exited with {status}");
    let report_json = std::fs::read_to_string(&out).expect("child report missing");
    std::fs::remove_file(&out).ok();
    Outcome { mode, threads, seconds, report_json }
}

fn main() {
    if let Ok(out_path) = std::env::var(CHILD_ENV) {
        run_child(&out_path);
        return;
    }

    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    let parallel_threads = host.clamp(2, 4);
    println!("host parallelism: {host}; timing serial vs {parallel_threads}-thread table02 runs");

    let serial = run_config("serial", 1, "0");
    println!("  serial:   {:.1}s", serial.seconds);
    let parallel = run_config("parallel", parallel_threads, "1");
    println!("  parallel: {:.1}s", parallel.seconds);

    let identical = serial.report_json == parallel.report_json;
    assert!(identical, "serial and parallel reports differ — per-cell seeding is broken");
    let speedup = serial.seconds / parallel.seconds.max(1e-9);
    println!("  speedup:  {speedup:.2}x (reports identical: {identical})");

    let record = |o: &Outcome| {
        Value::Object(vec![
            ("mode".to_string(), Value::String(o.mode.to_string())),
            ("threads".to_string(), Value::Number(o.threads as f64)),
            ("seconds".to_string(), Value::Number(o.seconds)),
        ])
    };
    let json = serde_json::to_string_pretty(&Value::Object(vec![
        ("experiment".to_string(), Value::String("table02".to_string())),
        (
            "budget".to_string(),
            Value::String(std::env::var("CAE_BUDGET").unwrap_or_else(|_| "fast".to_string())),
        ),
        ("host_parallelism".to_string(), Value::Number(host as f64)),
        ("runs".to_string(), Value::Array(vec![record(&serial), record(&parallel)])),
        ("speedup".to_string(), Value::Number(speedup)),
        ("reports_identical".to_string(), Value::Bool(identical)),
    ]))
    .expect("benchmark record always serializes");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_experiments.json");
    std::fs::write(path, json + "\n").expect("failed to write BENCH_experiments.json");
    println!("wrote {path}");
}
