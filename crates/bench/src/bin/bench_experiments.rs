//! Cell-parallel scheduler benchmark: measures a 1/2/4-thread table02
//! scaling curve and writes `BENCH_experiments.json` at the repository
//! root.
//!
//! The tensor pool is sized once per process (`CAE_NUM_THREADS`), so each
//! curve point runs in a fresh child process of this same binary:
//!
//! * 1 thread  — `CAE_NUM_THREADS=1`, `CAE_CELL_PARALLEL=0`: every cell on
//!   one thread, the seed-equivalent baseline;
//! * 2/4 threads — `CAE_NUM_THREADS=<t>`, `CAE_CELL_PARALLEL=1`: whole
//!   cells fan out over the pool, with the cooperative per-cell thread
//!   budgets letting surplus workers help inside cells.
//!
//! Points above the host's parallelism are **skipped and marked as such**
//! in the JSON — time-slicing N pool threads on fewer cores measures
//! scheduler noise, not scaling, and `bench_compare` must not gate on it
//! (`host_parallelism` records why). Besides wall-clock, every measured
//! parallel point is checked byte-for-byte against the serial report —
//! per-cell seeding means thread count must never change a result.
//!
//! Budget defaults to `fast`; override with `CAE_BUDGET=smoke|fast|full`.
//! Run with `cargo run --release -p cae-bench --bin bench_experiments`.

use cae_bench::{budget_from_env, run_one};
use serde::Value;
use std::process::Command;
use std::time::Instant;

const CHILD_ENV: &str = "CAE_BENCH_EXPERIMENTS_CHILD";

/// The thread counts the curve samples (1 is the serial baseline).
const CURVE_THREADS: [usize; 3] = [1, 2, 4];

/// Child mode: run table02 and write its JSON report to the given path.
fn run_child(out_path: &str) {
    let budget = budget_from_env("fast");
    let report = run_one("table02", &budget);
    std::fs::write(out_path, report.to_json()).expect("failed to write child report");
}

struct Outcome {
    seconds: f64,
    report_json: String,
}

/// Parent mode: re-exec this binary once per curve point and time it.
fn run_config(threads: usize) -> Outcome {
    let exe = std::env::current_exe().expect("current_exe");
    let out = std::env::temp_dir().join(format!("cae_bench_experiments_{threads}t.json"));
    let started = Instant::now();
    let status = Command::new(&exe)
        .env(CHILD_ENV, out.display().to_string())
        .env("CAE_NUM_THREADS", threads.to_string())
        .env("CAE_CELL_PARALLEL", if threads == 1 { "0" } else { "1" })
        .status()
        .expect("failed to spawn child");
    let seconds = started.elapsed().as_secs_f64();
    assert!(status.success(), "{threads}-thread child exited with {status}");
    let report_json = std::fs::read_to_string(&out).expect("child report missing");
    std::fs::remove_file(&out).ok();
    Outcome { seconds, report_json }
}

fn main() {
    if let Ok(out_path) = std::env::var(CHILD_ENV) {
        run_child(&out_path);
        return;
    }

    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("host parallelism: {host}; measuring a {CURVE_THREADS:?}-thread table02 scaling curve");

    let serial = run_config(1);
    println!("  1 thread:  {:.1}s (serial baseline)", serial.seconds);

    let mut curve: Vec<Value> = vec![Value::Object(vec![
        ("mode".to_string(), Value::String("serial".to_string())),
        ("threads".to_string(), Value::Number(1.0)),
        ("seconds".to_string(), Value::Number(serial.seconds)),
        ("skipped".to_string(), Value::Bool(false)),
    ])];
    let mut reports_identical = true;
    let mut best_speedup: Option<f64> = None;

    for &threads in CURVE_THREADS.iter().filter(|&&t| t > 1) {
        if threads > host {
            // Time-slicing more pool threads than cores measures scheduler
            // noise, not scaling: record the point as skipped so the
            // regression gate knows it was never measured.
            println!("  {threads} threads: skipped (host parallelism {host} < {threads})");
            curve.push(Value::Object(vec![
                ("mode".to_string(), Value::String("parallel".to_string())),
                ("threads".to_string(), Value::Number(threads as f64)),
                ("skipped".to_string(), Value::Bool(true)),
                (
                    "reason".to_string(),
                    Value::String(format!("host_parallelism {host} < {threads}")),
                ),
            ]));
            continue;
        }
        let point = run_config(threads);
        let identical = point.report_json == serial.report_json;
        assert!(
            identical,
            "{threads}-thread report differs from serial — per-cell seeding is broken"
        );
        reports_identical &= identical;
        let speedup = serial.seconds / point.seconds.max(1e-9);
        println!("  {threads} threads: {:.1}s ({speedup:.2}x, reports identical)", point.seconds);
        best_speedup = Some(best_speedup.map_or(speedup, |b: f64| b.max(speedup)));
        curve.push(Value::Object(vec![
            ("mode".to_string(), Value::String("parallel".to_string())),
            ("threads".to_string(), Value::Number(threads as f64)),
            ("seconds".to_string(), Value::Number(point.seconds)),
            ("skipped".to_string(), Value::Bool(false)),
            ("speedup".to_string(), Value::Number(speedup)),
        ]));
    }

    let mut record = vec![
        ("experiment".to_string(), Value::String("table02".to_string())),
        (
            "budget".to_string(),
            Value::String(std::env::var("CAE_BUDGET").unwrap_or_else(|_| "fast".to_string())),
        ),
        ("host_parallelism".to_string(), Value::Number(host as f64)),
        ("curve".to_string(), Value::Array(curve)),
        ("reports_identical".to_string(), Value::Bool(reports_identical)),
    ];
    if let Some(speedup) = best_speedup {
        record.push(("best_speedup".to_string(), Value::Number(speedup)));
    }
    let json = serde_json::to_string_pretty(&Value::Object(record))
        .expect("benchmark record always serializes");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_experiments.json");
    std::fs::write(path, json + "\n").expect("failed to write BENCH_experiments.json");
    println!("wrote {path}");
}
