//! Fault-recovery benchmark: runs `table02` clean, with deterministic
//! fault injection and no retries (partial table, `FAILED(...)` rows), and
//! with injection plus ample retries (full recovery), then checks the
//! recovered report byte-for-byte against the clean one — retries re-run a
//! cell under its identical derived seed, so successful recovery must not
//! change a single result. Writes `BENCH_faults.json` at the repository
//! root with per-mode wall-clock and the recovery overhead.
//!
//! The retry policy is installed per configuration through the typed
//! [`force_fault_policy`] override (the environment is a parse-once
//! snapshot, so mutating it mid-process would have no effect), letting all
//! three configurations run in this process (no re-exec needed); an
//! untimed warm-up run first populates the process-global teacher cache so
//! the timed runs are comparable.
//!
//! Budget defaults to `smoke`; override with `CAE_BUDGET=smoke|fast|full`.
//! Run with `cargo run --release -p cae-bench --bin bench_faults`.

use cae_bench::{budget_from_env, run_one};
use cae_core::config::ExperimentBudget;
use cae_core::experiments::scheduler::{force_fault_policy, FaultPolicy};
use serde::Value;
use std::time::Instant;

/// Injection knob used for the faulty/recovered runs: ~20% of cell
/// attempts panic, deterministically in the (cell seed, attempt) pair.
const INJECT: (f32, u64) = (0.2, 7);

struct Outcome {
    mode: &'static str,
    seconds: f64,
    report_json: String,
}

fn run_mode(mode: &'static str, policy: FaultPolicy, budget: &ExperimentBudget) -> Outcome {
    force_fault_policy(Some(policy));
    let started = Instant::now();
    let report = run_one("table02", budget);
    let seconds = started.elapsed().as_secs_f64();
    println!("  {mode}: {seconds:.1}s");
    Outcome { mode, seconds, report_json: report.to_json() }
}

fn main() {
    let budget = budget_from_env("smoke");

    println!("warming the teacher cache (untimed clean run) ...");
    run_mode("warmup", FaultPolicy::NONE, &budget);

    println!("timing table02 clean / injected / injected+retries ...");
    let clean = run_mode("clean", FaultPolicy::NONE, &budget);
    let faulty = run_mode("faulty", FaultPolicy { retries: 0, inject: Some(INJECT) }, &budget);
    let recovered =
        run_mode("recovered", FaultPolicy { retries: 20, inject: Some(INJECT) }, &budget);
    force_fault_policy(None);

    let failed_rows = faulty.report_json.matches("FAILED(").count();
    assert!(
        failed_rows > 0,
        "injection {INJECT:?} produced no FAILED rows — the fault path was not exercised"
    );
    assert!(
        faulty.report_json.contains("injected fault"),
        "FAILED rows must carry the original panic message"
    );
    assert_eq!(
        recovered.report_json, clean.report_json,
        "recovered run must be byte-identical to the clean run"
    );
    let recovery_overhead_pct =
        (recovered.seconds - clean.seconds) / clean.seconds.max(1e-9) * 100.0;
    println!(
        "  faulty run: {failed_rows} FAILED row(s); recovery overhead: {recovery_overhead_pct:+.2}% (reports identical)"
    );

    let record = |o: &Outcome| {
        Value::Object(vec![
            ("mode".to_string(), Value::String(o.mode.to_string())),
            ("seconds".to_string(), Value::Number(o.seconds)),
        ])
    };
    let json = serde_json::to_string_pretty(&Value::Object(vec![
        ("experiment".to_string(), Value::String("table02".to_string())),
        (
            "budget".to_string(),
            Value::String(std::env::var("CAE_BUDGET").unwrap_or_else(|_| "smoke".to_string())),
        ),
        (
            "fault_inject".to_string(),
            Value::String(format!("{}:{}", INJECT.0, INJECT.1)),
        ),
        (
            "runs".to_string(),
            Value::Array(vec![record(&clean), record(&faulty), record(&recovered)]),
        ),
        ("failed_rows_without_retries".to_string(), Value::Number(failed_rows as f64)),
        ("recovery_overhead_pct".to_string(), Value::Number(recovery_overhead_pct)),
        ("recovered_identical_to_clean".to_string(), Value::Bool(true)),
    ]))
    .expect("benchmark record always serializes");
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let path = std::path::Path::new(root).join("BENCH_faults.json");
    std::fs::write(&path, json + "\n").expect("failed to write BENCH_faults.json");
    println!("wrote {}", path.display());
}
