//! Regenerates paper Table 06 (registry id `table06`) at the full budget.

fn main() {
    let budget = cae_bench::budget_from_env("full");
    let report = cae_bench::run_one("table06", &budget);
    cae_bench::emit(&report);
}
