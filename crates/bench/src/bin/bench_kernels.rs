//! Kernel speedup report: times the blocked GEMM/conv kernels against the
//! naive baselines they replaced and writes `BENCH_kernels.json` at the
//! repository root.
//!
//! Each record carries `op`, `shape`, `ns_per_iter`, `gflops` and the active
//! SIMD `backend` for the current kernel; ops with a naive counterpart also
//! record `naive_ns_per_iter` and `speedup`. The naive baselines reproduce
//! the seed implementation faithfully — i-k-j saxpy / dot-product loop nests
//! plus the per-call scratch allocations the old conv passes performed —
//! minus the NaN-swallowing `== 0.0` skip branches, which almost never fire
//! on random data.
//!
//! Run with `cargo run --release -p cae-bench --bin bench_kernels`. Set
//! `CAE_SIMD=scalar` to measure the scalar fallback.

use cae_nn::infer::FreezeOptions;
use cae_nn::models::Arch;
use cae_nn::module::ForwardCtx;
use cae_tensor::conv::{self, Conv2dSpec, ConvEpilogue};
use cae_tensor::gemm::{gemm, gemm_reference};
use cae_tensor::rng::TensorRng;
use cae_tensor::simd::vecmath;
use cae_tensor::{Tensor, Var};
use criterion::{black_box, measure};
use serde::Value;
use std::time::Duration;

/// Measurement window per benchmark; long enough for stable means on the
/// sub-millisecond kernels measured here.
const WINDOW: Duration = Duration::from_millis(300);

struct Record {
    op: &'static str,
    shape: String,
    ns_per_iter: f64,
    gflops: f64,
    naive_ns_per_iter: Option<f64>,
    speedup: Option<f64>,
}

impl Record {
    fn to_value(&self) -> Value {
        let backend = cae_tensor::simd::active_backend().name();
        let mut fields = vec![
            ("op".to_string(), Value::String(self.op.to_string())),
            ("shape".to_string(), Value::String(self.shape.clone())),
            ("backend".to_string(), Value::String(backend.to_string())),
            ("ns_per_iter".to_string(), Value::Number(self.ns_per_iter)),
            ("gflops".to_string(), Value::Number(self.gflops)),
        ];
        if let (Some(naive), Some(speedup)) = (self.naive_ns_per_iter, self.speedup) {
            fields.push(("naive_ns_per_iter".to_string(), Value::Number(naive)));
            fields.push(("speedup".to_string(), Value::Number(speedup)));
        }
        Value::Object(fields)
    }
}

/// Times `fast` (and optionally `naive`) and builds the JSON record.
fn bench_pair<O1, O2>(
    op: &'static str,
    shape: String,
    flops: usize,
    mut fast: impl FnMut() -> O1,
    naive: Option<&mut dyn FnMut() -> O2>,
) -> Record {
    let m = measure(&mut fast, WINDOW);
    let gflops = flops as f64 / m.ns_per_iter;
    let (naive_ns, speedup) = match naive {
        Some(naive_fn) => {
            let nm = measure(naive_fn, WINDOW);
            (Some(nm.ns_per_iter), Some(nm.ns_per_iter / m.ns_per_iter))
        }
        None => (None, None),
    };
    let rec = Record {
        op,
        shape,
        ns_per_iter: m.ns_per_iter,
        gflops,
        naive_ns_per_iter: naive_ns,
        speedup,
    };
    match rec.speedup {
        Some(s) => println!(
            "{op:<28} {shape:<24} {ns:>12.0} ns/iter  {gflops:>7.2} GFLOP/s  speedup {s:>5.2}x",
            op = rec.op,
            shape = rec.shape,
            ns = rec.ns_per_iter,
            gflops = rec.gflops,
        ),
        None => println!(
            "{op:<28} {shape:<24} {ns:>12.0} ns/iter  {gflops:>7.2} GFLOP/s",
            op = rec.op,
            shape = rec.shape,
            ns = rec.ns_per_iter,
            gflops = rec.gflops,
        ),
    }
    rec
}

/// Seed-faithful im2col (identical algorithm to the kernel's internal one).
fn im2col_naive(x: &[f32], c: usize, h: usize, w: usize, spec: Conv2dSpec, col: &mut [f32]) {
    let k = spec.kernel;
    let oh = spec.out_size(h);
    let ow = spec.out_size(w);
    let ncols = oh * ow;
    for ci in 0..c {
        for ki in 0..k {
            for kj in 0..k {
                let row = (ci * k + ki) * k + kj;
                let dst = &mut col[row * ncols..(row + 1) * ncols];
                for oi in 0..oh {
                    let ii = (oi * spec.stride + ki) as isize - spec.padding as isize;
                    for oj in 0..ow {
                        let jj = (oj * spec.stride + kj) as isize - spec.padding as isize;
                        dst[oi * ow + oj] =
                            if ii >= 0 && jj >= 0 && (ii as usize) < h && (jj as usize) < w {
                                x[(ci * h + ii as usize) * w + jj as usize]
                            } else {
                                0.0
                            };
                    }
                }
            }
        }
    }
}

/// Seed-faithful col2im adjoint.
fn col2im_naive(col: &[f32], c: usize, h: usize, w: usize, spec: Conv2dSpec, x: &mut [f32]) {
    let k = spec.kernel;
    let oh = spec.out_size(h);
    let ow = spec.out_size(w);
    let ncols = oh * ow;
    for ci in 0..c {
        for ki in 0..k {
            for kj in 0..k {
                let row = (ci * k + ki) * k + kj;
                let src = &col[row * ncols..(row + 1) * ncols];
                for oi in 0..oh {
                    let ii = (oi * spec.stride + ki) as isize - spec.padding as isize;
                    if ii < 0 || ii as usize >= h {
                        continue;
                    }
                    for oj in 0..ow {
                        let jj = (oj * spec.stride + kj) as isize - spec.padding as isize;
                        if jj < 0 || jj as usize >= w {
                            continue;
                        }
                        x[(ci * h + ii as usize) * w + jj as usize] += src[oi * ow + oj];
                    }
                }
            }
        }
    }
}

/// The seed's conv2d forward: fresh col buffer per call, naive GEMM.
fn conv2d_naive(x: &Tensor, weight: &Tensor, spec: Conv2dSpec) -> Tensor {
    let (n, c, h, w) = x.shape().nchw();
    let o = weight.shape().dims()[0];
    let oh = spec.out_size(h);
    let ow = spec.out_size(w);
    let ncols = oh * ow;
    let krows = c * spec.kernel * spec.kernel;
    let mut out = Tensor::zeros(&[n, o, oh, ow]);
    let mut col = vec![0.0f32; krows * ncols];
    for ni in 0..n {
        im2col_naive(&x.data()[ni * c * h * w..(ni + 1) * c * h * w], c, h, w, spec, &mut col);
        let dst = &mut out.data_mut()[ni * o * ncols..(ni + 1) * o * ncols];
        gemm_reference(o, ncols, krows, weight.data(), (krows, 1), &col, (ncols, 1), dst, true);
    }
    out
}

/// The seed's conv2d backward: per-call buffers, dot-product `dw`, saxpy
/// `dcol`.
fn conv2d_backward_naive(
    x: &Tensor,
    weight: &Tensor,
    grad_out: &Tensor,
    spec: Conv2dSpec,
) -> (Tensor, Vec<f32>, Vec<f32>) {
    let (n, c, h, w) = x.shape().nchw();
    let o = weight.shape().dims()[0];
    let oh = spec.out_size(h);
    let ow = spec.out_size(w);
    let ncols = oh * ow;
    let krows = c * spec.kernel * spec.kernel;
    let mut dx = Tensor::zeros(&[n, c, h, w]);
    let mut dw = vec![0.0f32; o * krows];
    let mut db = vec![0.0f32; o];
    let mut col = vec![0.0f32; krows * ncols];
    let mut dcol = vec![0.0f32; krows * ncols];
    for ni in 0..n {
        let go = &grad_out.data()[ni * o * ncols..(ni + 1) * o * ncols];
        for oi in 0..o {
            db[oi] += go[oi * ncols..(oi + 1) * ncols].iter().sum::<f32>();
        }
        im2col_naive(&x.data()[ni * c * h * w..(ni + 1) * c * h * w], c, h, w, spec, &mut col);
        for oi in 0..o {
            let gorow = &go[oi * ncols..(oi + 1) * ncols];
            let dwrow = &mut dw[oi * krows..(oi + 1) * krows];
            for p in 0..krows {
                let crow = &col[p * ncols..(p + 1) * ncols];
                dwrow[p] += gorow.iter().zip(crow).map(|(&g, &cv)| g * cv).sum::<f32>();
            }
        }
        dcol.iter_mut().for_each(|v| *v = 0.0);
        for oi in 0..o {
            let wrow = &weight.data()[oi * krows..(oi + 1) * krows];
            let gorow = &go[oi * ncols..(oi + 1) * ncols];
            for (p, &wv) in wrow.iter().enumerate() {
                let drow = &mut dcol[p * ncols..(p + 1) * ncols];
                for (d, &g) in drow.iter_mut().zip(gorow) {
                    *d += wv * g;
                }
            }
        }
        col2im_naive(&dcol, c, h, w, spec, &mut dx.data_mut()[ni * c * h * w..(ni + 1) * c * h * w]);
    }
    (dx, dw, db)
}

fn gemm_record(
    op: &'static str,
    m: usize,
    n: usize,
    k: usize,
    a_strides: (usize, usize),
    b_strides: (usize, usize),
    rng: &mut TensorRng,
) -> Record {
    let alen = (m - 1) * a_strides.0 + (k - 1) * a_strides.1 + 1;
    let blen = (k - 1) * b_strides.0 + (n - 1) * b_strides.1 + 1;
    let a: Vec<f32> = (0..alen).map(|_| rng.normal()).collect();
    let b: Vec<f32> = (0..blen).map(|_| rng.normal()).collect();
    let mut c_fast = vec![0.0f32; m * n];
    let mut c_naive = vec![0.0f32; m * n];
    bench_pair(
        op,
        format!("{m}x{k}x{n}"),
        2 * m * n * k,
        || {
            gemm(m, n, k, &a, a_strides, &b, b_strides, &mut c_fast, false);
            black_box(c_fast[0])
        },
        Some(&mut || {
            gemm_reference(m, n, k, &a, a_strides, &b, b_strides, &mut c_naive, false);
            black_box(c_naive[0])
        }),
    )
}

fn main() {
    let mut rng = TensorRng::seed_from(42);

    // -- GEMM, all three layouts, at DFKD-realistic shapes. ---------------
    let mut records = vec![
        // The acceptance shape from the criterion suite.
        gemm_record("matmul", 64, 96, 128, (128, 1), (96, 1), &mut rng),
        // Generator fc: z[16, 64] -> [16, base*3*3] at base_width 24.
        gemm_record("matmul", 16, 216, 64, (64, 1), (216, 1), &mut rng),
        // CNCL similarity: anchors x candidates^T.
        gemm_record("matmul_nt", 16, 64, 64, (64, 1), (1, 64), &mut rng),
        // Linear-layer weight gradient: emb^T x grad_logits.
        gemm_record("matmul_tn", 64, 64, 16, (1, 64), (64, 1), &mut rng),
    ];

    // -- Convolution, forward and backward. -------------------------------
    let spec = Conv2dSpec::new(3, 1, 1);
    let x = rng.normal_tensor(&[8, 8, 12, 12], 0.0, 1.0);
    let w = rng.normal_tensor(&[16, 8, 3, 3], 0.0, 0.3);
    let (n, c, hh, ww, o) = (8usize, 8usize, 12usize, 12usize, 16usize);
    let conv_flops = 2 * n * o * (c * 9) * (hh * ww);
    records.push(bench_pair(
        "conv2d",
        format!("{n}x{c}x{hh}x{ww}->{o}"),
        conv_flops,
        || black_box(conv::conv2d(&x, &w, None, spec)),
        Some(&mut || black_box(conv2d_naive(&x, &w, spec))),
    ));
    let y = conv::conv2d(&x, &w, None, spec);
    records.push(bench_pair(
        "conv2d_backward",
        format!("{n}x{c}x{hh}x{ww}->{o}"),
        2 * conv_flops,
        || black_box(conv::conv2d_backward(&x, &w, &y, spec)),
        Some(&mut || black_box(conv2d_backward_naive(&x, &w, &y, spec))),
    ));

    // Student trunk layer at the DFKD training batch size.
    let spec2 = Conv2dSpec::new(3, 2, 1);
    let xs = rng.normal_tensor(&[16, 12, 12, 12], 0.0, 1.0);
    let ws = rng.normal_tensor(&[24, 12, 3, 3], 0.0, 0.3);
    let sflops = 2 * 16 * 24 * (12 * 9) * (6 * 6);
    records.push(bench_pair(
        "conv2d",
        "16x12x12x12->24 s2".to_string(),
        sflops,
        || black_box(conv::conv2d(&xs, &ws, None, spec2)),
        Some(&mut || black_box(conv2d_naive(&xs, &ws, spec2))),
    ));

    // Fused conv+bias+ReLU epilogue against the two-pass path it replaced:
    // bias-adding conv followed by a separate out-of-place ReLU sweep over a
    // freshly allocated output tensor.
    let bias = rng.normal_tensor(&[16], 0.0, 0.1);
    records.push(bench_pair(
        "conv2d_bias_relu",
        format!("{n}x{c}x{hh}x{ww}->{o}"),
        conv_flops,
        || black_box(conv::conv2d_fused(&x, &w, Some(&bias), spec, ConvEpilogue::Relu)),
        Some(&mut || {
            let y = conv::conv2d(&x, &w, Some(&bias), spec);
            let mut out = Tensor::zeros(y.shape().dims());
            vecmath::vec_relu(y.data(), out.data_mut());
            black_box(out)
        }),
    ));

    // -- Frozen-graph inference vs the Var-based eval path. -----------------
    // A ResNet-18 teacher forward at the DFKD eval batch size. The naive side
    // reproduces the legacy call sites exactly: wrap the batch in a constant
    // Var, run the module under `ForwardCtx::eval()`, unwrap to a `Tensor` —
    // paying the autograd-node and BN normalization allocations the frozen
    // graph eliminates.
    let mut model_rng = TensorRng::seed_from(7);
    let model = Arch::ResNet18.build(10, 8, &mut model_rng);
    let frozen = model.freeze_with(&FreezeOptions::fused());
    let xb = rng.normal_tensor(&[16, 3, 8, 8], 0.0, 1.0);
    // Approximate FLOPs: conv MACs of the width-8 CIFAR ResNet-18 on 8x8
    // inputs (stem + three stages + head), times two, times the batch.
    let frozen_flops = 2 * 16 * 423_424;
    records.push(bench_pair(
        "frozen_forward",
        "resnet18-w8 16x3x8x8".to_string(),
        frozen_flops,
        || black_box(frozen.forward(&xb)),
        Some(&mut || {
            let logits = model.forward(&Var::constant(xb.clone()), &mut ForwardCtx::eval());
            black_box(logits.to_tensor())
        }),
    ));

    // -- Vectorized transcendentals and softmax. ---------------------------
    let logits = rng.normal_tensor(&[256, 100], 0.0, 2.0);
    // ~5 flops/element for the reduction passes; exp itself is uncounted so
    // the GFLOP/s column stays comparable across math-library versions.
    records.push(bench_pair(
        "softmax_rows",
        "256x100".to_string(),
        5 * 256 * 100,
        || black_box(logits.softmax_rows()),
        Some(&mut || {
            let (rows, k) = (256usize, 100usize);
            let mut out = vec![0.0f32; rows * k];
            for i in 0..rows {
                let row = &logits.data()[i * k..(i + 1) * k];
                let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                let mut z = 0.0f32;
                for (o, &v) in out[i * k..(i + 1) * k].iter_mut().zip(row) {
                    *o = (v - m).exp();
                    z += *o;
                }
                for o in &mut out[i * k..(i + 1) * k] {
                    *o /= z;
                }
            }
            black_box(out[0])
        }),
    ));

    let xv: Vec<f32> = (0..4096).map(|_| rng.normal() * 4.0).collect();
    let mut yv = vec![0.0f32; xv.len()];
    let mut yn = vec![0.0f32; xv.len()];
    records.push(bench_pair(
        "vec_exp",
        "4096".to_string(),
        xv.len(),
        || {
            vecmath::vec_exp(&xv, &mut yv);
            black_box(yv[0])
        },
        Some(&mut || {
            for (y, &x) in yn.iter_mut().zip(&xv) {
                *y = x.exp();
            }
            black_box(yn[0])
        }),
    ));

    // -- Report. -----------------------------------------------------------
    let json = serde_json::to_string_pretty(&Value::Array(
        records.iter().map(Record::to_value).collect(),
    ))
    .expect("benchmark records always serialize");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json");
    std::fs::write(path, json + "\n").expect("failed to write BENCH_kernels.json");
    println!("\nwrote {path}");
}
