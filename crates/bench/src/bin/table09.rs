//! Regenerates paper Table 09 (registry id `table09`) at the full budget.

fn main() {
    let budget = cae_bench::budget_from_env("full");
    let report = cae_bench::run_one("table09", &budget);
    cae_bench::emit(&report);
}
