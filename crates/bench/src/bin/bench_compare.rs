//! Bench regression gate CLI: diffs the current `BENCH_*.json` records
//! against the committed baselines in `crates/bench/baselines/` and exits
//! non-zero on any regression (see [`cae_bench::compare`] for the
//! per-metric tolerance bands).
//!
//! ```text
//! cargo run --release -p cae-bench --bin bench_compare
//! cargo run ... --bin bench_compare -- --current DIR --baseline DIR
//! ```
//!
//! Exit codes: 0 all checks pass, 1 at least one regression, 2 a record
//! was unreadable or malformed. `scripts/tier1.sh` runs this on every
//! pass, so a perf regression fails tier-1 the same way a broken test
//! does.

use cae_bench::compare::{attribute_regression, gated_files, Check};
use serde::Value;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Repository root: current records live here.
fn repo_root() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
}

/// Committed baselines shipped with the bench crate.
fn default_baseline_dir() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/baselines"))
}

fn parse_dirs(args: &[String]) -> Result<(PathBuf, PathBuf), String> {
    let mut current = repo_root();
    let mut baseline = default_baseline_dir();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let target = match arg.as_str() {
            "--current" => &mut current,
            "--baseline" => &mut baseline,
            other => return Err(format!("unknown flag '{other}' (--current DIR | --baseline DIR)")),
        };
        let value = iter.next().ok_or_else(|| format!("{arg} is missing its value"))?;
        *target = PathBuf::from(value);
    }
    Ok((current, baseline))
}

fn load(dir: &Path, file: &str) -> Result<Value, String> {
    let path = dir.join(file);
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    serde_json::from_str(&text).map_err(|e| format!("cannot parse {}: {e}", path.display()))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (current_dir, baseline_dir) = match parse_dirs(&args) {
        Ok(dirs) => dirs,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    println!(
        "bench_compare: {} vs baseline {}",
        current_dir.display(),
        baseline_dir.display()
    );

    let mut regressions = 0usize;
    let mut total = 0usize;
    for (file, compare) in gated_files() {
        let pair = load(&current_dir, file).and_then(|cur| {
            let base = load(&baseline_dir, file)?;
            compare(&cur, &base).map_err(|e| e.to_string())
        });
        let checks: Vec<Check> = match pair {
            Ok(checks) => checks,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        };
        for check in checks {
            total += 1;
            if check.ok {
                println!("  ok        {:<45} {}", check.metric, check.detail);
            } else {
                regressions += 1;
                println!("  REGRESSED {:<45} {}", check.metric, check.detail);
            }
        }
    }

    if regressions > 0 {
        // Attribute before failing: the traces bench_trace leaves behind
        // (committed baseline vs current run) usually name the span that
        // slowed down, turning "a number moved" into "this code moved".
        let base_trace = baseline_dir.join("trace_table02.jsonl");
        let cur_trace = current_dir.join("trace_table02.jsonl");
        match attribute_regression(&base_trace, &cur_trace) {
            Some(rendered) => {
                eprintln!("trace-diff attribution ({} vs {}):", base_trace.display(), cur_trace.display());
                eprint!("{rendered}");
            }
            None => eprintln!(
                "no trace-diff attribution: need both {} and {} — run bench_trace, or \
                 diff two traces by hand with `cae-dfkd trace-diff`",
                base_trace.display(),
                cur_trace.display()
            ),
        }
        eprintln!("bench_compare: {regressions}/{total} checks regressed");
        ExitCode::FAILURE
    } else {
        println!("bench_compare: all {total} checks pass");
        ExitCode::SUCCESS
    }
}
