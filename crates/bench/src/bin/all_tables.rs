//! Regenerates every paper table and figure in order, fault-isolated and
//! resumable.
//!
//! Each experiment runs via `ExperimentEntry::run`, so one broken table
//! reports its error and the sweep continues. Completed JSON artifacts
//! under the results directory are detected and skipped on re-run
//! (disable with `CAE_RESUME=0`), so an interrupted sweep picks up where
//! it left off instead of redoing hours of finished work.

use std::process::ExitCode;

fn main() -> ExitCode {
    let budget = cae_bench::budget_from_env("full");
    let resume = cae_bench::resume_enabled();
    let mut failures = Vec::new();
    for entry in cae_core::experiments::registry().iter().filter(|e| e.in_paper) {
        if resume {
            if let Some(path) = cae_bench::completed_artifact(entry) {
                eprintln!(
                    ">>> {}: already completed ({}), skipping (CAE_RESUME=0 to re-run)",
                    entry.id,
                    path.display()
                );
                continue;
            }
        }
        eprintln!(">>> running {} ...", entry.id);
        match entry.run(&budget) {
            Ok(report) => cae_bench::emit(&report),
            Err(e) => {
                eprintln!(">>> {e}; continuing with the remaining tables\n");
                failures.push(e);
            }
        }
    }
    if failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        eprintln!("{} experiment(s) failed:", failures.len());
        for e in &failures {
            eprintln!("  {e}");
        }
        ExitCode::FAILURE
    }
}
