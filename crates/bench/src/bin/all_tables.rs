//! Regenerates every paper table and figure in order.

fn main() {
    let budget = cae_bench::budget_from_env("full");
    for name in cae_bench::paper_experiment_ids() {
        eprintln!(">>> running {name} ...");
        let report = cae_bench::run_one(name, &budget);
        cae_bench::emit(&report);
    }
}
