//! Regenerates paper Table 07 (registry id `table07`) at the full budget.

fn main() {
    let budget = cae_bench::budget_from_env("full");
    let report = cae_bench::run_one("table07", &budget);
    cae_bench::emit(&report);
}
