//! Extension experiment (paper Fig. 1c taken literally): continual transfer
//! of one data-free-distilled backbone across a *sequence* of downstream
//! tasks, reporting per-stage performance and end-of-sequence forgetting.

use cae_core::continual::continual_transfer;
use cae_core::method::MethodSpec;
use cae_core::pipeline::run_dfkd;
use cae_core::report::Report;
use cae_core::teacher::clone_classifier;
use cae_core::transfer::TaskSet;
use cae_data::dense::DensePreset;
use cae_data::presets::ClassificationPreset;
use cae_nn::models::Arch;

fn main() {
    let budget = cae_bench::budget_from_env("fast");
    let preset = ClassificationPreset::C100Sim;
    let mut report = Report::new(
        "Continual",
        "Sequential downstream transfer (extension): per-stage pAcc and forgetting",
        &["pAcc after stage", "pAcc final", "forgetting"],
    );

    for spec in [MethodSpec::vanilla(), MethodSpec::cae_dfkd(4)] {
        let run = run_dfkd(preset, Arch::ResNet34, Arch::ResNet18, &spec, &budget, 42);
        let backbone = clone_classifier(
            run.student.as_ref(),
            Arch::ResNet18,
            preset.num_classes(),
            budget.base_width,
        );
        let (t1, e1) = DensePreset::NyuSim.generate(64, 16, 11);
        let (t2, e2) = DensePreset::AdeSim.generate(64, 16, 12);
        let stages = vec![
            ("NYUv2 (sim)".to_owned(), TaskSet::seg_only(), t1, e1),
            ("ADE-20K (sim)".to_owned(), TaskSet::seg_only(), t2, e2),
        ];
        let outcome = continual_transfer(backbone, stages, budget.finetune_steps, 5);
        for stage in outcome {
            report.push_row(
                &format!("{} / {}", spec.name, stage.name),
                [
                    stage.after_training.pacc.unwrap_or(0.0) * 100.0,
                    stage.final_metrics.pacc.unwrap_or(0.0) * 100.0,
                    stage.pacc_forgetting().unwrap_or(0.0) * 100.0,
                ],
            );
        }
    }
    report.note("extension beyond the paper: does CAE-DFKD's domain-invariant representation also forget less?");
    cae_bench::emit(&report);
}
