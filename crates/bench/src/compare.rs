//! Bench regression gate: diffs current `BENCH_*.json` records against
//! committed baselines with per-metric tolerance bands.
//!
//! Timing medians move with host load, so absolute nanoseconds are never
//! compared. The gate instead checks the *invariants* each bench record
//! exists to protect:
//!
//! - `BENCH_kernels.json` — every baselined `(op, shape)` still exists and
//!   keeps at least half its baseline speedup over the naive kernel (a 2×
//!   band absorbs host noise; losing more means a real kernel regression);
//! - `BENCH_trace.json` — traced and untraced reports stayed identical,
//!   and the disabled-path overhead is under an absolute 3% cap;
//! - `BENCH_experiments.json` — serial and parallel reports stayed
//!   identical, and every *measured* point of the 1/2/4-thread scaling
//!   curve clears its absolute speedup floor plus the retention band of
//!   its baseline point. Points the bench skipped because the host lacks
//!   the cores pass with a note — but a point skipped on a host that *has*
//!   the cores is a regression (the scaling feature silently stopped being
//!   measured);
//! - `BENCH_faults.json` — the recovered run is byte-identical to the
//!   clean one, injection still produces FAILED rows, and retry recovery
//!   costs at most baseline + 50 percentage points.
//! - `BENCH_serve.json` — predictions stayed byte-identical across
//!   batching configurations, dynamic batching keeps a real throughput
//!   edge over the one-request-at-a-time baseline (absolute floor plus a
//!   retention band of the committed baseline), the best config's p99
//!   stays under its latency cutoff, int8 quantization costs at most
//!   1 accuracy point, and the batched p99 stays within a 3× tolerance
//!   band of its baseline.
//!
//! The `bench_compare` bin prints one line per check and exits non-zero on
//! any regression; `scripts/tier1.sh` runs it on every tier-1 pass.

use serde::Value;

/// Disabled-path tracing overhead cap, in percent (absolute, not relative
/// to baseline: the whole point of the relaxed-load gate is that tracing
/// costs nothing when off).
pub const TRACE_OVERHEAD_CAP_PCT: f64 = 3.0;

/// Fraction of its baseline a speedup metric must retain.
pub const SPEEDUP_RETENTION: f64 = 0.5;

/// Percentage points of extra recovery overhead tolerated over baseline.
pub const RECOVERY_OVERHEAD_SLACK_PCT: f64 = 50.0;

/// Absolute floor on the measured 2-thread cell-parallel speedup over
/// serial (the scaling acceptance gate: two real cores must buy a real
/// speedup, not the ~1.0× of two threads time-slicing one core).
pub const SCALING_2T_SPEEDUP_FLOOR: f64 = 1.5;

/// Absolute floor on measured points at 4+ threads. Sub-linear headroom is
/// expected (shared caches, cells ≠ multiples of threads), so the floor
/// grows slower than the thread count.
pub const SCALING_4T_SPEEDUP_FLOOR: f64 = 1.8;

/// Absolute floor on the dynamic-batching throughput edge over the
/// one-request-at-a-time baseline (the serve acceptance gate).
///
/// What batching can buy is host-dependent. The per-request fixed cost
/// (queue handoff, wakeup, dispatch) is amortized across the batch on any
/// host, but the per-image variable cost (im2col + GEMM) is paid either
/// way — so on a single-core host the measured edge tops out around
/// 1.1–1.4× for the smoke-budget student. On multi-core hosts the batched
/// forward crosses the GEMM parallelism threshold and fans out across the
/// pool while a batch-1 forward cannot, so the edge grows with cores. The
/// floor is set to the portable single-core guarantee (broken batching
/// shows up as ~1.0× or below); the [`SPEEDUP_RETENTION`] band against
/// the committed baseline keeps per-host regressions visible above it.
pub const SERVE_SPEEDUP_FLOOR: f64 = 1.05;

/// Maximum accuracy cost of int8 weight quantization, in points.
pub const SERVE_INT8_DELTA_CAP_PTS: f64 = 1.0;

/// Multiplicative tolerance band on the batched p99 latency vs its
/// baseline. Latency percentiles move with host load far more than
/// throughput ratios do, so the band is wide; the hard per-host bound is
/// `p99_within_cutoff`, which is absolute.
pub const SERVE_P99_TOLERANCE: f64 = 3.0;

/// One gate check: which metric, whether it passed, and a human line.
#[derive(Debug, Clone, PartialEq)]
pub struct Check {
    /// Metric identifier, e.g. `kernels/matmul 64x128x96/speedup`.
    pub metric: String,
    /// Whether the check passed.
    pub ok: bool,
    /// Rendered `current vs baseline` detail.
    pub detail: String,
}

impl Check {
    fn pass(metric: impl Into<String>, detail: impl Into<String>) -> Check {
        Check { metric: metric.into(), ok: true, detail: detail.into() }
    }

    fn fail(metric: impl Into<String>, detail: impl Into<String>) -> Check {
        Check { metric: metric.into(), ok: false, detail: detail.into() }
    }
}

/// A malformed or incomplete bench record (distinct from a regression: the
/// bin exits 2 for these, 1 for regressions).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompareError(pub String);

impl std::fmt::Display for CompareError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CompareError {}

fn f64_field(v: &Value, key: &str, ctx: &str) -> Result<f64, CompareError> {
    match v.get(key) {
        Some(Value::Number(n)) => Ok(*n),
        other => Err(CompareError(format!("{ctx}: field '{key}' is not a number ({other:?})"))),
    }
}

fn bool_field(v: &Value, key: &str, ctx: &str) -> Result<bool, CompareError> {
    match v.get(key) {
        Some(Value::Bool(b)) => Ok(*b),
        other => Err(CompareError(format!("{ctx}: field '{key}' is not a bool ({other:?})"))),
    }
}

fn str_field<'v>(v: &'v Value, key: &str, ctx: &str) -> Result<&'v str, CompareError> {
    match v.get(key) {
        Some(Value::String(s)) => Ok(s),
        other => Err(CompareError(format!("{ctx}: field '{key}' is not a string ({other:?})"))),
    }
}

/// Reads an optional string field (absent or non-string returns `None`).
fn opt_str_field<'v>(v: &'v Value, key: &str) -> Option<&'v str> {
    match v.get(key) {
        Some(Value::String(s)) => Some(s),
        _ => None,
    }
}

/// Compares `BENCH_kernels.json` records (arrays of per-op entries): every
/// baselined `(op, shape)` must still exist and retain at least
/// [`SPEEDUP_RETENTION`] of its baseline speedup.
///
/// Records carry the SIMD `backend` they were measured under. When the
/// baseline and current rows name *different* backends (e.g. an `avx2`
/// baseline checked on a `scalar`-forced or aarch64 host) the speedup band
/// is skipped rather than reported as a regression — the comparison would
/// measure the host's instruction set, not the kernel.
///
/// # Errors
/// Returns [`CompareError`] on malformed records.
pub fn compare_kernels(current: &Value, baseline: &Value) -> Result<Vec<Check>, CompareError> {
    let ctx = "BENCH_kernels.json";
    let (Value::Array(cur), Value::Array(base)) = (current, baseline) else {
        return Err(CompareError(format!("{ctx}: expected a JSON array in both trees")));
    };
    let mut checks = Vec::new();
    for entry in base {
        let op = str_field(entry, "op", ctx)?;
        let shape = str_field(entry, "shape", ctx)?;
        let metric = format!("kernels/{op} {shape}/speedup");
        let base_speedup = f64_field(entry, "speedup", ctx)?;
        let found = cur.iter().find(|e| {
            opt_str_field(e, "op") == Some(op) && opt_str_field(e, "shape") == Some(shape)
        });
        let Some(found) = found else {
            checks.push(Check::fail(metric, "entry missing from current record"));
            continue;
        };
        let base_backend = opt_str_field(entry, "backend");
        let cur_backend = opt_str_field(found, "backend");
        if let (Some(bb), Some(cb)) = (base_backend, cur_backend) {
            if bb != cb {
                checks.push(Check::pass(
                    metric,
                    format!("skipped: baseline backend '{bb}', current '{cb}'"),
                ));
                continue;
            }
        }
        let cur_speedup = f64_field(found, "speedup", ctx)?;
        let floor = base_speedup * SPEEDUP_RETENTION;
        let detail = format!("{cur_speedup:.2}x vs baseline {base_speedup:.2}x (floor {floor:.2}x)");
        checks.push(if cur_speedup >= floor {
            Check::pass(metric, detail)
        } else {
            Check::fail(metric, detail)
        });
    }
    Ok(checks)
}

/// Compares `BENCH_trace.json`: byte-identical traced/untraced reports and
/// the absolute disabled-path overhead cap (the tier-1 "tracing stays
/// free" guard).
///
/// # Errors
/// Returns [`CompareError`] on malformed records.
pub fn compare_trace(current: &Value, _baseline: &Value) -> Result<Vec<Check>, CompareError> {
    let ctx = "BENCH_trace.json";
    let identical = bool_field(current, "reports_identical", ctx)?;
    let overhead = f64_field(current, "overhead_pct", ctx)?;
    let mut checks = vec![if identical {
        Check::pass("trace/reports_identical", "true")
    } else {
        Check::fail("trace/reports_identical", "traced run changed the report bytes")
    }];
    let detail = format!("{overhead:.2}% (cap {TRACE_OVERHEAD_CAP_PCT}%)");
    checks.push(if overhead <= TRACE_OVERHEAD_CAP_PCT {
        Check::pass("trace/overhead_pct", detail)
    } else {
        Check::fail("trace/overhead_pct", detail)
    });
    Ok(checks)
}

/// The scaling-curve points of a `BENCH_experiments.json` record, as
/// `(threads, skipped, speedup)` tuples in record order.
fn scaling_curve(record: &Value, ctx: &str) -> Result<Vec<(u64, bool, Option<f64>)>, CompareError> {
    let Some(Value::Array(points)) = record.get("curve") else {
        return Err(CompareError(format!("{ctx}: field 'curve' is not an array")));
    };
    points
        .iter()
        .map(|point| {
            let threads = f64_field(point, "threads", ctx)? as u64;
            let skipped = bool_field(point, "skipped", ctx)?;
            let speedup = match (skipped, threads) {
                (false, t) if t > 1 => Some(f64_field(point, "speedup", ctx)?),
                _ => None,
            };
            Ok((threads, skipped, speedup))
        })
        .collect()
}

/// The absolute speedup floor for a measured point at `threads` threads.
fn scaling_floor(threads: u64) -> f64 {
    if threads >= 4 {
        SCALING_4T_SPEEDUP_FLOOR
    } else {
        SCALING_2T_SPEEDUP_FLOOR
    }
}

/// Compares `BENCH_experiments.json`: byte-identical reports across every
/// measured thread count, and each measured point of the scaling curve
/// clears both its absolute floor ([`SCALING_2T_SPEEDUP_FLOOR`] /
/// [`SCALING_4T_SPEEDUP_FLOOR`]) and [`SPEEDUP_RETENTION`] of the matching
/// baseline point. Points skipped because `host_parallelism` is too low
/// pass with a note; a point skipped *despite* enough cores regresses.
///
/// # Errors
/// Returns [`CompareError`] on malformed records.
pub fn compare_experiments(current: &Value, baseline: &Value) -> Result<Vec<Check>, CompareError> {
    let ctx = "BENCH_experiments.json";
    let identical = bool_field(current, "reports_identical", ctx)?;
    let host = f64_field(current, "host_parallelism", ctx)? as u64;
    let curve = scaling_curve(current, ctx)?;
    let base_curve = scaling_curve(baseline, ctx)?;

    let mut checks = vec![if identical {
        Check::pass("experiments/reports_identical", "true")
    } else {
        Check::fail("experiments/reports_identical", "parallel run changed the report bytes")
    }];
    if !curve.iter().any(|&(t, skipped, _)| t == 1 && !skipped) {
        return Err(CompareError(format!("{ctx}: curve has no measured serial point")));
    }
    for &(threads, skipped, speedup) in curve.iter().filter(|&&(t, _, _)| t > 1) {
        let metric = format!("experiments/scaling_{threads}t");
        if skipped {
            checks.push(if threads > host {
                Check::pass(metric, format!("skipped (host_parallelism {host} < {threads})"))
            } else {
                Check::fail(
                    metric,
                    format!("skipped although the host has {host} cores — scaling went unmeasured"),
                )
            });
            continue;
        }
        let speedup =
            speedup.ok_or_else(|| CompareError(format!("{ctx}: measured {threads}t point lacks 'speedup'")))?;
        let base_point = base_curve
            .iter()
            .find(|&&(t, skipped, s)| t == threads && !skipped && s.is_some())
            .and_then(|&(_, _, s)| s);
        let floor = base_point.map_or(scaling_floor(threads), |b| {
            scaling_floor(threads).max(b * SPEEDUP_RETENTION)
        });
        let baseline_note =
            base_point.map_or_else(|| "no baseline point".to_string(), |b| format!("baseline {b:.2}x"));
        let detail = format!("{speedup:.2}x vs {baseline_note} (floor {floor:.2}x)");
        checks.push(if speedup >= floor {
            Check::pass(metric, detail)
        } else {
            Check::fail(metric, detail)
        });
    }
    Ok(checks)
}

/// Compares `BENCH_faults.json`: recovery must stay byte-identical,
/// injection must still fail rows, and recovery overhead may exceed
/// baseline by at most [`RECOVERY_OVERHEAD_SLACK_PCT`] points.
///
/// # Errors
/// Returns [`CompareError`] on malformed records.
pub fn compare_faults(current: &Value, baseline: &Value) -> Result<Vec<Check>, CompareError> {
    let ctx = "BENCH_faults.json";
    let identical = bool_field(current, "recovered_identical_to_clean", ctx)?;
    let failed_rows = f64_field(current, "failed_rows_without_retries", ctx)?;
    let cur_overhead = f64_field(current, "recovery_overhead_pct", ctx)?;
    let base_overhead = f64_field(baseline, "recovery_overhead_pct", ctx)?;
    let mut checks = vec![if identical {
        Check::pass("faults/recovered_identical_to_clean", "true")
    } else {
        Check::fail(
            "faults/recovered_identical_to_clean",
            "retried run no longer matches the clean run",
        )
    }];
    checks.push(if failed_rows >= 1.0 {
        Check::pass("faults/failed_rows_without_retries", format!("{failed_rows:.0} rows"))
    } else {
        Check::fail(
            "faults/failed_rows_without_retries",
            "fault injection produced no FAILED rows — the harness is not exercising recovery",
        )
    });
    let cap = base_overhead + RECOVERY_OVERHEAD_SLACK_PCT;
    let detail = format!("{cur_overhead:.2}% vs baseline {base_overhead:.2}% (cap {cap:.2}%)");
    checks.push(if cur_overhead <= cap {
        Check::pass("faults/recovery_overhead_pct", detail)
    } else {
        Check::fail("faults/recovery_overhead_pct", detail)
    });
    Ok(checks)
}

/// Compares `BENCH_serve.json`: byte-identical predictions across batching
/// configurations, the batched speedup holds both the absolute
/// [`SERVE_SPEEDUP_FLOOR`] and [`SPEEDUP_RETENTION`] of its baseline, the
/// best config's p99 stays under its own latency cutoff, int8 accuracy
/// loss stays under [`SERVE_INT8_DELTA_CAP_PTS`], and the batched p99
/// stays within [`SERVE_P99_TOLERANCE`]× its baseline.
///
/// # Errors
/// Returns [`CompareError`] on malformed records.
pub fn compare_serve(current: &Value, baseline: &Value) -> Result<Vec<Check>, CompareError> {
    let ctx = "BENCH_serve.json";
    let identical = bool_field(current, "predictions_identical", ctx)?;
    let within_cutoff = bool_field(current, "p99_within_cutoff", ctx)?;
    let cur_speedup = f64_field(current, "batched_speedup", ctx)?;
    let base_speedup = f64_field(baseline, "batched_speedup", ctx)?;
    let cur_p99 = f64_field(current, "batched_p99_us", ctx)?;
    let base_p99 = f64_field(baseline, "batched_p99_us", ctx)?;
    let int8 = current
        .get("int8")
        .ok_or_else(|| CompareError(format!("{ctx}: field 'int8' missing")))?;
    let delta = f64_field(int8, "delta_points", ctx)?;

    let mut checks = vec![if identical {
        Check::pass("serve/predictions_identical", "true")
    } else {
        Check::fail(
            "serve/predictions_identical",
            "a batching configuration changed a prediction",
        )
    }];
    let floor = SERVE_SPEEDUP_FLOOR.max(base_speedup * SPEEDUP_RETENTION);
    let detail = format!("{cur_speedup:.2}x vs baseline {base_speedup:.2}x (floor {floor:.2}x)");
    checks.push(if cur_speedup >= floor {
        Check::pass("serve/batched_speedup", detail)
    } else {
        Check::fail("serve/batched_speedup", detail)
    });
    checks.push(if within_cutoff {
        Check::pass("serve/p99_within_cutoff", "true")
    } else {
        Check::fail(
            "serve/p99_within_cutoff",
            "best config's p99 exceeded its max_latency_us cutoff",
        )
    });
    let cap = base_p99 * SERVE_P99_TOLERANCE;
    let detail = format!("{cur_p99:.0}us vs baseline {base_p99:.0}us (cap {cap:.0}us)");
    checks.push(if cur_p99 <= cap {
        Check::pass("serve/batched_p99_us", detail)
    } else {
        Check::fail("serve/batched_p99_us", detail)
    });
    let detail = format!("{delta:.2} pts (cap {SERVE_INT8_DELTA_CAP_PTS} pts)");
    checks.push(if delta <= SERVE_INT8_DELTA_CAP_PTS {
        Check::pass("serve/int8_delta_points", detail)
    } else {
        Check::fail("serve/int8_delta_points", detail)
    });
    Ok(checks)
}

/// Best-effort regression attribution: aligns a committed baseline trace
/// against the current run's trace (`trace_table02.jsonl`, written by
/// `bench_trace`) by span name and renders the per-span self-time deltas
/// sorted by contribution — the `cae-dfkd trace-diff` view, produced
/// in-process so the gate's failure output already names the span that
/// slowed down.
///
/// Attribution never gates: a missing or unparseable trace on either side
/// returns `None` and the numeric checks stand on their own.
pub fn attribute_regression(
    baseline_jsonl: &std::path::Path,
    current_jsonl: &std::path::Path,
) -> Option<String> {
    let base = std::fs::read_to_string(baseline_jsonl).ok()?;
    let cur = std::fs::read_to_string(current_jsonl).ok()?;
    let base = cae_trace::profile::Profile::from_jsonl(&base).ok()?;
    let cur = cae_trace::profile::Profile::from_jsonl(&cur).ok()?;
    Some(cae_trace::profile::diff(&base, &cur).render(10))
}

/// A per-file comparison function: `(current, baseline) -> checks`.
pub type CompareFn = fn(&Value, &Value) -> Result<Vec<Check>, CompareError>;

/// The five gated record files, paired with their comparison functions.
pub fn gated_files() -> [(&'static str, CompareFn); 5] {
    [
        ("BENCH_kernels.json", compare_kernels),
        ("BENCH_trace.json", compare_trace),
        ("BENCH_experiments.json", compare_experiments),
        ("BENCH_faults.json", compare_faults),
        ("BENCH_serve.json", compare_serve),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(json: &str) -> Value {
        serde_json::from_str(json).expect("test JSON parses")
    }

    const KERNELS: &str = r#"[
        {"op": "matmul", "shape": "64x128x96", "speedup": 4.4},
        {"op": "conv2d", "shape": "8x8x12x12->16", "speedup": 3.1}
    ]"#;

    #[test]
    fn identical_kernels_pass() {
        let checks = compare_kernels(&v(KERNELS), &v(KERNELS)).expect("compares");
        assert_eq!(checks.len(), 2);
        assert!(checks.iter().all(|c| c.ok));
    }

    #[test]
    fn kernel_speedup_below_half_baseline_regresses() {
        let current = v(r#"[
            {"op": "matmul", "shape": "64x128x96", "speedup": 2.0},
            {"op": "conv2d", "shape": "8x8x12x12->16", "speedup": 3.1}
        ]"#);
        let checks = compare_kernels(&current, &v(KERNELS)).expect("compares");
        let matmul = &checks[0];
        assert!(!matmul.ok, "2.0x < floor 2.2x must regress: {matmul:?}");
        assert!(checks[1].ok);
    }

    #[test]
    fn cross_backend_comparison_is_skipped_not_regressed() {
        let baseline = v(r#"[
            {"op": "matmul", "shape": "64x128x96", "backend": "avx2", "speedup": 9.0}
        ]"#);
        // Same op measured on a scalar-forced host at a fraction of the
        // speedup: must skip, not fail.
        let current = v(r#"[
            {"op": "matmul", "shape": "64x128x96", "backend": "scalar", "speedup": 1.1}
        ]"#);
        let checks = compare_kernels(&current, &baseline).expect("compares");
        assert!(checks[0].ok, "cross-backend must not regress: {:?}", checks[0]);
        assert!(checks[0].detail.contains("skipped"));

        // Same backend on both sides: the band applies again.
        let same = v(r#"[
            {"op": "matmul", "shape": "64x128x96", "backend": "avx2", "speedup": 1.1}
        ]"#);
        let checks = compare_kernels(&same, &baseline).expect("compares");
        assert!(!checks[0].ok, "same-backend collapse must regress");
    }

    #[test]
    fn missing_kernel_entry_regresses() {
        let current = v(r#"[{"op": "matmul", "shape": "64x128x96", "speedup": 4.4}]"#);
        let checks = compare_kernels(&current, &v(KERNELS)).expect("compares");
        assert!(checks[0].ok);
        assert!(!checks[1].ok);
        assert!(checks[1].detail.contains("missing"));
    }

    const TRACE: &str = r#"{"overhead_pct": 0.51, "reports_identical": true}"#;

    #[test]
    fn trace_overhead_over_cap_regresses() {
        let checks = compare_trace(&v(TRACE), &v(TRACE)).expect("compares");
        assert!(checks.iter().all(|c| c.ok));
        // Perturb past the 3% cap: the gate must fire.
        let hot = v(r#"{"overhead_pct": 3.7, "reports_identical": true}"#);
        let checks = compare_trace(&hot, &v(TRACE)).expect("compares");
        assert!(checks[0].ok);
        assert!(!checks[1].ok, "3.7% > 3% cap must regress");
    }

    #[test]
    fn trace_report_divergence_regresses() {
        let bad = v(r#"{"overhead_pct": 0.5, "reports_identical": false}"#);
        let checks = compare_trace(&bad, &v(TRACE)).expect("compares");
        assert!(!checks[0].ok);
    }

    /// A single-core host's record: parallel points skipped and marked.
    const EXPERIMENTS: &str = r#"{
        "host_parallelism": 1,
        "curve": [
            {"mode": "serial", "threads": 1, "seconds": 550.0, "skipped": false},
            {"mode": "parallel", "threads": 2, "skipped": true, "reason": "host_parallelism 1 < 2"},
            {"mode": "parallel", "threads": 4, "skipped": true, "reason": "host_parallelism 1 < 4"}
        ],
        "reports_identical": true
    }"#;

    /// A 4-core host's record with a fully measured curve.
    const EXPERIMENTS_4CORE: &str = r#"{
        "host_parallelism": 4,
        "curve": [
            {"mode": "serial", "threads": 1, "seconds": 550.0, "skipped": false},
            {"mode": "parallel", "threads": 2, "seconds": 289.0, "skipped": false, "speedup": 1.9},
            {"mode": "parallel", "threads": 4, "seconds": 170.0, "skipped": false, "speedup": 3.2}
        ],
        "reports_identical": true,
        "best_speedup": 3.2
    }"#;

    #[test]
    fn experiments_skipped_points_pass_only_when_the_host_lacks_cores() {
        // Single-core record: both parallel points skipped, with reasons —
        // the gate must not fail on noise that was never measured.
        let checks = compare_experiments(&v(EXPERIMENTS), &v(EXPERIMENTS)).expect("compares");
        assert_eq!(checks.len(), 3);
        assert!(checks.iter().all(|c| c.ok), "{checks:?}");
        assert!(checks[1].detail.contains("skipped"));

        // The same skipped curve claiming a 4-core host: scaling silently
        // went unmeasured — that is a regression, not a pass.
        let unmeasured = v(&EXPERIMENTS.replace("\"host_parallelism\": 1", "\"host_parallelism\": 4"));
        let checks = compare_experiments(&unmeasured, &v(EXPERIMENTS)).expect("compares");
        assert!(!checks[1].ok, "2t skipped despite 4 cores must regress: {checks:?}");
        assert!(!checks[2].ok);
    }

    #[test]
    fn experiments_measured_points_gate_on_floors_and_retention() {
        let base = v(EXPERIMENTS_4CORE);
        let checks = compare_experiments(&base, &base).expect("compares");
        assert_eq!(checks.len(), 3);
        assert!(checks.iter().all(|c| c.ok), "{checks:?}");

        // A measured 2-thread point below the absolute 1.5x floor fails
        // even with a weak baseline.
        let flat = v(&EXPERIMENTS_4CORE
            .replace("\"speedup\": 1.9", "\"speedup\": 1.01")
            .replace("\"best_speedup\": 3.2", "\"best_speedup\": 1.01"));
        let checks = compare_experiments(&flat, &flat).expect("compares");
        assert!(!checks[1].ok, "1.01x < 1.5x absolute floor must regress: {checks:?}");

        // Retention: 1.6x clears the absolute floor but not half of a 3.9x
        // baseline point.
        let strong_base = v(&EXPERIMENTS_4CORE.replace("\"speedup\": 1.9", "\"speedup\": 3.9"));
        let now = v(&EXPERIMENTS_4CORE.replace("\"speedup\": 1.9", "\"speedup\": 1.6"));
        assert!(compare_experiments(&now, &v(EXPERIMENTS_4CORE)).expect("compares")[1].ok);
        let checks = compare_experiments(&now, &strong_base).expect("compares");
        assert!(!checks[1].ok, "1.6x < 50% of 3.9x baseline must regress: {checks:?}");

        // A skipped baseline point imposes no retention band on a newly
        // measured current point (first run on a bigger host).
        let checks = compare_experiments(&base, &v(EXPERIMENTS)).expect("compares");
        assert!(checks.iter().all(|c| c.ok), "{checks:?}");
    }

    #[test]
    fn experiments_divergent_reports_and_malformed_curves_fire() {
        let diverged = v(&EXPERIMENTS.replace("\"reports_identical\": true", "\"reports_identical\": false"));
        let checks = compare_experiments(&diverged, &v(EXPERIMENTS)).expect("compares");
        assert!(!checks[0].ok);

        let err = compare_experiments(&v(r#"{"reports_identical": true, "host_parallelism": 1}"#), &v(EXPERIMENTS))
            .expect_err("missing curve");
        assert!(err.to_string().contains("curve"));

        let no_serial = v(r#"{
            "host_parallelism": 1,
            "curve": [{"mode": "parallel", "threads": 2, "skipped": true}],
            "reports_identical": true
        }"#);
        let err = compare_experiments(&no_serial, &v(EXPERIMENTS)).expect_err("no serial point");
        assert!(err.to_string().contains("serial"));
    }

    const FAULTS: &str = r#"{
        "failed_rows_without_retries": 15,
        "recovery_overhead_pct": -2.09,
        "recovered_identical_to_clean": true
    }"#;

    #[test]
    fn faults_invariants_hold_and_perturbations_fire() {
        let checks = compare_faults(&v(FAULTS), &v(FAULTS)).expect("compares");
        assert_eq!(checks.len(), 3);
        assert!(checks.iter().all(|c| c.ok));

        let no_rows = v(r#"{
            "failed_rows_without_retries": 0,
            "recovery_overhead_pct": -2.0,
            "recovered_identical_to_clean": true
        }"#);
        let checks = compare_faults(&no_rows, &v(FAULTS)).expect("compares");
        assert!(!checks[1].ok, "zero FAILED rows must regress");

        let slow = v(r#"{
            "failed_rows_without_retries": 15,
            "recovery_overhead_pct": 60.0,
            "recovered_identical_to_clean": true
        }"#);
        let checks = compare_faults(&slow, &v(FAULTS)).expect("compares");
        assert!(!checks[2].ok, "60% > -2.09% + 50pt cap must regress");
    }

    const SERVE: &str = r#"{
        "predictions_identical": true,
        "batched_speedup": 1.4,
        "p99_within_cutoff": true,
        "batched_p99_us": 1800,
        "int8": {"acc_f32": 0.71, "acc_int8": 0.705, "delta_points": 0.5}
    }"#;

    #[test]
    fn serve_invariants_hold_and_perturbations_fire() {
        let checks = compare_serve(&v(SERVE), &v(SERVE)).expect("compares");
        assert_eq!(checks.len(), 5);
        assert!(checks.iter().all(|c| c.ok), "{checks:?}");

        let diverged = v(&SERVE.replace("\"predictions_identical\": true", "\"predictions_identical\": false"));
        let checks = compare_serve(&diverged, &v(SERVE)).expect("compares");
        assert!(!checks[0].ok, "diverged predictions must regress");

        // 1.01x fails the absolute 1.05x floor even though it clears the
        // 50% retention band of the 1.4x baseline.
        let slow = v(&SERVE.replace("1.4", "1.01"));
        let checks = compare_serve(&slow, &v(SERVE)).expect("compares");
        assert!(!checks[1].ok, "1.01x < 1.05x absolute floor must regress");

        // A big baseline raises the floor through the retention band:
        // 1.6x is fine against 1.4x but regresses against 4.0x.
        let fast_base = v(&SERVE.replace("1.4", "4.0"));
        let ok_now = v(&SERVE.replace("1.4", "1.6"));
        let checks = compare_serve(&ok_now, &v(SERVE)).expect("compares");
        assert!(checks[1].ok, "1.6x clears floor and retention of 1.4x");
        let checks = compare_serve(&ok_now, &fast_base).expect("compares");
        assert!(!checks[1].ok, "1.6x < 50% of a 4.0x baseline must regress");

        let over = v(&SERVE.replace("\"p99_within_cutoff\": true", "\"p99_within_cutoff\": false"));
        let checks = compare_serve(&over, &v(SERVE)).expect("compares");
        assert!(!checks[2].ok, "p99 over cutoff must regress");

        let laggy = v(&SERVE.replace("1800", "6000"));
        let checks = compare_serve(&laggy, &v(SERVE)).expect("compares");
        assert!(!checks[3].ok, "6000us > 3x of 1800us band must regress");

        let lossy = v(&SERVE.replace("\"delta_points\": 0.5", "\"delta_points\": 1.4"));
        let checks = compare_serve(&lossy, &v(SERVE)).expect("compares");
        assert!(!checks[4].ok, "1.4 pts > 1 pt int8 cap must regress");
    }

    #[test]
    fn malformed_records_error_instead_of_passing() {
        let err = compare_trace(&v(r#"{"reports_identical": true}"#), &v(TRACE))
            .expect_err("missing overhead_pct");
        assert!(err.to_string().contains("overhead_pct"));
        let err = compare_kernels(&v(r#"{"not": "an array"}"#), &v(KERNELS))
            .expect_err("wrong shape");
        assert!(err.to_string().contains("array"));
        let no_int8 = v(r#"{
            "predictions_identical": true,
            "batched_speedup": 4.0,
            "p99_within_cutoff": true,
            "batched_p99_us": 1000
        }"#);
        let err = compare_serve(&no_int8, &v(SERVE)).expect_err("missing int8 block");
        assert!(err.to_string().contains("int8"));
    }

    #[test]
    fn attribution_names_the_slowed_span_and_never_gates() {
        let dir = std::env::temp_dir().join(format!("cae_attrib_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let base = dir.join("base.jsonl");
        let cur = dir.join("cur.jsonl");
        std::fs::write(
            &base,
            "{\"name\":\"experiment\",\"id\":1,\"parent\":null,\"thread\":0,\"start_ns\":0,\"dur_ns\":3000}\n\
             {\"name\":\"trainer.step\",\"id\":2,\"parent\":1,\"thread\":0,\"start_ns\":100,\"dur_ns\":1000}\n",
        )
        .expect("write base");
        std::fs::write(
            &cur,
            "{\"name\":\"experiment\",\"id\":1,\"parent\":null,\"thread\":0,\"start_ns\":0,\"dur_ns\":5000}\n\
             {\"name\":\"trainer.step\",\"id\":2,\"parent\":1,\"thread\":0,\"start_ns\":100,\"dur_ns\":3000}\n",
        )
        .expect("write cur");

        let rendered = attribute_regression(&base, &cur).expect("both traces parse");
        assert!(
            rendered.contains("top-delta span: trainer.step"),
            "attribution must name the slowed span:\n{rendered}"
        );

        // Missing or garbage traces degrade to None, never to an error.
        assert!(attribute_regression(&dir.join("absent.jsonl"), &cur).is_none());
        std::fs::write(&base, "not json at all").expect("write garbage");
        assert!(attribute_regression(&base, &cur).is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn committed_baselines_pass_against_themselves() {
        // The baselines shipped in-tree must be internally consistent: the
        // gate run against identical current records reports zero
        // regressions (tier1's clean-tree invariant).
        let dir = std::path::Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/baselines"));
        for (file, compare) in gated_files() {
            let text = std::fs::read_to_string(dir.join(file))
                .unwrap_or_else(|e| panic!("baseline {file} unreadable: {e}"));
            let value: Value =
                serde_json::from_str(&text).unwrap_or_else(|e| panic!("baseline {file}: {e}"));
            let checks = compare(&value, &value).unwrap_or_else(|e| panic!("{file}: {e}"));
            assert!(
                checks.iter().all(|c| c.ok),
                "{file} baseline fails its own gate: {checks:?}"
            );
        }
    }
}
