//! Span-tree profiler: turns a drained [`Trace`] (or a saved
//! `trace_<stem>.jsonl`) into answers — where does wall-clock go?
//!
//! The raw span events carry `parent` ids, so the profiler reconstructs
//! the span forest, computes per-node **self time** (duration minus the
//! sum of direct children's durations) and aggregates per span name:
//! call counts, total vs self time, and p50/p95 durations (nearest-rank
//! over raw events). It also extracts the **critical path** through the
//! `experiment` root (the chain of heaviest children), derives throughput
//! metrics from the trace's counters and gauges (GFLOP/s from
//! `gemm.flops` ÷ the exact `gemm` span-stat time, pool utilization from
//! the queue-depth gauge), and renders a flamegraph-folded text artifact
//! (`PROFILE_<stem>.txt`, one `a;b;c self_ns` line per unique stack)
//! consumable by standard flamegraph tooling.
//!
//! Profiles built from a truncated trace (per-thread event cap hit) are
//! marked [`Profile::truncated`]: aggregated statistics stay exact, but
//! the tree — and therefore self times — only covers recorded events.

use crate::{Trace, SpanEvent};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// One span event with an owned name, as parsed back from JSONL (the
/// in-memory [`SpanEvent`] uses `&'static str` names).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawSpan {
    /// Span name.
    pub name: String,
    /// Process-unique span id.
    pub id: u64,
    /// Id of the parent span, if any was open on the recording thread.
    pub parent: Option<u64>,
    /// Recording thread (registration order).
    pub thread: u64,
    /// Start offset from the trace epoch, nanoseconds.
    pub start_ns: u64,
    /// Duration, nanoseconds.
    pub dur_ns: u64,
}

impl From<&SpanEvent> for RawSpan {
    fn from(s: &SpanEvent) -> Self {
        RawSpan {
            name: s.name.to_owned(),
            id: s.id,
            parent: s.parent,
            thread: s.thread,
            start_ns: s.start_ns,
            dur_ns: s.dur_ns,
        }
    }
}

/// One node of the reconstructed span tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileNode {
    /// The underlying span.
    pub span: RawSpan,
    /// Duration minus the summed durations of direct children (clamped at
    /// zero against sub-nanosecond measurement skew).
    pub self_ns: u64,
    /// Indices of direct children in [`Profile::nodes`], start-time order.
    pub children: Vec<usize>,
}

/// Aggregated statistics for one span name, over raw tree events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NameProfile {
    /// Number of recorded spans.
    pub count: u64,
    /// Summed durations, nanoseconds.
    pub total_ns: u64,
    /// Summed self times, nanoseconds.
    pub self_ns: u64,
    /// Median duration (nearest rank), nanoseconds.
    pub p50_ns: u64,
    /// 95th-percentile duration (nearest rank), nanoseconds.
    pub p95_ns: u64,
}

/// Throughput metrics derived from counters/gauges (absent when built
/// from a JSONL file, which carries span events and series only).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DerivedMetrics {
    /// `gemm.flops` ÷ the exact `gemm` stat-span time — sustained GEMM
    /// throughput in GFLOP/s (1 flop/ns = 1 GFLOP/s).
    pub gemm_gflops: Option<f64>,
    /// The SIMD backend most GEMM calls ran under, from the
    /// `gemm.backend.<name>` counters — without it a GFLOP/s number can't
    /// be compared across hosts or `CAE_SIMD` settings.
    pub gemm_backend: Option<&'static str>,
    /// Mean of the `pool.queue_depth` gauge (submitters waiting per job).
    pub pool_mean_queue_depth: Option<f64>,
    /// Mean ÷ max queue depth: how evenly the pool's capacity was used.
    pub pool_utilization: Option<f64>,
}

/// A reconstructed profile: span forest, per-name aggregates and derived
/// throughput.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Profile {
    /// Every recorded span, as tree nodes (start-time order).
    pub nodes: Vec<ProfileNode>,
    /// Indices of roots (spans whose parent was absent), start-time order.
    pub roots: Vec<usize>,
    /// Per-name aggregates over the raw events.
    pub stats: BTreeMap<String, NameProfile>,
    /// Whether the source trace dropped raw events to a per-thread cap —
    /// self times then under-count the dropped subtrees.
    pub truncated: bool,
    /// How many raw span events the source trace dropped.
    pub dropped_spans: u64,
    /// Counter/gauge-derived throughput metrics.
    pub derived: DerivedMetrics,
}

/// Error parsing a `trace_<stem>.jsonl` file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace jsonl line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

impl Profile {
    /// Builds a profile from a drained trace: the span tree from raw
    /// events, plus derived metrics from its counters, gauges and exact
    /// span statistics.
    pub fn from_trace(trace: &Trace) -> Profile {
        let spans: Vec<RawSpan> = trace.spans.iter().map(RawSpan::from).collect();
        let mut profile = Profile::from_spans(spans);
        profile.truncated = trace.dropped_spans > 0;
        profile.dropped_spans = trace.dropped_spans;
        profile.derived.gemm_gflops = match (
            trace.counters.get("gemm.flops"),
            trace.span_stats.get("gemm"),
        ) {
            (Some(&flops), Some(stat)) if stat.total_ns > 0 => {
                Some(flops as f64 / stat.total_ns as f64)
            }
            _ => None,
        };
        profile.derived.gemm_backend = trace
            .counters
            .iter()
            .filter_map(|(&k, &count)| {
                k.strip_prefix("gemm.backend.").map(|name| (count, name))
            })
            .max()
            .map(|(_, name)| name);
        if let Some(g) = trace.gauges.get("pool.queue_depth") {
            if g.count > 0 {
                let mean = g.sum / g.count as f64;
                profile.derived.pool_mean_queue_depth = Some(mean);
                if g.max > 0.0 {
                    profile.derived.pool_utilization = Some(mean / g.max);
                }
            }
        }
        profile
    }

    /// Builds a profile from raw span events alone. Events may arrive in
    /// any order (a JSONL file may have been filtered or re-sorted); the
    /// tree is reconstructed purely from ids.
    pub fn from_spans(mut spans: Vec<RawSpan>) -> Profile {
        spans.sort_by_key(|s| (s.start_ns, s.id));
        let index: BTreeMap<u64, usize> = spans.iter().enumerate().map(|(i, s)| (s.id, i)).collect();
        let mut nodes: Vec<ProfileNode> = spans
            .into_iter()
            .map(|span| ProfileNode { span, self_ns: 0, children: Vec::new() })
            .collect();
        let mut roots = Vec::new();
        for i in 0..nodes.len() {
            match nodes[i].span.parent.and_then(|p| index.get(&p)).copied() {
                // A span cannot parent itself even in a corrupted file.
                Some(p) if p != i => nodes[p].children.push(i),
                _ => roots.push(i),
            }
        }
        for i in 0..nodes.len() {
            let child_ns: u64 = nodes[i]
                .children
                .iter()
                .map(|&c| nodes[c].span.dur_ns)
                .sum();
            nodes[i].self_ns = nodes[i].span.dur_ns.saturating_sub(child_ns);
        }
        let mut durs: BTreeMap<&str, Vec<u64>> = BTreeMap::new();
        let mut stats: BTreeMap<String, NameProfile> = BTreeMap::new();
        for node in &nodes {
            let st = stats.entry(node.span.name.clone()).or_default();
            st.count += 1;
            st.total_ns += node.span.dur_ns;
            st.self_ns += node.self_ns;
            durs.entry(node.span.name.as_str()).or_default().push(node.span.dur_ns);
        }
        let percentiles: Vec<(String, u64, u64)> = durs
            .into_iter()
            .map(|(name, mut ds)| {
                ds.sort_unstable();
                (name.to_owned(), nearest_rank(&ds, 50), nearest_rank(&ds, 95))
            })
            .collect();
        for (name, p50, p95) in percentiles {
            let st = stats.get_mut(&name).expect("stat exists for every name");
            st.p50_ns = p50;
            st.p95_ns = p95;
        }
        Profile { nodes, roots, stats, ..Profile::default() }
    }

    /// Parses a `trace_<stem>.jsonl` file. Span lines are consumed in any
    /// order; series lines (and other non-span objects) are skipped.
    /// Derived counter/gauge metrics are unavailable from JSONL.
    ///
    /// # Errors
    /// Returns a [`ParseError`] naming the first malformed line.
    pub fn from_jsonl(text: &str) -> Result<Profile, ParseError> {
        let mut spans = Vec::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(span) = parse_span_line(line)
                .map_err(|message| ParseError { line: i + 1, message })?
            {
                spans.push(span);
            }
        }
        Ok(Profile::from_spans(spans))
    }

    /// The root node of the `experiment` span, when one was recorded.
    pub fn experiment_root(&self) -> Option<&ProfileNode> {
        self.roots
            .iter()
            .map(|&r| &self.nodes[r])
            .find(|n| n.span.name == "experiment")
    }

    /// `(experiment duration, summed self time of its subtree)` — with a
    /// complete (untruncated) single-tree trace the two agree exactly, so
    /// the self-time table provably accounts for all wall-clock.
    pub fn experiment_coverage(&self) -> Option<(u64, u64)> {
        let root = self
            .roots
            .iter()
            .copied()
            .find(|&r| self.nodes[r].span.name == "experiment")?;
        let mut stack = vec![root];
        let mut self_sum = 0u64;
        while let Some(i) = stack.pop() {
            self_sum += self.nodes[i].self_ns;
            stack.extend_from_slice(&self.nodes[i].children);
        }
        Some((self.nodes[root].span.dur_ns, self_sum))
    }

    /// The critical path from the `experiment` root (falling back to the
    /// longest root): at each level, descend into the heaviest child.
    /// Returns `(name, dur_ns)` pairs from the root down.
    pub fn critical_path(&self) -> Vec<(String, u64)> {
        let start = self
            .roots
            .iter()
            .copied()
            .find(|&r| self.nodes[r].span.name == "experiment")
            .or_else(|| {
                self.roots
                    .iter()
                    .copied()
                    .max_by_key(|&r| self.nodes[r].span.dur_ns)
            });
        let mut path = Vec::new();
        let mut cursor = start;
        while let Some(i) = cursor {
            let node = &self.nodes[i];
            path.push((node.span.name.clone(), node.span.dur_ns));
            cursor = node
                .children
                .iter()
                .copied()
                .max_by_key(|&c| self.nodes[c].span.dur_ns);
        }
        path
    }

    /// Flamegraph-folded stacks: one `a;b;c self_ns` line per unique stack
    /// (semicolon-joined names root→leaf), self time aggregated over every
    /// occurrence, lines sorted for determinism. Pipe into any standard
    /// `flamegraph.pl`-compatible renderer.
    pub fn folded(&self) -> String {
        let mut folded: BTreeMap<String, u64> = BTreeMap::new();
        let mut stack: Vec<(usize, String)> = self
            .roots
            .iter()
            .map(|&r| (r, self.nodes[r].span.name.clone()))
            .collect();
        while let Some((i, path)) = stack.pop() {
            let node = &self.nodes[i];
            if node.self_ns > 0 {
                *folded.entry(path.clone()).or_insert(0) += node.self_ns;
            }
            for &c in &node.children {
                stack.push((c, format!("{path};{}", self.nodes[c].span.name)));
            }
        }
        let mut out = String::new();
        for (path, self_ns) in folded {
            let _ = writeln!(out, "{path} {self_ns}");
        }
        out
    }

    /// Renders the per-name self-time table (sorted by self time,
    /// heaviest first) plus coverage, critical path and derived-throughput
    /// footers — the console answer to "where did the time go?".
    pub fn self_time_table(&self) -> String {
        let mut rows: Vec<(&String, &NameProfile)> = self.stats.iter().collect();
        rows.sort_by(|a, b| b.1.self_ns.cmp(&a.1.self_ns).then(a.0.cmp(b.0)));
        let name_w = rows
            .iter()
            .map(|(n, _)| n.len())
            .chain(std::iter::once("span".len()))
            .max()
            .unwrap_or(4)
            + 2;
        let total_self: u64 = rows.iter().map(|(_, s)| s.self_ns).sum();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:name_w$}{:>8}{:>12}{:>12}{:>7}{:>12}{:>12}",
            "span", "count", "total_ms", "self_ms", "self%", "p50_us", "p95_us"
        );
        for (name, st) in &rows {
            let pct = if total_self > 0 {
                st.self_ns as f64 / total_self as f64 * 100.0
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "{:name_w$}{:>8}{:>12.2}{:>12.2}{:>7.1}{:>12.1}{:>12.1}",
                name,
                st.count,
                st.total_ns as f64 / 1e6,
                st.self_ns as f64 / 1e6,
                pct,
                st.p50_ns as f64 / 1e3,
                st.p95_ns as f64 / 1e3,
            );
        }
        if let Some((root_ns, self_sum)) = self.experiment_coverage() {
            let pct = if root_ns > 0 {
                self_sum as f64 / root_ns as f64 * 100.0
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "self-time coverage: {:.2}% of the experiment span ({:.2}s)",
                pct,
                root_ns as f64 / 1e9
            );
        }
        let path = self.critical_path();
        if !path.is_empty() {
            let rendered: Vec<String> = path
                .iter()
                .map(|(n, d)| format!("{n} ({:.1}ms)", *d as f64 / 1e6))
                .collect();
            let _ = writeln!(out, "critical path: {}", rendered.join(" -> "));
        }
        if let Some(gflops) = self.derived.gemm_gflops {
            let backend = self
                .derived
                .gemm_backend
                .map_or(String::new(), |b| format!(" (backend: {b})"));
            let _ = writeln!(out, "gemm throughput: {gflops:.2} GFLOP/s{backend}");
        }
        if let Some(depth) = self.derived.pool_mean_queue_depth {
            let util = self
                .derived
                .pool_utilization
                .map_or(String::new(), |u| format!(" (utilization {:.0}%)", u * 100.0));
            let _ = writeln!(out, "pool mean queue depth: {depth:.2}{util}");
        }
        if self.truncated {
            let _ = writeln!(
                out,
                "WARNING: trace truncated ({} span events dropped to the per-thread cap); \
                 self times under-count the dropped subtrees",
                self.dropped_spans
            );
        }
        out
    }

    /// Writes the folded stacks to `dir/PROFILE_<stem>.txt` (creating
    /// `dir` first) and returns the path.
    ///
    /// # Errors
    /// Returns any I/O error from creating the directory or writing.
    pub fn save(&self, dir: &Path, stem: &str) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("PROFILE_{stem}.txt"));
        std::fs::write(&path, self.folded())?;
        Ok(path)
    }
}

// ---------------------------------------------------------------------------
// Trace diff: regression attribution
// ---------------------------------------------------------------------------

/// One span name's baseline-vs-current comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiffRow {
    /// Span name (present in either profile).
    pub name: String,
    /// Baseline aggregates (zeroed when the span is new).
    pub base: NameProfile,
    /// Current aggregates (zeroed when the span disappeared).
    pub cur: NameProfile,
    /// Current minus baseline summed self time, nanoseconds (positive =
    /// the span got slower).
    pub delta_self_ns: i64,
    /// Current minus baseline summed total time, nanoseconds.
    pub delta_total_ns: i64,
}

/// A name-aligned comparison of two profiles, rows sorted by absolute
/// self-time delta (largest contribution first, names breaking ties).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceDiff {
    /// Per-name rows, contribution order.
    pub rows: Vec<DiffRow>,
    /// Summed self time across the baseline profile, nanoseconds.
    pub base_self_ns: u64,
    /// Summed self time across the current profile, nanoseconds.
    pub cur_self_ns: u64,
}

/// Aligns two span trees by name and reports per-span self-time deltas:
/// the attribution step behind `cae-dfkd trace-diff` and the bench gate's
/// regression output. Spans appearing in only one profile compare against
/// zero, so added or removed phases surface as whole-size deltas.
pub fn diff(baseline: &Profile, current: &Profile) -> TraceDiff {
    let mut names: Vec<&String> = baseline.stats.keys().collect();
    names.extend(current.stats.keys());
    names.sort();
    names.dedup();
    let mut rows: Vec<DiffRow> = names
        .into_iter()
        .map(|name| {
            let base = baseline.stats.get(name).copied().unwrap_or_default();
            let cur = current.stats.get(name).copied().unwrap_or_default();
            DiffRow {
                name: name.clone(),
                base,
                cur,
                delta_self_ns: cur.self_ns as i64 - base.self_ns as i64,
                delta_total_ns: cur.total_ns as i64 - base.total_ns as i64,
            }
        })
        .collect();
    rows.sort_by(|a, b| {
        b.delta_self_ns
            .unsigned_abs()
            .cmp(&a.delta_self_ns.unsigned_abs())
            .then_with(|| a.name.cmp(&b.name))
    });
    TraceDiff {
        rows,
        base_self_ns: baseline.stats.values().map(|s| s.self_ns).sum(),
        cur_self_ns: current.stats.values().map(|s| s.self_ns).sum(),
    }
}

impl TraceDiff {
    /// The span that got slower by the most self time — the "guilty span"
    /// a regression report should name. `None` when nothing slowed down.
    pub fn top_regression(&self) -> Option<&DiffRow> {
        // Rows are contribution-ordered, so the first positive delta is
        // the largest one.
        self.rows.iter().find(|r| r.delta_self_ns > 0)
    }

    /// Renders up to `limit` rows as a fixed-width table (delta, percent
    /// of the total absolute delta, counts) with a summary footer.
    pub fn render(&self, limit: usize) -> String {
        let total_abs: u64 = self.rows.iter().map(|r| r.delta_self_ns.unsigned_abs()).sum();
        let shown = self.rows.iter().take(limit);
        let name_w = shown
            .clone()
            .map(|r| r.name.len())
            .chain(std::iter::once("span".len()))
            .max()
            .unwrap_or(4)
            + 2;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:name_w$}{:>14}{:>14}{:>14}{:>8}{:>14}",
            "span", "base_self_ms", "cur_self_ms", "delta_ms", "share%", "count"
        );
        for r in shown {
            let share = if total_abs > 0 {
                r.delta_self_ns.unsigned_abs() as f64 / total_abs as f64 * 100.0
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "{:name_w$}{:>14.3}{:>14.3}{:>+14.3}{:>8.1}{:>14}",
                r.name,
                r.base.self_ns as f64 / 1e6,
                r.cur.self_ns as f64 / 1e6,
                r.delta_self_ns as f64 / 1e6,
                share,
                format!("{}->{}", r.base.count, r.cur.count),
            );
        }
        if self.rows.len() > limit {
            let _ = writeln!(out, "... {} more spans elided", self.rows.len() - limit);
        }
        let delta = self.cur_self_ns as i64 - self.base_self_ns as i64;
        let _ = writeln!(
            out,
            "total self time: {:.3}ms -> {:.3}ms ({:+.3}ms)",
            self.base_self_ns as f64 / 1e6,
            self.cur_self_ns as f64 / 1e6,
            delta as f64 / 1e6,
        );
        match self.top_regression() {
            Some(top) => {
                let _ = writeln!(
                    out,
                    "top-delta span: {} ({:+.3}ms self)",
                    top.name,
                    top.delta_self_ns as f64 / 1e6,
                );
            }
            None => {
                let _ = writeln!(out, "top-delta span: none (no span got slower)");
            }
        }
        out
    }
}

/// Nearest-rank percentile over an ascending-sorted slice.
fn nearest_rank(sorted: &[u64], pct: u64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (sorted.len() as u64 * pct).div_ceil(100).max(1) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

/// Parses one JSONL line; `Ok(None)` for non-span objects (series points).
fn parse_span_line(line: &str) -> Result<Option<RawSpan>, String> {
    let fields = parse_flat_object(line)?;
    if fields.iter().any(|(k, _)| k == "series") {
        return Ok(None);
    }
    let str_field = |key: &str| -> Result<&str, String> {
        fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
            .ok_or_else(|| format!("missing field '{key}'"))
    };
    let u64_field = |key: &str| -> Result<u64, String> {
        str_field(key)?
            .parse::<u64>()
            .map_err(|_| format!("field '{key}' is not a u64"))
    };
    let parent = match str_field("parent")? {
        "null" => None,
        v => Some(v.parse::<u64>().map_err(|_| "field 'parent' is not a u64".to_owned())?),
    };
    Ok(Some(RawSpan {
        name: str_field("name")?.to_owned(),
        id: u64_field("id")?,
        parent,
        thread: u64_field("thread")?,
        start_ns: u64_field("start_ns")?,
        dur_ns: u64_field("dur_ns")?,
    }))
}

/// Minimal scanner for one flat JSON object line as this crate emits them:
/// returns `(key, raw value)` pairs, with string values unescaped and
/// nested objects (tags) returned raw and otherwise ignored.
fn parse_flat_object(line: &str) -> Result<Vec<(String, String)>, String> {
    let inner = line
        .strip_prefix('{')
        .and_then(|l| l.strip_suffix('}'))
        .ok_or("not a JSON object")?;
    let bytes = inner.as_bytes();
    let mut fields = Vec::new();
    let mut pos = 0;
    while pos < bytes.len() {
        let (key, next) = parse_string(bytes, pos)?;
        pos = skip_ws(bytes, next);
        if bytes.get(pos) != Some(&b':') {
            return Err(format!("expected ':' after key '{key}'"));
        }
        pos = skip_ws(bytes, pos + 1);
        let (value, next) = parse_value(bytes, pos)?;
        fields.push((key, value));
        pos = skip_ws(bytes, next);
        match bytes.get(pos) {
            Some(b',') => pos = skip_ws(bytes, pos + 1),
            None => break,
            Some(_) => return Err("expected ',' between fields".to_owned()),
        }
    }
    Ok(fields)
}

fn skip_ws(bytes: &[u8], mut pos: usize) -> usize {
    while bytes.get(pos).is_some_and(u8::is_ascii_whitespace) {
        pos += 1;
    }
    pos
}

/// Parses a JSON string starting at `pos`; returns (unescaped, next pos).
fn parse_string(bytes: &[u8], pos: usize) -> Result<(String, usize), String> {
    if bytes.get(pos) != Some(&b'"') {
        return Err("expected '\"'".to_owned());
    }
    let mut out = String::new();
    let mut i = pos + 1;
    while i < bytes.len() {
        match bytes[i] {
            b'"' => return Ok((out, i + 1)),
            b'\\' => {
                let esc = bytes.get(i + 1).ok_or("truncated escape")?;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hex = bytes
                            .get(i + 2..i + 6)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| "bad \\u escape".to_owned())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        i += 4;
                    }
                    other => return Err(format!("unknown escape '\\{}'", *other as char)),
                }
                i += 2;
            }
            _ => {
                // Advance over one UTF-8 scalar.
                let s = &bytes[i..];
                let ch_len = std::str::from_utf8(s)
                    .map(|s| s.chars().next().map_or(1, char::len_utf8))
                    .unwrap_or(1);
                out.push_str(std::str::from_utf8(&s[..ch_len]).map_err(|_| "bad utf-8")?);
                i += ch_len;
            }
        }
    }
    Err("unterminated string".to_owned())
}

/// Parses one JSON value (string / number / null / nested object) starting
/// at `pos`; returns its raw textual form and the next position.
fn parse_value(bytes: &[u8], pos: usize) -> Result<(String, usize), String> {
    match bytes.get(pos) {
        Some(b'"') => parse_string(bytes, pos),
        Some(b'{') => {
            let mut depth = 0usize;
            let mut i = pos;
            let mut in_str = false;
            while i < bytes.len() {
                match bytes[i] {
                    b'"' if i == 0 || bytes[i - 1] != b'\\' => in_str = !in_str,
                    b'{' if !in_str => depth += 1,
                    b'}' if !in_str => {
                        depth -= 1;
                        if depth == 0 {
                            let raw = std::str::from_utf8(&bytes[pos..=i])
                                .map_err(|_| "bad utf-8")?;
                            return Ok((raw.to_owned(), i + 1));
                        }
                    }
                    _ => {}
                }
                i += 1;
            }
            Err("unterminated object".to_owned())
        }
        Some(_) => {
            let start = pos;
            let mut i = pos;
            while i < bytes.len() && !matches!(bytes[i], b',' | b'}') {
                i += 1;
            }
            let raw = std::str::from_utf8(&bytes[start..i]).map_err(|_| "bad utf-8")?;
            Ok((raw.trim().to_owned(), i))
        }
        None => Err("expected a value".to_owned()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(name: &str, id: u64, parent: Option<u64>, start_ns: u64, dur_ns: u64) -> RawSpan {
        RawSpan { name: name.to_owned(), id, parent, thread: 0, start_ns, dur_ns }
    }

    /// experiment(1000) -> cell(600) -> step(200), plus a second cell(250).
    fn sample_spans() -> Vec<RawSpan> {
        vec![
            span("experiment", 1, None, 0, 1000),
            span("scheduler.cell", 2, Some(1), 10, 600),
            span("trainer.step", 3, Some(2), 20, 200),
            span("scheduler.cell", 4, Some(1), 620, 250),
        ]
    }

    #[test]
    fn tree_reconstruction_and_self_times() {
        let p = Profile::from_spans(sample_spans());
        assert_eq!(p.roots.len(), 1);
        let root = &p.nodes[p.roots[0]];
        assert_eq!(root.span.name, "experiment");
        assert_eq!(root.self_ns, 1000 - 600 - 250);
        assert_eq!(p.stats["scheduler.cell"].count, 2);
        assert_eq!(p.stats["scheduler.cell"].total_ns, 850);
        assert_eq!(p.stats["scheduler.cell"].self_ns, (600 - 200) + 250);
        assert_eq!(p.stats["trainer.step"].self_ns, 200);
        // Self times over the experiment subtree sum exactly to the root.
        let (root_ns, self_sum) = p.experiment_coverage().expect("experiment root");
        assert_eq!(root_ns, 1000);
        assert_eq!(self_sum, 1000);
    }

    #[test]
    fn critical_path_descends_heaviest_children() {
        let p = Profile::from_spans(sample_spans());
        let path = p.critical_path();
        let names: Vec<&str> = path.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["experiment", "scheduler.cell", "trainer.step"]);
        assert_eq!(path[1].1, 600, "heaviest cell, not the later one");
    }

    #[test]
    fn folded_stacks_aggregate_by_path() {
        let p = Profile::from_spans(sample_spans());
        let folded = p.folded();
        let lines: Vec<&str> = folded.lines().collect();
        assert!(lines.contains(&"experiment 150"));
        // Both cells' self time lands on one folded stack line.
        assert!(lines.contains(&"experiment;scheduler.cell 650"));
        assert!(lines.contains(&"experiment;scheduler.cell;trainer.step 200"));
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let spans: Vec<RawSpan> = (0..100)
            .map(|i| span("s", i + 1, None, i * 10, (i + 1) * 10))
            .collect();
        let p = Profile::from_spans(spans);
        assert_eq!(p.stats["s"].p50_ns, 500);
        assert_eq!(p.stats["s"].p95_ns, 950);
        assert_eq!(nearest_rank(&[7], 50), 7);
        assert_eq!(nearest_rank(&[], 95), 0);
    }

    #[test]
    fn out_of_order_jsonl_reconstructs_the_same_tree() {
        // Children before parents, interleaved with series lines and blank
        // lines: ids, not file order, define the tree.
        let jsonl = "\n{\"series\":\"student.loss\",\"step\":0,\"value\":2.5}\n\
            {\"name\":\"trainer.step\",\"id\":3,\"parent\":2,\"thread\":0,\"start_ns\":20,\"dur_ns\":200}\n\
            {\"name\":\"scheduler.cell\",\"id\":4,\"parent\":1,\"thread\":0,\"start_ns\":620,\"dur_ns\":250}\n\
            {\"name\":\"scheduler.cell\",\"id\":2,\"parent\":1,\"thread\":0,\"start_ns\":10,\"dur_ns\":600,\"tags\":{\"cell\":0,\"cell_seed\":18446744073709551615}}\n\
            {\"name\":\"experiment\",\"id\":1,\"parent\":null,\"thread\":0,\"start_ns\":0,\"dur_ns\":1000,\"tags\":{\"id\":\"table02\"}}\n";
        let from_file = Profile::from_jsonl(jsonl).expect("parses");
        let from_memory = Profile::from_spans(sample_spans());
        assert_eq!(from_file.roots, from_memory.roots);
        assert_eq!(from_file.stats, from_memory.stats);
        let tree_of = |p: &Profile| -> Vec<(String, u64, Vec<usize>)> {
            p.nodes
                .iter()
                .map(|n| (n.span.name.clone(), n.self_ns, n.children.clone()))
                .collect()
        };
        assert_eq!(tree_of(&from_file), tree_of(&from_memory));
    }

    #[test]
    fn malformed_jsonl_names_the_line() {
        let err = Profile::from_jsonl("{\"name\":\"a\",\"id\":1}\nnot json\n")
            .expect_err("second line is malformed");
        // Line 1 is missing fields, so it errors first.
        assert_eq!(err.line, 1);
        assert!(err.to_string().contains("line 1"));
        let err = Profile::from_jsonl("not json\n").expect_err("must fail");
        assert!(err.message.contains("not a JSON object"));
    }

    #[test]
    fn orphans_become_roots_and_truncation_is_flagged() {
        // Parent id 99 was dropped to the event cap: the child must still
        // appear, as its own root.
        let p = Profile::from_spans(vec![
            span("experiment", 1, None, 0, 1000),
            span("orphan", 5, Some(99), 50, 40),
        ]);
        assert_eq!(p.roots.len(), 2);
        let trace = Trace { dropped_spans: 3, ..Trace::default() };
        let p = Profile::from_trace(&trace);
        assert!(p.truncated);
        assert!(p.self_time_table().contains("WARNING: trace truncated"));
    }

    #[test]
    fn derived_metrics_come_from_counters_and_gauges() {
        let mut trace = Trace::default();
        trace.counters.insert("gemm.flops", 4_000_000);
        trace.span_stats.insert(
            "gemm",
            crate::SpanStat { count: 10, total_ns: 2_000_000, min_ns: 1, max_ns: 1_000_000 },
        );
        trace.gauges.insert(
            "pool.queue_depth",
            crate::GaugeStat { count: 4, last: 1.0, min: 1.0, max: 4.0, sum: 8.0 },
        );
        let p = Profile::from_trace(&trace);
        assert_eq!(p.derived.gemm_gflops, Some(2.0));
        assert_eq!(p.derived.gemm_backend, None);
        assert_eq!(p.derived.pool_mean_queue_depth, Some(2.0));
        assert_eq!(p.derived.pool_utilization, Some(0.5));
        let table = p.self_time_table();
        assert!(table.contains("gemm throughput: 2.00 GFLOP/s"));
        assert!(!table.contains("backend:"), "no backend counter, no suffix");
        assert!(table.contains("pool mean queue depth: 2.00 (utilization 50%)"));
    }

    #[test]
    fn gemm_backend_comes_from_the_majority_counter() {
        let mut trace = Trace::default();
        trace.counters.insert("gemm.flops", 4_000_000);
        trace.span_stats.insert(
            "gemm",
            crate::SpanStat { count: 10, total_ns: 2_000_000, min_ns: 1, max_ns: 1_000_000 },
        );
        // A forced-backend run may mix counters (e.g. a test flipped the
        // override mid-process); the report names the majority backend.
        trace.counters.insert("gemm.backend.scalar", 2);
        trace.counters.insert("gemm.backend.avx2", 8);
        let p = Profile::from_trace(&trace);
        assert_eq!(p.derived.gemm_backend, Some("avx2"));
        assert!(p
            .self_time_table()
            .contains("gemm throughput: 2.00 GFLOP/s (backend: avx2)"));
    }

    #[test]
    fn save_writes_folded_artifact() {
        let p = Profile::from_spans(sample_spans());
        let dir = std::env::temp_dir().join(format!("cae_profile_test_{}", std::process::id()));
        let path = p.save(&dir, "demo").expect("save succeeds");
        assert!(path.ends_with("PROFILE_demo.txt"));
        let text = std::fs::read_to_string(&path).expect("readable");
        assert_eq!(text, p.folded());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_trace_produces_an_empty_but_renderable_profile() {
        for p in [
            Profile::from_spans(Vec::new()),
            Profile::from_jsonl("").expect("empty jsonl parses"),
            Profile::from_trace(&Trace::default()),
        ] {
            assert!(p.nodes.is_empty());
            assert!(p.roots.is_empty());
            assert!(p.stats.is_empty());
            assert!(p.critical_path().is_empty());
            assert_eq!(p.experiment_coverage(), None);
            assert_eq!(p.folded(), "");
            // The table must still render (header only, no footers) rather
            // than panic on empty aggregates.
            let table = p.self_time_table();
            assert!(table.starts_with("span"));
            assert!(!table.contains("self-time coverage"));
            assert!(!table.contains("critical path"));
        }
    }

    #[test]
    fn single_sample_percentiles_collapse_to_the_sample() {
        let p = Profile::from_spans(vec![span("solo", 1, None, 0, 777)]);
        let st = &p.stats["solo"];
        assert_eq!(st.count, 1);
        assert_eq!(st.p50_ns, 777);
        assert_eq!(st.p95_ns, 777, "one sample is every percentile");
        assert_eq!(st.total_ns, 777);
        assert_eq!(st.self_ns, 777);
    }

    #[test]
    fn missing_root_from_truncated_jsonl_still_profiles() {
        // A truncated file lost the experiment root (id 1): every child
        // whose parent is absent becomes its own root, the critical path
        // falls back to the heaviest surviving root, and coverage (which
        // is defined against the experiment span) reports absence.
        let jsonl = "\
            {\"name\":\"scheduler.cell\",\"id\":2,\"parent\":1,\"thread\":0,\"start_ns\":10,\"dur_ns\":600}\n\
            {\"name\":\"trainer.step\",\"id\":3,\"parent\":2,\"thread\":0,\"start_ns\":20,\"dur_ns\":200}\n\
            {\"name\":\"scheduler.cell\",\"id\":4,\"parent\":1,\"thread\":0,\"start_ns\":620,\"dur_ns\":250}\n";
        let p = Profile::from_jsonl(jsonl).expect("parses");
        assert_eq!(p.roots.len(), 2, "both orphaned cells become roots");
        assert!(p.experiment_root().is_none());
        assert_eq!(p.experiment_coverage(), None);
        let path = p.critical_path();
        let names: Vec<&str> = path.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["scheduler.cell", "trainer.step"]);
        // The intact subtree still has exact self times.
        assert_eq!(p.stats["scheduler.cell"].self_ns, (600 - 200) + 250);
    }

    #[test]
    fn diff_aligns_by_name_and_sorts_by_contribution() {
        let base = Profile::from_spans(sample_spans());
        // Current run: the step got 300ns slower, one cell shrank by
        // 50ns, and a new span appeared.
        let cur = Profile::from_spans(vec![
            span("experiment", 1, None, 0, 1300),
            span("scheduler.cell", 2, Some(1), 10, 900),
            span("trainer.step", 3, Some(2), 20, 500),
            span("scheduler.cell", 4, Some(1), 920, 200),
            span("novel.phase", 5, Some(1), 1150, 20),
        ]);
        let d = diff(&base, &cur);
        assert_eq!(d.base_self_ns, 1000);
        assert_eq!(d.cur_self_ns, 1300);
        let top = d.top_regression().expect("something slowed down");
        assert_eq!(top.name, "trainer.step");
        assert_eq!(top.delta_self_ns, 300);
        // Contribution order: |delta| descending.
        let names: Vec<&str> = d.rows.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names[0], "trainer.step");
        let novel = d.rows.iter().find(|r| r.name == "novel.phase").expect("new span present");
        assert_eq!(novel.base.count, 0, "new spans compare against zero");
        assert_eq!(novel.delta_self_ns, 20);
        let rendered = d.render(10);
        assert!(rendered.contains("top-delta span: trainer.step (+0.000ms self)")
            || rendered.contains("top-delta span: trainer.step"));
        assert!(rendered.contains("trainer.step"));
        assert!(rendered.contains("1->1"));
    }

    #[test]
    fn diff_render_elides_and_handles_no_regression() {
        let base = Profile::from_spans(sample_spans());
        let d = diff(&base, &base);
        assert!(d.top_regression().is_none(), "identical profiles have no regression");
        let rendered = d.render(1);
        assert!(rendered.contains("top-delta span: none"));
        assert!(rendered.contains("more spans elided"));
        assert!(rendered.contains("total self time: 0.001ms -> 0.001ms (+0.000ms)"));
        // Empty vs empty renders a header and clean totals.
        let empty = diff(&Profile::default(), &Profile::default());
        assert!(empty.rows.is_empty());
        assert!(empty.render(5).contains("total self time: 0.000ms -> 0.000ms"));
    }

    #[test]
    fn self_time_table_lists_heaviest_first() {
        let p = Profile::from_spans(sample_spans());
        let table = p.self_time_table();
        let cell_pos = table.find("scheduler.cell").expect("cell row");
        let exp_pos = table.find("experiment").expect("experiment row");
        assert!(cell_pos < exp_pos, "650ns self beats 150ns self:\n{table}");
        assert!(table.contains("self-time coverage: 100.00%"));
        assert!(table.contains("critical path: experiment"));
    }
}
