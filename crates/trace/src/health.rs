//! Training-health analysis over recorded time series.
//!
//! A [`HealthMonitor`] inspects loss-like series (lower is better) drained
//! from a trace — or captured mid-flight from a failing cell — and flags
//! the three ways DFKD training visibly blows up:
//!
//! - **non-finite values** (NaN/Inf in a loss) — the classic silent
//!   failure mode behind an eventual panic downstream;
//! - **divergence** — the exponential moving average of the series climbs
//!   well above the best level it ever reached;
//! - **plateau** — the trailing window is flat but stuck above the best
//!   EMA level, i.e. training stalled without converging (a flat tail *at*
//!   the minimum is convergence and therefore healthy).
//!
//! Verdicts render as one compact line per series via
//! [`HealthReport::summary`], which the experiment scheduler attaches to
//! failed-cell errors so a FAILED report row says *why* training died.

use crate::{SeriesEvent, SeriesPoint, Trace};
use std::collections::BTreeMap;
use std::fmt;

/// Tunable thresholds for [`HealthMonitor`]. The defaults are deliberately
/// loose: they only fire on unambiguous pathologies, never on the normal
/// noisy descent of a healthy loss curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthConfig {
    /// Smoothing factor for the exponential moving average (weight of the
    /// newest point).
    pub ema_alpha: f64,
    /// Divergence fires when the final EMA exceeds the minimum EMA by more
    /// than `|min_ema| * (divergence_ratio - 1)` (with a small absolute
    /// floor so near-zero minima still have headroom).
    pub divergence_ratio: f64,
    /// Minimum number of finite points before divergence can fire.
    pub divergence_min_points: usize,
    /// Trailing-window length for plateau detection; a series shorter than
    /// twice this is never flagged as plateaued.
    pub plateau_window: usize,
    /// Relative range (max−min over the window, against the window mean)
    /// under which the trailing window counts as flat.
    pub plateau_rel_eps: f64,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            ema_alpha: 0.2,
            divergence_ratio: 2.0,
            divergence_min_points: 8,
            plateau_window: 16,
            plateau_rel_eps: 1e-3,
        }
    }
}

/// One detected pathology in a series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum HealthIssue {
    /// A NaN or infinite value appeared, first at `step`.
    NonFinite {
        /// Step of the first non-finite value.
        step: u64,
    },
    /// The smoothed series ended far above the best level it reached.
    Diverging {
        /// Minimum of the EMA over the series.
        min_ema: f64,
        /// EMA at the final point.
        final_ema: f64,
    },
    /// The trailing window went flat while stuck above the best EMA level.
    Plateau {
        /// Window length that was inspected.
        window: usize,
        /// Mean value over the flat trailing window.
        level: f64,
    },
}

impl fmt::Display for HealthIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HealthIssue::NonFinite { step } => write!(f, "non-finite at step {step}"),
            HealthIssue::Diverging { min_ema, final_ema } => {
                write!(f, "diverging (ema {min_ema:.4} -> {final_ema:.4})")
            }
            HealthIssue::Plateau { window, level } => {
                write!(f, "plateau over last {window} steps at {level:.4}")
            }
        }
    }
}

/// The issues found in one named series.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesVerdict {
    /// Series name (e.g. `student.loss`).
    pub name: String,
    /// How many points were inspected.
    pub points: usize,
    /// Detected pathologies, empty when the series looks healthy.
    pub issues: Vec<HealthIssue>,
}

impl SeriesVerdict {
    /// Whether no pathology was detected.
    pub fn is_healthy(&self) -> bool {
        self.issues.is_empty()
    }
}

/// Verdicts for every inspected series.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HealthReport {
    /// One verdict per series, in name order.
    pub verdicts: Vec<SeriesVerdict>,
}

impl HealthReport {
    /// Whether every inspected series is issue-free.
    pub fn is_healthy(&self) -> bool {
        self.verdicts.iter().all(SeriesVerdict::is_healthy)
    }

    /// One compact line: unhealthy series with their issues, or an
    /// all-clear. An empty report reads "no series recorded" — which is
    /// itself a finding when a cell died before its first training step.
    pub fn summary(&self) -> String {
        if self.verdicts.is_empty() {
            return "no series recorded".to_owned();
        }
        let mut parts: Vec<String> = Vec::new();
        for v in &self.verdicts {
            if v.is_healthy() {
                continue;
            }
            let issues: Vec<String> = v.issues.iter().map(HealthIssue::to_string).collect();
            parts.push(format!("{}: {}", v.name, issues.join(", ")));
        }
        if parts.is_empty() {
            format!("{} series healthy", self.verdicts.len())
        } else {
            parts.join("; ")
        }
    }
}

/// Analyzes time series for NaN/Inf, divergence and plateaus.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct HealthMonitor {
    /// Detection thresholds.
    pub config: HealthConfig,
}

impl HealthMonitor {
    /// A monitor with custom thresholds.
    pub fn new(config: HealthConfig) -> Self {
        HealthMonitor { config }
    }

    /// Inspects every series in a drained trace.
    pub fn check_trace(&self, trace: &Trace) -> HealthReport {
        let mut verdicts = Vec::new();
        for (name, points) in &trace.series {
            verdicts.push(SeriesVerdict {
                name: (*name).to_owned(),
                points: points.len(),
                issues: self.check_points(points),
            });
        }
        HealthReport { verdicts }
    }

    /// Inspects loose events (e.g. the tail captured from a failed cell's
    /// thread buffer), grouping by name and sorting by step first.
    pub fn check_events(&self, events: &[SeriesEvent]) -> HealthReport {
        let mut by_name: BTreeMap<&str, Vec<SeriesPoint>> = BTreeMap::new();
        for e in events {
            by_name
                .entry(e.name)
                .or_default()
                .push(SeriesPoint { step: e.step, value: e.value });
        }
        let mut verdicts = Vec::new();
        for (name, mut points) in by_name {
            points.sort_by_key(|p| p.step);
            verdicts.push(SeriesVerdict {
                name: name.to_owned(),
                points: points.len(),
                issues: self.check_points(&points),
            });
        }
        HealthReport { verdicts }
    }

    /// Inspects one step-ordered series and returns every issue found.
    pub fn check_points(&self, points: &[SeriesPoint]) -> Vec<HealthIssue> {
        let cfg = &self.config;
        let mut issues = Vec::new();
        if let Some(p) = points.iter().find(|p| !p.value.is_finite()) {
            issues.push(HealthIssue::NonFinite { step: p.step });
        }
        // EMA analysis runs over the finite points only, so one NaN does
        // not poison the divergence/plateau signals.
        let finite: Vec<f64> = points
            .iter()
            .map(|p| p.value)
            .filter(|v| v.is_finite())
            .collect();
        let Some(&first) = finite.first() else {
            return issues;
        };
        let mut ema = first;
        let mut min_ema = first;
        for &v in &finite[1..] {
            ema = cfg.ema_alpha * v + (1.0 - cfg.ema_alpha) * ema;
            min_ema = min_ema.min(ema);
        }
        if finite.len() >= cfg.divergence_min_points {
            let headroom = (min_ema.abs() * (cfg.divergence_ratio - 1.0)).max(1e-3);
            if ema - min_ema > headroom {
                issues.push(HealthIssue::Diverging { min_ema, final_ema: ema });
            }
        }
        let w = cfg.plateau_window;
        if w >= 2 && finite.len() >= 2 * w {
            let tail = &finite[finite.len() - w..];
            let mean = tail.iter().sum::<f64>() / w as f64;
            let (lo, hi) = tail
                .iter()
                .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
                    (lo.min(v), hi.max(v))
                });
            let flat = hi - lo <= cfg.plateau_rel_eps * mean.abs().max(1e-12);
            // Flat *at* the minimum is convergence; only flag a flat tail
            // stranded above the best level the series reached.
            let stuck_above = mean - min_ema > (0.1 * min_ema.abs()).max(1e-6);
            if flat && stuck_above {
                issues.push(HealthIssue::Plateau { window: w, level: mean });
            }
        }
        issues
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(values: &[f64]) -> Vec<SeriesPoint> {
        values
            .iter()
            .enumerate()
            .map(|(i, &value)| SeriesPoint { step: i as u64, value })
            .collect()
    }

    #[test]
    fn healthy_descent_raises_no_issues() {
        let m = HealthMonitor::default();
        let values: Vec<f64> = (0..64).map(|i| 2.0 * (-0.1 * i as f64).exp()).collect();
        assert!(m.check_points(&pts(&values)).is_empty());
    }

    #[test]
    fn converged_flat_tail_is_healthy() {
        // Drops to ~0.1 then stays there: flat at the minimum, not stuck.
        let m = HealthMonitor::default();
        let mut values: Vec<f64> = (0..32).map(|i| 2.0 - i as f64 * 0.059).collect();
        values.extend(std::iter::repeat_n(0.1, 32));
        assert!(m.check_points(&pts(&values)).is_empty());
    }

    #[test]
    fn nan_is_flagged_with_first_step() {
        let m = HealthMonitor::default();
        let mut values = vec![1.0, 0.9, 0.8];
        values.push(f64::NAN);
        values.push(f64::INFINITY);
        let issues = m.check_points(&pts(&values));
        assert_eq!(issues, vec![HealthIssue::NonFinite { step: 3 }]);
        assert_eq!(issues[0].to_string(), "non-finite at step 3");
    }

    #[test]
    fn divergence_fires_when_ema_climbs_off_its_floor() {
        let m = HealthMonitor::default();
        // Descend to 0.5 then explode geometrically.
        let mut values: Vec<f64> = (0..16).map(|i| 2.0 - i as f64 * 0.1).collect();
        values.extend((0..16).map(|i| 0.5 * 1.5f64.powi(i)));
        let issues = m.check_points(&pts(&values));
        assert!(
            issues
                .iter()
                .any(|i| matches!(i, HealthIssue::Diverging { .. })),
            "expected divergence, got {issues:?}"
        );
    }

    #[test]
    fn divergence_needs_minimum_points() {
        let m = HealthMonitor::default();
        // Same explosion but too short to trust.
        let issues = m.check_points(&pts(&[0.5, 5.0, 50.0]));
        assert!(issues.is_empty(), "3 points must not fire: {issues:?}");
    }

    #[test]
    fn plateau_above_the_minimum_is_flagged() {
        let m = HealthMonitor::default();
        // Reaches 0.2, bounces up to 1.0 and flatlines there.
        let mut values: Vec<f64> = (0..16).map(|i| 2.0 - i as f64 * 0.12).collect();
        values.extend(std::iter::repeat_n(1.0, 20));
        let issues = m.check_points(&pts(&values));
        assert!(
            issues
                .iter()
                .any(|i| matches!(i, HealthIssue::Plateau { .. })),
            "expected plateau, got {issues:?}"
        );
    }

    #[test]
    fn nan_does_not_poison_divergence_detection() {
        let m = HealthMonitor::default();
        let mut values: Vec<f64> = (0..16).map(|i| 2.0 - i as f64 * 0.1).collect();
        values.push(f64::NAN);
        values.extend((0..16).map(|i| 0.5 * 1.5f64.powi(i)));
        let issues = m.check_points(&pts(&values));
        assert!(issues.iter().any(|i| matches!(i, HealthIssue::NonFinite { .. })));
        assert!(issues.iter().any(|i| matches!(i, HealthIssue::Diverging { .. })));
    }

    #[test]
    fn check_events_groups_and_sorts_by_step() {
        let m = HealthMonitor::default();
        // Out-of-order steps; sorted they descend cleanly -> healthy.
        let events = vec![
            SeriesEvent { name: "b.loss", step: 1, value: 0.9 },
            SeriesEvent { name: "a.loss", step: 0, value: f64::NAN },
            SeriesEvent { name: "b.loss", step: 0, value: 1.0 },
            SeriesEvent { name: "b.loss", step: 2, value: 0.8 },
        ];
        let report = m.check_events(&events);
        assert_eq!(report.verdicts.len(), 2);
        assert_eq!(report.verdicts[0].name, "a.loss");
        assert!(!report.verdicts[0].is_healthy());
        assert!(report.verdicts[1].is_healthy());
        assert_eq!(report.verdicts[1].points, 3);
        assert!(!report.is_healthy());
        assert_eq!(report.summary(), "a.loss: non-finite at step 0");
    }

    #[test]
    fn summary_distinguishes_empty_from_healthy() {
        assert_eq!(HealthReport::default().summary(), "no series recorded");
        let report = HealthReport {
            verdicts: vec![SeriesVerdict {
                name: "student.loss".to_owned(),
                points: 10,
                issues: vec![],
            }],
        };
        assert!(report.is_healthy());
        assert_eq!(report.summary(), "1 series healthy");
    }

    #[test]
    fn check_trace_walks_every_series() {
        let mut trace = Trace::default();
        trace.series.insert("x.loss", pts(&[1.0, f64::INFINITY]));
        let report = HealthMonitor::default().check_trace(&trace);
        assert_eq!(report.verdicts.len(), 1);
        assert_eq!(report.summary(), "x.loss: non-finite at step 1");
    }
}
