//! # cae-trace
//!
//! Hierarchical spans, monotonic counters and scalar gauges for the
//! CAE-DFKD workspace, designed around two constraints:
//!
//! 1. **Near-zero disabled overhead.** Every recording entry point starts
//!    with [`enabled`] — one relaxed atomic load — and returns immediately
//!    when tracing is off (the default). Hot kernels (GEMM, the worker
//!    pool) can therefore stay instrumented unconditionally.
//! 2. **No cross-thread contention on the hot path.** Each thread records
//!    into its own buffer (registered once in a process-global list), so
//!    cell-parallel experiment runs — where whole table cells execute on
//!    [`cae_tensor::pool`] workers — produce one coherent trace without the
//!    workers ever contending on a shared sink. [`drain`] aggregates and
//!    clears every thread's buffer.
//!
//! Tracing is observational only: it never touches RNG state or model
//! state, so reports are byte-identical with tracing on and off (enforced
//! by `scripts/tier1.sh` and the `bench_trace` benchmark).
//!
//! ## Model
//!
//! * **Spans** ([`span`], [`span_with`]) measure a wall-clock interval.
//!   They nest per thread: a span opened while another span on the same
//!   thread is active records it as its parent, giving a per-thread tree.
//!   Spans carry static names plus optional tags (e.g. a cell index and
//!   its RNG seed). Raw span events are capped per thread
//!   (`CAE_TRACE_MAX_EVENTS`, default 65536); overflow is counted, and
//!   aggregated per-name statistics are always exact.
//! * **Counters** ([`counter`], [`counters`]) accumulate monotonically
//!   (GEMM calls, FLOPs, cache hits).
//! * **Gauges** ([`gauge`]) sample a scalar (pool task count per job);
//!   last/min/max/mean are aggregated.
//! * **Stat-only spans** ([`span_stat`]) time an interval into the
//!   aggregated per-name statistics *without* recording a raw event — the
//!   right tool for sites called millions of times per run (the GEMM
//!   kernel), where raw events would instantly exhaust the per-thread cap.
//! * **Series** ([`series`]) record `(step, value)` training curves
//!   (student/generator losses) with the same thread-local buffering and
//!   disabled-path relaxed-load gate as spans; raw points are capped per
//!   thread (`CAE_TRACE_SERIES_CAP`, default 65536) with overflow counted.
//!   The [`health`] module analyses drained series for NaN/Inf, divergence
//!   and plateaus; the [`profile`] module reconstructs span trees into
//!   self-time profiles and flamegraph-folded stacks.
//!
//! ## Enabling
//!
//! Reads `CAE_TRACE` once on first use: `1`, `true` or `on` enable
//! tracing. Tests and benchmarks can override with [`force_enabled`] and
//! return to the environment's setting with [`reset_to_env`].
//!
//! ## Export
//!
//! [`drain`] returns a [`Trace`]; [`Trace::save`] writes the raw span
//! events as JSONL (`trace_<stem>.jsonl`) plus an aggregated summary
//! (`TRACE_<stem>.json`) next to the experiment report JSONs.

pub mod health;
pub mod metrics;
pub mod profile;

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

// ---------------------------------------------------------------------------
// Enablement
// ---------------------------------------------------------------------------

const STATE_UNINIT: u8 = 0;
const STATE_OFF: u8 = 1;
const STATE_ON: u8 = 2;

static STATE: AtomicU8 = AtomicU8::new(STATE_UNINIT);

pub(crate) fn env_wants_tracing() -> bool {
    match std::env::var("CAE_TRACE") {
        Ok(v) => matches!(
            v.trim().to_ascii_lowercase().as_str(),
            "1" | "true" | "on" | "yes"
        ),
        Err(_) => false,
    }
}

#[cold]
fn init_from_env() -> bool {
    let on = env_wants_tracing();
    // Racing initializers agree (the env does not change), so a plain
    // store is fine.
    STATE.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
    on
}

/// Whether tracing is currently enabled. One relaxed atomic load on the
/// fast path; the `CAE_TRACE` env var is consulted on the first call only.
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        STATE_ON => true,
        STATE_OFF => false,
        _ => init_from_env(),
    }
}

/// Overrides the enablement state (tests and benchmarks). Pair with
/// [`reset_to_env`] to restore the environment's setting.
pub fn force_enabled(on: bool) {
    STATE.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
}

/// Restores the enablement state to whatever `CAE_TRACE` dictates.
pub fn reset_to_env() {
    STATE.store(STATE_UNINIT, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Tags
// ---------------------------------------------------------------------------

/// A tag value: an unsigned integer (indices, seeds) or a static string
/// (experiment ids).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TagValue {
    /// Unsigned integer tag (cell index, RNG seed, …).
    U64(u64),
    /// Static string tag (registry id, …).
    Str(&'static str),
}

impl From<u64> for TagValue {
    fn from(v: u64) -> Self {
        TagValue::U64(v)
    }
}

impl From<usize> for TagValue {
    fn from(v: usize) -> Self {
        TagValue::U64(v as u64)
    }
}

impl From<&'static str> for TagValue {
    fn from(v: &'static str) -> Self {
        TagValue::Str(v)
    }
}

/// A `(key, value)` span tag.
pub type Tag = (&'static str, TagValue);

// ---------------------------------------------------------------------------
// Per-thread buffers
// ---------------------------------------------------------------------------

/// One completed span interval.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanEvent {
    /// Span name.
    pub name: &'static str,
    /// Process-unique span id.
    pub id: u64,
    /// Id of the span active on the same thread when this one opened.
    pub parent: Option<u64>,
    /// Recording thread (registration order, not OS id).
    pub thread: u64,
    /// Start offset from the process trace epoch, nanoseconds.
    pub start_ns: u64,
    /// Duration, nanoseconds.
    pub dur_ns: u64,
    /// Tags attached at open time.
    pub tags: Vec<Tag>,
}

/// Aggregated statistics for one span name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpanStat {
    /// Number of completed spans.
    pub count: u64,
    /// Total duration, nanoseconds.
    pub total_ns: u64,
    /// Shortest span, nanoseconds.
    pub min_ns: u64,
    /// Longest span, nanoseconds.
    pub max_ns: u64,
}

impl SpanStat {
    fn record(&mut self, dur_ns: u64) {
        if self.count == 0 {
            self.min_ns = dur_ns;
            self.max_ns = dur_ns;
        } else {
            self.min_ns = self.min_ns.min(dur_ns);
            self.max_ns = self.max_ns.max(dur_ns);
        }
        self.count += 1;
        self.total_ns += dur_ns;
    }

    fn merge(&mut self, other: &SpanStat) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        self.count += other.count;
        self.total_ns += other.total_ns;
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }
}

/// Aggregated statistics for one gauge name.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaugeStat {
    /// Number of samples.
    pub count: u64,
    /// Most recent sample (by drain order across threads).
    pub last: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Sum of samples (for the mean).
    pub sum: f64,
}

impl GaugeStat {
    fn new(value: f64) -> Self {
        GaugeStat {
            count: 1,
            last: value,
            min: value,
            max: value,
            sum: value,
        }
    }

    fn record(&mut self, value: f64) {
        self.count += 1;
        self.last = value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.sum += value;
    }

    fn merge(&mut self, other: &GaugeStat) {
        self.count += other.count;
        self.last = other.last;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.sum += other.sum;
    }
}

/// One recorded time-series point: a metric name plus `(step, value)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeriesEvent {
    /// Series name (`"student.loss"`, `"generator.loss"`, …).
    pub name: &'static str,
    /// Training step the value was observed at.
    pub step: u64,
    /// Observed value (may be non-finite; the health monitor flags those).
    pub value: f64,
}

/// One `(step, value)` point of a drained, per-name series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeriesPoint {
    /// Training step.
    pub step: u64,
    /// Observed value.
    pub value: f64,
}

#[derive(Default)]
struct Inner {
    spans: Vec<SpanEvent>,
    dropped_spans: u64,
    span_stats: BTreeMap<&'static str, SpanStat>,
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, GaugeStat>,
    series: Vec<SeriesEvent>,
    dropped_series: u64,
}

struct ThreadBuf {
    thread: u64,
    inner: Mutex<Inner>,
}

fn buffers() -> &'static Mutex<Vec<Arc<ThreadBuf>>> {
    static BUFFERS: OnceLock<Mutex<Vec<Arc<ThreadBuf>>>> = OnceLock::new();
    BUFFERS.get_or_init(|| Mutex::new(Vec::new()))
}

// Caps start at 0 (= uninitialized) and latch the env value on first use;
// `raise_event_cap` can overwrite before or after that, so the cap is a
// plain atomic rather than a `OnceLock`.
static MAX_EVENTS: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);

fn max_events_per_thread() -> usize {
    match MAX_EVENTS.load(Ordering::Relaxed) {
        0 => {
            let n = std::env::var("CAE_TRACE_MAX_EVENTS")
                .ok()
                .and_then(|v| v.parse().ok())
                .filter(|&n| n > 0)
                .unwrap_or(65_536);
            MAX_EVENTS.store(n, Ordering::Relaxed);
            n
        }
        n => n,
    }
}

/// The effective per-thread span-event cap (`CAE_TRACE_MAX_EVENTS`,
/// default 65 536), as consulted by the recording fast path.
pub fn event_cap() -> usize {
    max_events_per_thread()
}

/// Raises the per-thread span-event cap to at least `n` — unless the user
/// pinned a cap explicitly via `CAE_TRACE_MAX_EVENTS`, which always wins.
/// Used by the profiler, whose forced-on traces would otherwise truncate at
/// the default cap.
pub fn raise_event_cap(n: usize) {
    if std::env::var("CAE_TRACE_MAX_EVENTS").is_ok() {
        return;
    }
    MAX_EVENTS.store(max_events_per_thread().max(n), Ordering::Relaxed);
}

fn series_cap_per_thread() -> usize {
    static MAX: OnceLock<usize> = OnceLock::new();
    *MAX.get_or_init(|| {
        std::env::var("CAE_TRACE_SERIES_CAP")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(65_536)
    })
}

/// The effective per-thread series-point cap (`CAE_TRACE_SERIES_CAP`,
/// default 65 536).
pub fn series_cap() -> usize {
    series_cap_per_thread()
}

thread_local! {
    static BUF: Arc<ThreadBuf> = {
        static NEXT_THREAD: AtomicU64 = AtomicU64::new(0);
        let buf = Arc::new(ThreadBuf {
            thread: NEXT_THREAD.fetch_add(1, Ordering::Relaxed),
            inner: Mutex::new(Inner::default()),
        });
        buffers()
            .lock()
            .expect("trace buffer registry poisoned")
            .push(buf.clone());
        buf
    };
    /// Ids of the spans currently open on this thread (innermost last).
    static STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

// ---------------------------------------------------------------------------
// Recording
// ---------------------------------------------------------------------------

/// Adds `delta` to the counter `name`.
#[inline]
pub fn counter(name: &'static str, delta: u64) {
    if !enabled() {
        return;
    }
    BUF.with(|buf| {
        let mut inner = buf.inner.lock().expect("trace thread buffer poisoned");
        *inner.counters.entry(name).or_insert(0) += delta;
    });
}

/// Adds several counter deltas under one buffer lock (hot kernels).
#[inline]
pub fn counters(updates: &[(&'static str, u64)]) {
    if !enabled() {
        return;
    }
    BUF.with(|buf| {
        let mut inner = buf.inner.lock().expect("trace thread buffer poisoned");
        for &(name, delta) in updates {
            *inner.counters.entry(name).or_insert(0) += delta;
        }
    });
}

/// Samples the gauge `name`.
#[inline]
pub fn gauge(name: &'static str, value: f64) {
    if !enabled() {
        return;
    }
    BUF.with(|buf| {
        let mut inner = buf.inner.lock().expect("trace thread buffer poisoned");
        match inner.gauges.entry(name) {
            std::collections::btree_map::Entry::Occupied(mut e) => e.get_mut().record(value),
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(GaugeStat::new(value));
            }
        }
    });
}

/// Records one `(step, value)` point of the series `name` (a training
/// curve). Points are buffered per thread up to `CAE_TRACE_SERIES_CAP`
/// (default 65536); overflow is counted in [`Trace::dropped_series`]. A
/// no-op (one relaxed atomic load) when tracing is disabled.
#[inline]
pub fn series(name: &'static str, step: u64, value: f64) {
    if !enabled() {
        return;
    }
    BUF.with(|buf| {
        let mut inner = buf.inner.lock().expect("trace thread buffer poisoned");
        if inner.series.len() < series_cap_per_thread() {
            inner.series.push(SeriesEvent { name, step, value });
        } else {
            inner.dropped_series += 1;
        }
    });
}

/// Number of series points currently buffered on *this* thread. Pair with
/// [`take_thread_series_since`] to capture exactly the points a code
/// region recorded (the scheduler uses this to attach training-health
/// verdicts to a failing cell).
pub fn thread_series_mark() -> usize {
    BUF.with(|buf| {
        buf.inner
            .lock()
            .expect("trace thread buffer poisoned")
            .series
            .len()
    })
}

/// Removes and returns this thread's series points recorded after `mark`
/// (as returned by [`thread_series_mark`]). A concurrent [`drain`] may
/// have cleared the buffer already, in which case fewer (possibly zero)
/// points come back. Failed-and-retried work uses this to keep its partial
/// curves out of the globally drained series.
pub fn take_thread_series_since(mark: usize) -> Vec<SeriesEvent> {
    BUF.with(|buf| {
        let mut inner = buf.inner.lock().expect("trace thread buffer poisoned");
        if mark >= inner.series.len() {
            return Vec::new();
        }
        inner.series.split_off(mark)
    })
}

/// Clones every thread's currently buffered series points without clearing
/// anything (unlike [`drain`]). Lets error paths inspect training curves
/// while the trace keeps accumulating for the final drain.
pub fn series_snapshot() -> Vec<SeriesEvent> {
    let buffers: Vec<Arc<ThreadBuf>> = buffers()
        .lock()
        .expect("trace buffer registry poisoned")
        .clone();
    let mut out = Vec::new();
    for buf in buffers {
        out.extend_from_slice(
            &buf.inner.lock().expect("trace thread buffer poisoned").series,
        );
    }
    out
}

/// Clones every thread's counter totals and gauge statistics without
/// clearing anything (the counters/gauges analogue of [`series_snapshot`]).
/// The metrics exposition layer ([`metrics::snapshot`]) reads through this
/// so a periodic exporter never steals events from the final [`drain`].
pub fn aggregates_snapshot() -> (
    BTreeMap<&'static str, u64>,
    BTreeMap<&'static str, GaugeStat>,
) {
    let buffers: Vec<Arc<ThreadBuf>> = buffers()
        .lock()
        .expect("trace buffer registry poisoned")
        .clone();
    let mut counters: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut gauges: BTreeMap<&'static str, GaugeStat> = BTreeMap::new();
    for buf in buffers {
        let inner = buf.inner.lock().expect("trace thread buffer poisoned");
        for (&name, total) in &inner.counters {
            *counters.entry(name).or_insert(0) += total;
        }
        for (&name, stat) in &inner.gauges {
            match gauges.entry(name) {
                std::collections::btree_map::Entry::Occupied(mut e) => e.get_mut().merge(stat),
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(*stat);
                }
            }
        }
    }
    (counters, gauges)
}

/// Guard returned by [`span_stat`]; on drop it records the interval into
/// the aggregated per-name span statistics only — no raw event, no parent
/// stack. Safe for sites called millions of times per run.
pub struct StatSpanGuard {
    name: &'static str,
    start: Option<Instant>,
}

/// Opens a stat-only span: the interval lands in [`Trace::span_stats`]
/// under `name` (count/total/min/max stay exact) but no raw [`SpanEvent`]
/// is recorded, so the per-thread event cap is never consumed. Use for
/// hot kernels (the GEMM micro-kernel) where raw per-call events are
/// unaffordable. A no-op when tracing is disabled.
#[inline]
pub fn span_stat(name: &'static str) -> StatSpanGuard {
    StatSpanGuard {
        name,
        start: enabled().then(Instant::now),
    }
}

impl Drop for StatSpanGuard {
    fn drop(&mut self) {
        let Some(start) = self.start.take() else {
            return;
        };
        let dur_ns = start.elapsed().as_nanos() as u64;
        BUF.with(|buf| {
            let mut inner = buf.inner.lock().expect("trace thread buffer poisoned");
            inner.span_stats.entry(self.name).or_default().record(dur_ns);
        });
    }
}

struct ActiveSpan {
    name: &'static str,
    id: u64,
    parent: Option<u64>,
    start: Instant,
    start_ns: u64,
    tags: Vec<Tag>,
}

/// Guard returned by [`span`] / [`span_with`]; records the interval when
/// dropped. Not `Send`: a span must close on the thread that opened it.
pub struct SpanGuard {
    active: Option<ActiveSpan>,
    /// Spans are thread-trees; keep the guard on its opening thread.
    _not_send: std::marker::PhantomData<*const ()>,
}

/// Opens a span named `name`. A no-op (no allocation, no lock) when
/// tracing is disabled.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    span_with(name, &[])
}

/// Opens a span with tags. A no-op when tracing is disabled.
#[inline]
pub fn span_with(name: &'static str, tags: &[Tag]) -> SpanGuard {
    if !enabled() {
        return SpanGuard {
            active: None,
            _not_send: std::marker::PhantomData,
        };
    }
    static NEXT_SPAN: AtomicU64 = AtomicU64::new(1);
    let id = NEXT_SPAN.fetch_add(1, Ordering::Relaxed);
    let parent = STACK.with(|s| {
        let mut s = s.borrow_mut();
        let parent = s.last().copied();
        s.push(id);
        parent
    });
    let epoch = epoch();
    let start = Instant::now();
    SpanGuard {
        active: Some(ActiveSpan {
            name,
            id,
            parent,
            start,
            start_ns: start.duration_since(epoch).as_nanos() as u64,
            tags: tags.to_vec(),
        }),
        _not_send: std::marker::PhantomData,
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(active) = self.active.take() else {
            return;
        };
        let dur_ns = active.start.elapsed().as_nanos() as u64;
        STACK.with(|s| {
            let mut s = s.borrow_mut();
            // Pop this span; tolerate unwind-skewed stacks.
            if let Some(pos) = s.iter().rposition(|&id| id == active.id) {
                s.truncate(pos);
            }
        });
        BUF.with(|buf| {
            let mut inner = buf.inner.lock().expect("trace thread buffer poisoned");
            inner
                .span_stats
                .entry(active.name)
                .or_default()
                .record(dur_ns);
            if inner.spans.len() < max_events_per_thread() {
                let thread = buf.thread;
                inner.spans.push(SpanEvent {
                    name: active.name,
                    id: active.id,
                    parent: active.parent,
                    thread,
                    start_ns: active.start_ns,
                    dur_ns,
                    tags: active.tags,
                });
            } else {
                inner.dropped_spans += 1;
            }
        });
    }
}

// ---------------------------------------------------------------------------
// Aggregation and export
// ---------------------------------------------------------------------------

/// An aggregated trace: every thread's events and statistics, merged.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    /// Raw span events, ordered by start time.
    pub spans: Vec<SpanEvent>,
    /// Span events dropped to the per-thread cap (stats stay exact).
    pub dropped_spans: u64,
    /// Per-name span statistics.
    pub span_stats: BTreeMap<&'static str, SpanStat>,
    /// Counter totals.
    pub counters: BTreeMap<&'static str, u64>,
    /// Gauge statistics.
    pub gauges: BTreeMap<&'static str, GaugeStat>,
    /// Per-name time series, merged across threads and sorted by step.
    pub series: BTreeMap<&'static str, Vec<SeriesPoint>>,
    /// Series points dropped to the per-thread cap (`CAE_TRACE_SERIES_CAP`).
    pub dropped_series: u64,
}

/// Collects and clears every thread's buffer. Threads keep recording
/// concurrently; events recorded during the drain land in the next one.
pub fn drain() -> Trace {
    let mut trace = Trace::default();
    let buffers: Vec<Arc<ThreadBuf>> = buffers()
        .lock()
        .expect("trace buffer registry poisoned")
        .clone();
    for buf in buffers {
        let inner = std::mem::take(&mut *buf.inner.lock().expect("trace thread buffer poisoned"));
        trace.spans.extend(inner.spans);
        trace.dropped_spans += inner.dropped_spans;
        for (name, stat) in inner.span_stats {
            trace.span_stats.entry(name).or_default().merge(&stat);
        }
        for (name, total) in inner.counters {
            *trace.counters.entry(name).or_insert(0) += total;
        }
        for (name, stat) in inner.gauges {
            match trace.gauges.entry(name) {
                std::collections::btree_map::Entry::Occupied(mut e) => e.get_mut().merge(&stat),
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(stat);
                }
            }
        }
        for ev in inner.series {
            trace
                .series
                .entry(ev.name)
                .or_default()
                .push(SeriesPoint { step: ev.step, value: ev.value });
        }
        trace.dropped_series += inner.dropped_series;
    }
    trace.spans.sort_by_key(|s| (s.start_ns, s.id));
    for points in trace.series.values_mut() {
        points.sort_by_key(|p| p.step);
    }
    trace
}

fn json_escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn tag_value_json(v: &TagValue, out: &mut String) {
    match v {
        TagValue::U64(n) => {
            let _ = write!(out, "{n}");
        }
        TagValue::Str(s) => {
            out.push('"');
            json_escape(s, out);
            out.push('"');
        }
    }
}

/// Writes an `f64` as JSON: `null` for non-finite values (NaN/Inf have no
/// JSON representation), the shortest round-trip form otherwise.
pub(crate) fn json_f64(value: f64, out: &mut String) {
    if value.is_finite() {
        let _ = write!(out, "{value}");
    } else {
        out.push_str("null");
    }
}

impl Trace {
    /// Whether nothing at all was recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
            && self.span_stats.is_empty()
            && self.counters.is_empty()
            && self.gauges.is_empty()
            && self.series.is_empty()
    }

    /// Whether any raw span events or series points were dropped to a
    /// per-thread cap. A truncated trace still has exact aggregated
    /// statistics, but profiles built from its raw events are partial.
    pub fn truncated(&self) -> bool {
        self.dropped_spans > 0 || self.dropped_series > 0
    }

    /// Raw span events named `name`.
    pub fn spans_named<'a>(&'a self, name: &str) -> impl Iterator<Item = &'a SpanEvent> {
        let name = name.to_owned();
        self.spans.iter().filter(move |s| s.name == name)
    }

    /// One JSON object per line: every span event (start-time order), then
    /// every series point (`{"series":...,"step":...,"value":...}`).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for s in &self.spans {
            out.push_str("{\"name\":\"");
            json_escape(s.name, &mut out);
            let _ = write!(out, "\",\"id\":{},\"parent\":", s.id);
            match s.parent {
                Some(p) => {
                    let _ = write!(out, "{p}");
                }
                None => out.push_str("null"),
            }
            let _ = write!(
                out,
                ",\"thread\":{},\"start_ns\":{},\"dur_ns\":{}",
                s.thread, s.start_ns, s.dur_ns
            );
            if !s.tags.is_empty() {
                out.push_str(",\"tags\":{");
                for (i, (k, v)) in s.tags.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    json_escape(k, &mut out);
                    out.push_str("\":");
                    tag_value_json(v, &mut out);
                }
                out.push('}');
            }
            out.push_str("}\n");
        }
        for (name, points) in &self.series {
            for p in points {
                out.push_str("{\"series\":\"");
                json_escape(name, &mut out);
                let _ = write!(out, "\",\"step\":{},\"value\":", p.step);
                json_f64(p.value, &mut out);
                out.push_str("}\n");
            }
        }
        out
    }

    /// Aggregated summary: per-name span statistics, counter totals and
    /// gauge statistics, as pretty JSON.
    pub fn summary_json(&self) -> String {
        let mut out = String::from("{\n  \"spans\": {\n");
        for (i, (name, st)) in self.span_stats.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            let mean = st.total_ns.checked_div(st.count).unwrap_or(0);
            let _ = write!(
                out,
                "    \"{name}\": {{\"count\": {}, \"total_ns\": {}, \"mean_ns\": {}, \"min_ns\": {}, \"max_ns\": {}}}",
                st.count, st.total_ns, mean, st.min_ns, st.max_ns
            );
        }
        out.push_str("\n  },\n  \"counters\": {\n");
        for (i, (name, total)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            let _ = write!(out, "    \"{name}\": {total}");
        }
        out.push_str("\n  },\n  \"gauges\": {\n");
        for (i, (name, g)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            let mean = if g.count > 0 { g.sum / g.count as f64 } else { 0.0 };
            let _ = write!(out, "    \"{name}\": {{\"count\": {}, \"last\": ", g.count);
            json_f64(g.last, &mut out);
            out.push_str(", \"mean\": ");
            json_f64(mean, &mut out);
            out.push_str(", \"min\": ");
            json_f64(g.min, &mut out);
            out.push_str(", \"max\": ");
            json_f64(g.max, &mut out);
            out.push('}');
        }
        out.push_str("\n  },\n  \"series\": {\n");
        for (i, (name, points)) in self.series.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            let non_finite = points.iter().filter(|p| !p.value.is_finite()).count();
            let finite = points.iter().map(|p| p.value).filter(|v| v.is_finite());
            let min = finite.clone().fold(f64::INFINITY, f64::min);
            let max = finite.fold(f64::NEG_INFINITY, f64::max);
            let _ = write!(
                out,
                "    \"{name}\": {{\"points\": {}, \"first_step\": {}, \"last_step\": {}, \"last\": ",
                points.len(),
                points.first().map_or(0, |p| p.step),
                points.last().map_or(0, |p| p.step),
            );
            json_f64(points.last().map_or(f64::NAN, |p| p.value), &mut out);
            out.push_str(", \"min\": ");
            json_f64(if min.is_finite() { min } else { f64::NAN }, &mut out);
            out.push_str(", \"max\": ");
            json_f64(if max.is_finite() { max } else { f64::NAN }, &mut out);
            let _ = write!(out, ", \"non_finite\": {non_finite}}}");
        }
        // `truncated` is loud and first-class: a capped trace must never be
        // silently read as a complete profile (aggregated stats stay exact;
        // raw events/points are what is partial).
        let _ = write!(
            out,
            "\n  }},\n  \"span_events\": {},\n  \"dropped_span_events\": {},\n  \"series_points\": {},\n  \"dropped_series_points\": {},\n  \"truncated\": {}\n}}\n",
            self.spans.len(),
            self.dropped_spans,
            self.series.values().map(Vec::len).sum::<usize>(),
            self.dropped_series,
            self.truncated(),
        );
        out
    }

    /// Writes `trace_<stem>.jsonl` (raw events) and `TRACE_<stem>.json`
    /// (summary) into `dir`, creating it first. Returns both paths.
    ///
    /// # Errors
    /// Returns any I/O error from creating the directory or writing.
    pub fn save(&self, dir: &Path, stem: &str) -> std::io::Result<(PathBuf, PathBuf)> {
        std::fs::create_dir_all(dir)?;
        let jsonl = dir.join(format!("trace_{stem}.jsonl"));
        std::fs::write(&jsonl, self.to_jsonl())?;
        let summary = dir.join(format!("TRACE_{stem}.json"));
        std::fs::write(&summary, self.summary_json())?;
        Ok((jsonl, summary))
    }
}

/// Serializes tests (across this crate's modules) that toggle the global
/// enablement state or reset shared registries.
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that toggle the global enablement state.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        test_lock()
    }

    #[test]
    fn event_cap_raises_but_never_lowers() {
        let before = event_cap();
        assert!(before > 0, "cap must have a positive default");
        raise_event_cap(before + 1024);
        assert!(event_cap() >= before + 1024);
        raise_event_cap(1);
        assert!(event_cap() >= before + 1024, "raise_event_cap never lowers");
        assert!(series_cap() > 0);
    }

    #[test]
    fn disabled_recording_is_a_no_op() {
        let _l = lock();
        force_enabled(false);
        let _ = drain();
        {
            let _g = span("never");
            counter("never", 3);
            gauge("never", 1.0);
        }
        let t = drain();
        assert!(t.spans_named("never").next().is_none());
        assert!(!t.counters.contains_key("never"));
        assert!(!t.gauges.contains_key("never"));
        reset_to_env();
    }

    #[test]
    fn spans_nest_and_carry_tags() {
        let _l = lock();
        force_enabled(true);
        let _ = drain();
        {
            let _outer = span_with("outer", &[("idx", TagValue::U64(7))]);
            let _inner = span("inner");
        }
        let t = drain();
        force_enabled(false);
        reset_to_env();
        let outer = t.spans_named("outer").next().expect("outer recorded");
        let inner = t.spans_named("inner").next().expect("inner recorded");
        assert_eq!(inner.parent, Some(outer.id));
        assert_eq!(outer.parent, None);
        assert_eq!(outer.tags, vec![("idx", TagValue::U64(7))]);
        assert_eq!(t.span_stats["outer"].count, 1);
        assert!(t.span_stats["outer"].total_ns >= t.span_stats["outer"].min_ns);
    }

    #[test]
    fn counters_and_gauges_aggregate_across_threads() {
        let _l = lock();
        force_enabled(true);
        let _ = drain();
        let handles: Vec<_> = (0..4)
            .map(|i| {
                std::thread::spawn(move || {
                    counter("xthread.count", 10);
                    counters(&[("xthread.count", 1), ("xthread.other", 2)]);
                    gauge("xthread.gauge", i as f64);
                    let _g = span("xthread.span");
                })
            })
            .collect();
        for h in handles {
            h.join().expect("worker panicked");
        }
        let t = drain();
        force_enabled(false);
        reset_to_env();
        assert_eq!(t.counters["xthread.count"], 44);
        assert_eq!(t.counters["xthread.other"], 8);
        assert_eq!(t.gauges["xthread.gauge"].count, 4);
        assert_eq!(t.gauges["xthread.gauge"].min, 0.0);
        assert_eq!(t.gauges["xthread.gauge"].max, 3.0);
        assert_eq!(t.span_stats["xthread.span"].count, 4);
        assert_eq!(t.spans_named("xthread.span").count(), 4);
    }

    #[test]
    fn drain_clears_buffers() {
        let _l = lock();
        force_enabled(true);
        let _ = drain();
        counter("once", 1);
        let first = drain();
        let second = drain();
        force_enabled(false);
        reset_to_env();
        assert_eq!(first.counters["once"], 1);
        assert!(!second.counters.contains_key("once"));
    }

    #[test]
    fn export_formats_are_well_formed() {
        let _l = lock();
        force_enabled(true);
        let _ = drain();
        {
            let _g = span_with("fmt.span", &[("id", TagValue::Str("table02")), ("n", TagValue::U64(3))]);
            counter("fmt.count", 5);
            gauge("fmt.gauge", 2.5);
        }
        let t = drain();
        force_enabled(false);
        reset_to_env();
        let jsonl = t.to_jsonl();
        let line = jsonl
            .lines()
            .find(|l| l.contains("fmt.span"))
            .expect("span line present");
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(line.contains("\"tags\":{\"id\":\"table02\",\"n\":3}"));
        let summary = t.summary_json();
        assert!(summary.contains("\"fmt.count\": 5"));
        assert!(summary.contains("\"fmt.gauge\""));

        let dir = std::env::temp_dir().join(format!("cae_trace_test_{}", std::process::id()));
        let (jl, sm) = t.save(&dir.join("nested"), "demo").expect("save succeeds");
        assert!(jl.ends_with("trace_demo.jsonl") && jl.exists());
        assert!(sm.ends_with("TRACE_demo.json") && sm.exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn series_record_merge_and_capture() {
        let _l = lock();
        force_enabled(true);
        let _ = drain();
        series("t.loss", 0, 2.0);
        let mark = thread_series_mark();
        series("t.loss", 1, 1.5);
        series("t.other", 0, 7.0);
        let handle = std::thread::spawn(|| {
            series("t.loss", 2, 1.0);
        });
        handle.join().expect("worker panicked");
        // Capture (and remove) only this thread's points after the mark.
        let captured = take_thread_series_since(mark);
        assert_eq!(
            captured,
            vec![
                SeriesEvent { name: "t.loss", step: 1, value: 1.5 },
                SeriesEvent { name: "t.other", step: 0, value: 7.0 },
            ]
        );
        assert!(take_thread_series_since(999).is_empty(), "stale marks saturate");
        let snapshot = series_snapshot();
        assert_eq!(snapshot.len(), 2, "snapshot sees remaining points, uncleared");
        let t = drain();
        force_enabled(false);
        reset_to_env();
        // The captured points must not reappear in the drained trace; the
        // cross-thread point merges in, sorted by step.
        assert_eq!(
            t.series["t.loss"],
            vec![
                SeriesPoint { step: 0, value: 2.0 },
                SeriesPoint { step: 2, value: 1.0 },
            ]
        );
        assert!(!t.series.contains_key("t.other"));
        assert!(!t.truncated());
    }

    #[test]
    fn disabled_series_and_stat_spans_record_nothing() {
        let _l = lock();
        force_enabled(false);
        let _ = drain();
        series("never.series", 0, 1.0);
        {
            let _g = span_stat("never.stat");
        }
        let t = drain();
        assert!(!t.series.contains_key("never.series"));
        assert!(!t.span_stats.contains_key("never.stat"));
        reset_to_env();
    }

    #[test]
    fn stat_spans_aggregate_without_raw_events() {
        let _l = lock();
        force_enabled(true);
        let _ = drain();
        for _ in 0..100 {
            let _g = span_stat("stat.only");
        }
        let t = drain();
        force_enabled(false);
        reset_to_env();
        assert_eq!(t.span_stats["stat.only"].count, 100);
        assert_eq!(t.spans_named("stat.only").count(), 0, "no raw events recorded");
        assert_eq!(t.dropped_spans, 0, "stat spans never consume the event cap");
    }

    #[test]
    fn series_export_formats_flag_non_finite_values() {
        let _l = lock();
        force_enabled(true);
        let _ = drain();
        series("fmt.series", 0, 1.25);
        series("fmt.series", 1, f64::NAN);
        let t = drain();
        force_enabled(false);
        reset_to_env();
        let jsonl = t.to_jsonl();
        assert!(jsonl.contains("{\"series\":\"fmt.series\",\"step\":0,\"value\":1.25}"));
        assert!(jsonl.contains("{\"series\":\"fmt.series\",\"step\":1,\"value\":null}"));
        let summary = t.summary_json();
        assert!(summary.contains("\"fmt.series\""));
        assert!(summary.contains("\"non_finite\": 1"));
        assert!(summary.contains("\"truncated\": false"));
    }

    #[test]
    fn span_cap_counts_dropped_events() {
        // The cap is read from the env once per process; this test only
        // checks the accounting path stays consistent with a huge burst.
        let _l = lock();
        force_enabled(true);
        let _ = drain();
        for _ in 0..128 {
            let _g = span("burst");
        }
        let t = drain();
        force_enabled(false);
        reset_to_env();
        assert_eq!(
            t.span_stats["burst"].count,
            t.spans_named("burst").count() as u64 + t.dropped_spans
        );
    }
}
