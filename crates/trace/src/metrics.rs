//! Live telemetry: lock-free latency histograms and a byte-stable
//! exposition layer over the rest of the trace aggregates.
//!
//! The span/counter machinery in the crate root is built for *post-hoc*
//! analysis — buffer per thread, merge on drain. A serving process needs
//! the complementary view: tail latency *while the run is in flight*,
//! cheap enough that workers can record every request unconditionally.
//! This module provides that view:
//!
//! * [`Histogram`] — fixed 65-bucket log2 latency histogram. Each bucket
//!   `b ≥ 1` covers `[2^(b-1), 2^b)` nanoseconds (bucket 0 is exactly
//!   zero), so any `u64` duration lands in a bucket with one
//!   `leading_zeros`. Recording is a handful of **relaxed `fetch_add`s on
//!   the histogram's own cache lines** — lock-free, so a serve worker can
//!   never block a submitter — and snapshots merge the bucket counts in
//!   one non-destructive pass, the analogue of the span buffers'
//!   merge-on-drain minus the clearing: exposition counters are
//!   cumulative. p50/p90/p99 are exact at bucket resolution (nearest
//!   rank over bucket counts, reported as the bucket's inclusive upper
//!   bound clamped to the exactly-tracked max).
//! * [`snapshot`] — a [`MetricsSnapshot`] of every registered histogram
//!   plus the counter totals and gauge statistics cloned (not drained)
//!   from the thread buffers. Renders to a byte-stable Prometheus-style
//!   text format ([`MetricsSnapshot::prometheus_text`]) and a
//!   `METRICS_<stem>.json` document ([`MetricsSnapshot::save`]): all maps
//!   are name-ordered and integers dominate, so two snapshots of a
//!   quiescent process render byte-identically.
//! * [`start_exporter`] — a periodic in-process exporter thread that
//!   rewrites `METRICS_<stem>.json` / `metrics_<stem>.prom` every
//!   `CAE_METRICS_INTERVAL_MS` milliseconds, for watching a long serve
//!   run from outside the process.
//!
//! ## Enablement
//!
//! [`enabled`] is the same one-relaxed-load gate as tracing: recording is
//! on when `CAE_TRACE` is on **or** `CAE_METRICS_INTERVAL_MS` is set (a
//! configured exporter implies the operator wants live numbers without
//! paying for full span traces). [`force_enabled`] / [`reset_to_env`]
//! mirror the crate-root test hooks.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

use crate::GaugeStat;

// ---------------------------------------------------------------------------
// Enablement
// ---------------------------------------------------------------------------

const STATE_UNINIT: u8 = 0;
const STATE_OFF: u8 = 1;
const STATE_ON: u8 = 2;

static STATE: AtomicU8 = AtomicU8::new(STATE_UNINIT);

/// The configured exporter interval: `CAE_METRICS_INTERVAL_MS` parsed once
/// per process (`None` when unset, non-numeric, or zero).
pub fn interval_ms() -> Option<u64> {
    static INTERVAL: OnceLock<Option<u64>> = OnceLock::new();
    *INTERVAL.get_or_init(|| {
        std::env::var("CAE_METRICS_INTERVAL_MS")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .filter(|&ms| ms > 0)
    })
}

#[cold]
fn init_from_env() -> bool {
    let on = crate::env_wants_tracing() || interval_ms().is_some();
    STATE.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
    on
}

/// Whether histogram recording is enabled: one relaxed atomic load on the
/// fast path. On first call, on when `CAE_TRACE` enables tracing or
/// `CAE_METRICS_INTERVAL_MS` configures an exporter.
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        STATE_ON => true,
        STATE_OFF => false,
        _ => init_from_env(),
    }
}

/// Overrides metrics enablement (tests, benches, the `metrics` and
/// `serve-bench` subcommands). Pair with [`reset_to_env`].
pub fn force_enabled(on: bool) {
    STATE.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
}

/// Restores metrics enablement to whatever the environment dictates.
pub fn reset_to_env() {
    STATE.store(STATE_UNINIT, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Histograms
// ---------------------------------------------------------------------------

/// Number of log2 buckets: bucket 0 holds exact zeros, bucket `b` holds
/// `[2^(b-1), 2^b - 1]`, bucket 64 holds everything from `2^63` up.
pub const BUCKETS: usize = 65;

#[inline]
fn bucket_index(ns: u64) -> usize {
    (u64::BITS - ns.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `b`, in nanoseconds.
#[inline]
fn bucket_le(b: usize) -> u64 {
    match b {
        0 => 0,
        1..=63 => (1u64 << b) - 1,
        _ => u64::MAX,
    }
}

/// A lock-free fixed-bucket log2 latency histogram. Obtain a `&'static`
/// handle once via [`histogram`] and record durations from any thread;
/// recording when metrics are disabled is a single relaxed load.
pub struct Histogram {
    name: &'static str,
    buckets: [AtomicU64; BUCKETS],
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Histogram {
    fn new(name: &'static str) -> Self {
        Histogram {
            name,
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }

    /// This histogram's registered name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Records one duration in nanoseconds. Relaxed atomics only; a no-op
    /// (one relaxed load) when metrics are disabled.
    #[inline]
    pub fn record_ns(&self, ns: u64) {
        if !enabled() {
            return;
        }
        self.buckets[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Records the elapsed time since `start`.
    #[inline]
    pub fn record_since(&self, start: Instant) {
        if !enabled() {
            return;
        }
        self.record_ns(start.elapsed().as_nanos() as u64);
    }

    fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        let mut count = 0u64;
        for b in 0..BUCKETS {
            let c = self.buckets[b].load(Ordering::Relaxed);
            if c > 0 {
                buckets.push((bucket_le(b), c));
                count += c;
            }
        }
        HistogramSnapshot {
            name: self.name,
            count,
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
            max_ns: self.max_ns.load(Ordering::Relaxed),
            buckets,
        }
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.sum_ns.store(0, Ordering::Relaxed);
        self.max_ns.store(0, Ordering::Relaxed);
    }
}

fn registry() -> &'static Mutex<BTreeMap<&'static str, &'static Histogram>> {
    static REGISTRY: OnceLock<Mutex<BTreeMap<&'static str, &'static Histogram>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Interns and returns the histogram named `name`. The registry lock is
/// taken only here — call sites look their handle up once (e.g. at server
/// start) and record through the returned `&'static` reference forever.
pub fn histogram(name: &'static str) -> &'static Histogram {
    let mut reg = registry().lock().expect("metrics registry poisoned");
    if let Some(h) = reg.get(name) {
        return h;
    }
    let h: &'static Histogram = Box::leak(Box::new(Histogram::new(name)));
    reg.insert(name, h);
    h
}

/// Zeroes every registered histogram. Harnesses call this between runs so
/// per-run percentiles don't mix with a previous run's samples; the
/// process-cumulative default is what the exporter wants.
pub fn reset() {
    let reg = registry().lock().expect("metrics registry poisoned");
    for h in reg.values() {
        h.reset();
    }
}

// ---------------------------------------------------------------------------
// Snapshots
// ---------------------------------------------------------------------------

/// A point-in-time copy of one histogram's buckets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Registered name.
    pub name: &'static str,
    /// Total recorded samples.
    pub count: u64,
    /// Sum of recorded durations, nanoseconds.
    pub sum_ns: u64,
    /// Largest recorded duration, exact.
    pub max_ns: u64,
    /// Non-empty buckets as `(inclusive_upper_bound_ns, count)`, ascending.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Nearest-rank percentile (`pct` in 0..=100) at bucket resolution:
    /// the inclusive upper bound of the bucket holding the target rank,
    /// clamped to the exactly-tracked maximum. Returns 0 for an empty
    /// histogram.
    pub fn percentile(&self, pct: u64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (self.count * pct).div_ceil(100).max(1);
        let mut cum = 0u64;
        for &(le, c) in &self.buckets {
            cum += c;
            if cum >= rank {
                return le.min(self.max_ns);
            }
        }
        self.max_ns
    }

    /// Median, nanoseconds (bucket resolution).
    pub fn p50_ns(&self) -> u64 {
        self.percentile(50)
    }

    /// 90th percentile, nanoseconds (bucket resolution).
    pub fn p90_ns(&self) -> u64 {
        self.percentile(90)
    }

    /// 99th percentile, nanoseconds (bucket resolution).
    pub fn p99_ns(&self) -> u64 {
        self.percentile(99)
    }
}

/// A point-in-time view of the whole telemetry surface: every registered
/// histogram plus counter totals and gauge statistics cloned from the
/// thread buffers (nothing is drained or reset by taking a snapshot).
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Histogram snapshots, name-ordered.
    pub histograms: Vec<HistogramSnapshot>,
    /// Counter totals across all threads.
    pub counters: BTreeMap<&'static str, u64>,
    /// Gauge statistics across all threads.
    pub gauges: BTreeMap<&'static str, GaugeStat>,
}

/// Takes a [`MetricsSnapshot`] of the current process.
pub fn snapshot() -> MetricsSnapshot {
    let histograms = {
        let reg = registry().lock().expect("metrics registry poisoned");
        reg.values().map(|h| h.snapshot()).collect()
    };
    let (counters, gauges) = crate::aggregates_snapshot();
    MetricsSnapshot { histograms, counters, gauges }
}

/// `name` → Prometheus metric identifier: `cae_` prefix, every
/// non-alphanumeric character folded to `_`.
fn metric_ident(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    out.push_str("cae_");
    for c in name.chars() {
        out.push(if c.is_ascii_alphanumeric() { c } else { '_' });
    }
    out
}

impl MetricsSnapshot {
    /// Looks up one histogram snapshot by registered name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Renders the snapshot as Prometheus-style exposition text. The
    /// output is byte-stable: maps are name-ordered, histogram buckets
    /// are cumulative counts over fixed bounds, and gauge values use the
    /// shortest round-trip float form.
    pub fn prometheus_text(&self) -> String {
        let mut out = String::new();
        for h in &self.histograms {
            let ident = metric_ident(h.name);
            let _ = writeln!(out, "# TYPE {ident}_ns histogram");
            let mut cum = 0u64;
            for &(le, c) in &h.buckets {
                cum += c;
                let _ = writeln!(out, "{ident}_ns_bucket{{le=\"{le}\"}} {cum}");
            }
            let _ = writeln!(out, "{ident}_ns_bucket{{le=\"+Inf\"}} {}", h.count);
            let _ = writeln!(out, "{ident}_ns_sum {}", h.sum_ns);
            let _ = writeln!(out, "{ident}_ns_count {}", h.count);
        }
        for (name, total) in &self.counters {
            let ident = metric_ident(name);
            let _ = writeln!(out, "# TYPE {ident} counter");
            let _ = writeln!(out, "{ident} {total}");
        }
        for (name, g) in &self.gauges {
            let ident = metric_ident(name);
            let _ = writeln!(out, "# TYPE {ident} gauge");
            let mut v = String::new();
            crate::json_f64(g.last, &mut v);
            let _ = writeln!(out, "{ident} {v}");
        }
        out
    }

    /// Renders the snapshot as the `METRICS_<stem>.json` document:
    /// histograms with derived percentiles and raw buckets, counter
    /// totals, gauge statistics. Name-ordered and byte-stable for a given
    /// snapshot.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"histograms\": {\n");
        for (i, h) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            let _ = write!(
                out,
                "    \"{}\": {{\"count\": {}, \"sum_ns\": {}, \"max_ns\": {}, \"p50_ns\": {}, \"p90_ns\": {}, \"p99_ns\": {}, \"buckets\": [",
                h.name,
                h.count,
                h.sum_ns,
                h.max_ns,
                h.p50_ns(),
                h.p90_ns(),
                h.p99_ns(),
            );
            for (j, &(le, c)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "[{le}, {c}]");
            }
            out.push_str("]}");
        }
        out.push_str("\n  },\n  \"counters\": {\n");
        for (i, (name, total)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            let _ = write!(out, "    \"{name}\": {total}");
        }
        out.push_str("\n  },\n  \"gauges\": {\n");
        for (i, (name, g)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            let mean = if g.count > 0 { g.sum / g.count as f64 } else { 0.0 };
            let _ = write!(out, "    \"{name}\": {{\"count\": {}, \"last\": ", g.count);
            crate::json_f64(g.last, &mut out);
            out.push_str(", \"mean\": ");
            crate::json_f64(mean, &mut out);
            out.push_str(", \"min\": ");
            crate::json_f64(g.min, &mut out);
            out.push_str(", \"max\": ");
            crate::json_f64(g.max, &mut out);
            out.push('}');
        }
        out.push_str("\n  }\n}\n");
        out
    }

    /// Writes `METRICS_<stem>.json` and `metrics_<stem>.prom` into `dir`,
    /// creating it first. Returns both paths.
    ///
    /// # Errors
    /// Returns any I/O error from creating the directory or writing.
    pub fn save(&self, dir: &Path, stem: &str) -> std::io::Result<(PathBuf, PathBuf)> {
        std::fs::create_dir_all(dir)?;
        let json = dir.join(format!("METRICS_{stem}.json"));
        std::fs::write(&json, self.to_json())?;
        let prom = dir.join(format!("metrics_{stem}.prom"));
        std::fs::write(&prom, self.prometheus_text())?;
        Ok((json, prom))
    }
}

// ---------------------------------------------------------------------------
// Periodic exporter
// ---------------------------------------------------------------------------

/// Handle to a running in-process exporter thread; stop it with
/// [`Exporter::stop`] (dropping the handle detaches the thread, which is
/// harmless — it only ever rewrites the export files).
pub struct Exporter {
    stop: Arc<(Mutex<bool>, Condvar)>,
    handle: std::thread::JoinHandle<()>,
    dir: PathBuf,
    stem: String,
}

impl Exporter {
    /// Signals the exporter thread, joins it, and writes one final
    /// snapshot so the files on disk reflect the complete run. Returns
    /// the `(json, prom)` paths.
    ///
    /// # Errors
    /// Returns any I/O error from the final write.
    pub fn stop(self) -> std::io::Result<(PathBuf, PathBuf)> {
        {
            let (flag, cv) = &*self.stop;
            *flag.lock().expect("exporter stop flag poisoned") = true;
            cv.notify_all();
        }
        let _ = self.handle.join();
        snapshot().save(&self.dir, &self.stem)
    }
}

/// Starts the periodic exporter if `CAE_METRICS_INTERVAL_MS` is set:
/// every interval it rewrites `METRICS_<stem>.json` / `metrics_<stem>.prom`
/// under `dir`. Returns `None` (and starts nothing) when no interval is
/// configured. Starting an exporter force-enables metrics recording for
/// the process — an exporter over all-zero histograms is useless.
pub fn start_exporter(dir: &Path, stem: &str) -> Option<Exporter> {
    let every = Duration::from_millis(interval_ms()?);
    Some(start_exporter_every(dir, stem, every))
}

/// [`start_exporter`] with an explicit interval, ignoring the environment
/// (tests; harnesses that want an exporter unconditionally).
pub fn start_exporter_every(dir: &Path, stem: &str, every: Duration) -> Exporter {
    force_enabled(true);
    let stop = Arc::new((Mutex::new(false), Condvar::new()));
    let thread_stop = Arc::clone(&stop);
    let thread_dir = dir.to_path_buf();
    let thread_stem = stem.to_string();
    let handle = std::thread::Builder::new()
        .name("cae-metrics-exporter".into())
        .spawn(move || {
            let (flag, cv) = &*thread_stop;
            let mut stopped = flag.lock().expect("exporter stop flag poisoned");
            loop {
                let (guard, _timeout) = cv
                    .wait_timeout(stopped, every)
                    .expect("exporter stop flag poisoned");
                stopped = guard;
                if *stopped {
                    return;
                }
                // Export errors are non-fatal: telemetry must never take
                // down the serving process it observes.
                let _ = snapshot().save(&thread_dir, &thread_stem);
            }
        })
        .expect("spawning metrics exporter thread");
    Exporter {
        stop,
        handle,
        dir: dir.to_path_buf(),
        stem: stem.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that toggle the global metrics state or reset the
    /// shared histogram registry (shared with the crate-root tests, which
    /// toggle the trace gate this module's counter path reads through).
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        crate::test_lock()
    }

    #[test]
    fn bucket_bounds_partition_the_u64_range() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_le(0), 0);
        assert_eq!(bucket_le(1), 1);
        assert_eq!(bucket_le(2), 3);
        assert_eq!(bucket_le(64), u64::MAX);
        // Every value falls in a bucket whose bounds contain it.
        for ns in [0u64, 1, 7, 8, 1023, 1024, 123_456_789, u64::MAX] {
            let b = bucket_index(ns);
            assert!(ns <= bucket_le(b));
            if b > 0 {
                assert!(ns > bucket_le(b - 1));
            }
        }
    }

    #[test]
    fn disabled_recording_is_a_no_op() {
        let _l = lock();
        force_enabled(false);
        let h = histogram("test.disabled");
        h.reset();
        h.record_ns(1000);
        h.record_since(Instant::now());
        assert_eq!(h.snapshot().count, 0);
        reset_to_env();
    }

    #[test]
    fn percentiles_and_max_are_exact_at_bucket_resolution() {
        let _l = lock();
        force_enabled(true);
        let h = histogram("test.percentiles");
        h.reset();
        // 89 samples in [512, 1023] (bucket le=1023), 10 in [1024, 2047],
        // 1 at exactly 5000 (bucket le=8191, clamped to the exact max).
        for _ in 0..89 {
            h.record_ns(600);
        }
        for _ in 0..10 {
            h.record_ns(1500);
        }
        h.record_ns(5000);
        let s = h.snapshot();
        force_enabled(false);
        reset_to_env();
        assert_eq!(s.count, 100);
        assert_eq!(s.max_ns, 5000);
        assert_eq!(s.sum_ns, 89 * 600 + 10 * 1500 + 5000);
        assert_eq!(s.p50_ns(), 1023);
        assert_eq!(s.p90_ns(), 2047);
        assert_eq!(s.p99_ns(), 2047);
        assert_eq!(s.percentile(100), 5000, "p100 clamps to the exact max");
        assert_eq!(HistogramSnapshot { count: 0, ..s }.percentile(50), 0);
    }

    #[test]
    fn histograms_merge_across_threads_lock_free() {
        let _l = lock();
        force_enabled(true);
        let h = histogram("test.threads");
        h.reset();
        let handles: Vec<_> = (0..4)
            .map(|i| {
                std::thread::spawn(move || {
                    let h = histogram("test.threads");
                    for _ in 0..100 {
                        h.record_ns(100 << i);
                    }
                })
            })
            .collect();
        for t in handles {
            t.join().expect("worker panicked");
        }
        let s = h.snapshot();
        force_enabled(false);
        reset_to_env();
        assert_eq!(s.count, 400);
        assert_eq!(s.max_ns, 800);
        assert_eq!(s.sum_ns, 100 * (100 + 200 + 400 + 800));
    }

    #[test]
    fn snapshot_renders_byte_stably_and_nondestructively() {
        let _l = lock();
        force_enabled(true);
        let h = histogram("test.render");
        h.reset();
        h.record_ns(0);
        h.record_ns(900);
        h.record_ns(900);
        let a = snapshot();
        let b = snapshot();
        force_enabled(false);
        reset_to_env();
        // Snapshots are non-destructive, so two in a row agree — and the
        // renderings are byte-identical (the tier1 METRICS byte-diff).
        let ha = a.histogram("test.render").expect("registered");
        assert_eq!(ha, b.histogram("test.render").expect("registered"));
        assert_eq!(ha.count, 3);
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.prometheus_text(), b.prometheus_text());

        let prom = a.prometheus_text();
        assert!(prom.contains("# TYPE cae_test_render_ns histogram"));
        assert!(prom.contains("cae_test_render_ns_bucket{le=\"0\"} 1"));
        // Bucket counts are cumulative: le=1023 covers the zero too.
        assert!(prom.contains("cae_test_render_ns_bucket{le=\"1023\"} 3"));
        assert!(prom.contains("cae_test_render_ns_bucket{le=\"+Inf\"} 3"));
        assert!(prom.contains("cae_test_render_ns_sum 1800"));
        assert!(prom.contains("cae_test_render_ns_count 3"));
        let json = a.to_json();
        assert!(json.contains("\"test.render\": {\"count\": 3, \"sum_ns\": 1800"));
        assert!(json.contains("\"buckets\": [[0, 1], [1023, 2]]"));
    }

    #[test]
    fn snapshot_includes_counters_and_gauges_without_draining() {
        let _l = lock();
        // The counter/gauge aggregates go through the *trace* gate.
        crate::force_enabled(true);
        let _ = crate::drain();
        crate::counter("metrics.test.counter", 7);
        crate::gauge("metrics.test.gauge", 2.5);
        let s = snapshot();
        assert_eq!(s.counters.get("metrics.test.counter"), Some(&7));
        assert_eq!(s.gauges["metrics.test.gauge"].last, 2.5);
        let prom = s.prometheus_text();
        assert!(prom.contains("# TYPE cae_metrics_test_counter counter"));
        assert!(prom.contains("cae_metrics_test_counter 7"));
        assert!(prom.contains("cae_metrics_test_gauge 2.5"));
        // Non-destructive: the later drain still sees everything.
        let t = crate::drain();
        crate::force_enabled(false);
        crate::reset_to_env();
        assert_eq!(t.counters["metrics.test.counter"], 7);
    }

    #[test]
    fn exporter_writes_and_final_snapshot_lands_on_stop() {
        let _l = lock();
        let h = histogram("test.exporter");
        h.reset();
        let dir = std::env::temp_dir().join(format!("cae_metrics_test_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let exporter = start_exporter_every(&dir, "demo", Duration::from_millis(5));
        h.record_ns(4242);
        std::thread::sleep(Duration::from_millis(30));
        let (json, prom) = exporter.stop().expect("final export succeeds");
        force_enabled(false);
        reset_to_env();
        assert!(json.ends_with("METRICS_demo.json") && json.exists());
        assert!(prom.ends_with("metrics_demo.prom") && prom.exists());
        let body = std::fs::read_to_string(&json).expect("readable");
        assert!(body.contains("\"test.exporter\": {\"count\": 1"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reset_zeroes_registered_histograms() {
        let _l = lock();
        force_enabled(true);
        let h = histogram("test.reset");
        h.record_ns(10);
        reset();
        let s = h.snapshot();
        force_enabled(false);
        reset_to_env();
        assert_eq!(s.count, 0);
        assert_eq!(s.max_ns, 0);
        assert!(s.buckets.is_empty());
    }
}
