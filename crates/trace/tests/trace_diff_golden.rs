//! Golden trace-diff test: two committed miniature trace fixtures — the
//! slow one has a known injected slowdown in `trainer.student_step` (each
//! of the two steps inflated by 1600ns; every other span's *self* time is
//! unchanged because parent durations grow by exactly the injected
//! amount). The diff must name that span, with the exact delta, and the
//! rendering must carry the attribution line verbatim so the bench gate's
//! regression output can be grepped for it.

use cae_trace::profile::{diff, Profile};

const BASE: &str = include_str!("fixtures/trace_base.jsonl");
const SLOW: &str = include_str!("fixtures/trace_slow.jsonl");

#[test]
fn injected_slowdown_is_named_as_the_top_delta_span() {
    let base = Profile::from_jsonl(BASE).expect("base fixture parses");
    let slow = Profile::from_jsonl(SLOW).expect("slow fixture parses");
    assert!(base.experiment_root().is_some(), "fixtures carry a full tree");

    let d = diff(&base, &slow);
    let top = d.top_regression().expect("the slowdown must surface");
    assert_eq!(top.name, "trainer.student_step");
    assert_eq!(top.delta_self_ns, 2 * 1600, "two steps, 1600ns injected each");
    assert_eq!(top.base.count, 2);
    assert_eq!(top.cur.count, 2);

    // Self time elsewhere is untouched: the injected time propagated into
    // parent *totals* only.
    for name in ["experiment", "scheduler.cell", "trainer.generator_step"] {
        let row = d.rows.iter().find(|r| r.name == name).expect("span present");
        assert_eq!(row.delta_self_ns, 0, "{name} self time must not move");
    }
    let cell = d.rows.iter().find(|r| r.name == "scheduler.cell").expect("cells present");
    assert_eq!(cell.delta_total_ns, 2 * 1600, "cell totals absorb the child slowdown");

    // Whole-trace wall-clock moves by exactly the injected amount.
    assert_eq!(d.cur_self_ns - d.base_self_ns, 2 * 1600);

    let rendered = d.render(10);
    assert!(
        rendered.contains("top-delta span: trainer.student_step"),
        "attribution line must name the guilty span:\n{rendered}"
    );
    // Contribution order puts the injected span first.
    let first_row = rendered.lines().nth(1).expect("at least one row");
    assert!(first_row.trim_start().starts_with("trainer.student_step"), "{rendered}");
}

#[test]
fn reversed_diff_reports_a_speedup_not_a_regression() {
    let base = Profile::from_jsonl(BASE).expect("base fixture parses");
    let slow = Profile::from_jsonl(SLOW).expect("slow fixture parses");
    let d = diff(&slow, &base);
    assert!(
        d.top_regression().is_none(),
        "going from slow to base, nothing got slower"
    );
    assert!(d.render(10).contains("top-delta span: none"));
}
