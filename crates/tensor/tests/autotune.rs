//! Autotune cache semantics end-to-end through real [`cae_tensor::gemm`]
//! calls: winners are measured once per shape class and then cached,
//! disabling the tuner falls back to the static heuristic, the on-disk
//! cache short-circuits measurement in a "new process" (simulated via
//! [`cae_tensor::autotune::reset_for_tests`]), and — the determinism
//! contract — every candidate, the winner, and the untuned default all
//! produce bit-identical output.

use cae_tensor::{autotune, gemm::gemm, pool};
use std::sync::Mutex;

/// Serializes the tests in this binary: the tuner is process-global and
/// every test resets it.
fn lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A product big enough to tune (`2*96^3 ≈ 2^20.75` FLOPs clears the
/// min-tune floor) but fast enough to run dozens of times in a test.
const DIM: usize = 96;

fn fill(len: usize, seed: u32) -> Vec<f32> {
    let mut state = seed.wrapping_mul(747796405).wrapping_add(2891336453);
    (0..len)
        .map(|_| {
            state = state.wrapping_mul(747796405).wrapping_add(2891336453);
            (state >> 8) as f32 / (1u32 << 23) as f32 - 1.0
        })
        .collect()
}

fn run_gemm(a: &[f32], b: &[f32]) -> Vec<u32> {
    let mut c = vec![0.0f32; DIM * DIM];
    gemm(DIM, DIM, DIM, a, (DIM, 1), b, (DIM, 1), &mut c, false);
    c.into_iter().map(f32::to_bits).collect()
}

#[test]
fn winner_is_measured_once_and_every_candidate_is_bit_identical() {
    let _guard = lock();
    let a = fill(DIM * DIM, 11);
    let b = fill(DIM * DIM, 23);
    let budget = pool::max_parallelism();

    // Reference bits from the static heuristic (tuning off).
    autotune::reset_for_tests(None);
    autotune::force_autotune(Some(false));
    let reference = run_gemm(&a, &b);

    // Warm-up phase: every measured candidate must already match the
    // reference bit-for-bit — determinism may not depend on which config
    // wins.
    autotune::force_autotune(Some(true));
    for call in 0..64 {
        assert_eq!(
            run_gemm(&a, &b),
            reference,
            "call {call} during measurement diverged from the untuned bits"
        );
    }
    let winner = autotune::winner_for(DIM, DIM, DIM, budget)
        .expect("64 calls must be enough to decide a winner");
    assert!(winner.threads <= budget);

    // Once decided, the winner is cached: no further samples are taken.
    let samples = autotune::timed_samples(DIM, DIM, DIM, budget);
    assert!(samples > 0);
    for _ in 0..8 {
        assert_eq!(run_gemm(&a, &b), reference);
    }
    assert_eq!(
        autotune::timed_samples(DIM, DIM, DIM, budget),
        samples,
        "a decided shape class must not be re-measured"
    );

    // Turning the tuner back off returns the same bits too.
    autotune::force_autotune(Some(false));
    assert_eq!(run_gemm(&a, &b), reference);
    autotune::force_autotune(None);
}

#[test]
fn disabling_autotune_skips_measurement_entirely() {
    let _guard = lock();
    autotune::reset_for_tests(None);
    autotune::force_autotune(Some(false));
    let a = fill(DIM * DIM, 5);
    let b = fill(DIM * DIM, 9);
    let budget = pool::max_parallelism();
    for _ in 0..8 {
        run_gemm(&a, &b);
    }
    assert_eq!(autotune::timed_samples(DIM, DIM, DIM, budget), 0);
    assert_eq!(autotune::winner_for(DIM, DIM, DIM, budget), None);
    autotune::force_autotune(None);
}

#[test]
fn disk_cache_short_circuits_measurement_after_a_reset() {
    let _guard = lock();
    let cache = std::env::temp_dir().join(format!(
        "cae_autotune_itest_{}.txt",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&cache);
    let a = fill(DIM * DIM, 3);
    let b = fill(DIM * DIM, 17);
    let budget = pool::max_parallelism();

    // First "process": measure to a winner, persisting to the temp cache.
    autotune::reset_for_tests(Some(cache.clone()));
    autotune::force_autotune(Some(true));
    for _ in 0..64 {
        run_gemm(&a, &b);
        if autotune::winner_for(DIM, DIM, DIM, budget).is_some() {
            break;
        }
    }
    let winner = autotune::winner_for(DIM, DIM, DIM, budget).expect("winner must be decided");
    assert!(cache.exists(), "winner must be persisted to the cache file");

    // Second "process": fresh in-process state over the same cache file.
    // The first plan adopts the disk winner — zero measurement.
    autotune::reset_for_tests(Some(cache.clone()));
    run_gemm(&a, &b);
    assert_eq!(
        autotune::winner_for(DIM, DIM, DIM, budget),
        Some(winner),
        "the disk-cached winner must be adopted verbatim"
    );
    assert_eq!(
        autotune::timed_samples(DIM, DIM, DIM, budget),
        0,
        "a disk-cached class must not be re-measured"
    );

    autotune::force_autotune(None);
    autotune::reset_for_tests(None);
    let _ = std::fs::remove_file(&cache);
}
