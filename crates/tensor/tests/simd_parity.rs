//! Scalar-vs-SIMD parity suite: every dispatched kernel must produce
//! **bit-identical** results on the scalar backend and on the best backend
//! the host supports (AVX2 on x86-64, NEON on aarch64). This is the
//! executable form of the determinism contract in `cae_tensor::simd` —
//! uniform 8-lane semantics, fused multiply-adds everywhere, fixed
//! reduction trees — and what lets tier1 byte-diff a scalar-forced
//! experiment report against an auto-detected one.
//!
//! Accuracy of the vectorized transcendentals is gated separately, with
//! ULP bounds against f32 libm.
//!
//! The backend override is process-global, so every test that flips it
//! holds [`BACKEND_LOCK`] and restores the detected backend before
//! releasing it.

use cae_tensor::conv::{self, Conv2dSpec};
use cae_tensor::gemm::gemm;
use cae_tensor::rng::TensorRng;
use cae_tensor::simd::{self, vecmath, Backend};
use proptest::prelude::*;
use std::sync::Mutex;

/// Serializes tests that toggle the process-global backend.
static BACKEND_LOCK: Mutex<()> = Mutex::new(());

/// Takes the backend lock, surviving poisoning (an assert failure in one
/// test must not cascade into every later test).
fn backend_guard() -> std::sync::MutexGuard<'static, ()> {
    BACKEND_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Runs `f` under the scalar backend and again under the detected one,
/// asserting both runs return bit-identical `Vec<f32>` output.
fn assert_backend_parity(label: &str, mut f: impl FnMut() -> Vec<f32>) {
    let _guard = backend_guard();
    let detected = simd::detected_backend();
    simd::force_backend(Backend::Scalar);
    let scalar = f();
    simd::force_backend(detected);
    let native = f();
    assert_eq!(scalar.len(), native.len(), "{label}: length diverged");
    for (i, (s, v)) in scalar.iter().zip(&native).enumerate() {
        assert!(
            s.to_bits() == v.to_bits(),
            "{label}: scalar vs {} diverged at [{i}]: {s:?} ({:#010x}) vs {v:?} ({:#010x})",
            detected.name(),
            s.to_bits(),
            v.to_bits(),
        );
    }
}

/// Distance in representable f32 values, treating the floats as points on
/// the ordered-integer number line (so `inf` is 1 ulp past `MAX`, and the
/// distance is symmetric across zero).
fn ulp_dist(a: f32, b: f32) -> u32 {
    fn ordered(x: f32) -> i64 {
        let bits = x.to_bits() as i32;
        i64::from(if bits < 0 { i32::MIN.wrapping_sub(bits) } else { bits })
    }
    if a.is_nan() || b.is_nan() {
        return if a.is_nan() && b.is_nan() { 0 } else { u32::MAX };
    }
    ordered(a).abs_diff(ordered(b)).min(u64::from(u32::MAX)) as u32
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// GEMM over all three stride layouts and shapes spanning partial
    /// MR x NR tiles produces the same bits on every backend.
    #[test]
    fn gemm_parity(seed in 0u64..1000, m in 1usize..10, n in 1usize..36, k in 1usize..20, layout in 0usize..3) {
        let mut rng = TensorRng::seed_from(seed);
        let a: Vec<f32> = (0..m * k).map(|_| rng.normal()).collect();
        let b: Vec<f32> = (0..k * n).map(|_| rng.normal()).collect();
        // NN, NT (B column-major view), TN (A column-major view).
        let (a_strides, b_strides) = match layout {
            0 => ((k, 1), (n, 1)),
            1 => ((k, 1), (1, k)),
            _ => ((1, m), (n, 1)),
        };
        assert_backend_parity("gemm", || {
            let mut c = vec![0.0f32; m * n];
            gemm(m, n, k, &a, a_strides, &b, b_strides, &mut c, false);
            c
        });
    }

    /// conv2d forward + backward (dx ++ dw ++ db) bit-agree across
    /// backends, including the packed-GEMM and im2col paths.
    #[test]
    fn conv2d_parity(seed in 0u64..1000, n in 1usize..3, c in 1usize..4, hw in 3usize..8, o in 1usize..5, stride in 1usize..3) {
        let mut rng = TensorRng::seed_from(seed);
        let x = rng.normal_tensor(&[n, c, hw, hw], 0.0, 1.0);
        let w = rng.normal_tensor(&[o, c, 3, 3], 0.0, 0.3);
        let bias = rng.normal_tensor(&[o], 0.0, 0.1);
        let spec = Conv2dSpec::new(3, stride, 1);
        let y = conv::conv2d(&x, &w, Some(&bias), spec);
        assert_backend_parity("conv2d fwd+bwd", || {
            let fwd = conv::conv2d(&x, &w, Some(&bias), spec);
            let (dx, dw, db) = conv::conv2d_backward(&x, &w, &y, spec);
            let mut out = fwd.data().to_vec();
            out.extend_from_slice(dx.data());
            out.extend_from_slice(dw.data());
            out.extend_from_slice(db.data());
            out
        });
    }

    /// softmax_rows and the elementwise/reduction slice kernels agree
    /// across backends on ragged (non-multiple-of-8) lengths.
    #[test]
    fn slice_kernel_parity(seed in 0u64..1000, len in 1usize..70) {
        let mut rng = TensorRng::seed_from(seed);
        let a: Vec<f32> = (0..len).map(|_| rng.normal() * 3.0).collect();
        let b: Vec<f32> = (0..len).map(|_| rng.normal() * 3.0).collect();
        assert_backend_parity("slice kernels", || {
            let mut out = Vec::new();
            let mut buf = vec![0.0f32; len];
            vecmath::vec_exp(&a, &mut buf);
            out.extend_from_slice(&buf);
            vecmath::vec_tanh(&a, &mut buf);
            out.extend_from_slice(&buf);
            vecmath::vec_sigmoid(&a, &mut buf);
            out.extend_from_slice(&buf);
            vecmath::vec_relu_grad(&a, &b, &mut buf);
            out.extend_from_slice(&buf);
            vecmath::vec_leaky_relu(&a, 0.2, &mut buf);
            out.extend_from_slice(&buf);
            vecmath::vec_mul(&a, &b, &mut buf);
            out.extend_from_slice(&buf);
            let mut soft = a.clone();
            vecmath::vec_softmax(&mut soft);
            out.extend_from_slice(&soft);
            let mut axpy = a.clone();
            vecmath::vec_axpy(&mut axpy, &b, 0.37);
            out.extend_from_slice(&axpy);
            out.push(vecmath::vec_sum(&a));
            out.push(vecmath::vec_dot(&a, &b));
            out.push(vecmath::vec_max(&a));
            out
        });
    }

    /// int8 dequantization (whole-slice scale and per-column scales)
    /// bit-agrees across backends: the i8 → f32 widening is exact and the
    /// scale multiply is correctly rounded everywhere.
    #[test]
    fn dequant_parity(seed in 0u64..1000, len in 1usize..70) {
        let mut rng = TensorRng::seed_from(seed);
        let q: Vec<i8> = (0..len).map(|_| (rng.normal() * 60.0).clamp(-127.0, 127.0) as i8).collect();
        let scales: Vec<f32> = (0..len).map(|_| rng.normal().abs() * 0.01 + 1e-4).collect();
        assert_backend_parity("dequant kernels", || {
            let mut out = Vec::new();
            let mut buf = vec![0.0f32; len];
            vecmath::vec_dequant_i8(&q, scales[0], &mut buf);
            out.extend_from_slice(&buf);
            vecmath::vec_dequant_i8_cols(&q, &scales, &mut buf);
            out.extend_from_slice(&buf);
            out
        });
    }

    /// The fused Adam update step bit-agrees across backends.
    #[test]
    fn adam_parity(seed in 0u64..1000, len in 1usize..40, t in 1i32..100) {
        let mut rng = TensorRng::seed_from(seed);
        let w0: Vec<f32> = (0..len).map(|_| rng.normal()).collect();
        let m: Vec<f32> = (0..len).map(|_| rng.normal() * 0.1).collect();
        let v: Vec<f32> = (0..len).map(|_| (rng.normal() * 0.1).abs() + 1e-6).collect();
        let bc1 = 1.0 - 0.9f32.powi(t);
        let bc2 = 1.0 - 0.999f32.powi(t);
        assert_backend_parity("vec_adam", || {
            let mut w = w0.clone();
            vecmath::vec_adam(&mut w, &m, &v, 1e-3, bc1, bc2, 1e-8);
            w
        });
    }

    /// Batch-norm-style channel statistics (sum, scale, dot reductions over
    /// H*W chunks) bit-agree across backends for awkward chunk sizes.
    #[test]
    fn channel_reduction_parity(seed in 0u64..1000, chunks in 1usize..5, hw in 1usize..30) {
        let mut rng = TensorRng::seed_from(seed);
        let x: Vec<f32> = (0..chunks * hw).map(|_| rng.normal()).collect();
        let g: Vec<f32> = (0..chunks * hw).map(|_| rng.normal()).collect();
        assert_backend_parity("channel reductions", || {
            let mut out = Vec::new();
            for ci in 0..chunks {
                let xs = &x[ci * hw..(ci + 1) * hw];
                let gs = &g[ci * hw..(ci + 1) * hw];
                out.push(vecmath::vec_sum(xs));
                out.push(vecmath::vec_dot(xs, gs));
                let mut scaled = vec![0.0f32; hw];
                vecmath::vec_scale(gs, 0.731, &mut scaled);
                out.extend_from_slice(&scaled);
            }
            out
        });
    }
}

// --- ULP accuracy of the vectorized transcendentals vs f32 libm. ---------

/// Max ULP distance of `f` from `reference` over a dense sweep of `range`.
fn max_ulp_over(
    range: std::ops::Range<f32>,
    steps: usize,
    f: impl Fn(&[f32], &mut [f32]),
    reference: impl Fn(f32) -> f32,
) -> u32 {
    let xs: Vec<f32> = (0..steps)
        .map(|i| range.start + (range.end - range.start) * i as f32 / (steps - 1) as f32)
        .collect();
    let mut ys = vec![0.0f32; xs.len()];
    f(&xs, &mut ys);
    xs.iter()
        .zip(&ys)
        .map(|(&x, &y)| ulp_dist(y, reference(x)))
        .max()
        .unwrap_or(0)
}

#[test]
fn vec_exp_stays_within_ulp_bound_of_libm() {
    let _guard = backend_guard();
    // The working range of every exp call in the codebase (softmax inputs
    // are max-shifted to <= 0; KL and generator losses stay small).
    let ulp = max_ulp_over(-87.0..87.0, 200_001, vecmath::vec_exp, f32::exp);
    assert!(ulp <= 4, "vec_exp drifted to {ulp} ulp from libm expf");
    // Near the overflow cutoff the two-factor scaling may hand back inf one
    // representable value early; allow a slightly wider band there.
    let ulp = max_ulp_over(87.0..88.8, 20_001, vecmath::vec_exp, f32::exp);
    assert!(ulp <= 8, "vec_exp overflow-boundary drift: {ulp} ulp");
}

#[test]
fn vec_tanh_stays_within_ulp_bound_of_libm() {
    let _guard = backend_guard();
    let ulp = max_ulp_over(-9.5..9.5, 200_001, vecmath::vec_tanh, f32::tanh);
    assert!(ulp <= 8, "vec_tanh drifted to {ulp} ulp from libm tanhf");
    // tanh saturates to ±1 exactly past ~9.01; spot-check the far tail.
    let ulp = max_ulp_over(9.5..80.0, 2_001, vecmath::vec_tanh, f32::tanh);
    assert!(ulp <= 1, "vec_tanh saturation drift: {ulp} ulp");
}

#[test]
fn vec_sigmoid_stays_within_ulp_bound_of_reference() {
    let _guard = backend_guard();
    let reference = |x: f32| 1.0 / (1.0 + (-x).exp());
    let ulp = max_ulp_over(-30.0..30.0, 200_001, vecmath::vec_sigmoid, reference);
    assert!(ulp <= 8, "vec_sigmoid drifted to {ulp} ulp from composed libm");
}

#[test]
fn transcendental_edge_cases_match_libm_semantics() {
    let _guard = backend_guard();
    let probes = [
        f32::NAN,
        f32::INFINITY,
        f32::NEG_INFINITY,
        0.0,
        -0.0,
        f32::MAX,
        f32::MIN,
        1e-40, // subnormal
        88.722_84,
        -104.0,
        -200.0,
        200.0,
    ];
    let mut out = vec![0.0f32; probes.len()];
    vecmath::vec_exp(&probes, &mut out);
    assert!(out[0].is_nan(), "exp(NaN) must be NaN");
    assert_eq!(out[1], f32::INFINITY);
    assert_eq!(out[2], 0.0);
    assert_eq!(out[3], 1.0);
    assert_eq!(out[4], 1.0);
    assert_eq!(out[5], f32::INFINITY);
    assert_eq!(out[6], 0.0);
    assert_eq!(out[7], 1.0);
    assert_eq!(out[10], 0.0, "exp underflows to exactly zero");
    assert_eq!(out[11], f32::INFINITY, "exp overflows to inf");

    vecmath::vec_tanh(&probes, &mut out);
    assert!(out[0].is_nan(), "tanh(NaN) must be NaN");
    assert_eq!(out[1], 1.0);
    assert_eq!(out[2], -1.0);
    assert_eq!(out[3], 0.0);
    assert_eq!(out[4].to_bits(), (-0.0f32).to_bits(), "tanh preserves -0.0");

    vecmath::vec_sigmoid(&probes, &mut out);
    assert!(out[0].is_nan(), "sigmoid(NaN) must be NaN");
    assert_eq!(out[1], 1.0);
    assert_eq!(out[2], 0.0);
    assert_eq!(out[3], 0.5);
}

/// The report-level contract: a full softmax + log-softmax round on
/// realistic logits is byte-identical between the scalar and native
/// backends (the slice-level guarantee, exercised end to end through the
/// Tensor API).
#[test]
fn tensor_level_softmax_is_bit_identical_across_backends() {
    let mut rng = TensorRng::seed_from(7);
    let logits = rng.normal_tensor(&[17, 13], 0.0, 4.0);
    assert_backend_parity("Tensor::softmax_rows", || {
        let p = logits.softmax_rows();
        let mut out = p.data().to_vec();
        out.push(p.sum());
        out.push(p.sq_norm());
        out
    });
}
