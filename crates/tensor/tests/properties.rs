//! Property-based tests of the tensor substrate: algebraic identities of
//! the kernels and autograd invariants.

use cae_tensor::conv::{self, Conv2dSpec};
use cae_tensor::gemm::{gemm, gemm_reference};
use cae_tensor::gradcheck::check_gradients;
use cae_tensor::linalg;
use cae_tensor::rng::TensorRng;
use cae_tensor::{Tensor, Var};
use proptest::prelude::*;

fn close(a: f32, b: f32, tol: f32) -> bool {
    (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Matrix multiplication is associative: (A·B)·C == A·(B·C).
    #[test]
    fn matmul_is_associative(seed in 0u64..1000, m in 1usize..6, k in 1usize..6, n in 1usize..6, p in 1usize..6) {
        let mut rng = TensorRng::seed_from(seed);
        let a = rng.normal_tensor(&[m, k], 0.0, 1.0);
        let b = rng.normal_tensor(&[k, n], 0.0, 1.0);
        let c = rng.normal_tensor(&[n, p], 0.0, 1.0);
        let left = linalg::matmul(&linalg::matmul(&a, &b), &c);
        let right = linalg::matmul(&a, &linalg::matmul(&b, &c));
        for (x, y) in left.data().iter().zip(right.data()) {
            prop_assert!(close(*x, *y, 1e-4), "{x} vs {y}");
        }
    }

    /// Transposition is an involution and flips matmul order:
    /// (A·B)ᵀ == Bᵀ·Aᵀ.
    #[test]
    fn transpose_flips_matmul(seed in 0u64..1000, m in 1usize..6, k in 1usize..6, n in 1usize..6) {
        let mut rng = TensorRng::seed_from(seed);
        let a = rng.normal_tensor(&[m, k], 0.0, 1.0);
        let b = rng.normal_tensor(&[k, n], 0.0, 1.0);
        let lhs = linalg::transpose(&linalg::matmul(&a, &b));
        let rhs = linalg::matmul(&linalg::transpose(&b), &linalg::transpose(&a));
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!(close(*x, *y, 1e-4));
        }
    }

    /// Softmax is invariant to per-row constant shifts.
    #[test]
    fn softmax_shift_invariance(seed in 0u64..1000, shift in -10.0f32..10.0) {
        let mut rng = TensorRng::seed_from(seed);
        let x = rng.normal_tensor(&[3, 5], 0.0, 2.0);
        let shifted = x.add_scalar(shift);
        let a = x.softmax_rows();
        let b = shifted.softmax_rows();
        for (p, q) in a.data().iter().zip(b.data()) {
            prop_assert!(close(*p, *q, 1e-4));
        }
    }

    /// Convolution is linear in its input: conv(αx) == α·conv(x).
    #[test]
    fn conv_is_linear(seed in 0u64..1000, alpha in -3.0f32..3.0) {
        let mut rng = TensorRng::seed_from(seed);
        let x = rng.normal_tensor(&[1, 2, 5, 5], 0.0, 1.0);
        let w = rng.normal_tensor(&[3, 2, 3, 3], 0.0, 0.5);
        let spec = Conv2dSpec::new(3, 1, 1);
        let lhs = conv::conv2d(&x.scale(alpha), &w, None, spec);
        let rhs = conv::conv2d(&x, &w, None, spec).scale(alpha);
        for (p, q) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!(close(*p, *q, 1e-3));
        }
    }

    /// Average pooling preserves the global mean when the window tiles the
    /// input exactly.
    #[test]
    fn avg_pool_preserves_mean(seed in 0u64..1000) {
        let mut rng = TensorRng::seed_from(seed);
        let x = rng.normal_tensor(&[2, 3, 4, 4], 0.0, 1.0);
        let pooled = conv::avg_pool2d(&x, 2, 2);
        prop_assert!(close(x.mean(), pooled.mean(), 1e-4));
    }

    /// Max pooling dominates average pooling elementwise.
    #[test]
    fn max_pool_dominates_avg_pool(seed in 0u64..1000) {
        let mut rng = TensorRng::seed_from(seed);
        let x = rng.normal_tensor(&[1, 2, 6, 6], 0.0, 1.0);
        let (mx, _) = conv::max_pool2d(&x, 2, 2);
        let av = conv::avg_pool2d(&x, 2, 2);
        for (m, a) in mx.data().iter().zip(av.data()) {
            prop_assert!(m >= a, "max {m} < avg {a}");
        }
    }

    /// Upsample-then-downsample by the same factor is the identity for
    /// nearest-neighbour + stride-matched average pooling.
    #[test]
    fn upsample_avgpool_roundtrip(seed in 0u64..1000, scale in 2usize..4) {
        let mut rng = TensorRng::seed_from(seed);
        let x = rng.normal_tensor(&[1, 2, 3, 3], 0.0, 1.0);
        let up = conv::upsample_nearest2d(&x, scale);
        let back = conv::avg_pool2d(&up, scale, scale);
        for (a, b) in x.data().iter().zip(back.data()) {
            prop_assert!(close(*a, *b, 1e-4));
        }
    }

    /// Backward of a linear map is exact (gradient of sum(A·x) w.r.t. x is
    /// the column sums of A).
    #[test]
    fn linear_backward_is_exact(seed in 0u64..1000, m in 1usize..5, n in 1usize..5) {
        let mut rng = TensorRng::seed_from(seed);
        let a = rng.normal_tensor(&[m, n], 0.0, 1.0);
        let x = Var::parameter(rng.normal_tensor(&[n, 1], 0.0, 1.0));
        Var::constant(a.clone()).matmul(&x).sum_all().backward();
        let g = x.grad().expect("gradient present");
        for j in 0..n {
            let col_sum: f32 = (0..m).map(|i| a.data()[i * n + j]).sum();
            prop_assert!(close(g.data()[j], col_sum, 1e-4));
        }
    }

    /// Autograd is linear: grad of (αf) is α·(grad of f).
    #[test]
    fn gradient_scaling(seed in 0u64..1000, alpha in 0.1f32..4.0) {
        let mut rng = TensorRng::seed_from(seed);
        let x = Var::parameter(rng.normal_tensor(&[4], 0.0, 1.0));
        x.square().sum_all().backward();
        let g1 = x.grad().expect("gradient present");
        x.zero_grad();
        x.square().sum_all().scale(alpha).backward();
        let g2 = x.grad().expect("gradient present");
        for (a, b) in g1.data().iter().zip(g2.data()) {
            prop_assert!(close(a * alpha, *b, 1e-4));
        }
    }

    /// Random deep chains pass the finite-difference check.
    #[test]
    fn random_chain_gradcheck(seed in 0u64..300) {
        let mut rng = TensorRng::seed_from(seed);
        let x = Var::parameter(rng.normal_tensor(&[2, 3, 4, 4], 0.0, 1.0));
        let w = Var::parameter(rng.normal_tensor(&[4, 3, 3, 3], 0.0, 0.4));
        let r = check_gradients(&[x.clone(), w.clone()], 1e-3, || {
            x.conv2d(&w, None, Conv2dSpec::new(3, 1, 1))
                .sigmoid()
                .upsample_nearest2d(2)
                .avg_pool2d(2, 2)
                .global_avg_pool()
                .l2_normalize_rows()
                .square()
                .mean_all()
        });
        prop_assert!(r.passes(2e-2), "max rel err {}", r.max_rel_err);
    }

    /// Tensor JSON serialization round-trips.
    #[test]
    fn tensor_serde_roundtrip(seed in 0u64..1000, dims in prop::collection::vec(1usize..4, 1..4)) {
        let mut rng = TensorRng::seed_from(seed);
        let t = rng.normal_tensor(&dims, 0.0, 1.0);
        let json = serde_json::to_string(&t).expect("serialize");
        let back: Tensor = serde_json::from_str(&json).expect("deserialize");
        prop_assert_eq!(back, t);
    }

    /// Clamp output respects the bounds and is idempotent.
    #[test]
    fn clamp_bounds(seed in 0u64..1000, lo in -2.0f32..0.0, hi in 0.0f32..2.0) {
        let mut rng = TensorRng::seed_from(seed);
        let t = rng.normal_tensor(&[32], 0.0, 3.0);
        let c = t.clamp(lo, hi);
        prop_assert!(c.min() >= lo && c.max() <= hi);
        prop_assert_eq!(c.clamp(lo, hi), c);
    }
}

/// Runs the blocked kernel and the naive reference over the same strided
/// operands and asserts elementwise closeness (accumulation order differs,
/// so exact equality is not expected).
fn assert_gemm_matches_reference(
    m: usize,
    n: usize,
    k: usize,
    a_strides: (usize, usize),
    b_strides: (usize, usize),
    seed: u64,
    accumulate: bool,
) -> Result<(), TestCaseError> {
    let mut rng = TensorRng::seed_from(seed);
    let alen = if m * k == 0 {
        0
    } else {
        (m - 1) * a_strides.0 + (k - 1) * a_strides.1 + 1
    };
    let blen = if k * n == 0 {
        0
    } else {
        (k - 1) * b_strides.0 + (n - 1) * b_strides.1 + 1
    };
    let a: Vec<f32> = (0..alen).map(|_| rng.normal()).collect();
    let b: Vec<f32> = (0..blen).map(|_| rng.normal()).collect();
    let init: Vec<f32> = (0..m * n).map(|_| rng.normal()).collect();
    let mut got = init.clone();
    let mut want = init;
    gemm(m, n, k, &a, a_strides, &b, b_strides, &mut got, accumulate);
    gemm_reference(m, n, k, &a, a_strides, &b, b_strides, &mut want, accumulate);
    for (idx, (g, w)) in got.iter().zip(&want).enumerate() {
        prop_assert!(
            (g - w).abs() <= 1e-4 * (1.0 + w.abs()),
            "({m},{n},{k}) strides a{a_strides:?} b{b_strides:?} acc={accumulate} \
             idx={idx}: blocked {g} vs reference {w}"
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The blocked GEMM matches the naive reference on random shapes that
    /// straddle every tiling edge case: single rows (`m = 1`), empty inner
    /// dimension (`k = 0`), and extents that are not multiples of the
    /// micro-tile (4x8) or the cache blocks.
    #[test]
    fn blocked_gemm_matches_reference_nn(
        seed in 0u64..1000,
        m in 1usize..80,
        n in 1usize..80,
        k in 0usize..40,
        acc_sel in 0u8..2,
    ) {
        assert_gemm_matches_reference(m, n, k, (k.max(1), 1), (n, 1), seed, acc_sel == 1)?;
    }

    /// Same property through the transposed-left (TN) stride mapping used
    /// by `matmul_tn` and the conv `dcol` pass.
    #[test]
    fn blocked_gemm_matches_reference_tn(
        seed in 0u64..1000,
        m in 1usize..40,
        n in 1usize..40,
        k in 1usize..40,
    ) {
        // A stored [k, m] row-major, viewed as [m, k] via strides (1, m).
        assert_gemm_matches_reference(m, n, k, (1, m), (n, 1), seed, false)?;
    }

    /// Same property through the transposed-right (NT) stride mapping used
    /// by `matmul_nt` and the conv `dw` pass.
    #[test]
    fn blocked_gemm_matches_reference_nt(
        seed in 0u64..1000,
        m in 1usize..40,
        n in 1usize..40,
        k in 1usize..40,
    ) {
        // B stored [n, k] row-major, viewed as [k, n] via strides (1, k).
        assert_gemm_matches_reference(m, n, k, (k, 1), (1, k), seed, true)?;
    }
}
