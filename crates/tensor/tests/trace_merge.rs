//! Cross-thread merge semantics at `cae_trace::drain()`, driven by real
//! `cae_tensor::pool` workers: counters, gauges and series recorded from
//! concurrent pool tasks must merge into deterministic totals regardless
//! of which thread ran which task.

use std::sync::Mutex;

/// Forces a multi-worker pool before its `OnceLock` initializes — the
/// container may expose a single core, which would otherwise run every
/// task inline on one thread and make this test vacuous. Uses the
/// in-process [`cae_tensor::pool::force_pool_size`] hook: mutating
/// `CAE_NUM_THREADS` via `std::env::set_var` is racy under the parallel
/// test harness (and unsound on newer toolchains).
fn setup() {
    let size = cae_tensor::pool::force_pool_size(4);
    assert!(
        size >= 2,
        "the pool must spin up multi-threaded before anything else touches it (got {size})"
    );
}

/// Serializes the tests in this binary: `drain()` is process-global, so a
/// concurrent test would steal this one's events.
fn lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[test]
fn concurrent_counter_and_gauge_writers_merge_deterministically() {
    setup();
    let _guard = lock();
    cae_trace::force_enabled(true);
    cae_trace::drain(); // discard leftovers from other tests
    const N: usize = 64;
    cae_tensor::pool::parallel_for(N, |i| {
        cae_trace::counter("merge.count", (i + 1) as u64);
        cae_trace::gauge("merge.gauge", i as f64);
    });
    let trace = cae_trace::drain();
    cae_trace::force_enabled(false);

    // Sum 1..=64, independent of the task->thread assignment.
    assert_eq!(trace.counters["merge.count"], (N * (N + 1) / 2) as u64);
    let g = &trace.gauges["merge.gauge"];
    assert_eq!(g.count, N as u64);
    assert_eq!(g.min, 0.0);
    assert_eq!(g.max, (N - 1) as f64);
    assert_eq!(g.sum, (N * (N - 1) / 2) as f64);
    // `last` depends on thread-merge order: only its membership is stable.
    assert!(g.last >= g.min && g.last <= g.max);
}

#[test]
fn series_from_pool_tasks_merge_sorted_by_step() {
    setup();
    let _guard = lock();
    cae_trace::force_enabled(true);
    cae_trace::drain();
    const N: usize = 48;
    cae_tensor::pool::parallel_for(N, |i| {
        cae_trace::series("merge.series", i as u64, i as f64 * 0.5);
    });
    let trace = cae_trace::drain();
    cae_trace::force_enabled(false);

    let points = &trace.series["merge.series"];
    assert_eq!(points.len(), N);
    for (i, p) in points.iter().enumerate() {
        assert_eq!(p.step, i as u64, "drain() must sort merged series by step");
        assert_eq!(p.value, i as f64 * 0.5);
    }
    assert_eq!(trace.dropped_series, 0);
    assert!(!trace.truncated());
}

#[test]
fn pool_queue_depth_gauge_survives_the_merge() {
    setup();
    let _guard = lock();
    cae_trace::force_enabled(true);
    cae_trace::drain();
    // Nested submissions from several threads force queued jobs; the
    // outer tasks run on distinct threads and each submits its own job.
    cae_tensor::pool::parallel_for(4, |_| {
        cae_tensor::pool::parallel_for(8, |i| {
            cae_trace::counter("merge.nested", i as u64);
        });
    });
    let trace = cae_trace::drain();
    cae_trace::force_enabled(false);

    // 4 outer tasks x Sum 0..8 = 4 * 28.
    assert_eq!(trace.counters["merge.nested"], 4 * 28);
    // The outer job is a real pool submission and records its queue depth;
    // nested inner calls run inline (no re-entrant submission).
    let depth = trace
        .gauges
        .get("pool.queue_depth")
        .expect("outer parallel_for records queue depth");
    assert!(depth.count >= 1);
    assert!(depth.min >= 1.0, "a submitting job sees at least itself queued");
}
