//! Error types for tensor construction and shape manipulation.

use std::error::Error;
use std::fmt;

/// Error returned by fallible tensor constructors and reshaping operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The number of provided elements does not match the product of the
    /// requested dimensions.
    LengthMismatch {
        /// Number of elements provided.
        len: usize,
        /// Requested shape.
        shape: Vec<usize>,
    },
    /// Two shapes that were required to match did not.
    ShapeMismatch {
        /// Left-hand shape.
        lhs: Vec<usize>,
        /// Right-hand shape.
        rhs: Vec<usize>,
    },
    /// A dimension argument was invalid (e.g. zero-sized kernel).
    InvalidDimension(String),
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::LengthMismatch { len, shape } => {
                write!(f, "data length {len} does not match shape {shape:?}")
            }
            TensorError::ShapeMismatch { lhs, rhs } => {
                write!(f, "shape mismatch between {lhs:?} and {rhs:?}")
            }
            TensorError::InvalidDimension(msg) => write!(f, "invalid dimension: {msg}"),
        }
    }
}

impl Error for TensorError {}
