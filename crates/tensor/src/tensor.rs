//! The raw (non-differentiable) tensor type and its elementwise kernels.

use crate::error::TensorError;
use crate::shape::Shape;
use crate::simd::vecmath;

/// An n-dimensional, row-major `f32` array.
///
/// `Tensor` carries no gradient information; it is the value type that the
/// autograd layer ([`crate::Var`]) wraps. All operations allocate fresh
/// output tensors unless documented otherwise.
///
/// ```
/// use cae_tensor::Tensor;
/// # fn main() -> Result<(), cae_tensor::TensorError> {
/// let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
/// assert_eq!(t.shape().dims(), &[2, 2]);
/// assert_eq!(t.map(|v| v * 2.0).data(), &[2.0, 4.0, 6.0, 8.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

serde::impl_json_struct!(Tensor { shape, data });

impl Tensor {
    /// Creates a tensor from a flat row-major buffer.
    ///
    /// # Errors
    /// Returns [`TensorError::LengthMismatch`] if `data.len()` does not equal
    /// the product of `dims`.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Result<Self, TensorError> {
        let shape = Shape::new(dims);
        if data.len() != shape.numel() {
            return Err(TensorError::LengthMismatch {
                len: data.len(),
                shape: dims.to_vec(),
            });
        }
        Ok(Tensor { shape, data })
    }

    /// Creates a zero-filled tensor.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        let n = shape.numel();
        Tensor {
            shape,
            data: vec![0.0; n],
        }
    }

    /// Creates a one-filled tensor.
    pub fn ones(dims: &[usize]) -> Self {
        Tensor::full(dims, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        let n = shape.numel();
        Tensor {
            shape,
            data: vec![value; n],
        }
    }

    /// Creates a 0-d (scalar) tensor.
    pub fn scalar(value: f32) -> Self {
        Tensor {
            shape: Shape::new(&[]),
            data: vec![value],
        }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The flat row-major data buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the flat buffer (used by optimizers for in-place
    /// parameter updates).
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Extracts the single element of a one-element tensor.
    ///
    /// # Panics
    /// Panics if the tensor holds more than one element.
    pub fn item(&self) -> f32 {
        assert!(
            self.data.len() == 1,
            "item() requires a single-element tensor, shape is {}",
            self.shape
        );
        self.data[0]
    }

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Errors
    /// Returns [`TensorError::LengthMismatch`] if the element counts differ.
    pub fn reshape(&self, dims: &[usize]) -> Result<Self, TensorError> {
        Tensor::from_vec(self.data.clone(), dims)
    }

    /// Applies `f` elementwise, producing a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Self {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Combines two same-shape tensors elementwise.
    ///
    /// # Panics
    /// Panics if the shapes differ.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Self {
        assert_eq!(
            self.shape, other.shape,
            "zip requires equal shapes ({} vs {})",
            self.shape, other.shape
        );
        Tensor {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// Checks shapes and allocates an output buffer for a vectorized binary
    /// op; the caller fills it with one of the `vecmath` kernels.
    fn binary_out(&self, other: &Tensor, op: &str) -> Vec<f32> {
        assert_eq!(
            self.shape, other.shape,
            "{op} requires equal shapes ({} vs {})",
            self.shape, other.shape
        );
        vec![0.0f32; self.data.len()]
    }

    /// Elementwise addition.
    ///
    /// # Panics
    /// Panics if the shapes differ.
    pub fn add(&self, other: &Tensor) -> Self {
        let mut out = self.binary_out(other, "add");
        vecmath::vec_add(&self.data, &other.data, &mut out);
        Tensor {
            shape: self.shape.clone(),
            data: out,
        }
    }

    /// Elementwise subtraction.
    ///
    /// # Panics
    /// Panics if the shapes differ.
    pub fn sub(&self, other: &Tensor) -> Self {
        let mut out = self.binary_out(other, "sub");
        vecmath::vec_sub(&self.data, &other.data, &mut out);
        Tensor {
            shape: self.shape.clone(),
            data: out,
        }
    }

    /// Elementwise multiplication.
    ///
    /// # Panics
    /// Panics if the shapes differ.
    pub fn mul(&self, other: &Tensor) -> Self {
        let mut out = self.binary_out(other, "mul");
        vecmath::vec_mul(&self.data, &other.data, &mut out);
        Tensor {
            shape: self.shape.clone(),
            data: out,
        }
    }

    /// Multiplies every element by `s`.
    pub fn scale(&self, s: f32) -> Self {
        let mut out = vec![0.0f32; self.data.len()];
        vecmath::vec_scale(&self.data, s, &mut out);
        Tensor {
            shape: self.shape.clone(),
            data: out,
        }
    }

    /// Adds `s` to every element.
    pub fn add_scalar(&self, s: f32) -> Self {
        let mut out = vec![0.0f32; self.data.len()];
        vecmath::vec_add_scalar(&self.data, s, &mut out);
        Tensor {
            shape: self.shape.clone(),
            data: out,
        }
    }

    /// In-place `self += other * scale` (used for gradient accumulation).
    ///
    /// # Panics
    /// Panics if the shapes differ.
    pub fn add_assign_scaled(&mut self, other: &Tensor, scale: f32) {
        assert_eq!(
            self.shape, other.shape,
            "add_assign_scaled requires equal shapes ({} vs {})",
            self.shape, other.shape
        );
        vecmath::vec_axpy(&mut self.data, &other.data, scale);
    }

    /// Sum of all elements.
    ///
    /// Accumulated in the fixed 8-lane order of the SIMD layer (see
    /// [`crate::simd`]), so the result is identical across backends but not
    /// bit-identical to a left-to-right scalar fold.
    pub fn sum(&self) -> f32 {
        vecmath::vec_sum(&self.data)
    }

    /// Mean of all elements (`0.0` for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum element (`f32::NEG_INFINITY` for an empty tensor).
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Index of the maximum element of a 1-d tensor slice starting at
    /// `offset` with length `len` (used for per-row argmax).
    fn argmax_slice(&self, offset: usize, len: usize) -> usize {
        let mut best = 0usize;
        let mut best_v = f32::NEG_INFINITY;
        for (i, &v) in self.data[offset..offset + len].iter().enumerate() {
            if v > best_v {
                best_v = v;
                best = i;
            }
        }
        best
    }

    /// Row-wise argmax of a `[N, K]` matrix.
    ///
    /// # Panics
    /// Panics if the tensor is not 2-dimensional.
    pub fn argmax_rows(&self) -> Vec<usize> {
        let (n, k) = self.shape.matrix();
        (0..n).map(|i| self.argmax_slice(i * k, k)).collect()
    }

    /// Row-wise softmax of a `[N, K]` matrix (numerically stabilized).
    ///
    /// # Panics
    /// Panics if the tensor is not 2-dimensional.
    pub fn softmax_rows(&self) -> Tensor {
        let (n, k) = self.shape.matrix();
        let mut out = self.data.clone();
        for i in 0..n {
            vecmath::vec_softmax(&mut out[i * k..(i + 1) * k]);
        }
        Tensor {
            shape: self.shape.clone(),
            data: out,
        }
    }

    /// Squared L2 norm of all elements (fixed-order SIMD accumulation, see
    /// [`Tensor::sum`]).
    pub fn sq_norm(&self) -> f32 {
        vecmath::vec_dot(&self.data, &self.data)
    }

    /// Clamps every element to `[lo, hi]`.
    ///
    /// # Panics
    /// Panics if `lo > hi`.
    pub fn clamp(&self, lo: f32, hi: f32) -> Self {
        assert!(lo <= hi, "clamp bounds inverted: {lo} > {hi}");
        self.map(|v| v.clamp(lo, hi))
    }

    /// Minimum element (`f32::INFINITY` for an empty tensor).
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Concatenates tensors along dimension 0. All trailing dimensions must
    /// match.
    ///
    /// # Panics
    /// Panics if `parts` is empty or trailing dimensions differ.
    pub fn concat0(parts: &[&Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "concat0 requires at least one tensor");
        let first = parts[0].shape.dims();
        let tail = &first[1..];
        let mut n0 = 0usize;
        for p in parts {
            let d = p.shape.dims();
            assert_eq!(
                &d[1..],
                tail,
                "concat0 requires matching trailing dims ({:?} vs {:?})",
                &d[1..],
                tail
            );
            n0 += d[0];
        }
        let mut dims = vec![n0];
        dims.extend_from_slice(tail);
        let mut data = Vec::with_capacity(Shape::new(&dims).numel());
        for p in parts {
            data.extend_from_slice(&p.data);
        }
        Tensor {
            shape: Shape::new(&dims),
            data,
        }
    }

    /// Extracts rows `[start, start+len)` along dimension 0.
    ///
    /// # Panics
    /// Panics if the range is out of bounds or the tensor is 0-d.
    pub fn slice0(&self, start: usize, len: usize) -> Tensor {
        let dims = self.shape.dims();
        assert!(!dims.is_empty(), "slice0 requires at least one dimension");
        assert!(
            start + len <= dims[0],
            "slice0 range {start}..{} out of bounds for dim {}",
            start + len,
            dims[0]
        );
        let stride: usize = dims[1..].iter().product();
        let mut out_dims = dims.to_vec();
        out_dims[0] = len;
        Tensor {
            shape: Shape::new(&out_dims),
            data: self.data[start * stride..(start + len) * stride].to_vec(),
        }
    }
}

impl Default for Tensor {
    fn default() -> Self {
        Tensor::scalar(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec(vec![1.0; 5], &[2, 2]).is_err());
        assert!(Tensor::from_vec(vec![1.0; 4], &[2, 2]).is_ok());
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![3.0, 4.0], &[2]).unwrap();
        assert_eq!(a.add(&b).data(), &[4.0, 6.0]);
        assert_eq!(a.sub(&b).data(), &[-2.0, -2.0]);
        assert_eq!(a.mul(&b).data(), &[3.0, 8.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, 4.0]);
    }

    #[test]
    fn softmax_rows_sums_to_one() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], &[2, 3]).unwrap();
        let s = t.softmax_rows();
        let row0: f32 = s.data()[0..3].iter().sum();
        let row1: f32 = s.data()[3..6].iter().sum();
        assert!((row0 - 1.0).abs() < 1e-6);
        assert!((row1 - 1.0).abs() < 1e-6);
    }

    #[test]
    fn argmax_rows() {
        let t = Tensor::from_vec(vec![1.0, 5.0, 3.0, 9.0, 0.0, 1.0], &[2, 3]).unwrap();
        assert_eq!(t.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn concat_and_slice_roundtrip() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let b = Tensor::from_vec(vec![5.0, 6.0], &[1, 2]).unwrap();
        let c = Tensor::concat0(&[&a, &b]);
        assert_eq!(c.shape().dims(), &[3, 2]);
        assert_eq!(c.slice0(2, 1).data(), &[5.0, 6.0]);
        assert_eq!(c.slice0(0, 2).data(), a.data());
    }
}
