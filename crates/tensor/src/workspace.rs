//! Thread-local scratch buffers for hot kernels.
//!
//! The seed allocated a fresh `vec![0.0; krows * ncols]` im2col buffer on
//! every conv2d call (and packing would need two more per GEMM). For the
//! small tensors this codebase trains on, those allocations dominate the
//! kernel runtime. This arena keeps one buffer per ([`Slot`], thread) alive
//! across calls, growing it monotonically to the high-water mark.
//!
//! Usage is a take/give pair:
//!
//! ```
//! use cae_tensor::workspace::{self, Slot};
//!
//! let mut buf = workspace::take(Slot::Col, 128); // zeroed, len == 128
//! buf[0] = 1.0;
//! workspace::give(Slot::Col, buf); // returned for the next caller
//! ```
//!
//! `take` moves the buffer *out* of the thread-local slot (no `RefCell`
//! borrow is held while the caller works), so a kernel may hold one slot
//! while calling another kernel that takes a different slot — conv2d holds
//! [`Slot::Col`] while the GEMM underneath takes [`Slot::PackA`] and
//! [`Slot::PackB`]. If a slot is taken twice without an intervening `give`
//! (re-entrancy), the second `take` simply falls back to a fresh
//! allocation — correctness never depends on reuse.
//!
//! Because slots are thread-local, every pool worker (see
//! [`crate::pool`]) automatically owns a private workspace; parallel conv
//! batch loops need no locking.

use std::cell::RefCell;

/// Named scratch slots. Each slot holds one `Vec<f32>` per thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Slot {
    /// Packed A panels of the blocked GEMM.
    PackA,
    /// Packed B panels of the blocked GEMM.
    PackB,
    /// im2col output (conv2d forward).
    Col,
    /// Gradient w.r.t. the im2col matrix (conv2d backward).
    DCol,
    /// Per-chunk partial accumulators for parallel reductions.
    Partial,
    /// Whole-batch GEMM product of the serial conv2d path, before the
    /// epilogue scatters it into NCHW order.
    ConvOut,
}

const SLOT_COUNT: usize = 6;

thread_local! {
    static SLOTS: RefCell<[Vec<f32>; SLOT_COUNT]> = const {
        RefCell::new([Vec::new(), Vec::new(), Vec::new(), Vec::new(), Vec::new(), Vec::new()])
    };
}

/// Takes the thread's buffer for `slot`, zeroed and resized to `len`.
///
/// Always returns a buffer with `buf.len() == len` and all elements `0.0`.
/// Pair with [`give`] to recycle the allocation.
pub fn take(slot: Slot, len: usize) -> Vec<f32> {
    let mut buf = take_unzeroed(slot, len);
    buf.iter_mut().for_each(|v| *v = 0.0);
    buf
}

/// Like [`take`] but without the zeroing memset: the returned buffer has
/// `buf.len() == len` and *unspecified contents* (stale data from earlier
/// uses of the slot). For callers that overwrite every element they later
/// read — the GEMM packing routines — where the memset is pure overhead on
/// small products.
pub fn take_unzeroed(slot: Slot, len: usize) -> Vec<f32> {
    let mut buf = SLOTS.with(|s| std::mem::take(&mut s.borrow_mut()[slot as usize]));
    cae_trace::counters(&[
        ("workspace.takes", 1),
        (
            if buf.capacity() >= len {
                "workspace.reuses"
            } else {
                "workspace.allocs"
            },
            1,
        ),
    ]);
    if buf.len() >= len {
        buf.truncate(len);
    } else {
        // Only the grown suffix is written; the warm-path cost is zero.
        buf.resize(len, 0.0);
    }
    buf
}

/// Returns a buffer taken with [`take`] so later calls on this thread can
/// reuse its allocation. Keeps the larger of the incoming and resident
/// buffers (re-entrant callers may give back in any order).
pub fn give(slot: Slot, buf: Vec<f32>) {
    SLOTS.with(|s| {
        let resident = &mut s.borrow_mut()[slot as usize];
        if resident.capacity() < buf.capacity() {
            *resident = buf;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_returns_zeroed_buffer_of_requested_len() {
        let mut buf = take(Slot::Col, 16);
        assert_eq!(buf.len(), 16);
        assert!(buf.iter().all(|&v| v == 0.0));
        buf.iter_mut().for_each(|v| *v = 7.0);
        give(Slot::Col, buf);
        // The recycled buffer must be re-zeroed, including when shrinking
        // and growing across calls.
        let again = take(Slot::Col, 8);
        assert_eq!(again.len(), 8);
        assert!(again.iter().all(|&v| v == 0.0));
        give(Slot::Col, again);
        let grown = take(Slot::Col, 32);
        assert_eq!(grown.len(), 32);
        assert!(grown.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn reuse_preserves_capacity() {
        let buf = take(Slot::PackA, 1024);
        let ptr = buf.as_ptr();
        give(Slot::PackA, buf);
        let again = take(Slot::PackA, 512);
        assert_eq!(again.as_ptr(), ptr, "warm take must not reallocate");
    }

    #[test]
    fn double_take_falls_back_to_fresh_allocation() {
        let first = take(Slot::DCol, 4);
        let second = take(Slot::DCol, 4);
        assert_eq!(second.len(), 4);
        give(Slot::DCol, first);
        give(Slot::DCol, second);
    }
}
