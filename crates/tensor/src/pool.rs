//! Persistent worker pool with cooperative two-level scheduling.
//!
//! The seed implementation spawned fresh `crossbeam::scope` threads inside
//! every large matmul — pure overhead on a single-core host and a fixed
//! 2-way split on a many-core one. This module replaces that with one
//! process-wide pool:
//!
//! * sized once from [`std::thread::available_parallelism`] (overridable via
//!   the `CAE_NUM_THREADS` env var, `CAE_NUM_THREADS=1` forcing fully
//!   inline execution, or in-process via [`force_pool_size`]);
//! * workers park on a condvar between jobs, so an idle pool costs nothing;
//! * jobs carry a [`Priority`] and a **task budget**: the number of pool
//!   threads a nested [`parallel_for`] inside one of the job's tasks may
//!   recruit. Coarse experiment cells submit with [`JobOpts::cell`] and a
//!   budget derived from host parallelism, so the kernels inside a cell can
//!   still fan out when cells are scarcer than cores. Leaf kernels submit
//!   with budget 1, which degrades *their* nested calls inline — replacing
//!   the old all-or-nothing "nested `parallel_for` runs inline" rule that
//!   left workers idle whenever cell-level parallelism was active;
//! * several jobs may be in flight at once (one per submitting thread);
//!   idle workers pick the highest-priority job with unclaimed tasks, so
//!   small high-priority kernel jobs are not stuck behind long cells;
//! * the calling thread participates in the work instead of blocking, so a
//!   pool of `N` threads applies `N` cores, not `N - 1`.
//!
//! Tasks are claimed from a shared atomic counter, giving dynamic load
//! balancing across unevenly sized tasks (e.g. edge blocks of a GEMM).
//!
//! Deadlock freedom: a submitter only ever blocks on **its own** job, after
//! helping drain it, and every claimed task runs to completion without
//! waiting on another job's completion (nested submissions drain-then-wait
//! the same way, and the nesting depth is bounded because kernel jobs hand
//! their tasks budget 1).

use std::any::Any;
use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};

/// Recovers from lock poisoning. Every pool lock guards state that stays
/// consistent across a task-panic unwind (panic payloads are moved behind
/// an `Option`, the queue only holds `Arc`s, `done` is a plain flag), so a
/// worker panicking at the wrong instant must degrade to a reported cell
/// failure — never escalate into a process abort on a later `.lock()`.
fn lock_recover<T: ?Sized>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Scheduling class of a published job. Workers prefer higher priorities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Priority {
    /// Coarse experiment cells: long-running tasks that own their latency.
    Cell = 0,
    /// Fine-grained kernel fan-outs (GEMM row blocks, conv chunks): the
    /// submitter is blocked on the result, so these jump the queue.
    Kernel = 1,
}

/// Submission options for [`parallel_for_with`].
#[derive(Debug, Clone, Copy)]
pub struct JobOpts {
    pub priority: Priority,
    /// Thread budget installed while each task body runs: how many pool
    /// threads a nested `parallel_for` inside the task may use (clamped to
    /// at least 1). Budget 1 degrades nested calls inline — the right
    /// default for leaf kernels.
    pub task_budget: usize,
}

impl JobOpts {
    /// A leaf kernel job: high priority, nested calls degrade inline.
    pub fn kernel() -> JobOpts {
        JobOpts { priority: Priority::Kernel, task_budget: 1 }
    }

    /// A coarse cell job whose tasks may each recruit `task_budget` threads
    /// for their own nested kernels.
    pub fn cell(task_budget: usize) -> JobOpts {
        JobOpts { priority: Priority::Cell, task_budget: task_budget.max(1) }
    }
}

/// A published job: an erased borrowed closure plus claim/completion state.
///
/// The raw pointer borrows the closure on the submitting thread's stack;
/// [`parallel_for`] does not return until every task has finished, which
/// bounds every dereference to the borrow's lifetime.
struct Job {
    body: *const (dyn Fn(usize) + Sync),
    n_tasks: usize,
    priority: Priority,
    task_budget: usize,
    next: AtomicUsize,
    completed: AtomicUsize,
    /// First panic observed across the job's tasks: the panicking task's
    /// index plus its original payload, so the submitting thread can
    /// re-raise the real failure instead of a fresh anonymous panic.
    panic: Mutex<Option<(usize, Box<dyn Any + Send>)>>,
    done: Mutex<bool>,
    done_cv: Condvar,
}

// SAFETY: `body` points at a `Sync` closure and is only dereferenced while
// the submitting thread is blocked inside `parallel_for`.
unsafe impl Send for Job {}
unsafe impl Sync for Job {}

impl Job {
    /// Claims and runs tasks until the counter is exhausted. Returns the
    /// number of tasks this thread executed. Task bodies run under the
    /// job's thread budget (restored on exit, including unwind).
    fn drain(&self) -> usize {
        let _budget = BudgetGuard::set(self.task_budget);
        let mut ran = 0;
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.n_tasks {
                return ran;
            }
            // SAFETY: see the struct-level invariant.
            let body = unsafe { &*self.body };
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(i)));
            if let Err(payload) = outcome {
                let mut first = lock_recover(&self.panic);
                if first.is_none() {
                    *first = Some((i, payload));
                }
            }
            ran += 1;
            if self.completed.fetch_add(1, Ordering::AcqRel) + 1 == self.n_tasks {
                *lock_recover(&self.done) = true;
                self.done_cv.notify_all();
            }
        }
    }

    fn wait_done(&self) {
        let mut done = lock_recover(&self.done);
        while !*done {
            done = self
                .done_cv
                .wait(done)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Takes the first captured panic, if any task panicked.
    fn take_panic(&self) -> Option<(usize, Box<dyn Any + Send>)> {
        lock_recover(&self.panic).take()
    }
}

/// Job queue shared between submitters and workers. Holds every in-flight
/// job; each submitter removes its own entry once the job completes.
struct Shared {
    queue: Mutex<Vec<Arc<Job>>>,
    work_cv: Condvar,
}

struct Pool {
    shared: Arc<Shared>,
    workers: usize,
}

thread_local! {
    /// Thread budget installed while a pool task body runs: how many pool
    /// threads a `parallel_for` issued from this thread may use. `0` means
    /// "not inside a pool task" and resolves to [`max_parallelism`].
    static BUDGET: Cell<usize> = const { Cell::new(0) };

    /// Index of the task whose panic [`parallel_for`] most recently
    /// re-raised on this thread (see [`last_panic_task`]).
    static LAST_PANIC_TASK: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Restores the thread budget to its previous value on drop, so the budget
/// survives an unwinding task body (a leaked budget would mis-size every
/// later `parallel_for` on this thread).
struct BudgetGuard(usize);

impl BudgetGuard {
    fn set(budget: usize) -> Self {
        BudgetGuard(BUDGET.with(|c| c.replace(budget.max(1))))
    }
}

impl Drop for BudgetGuard {
    fn drop(&mut self) {
        let was = self.0;
        BUDGET.with(|c| c.set(was));
    }
}

/// The task index of the panic most recently re-raised by [`parallel_for`]
/// on the calling thread, or `None` if no task panic has been re-raised
/// here. The payload itself is propagated verbatim via
/// [`std::panic::resume_unwind`]; this side channel preserves *where* it
/// happened.
pub fn last_panic_task() -> Option<usize> {
    LAST_PANIC_TASK.with(|c| c.get())
}

fn worker_loop(shared: Arc<Shared>) {
    loop {
        let job = {
            let mut q = lock_recover(&shared.queue);
            loop {
                let claimable = q
                    .iter()
                    .filter(|j| j.next.load(Ordering::Relaxed) < j.n_tasks)
                    .max_by_key(|j| j.priority)
                    .cloned();
                match claimable {
                    Some(job) => break job,
                    None => {
                        q = shared
                            .work_cv
                            .wait(q)
                            .unwrap_or_else(PoisonError::into_inner);
                    }
                }
            }
        };
        job.drain();
    }
}

/// In-process override of the pool size, consulted before `CAE_NUM_THREADS`
/// when the pool is first created.
static FORCED_POOL_SIZE: AtomicUsize = AtomicUsize::new(0);

/// Test hook: requests a pool of `threads` threads and forces the pool into
/// existence, returning the effective [`max_parallelism`]. Only the first
/// pool initialization in the process can honor the request (the pool is
/// created once), so call this before anything touches the pool; the
/// returned size tells the caller what it actually got. This replaces
/// mutating `CAE_NUM_THREADS` via `std::env::set_var` at test time, which
/// is racy under the parallel test harness.
pub fn force_pool_size(threads: usize) -> usize {
    FORCED_POOL_SIZE.store(threads.max(1), Ordering::Relaxed);
    max_parallelism()
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| {
        let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
        let threads = match FORCED_POOL_SIZE.load(Ordering::Relaxed) {
            0 => std::env::var("CAE_NUM_THREADS")
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
                .filter(|&n| n >= 1)
                .unwrap_or(hw),
            forced => forced,
        };
        let shared = Arc::new(Shared {
            queue: Mutex::new(Vec::new()),
            work_cv: Condvar::new(),
        });
        // The submitting thread participates, so spawn one fewer worker
        // than the target parallelism. On a single-core host this spawns
        // nothing and every kernel runs inline.
        let workers = threads.saturating_sub(1);
        for i in 0..workers {
            let sh = shared.clone();
            std::thread::Builder::new()
                .name(format!("cae-pool-{i}"))
                .spawn(move || worker_loop(sh))
                .expect("failed to spawn pool worker");
        }
        Pool { shared, workers }
    })
}

/// The number of threads the pool can apply in total (workers + the
/// calling thread).
pub fn max_parallelism() -> usize {
    pool().workers + 1
}

/// The thread budget available to a `parallel_for` issued from the calling
/// thread: the enclosing pool task's budget, or [`max_parallelism`] when
/// the caller is not a pool task. Kernels should size their parallel/serial
/// decisions from this, not from `max_parallelism`, so they stay honest
/// inside budgeted cells.
pub fn current_parallelism() -> usize {
    match BUDGET.with(|c| c.get()) {
        0 => max_parallelism(),
        budget => budget,
    }
}

fn run_task_inline<F: Fn(usize) + Sync>(body: &F, i: usize) {
    if let Err(payload) = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(i))) {
        cae_trace::counter("pool.task_panics", 1);
        LAST_PANIC_TASK.with(|c| c.set(Some(i)));
        std::panic::resume_unwind(payload);
    }
}

/// Runs `body(0..n_tasks)` across the pool as a kernel job (priority
/// [`Priority::Kernel`], nested calls degrade inline). See
/// [`parallel_for_with`].
pub fn parallel_for<F: Fn(usize) + Sync>(n_tasks: usize, body: F) {
    parallel_for_with(JobOpts::kernel(), n_tasks, body)
}

/// Runs `body(0..n_tasks)` across the pool, returning when every task has
/// finished. Executes inline when the pool is empty, `n_tasks <= 1`, or the
/// caller's thread budget is exhausted (a budget-1 pool task).
///
/// # Panics
/// If any task body panicked, the **first** panic's original payload is
/// re-raised on the calling thread via [`std::panic::resume_unwind`] after
/// every remaining task has finished, so the real failure message survives
/// intact; [`last_panic_task`] then reports the panicking task's index.
pub fn parallel_for_with<F: Fn(usize) + Sync>(opts: JobOpts, n_tasks: usize, body: F) {
    if n_tasks == 0 {
        return;
    }
    let pool = pool();
    if n_tasks == 1 {
        // A single task keeps the caller's budget: its nested kernels may
        // still fan out.
        cae_trace::counter("pool.inline_jobs", 1);
        run_task_inline(&body, 0);
        return;
    }
    if pool.workers == 0 || current_parallelism() <= 1 {
        cae_trace::counter("pool.inline_jobs", 1);
        let _budget = BudgetGuard::set(1);
        for i in 0..n_tasks {
            run_task_inline(&body, i);
        }
        return;
    }

    if cae_trace::enabled() {
        cae_trace::counters(&[("pool.jobs", 1), ("pool.tasks", n_tasks as u64)]);
        if BUDGET.with(|c| c.get()) != 0 {
            cae_trace::counter("pool.nested_jobs", 1);
        }
    }
    // SAFETY: erases the borrow's lifetime; `parallel_for_with` does not
    // return until no task can dereference `body` again (see `Job`).
    let body_erased: *const (dyn Fn(usize) + Sync) = unsafe {
        std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(&body)
    };
    let job = Arc::new(Job {
        body: body_erased,
        n_tasks,
        priority: opts.priority,
        task_budget: opts.task_budget.max(1),
        next: AtomicUsize::new(0),
        completed: AtomicUsize::new(0),
        panic: Mutex::new(None),
        done: Mutex::new(false),
        done_cv: Condvar::new(),
    });
    {
        let mut q = lock_recover(&pool.shared.queue);
        q.push(job.clone());
        if cae_trace::enabled() {
            cae_trace::gauge("pool.queue_depth", q.len() as f64);
        }
        pool.shared.work_cv.notify_all();
    }
    // Participate instead of blocking (`drain` never unwinds — panics are
    // captured per task — so the queue entry below is always removed).
    job.drain();
    job.wait_done();
    {
        let mut q = lock_recover(&pool.shared.queue);
        if let Some(pos) = q.iter().position(|j| Arc::ptr_eq(j, &job)) {
            q.swap_remove(pos);
        }
    }
    if let Some((task, payload)) = job.take_panic() {
        cae_trace::counter("pool.task_panics", 1);
        LAST_PANIC_TASK.with(|c| c.set(Some(task)));
        std::panic::resume_unwind(payload);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn executes_every_task_exactly_once() {
        let hits: Vec<AtomicU64> = (0..97).map(|_| AtomicU64::new(0)).collect();
        parallel_for(hits.len(), |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn nested_calls_under_kernel_jobs_run_inline() {
        // Kernel tasks get budget 1, so their nested fan-outs degrade
        // inline regardless of pool size — the old behavior, preserved.
        let count = AtomicU64::new(0);
        parallel_for(4, |_| {
            assert_eq!(current_parallelism(), 1);
            parallel_for(4, |_| {
                count.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(count.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn cell_jobs_grant_their_tasks_a_budget() {
        // Budget semantics need a real worker; the CAE_NUM_THREADS=4 CI
        // pass exercises this, a workerless pool self-skips.
        if max_parallelism() == 1 {
            return;
        }
        let budget_seen: Vec<AtomicU64> = (0..3).map(|_| AtomicU64::new(0)).collect();
        let count = AtomicU64::new(0);
        parallel_for_with(JobOpts::cell(2), 3, |i| {
            budget_seen[i].store(current_parallelism() as u64, Ordering::Relaxed);
            // With a budget > 1 this submits a real nested job instead of
            // degrading inline.
            parallel_for(5, |_| {
                count.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(count.load(Ordering::Relaxed), 15);
        for b in &budget_seen {
            assert_eq!(b.load(Ordering::Relaxed), 2);
        }
    }

    #[test]
    fn budget_restored_after_jobs() {
        let outside = current_parallelism();
        assert_eq!(outside, max_parallelism());
        parallel_for_with(JobOpts::cell(3), 2, |_| {});
        assert_eq!(current_parallelism(), outside);
        parallel_for(4, |_| {});
        assert_eq!(current_parallelism(), outside);
    }

    #[test]
    fn single_task_keeps_the_callers_budget() {
        if max_parallelism() == 1 {
            return;
        }
        parallel_for_with(JobOpts::cell(7), 2, |_| {
            let before = current_parallelism();
            assert_eq!(before, 7);
            parallel_for(1, |_| {
                assert_eq!(current_parallelism(), before);
            });
        });
    }

    #[test]
    fn kernel_priority_orders_above_cell() {
        assert!(Priority::Kernel > Priority::Cell);
        assert_eq!(JobOpts::kernel().task_budget, 1);
        assert_eq!(JobOpts::cell(0).task_budget, 1, "budget clamps to >= 1");
    }

    #[test]
    fn zero_and_single_task() {
        parallel_for(0, |_| panic!("must not run"));
        let count = AtomicU64::new(0);
        parallel_for(1, |i| {
            assert_eq!(i, 0);
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn panic_payload_and_task_index_survive() {
        // The original panic payload — not a fresh anonymous panic — must
        // reach the submitting thread, along with which task raised it.
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            parallel_for(8, |i| {
                if i == 5 {
                    panic!("task five exploded: {}", 2 * 21);
                }
            });
        }))
        .expect_err("the task panic must propagate");
        assert_eq!(
            err.downcast_ref::<String>().map(String::as_str),
            Some("task five exploded: 42"),
            "original panic message must survive re-raising"
        );
        assert_eq!(last_panic_task(), Some(5));
    }

    #[test]
    fn pool_survives_a_panicked_job() {
        // A panicked job must not wedge the queue, leak a thread budget,
        // or poison later jobs on the same thread.
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            parallel_for(4, |_| panic!("boom"));
        }));
        assert!(caught.is_err());
        assert_eq!(current_parallelism(), max_parallelism());
        for _ in 0..4 {
            let sum = AtomicU64::new(0);
            parallel_for(16, |i| {
                sum.fetch_add(i as u64, Ordering::Relaxed);
            });
            assert_eq!(sum.load(Ordering::Relaxed), 120);
        }
    }

    #[test]
    fn panic_inside_a_budgeted_cell_still_reports() {
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            parallel_for_with(JobOpts::cell(2), 3, |i| {
                parallel_for(4, |j| {
                    if i == 1 && j == 2 {
                        panic!("nested boom");
                    }
                });
            });
        }));
        assert!(caught.is_err());
        assert_eq!(current_parallelism(), max_parallelism());
        let sum = AtomicU64::new(0);
        parallel_for(16, |i| {
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 120);
    }

    #[test]
    fn back_to_back_jobs() {
        for round in 0..32u64 {
            let sum = AtomicU64::new(0);
            parallel_for(16, |i| {
                sum.fetch_add(i as u64 + round, Ordering::Relaxed);
            });
            assert_eq!(sum.load(Ordering::Relaxed), 120 + 16 * round);
        }
    }

    #[test]
    fn concurrent_submitters_from_plain_threads() {
        // Multiple top-level threads may now have jobs in flight at once
        // (the old single-slot mailbox serialized them).
        std::thread::scope(|s| {
            for t in 0..4u64 {
                s.spawn(move || {
                    for round in 0..16u64 {
                        let sum = AtomicU64::new(0);
                        parallel_for(8, |i| {
                            sum.fetch_add(i as u64 + t + round, Ordering::Relaxed);
                        });
                        assert_eq!(sum.load(Ordering::Relaxed), 28 + 8 * (t + round));
                    }
                });
            }
        });
    }
}
