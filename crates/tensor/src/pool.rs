//! Persistent worker pool for data-parallel kernels.
//!
//! The seed implementation spawned fresh `crossbeam::scope` threads inside
//! every large matmul — pure overhead on a single-core host and a fixed
//! 2-way split on a many-core one. This module replaces that with one
//! process-wide pool:
//!
//! * sized once from [`std::thread::available_parallelism`] (overridable via
//!   the `CAE_NUM_THREADS` env var, `CAE_NUM_THREADS=1` forcing fully
//!   inline execution);
//! * workers park on a condvar between jobs, so an idle pool costs nothing;
//! * [`parallel_for`] executes **inline on the calling thread** when the
//!   pool has no workers (single-core hosts), when there is only one task,
//!   or when called from inside a worker (no nested parallelism);
//! * the calling thread participates in the work instead of blocking, so a
//!   pool of `N` threads applies `N` cores, not `N - 1`.
//!
//! Tasks are claimed from a shared atomic counter, giving dynamic load
//! balancing across unevenly sized tasks (e.g. edge blocks of a GEMM).

use std::any::Any;
use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock, PoisonError};

/// A published job: an erased borrowed closure plus claim/completion state.
///
/// The raw pointer borrows the closure on the submitting thread's stack;
/// [`parallel_for`] does not return until every task has finished, which
/// bounds every dereference to the borrow's lifetime.
struct Job {
    body: *const (dyn Fn(usize) + Sync),
    n_tasks: usize,
    next: AtomicUsize,
    completed: AtomicUsize,
    /// First panic observed across the job's tasks: the panicking task's
    /// index plus its original payload, so the submitting thread can
    /// re-raise the real failure instead of a fresh anonymous panic.
    panic: Mutex<Option<(usize, Box<dyn Any + Send>)>>,
    done: Mutex<bool>,
    done_cv: Condvar,
}

// SAFETY: `body` points at a `Sync` closure and is only dereferenced while
// the submitting thread is blocked inside `parallel_for`.
unsafe impl Send for Job {}
unsafe impl Sync for Job {}

impl Job {
    /// Claims and runs tasks until the counter is exhausted. Returns the
    /// number of tasks this thread executed.
    fn drain(&self) -> usize {
        let mut ran = 0;
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.n_tasks {
                return ran;
            }
            // SAFETY: see the struct-level invariant.
            let body = unsafe { &*self.body };
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(i)));
            if let Err(payload) = outcome {
                let mut first = self.panic.lock().unwrap_or_else(PoisonError::into_inner);
                if first.is_none() {
                    *first = Some((i, payload));
                }
            }
            ran += 1;
            if self.completed.fetch_add(1, Ordering::AcqRel) + 1 == self.n_tasks {
                *self.done.lock().expect("pool done mutex poisoned") = true;
                self.done_cv.notify_all();
            }
        }
    }

    fn wait_done(&self) {
        let mut done = self.done.lock().expect("pool done mutex poisoned");
        while !*done {
            done = self
                .done_cv
                .wait(done)
                .expect("pool done mutex poisoned");
        }
    }

    /// Takes the first captured panic, if any task panicked.
    fn take_panic(&self) -> Option<(usize, Box<dyn Any + Send>)> {
        self.panic
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take()
    }
}

/// Job mailbox shared between the submitter and the workers.
struct Mailbox {
    slot: Mutex<(u64, Option<Arc<Job>>)>,
    work_cv: Condvar,
}

struct Pool {
    mailbox: Arc<Mailbox>,
    /// Serializes submitters (only one job may be in flight).
    submit_lock: Mutex<()>,
    workers: usize,
}

thread_local! {
    /// Set inside pool workers and while a task body runs inline, so nested
    /// [`parallel_for`] calls degrade to sequential execution instead of
    /// deadlocking or oversubscribing.
    static IN_PARALLEL_TASK: Cell<bool> = const { Cell::new(false) };

    /// Index of the task whose panic [`parallel_for`] most recently
    /// re-raised on this thread (see [`last_panic_task`]).
    static LAST_PANIC_TASK: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Restores `IN_PARALLEL_TASK` to its previous value on drop, so the flag
/// survives an unwinding task body (a leaked `true` would permanently
/// serialize every later `parallel_for` on this thread).
struct InlineFlagGuard(bool);

impl InlineFlagGuard {
    fn enter() -> Self {
        InlineFlagGuard(IN_PARALLEL_TASK.with(|f| f.replace(true)))
    }
}

impl Drop for InlineFlagGuard {
    fn drop(&mut self) {
        let was = self.0;
        IN_PARALLEL_TASK.with(|f| f.set(was));
    }
}

/// The task index of the panic most recently re-raised by [`parallel_for`]
/// on the calling thread, or `None` if no task panic has been re-raised
/// here. The payload itself is propagated verbatim via
/// [`std::panic::resume_unwind`]; this side channel preserves *where* it
/// happened.
pub fn last_panic_task() -> Option<usize> {
    LAST_PANIC_TASK.with(|c| c.get())
}

fn worker_loop(mailbox: Arc<Mailbox>) {
    IN_PARALLEL_TASK.with(|f| f.set(true));
    let mut last_seen = 0u64;
    loop {
        let job = {
            let mut slot = mailbox.slot.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                match &slot.1 {
                    Some(job) if slot.0 != last_seen => {
                        last_seen = slot.0;
                        break job.clone();
                    }
                    _ => {
                        slot = mailbox
                            .work_cv
                            .wait(slot)
                            .unwrap_or_else(PoisonError::into_inner);
                    }
                }
            }
        };
        job.drain();
    }
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| {
        let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
        let threads = std::env::var("CAE_NUM_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or(hw);
        let mailbox = Arc::new(Mailbox {
            slot: Mutex::new((0, None)),
            work_cv: Condvar::new(),
        });
        // The submitting thread participates, so spawn one fewer worker
        // than the target parallelism. On a single-core host this spawns
        // nothing and every kernel runs inline.
        let workers = threads.saturating_sub(1);
        for i in 0..workers {
            let mb = mailbox.clone();
            std::thread::Builder::new()
                .name(format!("cae-pool-{i}"))
                .spawn(move || worker_loop(mb))
                .expect("failed to spawn pool worker");
        }
        Pool {
            mailbox,
            submit_lock: Mutex::new(()),
            workers,
        }
    })
}

/// The number of threads kernels may use (workers + the calling thread).
pub fn max_parallelism() -> usize {
    pool().workers + 1
}

/// Runs `body(0..n_tasks)` across the pool, returning when every task has
/// finished. Executes inline when the pool is empty, `n_tasks <= 1`, or the
/// caller is itself a pool task.
///
/// # Panics
/// If any task body panicked, the **first** panic's original payload is
/// re-raised on the calling thread via [`std::panic::resume_unwind`] after
/// every remaining task has finished, so the real failure message survives
/// intact; [`last_panic_task`] then reports the panicking task's index.
pub fn parallel_for<F: Fn(usize) + Sync>(n_tasks: usize, body: F) {
    if n_tasks == 0 {
        return;
    }
    let pool = pool();
    let inline = pool.workers == 0
        || n_tasks == 1
        || IN_PARALLEL_TASK.with(|f| f.get());
    if inline {
        cae_trace::counter("pool.inline_jobs", 1);
        let _flag = InlineFlagGuard::enter();
        for i in 0..n_tasks {
            if let Err(payload) =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(i)))
            {
                cae_trace::counter("pool.task_panics", 1);
                LAST_PANIC_TASK.with(|c| c.set(Some(i)));
                std::panic::resume_unwind(payload);
            }
        }
        return;
    }

    // Submitters queued on the single job slot, this call included.
    static WAITING: AtomicUsize = AtomicUsize::new(0);
    let depth = WAITING.fetch_add(1, Ordering::Relaxed) + 1;
    if cae_trace::enabled() {
        cae_trace::counters(&[("pool.jobs", 1), ("pool.tasks", n_tasks as u64)]);
        cae_trace::gauge("pool.queue_depth", depth as f64);
    }
    /// Decrements the waiting-submitter count on scope exit (incl. unwind).
    struct WaitingGuard(&'static AtomicUsize);
    impl Drop for WaitingGuard {
        fn drop(&mut self) {
            self.0.fetch_sub(1, Ordering::Relaxed);
        }
    }
    let _waiting = WaitingGuard(&WAITING);
    // Poisoning is recovered everywhere below: these locks guard state
    // that stays consistent across a task-panic unwind (the job slot is
    // cleared before the panic is re-raised).
    let _submit = pool
        .submit_lock
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    // SAFETY: erases the borrow's lifetime; `parallel_for` does not return
    // until no task can dereference `body` again (see `Job`).
    let body_erased: *const (dyn Fn(usize) + Sync) = unsafe {
        std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(
            &body,
        )
    };
    let job = Arc::new(Job {
        body: body_erased,
        n_tasks,
        next: AtomicUsize::new(0),
        completed: AtomicUsize::new(0),
        panic: Mutex::new(None),
        done: Mutex::new(false),
        done_cv: Condvar::new(),
    });
    {
        let mut slot = pool.mailbox.slot.lock().unwrap_or_else(PoisonError::into_inner);
        slot.0 += 1;
        slot.1 = Some(job.clone());
        pool.mailbox.work_cv.notify_all();
    }
    // Participate instead of blocking.
    {
        let _flag = InlineFlagGuard::enter();
        job.drain();
    }
    job.wait_done();
    {
        let mut slot = pool.mailbox.slot.lock().unwrap_or_else(PoisonError::into_inner);
        slot.1 = None;
    }
    if let Some((task, payload)) = job.take_panic() {
        cae_trace::counter("pool.task_panics", 1);
        LAST_PANIC_TASK.with(|c| c.set(Some(task)));
        std::panic::resume_unwind(payload);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn executes_every_task_exactly_once() {
        let hits: Vec<AtomicU64> = (0..97).map(|_| AtomicU64::new(0)).collect();
        parallel_for(hits.len(), |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn nested_calls_run_inline() {
        let count = AtomicU64::new(0);
        parallel_for(4, |_| {
            parallel_for(4, |_| {
                count.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(count.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn zero_and_single_task() {
        parallel_for(0, |_| panic!("must not run"));
        let count = AtomicU64::new(0);
        parallel_for(1, |i| {
            assert_eq!(i, 0);
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn panic_payload_and_task_index_survive() {
        // The original panic payload — not a fresh anonymous panic — must
        // reach the submitting thread, along with which task raised it.
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            parallel_for(8, |i| {
                if i == 5 {
                    panic!("task five exploded: {}", 2 * 21);
                }
            });
        }))
        .expect_err("the task panic must propagate");
        assert_eq!(
            err.downcast_ref::<String>().map(String::as_str),
            Some("task five exploded: 42"),
            "original panic message must survive re-raising"
        );
        assert_eq!(last_panic_task(), Some(5));
    }

    #[test]
    fn pool_survives_a_panicked_job() {
        // A panicked job must not wedge the mailbox, leak the inline flag,
        // or poison later jobs on the same thread.
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            parallel_for(4, |_| panic!("boom"));
        }));
        assert!(caught.is_err());
        for _ in 0..4 {
            let sum = AtomicU64::new(0);
            parallel_for(16, |i| {
                sum.fetch_add(i as u64, Ordering::Relaxed);
            });
            assert_eq!(sum.load(Ordering::Relaxed), 120);
        }
    }

    #[test]
    fn back_to_back_jobs() {
        for round in 0..32u64 {
            let sum = AtomicU64::new(0);
            parallel_for(16, |i| {
                sum.fetch_add(i as u64 + round, Ordering::Relaxed);
            });
            assert_eq!(sum.load(Ordering::Relaxed), 120 + 16 * round);
        }
    }
}
