//! Convolution, pooling and upsampling kernels (im2col-based).

use crate::linalg;
use crate::tensor::Tensor;

/// Static description of a 2-d convolution (square kernel, symmetric padding).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2dSpec {
    /// Kernel height/width.
    pub kernel: usize,
    /// Stride in both dimensions.
    pub stride: usize,
    /// Zero padding in both dimensions.
    pub padding: usize,
}

impl Conv2dSpec {
    /// Creates a spec.
    ///
    /// # Panics
    /// Panics if `kernel` or `stride` is zero.
    pub fn new(kernel: usize, stride: usize, padding: usize) -> Self {
        assert!(kernel > 0, "kernel size must be positive");
        assert!(stride > 0, "stride must be positive");
        Conv2dSpec {
            kernel,
            stride,
            padding,
        }
    }

    /// Output spatial size for an input of size `h`.
    pub fn out_size(&self, h: usize) -> usize {
        (h + 2 * self.padding - self.kernel) / self.stride + 1
    }
}

/// Unfolds one image `[C, H, W]` into a column matrix
/// `[C*k*k, OH*OW]` (row-major, flat).
fn im2col_single(
    x: &[f32],
    c: usize,
    h: usize,
    w: usize,
    spec: Conv2dSpec,
    col: &mut [f32],
) {
    let k = spec.kernel;
    let oh = spec.out_size(h);
    let ow = spec.out_size(w);
    let ncols = oh * ow;
    debug_assert_eq!(col.len(), c * k * k * ncols);
    for ci in 0..c {
        for ki in 0..k {
            for kj in 0..k {
                let row = (ci * k + ki) * k + kj;
                let dst = &mut col[row * ncols..(row + 1) * ncols];
                for oi in 0..oh {
                    let ii = (oi * spec.stride + ki) as isize - spec.padding as isize;
                    for oj in 0..ow {
                        let jj = (oj * spec.stride + kj) as isize - spec.padding as isize;
                        dst[oi * ow + oj] = if ii >= 0 && jj >= 0 && (ii as usize) < h && (jj as usize) < w
                        {
                            x[(ci * h + ii as usize) * w + jj as usize]
                        } else {
                            0.0
                        };
                    }
                }
            }
        }
    }
}

/// Folds a column matrix back into an image, accumulating overlaps
/// (the adjoint of [`im2col_single`]).
fn col2im_single(
    col: &[f32],
    c: usize,
    h: usize,
    w: usize,
    spec: Conv2dSpec,
    x: &mut [f32],
) {
    let k = spec.kernel;
    let oh = spec.out_size(h);
    let ow = spec.out_size(w);
    let ncols = oh * ow;
    for ci in 0..c {
        for ki in 0..k {
            for kj in 0..k {
                let row = (ci * k + ki) * k + kj;
                let src = &col[row * ncols..(row + 1) * ncols];
                for oi in 0..oh {
                    let ii = (oi * spec.stride + ki) as isize - spec.padding as isize;
                    if ii < 0 || ii as usize >= h {
                        continue;
                    }
                    for oj in 0..ow {
                        let jj = (oj * spec.stride + kj) as isize - spec.padding as isize;
                        if jj < 0 || jj as usize >= w {
                            continue;
                        }
                        x[(ci * h + ii as usize) * w + jj as usize] += src[oi * ow + oj];
                    }
                }
            }
        }
    }
}

/// Forward 2-d convolution: `x[N,C,H,W] * w[O,C,k,k] (+ b[O]) → [N,O,OH,OW]`.
///
/// # Panics
/// Panics if shapes are inconsistent with `spec`.
pub fn conv2d(x: &Tensor, weight: &Tensor, bias: Option<&Tensor>, spec: Conv2dSpec) -> Tensor {
    let (n, c, h, w) = x.shape().nchw();
    let wd = weight.shape().dims();
    assert_eq!(wd.len(), 4, "conv2d weight must be 4-d, got {:?}", wd);
    let (o, wc, kh, kw) = (wd[0], wd[1], wd[2], wd[3]);
    assert_eq!(wc, c, "conv2d channel mismatch: input {c}, weight {wc}");
    assert!(
        kh == spec.kernel && kw == spec.kernel,
        "conv2d kernel mismatch: weight {kh}x{kw}, spec {}",
        spec.kernel
    );
    let oh = spec.out_size(h);
    let ow = spec.out_size(w);
    let ncols = oh * ow;
    let krows = c * spec.kernel * spec.kernel;
    let mut out = Tensor::zeros(&[n, o, oh, ow]);
    let mut col = vec![0.0f32; krows * ncols];
    for ni in 0..n {
        im2col_single(
            &x.data()[ni * c * h * w..(ni + 1) * c * h * w],
            c,
            h,
            w,
            spec,
            &mut col,
        );
        let dst = &mut out.data_mut()[ni * o * ncols..(ni + 1) * o * ncols];
        linalg::matmul_into(weight.data(), &col, dst, o, krows, ncols);
        if let Some(b) = bias {
            for oi in 0..o {
                let bv = b.data()[oi];
                for v in &mut dst[oi * ncols..(oi + 1) * ncols] {
                    *v += bv;
                }
            }
        }
    }
    out
}

/// Backward pass of [`conv2d`], returning `(dx, dw, db)`.
pub fn conv2d_backward(
    x: &Tensor,
    weight: &Tensor,
    grad_out: &Tensor,
    spec: Conv2dSpec,
) -> (Tensor, Tensor, Tensor) {
    let (n, c, h, w) = x.shape().nchw();
    let wd = weight.shape().dims();
    let o = wd[0];
    let oh = spec.out_size(h);
    let ow = spec.out_size(w);
    let ncols = oh * ow;
    let krows = c * spec.kernel * spec.kernel;

    let mut dx = Tensor::zeros(&[n, c, h, w]);
    let mut dw_flat = vec![0.0f32; o * krows];
    let mut db = Tensor::zeros(&[o]);
    let mut col = vec![0.0f32; krows * ncols];
    let mut dcol = vec![0.0f32; krows * ncols];

    // weight viewed as [o, krows]; grad_out per-sample viewed as [o, ncols].
    for ni in 0..n {
        let go = &grad_out.data()[ni * o * ncols..(ni + 1) * o * ncols];
        // db
        for oi in 0..o {
            let s: f32 = go[oi * ncols..(oi + 1) * ncols].iter().sum();
            db.data_mut()[oi] += s;
        }
        // dw += go[o,ncols] x col[krows,ncols]^T
        im2col_single(
            &x.data()[ni * c * h * w..(ni + 1) * c * h * w],
            c,
            h,
            w,
            spec,
            &mut col,
        );
        for oi in 0..o {
            let gorow = &go[oi * ncols..(oi + 1) * ncols];
            let dwrow = &mut dw_flat[oi * krows..(oi + 1) * krows];
            for p in 0..krows {
                let crow = &col[p * ncols..(p + 1) * ncols];
                let mut acc = 0.0f32;
                for (&g, &cv) in gorow.iter().zip(crow.iter()) {
                    acc += g * cv;
                }
                dwrow[p] += acc;
            }
        }
        // dcol = w^T[krows,o] x go[o,ncols]
        dcol.iter_mut().for_each(|v| *v = 0.0);
        for oi in 0..o {
            let wrow = &weight.data()[oi * krows..(oi + 1) * krows];
            let gorow = &go[oi * ncols..(oi + 1) * ncols];
            for (p, &wv) in wrow.iter().enumerate() {
                if wv == 0.0 {
                    continue;
                }
                let drow = &mut dcol[p * ncols..(p + 1) * ncols];
                for (d, &g) in drow.iter_mut().zip(gorow.iter()) {
                    *d += wv * g;
                }
            }
        }
        col2im_single(
            &dcol,
            c,
            h,
            w,
            spec,
            &mut dx.data_mut()[ni * c * h * w..(ni + 1) * c * h * w],
        );
    }
    let dw = Tensor::from_vec(dw_flat, wd).expect("dw shape is consistent by construction");
    (dx, dw, db)
}

/// Forward 2-d average pooling with a square window and equal stride.
pub fn avg_pool2d(x: &Tensor, kernel: usize, stride: usize) -> Tensor {
    let (n, c, h, w) = x.shape().nchw();
    let oh = (h - kernel) / stride + 1;
    let ow = (w - kernel) / stride + 1;
    let mut out = Tensor::zeros(&[n, c, oh, ow]);
    let inv = 1.0 / (kernel * kernel) as f32;
    let (xd, od) = (x.data(), out.data_mut());
    for nc in 0..n * c {
        let src = &xd[nc * h * w..(nc + 1) * h * w];
        let dst = &mut od[nc * oh * ow..(nc + 1) * oh * ow];
        for oi in 0..oh {
            for oj in 0..ow {
                let mut s = 0.0f32;
                for ki in 0..kernel {
                    for kj in 0..kernel {
                        s += src[(oi * stride + ki) * w + oj * stride + kj];
                    }
                }
                dst[oi * ow + oj] = s * inv;
            }
        }
    }
    out
}

/// Backward pass of [`avg_pool2d`].
pub fn avg_pool2d_backward(
    x_shape: (usize, usize, usize, usize),
    grad_out: &Tensor,
    kernel: usize,
    stride: usize,
) -> Tensor {
    let (n, c, h, w) = x_shape;
    let oh = (h - kernel) / stride + 1;
    let ow = (w - kernel) / stride + 1;
    let inv = 1.0 / (kernel * kernel) as f32;
    let mut dx = Tensor::zeros(&[n, c, h, w]);
    let (gd, dd) = (grad_out.data(), dx.data_mut());
    for nc in 0..n * c {
        let g = &gd[nc * oh * ow..(nc + 1) * oh * ow];
        let d = &mut dd[nc * h * w..(nc + 1) * h * w];
        for oi in 0..oh {
            for oj in 0..ow {
                let gv = g[oi * ow + oj] * inv;
                for ki in 0..kernel {
                    for kj in 0..kernel {
                        d[(oi * stride + ki) * w + oj * stride + kj] += gv;
                    }
                }
            }
        }
    }
    dx
}

/// Forward 2-d max pooling; also returns the flat argmax indices used by the
/// backward pass.
pub fn max_pool2d(x: &Tensor, kernel: usize, stride: usize) -> (Tensor, Vec<usize>) {
    let (n, c, h, w) = x.shape().nchw();
    let oh = (h - kernel) / stride + 1;
    let ow = (w - kernel) / stride + 1;
    let mut out = Tensor::zeros(&[n, c, oh, ow]);
    let mut arg = vec![0usize; n * c * oh * ow];
    let (xd, od) = (x.data(), out.data_mut());
    for nc in 0..n * c {
        let src = &xd[nc * h * w..(nc + 1) * h * w];
        for oi in 0..oh {
            for oj in 0..ow {
                let mut best = f32::NEG_INFINITY;
                let mut best_idx = 0usize;
                for ki in 0..kernel {
                    for kj in 0..kernel {
                        let idx = (oi * stride + ki) * w + oj * stride + kj;
                        if src[idx] > best {
                            best = src[idx];
                            best_idx = idx;
                        }
                    }
                }
                let off = nc * oh * ow + oi * ow + oj;
                od[off] = best;
                arg[off] = nc * h * w + best_idx;
            }
        }
    }
    (out, arg)
}

/// Backward pass of [`max_pool2d`] given the saved argmax indices.
pub fn max_pool2d_backward(
    x_shape: (usize, usize, usize, usize),
    grad_out: &Tensor,
    argmax: &[usize],
) -> Tensor {
    let (n, c, h, w) = x_shape;
    let mut dx = Tensor::zeros(&[n, c, h, w]);
    let dd = dx.data_mut();
    for (g, &idx) in grad_out.data().iter().zip(argmax.iter()) {
        dd[idx] += g;
    }
    dx
}

/// Nearest-neighbour upsampling by an integer factor.
pub fn upsample_nearest2d(x: &Tensor, scale: usize) -> Tensor {
    let (n, c, h, w) = x.shape().nchw();
    let (oh, ow) = (h * scale, w * scale);
    let mut out = Tensor::zeros(&[n, c, oh, ow]);
    let (xd, od) = (x.data(), out.data_mut());
    for nc in 0..n * c {
        let src = &xd[nc * h * w..(nc + 1) * h * w];
        let dst = &mut od[nc * oh * ow..(nc + 1) * oh * ow];
        for oi in 0..oh {
            for oj in 0..ow {
                dst[oi * ow + oj] = src[(oi / scale) * w + oj / scale];
            }
        }
    }
    out
}

/// Backward pass of [`upsample_nearest2d`] (sums gradients over each
/// upsampled block).
pub fn upsample_nearest2d_backward(
    x_shape: (usize, usize, usize, usize),
    grad_out: &Tensor,
    scale: usize,
) -> Tensor {
    let (n, c, h, w) = x_shape;
    let (oh, ow) = (h * scale, w * scale);
    let mut dx = Tensor::zeros(&[n, c, h, w]);
    let (gd, dd) = (grad_out.data(), dx.data_mut());
    for nc in 0..n * c {
        let g = &gd[nc * oh * ow..(nc + 1) * oh * ow];
        let d = &mut dd[nc * h * w..(nc + 1) * h * w];
        for oi in 0..oh {
            for oj in 0..ow {
                d[(oi / scale) * w + oj / scale] += g[oi * ow + oj];
            }
        }
    }
    dx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv2d_identity_kernel() {
        // A 1x1 kernel with weight 1 is the identity.
        let x = Tensor::from_vec((0..16).map(|v| v as f32).collect(), &[1, 1, 4, 4]).unwrap();
        let w = Tensor::ones(&[1, 1, 1, 1]);
        let y = conv2d(&x, &w, None, Conv2dSpec::new(1, 1, 0));
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn conv2d_3x3_known_value() {
        // All-ones 3x3 input, all-ones 3x3 kernel, pad 1: center output = 9.
        let x = Tensor::ones(&[1, 1, 3, 3]);
        let w = Tensor::ones(&[1, 1, 3, 3]);
        let y = conv2d(&x, &w, None, Conv2dSpec::new(3, 1, 1));
        assert_eq!(y.shape().dims(), &[1, 1, 3, 3]);
        assert_eq!(y.data()[4], 9.0); // center
        assert_eq!(y.data()[0], 4.0); // corner
    }

    #[test]
    fn conv2d_stride_shrinks_output() {
        let x = Tensor::ones(&[2, 3, 8, 8]);
        let w = Tensor::ones(&[4, 3, 3, 3]);
        let y = conv2d(&x, &w, None, Conv2dSpec::new(3, 2, 1));
        assert_eq!(y.shape().dims(), &[2, 4, 4, 4]);
    }

    #[test]
    fn max_pool_and_backward_route_gradient_to_argmax() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]).unwrap();
        let (y, arg) = max_pool2d(&x, 2, 2);
        assert_eq!(y.data(), &[4.0]);
        let g = Tensor::from_vec(vec![10.0], &[1, 1, 1, 1]).unwrap();
        let dx = max_pool2d_backward((1, 1, 2, 2), &g, &arg);
        assert_eq!(dx.data(), &[0.0, 0.0, 0.0, 10.0]);
    }

    #[test]
    fn avg_pool_backward_spreads_gradient() {
        let g = Tensor::from_vec(vec![4.0], &[1, 1, 1, 1]).unwrap();
        let dx = avg_pool2d_backward((1, 1, 2, 2), &g, 2, 2);
        assert_eq!(dx.data(), &[1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn upsample_roundtrip_shapes() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]).unwrap();
        let y = upsample_nearest2d(&x, 2);
        assert_eq!(y.shape().dims(), &[1, 1, 4, 4]);
        assert_eq!(y.data()[0], 1.0);
        assert_eq!(y.data()[3], 2.0);
        let dx = upsample_nearest2d_backward((1, 1, 2, 2), &y, 2);
        // Each input cell collects 4 copies of itself.
        assert_eq!(dx.data(), &[4.0, 8.0, 12.0, 16.0]);
    }

    #[test]
    fn im2col_col2im_adjoint_property() {
        // <im2col(x), y> == <x, col2im(y)> for random-ish tensors: validates
        // the backward fold against the forward unfold.
        let spec = Conv2dSpec::new(3, 2, 1);
        let (c, h, w) = (2, 5, 5);
        let oh = spec.out_size(h);
        let ow = spec.out_size(w);
        let krows = c * 9;
        let x: Vec<f32> = (0..c * h * w).map(|i| (i as f32 * 0.37).sin()).collect();
        let y: Vec<f32> = (0..krows * oh * ow)
            .map(|i| (i as f32 * 0.11).cos())
            .collect();
        let mut col = vec![0.0f32; krows * oh * ow];
        im2col_single(&x, c, h, w, spec, &mut col);
        let lhs: f32 = col.iter().zip(y.iter()).map(|(a, b)| a * b).sum();
        let mut xb = vec![0.0f32; c * h * w];
        col2im_single(&y, c, h, w, spec, &mut xb);
        let rhs: f32 = x.iter().zip(xb.iter()).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-3, "lhs={lhs} rhs={rhs}");
    }
}
