//! Convolution, pooling and upsampling kernels (im2col-based).
//!
//! Both convolution passes are expressed as products on the im2col matrix
//! and routed through the blocked kernel in [`crate::gemm`]:
//!
//! * forward: `out = W[o, krows] · col[krows, ncols]` (NN);
//! * weight gradient: `dW += grad_out[o, ncols] · colᵀ` (NT);
//! * input gradient: `dcol = Wᵀ · grad_out[o, ncols]` (TN), folded back by
//!   `col2im`.
//!
//! The `col`/`dcol` scratch matrices come from [`crate::workspace`] instead
//! of per-call `vec!` allocations, and the batch loop is split into chunks
//! over [`crate::pool::parallel_for`] — each chunk owns its thread-local
//! workspace and a private `dW`/`db` partial, reduced at the end. The
//! backward chunk count is a *fixed constant* (not the pool size): the
//! partials are reduced in chunk order, so tying the chunking to the
//! thread count would make `dW`/`db` rounding — and therefore whole
//! training trajectories — depend on `CAE_NUM_THREADS`.

use crate::autotune::PARALLEL_FLOP_THRESHOLD;
use crate::gemm::gemm;
use crate::pool;
use crate::simd::vecmath;
use crate::tensor::Tensor;
use crate::workspace::{self, Slot};

/// Fixed batch chunking for [`conv2d_backward`]'s `dW`/`db` partials.
///
/// The per-chunk partials are summed in chunk order, so the chunk count
/// must not depend on [`pool::max_parallelism`] or results would change
/// with the thread count. Sixteen chunks keep up to sixteen cores busy
/// while bounding the partial workspace; `parallel_for` load-balances
/// them over however many threads exist.
const BACKWARD_CHUNKS: usize = 16;

/// Raw pointer wrapper so batch chunks can write disjoint sample slices of
/// a shared output tensor from pool workers.
#[derive(Clone, Copy)]
struct SendPtr(*mut f32);
// SAFETY: every task derives slices only for its own sample/chunk range.
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

/// Static description of a 2-d convolution (square kernel, symmetric padding).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2dSpec {
    /// Kernel height/width.
    pub kernel: usize,
    /// Stride in both dimensions.
    pub stride: usize,
    /// Zero padding in both dimensions.
    pub padding: usize,
}

serde::impl_json_struct!(Conv2dSpec { kernel, stride, padding });

impl Conv2dSpec {
    /// Creates a spec.
    ///
    /// # Panics
    /// Panics if `kernel` or `stride` is zero.
    pub fn new(kernel: usize, stride: usize, padding: usize) -> Self {
        assert!(kernel > 0, "kernel size must be positive");
        assert!(stride > 0, "stride must be positive");
        Conv2dSpec {
            kernel,
            stride,
            padding,
        }
    }

    /// Output spatial size for an input of size `h`.
    ///
    /// # Panics
    /// Panics (instead of underflowing) if the kernel does not fit the
    /// padded input, i.e. `kernel > h + 2 * padding`.
    pub fn out_size(&self, h: usize) -> usize {
        let padded = h + 2 * self.padding;
        assert!(
            padded >= self.kernel,
            "conv2d: kernel {} does not fit padded input extent {} \
             (input {}, padding {})",
            self.kernel,
            padded,
            h,
            self.padding
        );
        (padded - self.kernel) / self.stride + 1
    }
}

/// Unfolds one image `[C, H, W]` into a column matrix
/// `[C*k*k, OH*OW]` (row-major, flat).
fn im2col_single(
    x: &[f32],
    c: usize,
    h: usize,
    w: usize,
    spec: Conv2dSpec,
    col: &mut [f32],
) {
    let ncols = spec.out_size(h) * spec.out_size(w);
    debug_assert_eq!(col.len(), c * spec.kernel * spec.kernel * ncols);
    im2col_at(x, c, h, w, spec, col, ncols, 0);
}

/// [`im2col_single`] writing into an `[C*k*k, row_stride]` matrix at column
/// offset `col0` — the building block of the whole-batch column matrix
/// (`row_stride = N*OH*OW`, image `ni` at `col0 = ni*OH*OW`).
#[allow(clippy::too_many_arguments)] // mirrors the GEMM-style layout params
fn im2col_at(
    x: &[f32],
    c: usize,
    h: usize,
    w: usize,
    spec: Conv2dSpec,
    col: &mut [f32],
    row_stride: usize,
    col0: usize,
) {
    let k = spec.kernel;
    let oh = spec.out_size(h);
    let ow = spec.out_size(w);
    let ncols = oh * ow;
    debug_assert!(col0 + ncols <= row_stride);
    for ci in 0..c {
        let xc = &x[ci * h * w..(ci + 1) * h * w];
        for ki in 0..k {
            for kj in 0..k {
                let row = (ci * k + ki) * k + kj;
                let start = row * row_stride + col0;
                let dst = &mut col[start..start + ncols];
                let (jlo, jhi) = valid_out_span(w, ow, spec.stride, kj, spec.padding);
                for oi in 0..oh {
                    let drow = &mut dst[oi * ow..(oi + 1) * ow];
                    let ii = (oi * spec.stride + ki) as isize - spec.padding as isize;
                    if ii < 0 || ii as usize >= h || jlo == jhi {
                        drow.fill(0.0);
                        continue;
                    }
                    let xrow = &xc[ii as usize * w..(ii as usize + 1) * w];
                    drow[..jlo].fill(0.0);
                    drow[jhi..].fill(0.0);
                    let j0 = jlo * spec.stride + kj - spec.padding;
                    if spec.stride == 1 {
                        drow[jlo..jhi].copy_from_slice(&xrow[j0..j0 + (jhi - jlo)]);
                    } else {
                        for (t, d) in drow[jlo..jhi].iter_mut().enumerate() {
                            *d = xrow[j0 + t * spec.stride];
                        }
                    }
                }
            }
        }
    }
}

/// Half-open range of output positions `o` whose input coordinate
/// `o·stride + koff − padding` falls inside `[0, extent)`. Hoisting this
/// out of the im2col/col2im inner loops removes the per-element padding
/// branch and enables contiguous copies in the stride-1 case.
fn valid_out_span(
    extent: usize,
    out: usize,
    stride: usize,
    koff: usize,
    padding: usize,
) -> (usize, usize) {
    if extent == 0 || koff >= extent + padding {
        return (0, 0);
    }
    let lo = if koff >= padding {
        0
    } else {
        (padding - koff).div_ceil(stride)
    };
    let hi = ((extent - 1 + padding - koff) / stride + 1).min(out);
    if hi <= lo {
        (0, 0)
    } else {
        (lo, hi)
    }
}

/// Folds a column matrix back into an image, accumulating overlaps
/// (the adjoint of [`im2col_single`]).
fn col2im_single(
    col: &[f32],
    c: usize,
    h: usize,
    w: usize,
    spec: Conv2dSpec,
    x: &mut [f32],
) {
    let k = spec.kernel;
    let oh = spec.out_size(h);
    let ow = spec.out_size(w);
    let ncols = oh * ow;
    for ci in 0..c {
        let xc = &mut x[ci * h * w..(ci + 1) * h * w];
        for ki in 0..k {
            for kj in 0..k {
                let row = (ci * k + ki) * k + kj;
                let src = &col[row * ncols..(row + 1) * ncols];
                let (jlo, jhi) = valid_out_span(w, ow, spec.stride, kj, spec.padding);
                if jlo == jhi {
                    continue;
                }
                for oi in 0..oh {
                    let ii = (oi * spec.stride + ki) as isize - spec.padding as isize;
                    if ii < 0 || ii as usize >= h {
                        continue;
                    }
                    let xrow = &mut xc[ii as usize * w..(ii as usize + 1) * w];
                    let srow = &src[oi * ow..(oi + 1) * ow];
                    let j0 = jlo * spec.stride + kj - spec.padding;
                    if spec.stride == 1 {
                        for (d, s) in xrow[j0..j0 + (jhi - jlo)].iter_mut().zip(&srow[jlo..jhi]) {
                            *d += s;
                        }
                    } else {
                        for (t, s) in srow[jlo..jhi].iter().enumerate() {
                            xrow[j0 + t * spec.stride] += s;
                        }
                    }
                }
            }
        }
    }
}

/// Activation fused into the per-channel bias pass of [`conv2d_fused`].
///
/// `None` reproduces the plain [`conv2d`] epilogue exactly (bias via
/// [`vecmath::vec_add_scalar_inplace`]); the other variants fold the bias
/// add and the activation into one pass over each output-channel row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConvEpilogue {
    /// Bias only (when present) — identical to [`conv2d`].
    None,
    /// `out = max(out + b, 0)` per output channel.
    Relu,
    /// `y = out + b; out = y > 0 ? y : slope·y` per output channel.
    LeakyRelu(f32),
}

/// Forward 2-d convolution: `x[N,C,H,W] * w[O,C,k,k] (+ b[O]) → [N,O,OH,OW]`.
///
/// # Panics
/// Panics if shapes are inconsistent with `spec`.
pub fn conv2d(x: &Tensor, weight: &Tensor, bias: Option<&Tensor>, spec: Conv2dSpec) -> Tensor {
    conv2d_fused(x, weight, bias, spec, ConvEpilogue::None)
}

/// [`conv2d`] with the bias add and an optional activation fused into the
/// GEMM output pass — the epilogue of the frozen inference path.
pub fn conv2d_fused(
    x: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    spec: Conv2dSpec,
    epilogue: ConvEpilogue,
) -> Tensor {
    let (n, c, h, w) = x.shape().nchw();
    let wd = weight.shape().dims();
    assert_eq!(wd.len(), 4, "conv2d weight must be 4-d, got {:?}", wd);
    let (o, wc, kh, kw) = (wd[0], wd[1], wd[2], wd[3]);
    assert_eq!(wc, c, "conv2d channel mismatch: input {c}, weight {wc}");
    assert!(
        kh == spec.kernel && kw == spec.kernel,
        "conv2d kernel mismatch: weight {kh}x{kw}, spec {}",
        spec.kernel
    );
    let oh = spec.out_size(h);
    let ow = spec.out_size(w);
    let ncols = oh * ow;
    let krows = c * spec.kernel * spec.kernel;
    let chw = c * h * w;
    let per_sample = o * ncols;
    let mut out = Tensor::zeros(&[n, o, oh, ow]);
    if n == 0 || per_sample == 0 {
        return out;
    }
    let out_ptr = SendPtr(out.data_mut().as_mut_ptr());
    let (xd, wd_flat) = (x.data(), weight.data());

    let flops = 2 * n * o * krows * ncols;
    // Budget-aware: inside a budgeted experiment cell this sees the cell's
    // share of the pool, not the whole pool. Chunking is per-sample (no
    // cross-chunk reduction), so the chunk count is free to vary with the
    // thread budget without changing bits.
    let chunks = if flops >= PARALLEL_FLOP_THRESHOLD {
        pool::current_parallelism().min(n)
    } else {
        1
    };
    if chunks == 1 {
        // Serial path: one whole-batch GEMM instead of one per image. The
        // column matrices of all N images sit side by side
        // (`[krows, N*ncols]`), so weight packing, GEMM blocking setup, and
        // the epilogue pass are paid once per *layer* rather than once per
        // *image* — on small per-image shapes those fixed costs dominate,
        // and amortizing them is what makes dynamic batching in `cae-serve`
        // pay off. Each output column's accumulation is a single FMA chain
        // regardless of the GEMM width (see `gemm`), so every image's
        // logits stay bit-identical to its batch-1 forward.
        let total = n * ncols;
        // Unzeroed: `im2col_at` writes every element, padding included — a
        // zeroing memset of the whole-batch column matrix would evict L2
        // on large batches for nothing.
        let mut col = workspace::take_unzeroed(Slot::Col, krows * total);
        {
            let _sp = cae_trace::span_stat("conv.im2col");
            for ni in 0..n {
                im2col_at(&xd[ni * chw..(ni + 1) * chw], c, h, w, spec, &mut col, total, ni * ncols);
            }
        }
        // Unzeroed: the GEMM overwrites every element (accumulate=false).
        let mut prod = workspace::take_unzeroed(Slot::ConvOut, o * total);
        gemm(o, total, krows, wd_flat, (krows, 1), &col, (total, 1), &mut prod, false);
        let _ep = cae_trace::span_stat("conv.epilogue");
        let od = out.data_mut();
        for ni in 0..n {
            for oi in 0..o {
                let src = &prod[oi * total + ni * ncols..oi * total + (ni + 1) * ncols];
                let dst = &mut od[ni * per_sample + oi * ncols..ni * per_sample + (oi + 1) * ncols];
                dst.copy_from_slice(src);
                match epilogue {
                    ConvEpilogue::None => {
                        if let Some(b) = bias {
                            vecmath::vec_add_scalar_inplace(dst, b.data()[oi]);
                        }
                    }
                    ConvEpilogue::Relu => {
                        vecmath::vec_bias_relu_inplace(dst, bias.map_or(0.0, |b| b.data()[oi]));
                    }
                    ConvEpilogue::LeakyRelu(slope) => {
                        vecmath::vec_bias_leaky_relu_inplace(
                            dst,
                            bias.map_or(0.0, |b| b.data()[oi]),
                            slope,
                        );
                    }
                }
            }
        }
        workspace::give(Slot::ConvOut, prod);
        workspace::give(Slot::Col, col);
        return out;
    }
    let per_chunk = n.div_ceil(chunks);
    pool::parallel_for(n.div_ceil(per_chunk), |t| {
        // Capture the wrapper, not its raw-pointer field (which is !Sync).
        let out_ptr = &out_ptr;
        let mut col = workspace::take(Slot::Col, krows * ncols);
        for ni in t * per_chunk..n.min((t + 1) * per_chunk) {
            im2col_single(&xd[ni * chw..(ni + 1) * chw], c, h, w, spec, &mut col);
            // SAFETY: sample `ni` belongs to exactly one chunk, so this
            // slice is not aliased by any other task.
            let dst = unsafe {
                std::slice::from_raw_parts_mut(out_ptr.0.add(ni * per_sample), per_sample)
            };
            gemm(o, ncols, krows, wd_flat, (krows, 1), &col, (ncols, 1), dst, false);
            match epilogue {
                ConvEpilogue::None => {
                    if let Some(b) = bias {
                        for oi in 0..o {
                            let bv = b.data()[oi];
                            vecmath::vec_add_scalar_inplace(
                                &mut dst[oi * ncols..(oi + 1) * ncols],
                                bv,
                            );
                        }
                    }
                }
                ConvEpilogue::Relu => {
                    for oi in 0..o {
                        let bv = bias.map_or(0.0, |b| b.data()[oi]);
                        vecmath::vec_bias_relu_inplace(&mut dst[oi * ncols..(oi + 1) * ncols], bv);
                    }
                }
                ConvEpilogue::LeakyRelu(slope) => {
                    for oi in 0..o {
                        let bv = bias.map_or(0.0, |b| b.data()[oi]);
                        vecmath::vec_bias_leaky_relu_inplace(
                            &mut dst[oi * ncols..(oi + 1) * ncols],
                            bv,
                            slope,
                        );
                    }
                }
            }
        }
        workspace::give(Slot::Col, col);
    });
    out
}

/// Backward pass of [`conv2d`], returning `(dx, dw, db)`.
pub fn conv2d_backward(
    x: &Tensor,
    weight: &Tensor,
    grad_out: &Tensor,
    spec: Conv2dSpec,
) -> (Tensor, Tensor, Tensor) {
    let (n, c, h, w) = x.shape().nchw();
    let wd = weight.shape().dims();
    let o = wd[0];
    let oh = spec.out_size(h);
    let ow = spec.out_size(w);
    let ncols = oh * ow;
    let krows = c * spec.kernel * spec.kernel;

    let chw = c * h * w;
    let mut dx = Tensor::zeros(&[n, c, h, w]);
    let mut dw_flat = vec![0.0f32; o * krows];
    let mut db = Tensor::zeros(&[o]);
    if n == 0 {
        let dw = Tensor::from_vec(dw_flat, wd).expect("dw shape is consistent by construction");
        return (dx, dw, db);
    }

    // Each chunk of the batch accumulates into a private [dw | db] partial,
    // reduced after the join; dx sample slices are disjoint by construction.
    // The chunk count is fixed (see [`BACKWARD_CHUNKS`]) so the reduction
    // order — and the f32 rounding of dw/db — is identical at every
    // thread count.
    let flops = 4 * n * o * krows * ncols;
    let chunks = if flops >= PARALLEL_FLOP_THRESHOLD {
        BACKWARD_CHUNKS.min(n)
    } else {
        1
    };
    let per_chunk = n.div_ceil(chunks);
    let tasks = n.div_ceil(per_chunk);
    let part_stride = o * krows + o;
    let mut partials = workspace::take(Slot::Partial, tasks * part_stride);
    let part_ptr = SendPtr(partials.as_mut_ptr());
    let dx_ptr = SendPtr(dx.data_mut().as_mut_ptr());
    let (xd, god, wd_flat) = (x.data(), grad_out.data(), weight.data());

    pool::parallel_for(tasks, |t| {
        // Capture the wrappers, not their raw-pointer fields (which are
        // !Sync).
        let (part_ptr, dx_ptr) = (&part_ptr, &dx_ptr);
        let mut col = workspace::take(Slot::Col, krows * ncols);
        let mut dcol = workspace::take(Slot::DCol, krows * ncols);
        // SAFETY: partial `t` and the chunk's dx samples are touched by
        // this task only.
        let part = unsafe {
            std::slice::from_raw_parts_mut(part_ptr.0.add(t * part_stride), part_stride)
        };
        let (dw_part, db_part) = part.split_at_mut(o * krows);
        for ni in t * per_chunk..n.min((t + 1) * per_chunk) {
            let go = &god[ni * o * ncols..(ni + 1) * o * ncols];
            for oi in 0..o {
                db_part[oi] += vecmath::vec_sum(&go[oi * ncols..(oi + 1) * ncols]);
            }
            im2col_single(&xd[ni * chw..(ni + 1) * chw], c, h, w, spec, &mut col);
            // dw += go[o, ncols] · col[krows, ncols]ᵀ  (NT product).
            gemm(o, krows, ncols, go, (ncols, 1), &col, (1, ncols), dw_part, true);
            // dcol = w[o, krows]ᵀ · go[o, ncols]  (TN product).
            gemm(krows, ncols, o, wd_flat, (1, krows), go, (ncols, 1), &mut dcol, false);
            let dst =
                unsafe { std::slice::from_raw_parts_mut(dx_ptr.0.add(ni * chw), chw) };
            col2im_single(&dcol, c, h, w, spec, dst);
        }
        workspace::give(Slot::DCol, dcol);
        workspace::give(Slot::Col, col);
    });

    for t in 0..tasks {
        let part = &partials[t * part_stride..(t + 1) * part_stride];
        for (d, &p) in dw_flat.iter_mut().zip(&part[..o * krows]) {
            *d += p;
        }
        for (d, &p) in db.data_mut().iter_mut().zip(&part[o * krows..]) {
            *d += p;
        }
    }
    workspace::give(Slot::Partial, partials);
    let dw = Tensor::from_vec(dw_flat, wd).expect("dw shape is consistent by construction");
    (dx, dw, db)
}

/// Forward 2-d average pooling with a square window and equal stride.
pub fn avg_pool2d(x: &Tensor, kernel: usize, stride: usize) -> Tensor {
    let (n, c, h, w) = x.shape().nchw();
    let oh = (h - kernel) / stride + 1;
    let ow = (w - kernel) / stride + 1;
    let mut out = Tensor::zeros(&[n, c, oh, ow]);
    let inv = 1.0 / (kernel * kernel) as f32;
    let (xd, od) = (x.data(), out.data_mut());
    for nc in 0..n * c {
        let src = &xd[nc * h * w..(nc + 1) * h * w];
        let dst = &mut od[nc * oh * ow..(nc + 1) * oh * ow];
        for oi in 0..oh {
            for oj in 0..ow {
                let mut s = 0.0f32;
                for ki in 0..kernel {
                    for kj in 0..kernel {
                        s += src[(oi * stride + ki) * w + oj * stride + kj];
                    }
                }
                dst[oi * ow + oj] = s * inv;
            }
        }
    }
    out
}

/// Backward pass of [`avg_pool2d`].
pub fn avg_pool2d_backward(
    x_shape: (usize, usize, usize, usize),
    grad_out: &Tensor,
    kernel: usize,
    stride: usize,
) -> Tensor {
    let (n, c, h, w) = x_shape;
    let oh = (h - kernel) / stride + 1;
    let ow = (w - kernel) / stride + 1;
    let inv = 1.0 / (kernel * kernel) as f32;
    let mut dx = Tensor::zeros(&[n, c, h, w]);
    let (gd, dd) = (grad_out.data(), dx.data_mut());
    for nc in 0..n * c {
        let g = &gd[nc * oh * ow..(nc + 1) * oh * ow];
        let d = &mut dd[nc * h * w..(nc + 1) * h * w];
        for oi in 0..oh {
            for oj in 0..ow {
                let gv = g[oi * ow + oj] * inv;
                for ki in 0..kernel {
                    for kj in 0..kernel {
                        d[(oi * stride + ki) * w + oj * stride + kj] += gv;
                    }
                }
            }
        }
    }
    dx
}

/// Forward 2-d max pooling; also returns the flat argmax indices used by the
/// backward pass.
pub fn max_pool2d(x: &Tensor, kernel: usize, stride: usize) -> (Tensor, Vec<usize>) {
    let (n, c, h, w) = x.shape().nchw();
    let oh = (h - kernel) / stride + 1;
    let ow = (w - kernel) / stride + 1;
    let mut out = Tensor::zeros(&[n, c, oh, ow]);
    let mut arg = vec![0usize; n * c * oh * ow];
    let (xd, od) = (x.data(), out.data_mut());
    for nc in 0..n * c {
        let src = &xd[nc * h * w..(nc + 1) * h * w];
        for oi in 0..oh {
            for oj in 0..ow {
                let mut best = f32::NEG_INFINITY;
                let mut best_idx = 0usize;
                for ki in 0..kernel {
                    for kj in 0..kernel {
                        let idx = (oi * stride + ki) * w + oj * stride + kj;
                        if src[idx] > best {
                            best = src[idx];
                            best_idx = idx;
                        }
                    }
                }
                let off = nc * oh * ow + oi * ow + oj;
                od[off] = best;
                arg[off] = nc * h * w + best_idx;
            }
        }
    }
    (out, arg)
}

/// Backward pass of [`max_pool2d`] given the saved argmax indices.
pub fn max_pool2d_backward(
    x_shape: (usize, usize, usize, usize),
    grad_out: &Tensor,
    argmax: &[usize],
) -> Tensor {
    let (n, c, h, w) = x_shape;
    let mut dx = Tensor::zeros(&[n, c, h, w]);
    let dd = dx.data_mut();
    for (g, &idx) in grad_out.data().iter().zip(argmax.iter()) {
        dd[idx] += g;
    }
    dx
}

/// Nearest-neighbour upsampling by an integer factor.
pub fn upsample_nearest2d(x: &Tensor, scale: usize) -> Tensor {
    let (n, c, h, w) = x.shape().nchw();
    let (oh, ow) = (h * scale, w * scale);
    let mut out = Tensor::zeros(&[n, c, oh, ow]);
    let (xd, od) = (x.data(), out.data_mut());
    for nc in 0..n * c {
        let src = &xd[nc * h * w..(nc + 1) * h * w];
        let dst = &mut od[nc * oh * ow..(nc + 1) * oh * ow];
        for oi in 0..oh {
            for oj in 0..ow {
                dst[oi * ow + oj] = src[(oi / scale) * w + oj / scale];
            }
        }
    }
    out
}

/// Backward pass of [`upsample_nearest2d`] (sums gradients over each
/// upsampled block).
pub fn upsample_nearest2d_backward(
    x_shape: (usize, usize, usize, usize),
    grad_out: &Tensor,
    scale: usize,
) -> Tensor {
    let (n, c, h, w) = x_shape;
    let (oh, ow) = (h * scale, w * scale);
    let mut dx = Tensor::zeros(&[n, c, h, w]);
    let (gd, dd) = (grad_out.data(), dx.data_mut());
    for nc in 0..n * c {
        let g = &gd[nc * oh * ow..(nc + 1) * oh * ow];
        let d = &mut dd[nc * h * w..(nc + 1) * h * w];
        for oi in 0..oh {
            for oj in 0..ow {
                d[(oi / scale) * w + oj / scale] += g[oi * ow + oj];
            }
        }
    }
    dx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv2d_identity_kernel() {
        // A 1x1 kernel with weight 1 is the identity.
        let x = Tensor::from_vec((0..16).map(|v| v as f32).collect(), &[1, 1, 4, 4]).unwrap();
        let w = Tensor::ones(&[1, 1, 1, 1]);
        let y = conv2d(&x, &w, None, Conv2dSpec::new(1, 1, 0));
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn conv2d_3x3_known_value() {
        // All-ones 3x3 input, all-ones 3x3 kernel, pad 1: center output = 9.
        let x = Tensor::ones(&[1, 1, 3, 3]);
        let w = Tensor::ones(&[1, 1, 3, 3]);
        let y = conv2d(&x, &w, None, Conv2dSpec::new(3, 1, 1));
        assert_eq!(y.shape().dims(), &[1, 1, 3, 3]);
        assert_eq!(y.data()[4], 9.0); // center
        assert_eq!(y.data()[0], 4.0); // corner
    }

    #[test]
    fn conv2d_stride_shrinks_output() {
        let x = Tensor::ones(&[2, 3, 8, 8]);
        let w = Tensor::ones(&[4, 3, 3, 3]);
        let y = conv2d(&x, &w, None, Conv2dSpec::new(3, 2, 1));
        assert_eq!(y.shape().dims(), &[2, 4, 4, 4]);
    }

    #[test]
    fn conv2d_fused_epilogue_matches_separate_passes() {
        let x = Tensor::from_vec(
            (0..2 * 3 * 6 * 6).map(|i| ((i * 31 % 17) as f32 - 8.0) * 0.1).collect(),
            &[2, 3, 6, 6],
        )
        .unwrap();
        let w = Tensor::from_vec(
            (0..4 * 3 * 9).map(|i| ((i * 13 % 11) as f32 - 5.0) * 0.1).collect(),
            &[4, 3, 3, 3],
        )
        .unwrap();
        let b = Tensor::from_vec(vec![0.3, -0.2, 0.1, -0.4], &[4]).unwrap();
        let spec = Conv2dSpec::new(3, 1, 1);

        let base = conv2d(&x, &w, Some(&b), spec);
        let fused = conv2d_fused(&x, &w, Some(&b), spec, ConvEpilogue::Relu);
        for (&f, &y) in fused.data().iter().zip(base.data()) {
            assert_eq!(f, y.max(0.0), "fused relu epilogue");
        }
        let fused = conv2d_fused(&x, &w, Some(&b), spec, ConvEpilogue::LeakyRelu(0.2));
        for (&f, &y) in fused.data().iter().zip(base.data()) {
            let want = if y > 0.0 { y } else { y * 0.2 };
            assert!((f - want).abs() <= 1e-6, "fused leaky epilogue: {f} vs {want}");
        }
        // Without bias the epilogue still applies the activation.
        let base = conv2d(&x, &w, None, spec);
        let fused = conv2d_fused(&x, &w, None, spec, ConvEpilogue::Relu);
        for (&f, &y) in fused.data().iter().zip(base.data()) {
            assert_eq!(f, y.max(0.0), "fused relu epilogue, no bias");
        }
    }

    #[test]
    fn conv2d_spec_serde_roundtrip() {
        let spec = Conv2dSpec::new(3, 2, 1);
        let back =
            <Conv2dSpec as serde::Deserialize>::from_value(&serde::Serialize::to_value(&spec))
                .unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn max_pool_and_backward_route_gradient_to_argmax() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]).unwrap();
        let (y, arg) = max_pool2d(&x, 2, 2);
        assert_eq!(y.data(), &[4.0]);
        let g = Tensor::from_vec(vec![10.0], &[1, 1, 1, 1]).unwrap();
        let dx = max_pool2d_backward((1, 1, 2, 2), &g, &arg);
        assert_eq!(dx.data(), &[0.0, 0.0, 0.0, 10.0]);
    }

    #[test]
    fn avg_pool_backward_spreads_gradient() {
        let g = Tensor::from_vec(vec![4.0], &[1, 1, 1, 1]).unwrap();
        let dx = avg_pool2d_backward((1, 1, 2, 2), &g, 2, 2);
        assert_eq!(dx.data(), &[1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn upsample_roundtrip_shapes() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]).unwrap();
        let y = upsample_nearest2d(&x, 2);
        assert_eq!(y.shape().dims(), &[1, 1, 4, 4]);
        assert_eq!(y.data()[0], 1.0);
        assert_eq!(y.data()[3], 2.0);
        let dx = upsample_nearest2d_backward((1, 1, 2, 2), &y, 2);
        // Each input cell collects 4 copies of itself.
        assert_eq!(dx.data(), &[4.0, 8.0, 12.0, 16.0]);
    }

    #[test]
    #[should_panic(expected = "does not fit padded input")]
    fn out_size_rejects_kernel_larger_than_padded_input() {
        // Seed behavior: usize underflow panic in release
        // (or garbage size in a hypothetical wrapping build).
        Conv2dSpec::new(5, 1, 1).out_size(2);
    }

    #[test]
    fn out_size_accepts_exact_fit() {
        assert_eq!(Conv2dSpec::new(4, 1, 1).out_size(2), 1);
    }

    #[test]
    fn conv2d_backward_matches_naive_reference() {
        // Cross-check the GEMM-routed backward against a direct
        // loop-nest computation of dw/db/dx on a small case.
        let spec = Conv2dSpec::new(3, 1, 1);
        let (n, c, h, w, o) = (2usize, 2usize, 4usize, 4usize, 3usize);
        let x = Tensor::from_vec(
            (0..n * c * h * w).map(|i| ((i * 37 % 23) as f32 - 11.0) * 0.1).collect(),
            &[n, c, h, w],
        )
        .unwrap();
        let wt = Tensor::from_vec(
            (0..o * c * 9).map(|i| ((i * 17 % 19) as f32 - 9.0) * 0.05).collect(),
            &[o, c, 3, 3],
        )
        .unwrap();
        let go = Tensor::from_vec(
            (0..n * o * h * w).map(|i| ((i * 13 % 29) as f32 - 14.0) * 0.02).collect(),
            &[n, o, h, w],
        )
        .unwrap();
        let (dx, dw, db) = conv2d_backward(&x, &wt, &go, spec);

        // Naive dw[oi, ci, ki, kj] = sum over n, output positions of
        // go * shifted x; dx by the transposed stencil.
        let mut dw_ref = vec![0.0f32; o * c * 9];
        let mut db_ref = vec![0.0f32; o];
        let mut dx_ref = vec![0.0f32; n * c * h * w];
        for ni in 0..n {
            for oi in 0..o {
                for yy in 0..h {
                    for xx in 0..w {
                        let g = go.data()[((ni * o + oi) * h + yy) * w + xx];
                        db_ref[oi] += g;
                        for ci in 0..c {
                            for ki in 0..3 {
                                for kj in 0..3 {
                                    let iy = yy as isize + ki as isize - 1;
                                    let ix = xx as isize + kj as isize - 1;
                                    if iy < 0 || ix < 0 || iy >= h as isize || ix >= w as isize {
                                        continue;
                                    }
                                    let xi = ((ni * c + ci) * h + iy as usize) * w + ix as usize;
                                    dw_ref[((oi * c + ci) * 3 + ki) * 3 + kj] += g * x.data()[xi];
                                    dx_ref[xi] +=
                                        g * wt.data()[((oi * c + ci) * 3 + ki) * 3 + kj];
                                }
                            }
                        }
                    }
                }
            }
        }
        for (got, want) in db.data().iter().zip(&db_ref) {
            assert!((got - want).abs() < 1e-4, "db: {got} vs {want}");
        }
        for (got, want) in dw.data().iter().zip(&dw_ref) {
            assert!((got - want).abs() < 1e-4, "dw: {got} vs {want}");
        }
        for (got, want) in dx.data().iter().zip(&dx_ref) {
            assert!((got - want).abs() < 1e-4, "dx: {got} vs {want}");
        }
    }

    #[test]
    fn im2col_col2im_adjoint_property() {
        // <im2col(x), y> == <x, col2im(y)> for random-ish tensors: validates
        // the backward fold against the forward unfold.
        let spec = Conv2dSpec::new(3, 2, 1);
        let (c, h, w) = (2, 5, 5);
        let oh = spec.out_size(h);
        let ow = spec.out_size(w);
        let krows = c * 9;
        let x: Vec<f32> = (0..c * h * w).map(|i| (i as f32 * 0.37).sin()).collect();
        let y: Vec<f32> = (0..krows * oh * ow)
            .map(|i| (i as f32 * 0.11).cos())
            .collect();
        let mut col = vec![0.0f32; krows * oh * ow];
        im2col_single(&x, c, h, w, spec, &mut col);
        let lhs: f32 = col.iter().zip(y.iter()).map(|(a, b)| a * b).sum();
        let mut xb = vec![0.0f32; c * h * w];
        col2im_single(&y, c, h, w, spec, &mut xb);
        let rhs: f32 = x.iter().zip(xb.iter()).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-3, "lhs={lhs} rhs={rhs}");
    }
}
