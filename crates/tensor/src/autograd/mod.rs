//! Reverse-mode automatic differentiation.
//!
//! [`Var`] wraps a [`Tensor`] in an atomically reference-counted graph
//! node. Operations on `Var`s compute their value eagerly and record a
//! backward closure; [`Var::backward`] replays the closures in reverse
//! creation order, accumulating gradients into leaves created with
//! [`Var::parameter`].
//!
//! Nodes whose inputs do not require gradients skip closure construction
//! entirely, so running a frozen teacher network under autograd costs the
//! same as a plain forward pass.
//!
//! # Threading model
//!
//! `Var` is `Send + Sync`: node ids come from a process-global atomic
//! counter, values sit behind an `RwLock` and gradients behind a `Mutex`,
//! so whole experiment cells (each owning its own models and tapes) can run
//! on different threads of the [`crate::pool`]. Ids are strictly increasing
//! in program order on each thread, so within any single-threaded tape the
//! descending-id ordering used by [`Var::backward`] remains a valid reverse
//! topological order regardless of what other threads allocate in between.

mod conv;
mod elementwise;
mod linalg;
mod reduce;
mod structure;

use crate::tensor::Tensor;
use std::collections::HashSet;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock, RwLockReadGuard};

static NEXT_ID: AtomicU64 = AtomicU64::new(1);

fn next_id() -> u64 {
    NEXT_ID.fetch_add(1, Ordering::Relaxed)
}

/// Backward closure: receives the output gradient and the parent nodes and
/// accumulates into each parent that requires a gradient.
pub(crate) type BackwardFn = Box<dyn Fn(&Tensor, &[Var]) + Send + Sync>;

pub(crate) struct VarNode {
    id: u64,
    value: RwLock<Tensor>,
    grad: Mutex<Option<Tensor>>,
    requires_grad: bool,
    parents: Vec<Var>,
    backward: Option<BackwardFn>,
}

/// A node in the autograd graph: a tensor value plus optional gradient
/// bookkeeping. Cloning a `Var` is cheap (reference-counted), and `Var` is
/// `Send + Sync` so independent graphs can live on different threads.
///
/// ```
/// use cae_tensor::{Tensor, Var};
/// let x = Var::parameter(Tensor::scalar(3.0));
/// let y = x.square().scale(2.0); // y = 2x²
/// y.backward();
/// assert_eq!(x.grad().unwrap().item(), 12.0);
/// ```
#[derive(Clone)]
pub struct Var(pub(crate) Arc<VarNode>);

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Var")
            .field("id", &self.0.id)
            .field("shape", &self.value().shape().dims())
            .field("requires_grad", &self.0.requires_grad)
            .finish()
    }
}

impl Var {
    /// Wraps a tensor as a non-differentiable constant.
    pub fn constant(value: Tensor) -> Var {
        Var(Arc::new(VarNode {
            id: next_id(),
            value: RwLock::new(value),
            grad: Mutex::new(None),
            requires_grad: false,
            parents: Vec::new(),
            backward: None,
        }))
    }

    /// Wraps a tensor as a trainable leaf that accumulates gradients.
    pub fn parameter(value: Tensor) -> Var {
        Var(Arc::new(VarNode {
            id: next_id(),
            value: RwLock::new(value),
            grad: Mutex::new(None),
            requires_grad: true,
            parents: Vec::new(),
            backward: None,
        }))
    }

    /// Builds an interior node. If no parent requires a gradient the backward
    /// closure is dropped and the node degenerates to a constant.
    pub(crate) fn from_op(value: Tensor, parents: Vec<Var>, backward: BackwardFn) -> Var {
        let requires = parents.iter().any(|p| p.0.requires_grad);
        Var(Arc::new(VarNode {
            id: next_id(),
            value: RwLock::new(value),
            grad: Mutex::new(None),
            requires_grad: requires,
            parents: if requires { parents } else { Vec::new() },
            backward: if requires { Some(backward) } else { None },
        }))
    }

    /// Unique node id (creation order). Useful as an optimizer state key.
    pub fn id(&self) -> u64 {
        self.0.id
    }

    /// Whether this node participates in gradient computation.
    pub fn requires_grad(&self) -> bool {
        self.0.requires_grad
    }

    /// Borrows the tensor value (a shared read lock).
    ///
    /// # Panics
    /// Panics if the value lock is poisoned (a writer panicked), which is
    /// not possible through the public API.
    pub fn value(&self) -> RwLockReadGuard<'_, Tensor> {
        self.0.value.read().expect("Var value lock poisoned")
    }

    /// Clones the tensor value out of the node.
    pub fn to_tensor(&self) -> Tensor {
        self.value().clone()
    }

    /// Shape dimensions of the value.
    pub fn dims(&self) -> Vec<usize> {
        self.value().shape().dims().to_vec()
    }

    /// Extracts a scalar value.
    ///
    /// # Panics
    /// Panics if the value holds more than one element.
    pub fn item(&self) -> f32 {
        self.value().item()
    }

    /// Replaces the stored value (used by optimizers; the graph is not
    /// replayed, so only call this on leaves between steps).
    pub fn set_value(&self, value: Tensor) {
        *self.0.value.write().expect("Var value lock poisoned") = value;
    }

    /// Mutates the stored value in place (used by optimizers).
    pub fn update_value(&self, f: impl FnOnce(&mut Tensor)) {
        f(&mut self.0.value.write().expect("Var value lock poisoned"));
    }

    /// Returns the accumulated gradient, if any.
    pub fn grad(&self) -> Option<Tensor> {
        self.0.grad.lock().expect("Var grad lock poisoned").clone()
    }

    /// Clears the accumulated gradient.
    pub fn zero_grad(&self) {
        *self.0.grad.lock().expect("Var grad lock poisoned") = None;
    }

    /// Removes and returns the accumulated gradient.
    pub fn take_grad(&self) -> Option<Tensor> {
        self.0.grad.lock().expect("Var grad lock poisoned").take()
    }

    /// Returns a constant `Var` sharing this node's current value (cuts the
    /// graph).
    pub fn detach(&self) -> Var {
        Var::constant(self.to_tensor())
    }

    /// Accumulates `g` into this node's gradient buffer.
    pub(crate) fn accum(&self, g: &Tensor) {
        if !self.0.requires_grad {
            return;
        }
        let mut slot = self.0.grad.lock().expect("Var grad lock poisoned");
        match slot.as_mut() {
            Some(existing) => existing.add_assign_scaled(g, 1.0),
            None => *slot = Some(g.clone()),
        }
    }

    /// Runs reverse-mode differentiation from this node, seeding with a
    /// gradient of ones (for the common scalar-loss case this is `1.0`).
    ///
    /// Gradients accumulate into every reachable [`Var::parameter`] leaf;
    /// call [`Var::zero_grad`] (or an optimizer's `zero_grad`) between steps.
    pub fn backward(&self) {
        if !self.0.requires_grad {
            return;
        }
        let seed = {
            let v = self.value();
            Tensor::full(v.shape().dims(), 1.0)
        };
        self.backward_with(seed);
    }

    /// Runs reverse-mode differentiation with an explicit seed gradient.
    ///
    /// # Panics
    /// Panics if `seed`'s shape differs from this node's value shape.
    pub fn backward_with(&self, seed: Tensor) {
        assert_eq!(
            seed.shape(),
            self.value().shape(),
            "backward seed shape must match the output shape"
        );
        self.accum(&seed);

        // Collect the reachable subgraph that requires gradients.
        let mut nodes: Vec<Var> = Vec::new();
        let mut seen: HashSet<u64> = HashSet::new();
        let mut stack: Vec<Var> = vec![self.clone()];
        while let Some(v) = stack.pop() {
            if !v.0.requires_grad || !seen.insert(v.0.id) {
                continue;
            }
            for p in &v.0.parents {
                stack.push(p.clone());
            }
            nodes.push(v);
        }
        // Edges always point to earlier ids, so descending-id order is a
        // valid reverse topological order.
        nodes.sort_by_key(|n| std::cmp::Reverse(n.0.id));

        for node in &nodes {
            let Some(backward) = node.0.backward.as_ref() else {
                continue;
            };
            // Interior nodes consume their gradient; leaves keep theirs.
            let grad = node.0.grad.lock().expect("Var grad lock poisoned").take();
            if let Some(g) = grad {
                backward(&g, &node.0.parents);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_graph_skips_backward_machinery() {
        let a = Var::constant(Tensor::scalar(2.0));
        let b = Var::constant(Tensor::scalar(3.0));
        let c = a.mul(&b);
        assert!(!c.requires_grad());
        c.backward(); // no-op, must not panic
        assert!(a.grad().is_none());
    }

    #[test]
    fn chain_rule_through_shared_subexpression() {
        // y = (x * x) + (x * x); dy/dx = 4x.
        let x = Var::parameter(Tensor::scalar(3.0));
        let sq = x.mul(&x);
        let y = sq.add(&sq);
        y.backward();
        assert_eq!(x.grad().unwrap().item(), 12.0);
    }

    #[test]
    fn gradients_accumulate_across_backward_calls() {
        let x = Var::parameter(Tensor::scalar(1.0));
        let y = x.scale(2.0);
        y.backward();
        let y2 = x.scale(2.0);
        y2.backward();
        assert_eq!(x.grad().unwrap().item(), 4.0);
        x.zero_grad();
        assert!(x.grad().is_none());
    }

    #[test]
    fn var_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Var>();
        assert_send_sync::<Tensor>();
    }

    #[test]
    fn graphs_built_on_other_threads_backpropagate() {
        let handles: Vec<_> = (0..4)
            .map(|t| {
                std::thread::spawn(move || {
                    let x = Var::parameter(Tensor::scalar(t as f32 + 1.0));
                    let y = x.square().scale(3.0); // dy/dx = 6x
                    y.backward();
                    x.grad().unwrap().item()
                })
            })
            .collect();
        for (t, h) in handles.into_iter().enumerate() {
            assert_eq!(h.join().unwrap(), 6.0 * (t as f32 + 1.0));
        }
    }

    #[test]
    fn detach_cuts_the_graph() {
        let x = Var::parameter(Tensor::scalar(5.0));
        let y = x.square().detach().scale(3.0);
        y.backward();
        assert!(x.grad().is_none());
        assert_eq!(y.item(), 75.0);
    }
}
