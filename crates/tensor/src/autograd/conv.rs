//! Differentiable convolution, pooling and upsampling on [`Var`].

use super::Var;
use crate::conv::{self, Conv2dSpec};

impl Var {
    /// 2-d convolution `self[N,C,H,W] * weight[O,C,k,k] (+ bias[O])`.
    ///
    /// # Panics
    /// Panics if the shapes are inconsistent with `spec` (see
    /// [`conv::conv2d`]).
    pub fn conv2d(&self, weight: &Var, bias: Option<&Var>, spec: Conv2dSpec) -> Var {
        let value = conv::conv2d(
            &self.value(),
            &weight.value(),
            bias.map(|b| b.to_tensor()).as_ref(),
            spec,
        );
        let mut parents = vec![self.clone(), weight.clone()];
        if let Some(b) = bias {
            parents.push(b.clone());
        }
        Var::from_op(
            value,
            parents,
            Box::new(move |g, parents| {
                let x = parents[0].to_tensor();
                let w = parents[1].to_tensor();
                let (dx, dw, db) = conv::conv2d_backward(&x, &w, g, spec);
                parents[0].accum(&dx);
                parents[1].accum(&dw);
                if let Some(b) = parents.get(2) {
                    b.accum(&db);
                }
            }),
        )
    }

    /// Average pooling with a square window.
    ///
    /// # Panics
    /// Panics if `self` is not 4-d.
    pub fn avg_pool2d(&self, kernel: usize, stride: usize) -> Var {
        let shape = self.value().shape().nchw();
        let value = conv::avg_pool2d(&self.value(), kernel, stride);
        Var::from_op(
            value,
            vec![self.clone()],
            Box::new(move |g, parents| {
                parents[0].accum(&conv::avg_pool2d_backward(shape, g, kernel, stride));
            }),
        )
    }

    /// Max pooling with a square window.
    ///
    /// # Panics
    /// Panics if `self` is not 4-d.
    pub fn max_pool2d(&self, kernel: usize, stride: usize) -> Var {
        let shape = self.value().shape().nchw();
        let (value, argmax) = conv::max_pool2d(&self.value(), kernel, stride);
        Var::from_op(
            value,
            vec![self.clone()],
            Box::new(move |g, parents| {
                parents[0].accum(&conv::max_pool2d_backward(shape, g, &argmax));
            }),
        )
    }

    /// Global average pooling: `[N,C,H,W] → [N,C]`.
    ///
    /// # Panics
    /// Panics if `self` is not 4-d.
    pub fn global_avg_pool(&self) -> Var {
        let (n, c, h, w) = self.value().shape().nchw();
        let hw = h * w;
        let inv = 1.0 / hw as f32;
        let x = self.to_tensor();
        let mut out = crate::Tensor::zeros(&[n, c]);
        for nc in 0..n * c {
            out.data_mut()[nc] = x.data()[nc * hw..(nc + 1) * hw].iter().sum::<f32>() * inv;
        }
        Var::from_op(
            out,
            vec![self.clone()],
            Box::new(move |g, parents| {
                let mut dx = crate::Tensor::zeros(&[n, c, h, w]);
                for nc in 0..n * c {
                    let gv = g.data()[nc] * inv;
                    for v in &mut dx.data_mut()[nc * hw..(nc + 1) * hw] {
                        *v += gv;
                    }
                }
                parents[0].accum(&dx);
            }),
        )
    }

    /// Nearest-neighbour upsampling by an integer factor.
    ///
    /// # Panics
    /// Panics if `self` is not 4-d or `scale == 0`.
    pub fn upsample_nearest2d(&self, scale: usize) -> Var {
        assert!(scale > 0, "upsample scale must be positive");
        let shape = self.value().shape().nchw();
        let value = conv::upsample_nearest2d(&self.value(), scale);
        Var::from_op(
            value,
            vec![self.clone()],
            Box::new(move |g, parents| {
                parents[0].accum(&conv::upsample_nearest2d_backward(shape, g, scale));
            }),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tensor;

    #[test]
    fn conv2d_gradient_flows_to_input_weight_and_bias() {
        let x = Var::parameter(Tensor::ones(&[1, 1, 3, 3]));
        let w = Var::parameter(Tensor::ones(&[1, 1, 3, 3]));
        let b = Var::parameter(Tensor::zeros(&[1]));
        let y = x.conv2d(&w, Some(&b), Conv2dSpec::new(3, 1, 1));
        y.sum_all().backward();
        assert!(x.grad().is_some());
        assert!(w.grad().is_some());
        // dL/db = number of output pixels = 9.
        assert_eq!(b.grad().unwrap().data(), &[9.0]);
    }

    #[test]
    fn global_avg_pool_shape_and_grad() {
        let x = Var::parameter(Tensor::from_vec(
            (0..8).map(|v| v as f32).collect(),
            &[1, 2, 2, 2],
        ).unwrap());
        let y = x.global_avg_pool();
        assert_eq!(y.dims(), vec![1, 2]);
        assert_eq!(y.value().data(), &[1.5, 5.5]);
        y.sum_all().backward();
        assert_eq!(x.grad().unwrap().data(), &[0.25; 8]);
    }

    #[test]
    fn upsample_gradient_sums_blocks() {
        let x = Var::parameter(Tensor::ones(&[1, 1, 2, 2]));
        let y = x.upsample_nearest2d(3);
        assert_eq!(y.dims(), vec![1, 1, 6, 6]);
        y.sum_all().backward();
        assert_eq!(x.grad().unwrap().data(), &[9.0; 4]);
    }
}
