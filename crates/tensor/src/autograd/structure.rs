//! Differentiable shape-manipulation operations on [`Var`].

use super::Var;
use crate::tensor::Tensor;

impl Var {
    /// Reshapes the variable (total element count must be preserved).
    ///
    /// # Panics
    /// Panics if the element counts differ.
    pub fn reshape(&self, dims: &[usize]) -> Var {
        let old_dims = self.dims();
        let value = self
            .value()
            .reshape(dims)
            .unwrap_or_else(|e| panic!("reshape failed: {e}"));
        Var::from_op(
            value,
            vec![self.clone()],
            Box::new(move |g, parents| {
                let gr = g
                    .reshape(&old_dims)
                    .expect("gradient reshape cannot fail: same element count");
                parents[0].accum(&gr);
            }),
        )
    }

    /// Flattens `[N, ...] → [N, rest]`.
    ///
    /// # Panics
    /// Panics if the variable is 0-d.
    pub fn flatten_from(&self) -> Var {
        let dims = self.dims();
        assert!(!dims.is_empty(), "cannot flatten a 0-d variable");
        let rest: usize = dims[1..].iter().product();
        self.reshape(&[dims[0], rest])
    }

    /// Concatenates variables along dimension 0.
    ///
    /// # Panics
    /// Panics if `parts` is empty or trailing dimensions differ.
    pub fn concat0(parts: &[Var]) -> Var {
        assert!(!parts.is_empty(), "concat0 requires at least one variable");
        let tensors: Vec<Tensor> = parts.iter().map(|p| p.to_tensor()).collect();
        let refs: Vec<&Tensor> = tensors.iter().collect();
        let value = Tensor::concat0(&refs);
        let sizes: Vec<usize> = tensors.iter().map(|t| t.shape().dim(0)).collect();
        Var::from_op(
            value,
            parts.to_vec(),
            Box::new(move |g, parents| {
                let mut start = 0usize;
                for (p, &len) in parents.iter().zip(sizes.iter()) {
                    p.accum(&g.slice0(start, len));
                    start += len;
                }
            }),
        )
    }

    /// Rearranges `[N, C, H, W] → [N·H·W, C]`: one row per pixel.
    ///
    /// Used to apply row-wise operations (softmax, normalization) per pixel
    /// in dense-prediction heads. The inverse is [`Var::rows_to_nchw`].
    ///
    /// # Panics
    /// Panics if the variable is not 4-d.
    pub fn nchw_to_rows(&self) -> Var {
        let (n, c, h, w) = self.value().shape().nchw();
        let hw = h * w;
        let x = self.to_tensor();
        let mut out = Tensor::zeros(&[n * hw, c]);
        {
            let (xd, od) = (x.data(), out.data_mut());
            for ni in 0..n {
                for ci in 0..c {
                    let src = &xd[(ni * c + ci) * hw..(ni * c + ci + 1) * hw];
                    for (p, &v) in src.iter().enumerate() {
                        od[(ni * hw + p) * c + ci] = v;
                    }
                }
            }
        }
        Var::from_op(
            out,
            vec![self.clone()],
            Box::new(move |g, parents| {
                // The gradient is a pure permutation written in NCHW order,
                // so build it sequentially without a zero-init pass.
                let gd = g.data();
                let mut dx = Vec::with_capacity(n * c * hw);
                for ni in 0..n {
                    for ci in 0..c {
                        dx.extend((0..hw).map(|p| gd[(ni * hw + p) * c + ci]));
                    }
                }
                parents[0].accum(
                    &Tensor::from_vec(dx, &[n, c, h, w]).expect("shape consistent"),
                );
            }),
        )
    }

    /// Rearranges `[N·H·W, C] → [N, C, H, W]`, the inverse of
    /// [`Var::nchw_to_rows`].
    ///
    /// # Panics
    /// Panics if the row count does not equal `n·h·w`.
    pub fn rows_to_nchw(&self, n: usize, h: usize, w: usize) -> Var {
        let (rows, c) = self.value().shape().matrix();
        assert_eq!(rows, n * h * w, "row count {rows} != {n}·{h}·{w}");
        let hw = h * w;
        let x = self.to_tensor();
        let mut out = Tensor::zeros(&[n, c, h, w]);
        {
            let (xd, od) = (x.data(), out.data_mut());
            for ni in 0..n {
                for ci in 0..c {
                    let dst = &mut od[(ni * c + ci) * hw..(ni * c + ci + 1) * hw];
                    for (p, v) in dst.iter_mut().enumerate() {
                        *v = xd[(ni * hw + p) * c + ci];
                    }
                }
            }
        }
        Var::from_op(
            out,
            vec![self.clone()],
            Box::new(move |g, parents| {
                let mut dx = Tensor::zeros(&[n * hw, c]);
                let (gd, dd) = (g.data(), dx.data_mut());
                for ni in 0..n {
                    for ci in 0..c {
                        let src = &gd[(ni * c + ci) * hw..(ni * c + ci + 1) * hw];
                        for (p, &v) in src.iter().enumerate() {
                            dd[(ni * hw + p) * c + ci] = v;
                        }
                    }
                }
                parents[0].accum(&dx);
            }),
        )
    }

    /// Extracts the spatial window `x[:, :, i0..i1, j0..j1]` of an NCHW
    /// tensor (used e.g. by total-variation priors).
    ///
    /// # Panics
    /// Panics if the variable is not 4-d or the window is out of bounds.
    pub fn slice_spatial(&self, i0: usize, i1: usize, j0: usize, j1: usize) -> Var {
        let (n, c, h, w) = self.value().shape().nchw();
        assert!(i0 < i1 && i1 <= h && j0 < j1 && j1 <= w, "window out of bounds");
        let (oh, ow) = (i1 - i0, j1 - j0);
        let x = self.to_tensor();
        let mut out = Tensor::zeros(&[n, c, oh, ow]);
        {
            let (xd, od) = (x.data(), out.data_mut());
            for nc in 0..n * c {
                for oi in 0..oh {
                    for oj in 0..ow {
                        od[nc * oh * ow + oi * ow + oj] =
                            xd[nc * h * w + (i0 + oi) * w + j0 + oj];
                    }
                }
            }
        }
        Var::from_op(
            out,
            vec![self.clone()],
            Box::new(move |g, parents| {
                let mut dx = Tensor::zeros(&[n, c, h, w]);
                let (gd, dd) = (g.data(), dx.data_mut());
                for nc in 0..n * c {
                    for oi in 0..oh {
                        for oj in 0..ow {
                            dd[nc * h * w + (i0 + oi) * w + j0 + oj] +=
                                gd[nc * oh * ow + oi * ow + oj];
                        }
                    }
                }
                parents[0].accum(&dx);
            }),
        )
    }

    /// Extracts rows `[start, start+len)` along dimension 0.
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    pub fn slice0(&self, start: usize, len: usize) -> Var {
        let dims = self.dims();
        let value = self.value().slice0(start, len);
        Var::from_op(
            value,
            vec![self.clone()],
            Box::new(move |g, parents| {
                let mut dx = Tensor::zeros(&dims);
                let stride: usize = dims[1..].iter().product();
                dx.data_mut()[start * stride..(start + len) * stride].copy_from_slice(g.data());
                parents[0].accum(&dx);
            }),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reshape_roundtrips_gradient() {
        let x = Var::parameter(Tensor::ones(&[2, 3]));
        x.reshape(&[3, 2]).sum_all().backward();
        let g = x.grad().unwrap();
        assert_eq!(g.shape().dims(), &[2, 3]);
        assert_eq!(g.data(), &[1.0; 6]);
    }

    #[test]
    fn concat_splits_gradient() {
        let a = Var::parameter(Tensor::ones(&[1, 2]));
        let b = Var::parameter(Tensor::ones(&[2, 2]));
        let c = Var::concat0(&[a.clone(), b.clone()]);
        c.scale(3.0).sum_all().backward();
        assert_eq!(a.grad().unwrap().data(), &[3.0, 3.0]);
        assert_eq!(b.grad().unwrap().data(), &[3.0; 4]);
    }

    #[test]
    fn nchw_rows_roundtrip() {
        let x = Var::parameter(Tensor::from_vec(
            (0..24).map(|v| v as f32).collect(),
            &[2, 3, 2, 2],
        ).unwrap());
        let rows = x.nchw_to_rows();
        assert_eq!(rows.dims(), vec![8, 3]);
        // First pixel of first sample holds channels (0, 4, 8).
        assert_eq!(&rows.value().data()[0..3], &[0.0, 4.0, 8.0]);
        let back = rows.rows_to_nchw(2, 2, 2);
        assert_eq!(back.value().data(), x.value().data());
        back.sum_all().backward();
        assert_eq!(x.grad().unwrap().data(), &[1.0; 24]);
    }

    #[test]
    fn slice_routes_gradient_to_selected_rows() {
        let x = Var::parameter(Tensor::ones(&[3, 2]));
        x.slice0(1, 1).sum_all().backward();
        assert_eq!(x.grad().unwrap().data(), &[0.0, 0.0, 1.0, 1.0, 0.0, 0.0]);
    }
}
