//! Elementwise differentiable operations on [`Var`].
//!
//! The activation forward/backward pairs (`relu`, `leaky_relu`, `tanh`,
//! `sigmoid`, `exp`) run on the SIMD layer's fused kernels
//! ([`crate::simd::vecmath`]); the backward kernels compute the derivative
//! and multiply by the incoming gradient in one pass instead of
//! materializing a mask tensor first.

use super::Var;
use crate::simd::vecmath;
use crate::tensor::Tensor;

/// Builds a tensor with `template`'s shape around a freshly computed buffer.
fn like(template: &Tensor, data: Vec<f32>) -> Tensor {
    Tensor::from_vec(data, template.shape().dims()).expect("kernel preserves length")
}

impl Var {
    /// Elementwise addition of two same-shape variables.
    ///
    /// # Panics
    /// Panics if the shapes differ.
    pub fn add(&self, other: &Var) -> Var {
        let value = self.value().add(&other.value());
        Var::from_op(
            value,
            vec![self.clone(), other.clone()],
            Box::new(|g, parents| {
                parents[0].accum(g);
                parents[1].accum(g);
            }),
        )
    }

    /// Elementwise subtraction.
    ///
    /// # Panics
    /// Panics if the shapes differ.
    pub fn sub(&self, other: &Var) -> Var {
        let value = self.value().sub(&other.value());
        Var::from_op(
            value,
            vec![self.clone(), other.clone()],
            Box::new(|g, parents| {
                parents[0].accum(g);
                parents[1].accum(&g.scale(-1.0));
            }),
        )
    }

    /// Elementwise multiplication.
    ///
    /// # Panics
    /// Panics if the shapes differ.
    pub fn mul(&self, other: &Var) -> Var {
        let value = self.value().mul(&other.value());
        Var::from_op(
            value,
            vec![self.clone(), other.clone()],
            Box::new(|g, parents| {
                let a = parents[0].to_tensor();
                let b = parents[1].to_tensor();
                parents[0].accum(&g.mul(&b));
                parents[1].accum(&g.mul(&a));
            }),
        )
    }

    /// Multiplies every element by a constant.
    pub fn scale(&self, s: f32) -> Var {
        let value = self.value().scale(s);
        Var::from_op(
            value,
            vec![self.clone()],
            Box::new(move |g, parents| parents[0].accum(&g.scale(s))),
        )
    }

    /// Adds a constant to every element.
    pub fn add_scalar(&self, s: f32) -> Var {
        let value = self.value().add_scalar(s);
        Var::from_op(
            value,
            vec![self.clone()],
            Box::new(|g, parents| parents[0].accum(g)),
        )
    }

    /// Elementwise negation.
    pub fn neg(&self) -> Var {
        self.scale(-1.0)
    }

    /// Elementwise square.
    pub fn square(&self) -> Var {
        let x = self.value();
        let value = x.mul(&x);
        Var::from_op(
            value,
            vec![self.clone()],
            Box::new(|g, parents| {
                let x = parents[0].to_tensor();
                parents[0].accum(&g.mul(&x.scale(2.0)));
            }),
        )
    }

    /// Elementwise power with a constant (fractional) exponent.
    ///
    /// Inputs are clamped to `≥ 1e-12` before exponentiation so `powf(-0.5)`
    /// (inverse square root, used by batch normalization) is well defined.
    pub fn powf(&self, p: f32) -> Var {
        let value = self.value().map(|v| v.max(1e-12).powf(p));
        Var::from_op(
            value,
            vec![self.clone()],
            Box::new(move |g, parents| {
                let x = parents[0].to_tensor();
                let d = x.map(|v| p * v.max(1e-12).powf(p - 1.0));
                parents[0].accum(&g.mul(&d));
            }),
        )
    }

    /// Elementwise ReLU.
    pub fn relu(&self) -> Var {
        let x = self.value();
        let mut out = vec![0.0f32; x.data().len()];
        vecmath::vec_relu(x.data(), &mut out);
        Var::from_op(
            like(&x, out),
            vec![self.clone()],
            Box::new(|g, parents| {
                let x = parents[0].to_tensor();
                let mut dx = vec![0.0f32; x.data().len()];
                vecmath::vec_relu_grad(x.data(), g.data(), &mut dx);
                parents[0].accum(&like(&x, dx));
            }),
        )
    }

    /// Elementwise leaky ReLU with negative slope `slope`.
    pub fn leaky_relu(&self, slope: f32) -> Var {
        let x = self.value();
        let mut out = vec![0.0f32; x.data().len()];
        vecmath::vec_leaky_relu(x.data(), slope, &mut out);
        Var::from_op(
            like(&x, out),
            vec![self.clone()],
            Box::new(move |g, parents| {
                let x = parents[0].to_tensor();
                let mut dx = vec![0.0f32; x.data().len()];
                vecmath::vec_leaky_relu_grad(x.data(), g.data(), slope, &mut dx);
                parents[0].accum(&like(&x, dx));
            }),
        )
    }

    /// Elementwise hyperbolic tangent.
    pub fn tanh(&self) -> Var {
        let x = self.value();
        let mut out = vec![0.0f32; x.data().len()];
        vecmath::vec_tanh(x.data(), &mut out);
        let value = like(&x, out);
        let saved = value.clone();
        Var::from_op(
            value,
            vec![self.clone()],
            Box::new(move |g, parents| {
                let mut dx = vec![0.0f32; saved.data().len()];
                vecmath::vec_tanh_grad(saved.data(), g.data(), &mut dx);
                parents[0].accum(&like(&saved, dx));
            }),
        )
    }

    /// Elementwise sigmoid.
    pub fn sigmoid(&self) -> Var {
        let x = self.value();
        let mut out = vec![0.0f32; x.data().len()];
        vecmath::vec_sigmoid(x.data(), &mut out);
        let value = like(&x, out);
        let saved = value.clone();
        Var::from_op(
            value,
            vec![self.clone()],
            Box::new(move |g, parents| {
                let mut dx = vec![0.0f32; saved.data().len()];
                vecmath::vec_sigmoid_grad(saved.data(), g.data(), &mut dx);
                parents[0].accum(&like(&saved, dx));
            }),
        )
    }

    /// Elementwise absolute value (subgradient `0` at the origin).
    pub fn abs(&self) -> Var {
        let value = self.value().map(f32::abs);
        Var::from_op(
            value,
            vec![self.clone()],
            Box::new(|g, parents| {
                let x = parents[0].to_tensor();
                let sign = x.map(|v| {
                    if v > 0.0 {
                        1.0
                    } else if v < 0.0 {
                        -1.0
                    } else {
                        0.0
                    }
                });
                parents[0].accum(&g.mul(&sign));
            }),
        )
    }

    /// Elementwise natural exponential.
    pub fn exp(&self) -> Var {
        let x = self.value();
        let mut out = vec![0.0f32; x.data().len()];
        vecmath::vec_exp(x.data(), &mut out);
        let value = like(&x, out);
        let saved = value.clone();
        Var::from_op(
            value,
            vec![self.clone()],
            Box::new(move |g, parents| parents[0].accum(&g.mul(&saved))),
        )
    }

    /// Elementwise natural logarithm (inputs clamped to `≥ 1e-12`).
    pub fn ln(&self) -> Var {
        let value = self.value().map(|v| v.max(1e-12).ln());
        Var::from_op(
            value,
            vec![self.clone()],
            Box::new(|g, parents| {
                let x = parents[0].to_tensor();
                let d = x.map(|v| 1.0 / v.max(1e-12));
                parents[0].accum(&g.mul(&d));
            }),
        )
    }

    /// Multiplies elementwise by a constant tensor (no gradient flows into
    /// the constant), e.g. masks or frozen teacher probabilities.
    ///
    /// # Panics
    /// Panics if the shapes differ.
    pub fn mul_const(&self, c: &Tensor) -> Var {
        let value = self.value().mul(c);
        let saved = c.clone();
        Var::from_op(
            value,
            vec![self.clone()],
            Box::new(move |g, parents| parents[0].accum(&g.mul(&saved))),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(data: Vec<f32>, dims: &[usize]) -> Var {
        Var::parameter(Tensor::from_vec(data, dims).unwrap())
    }

    #[test]
    fn mul_product_rule() {
        let a = p(vec![2.0], &[1]);
        let b = p(vec![5.0], &[1]);
        a.mul(&b).backward();
        assert_eq!(a.grad().unwrap().data(), &[5.0]);
        assert_eq!(b.grad().unwrap().data(), &[2.0]);
    }

    #[test]
    fn relu_blocks_negative_gradient() {
        let x = p(vec![-1.0, 2.0], &[2]);
        x.relu().backward();
        assert_eq!(x.grad().unwrap().data(), &[0.0, 1.0]);
    }

    #[test]
    fn tanh_derivative_at_zero_is_one() {
        let x = p(vec![0.0], &[1]);
        x.tanh().backward();
        assert!((x.grad().unwrap().item() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn powf_matches_rsqrt_derivative() {
        // d/dx x^{-1/2} = -0.5 x^{-3/2}; at x=4: -0.5/8 = -0.0625.
        let x = p(vec![4.0], &[1]);
        x.powf(-0.5).backward();
        assert!((x.grad().unwrap().item() + 0.0625).abs() < 1e-6);
    }

    #[test]
    fn mul_const_passes_through_mask() {
        let x = p(vec![1.0, 1.0], &[2]);
        let mask = Tensor::from_vec(vec![0.0, 3.0], &[2]).unwrap();
        x.mul_const(&mask).sum_all().backward();
        assert_eq!(x.grad().unwrap().data(), &[0.0, 3.0]);
    }
}
