//! Differentiable reductions, softmax and per-channel statistics on [`Var`].
//!
//! Row and channel loops run on the SIMD layer ([`crate::simd::vecmath`]);
//! per-row/per-channel reductions use its fixed 8-lane accumulation order,
//! so results are identical across backends.

use super::Var;
use crate::simd::vecmath;
use crate::tensor::Tensor;

impl Var {
    /// Sum of all elements, as a scalar variable.
    pub fn sum_all(&self) -> Var {
        let value = Tensor::scalar(self.value().sum());
        let dims = self.dims();
        Var::from_op(
            value,
            vec![self.clone()],
            Box::new(move |g, parents| {
                parents[0].accum(&Tensor::full(&dims, g.item()));
            }),
        )
    }

    /// Mean of all elements, as a scalar variable.
    pub fn mean_all(&self) -> Var {
        let n = self.value().numel().max(1);
        self.sum_all().scale(1.0 / n as f32)
    }

    /// Row-wise log-softmax of a `[N, K]` matrix.
    ///
    /// # Panics
    /// Panics if `self` is not 2-d.
    pub fn log_softmax_rows(&self) -> Var {
        let (n, k) = self.value().shape().matrix();
        let x = self.to_tensor();
        let mut out = vec![0.0f32; n * k];
        let mut exps = vec![0.0f32; k];
        for i in 0..n {
            let row = &x.data()[i * k..(i + 1) * k];
            let m = vecmath::vec_max(row);
            vecmath::vec_exp_shift(row, -m, &mut exps);
            let lse = vecmath::vec_sum(&exps).ln() + m;
            vecmath::vec_add_scalar(row, -lse, &mut out[i * k..(i + 1) * k]);
        }
        let value = Tensor::from_vec(out, &[n, k]).expect("shape consistent");
        let logp = value.clone();
        Var::from_op(
            value,
            vec![self.clone()],
            Box::new(move |g, parents| {
                // dx = g - softmax * row_sum(g), one exp + fused
                // multiply-add pass per row.
                let mut dx = vec![0.0f32; n * k];
                for i in 0..n {
                    let grow = &g.data()[i * k..(i + 1) * k];
                    let gsum = vecmath::vec_sum(grow);
                    let dxrow = &mut dx[i * k..(i + 1) * k];
                    vecmath::vec_exp(&logp.data()[i * k..(i + 1) * k], dxrow);
                    vecmath::vec_scale_add_inplace(dxrow, -gsum, grow);
                }
                parents[0].accum(&Tensor::from_vec(dx, &[n, k]).expect("shape consistent"));
            }),
        )
    }

    /// Gathers one element per row of a `[N, K]` matrix: `out[i] = x[i, idx[i]]`.
    ///
    /// # Panics
    /// Panics if `self` is not 2-d, `idx.len() != N`, or any index is out of
    /// range.
    pub fn gather_rows(&self, idx: &[usize]) -> Var {
        let (n, k) = self.value().shape().matrix();
        assert_eq!(idx.len(), n, "gather_rows needs one index per row");
        let x = self.to_tensor();
        let data: Vec<f32> = idx
            .iter()
            .enumerate()
            .map(|(i, &j)| {
                assert!(j < k, "gather index {j} out of range for {k} columns");
                x.data()[i * k + j]
            })
            .collect();
        let value = Tensor::from_vec(data, &[n]).expect("shape consistent");
        let saved_idx = idx.to_vec();
        Var::from_op(
            value,
            vec![self.clone()],
            Box::new(move |g, parents| {
                let mut dx = Tensor::zeros(&[n, k]);
                for (i, &j) in saved_idx.iter().enumerate() {
                    dx.data_mut()[i * k + j] += g.data()[i];
                }
                parents[0].accum(&dx);
            }),
        )
    }

    /// Per-channel mean of an NCHW tensor: `[N,C,H,W] → [C]`.
    ///
    /// The result is differentiable with respect to the input, which is what
    /// lets the DFKD batch-norm loss push gradients into the generator.
    ///
    /// # Panics
    /// Panics if `self` is not 4-d.
    pub fn mean_channels(&self) -> Var {
        let (n, c, h, w) = self.value().shape().nchw();
        let count = (n * h * w) as f32;
        let x = self.to_tensor();
        let mut means = vec![0.0f32; c];
        let hw = h * w;
        for ni in 0..n {
            for (ci, m) in means.iter_mut().enumerate() {
                let off = (ni * c + ci) * hw;
                *m += vecmath::vec_sum(&x.data()[off..off + hw]);
            }
        }
        for m in &mut means {
            *m /= count;
        }
        let value = Tensor::from_vec(means, &[c]).expect("shape consistent");
        Var::from_op(
            value,
            vec![self.clone()],
            Box::new(move |g, parents| {
                let inv = 1.0 / count;
                let mut dx = Vec::with_capacity(n * c * hw);
                for _ni in 0..n {
                    for ci in 0..c {
                        let gv = g.data()[ci] * inv;
                        dx.extend(std::iter::repeat_n(gv, hw));
                    }
                }
                parents[0].accum(
                    &Tensor::from_vec(dx, &[n, c, h, w]).expect("shape consistent"),
                );
            }),
        )
    }

    /// Multiplies each channel of an NCHW tensor by the corresponding entry
    /// of a `[C]` variable.
    ///
    /// # Panics
    /// Panics if `self` is not 4-d or `scale` is not `[C]`.
    pub fn mul_channels(&self, scale: &Var) -> Var {
        let (n, c, h, w) = self.value().shape().nchw();
        {
            let s = scale.value();
            assert_eq!(
                s.shape().dims(),
                &[c],
                "scale must be [{c}], got {}",
                s.shape()
            );
        }
        let hw = h * w;
        let mut value = self.to_tensor();
        {
            let s = scale.value();
            for ni in 0..n {
                for ci in 0..c {
                    let sv = s.data()[ci];
                    let off = (ni * c + ci) * hw;
                    vecmath::vec_scale_inplace(&mut value.data_mut()[off..off + hw], sv);
                }
            }
        }
        Var::from_op(
            value,
            vec![self.clone(), scale.clone()],
            Box::new(move |g, parents| {
                let x = parents[0].to_tensor();
                let s = parents[1].to_tensor();
                if parents[0].requires_grad() {
                    let mut dx = vec![0.0f32; n * c * hw];
                    for ni in 0..n {
                        for ci in 0..c {
                            let sv = s.data()[ci];
                            let off = (ni * c + ci) * hw;
                            vecmath::vec_scale(
                                &g.data()[off..off + hw],
                                sv,
                                &mut dx[off..off + hw],
                            );
                        }
                    }
                    parents[0].accum(
                        &Tensor::from_vec(dx, &[n, c, h, w]).expect("shape consistent"),
                    );
                }
                if parents[1].requires_grad() {
                    let mut ds = Tensor::zeros(&[c]);
                    for ni in 0..n {
                        for ci in 0..c {
                            let off = (ni * c + ci) * hw;
                            ds.data_mut()[ci] += vecmath::vec_dot(
                                &x.data()[off..off + hw],
                                &g.data()[off..off + hw],
                            );
                        }
                    }
                    parents[1].accum(&ds);
                }
            }),
        )
    }

    /// Adds a `[C]` variable to each channel of an NCHW tensor.
    ///
    /// # Panics
    /// Panics if `self` is not 4-d or `shift` is not `[C]`.
    pub fn add_channels(&self, shift: &Var) -> Var {
        let (n, c, h, w) = self.value().shape().nchw();
        {
            let s = shift.value();
            assert_eq!(
                s.shape().dims(),
                &[c],
                "shift must be [{c}], got {}",
                s.shape()
            );
        }
        let hw = h * w;
        let mut value = self.to_tensor();
        {
            let s = shift.value();
            for ni in 0..n {
                for ci in 0..c {
                    let sv = s.data()[ci];
                    let off = (ni * c + ci) * hw;
                    vecmath::vec_add_scalar_inplace(&mut value.data_mut()[off..off + hw], sv);
                }
            }
        }
        Var::from_op(
            value,
            vec![self.clone(), shift.clone()],
            Box::new(move |g, parents| {
                parents[0].accum(g);
                if parents[1].requires_grad() {
                    let mut ds = Tensor::zeros(&[c]);
                    for ni in 0..n {
                        for ci in 0..c {
                            let off = (ni * c + ci) * hw;
                            ds.data_mut()[ci] += vecmath::vec_sum(&g.data()[off..off + hw]);
                        }
                    }
                    parents[1].accum(&ds);
                }
            }),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_and_mean() {
        let x = Var::parameter(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap());
        assert_eq!(x.sum_all().item(), 10.0);
        assert_eq!(x.mean_all().item(), 2.5);
        x.mean_all().backward();
        assert_eq!(x.grad().unwrap().data(), &[0.25; 4]);
    }

    #[test]
    fn log_softmax_rows_normalizes() {
        let x = Var::parameter(Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]).unwrap());
        let lp = x.log_softmax_rows();
        let total: f32 = lp.value().data().iter().map(|v| v.exp()).sum();
        assert!((total - 1.0).abs() < 1e-5);
    }

    #[test]
    fn gather_rows_routes_gradient() {
        let x = Var::parameter(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap());
        let y = x.gather_rows(&[1, 0]);
        assert_eq!(y.value().data(), &[2.0, 3.0]);
        y.sum_all().backward();
        assert_eq!(x.grad().unwrap().data(), &[0.0, 1.0, 1.0, 0.0]);
    }

    #[test]
    fn mean_channels_value_and_grad() {
        // x: [1, 2, 1, 2]; channel means = [1.5, 3.5].
        let x = Var::parameter(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 2, 1, 2]).unwrap());
        let m = x.mean_channels();
        assert_eq!(m.value().data(), &[1.5, 3.5]);
        m.sum_all().backward();
        assert_eq!(x.grad().unwrap().data(), &[0.5; 4]);
    }

    #[test]
    fn channel_affine_ops() {
        let x = Var::parameter(Tensor::ones(&[1, 2, 1, 2]));
        let s = Var::parameter(Tensor::from_vec(vec![2.0, 3.0], &[2]).unwrap());
        let b = Var::parameter(Tensor::from_vec(vec![0.5, -0.5], &[2]).unwrap());
        let y = x.mul_channels(&s).add_channels(&b);
        assert_eq!(y.value().data(), &[2.5, 2.5, 2.5, 2.5]);
        y.sum_all().backward();
        assert_eq!(s.grad().unwrap().data(), &[2.0, 2.0]); // sum of x per channel
        assert_eq!(b.grad().unwrap().data(), &[2.0, 2.0]); // count per channel
    }
}
