//! Differentiable linear-algebra operations on [`Var`].

use super::Var;
use crate::linalg;

impl Var {
    /// Matrix product `self[m,k] × rhs[k,n] → [m,n]`.
    ///
    /// # Panics
    /// Panics if either operand is not 2-d or the inner dimensions disagree.
    pub fn matmul(&self, rhs: &Var) -> Var {
        let value = linalg::matmul(&self.value(), &rhs.value());
        Var::from_op(
            value,
            vec![self.clone(), rhs.clone()],
            Box::new(|g, parents| {
                let a = parents[0].to_tensor();
                let b = parents[1].to_tensor();
                // dA = g × Bᵀ ; dB = Aᵀ × g
                parents[0].accum(&linalg::matmul_nt(g, &b));
                parents[1].accum(&linalg::matmul_tn(&a, g));
            }),
        )
    }

    /// Matrix product with a transposed right operand:
    /// `self[m,k] × rhs[n,k]ᵀ → [m,n]`. Used for similarity matrices.
    ///
    /// # Panics
    /// Panics if either operand is not 2-d or the shared dimension disagrees.
    pub fn matmul_nt(&self, rhs: &Var) -> Var {
        let value = linalg::matmul_nt(&self.value(), &rhs.value());
        Var::from_op(
            value,
            vec![self.clone(), rhs.clone()],
            Box::new(|g, parents| {
                let a = parents[0].to_tensor();
                let b = parents[1].to_tensor();
                // y = A Bᵀ : dA = g × B ; dB = gᵀ × A
                parents[0].accum(&linalg::matmul(g, &b));
                parents[1].accum(&linalg::matmul_tn(g, &a));
            }),
        )
    }

    /// Adds a `[D]` bias row to every row of a `[N, D]` matrix.
    ///
    /// # Panics
    /// Panics if `self` is not 2-d or `bias` is not `[D]`.
    pub fn add_rows(&self, bias: &Var) -> Var {
        let (n, d) = self.value().shape().matrix();
        {
            let b = bias.value();
            assert_eq!(
                b.shape().dims(),
                &[d],
                "bias must be [{d}], got {}",
                b.shape()
            );
        }
        let mut value = self.to_tensor();
        {
            let bd = bias.value();
            let vd = value.data_mut();
            for i in 0..n {
                for (v, &b) in vd[i * d..(i + 1) * d].iter_mut().zip(bd.data()) {
                    *v += b;
                }
            }
        }
        Var::from_op(
            value,
            vec![self.clone(), bias.clone()],
            Box::new(move |g, parents| {
                parents[0].accum(g);
                if parents[1].requires_grad() {
                    let mut db = crate::Tensor::zeros(&[d]);
                    let dbd = db.data_mut();
                    for i in 0..n {
                        for (j, &gv) in g.data()[i * d..(i + 1) * d].iter().enumerate() {
                            dbd[j] += gv;
                        }
                    }
                    parents[1].accum(&db);
                }
            }),
        )
    }

    /// L2-normalizes each row of a `[N, D]` matrix (used before cosine
    /// similarity). Rows with tiny norms are clamped to `1e-8`.
    ///
    /// # Panics
    /// Panics if `self` is not 2-d.
    pub fn l2_normalize_rows(&self) -> Var {
        let (n, d) = self.value().shape().matrix();
        let x = self.to_tensor();
        let norms: Vec<f32> = (0..n)
            .map(|i| {
                let s: f32 = x.data()[i * d..(i + 1) * d].iter().map(|v| v * v).sum();
                s.sqrt().max(1e-8)
            })
            .collect();
        let mut value = x.clone();
        for (i, &nm) in norms.iter().enumerate() {
            let inv = 1.0 / nm;
            for v in &mut value.data_mut()[i * d..(i + 1) * d] {
                *v *= inv;
            }
        }
        let y = value.clone();
        Var::from_op(
            value,
            vec![self.clone()],
            Box::new(move |g, parents| {
                // dx_i = (g_i - y_i <y_i, g_i>) / ||x_i||, built directly.
                let mut dx = Vec::with_capacity(n * d);
                for (i, &nm) in norms.iter().enumerate() {
                    let yrow = &y.data()[i * d..(i + 1) * d];
                    let grow = &g.data()[i * d..(i + 1) * d];
                    let dot: f32 = yrow.iter().zip(grow).map(|(a, b)| a * b).sum();
                    let inv = 1.0 / nm;
                    dx.extend((0..d).map(|j| (grow[j] - yrow[j] * dot) * inv));
                }
                parents[0].accum(
                    &crate::Tensor::from_vec(dx, &[n, d]).expect("shape consistent"),
                );
            }),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tensor;

    #[test]
    fn matmul_gradients() {
        // y = sum(A × B); dA = 1 Bᵀ-row-sums, dB = Aᵀ 1.
        let a = Var::parameter(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap());
        let b = Var::parameter(Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]).unwrap());
        a.matmul(&b).sum_all().backward();
        assert_eq!(a.grad().unwrap().data(), &[11.0, 15.0, 11.0, 15.0]);
        assert_eq!(b.grad().unwrap().data(), &[4.0, 4.0, 6.0, 6.0]);
    }

    #[test]
    fn normalize_rows_produces_unit_rows_and_tangent_gradient() {
        let x = Var::parameter(Tensor::from_vec(vec![3.0, 4.0], &[1, 2]).unwrap());
        let y = x.l2_normalize_rows();
        assert!((y.value().data()[0] - 0.6).abs() < 1e-6);
        assert!((y.value().data()[1] - 0.8).abs() < 1e-6);
        // Gradient of sum(y) must be orthogonal to y.
        y.sum_all().backward();
        let g = x.grad().unwrap();
        let dot = g.data()[0] * 0.6 + g.data()[1] * 0.8;
        assert!(dot.abs() < 1e-6, "gradient not tangent: {dot}");
    }

    #[test]
    fn add_rows_bias_gradient_sums_over_rows() {
        let x = Var::parameter(Tensor::zeros(&[3, 2]));
        let b = Var::parameter(Tensor::zeros(&[2]));
        x.add_rows(&b).sum_all().backward();
        assert_eq!(b.grad().unwrap().data(), &[3.0, 3.0]);
        assert_eq!(x.grad().unwrap().data(), &[1.0; 6]);
    }
}
