//! Matrix-multiplication kernels.
//!
//! The kernels use an `i-k-j` loop order so the inner loop is a contiguous
//! saxpy that the compiler auto-vectorizes, and split the row range across
//! two threads (via `crossbeam::scope`) once the problem is large enough to
//! amortize thread startup.

use crate::tensor::Tensor;

/// FLOP threshold above which the kernel splits rows across two threads.
const PARALLEL_FLOP_THRESHOLD: usize = 1 << 21;

/// Raw GEMM: `out[m,n] += a[m,k] * b[k,n]` over flat row-major slices.
fn gemm_rows(a: &[f32], b: &[f32], out: &mut [f32], rows: std::ops::Range<usize>, k: usize, n: usize) {
    for i in rows {
        let arow = &a[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        for (p, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let brow = &b[p * n..(p + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                *o += av * bv;
            }
        }
    }
}

/// Multiplies flat row-major matrices: `a[m,k] × b[k,n] → out[m,n]`.
///
/// `out` must be zero-initialized by the caller if accumulation from zero is
/// desired; this routine accumulates into `out`.
pub fn matmul_into(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    if m * k * n >= PARALLEL_FLOP_THRESHOLD && m >= 2 {
        let mid = m / 2;
        let (out_lo, out_hi) = out.split_at_mut(mid * n);
        crossbeam::scope(|s| {
            s.spawn(|_| gemm_rows(a, b, out_lo, 0..mid, k, n));
            // `gemm_rows` indexes `a` by absolute row, so shift the view.
            let a_hi = &a[mid * k..];
            gemm_rows(a_hi, b, out_hi, 0..(m - mid), k, n);
        })
        .expect("matmul worker thread panicked");
    } else {
        gemm_rows(a, b, out, 0..m, k, n);
    }
}

/// `a[m,k] × b[k,n] → [m,n]` on [`Tensor`]s.
///
/// # Panics
/// Panics if either operand is not 2-d or the inner dimensions disagree.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, ka) = a.shape().matrix();
    let (kb, n) = b.shape().matrix();
    assert_eq!(
        ka, kb,
        "matmul inner dimensions disagree: {} vs {}",
        ka, kb
    );
    let mut out = Tensor::zeros(&[m, n]);
    matmul_into(a.data(), b.data(), out.data_mut(), m, ka, n);
    out
}

/// `a[m,k] × b[n,k]ᵀ → [m,n]` — matmul with a transposed right operand,
/// used for row-wise cosine-similarity matrices.
///
/// # Panics
/// Panics if either operand is not 2-d or the shared dimension disagrees.
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, ka) = a.shape().matrix();
    let (n, kb) = b.shape().matrix();
    assert_eq!(
        ka, kb,
        "matmul_nt shared dimension disagrees: {} vs {}",
        ka, kb
    );
    let k = ka;
    let mut out = Tensor::zeros(&[m, n]);
    let (ad, bd, od) = (a.data(), b.data(), out.data_mut());
    for i in 0..m {
        let arow = &ad[i * k..(i + 1) * k];
        for j in 0..n {
            let brow = &bd[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&x, &y) in arow.iter().zip(brow.iter()) {
                acc += x * y;
            }
            od[i * n + j] = acc;
        }
    }
    out
}

/// `a[m,k]ᵀ × b[m,n] → [k,n]` — matmul with a transposed left operand,
/// used by backward passes.
///
/// # Panics
/// Panics if either operand is not 2-d or the shared dimension disagrees.
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Tensor {
    let (ma, k) = a.shape().matrix();
    let (mb, n) = b.shape().matrix();
    assert_eq!(
        ma, mb,
        "matmul_tn shared dimension disagrees: {} vs {}",
        ma, mb
    );
    let m = ma;
    let mut out = Tensor::zeros(&[k, n]);
    let (ad, bd, od) = (a.data(), b.data(), out.data_mut());
    // out[p, j] = sum_i a[i, p] * b[i, j]; iterate i outermost so both reads
    // stream contiguously.
    for i in 0..m {
        let arow = &ad[i * k..(i + 1) * k];
        let brow = &bd[i * n..(i + 1) * n];
        for (p, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let orow = &mut od[p * n..(p + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                *o += av * bv;
            }
        }
    }
    out
}

/// Transposes a 2-d tensor.
///
/// # Panics
/// Panics if the tensor is not 2-d.
pub fn transpose(a: &Tensor) -> Tensor {
    let (m, n) = a.shape().matrix();
    let mut out = Tensor::zeros(&[n, m]);
    let (ad, od) = (a.data(), out.data_mut());
    for i in 0..m {
        for j in 0..n {
            od[j * m + i] = ad[i * n + j];
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(data: Vec<f32>, dims: &[usize]) -> Tensor {
        Tensor::from_vec(data, dims).unwrap()
    }

    #[test]
    fn matmul_2x2() {
        let a = t(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = t(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
        assert_eq!(matmul(&a, &b).data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = t(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = t(vec![1.0, 0.0, -1.0, 2.0, 1.0, 0.5], &[2, 3]);
        let via_nt = matmul_nt(&a, &b);
        let via_t = matmul(&a, &transpose(&b));
        assert_eq!(via_nt.data(), via_t.data());
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let a = t(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2]);
        let b = t(vec![1.0, 0.0, -1.0, 2.0, 1.0, 0.5], &[3, 2]);
        let via_tn = matmul_tn(&a, &b);
        let via_t = matmul(&transpose(&a), &b);
        for (x, y) in via_tn.data().iter().zip(via_t.data()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn large_matmul_uses_threads_and_matches_small_kernel() {
        // Large enough to cross PARALLEL_FLOP_THRESHOLD.
        let m = 128;
        let k = 128;
        let n = 160;
        let a = Tensor::full(&[m, k], 0.5);
        let b = Tensor::full(&[k, n], 2.0);
        let out = matmul(&a, &b);
        // Every entry is sum over k of 0.5*2.0 = k.
        for &v in out.data() {
            assert!((v - k as f32).abs() < 1e-3);
        }
    }
}
