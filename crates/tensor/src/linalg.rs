//! Matrix-multiplication front-ends.
//!
//! All three layout variants (`NN`, `NT`, `TN`) are thin wrappers over the
//! single blocked kernel in [`crate::gemm`]; transposition is expressed as a
//! stride swap, so no operand is ever materialized transposed. The blocked
//! kernel handles cache tiling, register blocking, and pool-based
//! parallelism — see that module for the details.

use crate::gemm::gemm;
use crate::tensor::Tensor;

/// Multiplies flat row-major matrices: `a[m,k] × b[k,n] → out[m,n]`,
/// accumulating into `out` (callers that want `C = A·B` pass a zeroed
/// buffer, matching the historical contract of this function).
pub fn matmul_into(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    gemm(m, n, k, a, (k, 1), b, (n, 1), out, true);
}

/// `a[m,k] × b[k,n] → [m,n]` on [`Tensor`]s.
///
/// # Panics
/// Panics if either operand is not 2-d or the inner dimensions disagree.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, ka) = a.shape().matrix();
    let (kb, n) = b.shape().matrix();
    assert_eq!(
        ka, kb,
        "matmul inner dimensions disagree: {} vs {}",
        ka, kb
    );
    let mut out = Tensor::zeros(&[m, n]);
    gemm(m, n, ka, a.data(), (ka, 1), b.data(), (n, 1), out.data_mut(), false);
    out
}

/// `a[m,k] × b[n,k]ᵀ → [m,n]` — matmul with a transposed right operand,
/// used for row-wise cosine-similarity matrices.
///
/// # Panics
/// Panics if either operand is not 2-d or the shared dimension disagrees.
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, ka) = a.shape().matrix();
    let (n, kb) = b.shape().matrix();
    assert_eq!(
        ka, kb,
        "matmul_nt shared dimension disagrees: {} vs {}",
        ka, kb
    );
    let k = ka;
    let mut out = Tensor::zeros(&[m, n]);
    // B stored [n, k] row-major; viewed as [k, n] via strides (1, k).
    gemm(m, n, k, a.data(), (k, 1), b.data(), (1, k), out.data_mut(), false);
    out
}

/// `a[m,k]ᵀ × b[m,n] → [k,n]` — matmul with a transposed left operand,
/// used by backward passes.
///
/// # Panics
/// Panics if either operand is not 2-d or the shared dimension disagrees.
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Tensor {
    let (ma, k) = a.shape().matrix();
    let (mb, n) = b.shape().matrix();
    assert_eq!(
        ma, mb,
        "matmul_tn shared dimension disagrees: {} vs {}",
        ma, mb
    );
    let m = ma;
    let mut out = Tensor::zeros(&[k, n]);
    // A stored [m, k] row-major; its transpose [k, m] is strides (1, k).
    gemm(k, n, m, a.data(), (1, k), b.data(), (n, 1), out.data_mut(), false);
    out
}

/// Transposes a 2-d tensor.
///
/// # Panics
/// Panics if the tensor is not 2-d.
pub fn transpose(a: &Tensor) -> Tensor {
    let (m, n) = a.shape().matrix();
    let ad = a.data();
    let mut out = Vec::with_capacity(m * n);
    for j in 0..n {
        out.extend((0..m).map(|i| ad[i * n + j]));
    }
    Tensor::from_vec(out, &[n, m]).expect("transpose preserves element count")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(data: Vec<f32>, dims: &[usize]) -> Tensor {
        Tensor::from_vec(data, dims).unwrap()
    }

    #[test]
    fn matmul_2x2() {
        let a = t(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = t(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
        assert_eq!(matmul(&a, &b).data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = t(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = t(vec![1.0, 0.0, -1.0, 2.0, 1.0, 0.5], &[2, 3]);
        let via_nt = matmul_nt(&a, &b);
        let via_t = matmul(&a, &transpose(&b));
        assert_eq!(via_nt.data(), via_t.data());
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let a = t(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2]);
        let b = t(vec![1.0, 0.0, -1.0, 2.0, 1.0, 0.5], &[3, 2]);
        let via_tn = matmul_tn(&a, &b);
        let via_t = matmul(&transpose(&a), &b);
        for (x, y) in via_tn.data().iter().zip(via_t.data()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn large_matmul_uses_threads_and_matches_small_kernel() {
        // Large enough to cross the kernel's parallel threshold.
        let m = 128;
        let k = 128;
        let n = 160;
        let a = Tensor::full(&[m, k], 0.5);
        let b = Tensor::full(&[k, n], 2.0);
        let out = matmul(&a, &b);
        // Every entry is sum over k of 0.5*2.0 = k.
        for &v in out.data() {
            assert!((v - k as f32).abs() < 1e-3);
        }
    }

    #[test]
    fn nan_propagates_through_matmul_even_with_zero_on_the_left() {
        // Regression: the seed's zero-skip branch dropped the entire k-slice
        // whenever the left operand was 0.0, so a NaN (or inf) in B was
        // silently swallowed. IEEE semantics require 0.0 * NaN = NaN.
        let a = t(vec![0.0, 1.0], &[1, 2]);
        let b = t(vec![f32::NAN, 2.0, 3.0, 4.0], &[2, 2]);
        let out = matmul(&a, &b);
        assert!(out.data()[0].is_nan(), "matmul hid a NaN behind a zero");
        assert_eq!(out.data()[1], 4.0);

        // Same through the transposed variants.
        let a_t = t(vec![0.0, 1.0], &[2, 1]);
        assert!(matmul_tn(&a_t, &b).data()[0].is_nan());
        let b_nt = transpose(&b);
        assert!(matmul_nt(&a, &b_nt).data()[0].is_nan());

        // And inf: 0 * inf = NaN, not 0.
        let binf = t(vec![f32::INFINITY, 2.0, 3.0, 4.0], &[2, 2]);
        assert!(matmul(&a, &binf).data()[0].is_nan());
    }
}
