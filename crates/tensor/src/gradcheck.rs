//! Finite-difference gradient checking.
//!
//! Used by the test suites of every crate in the workspace to validate
//! backward implementations: a scalar function of a set of leaf parameters
//! is differentiated both analytically (via [`crate::Var::backward`]) and
//! numerically (central differences), and the relative error is compared
//! against a tolerance.

use crate::autograd::Var;
use crate::tensor::Tensor;

/// Result of a gradient check: the largest relative error observed over all
/// checked coordinates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GradCheckReport {
    /// Maximum relative error across parameters and coordinates.
    pub max_rel_err: f32,
    /// Number of coordinates checked.
    pub coords_checked: usize,
}

impl GradCheckReport {
    /// Whether the check passed at tolerance `tol`.
    pub fn passes(&self, tol: f32) -> bool {
        self.max_rel_err <= tol
    }
}

/// Checks the analytic gradient of `f` with respect to `params` by central
/// finite differences with step `eps`.
///
/// `f` must be a pure function of the parameter *values*: it is re-invoked
/// many times with perturbed values and must rebuild its graph each time and
/// return a scalar [`Var`].
///
/// # Panics
/// Panics if `f` returns a non-scalar variable.
///
/// ```
/// use cae_tensor::{Tensor, Var};
/// use cae_tensor::gradcheck::check_gradients;
///
/// let w = Var::parameter(Tensor::from_vec(vec![0.5, -0.3], &[2]).unwrap());
/// let report = check_gradients(std::slice::from_ref(&w), 1e-3, || w.square().sum_all());
/// assert!(report.passes(1e-2));
/// ```
pub fn check_gradients(
    params: &[Var],
    eps: f32,
    mut f: impl FnMut() -> Var,
) -> GradCheckReport {
    // Analytic pass.
    for p in params {
        p.zero_grad();
    }
    let out = f();
    assert!(
        out.value().numel() == 1,
        "gradient check requires a scalar output"
    );
    out.backward();
    let analytic: Vec<Tensor> = params
        .iter()
        .map(|p| p.grad().unwrap_or_else(|| Tensor::zeros(&p.dims())))
        .collect();

    // Numeric pass.
    let mut max_rel = 0.0f32;
    let mut coords = 0usize;
    for (pi, p) in params.iter().enumerate() {
        let n = p.value().numel();
        for i in 0..n {
            let orig = p.value().data()[i];
            p.update_value(|t| t.data_mut()[i] = orig + eps);
            let hi = f().item();
            p.update_value(|t| t.data_mut()[i] = orig - eps);
            let lo = f().item();
            p.update_value(|t| t.data_mut()[i] = orig);
            let numeric = (hi - lo) / (2.0 * eps);
            let a = analytic[pi].data()[i];
            let denom = a.abs().max(numeric.abs()).max(1.0);
            let rel = (a - numeric).abs() / denom;
            if rel > max_rel {
                max_rel = rel;
            }
            coords += 1;
        }
    }
    for p in params {
        p.zero_grad();
    }
    GradCheckReport {
        max_rel_err: max_rel,
        coords_checked: coords,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::Conv2dSpec;
    use crate::rng::TensorRng;

    #[test]
    fn quadratic_passes() {
        let w = Var::parameter(Tensor::from_vec(vec![1.0, -2.0, 0.5], &[3]).unwrap());
        let r = check_gradients(std::slice::from_ref(&w), 1e-3, || w.square().sum_all());
        assert!(r.passes(1e-3), "max rel err {}", r.max_rel_err);
    }

    #[test]
    fn matmul_chain_passes() {
        let mut rng = TensorRng::seed_from(3);
        let a = Var::parameter(rng.normal_tensor(&[3, 4], 0.0, 1.0));
        let b = Var::parameter(rng.normal_tensor(&[4, 2], 0.0, 1.0));
        let r = check_gradients(&[a.clone(), b.clone()], 1e-3, || {
            a.matmul(&b).tanh().square().mean_all()
        });
        assert!(r.passes(5e-3), "max rel err {}", r.max_rel_err);
    }

    #[test]
    fn conv_pool_chain_passes() {
        let mut rng = TensorRng::seed_from(7);
        let x = Var::parameter(rng.normal_tensor(&[2, 2, 5, 5], 0.0, 1.0));
        let w = Var::parameter(rng.normal_tensor(&[3, 2, 3, 3], 0.0, 0.5));
        let b = Var::parameter(rng.normal_tensor(&[3], 0.0, 0.1));
        let r = check_gradients(&[x.clone(), w.clone(), b.clone()], 1e-3, || {
            x.conv2d(&w, Some(&b), Conv2dSpec::new(3, 2, 1))
                .leaky_relu(0.2)
                .global_avg_pool()
                .square()
                .mean_all()
        });
        assert!(r.passes(5e-3), "max rel err {}", r.max_rel_err);
    }

    #[test]
    fn log_softmax_gather_passes() {
        let mut rng = TensorRng::seed_from(11);
        let x = Var::parameter(rng.normal_tensor(&[4, 5], 0.0, 1.0));
        let r = check_gradients(std::slice::from_ref(&x), 1e-3, || {
            x.log_softmax_rows().gather_rows(&[0, 2, 4, 1]).mean_all().neg()
        });
        assert!(r.passes(5e-3), "max rel err {}", r.max_rel_err);
    }

    #[test]
    fn channel_stats_pass() {
        let mut rng = TensorRng::seed_from(13);
        let x = Var::parameter(rng.normal_tensor(&[2, 3, 4, 4], 0.0, 1.0));
        let g = Var::parameter(rng.normal_tensor(&[3], 1.0, 0.1));
        let r = check_gradients(&[x.clone(), g.clone()], 1e-3, || {
            let mu = x.mean_channels();
            let centered = x.add_channels(&mu.neg());
            let var = centered.square().mean_channels();
            let inv_std = var.add_scalar(1e-5).powf(-0.5);
            centered.mul_channels(&inv_std).mul_channels(&g).square().mean_all()
        });
        assert!(r.passes(1e-2), "max rel err {}", r.max_rel_err);
    }

    #[test]
    fn normalize_rows_passes() {
        let mut rng = TensorRng::seed_from(17);
        let x = Var::parameter(rng.normal_tensor(&[3, 4], 0.0, 1.0));
        let y = Var::parameter(rng.normal_tensor(&[3, 4], 0.0, 1.0));
        let r = check_gradients(&[x.clone(), y.clone()], 1e-3, || {
            x.l2_normalize_rows()
                .matmul_nt(&y.l2_normalize_rows())
                .mean_all()
        });
        assert!(r.passes(1e-2), "max rel err {}", r.max_rel_err);
    }
}
