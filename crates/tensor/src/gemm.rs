//! Blocked GEMM: the single matrix-multiply kernel behind every dense and
//! convolutional layer.
//!
//! The seed carried three divergent hand-rolled triple loops (`matmul`,
//! `matmul_nt`, `matmul_tn`) plus two more inside the conv backward pass,
//! each with per-element `if v == 0.0 { continue }` branches that (a) cost a
//! compare per multiply and (b) silently swallowed NaN/inf from the skipped
//! operand. This module replaces all of them with one cache-tiled kernel:
//!
//! * **Layouts via strides** — operands are described by `(row_stride,
//!   col_stride)` pairs, so NN, NT and TN products are the same code path;
//!   transposition happens for free during packing.
//! * **Packing** — A is repacked into `MR`-row panels and B into `NR`-column
//!   panels, both contiguous in the micro-kernel's access order and
//!   zero-padded to tile multiples, so the inner loop is branch-free and
//!   sequential regardless of the original layout.
//! * **Register micro-kernel** — an `MR × NR = 4 × 16` f32 accumulator
//!   block ([`microkernel`]) written over the [`crate::simd::SimdF32`]
//!   trait: each output row is two 8-lane vectors updated with fused
//!   multiply-adds, dispatched at runtime to AVX2+FMA / NEON / the scalar
//!   fallback. Per output element the k-loop is one sequential FMA chain,
//!   so the result is bit-identical across backends and tile shapes (see
//!   the determinism policy in [`crate::simd`]).
//! * **Cache blocking** — `mc/KC/nc` outer loops keep the packed A block in
//!   L2 and the packed B panel streaming through L1. The row/column block
//!   sizes and the parallel/serial cutoff come from
//!   [`crate::autotune::plan_gemm`]: measured once per shape class when
//!   autotuning is on, the static defaults otherwise. The depth block `KC`
//!   is fixed — tuning it would change accumulation grouping and bits.
//! * **Adaptive parallelism** — row blocks go through
//!   [`crate::pool::parallel_for`] when the plan says so, sized from the
//!   calling thread's budget ([`crate::pool::current_parallelism`]), so a
//!   GEMM inside a budgeted experiment cell only recruits its cell's share
//!   of the pool; on single-core hosts or small products everything runs
//!   inline.
//!
//! Packing buffers come from [`crate::workspace`], so steady-state calls
//! allocate nothing.

use crate::autotune;
use crate::pool;
use crate::simd::{self, simd_dispatch, SimdF32, LANES};
use crate::workspace::{self, Slot};

/// Micro-kernel rows: C is updated in `MR x NR` register tiles.
const MR: usize = 4;
/// Micro-kernel columns: two 8-lane SIMD vectors per row (8 accumulator
/// registers total on AVX2, half the register file).
const NR: usize = 2 * LANES;
/// Depth-block size. Fixed (never autotuned): splitting k into blocks
/// stores and re-adds partial products, so the block size participates in
/// the f32 accumulation order — see the determinism policy in
/// [`crate::autotune`].
const KC: usize = 256;

/// Strides describing how a logical `rows x cols` operand maps onto its
/// backing slice: element `(i, j)` lives at `i * row_stride + j * col_stride`.
///
/// A plain row-major matrix is `(cols, 1)`; its transpose view is
/// `(1, cols)` over the same slice — which is how [`gemm`] serves NT and TN
/// products without materializing a transpose.
pub type Strides = (usize, usize);

/// Raw pointer wrapper so disjoint row blocks of C can be written from pool
/// workers.
#[derive(Clone, Copy)]
struct SendPtr(*mut f32);
// SAFETY: tasks write disjoint row ranges of C (see `gemm`).
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

/// `C = A·B` (or `C += A·B` when `accumulate`), with `A` logically `m x k`
/// and `B` logically `k x n` under the given strides, and `C` row-major
/// `m x n` contiguous.
///
/// NaN and inf propagate exactly as IEEE multiply-add dictates — there is no
/// zero-skip short cut. Accumulation order differs from the naive triple
/// loop, so results may differ from [`gemm_reference`] by normal f32
/// rounding.
///
/// # Panics
/// Panics if a slice is too short for its logical extent.
#[allow(clippy::too_many_arguments)] // BLAS-style signature
pub fn gemm(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    (ars, acs): Strides,
    b: &[f32],
    (brs, bcs): Strides,
    c: &mut [f32],
    accumulate: bool,
) {
    assert!(c.len() >= m * n, "C too short: {} < {}", c.len(), m * n);
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        // Empty inner dimension: the product is the zero matrix.
        if !accumulate {
            c[..m * n].fill(0.0);
        }
        return;
    }
    assert!(
        a.len() > (m - 1) * ars + (k - 1) * acs,
        "A too short for {m}x{k} with strides ({ars},{acs})"
    );
    assert!(
        b.len() > (k - 1) * brs + (n - 1) * bcs,
        "B too short for {k}x{n} with strides ({brs},{bcs})"
    );
    cae_trace::counters(&[
        ("gemm.calls", 1),
        ("gemm.flops", (2 * m * n * k) as u64),
        // Lets `cae_trace::profile` report which SIMD backend produced the
        // run's GEMM throughput.
        (simd::active_backend().counter_key(), 1),
    ]);
    // Stats-only span: exact per-call timing without a raw event per GEMM
    // (millions per run would instantly hit the per-thread event cap).
    let _gemm_span = cae_trace::span_stat("gemm");

    // Blocking and the parallel cutoff come from the autotuner, sized
    // against this thread's budget (its cell's share of the pool, or the
    // whole pool at top level). While the shape class is warming up the
    // call itself is the benchmark: time it and feed the sample back.
    let budget = pool::current_parallelism();
    let plan = autotune::plan_gemm(m, n, k, budget);
    let timer = plan.measure.map(|_| std::time::Instant::now());
    let autotune::GemmConfig {
        mc: mc_max,
        nc: nc_max,
        threads,
    } = plan.config;

    // Unzeroed: `pack_b` overwrites every element of the region the
    // micro-kernel reads (padding included).
    let mut bbuf =
        workspace::take_unzeroed(Slot::PackB, n.min(nc_max).div_ceil(NR) * NR * k.min(KC));
    let cptr = SendPtr(c.as_mut_ptr());

    for jc in (0..n).step_by(nc_max) {
        let nc = nc_max.min(n - jc);
        for pc in (0..k).step_by(KC) {
            let kc = KC.min(k - pc);
            pack_b(&mut bbuf, b, brs, bcs, pc, kc, jc, nc);
            // On the first k-block, overwrite C unless the caller asked to
            // accumulate; later k-blocks always accumulate.
            let add = accumulate || pc > 0;

            // Shrink row blocks when parallel so every thread gets work,
            // but never below one micro-tile.
            let mc_step = if threads > 1 {
                mc_max.min(m.div_ceil(threads).next_multiple_of(MR))
            } else {
                mc_max
            };
            let blocks = m.div_ceil(mc_step);
            let run = |blk: usize| {
                // Capture the whole wrapper, not its raw-pointer field
                // (disjoint field capture would lose Send/Sync).
                let cptr = &cptr;
                let ic = blk * mc_step;
                let mc = mc_step.min(m - ic);
                // SAFETY: block `blk` touches only C rows [ic, ic+mc), and
                // blocks partition the row range, so writes are disjoint;
                // the pointer outlives the call.
                unsafe {
                    process_row_block(
                        ic, mc, pc, kc, jc, nc, a, ars, acs, &bbuf, cptr.0, n, add,
                    );
                }
            };
            if threads > 1 && blocks > 1 {
                pool::parallel_for(blocks, run);
            } else {
                for blk in 0..blocks {
                    run(blk);
                }
            }
        }
    }
    workspace::give(Slot::PackB, bbuf);
    if let (Some(candidate), Some(timer)) = (plan.measure, timer) {
        autotune::record(m, n, k, budget, candidate, timer.elapsed());
    }
}

/// Reference implementation: the seed's naive i-k-j saxpy loop (minus its
/// NaN-swallowing zero-skip), over the same strided-layout interface.
///
/// Kept as the ground truth for property tests and as the baseline the
/// benchmark suite measures speedups against.
#[allow(clippy::too_many_arguments)] // BLAS-style signature
pub fn gemm_reference(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    (ars, acs): Strides,
    b: &[f32],
    (brs, bcs): Strides,
    c: &mut [f32],
    accumulate: bool,
) {
    assert!(c.len() >= m * n, "C too short: {} < {}", c.len(), m * n);
    if !accumulate {
        c[..m * n].fill(0.0);
    }
    for i in 0..m {
        for p in 0..k {
            let av = a[i * ars + p * acs];
            let row = &mut c[i * n..(i + 1) * n];
            for (j, cv) in row.iter_mut().enumerate() {
                *cv += av * b[p * brs + j * bcs];
            }
        }
    }
}

/// Packs `A[ic..ic+mc, pc..pc+kc]` into MR-row panels: panel `p` holds rows
/// `ic + p*MR ..`, stored k-major so the micro-kernel reads `MR` values per
/// step contiguously. Rows past `mc` are zero-filled.
///
/// When `ars == 1` (a transposed-A view, the `matmul_tn` backward path) the
/// `MR` values of one k-step are already contiguous in the source, so each
/// step is a `memcpy` instead of a strided gather.
#[allow(clippy::too_many_arguments)] // BLAS-style signature
fn pack_a(
    dst: &mut [f32],
    a: &[f32],
    ars: usize,
    acs: usize,
    ic: usize,
    mc: usize,
    pc: usize,
    kc: usize,
) {
    let panels = mc.div_ceil(MR);
    if ars == 1 {
        for p in 0..panels {
            let panel = &mut dst[p * kc * MR..(p + 1) * kc * MR];
            let row0 = p * MR;
            let rows = MR.min(mc - row0);
            if rows == MR {
                // Full panel: a fixed `MR`-length copy per k-step compiles
                // to plain vector moves (a runtime-length copy_from_slice
                // is an outlined memcpy call, which dominates small
                // products).
                for (kk, step) in panel.chunks_exact_mut(MR).enumerate() {
                    let src = ic + row0 + (pc + kk) * acs;
                    step.copy_from_slice(&a[src..src + MR]);
                }
            } else {
                for kk in 0..kc {
                    let src = ic + row0 + (pc + kk) * acs;
                    let step = &mut panel[kk * MR..(kk + 1) * MR];
                    step[..rows].copy_from_slice(&a[src..src + rows]);
                    step[rows..].fill(0.0);
                }
            }
        }
        return;
    }
    if acs == 1 {
        // Row-major A (every forward matmul and the NT backward path): each
        // source row is contiguous in k, so fill the panel one row-lane at a
        // time with contiguous reads and a fixed write stride of `MR`.
        for p in 0..panels {
            let panel = &mut dst[p * kc * MR..(p + 1) * kc * MR];
            let row0 = p * MR;
            let rows = MR.min(mc - row0);
            for r in 0..MR {
                if r < rows {
                    let src = &a[(ic + row0 + r) * ars + pc..][..kc];
                    for (step, &v) in panel.chunks_exact_mut(MR).zip(src) {
                        step[r] = v;
                    }
                } else {
                    for step in panel.chunks_exact_mut(MR) {
                        step[r] = 0.0;
                    }
                }
            }
        }
        return;
    }
    for p in 0..panels {
        let panel = &mut dst[p * kc * MR..(p + 1) * kc * MR];
        for kk in 0..kc {
            for r in 0..MR {
                let row = p * MR + r;
                panel[kk * MR + r] = if row < mc {
                    a[(ic + row) * ars + (pc + kk) * acs]
                } else {
                    0.0
                };
            }
        }
    }
}

/// Packs `B[pc..pc+kc, jc..jc+nc]` into NR-column panels, k-major, columns
/// past `nc` zero-filled.
///
/// When `bcs == 1` (row-major B — every forward matmul and the im2col conv
/// product) each k-step of a panel is a contiguous `NR`-wide run of the
/// source row, so packing degenerates to `memcpy` + zero-pad.
#[allow(clippy::too_many_arguments)] // BLAS-style signature
fn pack_b(
    dst: &mut [f32],
    b: &[f32],
    brs: usize,
    bcs: usize,
    pc: usize,
    kc: usize,
    jc: usize,
    nc: usize,
) {
    let panels = nc.div_ceil(NR);
    if bcs == 1 {
        for q in 0..panels {
            let panel = &mut dst[q * kc * NR..(q + 1) * kc * NR];
            let col0 = q * NR;
            let cols = NR.min(nc - col0);
            if cols == NR {
                // Full panel: fixed `NR`-length copies, same rationale as
                // the full-panel path in `pack_a`.
                for (kk, step) in panel.chunks_exact_mut(NR).enumerate() {
                    let src = (pc + kk) * brs + jc + col0;
                    step.copy_from_slice(&b[src..src + NR]);
                }
            } else {
                for kk in 0..kc {
                    let src = (pc + kk) * brs + jc + col0;
                    let step = &mut panel[kk * NR..(kk + 1) * NR];
                    step[..cols].copy_from_slice(&b[src..src + cols]);
                    step[cols..].fill(0.0);
                }
            }
        }
        return;
    }
    if brs == 1 {
        // Transposed-B view (the NT product): each source column is
        // contiguous in k, so packing is a pure transpose. Full panels go
        // through the 8x8 in-register transpose when AVX2 is active (pure
        // data movement, so the packed bytes are identical to the scalar
        // path); everything else falls back to one column-lane at a time
        // with contiguous reads and a fixed write stride of `NR`.
        for q in 0..panels {
            let panel = &mut dst[q * kc * NR..(q + 1) * kc * NR];
            let col0 = q * NR;
            let cols = NR.min(nc - col0);
            let mut k_done = 0;
            #[cfg(target_arch = "x86_64")]
            if cols == NR && simd::active_backend() == simd::Backend::Avx2 {
                let blocks = kc / 8;
                for g in 0..NR / 8 {
                    for blk in 0..blocks {
                        let kk = blk * 8;
                        // SAFETY: AVX2 was runtime-detected; the deepest
                        // load reads b[pc+kk+7 + (jc+col0+g*8+7)*bcs],
                        // inside the `(k-1)*brs + (n-1)*bcs` extent asserted
                        // by `gemm`; the deepest store is within `panel`.
                        unsafe {
                            transpose8x8_avx2(
                                b.as_ptr().add(pc + kk + (jc + col0 + g * 8) * bcs),
                                bcs,
                                panel.as_mut_ptr().add(kk * NR + g * 8),
                                NR,
                            );
                        }
                    }
                }
                k_done = blocks * 8;
            }
            for j in 0..NR {
                if j < cols {
                    let src = &b[pc + (jc + col0 + j) * bcs..][..kc];
                    for (step, &v) in panel[k_done * NR..].chunks_exact_mut(NR).zip(&src[k_done..])
                    {
                        step[j] = v;
                    }
                } else {
                    for step in panel.chunks_exact_mut(NR) {
                        step[j] = 0.0;
                    }
                }
            }
        }
        return;
    }
    for q in 0..panels {
        let panel = &mut dst[q * kc * NR..(q + 1) * kc * NR];
        for kk in 0..kc {
            for j in 0..NR {
                let col = q * NR + j;
                panel[kk * NR + j] = if col < nc {
                    b[(pc + kk) * brs + (jc + col) * bcs]
                } else {
                    0.0
                };
            }
        }
    }
}

/// Transposes an 8x8 f32 block: reads 8 rows of 8 at `src + i*src_stride`,
/// writes 8 rows of 8 at `dst + i*dst_stride` with rows and columns swapped.
/// Standard unpack/shuffle/permute ladder; used by [`pack_b`] for
/// transposed-B (NT) packing, where it replaces 64 strided scalar moves
/// with 8 vector loads and stores.
///
/// # Safety
/// Requires AVX2 (runtime-detected by the caller) and `src`/`dst` valid for
/// the strided 8x8 reads/writes described above.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn transpose8x8_avx2(src: *const f32, src_stride: usize, dst: *mut f32, dst_stride: usize) {
    use std::arch::x86_64::*;
    unsafe {
        let r0 = _mm256_loadu_ps(src);
        let r1 = _mm256_loadu_ps(src.add(src_stride));
        let r2 = _mm256_loadu_ps(src.add(2 * src_stride));
        let r3 = _mm256_loadu_ps(src.add(3 * src_stride));
        let r4 = _mm256_loadu_ps(src.add(4 * src_stride));
        let r5 = _mm256_loadu_ps(src.add(5 * src_stride));
        let r6 = _mm256_loadu_ps(src.add(6 * src_stride));
        let r7 = _mm256_loadu_ps(src.add(7 * src_stride));
        let t0 = _mm256_unpacklo_ps(r0, r1);
        let t1 = _mm256_unpackhi_ps(r0, r1);
        let t2 = _mm256_unpacklo_ps(r2, r3);
        let t3 = _mm256_unpackhi_ps(r2, r3);
        let t4 = _mm256_unpacklo_ps(r4, r5);
        let t5 = _mm256_unpackhi_ps(r4, r5);
        let t6 = _mm256_unpacklo_ps(r6, r7);
        let t7 = _mm256_unpackhi_ps(r6, r7);
        let s0 = _mm256_shuffle_ps::<0x44>(t0, t2);
        let s1 = _mm256_shuffle_ps::<0xEE>(t0, t2);
        let s2 = _mm256_shuffle_ps::<0x44>(t1, t3);
        let s3 = _mm256_shuffle_ps::<0xEE>(t1, t3);
        let s4 = _mm256_shuffle_ps::<0x44>(t4, t6);
        let s5 = _mm256_shuffle_ps::<0xEE>(t4, t6);
        let s6 = _mm256_shuffle_ps::<0x44>(t5, t7);
        let s7 = _mm256_shuffle_ps::<0xEE>(t5, t7);
        _mm256_storeu_ps(dst, _mm256_permute2f128_ps::<0x20>(s0, s4));
        _mm256_storeu_ps(
            dst.add(dst_stride),
            _mm256_permute2f128_ps::<0x20>(s1, s5),
        );
        _mm256_storeu_ps(
            dst.add(2 * dst_stride),
            _mm256_permute2f128_ps::<0x20>(s2, s6),
        );
        _mm256_storeu_ps(
            dst.add(3 * dst_stride),
            _mm256_permute2f128_ps::<0x20>(s3, s7),
        );
        _mm256_storeu_ps(
            dst.add(4 * dst_stride),
            _mm256_permute2f128_ps::<0x31>(s0, s4),
        );
        _mm256_storeu_ps(
            dst.add(5 * dst_stride),
            _mm256_permute2f128_ps::<0x31>(s1, s5),
        );
        _mm256_storeu_ps(
            dst.add(6 * dst_stride),
            _mm256_permute2f128_ps::<0x31>(s2, s6),
        );
        _mm256_storeu_ps(
            dst.add(7 * dst_stride),
            _mm256_permute2f128_ps::<0x31>(s3, s7),
        );
    }
}

/// The register block, generic over the SIMD backend:
/// `acc[i][j] += sum_k ap[k][i] * bp[k][j]` over one packed A panel and one
/// packed B panel. Each of the `MR` output rows is two 8-lane vectors
/// updated with one fused multiply-add per k-step, so per output element
/// the whole k-loop is a single sequential FMA chain — the accumulation
/// order (and therefore the bits) is independent of backend and blocking.
#[inline(always)]
unsafe fn microkernel_impl<S: SimdF32>(
    kc: usize,
    ap: &[f32],
    bp: &[f32],
    acc: &mut [[f32; NR]; MR],
) {
    debug_assert!(ap.len() >= kc * MR && bp.len() >= kc * NR);
    unsafe {
        let mut accv = [[S::zero(); 2]; MR];
        let mut a = ap.as_ptr();
        let mut b = bp.as_ptr();
        for _ in 0..kc {
            let b0 = S::load(b);
            let b1 = S::load(b.add(LANES));
            for (i, row) in accv.iter_mut().enumerate() {
                let ai = S::splat(*a.add(i));
                row[0] = ai.mul_add(b0, row[0]);
                row[1] = ai.mul_add(b1, row[1]);
            }
            a = a.add(MR);
            b = b.add(NR);
        }
        for (vrow, out) in accv.iter().zip(acc.iter_mut()) {
            vrow[0].store(out.as_mut_ptr());
            vrow[1].store(out.as_mut_ptr().add(LANES));
        }
    }
}

simd_dispatch!(
    /// Runtime-dispatched entry to [`microkernel_impl`]: one call per
    /// `MR x NR` tile, compiled under the active backend's target features.
    fn microkernel(kc: usize, ap: &[f32], bp: &[f32], acc: &mut [[f32; NR]; MR]) =
        microkernel_impl
);

/// Runs one `mc x nc` row block: packs A once, then sweeps the micro-kernel
/// over all `MR x NR` tiles, writing (or adding) the valid region of each
/// accumulator into C.
///
/// # Safety
/// `c` must be valid for `ldc`-strided writes to rows `[ic, ic+mc)`, columns
/// `[jc, jc+nc)`, and no other thread may touch those rows concurrently.
#[allow(clippy::too_many_arguments)] // BLAS-style signature
unsafe fn process_row_block(
    ic: usize,
    mc: usize,
    pc: usize,
    kc: usize,
    jc: usize,
    nc: usize,
    a: &[f32],
    ars: usize,
    acs: usize,
    bbuf: &[f32],
    c: *mut f32,
    ldc: usize,
    add: bool,
) {
    // Unzeroed: `pack_a` overwrites the whole buffer (padding included).
    let mut abuf = workspace::take_unzeroed(Slot::PackA, mc.div_ceil(MR) * MR * kc);
    pack_a(&mut abuf, a, ars, acs, ic, mc, pc, kc);

    for q in 0..nc.div_ceil(NR) {
        let bp = &bbuf[q * kc * NR..(q + 1) * kc * NR];
        let cols = NR.min(nc - q * NR);
        for p in 0..mc.div_ceil(MR) {
            let ap = &abuf[p * kc * MR..(p + 1) * kc * MR];
            let rows = MR.min(mc - p * MR);
            let mut acc = [[0.0f32; NR]; MR];
            microkernel(kc, ap, bp, &mut acc);
            let row0 = ic + p * MR;
            let col0 = jc + q * NR;
            for (i, acc_row) in acc.iter().enumerate().take(rows) {
                // SAFETY: rows [ic, ic+mc) of C are exclusively this
                // block's (see the function contract), and `cols` stays
                // inside the row.
                let dst = unsafe {
                    std::slice::from_raw_parts_mut(c.add((row0 + i) * ldc + col0), cols)
                };
                if add {
                    for (d, &v) in dst.iter_mut().zip(&acc_row[..cols]) {
                        *d += v;
                    }
                } else {
                    dst.copy_from_slice(&acc_row[..cols]);
                }
            }
        }
    }
    workspace::give(Slot::PackA, abuf);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(len: usize, seed: u32) -> Vec<f32> {
        // Small deterministic pseudo-random values in [-1, 1).
        let mut state = seed.wrapping_mul(747796405).wrapping_add(2891336453);
        (0..len)
            .map(|_| {
                state = state.wrapping_mul(747796405).wrapping_add(2891336453);
                (state >> 8) as f32 / (1u32 << 23) as f32 - 1.0
            })
            .collect()
    }

    fn check(m: usize, n: usize, k: usize, strides_a: Strides, strides_b: Strides) {
        let alen = if m * k == 0 {
            0
        } else {
            (m - 1) * strides_a.0 + (k - 1) * strides_a.1 + 1
        };
        let blen = if k * n == 0 {
            0
        } else {
            (k - 1) * strides_b.0 + (n - 1) * strides_b.1 + 1
        };
        let a = fill(alen, (m + 7 * n + 13 * k) as u32);
        let b = fill(blen, (3 * m + n + 5 * k) as u32);
        for accumulate in [false, true] {
            let mut got = vec![0.25f32; m * n];
            let mut want = vec![0.25f32; m * n];
            gemm(m, n, k, &a, strides_a, &b, strides_b, &mut got, accumulate);
            gemm_reference(m, n, k, &a, strides_a, &b, strides_b, &mut want, accumulate);
            for (idx, (g, w)) in got.iter().zip(&want).enumerate() {
                assert!(
                    (g - w).abs() <= 1e-4 * w.abs().max(1.0),
                    "({m},{n},{k}) acc={accumulate} idx={idx}: {g} vs {w}"
                );
            }
        }
    }

    #[test]
    fn matches_reference_across_shapes() {
        // Exact tile multiples, sub-tile, non-multiples, and deep-k shapes.
        for (m, n, k) in [
            (4, 8, 1),
            (1, 1, 1),
            (3, 5, 7),
            (8, 16, 32),
            (13, 9, 300),
            (65, 17, 5),
            (2, 300, 2),
            (70, 70, 70),
        ] {
            check(m, n, k, (k, 1), (n, 1));
        }
    }

    #[test]
    fn transposed_layouts_match_reference() {
        for (m, n, k) in [(5, 9, 6), (16, 8, 4), (33, 7, 20)] {
            check(m, n, k, (1, m), (n, 1)); // A transposed (TN)
            check(m, n, k, (k, 1), (1, k)); // B transposed (NT)
        }
    }

    #[test]
    fn k_zero_writes_zero_or_preserves() {
        let mut c = vec![3.0f32; 6];
        gemm(2, 3, 0, &[], (0, 1), &[], (3, 1), &mut c, false);
        assert_eq!(c, vec![0.0; 6]);
        let mut c = vec![3.0f32; 6];
        gemm(2, 3, 0, &[], (0, 1), &[], (3, 1), &mut c, true);
        assert_eq!(c, vec![3.0; 6]);
    }

    #[test]
    fn nan_propagates_even_against_zero() {
        // 0 * NaN must be NaN in every output it touches.
        let a = vec![0.0f32, 0.0];
        let b = vec![f32::NAN, 1.0, 2.0, 3.0];
        let mut c = vec![0.0f32; 2];
        gemm(1, 2, 2, &a, (2, 1), &b, (2, 1), &mut c, false);
        assert!(c[0].is_nan(), "zero-skip would have hidden this NaN");
        // Column 1 of B holds no NaN, so that output stays finite.
        assert_eq!(c[1], 0.0);
    }

    #[test]
    fn accumulate_adds_onto_existing_c() {
        let a = vec![1.0f32, 2.0];
        let b = vec![3.0f32, 4.0];
        let mut c = vec![10.0f32];
        gemm(1, 1, 2, &a, (2, 1), &b, (1, 1), &mut c, true);
        assert_eq!(c[0], 10.0 + 3.0 + 8.0);
    }
}
