//! # cae-tensor
//!
//! A minimal, dependency-light f32 tensor library with reverse-mode autograd,
//! built from scratch as the compute substrate for the CAE-DFKD reproduction.
//!
//! The library provides:
//!
//! * [`Tensor`] — an n-dimensional, row-major `f32` array with the raw
//!   (non-differentiable) kernels used by the neural-network stack: blocked
//!   matrix multiplication, im2col convolution, pooling, upsampling,
//!   reductions and elementwise maps.
//! * [`Var`] — a reference-counted autograd variable wrapping a [`Tensor`].
//!   Operations on `Var`s record a backward closure; [`Var::backward`] walks
//!   the recorded graph in reverse creation order and accumulates gradients
//!   into leaves created with [`Var::parameter`].
//! * [`rng`] — seeded random tensor constructors (normal, uniform, and the
//!   heavier-tailed distributions used by the CEND noise sources).
//! * [`gradcheck`] — finite-difference gradient checking used throughout the
//!   test suite to validate every backward implementation.
//!
//! # Example
//!
//! ```
//! use cae_tensor::{Tensor, Var};
//!
//! # fn main() -> Result<(), cae_tensor::TensorError> {
//! let w = Var::parameter(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?);
//! let x = Var::constant(Tensor::from_vec(vec![1.0, 1.0], &[1, 2])?);
//! let y = x.matmul(&w).sum_all(); // scalar
//! y.backward();
//! let g = w.grad().expect("parameter receives a gradient");
//! assert_eq!(g.data(), &[1.0, 1.0, 1.0, 1.0]);
//! # Ok(())
//! # }
//! ```

pub mod autograd;
pub mod autotune;
pub mod conv;
pub mod error;
pub mod gemm;
pub mod gradcheck;
pub mod linalg;
pub mod pool;
pub mod rng;
pub mod shape;
pub mod simd;
pub mod tensor;
pub mod workspace;

pub use autograd::Var;
pub use error::TensorError;
pub use shape::Shape;
pub use tensor::Tensor;
