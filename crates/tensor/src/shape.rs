//! Row-major shapes.

use std::fmt;

/// A row-major tensor shape.
///
/// `Shape` is a thin wrapper over a dimension list with helpers for element
/// counts and NCHW access, used pervasively by [`crate::Tensor`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Shape(Vec<usize>);

// Newtype structs serialize as their inner value (serde's default).
impl serde::Serialize for Shape {
    fn to_value(&self) -> serde::Value {
        serde::Serialize::to_value(&self.0)
    }
}

impl serde::Deserialize for Shape {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        Ok(Shape(serde::Deserialize::from_value(v)?))
    }
}

impl Shape {
    /// Creates a shape from a dimension slice.
    ///
    /// ```
    /// use cae_tensor::Shape;
    /// let s = Shape::new(&[2, 3, 4]);
    /// assert_eq!(s.numel(), 24);
    /// ```
    pub fn new(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }

    /// The dimension list.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Number of dimensions.
    pub fn ndim(&self) -> usize {
        self.0.len()
    }

    /// Total number of elements (product of dimensions; `1` for a 0-d shape).
    pub fn numel(&self) -> usize {
        self.0.iter().product()
    }

    /// Size of dimension `i`.
    ///
    /// # Panics
    /// Panics if `i >= self.ndim()`.
    pub fn dim(&self, i: usize) -> usize {
        self.0[i]
    }

    /// Interprets the shape as `[N, C, H, W]`.
    ///
    /// # Panics
    /// Panics if the shape is not 4-dimensional.
    pub fn nchw(&self) -> (usize, usize, usize, usize) {
        assert!(
            self.ndim() == 4,
            "expected a 4-d (NCHW) shape, got {:?}",
            self.0
        );
        (self.0[0], self.0[1], self.0[2], self.0[3])
    }

    /// Interprets the shape as a matrix `[rows, cols]`.
    ///
    /// # Panics
    /// Panics if the shape is not 2-dimensional.
    pub fn matrix(&self) -> (usize, usize) {
        assert!(self.ndim() == 2, "expected a 2-d shape, got {:?}", self.0);
        (self.0[0], self.0[1])
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.0)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape(dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_of_empty_shape_is_one() {
        assert_eq!(Shape::new(&[]).numel(), 1);
    }

    #[test]
    fn nchw_accessor() {
        let s = Shape::new(&[2, 3, 4, 5]);
        assert_eq!(s.nchw(), (2, 3, 4, 5));
    }

    #[test]
    #[should_panic(expected = "expected a 4-d")]
    fn nchw_panics_on_wrong_rank() {
        Shape::new(&[2, 3]).nchw();
    }
}
