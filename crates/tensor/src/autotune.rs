//! Runtime autotuning of GEMM blocking and parallel/serial cutoffs.
//!
//! Static block sizes are tuned for one cache hierarchy and one thread
//! count; the right row/column blocking and the right serial-vs-parallel
//! cutoff shift with the host and with the thread budget a kernel runs
//! under (a GEMM inside a budget-2 cell wants different blocking than the
//! same GEMM owning the whole pool). Instead of guessing, this module
//! measures: the first few large products of each **shape class** sample a
//! small candidate set of `(mc, nc, threads)` configs — the production
//! calls themselves are the benchmark — and the fastest candidate becomes
//! the cached winner for that `(shape-class, budget)` key.
//!
//! * **Winners are cached in-process** and, best-effort, **on disk** keyed
//!   by a host fingerprint (arch + SIMD backend + pool size), so later
//!   processes on the same host skip the measurement phase entirely. The
//!   cache lives in the system temp dir by default; `CAE_AUTOTUNE_CACHE`
//!   overrides the path (`CAE_AUTOTUNE_CACHE=0` disables persistence).
//! * **`CAE_AUTOTUNE=0` disables tuning**: every plan falls back to the
//!   static default heuristic (the pre-autotune behavior).
//! * **Bit-stability**: every candidate computes bit-identical results.
//!   Only the output-space partitioning — row blocks `mc`, column blocks
//!   `nc`, worker count — is tuned; per output element the k-loop stays
//!   one sequential FMA chain (see [`crate::gemm`]). The depth blocking
//!   `KC`, which *would* change f32 accumulation grouping, is explicitly
//!   excluded from the candidate space. Reports therefore stay
//!   byte-identical across autotune on/off, cold/warm caches, and thread
//!   counts.

use crate::pool;
use crate::simd;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Duration;

/// Default row-block size (the static `MC` the heuristic falls back to).
pub const DEFAULT_MC: usize = 64;
/// Default column-block size (the static `NC`).
pub const DEFAULT_NC: usize = 256;
/// Products below this many FLOPs (`2 m n k`) never leave the calling
/// thread under the default heuristic.
pub const PARALLEL_FLOP_THRESHOLD: usize = 1 << 21;
/// Products below this many FLOPs are never tuned: call overhead and timer
/// noise dominate any blocking difference, and locking the tuner on every
/// tiny matmul would cost more than it could win.
const MIN_TUNE_FLOPS: usize = 1 << 18;
/// Timed samples per candidate before a winner is decided (the minimum of
/// the samples is compared, damping one-off scheduling noise).
const SAMPLES_PER_CANDIDATE: u32 = 2;
/// Candidate `(mc, nc)` block shapes. `KC` is deliberately absent: depth
/// blocking changes accumulation grouping and therefore bits.
const CANDIDATE_BLOCKS: [(usize, usize); 4] = [(32, 256), (64, 256), (128, 256), (64, 512)];

/// One tunable GEMM execution config.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GemmConfig {
    /// Row-block size (clamped to a micro-tile multiple by the kernel).
    pub mc: usize,
    /// Column-block size.
    pub nc: usize,
    /// Worker threads to fan row blocks over (1 = serial).
    pub threads: usize,
}

/// What [`plan_gemm`] tells the kernel to do for one call.
#[derive(Debug, Clone, Copy)]
pub struct GemmPlan {
    pub config: GemmConfig,
    /// `Some(candidate)` while this shape class is still being measured:
    /// the kernel should time the call and pass the index back through
    /// [`record`]. `None` once a winner is cached or when tuning is off.
    pub measure: Option<usize>,
}

/// Shape-class key: ceil-log2 buckets of each dimension plus the thread
/// budget. Two products in the same bucket share cache behavior closely
/// enough to share a winner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct ClassKey {
    m: u8,
    n: u8,
    k: u8,
    budget: u8,
}

fn log2_class(x: usize) -> u8 {
    x.max(1).next_power_of_two().trailing_zeros() as u8
}

fn class_key(m: usize, n: usize, k: usize, budget: usize) -> ClassKey {
    ClassKey {
        m: log2_class(m),
        n: log2_class(n),
        k: log2_class(k),
        budget: budget.min(u8::MAX as usize) as u8,
    }
}

fn candidates(budget: usize) -> Vec<GemmConfig> {
    let mut out = Vec::with_capacity(CANDIDATE_BLOCKS.len() * 2);
    for &(mc, nc) in &CANDIDATE_BLOCKS {
        out.push(GemmConfig { mc, nc, threads: 1 });
        if budget > 1 {
            out.push(GemmConfig { mc, nc, threads: budget });
        }
    }
    out
}

/// The static pre-autotune heuristic: default blocking, parallel iff the
/// product clears the FLOP threshold and the budget allows it.
fn default_config(flops: usize, budget: usize) -> GemmConfig {
    GemmConfig {
        mc: DEFAULT_MC,
        nc: DEFAULT_NC,
        threads: if budget > 1 && flops >= PARALLEL_FLOP_THRESHOLD {
            budget
        } else {
            1
        },
    }
}

/// Measurement state for one shape class.
struct ClassState {
    candidates: Vec<GemmConfig>,
    /// Best observed nanos per candidate (`u64::MAX` until timed).
    best_nanos: Vec<u64>,
    /// Samples handed out by `plan_gemm` (round-robins concurrent callers).
    planned: Vec<u32>,
    /// Samples actually timed back via `record`.
    timed: Vec<u32>,
    winner: Option<GemmConfig>,
}

impl ClassState {
    fn new(candidates: Vec<GemmConfig>) -> ClassState {
        let n = candidates.len();
        ClassState {
            candidates,
            best_nanos: vec![u64::MAX; n],
            planned: vec![0; n],
            timed: vec![0; n],
            winner: None,
        }
    }
}

struct Tuner {
    classes: HashMap<ClassKey, ClassState>,
    /// Winners loaded from (and persisted to) the on-disk cache.
    disk_winners: HashMap<ClassKey, GemmConfig>,
    path: Option<PathBuf>,
}

impl Tuner {
    fn from_disk(path: Option<PathBuf>) -> Tuner {
        let disk_winners = path
            .as_deref()
            .map(|p| load_winners(p, &fingerprint()))
            .unwrap_or_default();
        Tuner {
            classes: HashMap::new(),
            disk_winners,
            path,
        }
    }
}

fn tuner() -> MutexGuard<'static, Tuner> {
    static TUNER: OnceLock<Mutex<Tuner>> = OnceLock::new();
    TUNER
        .get_or_init(|| Mutex::new(Tuner::from_disk(default_cache_path())))
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

/// `1`/unset = on; `0`, `off`, `false`, `no` = off (same off-tokens as the
/// other CAE_* switches).
fn env_on(var: &str) -> bool {
    !std::env::var(var).is_ok_and(|v| {
        matches!(
            v.trim().to_ascii_lowercase().as_str(),
            "0" | "off" | "false" | "no"
        )
    })
}

fn default_cache_path() -> Option<PathBuf> {
    match std::env::var("CAE_AUTOTUNE_CACHE") {
        Ok(v)
            if matches!(
                v.trim().to_ascii_lowercase().as_str(),
                "0" | "off" | "false" | "no"
            ) =>
        {
            None
        }
        Ok(path) => Some(PathBuf::from(path)),
        Err(_) => Some(std::env::temp_dir().join(format!("cae_autotune_{}.txt", fingerprint()))),
    }
}

/// Host fingerprint the on-disk cache is keyed by: a winner measured on a
/// different arch, SIMD backend, or pool size is not trusted.
fn fingerprint() -> String {
    format!(
        "{}-{}-t{}",
        std::env::consts::ARCH,
        simd::active_backend().name(),
        pool::max_parallelism()
    )
}

const CACHE_MAGIC: &str = "cae-autotune v1";

/// Parses an on-disk cache. Returns empty on any mismatch (missing file,
/// wrong fingerprint, corrupt header) and skips unparseable lines — a stale
/// or torn cache must only ever cost a re-measurement.
fn load_winners(path: &std::path::Path, fingerprint: &str) -> HashMap<ClassKey, GemmConfig> {
    let mut out = HashMap::new();
    let Ok(text) = std::fs::read_to_string(path) else {
        return out;
    };
    let mut lines = text.lines();
    match lines.next() {
        Some(header) if header == format!("{CACHE_MAGIC} {fingerprint}") => {}
        _ => return out,
    }
    for line in lines {
        let fields: Vec<usize> = line.split_whitespace().filter_map(|f| f.parse().ok()).collect();
        let [m, n, k, budget, mc, nc, threads] = fields[..] else {
            continue;
        };
        let key = ClassKey {
            m: m.min(u8::MAX as usize) as u8,
            n: n.min(u8::MAX as usize) as u8,
            k: k.min(u8::MAX as usize) as u8,
            budget: budget.min(u8::MAX as usize) as u8,
        };
        let config = GemmConfig { mc, nc, threads };
        // Only trust entries that are in the current candidate space.
        let valid = CANDIDATE_BLOCKS.contains(&(mc, nc))
            && threads >= 1
            && threads <= key.budget as usize;
        if valid {
            out.insert(key, config);
        }
    }
    out
}

/// Atomically rewrites the cache file (temp + rename). Best-effort: errors
/// are swallowed — persistence is an optimization, never a correctness
/// dependency.
fn save_winners(
    path: &std::path::Path,
    fingerprint: &str,
    winners: &HashMap<ClassKey, GemmConfig>,
) {
    let mut text = format!("{CACHE_MAGIC} {fingerprint}\n");
    let mut rows: Vec<_> = winners.iter().collect();
    rows.sort_by_key(|(k, _)| (k.m, k.n, k.k, k.budget));
    for (key, cfg) in rows {
        text.push_str(&format!(
            "{} {} {} {} {} {} {}\n",
            key.m, key.n, key.k, key.budget, cfg.mc, cfg.nc, cfg.threads
        ));
    }
    let tmp = path.with_extension("tmp");
    if std::fs::write(&tmp, text).is_ok() && std::fs::rename(&tmp, path).is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
}

/// In-process override of `CAE_AUTOTUNE`: 0 = follow env, 1 = forced off,
/// 2 = forced on.
static FORCED_AUTOTUNE: AtomicU8 = AtomicU8::new(0);

/// Test hook: overrides the `CAE_AUTOTUNE` switch in-process (`None`
/// restores env behavior), avoiding racy `std::env::set_var` at test time.
pub fn force_autotune(value: Option<bool>) {
    let code = match value {
        None => 0,
        Some(false) => 1,
        Some(true) => 2,
    };
    FORCED_AUTOTUNE.store(code, Ordering::Relaxed);
}

/// Whether autotuning is active: the in-process override if set, else the
/// `CAE_AUTOTUNE` env switch (default on), parsed once per process.
pub fn enabled() -> bool {
    match FORCED_AUTOTUNE.load(Ordering::Relaxed) {
        1 => false,
        2 => true,
        _ => {
            static FROM_ENV: OnceLock<bool> = OnceLock::new();
            *FROM_ENV.get_or_init(|| env_on("CAE_AUTOTUNE"))
        }
    }
}

/// Whether on-disk winner persistence is active (the `CAE_AUTOTUNE_CACHE`
/// knob; reflects the tuner's resolved path).
pub fn cache_enabled() -> bool {
    tuner().path.is_some()
}

/// Plans one GEMM call: the cached winner for this shape class if decided,
/// a candidate to measure while the class is warming up, or the static
/// default heuristic when tuning is off / the product is too small to tune.
pub fn plan_gemm(m: usize, n: usize, k: usize, budget: usize) -> GemmPlan {
    let flops = 2 * m * n * k;
    if !enabled() || flops < MIN_TUNE_FLOPS {
        return GemmPlan {
            config: default_config(flops, budget),
            measure: None,
        };
    }
    let key = class_key(m, n, k, budget);
    let mut tuner = tuner();
    if let Some(&cfg) = tuner.disk_winners.get(&key) {
        // A disk-cached winner short-circuits measurement for this class.
        let state = tuner
            .classes
            .entry(key)
            .or_insert_with(|| ClassState::new(candidates(budget)));
        if state.winner.is_none() {
            state.winner = Some(cfg);
        }
    }
    let state = tuner
        .classes
        .entry(key)
        .or_insert_with(|| ClassState::new(candidates(budget)));
    if let Some(cfg) = state.winner {
        return GemmPlan {
            config: cfg,
            measure: None,
        };
    }
    // Least-planned candidate next, so concurrent callers round-robin the
    // candidate space instead of dog-piling one config.
    let idx = (0..state.candidates.len())
        .min_by_key(|&i| state.planned[i])
        .expect("candidate set is never empty");
    state.planned[idx] += 1;
    cae_trace::counter("autotune.measured", 1);
    GemmPlan {
        config: state.candidates[idx],
        measure: Some(idx),
    }
}

/// Feeds a measured sample back. Once every candidate of the class has
/// [`SAMPLES_PER_CANDIDATE`] timed samples, the fastest becomes the winner
/// and is persisted to the on-disk cache (best-effort).
pub fn record(m: usize, n: usize, k: usize, budget: usize, candidate: usize, elapsed: Duration) {
    let key = class_key(m, n, k, budget);
    let mut tuner = tuner();
    let Some(state) = tuner.classes.get_mut(&key) else {
        return;
    };
    if state.winner.is_some() || candidate >= state.candidates.len() {
        return;
    }
    let nanos = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX).max(1);
    state.best_nanos[candidate] = state.best_nanos[candidate].min(nanos);
    state.timed[candidate] += 1;
    if state.timed.iter().all(|&t| t >= SAMPLES_PER_CANDIDATE) {
        let best = (0..state.candidates.len())
            .min_by_key(|&i| state.best_nanos[i])
            .expect("candidate set is never empty");
        let cfg = state.candidates[best];
        state.winner = Some(cfg);
        cae_trace::counter("autotune.winners", 1);
        tuner.disk_winners.insert(key, cfg);
        if let Some(path) = tuner.path.clone() {
            save_winners(&path, &fingerprint(), &tuner.disk_winners);
        }
    }
}

/// The decided winner for a shape class, if measurement has converged.
/// Introspection for tests and the profiler.
pub fn winner_for(m: usize, n: usize, k: usize, budget: usize) -> Option<GemmConfig> {
    tuner()
        .classes
        .get(&class_key(m, n, k, budget))
        .and_then(|s| s.winner)
}

/// Total timed samples recorded for a shape class so far.
pub fn timed_samples(m: usize, n: usize, k: usize, budget: usize) -> u64 {
    tuner()
        .classes
        .get(&class_key(m, n, k, budget))
        .map_or(0, |s| s.timed.iter().map(|&t| t as u64).sum())
}

/// Test hook: drops all in-process measurement state and re-targets the
/// on-disk cache at `disk` (`None` disables persistence), reloading winners
/// from it if it exists. Lets tests run against a private temp cache
/// without touching the process environment.
pub fn reset_for_tests(disk: Option<PathBuf>) {
    let mut tuner = tuner();
    *tuner = Tuner::from_disk(disk);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_classes_bucket_by_ceil_log2() {
        assert_eq!(log2_class(1), 0);
        assert_eq!(log2_class(2), 1);
        assert_eq!(log2_class(3), 2);
        assert_eq!(log2_class(4), 2);
        assert_eq!(log2_class(5), 3);
        assert_eq!(class_key(100, 100, 100, 2), class_key(128, 65, 70, 2));
        assert_ne!(class_key(100, 100, 100, 2), class_key(100, 100, 100, 1));
    }

    #[test]
    fn candidate_space_never_tunes_kc_and_respects_budget() {
        let serial = candidates(1);
        assert!(serial.iter().all(|c| c.threads == 1));
        let budget4 = candidates(4);
        assert!(budget4.iter().all(|c| c.threads == 1 || c.threads == 4));
        assert_eq!(budget4.len(), 2 * serial.len());
    }

    #[test]
    fn default_heuristic_matches_pre_autotune_behavior() {
        let small = default_config(PARALLEL_FLOP_THRESHOLD - 1, 4);
        assert_eq!(small, GemmConfig { mc: DEFAULT_MC, nc: DEFAULT_NC, threads: 1 });
        let large = default_config(PARALLEL_FLOP_THRESHOLD, 4);
        assert_eq!(large.threads, 4);
        let budget1 = default_config(PARALLEL_FLOP_THRESHOLD, 1);
        assert_eq!(budget1.threads, 1);
    }

    #[test]
    fn disk_cache_roundtrips_and_rejects_foreign_fingerprints() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("cae_autotune_test_{}.txt", std::process::id()));
        let mut winners = HashMap::new();
        winners.insert(
            ClassKey { m: 7, n: 8, k: 9, budget: 2 },
            GemmConfig { mc: 64, nc: 256, threads: 2 },
        );
        winners.insert(
            ClassKey { m: 5, n: 5, k: 5, budget: 1 },
            GemmConfig { mc: 32, nc: 256, threads: 1 },
        );
        save_winners(&path, "host-a", &winners);
        assert_eq!(load_winners(&path, "host-a"), winners);
        assert!(
            load_winners(&path, "host-b").is_empty(),
            "foreign fingerprint must invalidate the whole cache"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_cache_lines_are_skipped() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("cae_autotune_corrupt_{}.txt", std::process::id()));
        std::fs::write(
            &path,
            format!(
                "{CACHE_MAGIC} host-x\n\
                 garbage line\n\
                 7 8 9 2 64 256 2\n\
                 7 8 9 2 61 999 2\n\
                 1 2 3 1 64 256 9\n"
            ),
        )
        .unwrap();
        let loaded = load_winners(&path, "host-x");
        // Only the well-formed line with an in-space config and a
        // budget-respecting thread count survives.
        assert_eq!(loaded.len(), 1);
        assert_eq!(
            loaded[&ClassKey { m: 7, n: 8, k: 9, budget: 2 }],
            GemmConfig { mc: 64, nc: 256, threads: 2 }
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_cache_file_loads_empty() {
        let path = std::env::temp_dir().join("cae_autotune_does_not_exist_12345.txt");
        assert!(load_winners(&path, "any").is_empty());
    }
}
