//! Seeded random tensor constructors and the noise distributions used by the
//! CEND layer.

use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded random number generator with tensor-producing helpers.
///
/// Every stochastic component in the workspace draws from a `TensorRng` so
/// experiments are reproducible from a single seed.
///
/// ```
/// use cae_tensor::rng::TensorRng;
/// let mut a = TensorRng::seed_from(7);
/// let mut b = TensorRng::seed_from(7);
/// assert_eq!(a.normal_tensor(&[4], 0.0, 1.0).data(), b.normal_tensor(&[4], 0.0, 1.0).data());
/// ```
#[derive(Debug, Clone)]
pub struct TensorRng {
    inner: StdRng,
}

impl TensorRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        TensorRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Forks an independent generator (seeded from this one's stream).
    pub fn fork(&mut self) -> Self {
        TensorRng::seed_from(self.inner.gen())
    }

    /// Draws a uniform value in `[0, 1)`.
    pub fn uniform(&mut self) -> f32 {
        self.inner.gen::<f32>()
    }

    /// Draws a uniform value in `[lo, hi)`.
    pub fn uniform_in(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * self.uniform()
    }

    /// Draws a standard-normal value (Box–Muller).
    pub fn normal(&mut self) -> f32 {
        let u1: f32 = self.inner.gen::<f32>().max(1e-12);
        let u2: f32 = self.inner.gen();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
    }

    /// Draws a uniform integer in `[0, n)`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index upper bound must be positive");
        self.inner.gen_range(0..n)
    }

    /// Tensor of i.i.d. normal draws.
    pub fn normal_tensor(&mut self, dims: &[usize], mean: f32, std: f32) -> Tensor {
        let n: usize = dims.iter().product();
        let data: Vec<f32> = (0..n).map(|_| mean + std * self.normal()).collect();
        Tensor::from_vec(data, dims).expect("length matches dims by construction")
    }

    /// Tensor of i.i.d. uniform draws in `[lo, hi)`.
    pub fn uniform_tensor(&mut self, dims: &[usize], lo: f32, hi: f32) -> Tensor {
        let n: usize = dims.iter().product();
        let data: Vec<f32> = (0..n).map(|_| self.uniform_in(lo, hi)).collect();
        Tensor::from_vec(data, dims).expect("length matches dims by construction")
    }

    /// Samples one value from `kind`.
    pub fn sample(&mut self, kind: NoiseKind) -> f32 {
        match kind {
            NoiseKind::Gaussian => self.normal(),
            NoiseKind::Uniform => self.uniform_in(-1.732, 1.732), // unit variance
            NoiseKind::Laplace => {
                // Inverse-CDF sampling; scale b = 1/sqrt(2) gives unit variance.
                let u = self.uniform() - 0.5;
                let b = std::f32::consts::FRAC_1_SQRT_2;
                -b * u.signum() * (1.0 - 2.0 * u.abs()).max(1e-12).ln()
            }
            NoiseKind::Exponential => {
                // Centered exponential with unit variance.
                -(self.uniform().max(1e-12)).ln() - 1.0
            }
            NoiseKind::StudentT => {
                // t(5)-like heavy tail: normal over sqrt(chi2/df), df = 5,
                // rescaled to unit variance (var = df/(df-2)).
                let df = 5.0f32;
                let z = self.normal();
                let chi2: f32 = (0..5).map(|_| self.normal().powi(2)).sum();
                let t = z / (chi2 / df).sqrt().max(1e-6);
                t / (df / (df - 2.0)).sqrt()
            }
            NoiseKind::MaskedGaussian => {
                // Sparse spike noise: zero with prob. 3/4, else a scaled
                // normal keeping unit variance overall.
                if self.uniform() < 0.75 {
                    0.0
                } else {
                    self.normal() * 2.0
                }
            }
        }
    }

    /// Tensor of i.i.d. draws from `kind`.
    pub fn noise_tensor(&mut self, dims: &[usize], kind: NoiseKind) -> Tensor {
        let n: usize = dims.iter().product();
        let data: Vec<f32> = (0..n).map(|_| self.sample(kind)).collect();
        Tensor::from_vec(data, dims).expect("length matches dims by construction")
    }
}

/// The family of pre-defined noise distributions available to CEND noise
/// sources (paper §III-B: each source `NS_n` follows a *distinct* pre-set
/// distribution). All are normalized to approximately unit variance so the
/// per-source magnitude `M_n` alone controls perturbation strength.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NoiseKind {
    /// Standard normal.
    Gaussian,
    /// Uniform on `[-√3, √3]`.
    Uniform,
    /// Laplace with unit variance (heavier tails than Gaussian).
    Laplace,
    /// Centered exponential (skewed).
    Exponential,
    /// Student-t(5) scaled to unit variance (heavy tails).
    StudentT,
    /// Sparse spike noise: mostly zero with occasional large components.
    MaskedGaussian,
}

serde::impl_json_unit_enum!(NoiseKind {
    Gaussian,
    Uniform,
    Laplace,
    Exponential,
    StudentT,
    MaskedGaussian,
});

impl NoiseKind {
    /// The canonical ordering used when a CEND layer asks for `N` distinct
    /// sources (paper default `N = 4` uses the first four).
    pub const ALL: [NoiseKind; 6] = [
        NoiseKind::Gaussian,
        NoiseKind::Uniform,
        NoiseKind::Laplace,
        NoiseKind::MaskedGaussian,
        NoiseKind::Exponential,
        NoiseKind::StudentT,
    ];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = TensorRng::seed_from(42);
        let mut b = TensorRng::seed_from(42);
        for _ in 0..100 {
            assert_eq!(a.normal(), b.normal());
        }
    }

    #[test]
    fn noise_kinds_are_roughly_unit_variance() {
        let mut rng = TensorRng::seed_from(1234);
        for kind in NoiseKind::ALL {
            let n = 20_000;
            let mut sum = 0.0f64;
            let mut sq = 0.0f64;
            for _ in 0..n {
                let v = rng.sample(kind) as f64;
                sum += v;
                sq += v * v;
            }
            let mean = sum / n as f64;
            let var = sq / n as f64 - mean * mean;
            assert!(
                (var - 1.0).abs() < 0.35,
                "{kind:?} variance {var} too far from 1"
            );
        }
    }

    #[test]
    fn masked_gaussian_is_sparse() {
        let mut rng = TensorRng::seed_from(9);
        let t = rng.noise_tensor(&[10_000], NoiseKind::MaskedGaussian);
        let zeros = t.data().iter().filter(|&&v| v == 0.0).count();
        assert!(zeros > 6_000, "expected sparse noise, got {zeros} zeros");
    }
}
