//! AVX2 + FMA backend: one `__m256` per 8-lane vector.
//!
//! Selected at runtime only when `is_x86_feature_detected!` reports both
//! `avx2` and `fma`, so every intrinsic here executes under verified CPU
//! support. All methods are `#[inline(always)]`: they are meant to be
//! monomorphized into the `#[target_feature(enable = "avx2", enable =
//! "fma")]` thunks emitted by `simd_dispatch!`, which is what lets LLVM
//! fuse, unroll and schedule them as AVX2 code.

use super::SimdF32;
use std::arch::x86_64::*;

/// Eight f32 lanes in one AVX register.
#[derive(Clone, Copy)]
pub struct AvxF32(__m256);

impl SimdF32 for AvxF32 {
    #[inline(always)]
    unsafe fn splat(v: f32) -> Self {
        AvxF32(unsafe { _mm256_set1_ps(v) })
    }

    #[inline(always)]
    unsafe fn load(ptr: *const f32) -> Self {
        AvxF32(unsafe { _mm256_loadu_ps(ptr) })
    }

    #[inline(always)]
    unsafe fn store(self, ptr: *mut f32) {
        unsafe { _mm256_storeu_ps(ptr, self.0) }
    }

    #[inline(always)]
    unsafe fn add(self, other: Self) -> Self {
        AvxF32(unsafe { _mm256_add_ps(self.0, other.0) })
    }

    #[inline(always)]
    unsafe fn sub(self, other: Self) -> Self {
        AvxF32(unsafe { _mm256_sub_ps(self.0, other.0) })
    }

    #[inline(always)]
    unsafe fn mul(self, other: Self) -> Self {
        AvxF32(unsafe { _mm256_mul_ps(self.0, other.0) })
    }

    #[inline(always)]
    unsafe fn div(self, other: Self) -> Self {
        AvxF32(unsafe { _mm256_div_ps(self.0, other.0) })
    }

    #[inline(always)]
    unsafe fn mul_add(self, m: Self, a: Self) -> Self {
        AvxF32(unsafe { _mm256_fmadd_ps(self.0, m.0, a.0) })
    }

    #[inline(always)]
    unsafe fn max(self, other: Self) -> Self {
        // vmaxps: self > other ? self : other, NaN in `self` yields `other`.
        AvxF32(unsafe { _mm256_max_ps(self.0, other.0) })
    }

    #[inline(always)]
    unsafe fn min(self, other: Self) -> Self {
        AvxF32(unsafe { _mm256_min_ps(self.0, other.0) })
    }

    #[inline(always)]
    unsafe fn neg(self) -> Self {
        AvxF32(unsafe { _mm256_xor_ps(self.0, _mm256_set1_ps(-0.0)) })
    }

    #[inline(always)]
    unsafe fn abs(self) -> Self {
        AvxF32(unsafe {
            _mm256_andnot_ps(_mm256_set1_ps(-0.0), self.0)
        })
    }

    #[inline(always)]
    unsafe fn sqrt(self) -> Self {
        AvxF32(unsafe { _mm256_sqrt_ps(self.0) })
    }

    #[inline(always)]
    unsafe fn round_ties_even(self) -> Self {
        AvxF32(unsafe {
            _mm256_round_ps::<{ _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC }>(self.0)
        })
    }

    #[inline(always)]
    unsafe fn pow2i(self) -> Self {
        unsafe {
            let n = _mm256_cvtps_epi32(self.0);
            let e = _mm256_add_epi32(n, _mm256_set1_epi32(127));
            AvxF32(_mm256_castsi256_ps(_mm256_slli_epi32::<23>(e)))
        }
    }

    #[inline(always)]
    unsafe fn gt(self, other: Self) -> Self {
        AvxF32(unsafe { _mm256_cmp_ps::<_CMP_GT_OQ>(self.0, other.0) })
    }

    #[inline(always)]
    unsafe fn lt(self, other: Self) -> Self {
        AvxF32(unsafe { _mm256_cmp_ps::<_CMP_LT_OQ>(self.0, other.0) })
    }

    #[inline(always)]
    unsafe fn nan_mask(self) -> Self {
        AvxF32(unsafe { _mm256_cmp_ps::<_CMP_UNORD_Q>(self.0, self.0) })
    }

    #[inline(always)]
    unsafe fn select(mask: Self, t: Self, f: Self) -> Self {
        // blendv keys on each lane's sign bit; compare masks are all-ones
        // or all-zeros, so this matches the trait's full-mask contract.
        AvxF32(unsafe { _mm256_blendv_ps(f.0, t.0, mask.0) })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simd::{scalar::ScalarF32, Backend, LANES};

    /// Every trait op must agree bit-for-bit with the scalar reference on a
    /// probe set covering specials, both zeros and subnormals.
    #[test]
    fn avx2_ops_match_scalar_reference_bitwise() {
        if !Backend::Avx2.supported() {
            return; // nothing to check on this host
        }
        #[target_feature(enable = "avx2", enable = "fma")]
        unsafe fn run(a: &[f32; LANES], b: &[f32; LANES], c: &[f32; LANES]) {
            unsafe {
                let (xa, xb, xc) = (
                    AvxF32::load(a.as_ptr()),
                    AvxF32::load(b.as_ptr()),
                    AvxF32::load(c.as_ptr()),
                );
                let (sa, sb, sc) = (
                    ScalarF32::load(a.as_ptr()),
                    ScalarF32::load(b.as_ptr()),
                    ScalarF32::load(c.as_ptr()),
                );
                let pairs: [([f32; LANES], [f32; LANES]); 10] = [
                    (xa.add(xb).to_array(), sa.add(sb).to_array()),
                    (xa.sub(xb).to_array(), sa.sub(sb).to_array()),
                    (xa.mul(xb).to_array(), sa.mul(sb).to_array()),
                    (xa.div(xb).to_array(), sa.div(sb).to_array()),
                    (xa.mul_add(xb, xc).to_array(), sa.mul_add(sb, sc).to_array()),
                    (xa.max(xb).to_array(), sa.max(sb).to_array()),
                    (xa.min(xb).to_array(), sa.min(sb).to_array()),
                    (xa.abs().to_array(), sa.abs().to_array()),
                    (xa.neg().to_array(), sa.neg().to_array()),
                    (
                        xa.round_ties_even().to_array(),
                        sa.round_ties_even().to_array(),
                    ),
                    ];
                for (i, (got, want)) in pairs.iter().enumerate() {
                    for l in 0..LANES {
                        assert_eq!(
                            got[l].to_bits(),
                            want[l].to_bits(),
                            "op {i} lane {l}: {} vs {}",
                            got[l],
                            want[l]
                        );
                    }
                }
                let sel_avx =
                    AvxF32::select(xa.gt(xb), xa, xb).to_array();
                let sel_sc = ScalarF32::select(sa.gt(sb), sa, sb).to_array();
                assert_eq!(sel_avx.map(f32::to_bits), sel_sc.map(f32::to_bits));
                assert_eq!(
                    AvxF32::select(xa.nan_mask(), xb, xa)
                        .to_array()
                        .map(f32::to_bits),
                    ScalarF32::select(sa.nan_mask(), sb, sa)
                        .to_array()
                        .map(f32::to_bits)
                );
            }
        }
        // black_box: keep LLVM from constant-folding one side with APFloat
        // NaN conventions while the other executes on hardware.
        let a = std::hint::black_box([1.5, -0.0, f32::NAN, f32::INFINITY, -2.5, 1e-40, 0.5, -1.0]);
        let b = std::hint::black_box([0.0, 0.0, 1.0, f32::NEG_INFINITY, -2.5, 3.5, 2.5, f32::NAN]);
        let c = std::hint::black_box([1.0, -1.0, 0.5, 2.0, f32::MAX, -0.0, 1e-30, 7.0]);
        unsafe { run(&a, &b, &c) };
    }

    #[test]
    fn pow2i_covers_full_exponent_range() {
        if !Backend::Avx2.supported() {
            return;
        }
        #[target_feature(enable = "avx2")]
        unsafe fn run() {
            unsafe {
                let n = [-126.0f32, -64.0, -1.0, 0.0, 1.0, 64.0, 100.0, 127.0];
                let got = AvxF32::load(n.as_ptr()).pow2i().to_array();
                for (l, &e) in n.iter().enumerate() {
                    assert_eq!(got[l], e.exp2(), "2^{e}");
                }
            }
        }
        unsafe { run() };
    }
}
