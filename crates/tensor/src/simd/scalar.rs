//! Portable `[f32; 8]` backend: the semantic reference for every other
//! backend, and the runtime fallback on CPUs without AVX2/NEON.
//!
//! Each method is a straight 8-lane loop; at the baseline x86-64 target LLVM
//! auto-vectorizes most of them to SSE2 pairs, so this backend doubles as
//! the SSE2 path. The one deliberately slow spot is [`SimdF32::mul_add`]: it
//! must be a *fused* multiply-add to stay bit-identical with the FMA
//! hardware backends, so it calls [`f32::mul_add`] (a correctly-rounded
//! `fmaf` libcall when the compile target lacks FMA).

use super::{SimdF32, LANES};

/// Eight f32 lanes in a plain array.
#[derive(Clone, Copy)]
pub struct ScalarF32([f32; LANES]);

/// Applies `f` lane-wise over one vector.
#[inline(always)]
fn map(a: ScalarF32, f: impl Fn(f32) -> f32) -> ScalarF32 {
    let mut out = [0.0f32; LANES];
    for (o, &x) in out.iter_mut().zip(&a.0) {
        *o = f(x);
    }
    ScalarF32(out)
}

/// Applies `f` lane-wise over two vectors.
#[inline(always)]
fn zip(a: ScalarF32, b: ScalarF32, f: impl Fn(f32, f32) -> f32) -> ScalarF32 {
    let mut out = [0.0f32; LANES];
    for (i, o) in out.iter_mut().enumerate() {
        *o = f(a.0[i], b.0[i]);
    }
    ScalarF32(out)
}

/// All-ones bits when `c`, all-zeros otherwise — the mask encoding shared
/// with the hardware compare instructions.
#[inline(always)]
fn mask(c: bool) -> f32 {
    if c {
        f32::from_bits(u32::MAX)
    } else {
        0.0
    }
}

impl SimdF32 for ScalarF32 {
    #[inline(always)]
    unsafe fn splat(v: f32) -> Self {
        ScalarF32([v; LANES])
    }

    #[inline(always)]
    unsafe fn load(ptr: *const f32) -> Self {
        let mut out = [0.0f32; LANES];
        unsafe { std::ptr::copy_nonoverlapping(ptr, out.as_mut_ptr(), LANES) };
        ScalarF32(out)
    }

    #[inline(always)]
    unsafe fn store(self, ptr: *mut f32) {
        unsafe { std::ptr::copy_nonoverlapping(self.0.as_ptr(), ptr, LANES) };
    }

    #[inline(always)]
    unsafe fn add(self, other: Self) -> Self {
        zip(self, other, |a, b| a + b)
    }

    #[inline(always)]
    unsafe fn sub(self, other: Self) -> Self {
        zip(self, other, |a, b| a - b)
    }

    #[inline(always)]
    unsafe fn mul(self, other: Self) -> Self {
        zip(self, other, |a, b| a * b)
    }

    #[inline(always)]
    unsafe fn div(self, other: Self) -> Self {
        zip(self, other, |a, b| a / b)
    }

    #[inline(always)]
    unsafe fn mul_add(self, m: Self, a: Self) -> Self {
        let mut out = [0.0f32; LANES];
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.0[i].mul_add(m.0[i], a.0[i]);
        }
        ScalarF32(out)
    }

    #[inline(always)]
    unsafe fn max(self, other: Self) -> Self {
        // maxps rule, not f32::max: NaN in the first operand picks the second.
        zip(self, other, |a, b| if a > b { a } else { b })
    }

    #[inline(always)]
    unsafe fn min(self, other: Self) -> Self {
        zip(self, other, |a, b| if a < b { a } else { b })
    }

    #[inline(always)]
    unsafe fn neg(self) -> Self {
        map(self, |a| -a)
    }

    #[inline(always)]
    unsafe fn abs(self) -> Self {
        map(self, f32::abs)
    }

    #[inline(always)]
    unsafe fn sqrt(self) -> Self {
        map(self, f32::sqrt)
    }

    #[inline(always)]
    unsafe fn round_ties_even(self) -> Self {
        map(self, f32::round_ties_even)
    }

    #[inline(always)]
    unsafe fn pow2i(self) -> Self {
        map(self, |a| f32::from_bits(((a as i32 + 127) << 23) as u32))
    }

    #[inline(always)]
    unsafe fn gt(self, other: Self) -> Self {
        zip(self, other, |a, b| mask(a > b))
    }

    #[inline(always)]
    unsafe fn lt(self, other: Self) -> Self {
        zip(self, other, |a, b| mask(a < b))
    }

    #[inline(always)]
    unsafe fn nan_mask(self) -> Self {
        map(self, |a| mask(a.is_nan()))
    }

    #[inline(always)]
    unsafe fn select(mask: Self, t: Self, f: Self) -> Self {
        let mut out = [0.0f32; LANES];
        for (i, o) in out.iter_mut().enumerate() {
            *o = if mask.0[i].to_bits() != 0 { t.0[i] } else { f.0[i] };
        }
        ScalarF32(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(vals: [f32; LANES]) -> ScalarF32 {
        unsafe { ScalarF32::load(vals.as_ptr()) }
    }

    #[test]
    fn maxps_rule_on_nan_and_negative_zero() {
        unsafe {
            // NaN in the first operand yields the second (maxps semantics).
            let nan = ScalarF32::splat(f32::NAN);
            let one = ScalarF32::splat(1.0);
            assert_eq!(nan.max(one).to_array()[0], 1.0);
            // max(-0.0, +0.0): -0.0 > +0.0 is false, so the second wins.
            let nz = ScalarF32::splat(-0.0);
            let pz = ScalarF32::splat(0.0);
            assert_eq!(nz.max(pz).to_array()[0].to_bits(), 0.0f32.to_bits());
        }
    }

    #[test]
    fn pow2i_matches_exp2() {
        unsafe {
            for n in [-126.0f32, -10.0, 0.0, 1.0, 64.0, 127.0] {
                let got = ScalarF32::splat(n).pow2i().to_array()[0];
                assert_eq!(got, n.exp2(), "2^{n}");
            }
        }
    }

    #[test]
    fn select_uses_full_lane_masks() {
        unsafe {
            let a = v([1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
            let b = ScalarF32::splat(4.5);
            let picked = ScalarF32::select(a.gt(b), a, ScalarF32::zero()).to_array();
            assert_eq!(picked, [0.0, 0.0, 0.0, 0.0, 5.0, 6.0, 7.0, 8.0]);
        }
    }

    #[test]
    fn fused_mul_add_is_single_rounding() {
        unsafe {
            // For a = 1 + 2^-22, a² - 1 = 2^-21 + 2^-44: the tail survives
            // only when the multiply-add is fused (a*a alone rounds it off).
            let a = 1.0 + f32::powi(2.0, -22);
            let av = ScalarF32::splat(a);
            let fused = av.mul_add(av, ScalarF32::splat(-1.0)).to_array()[0];
            assert_eq!(fused, f32::powi(2.0, -21) + f32::powi(2.0, -44));
            assert_ne!(fused, a * a - 1.0, "unfused path would round the tail");
        }
    }
}
