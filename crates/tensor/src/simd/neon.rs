//! NEON backend for aarch64: two `float32x4_t` halves per 8-lane vector.
//!
//! NEON registers are 128-bit, so the uniform 8-lane vector is a `(lo, hi)`
//! pair; LLVM schedules the two halves independently. Two ops deliberately
//! avoid the "native" NEON instruction to preserve the cross-backend bit
//! contract (see the module docs in `simd`):
//!
//! * `max`/`min` use compare+select instead of `vmaxq_f32`/`vminq_f32`,
//!   because the NEON instructions propagate NaN from either operand while
//!   the portable contract is the x86 `maxps` rule (`a > b ? a : b`).
//! * `mul_add` uses `vfmaq_f32` (a true fused multiply-add), matching the
//!   single-rounding contract.
//!
//! This file is compiled only on `aarch64` targets; the x86-64 CI hosts
//! exercise the identical generic kernels through the scalar and AVX2
//! backends, and the parity suite re-validates the bit contract on any
//! aarch64 host that runs it.

use super::SimdF32;
use std::arch::aarch64::*;

/// Eight f32 lanes as two NEON quadword halves.
#[derive(Clone, Copy)]
pub struct NeonF32 {
    lo: float32x4_t,
    hi: float32x4_t,
}

/// Applies a quadword op to both halves.
macro_rules! per_half {
    ($a:expr, $f:expr) => {{
        let a = $a;
        NeonF32 { lo: $f(a.lo), hi: $f(a.hi) }
    }};
    ($a:expr, $b:expr, $f:expr) => {{
        let (a, b) = ($a, $b);
        NeonF32 { lo: $f(a.lo, b.lo), hi: $f(a.hi, b.hi) }
    }};
}

/// `maxps`-rule select: `cmp ? a : b` with full-width masks.
#[inline(always)]
unsafe fn bsl(mask: float32x4_t, t: float32x4_t, f: float32x4_t) -> float32x4_t {
    unsafe { vbslq_f32(vreinterpretq_u32_f32(mask), t, f) }
}

impl SimdF32 for NeonF32 {
    #[inline(always)]
    unsafe fn splat(v: f32) -> Self {
        let q = unsafe { vdupq_n_f32(v) };
        NeonF32 { lo: q, hi: q }
    }

    #[inline(always)]
    unsafe fn load(ptr: *const f32) -> Self {
        unsafe {
            NeonF32 {
                lo: vld1q_f32(ptr),
                hi: vld1q_f32(ptr.add(4)),
            }
        }
    }

    #[inline(always)]
    unsafe fn store(self, ptr: *mut f32) {
        unsafe {
            vst1q_f32(ptr, self.lo);
            vst1q_f32(ptr.add(4), self.hi);
        }
    }

    #[inline(always)]
    unsafe fn add(self, other: Self) -> Self {
        unsafe { per_half!(self, other, |a, b| vaddq_f32(a, b)) }
    }

    #[inline(always)]
    unsafe fn sub(self, other: Self) -> Self {
        unsafe { per_half!(self, other, |a, b| vsubq_f32(a, b)) }
    }

    #[inline(always)]
    unsafe fn mul(self, other: Self) -> Self {
        unsafe { per_half!(self, other, |a, b| vmulq_f32(a, b)) }
    }

    #[inline(always)]
    unsafe fn div(self, other: Self) -> Self {
        unsafe { per_half!(self, other, |a, b| vdivq_f32(a, b)) }
    }

    #[inline(always)]
    unsafe fn mul_add(self, m: Self, a: Self) -> Self {
        // vfmaq_f32(acc, x, y) = acc + x*y, fused.
        unsafe {
            NeonF32 {
                lo: vfmaq_f32(a.lo, self.lo, m.lo),
                hi: vfmaq_f32(a.hi, self.hi, m.hi),
            }
        }
    }

    #[inline(always)]
    unsafe fn max(self, other: Self) -> Self {
        unsafe {
            per_half!(self, other, |a, b| bsl(
                vreinterpretq_f32_u32(vcgtq_f32(a, b)),
                a,
                b
            ))
        }
    }

    #[inline(always)]
    unsafe fn min(self, other: Self) -> Self {
        unsafe {
            per_half!(self, other, |a, b| bsl(
                vreinterpretq_f32_u32(vcltq_f32(a, b)),
                a,
                b
            ))
        }
    }

    #[inline(always)]
    unsafe fn neg(self) -> Self {
        unsafe { per_half!(self, |a| vnegq_f32(a)) }
    }

    #[inline(always)]
    unsafe fn abs(self) -> Self {
        unsafe { per_half!(self, |a| vabsq_f32(a)) }
    }

    #[inline(always)]
    unsafe fn sqrt(self) -> Self {
        unsafe { per_half!(self, |a| vsqrtq_f32(a)) }
    }

    #[inline(always)]
    unsafe fn round_ties_even(self) -> Self {
        unsafe { per_half!(self, |a| vrndnq_f32(a)) }
    }

    #[inline(always)]
    unsafe fn pow2i(self) -> Self {
        #[inline(always)]
        unsafe fn half(a: float32x4_t) -> float32x4_t {
            unsafe {
                let n = vcvtnq_s32_f32(a);
                let e = vaddq_s32(n, vdupq_n_s32(127));
                vreinterpretq_f32_s32(vshlq_n_s32::<23>(e))
            }
        }
        unsafe { per_half!(self, |a| half(a)) }
    }

    #[inline(always)]
    unsafe fn gt(self, other: Self) -> Self {
        unsafe {
            per_half!(self, other, |a, b| vreinterpretq_f32_u32(vcgtq_f32(a, b)))
        }
    }

    #[inline(always)]
    unsafe fn lt(self, other: Self) -> Self {
        unsafe {
            per_half!(self, other, |a, b| vreinterpretq_f32_u32(vcltq_f32(a, b)))
        }
    }

    #[inline(always)]
    unsafe fn nan_mask(self) -> Self {
        // NaN lanes fail a == a; vceqq yields all-ones where equal.
        unsafe {
            per_half!(self, |a| vreinterpretq_f32_u32(vmvnq_u32(vceqq_f32(a, a))))
        }
    }

    #[inline(always)]
    unsafe fn select(mask: Self, t: Self, f: Self) -> Self {
        unsafe {
            NeonF32 {
                lo: bsl(mask.lo, t.lo, f.lo),
                hi: bsl(mask.hi, t.hi, f.hi),
            }
        }
    }
}
