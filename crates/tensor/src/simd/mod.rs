//! Portable SIMD abstraction: one trait, three backends, one dispatch point.
//!
//! Every vectorized kernel in this crate (the GEMM micro-kernel, the
//! [`vecmath`] transcendentals, the elementwise/reduction drivers) is written
//! once as a generic function over the [`SimdF32`] trait and monomorphized
//! per backend:
//!
//! * [`scalar::ScalarF32`] — a `[f32; 8]` software vector. Works everywhere;
//!   LLVM auto-vectorizes most of its lane loops at the baseline SSE2
//!   target, so it doubles as the x86-64 SSE2 path.
//! * [`avx2::AvxF32`] — `__m256` with FMA, selected on `x86_64` when the CPU
//!   reports `avx2` **and** `fma`.
//! * [`neon::NeonF32`] — a pair of `float32x4_t` on `aarch64`.
//!
//! # Determinism policy (why results are bit-identical across backends)
//!
//! The experiment pipeline byte-diffs serialized reports produced under
//! different backends (`scripts/tier1.sh` runs the same smoke under
//! `CAE_SIMD=scalar` and the detected backend and `cmp`s the tables), so the
//! backends may not merely be "close" — they must agree bit-for-bit. Three
//! rules make that hold:
//!
//! 1. **Uniform lane count.** Every backend exposes exactly [`LANES`] = 8
//!    virtual f32 lanes, so loop trip counts, tail boundaries and reduction
//!    shapes never depend on the backend.
//! 2. **Uniform op semantics.** Each trait op is defined by its scalar
//!    backend behaviour and the hardware backends match it exactly:
//!    `add/sub/mul/div/sqrt` are the correctly-rounded IEEE 754 operations
//!    on every backend; [`SimdF32::mul_add`] is a *fused* multiply-add with
//!    a single rounding on every backend (the scalar backend calls
//!    [`f32::mul_add`], which is correctly rounded); [`SimdF32::max`] /
//!    [`SimdF32::min`] use the x86 `maxps`/`minps` rule (`a > b ? a : b`,
//!    so a NaN in the first operand yields the second) on every backend.
//! 3. **Fixed reduction trees.** [`SimdF32::reduce_sum`] and
//!    [`SimdF32::reduce_max`] are *provided* methods: they spill the 8 lanes
//!    and combine them in a fixed pairwise tree (`0+4, 1+5, 2+6, 3+7`, then
//!    halves again), shared verbatim by all backends. Long reductions
//!    accumulate into 8 lanes in a fixed element order first, so neither the
//!    partial order nor the horizontal combine depends on the backend.
//!
//! The price is that the scalar backend must use a real fused multiply-add
//! (`fmaf`), which is a libcall when the compile target lacks FMA — the
//! scalar backend is therefore slower than the seed's auto-vectorized
//! mul+add kernel, and exists for correctness, portability and as the
//! cross-check oracle, not for speed.
//!
//! # Dispatch
//!
//! [`active_backend`] picks the backend once per process (cached in an
//! atomic): `CAE_SIMD` override first, then CPU feature detection. The
//! [`simd_dispatch!`] macro is the single dispatch point — it wraps a
//! generic kernel in per-backend `#[target_feature]` thunks so the whole
//! monomorphized call tree (all trait methods are `#[inline(always)]`)
//! is compiled with the backend's features enabled.

pub mod scalar;
pub mod vecmath;

#[cfg(target_arch = "x86_64")]
pub mod avx2;

#[cfg(target_arch = "aarch64")]
pub mod neon;

use std::sync::atomic::{AtomicU8, Ordering};

/// Virtual f32 lanes per SIMD vector, identical on every backend.
pub const LANES: usize = 8;

/// One 8-lane f32 SIMD vector.
///
/// All methods are `unsafe` because the hardware implementations use
/// target-feature intrinsics: the caller must guarantee the backend's CPU
/// features are available, which in this crate is established exactly once,
/// by [`active_backend`] / [`force_backend`] never yielding an unsupported
/// backend (see the module docs for the dispatch pattern).
///
/// Semantics are normative, not best-effort: every backend must implement
/// each operation bit-identically (see the module-level determinism policy).
#[allow(clippy::missing_safety_doc)] // blanket contract documented above
pub trait SimdF32: Copy {
    /// Broadcasts `v` to all lanes.
    unsafe fn splat(v: f32) -> Self;
    /// Loads 8 consecutive f32s from `ptr` (no alignment requirement).
    unsafe fn load(ptr: *const f32) -> Self;
    /// Stores 8 consecutive f32s to `ptr` (no alignment requirement).
    unsafe fn store(self, ptr: *mut f32);
    /// Lane-wise `self + other`.
    unsafe fn add(self, other: Self) -> Self;
    /// Lane-wise `self - other`.
    unsafe fn sub(self, other: Self) -> Self;
    /// Lane-wise `self * other`.
    unsafe fn mul(self, other: Self) -> Self;
    /// Lane-wise `self / other`.
    unsafe fn div(self, other: Self) -> Self;
    /// Lane-wise fused `self * m + a` with a single rounding.
    unsafe fn mul_add(self, m: Self, a: Self) -> Self;
    /// Lane-wise `maxps` rule: `self > other ? self : other` (NaN in `self`
    /// yields `other`).
    unsafe fn max(self, other: Self) -> Self;
    /// Lane-wise `minps` rule: `self < other ? self : other`.
    unsafe fn min(self, other: Self) -> Self;
    /// Lane-wise negation.
    unsafe fn neg(self) -> Self;
    /// Lane-wise absolute value (clears the sign bit).
    unsafe fn abs(self) -> Self;
    /// Lane-wise correctly-rounded square root.
    unsafe fn sqrt(self) -> Self;
    /// Lane-wise round to nearest integer, ties to even.
    unsafe fn round_ties_even(self) -> Self;
    /// Lane-wise `2^self` for lanes holding integral values in
    /// `[-126, 127]`, via the exponent-field bit trick.
    unsafe fn pow2i(self) -> Self;
    /// Lane mask (all-ones / all-zeros bits) of `self > other`; NaN
    /// compares false.
    unsafe fn gt(self, other: Self) -> Self;
    /// Lane mask of `self < other`; NaN compares false.
    unsafe fn lt(self, other: Self) -> Self;
    /// Lane mask of `self != self` (NaN lanes).
    unsafe fn nan_mask(self) -> Self;
    /// Per-lane `mask ? t : f`. `mask` lanes must be all-ones or all-zeros
    /// (the output of `gt`/`lt`/`nan_mask`).
    unsafe fn select(mask: Self, t: Self, f: Self) -> Self;

    /// All lanes zero.
    #[inline(always)]
    unsafe fn zero() -> Self {
        Self::splat(0.0)
    }

    /// Spills the lanes to an array (used by the fixed reduction trees).
    #[inline(always)]
    unsafe fn to_array(self) -> [f32; LANES] {
        let mut buf = [0.0f32; LANES];
        self.store(buf.as_mut_ptr());
        buf
    }

    /// Horizontal sum in a fixed pairwise tree, identical on every backend:
    /// `(l0+l4)+(l2+l6)` + `(l1+l5)+(l3+l7)` — deliberately *not* a
    /// left-to-right fold, so hardware backends could lower it with
    /// half-width extracts without changing the bits.
    #[inline(always)]
    unsafe fn reduce_sum(self) -> f32 {
        let l = self.to_array();
        let s0 = l[0] + l[4];
        let s1 = l[1] + l[5];
        let s2 = l[2] + l[6];
        let s3 = l[3] + l[7];
        (s0 + s2) + (s1 + s3)
    }

    /// Horizontal max over the same fixed tree as [`SimdF32::reduce_sum`],
    /// combining with the `maxps` rule (`a > b ? a : b`).
    #[inline(always)]
    unsafe fn reduce_max(self) -> f32 {
        #[inline(always)]
        fn m(a: f32, b: f32) -> f32 {
            if a > b {
                a
            } else {
                b
            }
        }
        let l = self.to_array();
        let s0 = m(l[0], l[4]);
        let s1 = m(l[1], l[5]);
        let s2 = m(l[2], l[6]);
        let s3 = m(l[3], l[7]);
        m(m(s0, s2), m(s1, s3))
    }
}

/// Which [`SimdF32`] implementation the process is using.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Backend {
    /// `[f32; 8]` software vector (portable fallback / SSE2 via
    /// auto-vectorization).
    Scalar = 1,
    /// `__m256` + FMA on x86-64.
    Avx2 = 2,
    /// Paired `float32x4_t` on aarch64.
    Neon = 3,
}

impl Backend {
    /// Lower-case backend name as recorded in benchmark rows and profiles.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Avx2 => "avx2",
            Backend::Neon => "neon",
        }
    }

    /// `cae_trace` counter key bumped once per GEMM call under this backend,
    /// which is how `cae_trace::profile` learns the backend of a run.
    pub fn counter_key(self) -> &'static str {
        match self {
            Backend::Scalar => "gemm.backend.scalar",
            Backend::Avx2 => "gemm.backend.avx2",
            Backend::Neon => "gemm.backend.neon",
        }
    }

    /// Whether the running CPU can execute this backend.
    pub fn supported(self) -> bool {
        match self {
            Backend::Scalar => true,
            #[cfg(target_arch = "x86_64")]
            Backend::Avx2 => {
                is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma")
            }
            #[cfg(target_arch = "aarch64")]
            Backend::Neon => true, // baseline on aarch64
            #[allow(unreachable_patterns)] // arms above are cfg-gated
            _ => false,
        }
    }

    fn from_u8(v: u8) -> Backend {
        match v {
            2 => Backend::Avx2,
            3 => Backend::Neon,
            _ => Backend::Scalar,
        }
    }
}

/// Cached backend choice; 0 = not yet initialized.
static ACTIVE: AtomicU8 = AtomicU8::new(0);

/// Best backend the running CPU supports, ignoring `CAE_SIMD`.
#[allow(unreachable_code)] // the aarch64 arm returns unconditionally
pub fn detected_backend() -> Backend {
    #[cfg(target_arch = "x86_64")]
    {
        if Backend::Avx2.supported() {
            return Backend::Avx2;
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        return Backend::Neon;
    }
    Backend::Scalar
}

/// Parses a `CAE_SIMD` value. Disable tokens follow the same
/// case-insensitive convention as `CAE_CELL_PARALLEL` (`0`, `off`,
/// `false`, `no`), all forcing the scalar backend; `scalar`/`avx2`/`neon`
/// name a backend explicitly. Unknown values and unsupported backends fall
/// back to auto-detection so a stale override can never crash a run.
fn parse_override(value: &str) -> Option<Backend> {
    let requested = match value.trim().to_ascii_lowercase().as_str() {
        "0" | "off" | "false" | "no" | "scalar" => Backend::Scalar,
        "avx2" => Backend::Avx2,
        "neon" => Backend::Neon,
        _ => return None,
    };
    requested.supported().then_some(requested)
}

fn init_backend() -> Backend {
    match std::env::var("CAE_SIMD") {
        Ok(v) => parse_override(&v).unwrap_or_else(detected_backend),
        Err(_) => detected_backend(),
    }
}

/// The backend every dispatched kernel in this process uses.
///
/// Resolved once (first call) from `CAE_SIMD` or CPU detection and cached;
/// later changes to the environment variable have no effect. The returned
/// backend is always [`Backend::supported`] on the running CPU — that
/// invariant is what makes the `#[target_feature]` thunks behind
/// `simd_dispatch!` sound.
pub fn active_backend() -> Backend {
    match ACTIVE.load(Ordering::Relaxed) {
        0 => {
            let b = init_backend();
            ACTIVE.store(b as u8, Ordering::Relaxed);
            b
        }
        v => Backend::from_u8(v),
    }
}

/// Forces the process-wide backend, overriding `CAE_SIMD` and detection.
///
/// Test hook for the scalar-vs-SIMD parity suite; safe to call at any time
/// precisely because all backends produce bit-identical results.
///
/// # Panics
/// Panics if the requested backend is not supported on the running CPU.
pub fn force_backend(backend: Backend) {
    assert!(
        backend.supported(),
        "backend {:?} not supported on this CPU",
        backend
    );
    ACTIVE.store(backend as u8, Ordering::Relaxed);
}

/// Wraps a generic SIMD kernel in per-backend `#[target_feature]` thunks and
/// a runtime `match` on [`active_backend`] — the crate's single dispatch
/// pattern.
///
/// ```ignore
/// simd_dispatch!(pub fn vec_add(a: &[f32], b: &[f32], out: &mut [f32]) = add_slice);
/// ```
///
/// expands to a safe `vec_add` that runs `add_slice::<AvxF32>` inside an
/// `#[target_feature(enable = "avx2", enable = "fma")]` thunk when the AVX2
/// backend is active (so the whole inlined call tree is compiled with FMA),
/// and `add_slice::<ScalarF32>` otherwise.
macro_rules! simd_dispatch {
    ($(#[$meta:meta])* $vis:vis fn $name:ident($($arg:ident: $ty:ty),* $(,)?) $(-> $ret:ty)? = $kernel:ident) => {
        $(#[$meta])*
        $vis fn $name($($arg: $ty),*) $(-> $ret)? {
            #[cfg(target_arch = "x86_64")]
            #[target_feature(enable = "avx2", enable = "fma")]
            unsafe fn thunk_avx2($($arg: $ty),*) $(-> $ret)? {
                unsafe { $kernel::<$crate::simd::avx2::AvxF32>($($arg),*) }
            }
            #[cfg(target_arch = "aarch64")]
            #[target_feature(enable = "neon")]
            unsafe fn thunk_neon($($arg: $ty),*) $(-> $ret)? {
                unsafe { $kernel::<$crate::simd::neon::NeonF32>($($arg),*) }
            }
            match $crate::simd::active_backend() {
                // SAFETY: `active_backend` only ever yields backends whose
                // target features were runtime-detected on this CPU.
                #[cfg(target_arch = "x86_64")]
                $crate::simd::Backend::Avx2 => unsafe { thunk_avx2($($arg),*) },
                #[cfg(target_arch = "aarch64")]
                $crate::simd::Backend::Neon => unsafe { thunk_neon($($arg),*) },
                // SAFETY: the scalar backend needs no target features.
                _ => unsafe { $kernel::<$crate::simd::scalar::ScalarF32>($($arg),*) },
            }
        }
    };
}

pub(crate) use simd_dispatch;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detected_backend_is_supported() {
        assert!(detected_backend().supported());
        assert!(Backend::Scalar.supported());
    }

    #[test]
    fn override_parsing_matches_cell_parallel_conventions() {
        for v in ["0", "off", "FALSE", " no ", "Scalar", "SCALAR"] {
            assert_eq!(parse_override(v), Some(Backend::Scalar), "value {v:?}");
        }
        // Unknown tokens fall back to detection.
        assert_eq!(parse_override("pentium"), None);
        assert_eq!(parse_override(""), None);
        // Named backends resolve only when the CPU supports them.
        #[cfg(target_arch = "x86_64")]
        if Backend::Avx2.supported() {
            assert_eq!(parse_override("AVX2"), Some(Backend::Avx2));
        }
        #[cfg(target_arch = "x86_64")]
        assert_eq!(parse_override("neon"), None, "neon never valid on x86-64");
    }

    #[test]
    fn backend_names_and_counter_keys_agree() {
        for b in [Backend::Scalar, Backend::Avx2, Backend::Neon] {
            assert_eq!(b.counter_key(), format!("gemm.backend.{}", b.name()));
            assert_eq!(Backend::from_u8(b as u8), b);
        }
    }

    #[test]
    fn reduce_trees_are_fixed_and_total() {
        // reduce_sum must follow the documented pairwise tree, not a fold.
        let v: Vec<f32> = (1..=8).map(|i| i as f32).collect();
        let x = unsafe { scalar::ScalarF32::load(v.as_ptr()) };
        let tree: f32 = ((1.0 + 5.0) + (3.0 + 7.0)) + ((2.0 + 6.0) + (4.0 + 8.0));
        assert_eq!(unsafe { x.reduce_sum() }.to_bits(), tree.to_bits());
        assert_eq!(unsafe { x.reduce_max() }, 8.0);
    }
}
