//! Serve determinism: the same request trace must produce a byte-identical
//! prediction log regardless of batching cutoffs — a request's logits may
//! not depend on which batch it landed in, which worker served it, or how
//! many clients were flooding the queue.

use cae_nn::infer::FreezeOptions;
use cae_nn::models::Arch;
use cae_nn::module::ForwardCtx;
use cae_serve::{prediction_log, run_closed_loop, run_open_loop, RequestTrace, ServeOptions};
use cae_tensor::rng::TensorRng;
use cae_tensor::Var;

/// A small warmed student (non-trivial BN statistics) frozen in fused mode.
fn frozen_student(int8: bool) -> cae_nn::infer::FrozenClassifier {
    let mut rng = TensorRng::seed_from(33);
    let model = Arch::ResNet18.build(4, 4, &mut rng);
    for _ in 0..2 {
        let x = Var::constant(rng.normal_tensor(&[4, 3, 8, 8], 0.2, 1.1));
        model.forward(&x, &mut ForwardCtx::train());
    }
    let opts = if int8 { FreezeOptions::fused().int8() } else { FreezeOptions::fused() };
    model.freeze_with(&opts)
}

#[test]
fn prediction_log_is_byte_identical_across_batching_configs() {
    let trace = RequestTrace::synthetic(60, 3, 8, 77);
    let reference = {
        let run = run_closed_loop(
            frozen_student(false),
            ServeOptions::default().with_max_batch(1),
            &trace,
        );
        assert_eq!(run.predictions.len(), trace.len());
        prediction_log(&run.predictions)
    };
    for (max_batch, max_latency_us, clients) in
        [(8, 500, 2), (32, 2000, 4), (3, 50, 5), (60, 10_000, 1)]
    {
        let opts = ServeOptions::default()
            .with_max_batch(max_batch)
            .with_max_latency_us(max_latency_us);
        let run = run_open_loop(frozen_student(false), opts, &trace, clients);
        assert_eq!(run.predictions.len(), trace.len());
        assert_eq!(
            prediction_log(&run.predictions),
            reference,
            "batching config (max_batch={max_batch}, cutoff={max_latency_us}us, \
             clients={clients}) changed a prediction"
        );
    }
}

#[test]
fn int8_students_are_batching_deterministic_too() {
    let trace = RequestTrace::synthetic(24, 3, 8, 78);
    let single = run_closed_loop(
        frozen_student(true),
        ServeOptions::default().with_max_batch(1),
        &trace,
    );
    let batched = run_open_loop(
        frozen_student(true),
        ServeOptions::default().with_max_batch(8).with_max_latency_us(1000),
        &trace,
        3,
    );
    assert_eq!(
        prediction_log(&single.predictions),
        prediction_log(&batched.predictions)
    );
}
