//! `cae-serve`: a dynamic-batching inference server over frozen CAE-DFKD
//! students.
//!
//! The deployment story CAE-DFKD motivates — distill once, serve the
//! student cheaply — ends at a serving layer. This crate provides it for
//! the frozen-graph inference path: single-image queries from many
//! concurrent clients are pulled from a bounded queue and dynamically
//! batched into GEMM-friendly forwards, dispatching when either a full
//! batch ([`ServeOptions::max_batch`]) is available or the oldest queued
//! request has waited [`ServeOptions::max_latency_us`].
//!
//! Like the rest of the workspace, there is no async runtime and no
//! external dependency: the queue is a mutex + two condvars, completion
//! handoff is a per-request one-shot slot, and workers are plain threads
//! running [`cae_nn::infer::FrozenClassifier::forward`] on the shared
//! tensor pool.
//!
//! Because the underlying GEMM computes each batch row independently,
//! predictions are **bit-identical regardless of batching** — the
//! integration tests byte-diff [`bench::prediction_log`]s across
//! configurations to prove it. Loading a student frozen with int8 weight
//! quantization (`FreezeOptions::int8`) composes transparently: the
//! dequantized weights are ordinary f32 tensors by the time they reach
//! this crate.
//!
//! Runtime knobs come from the `CAE_SERVE_*` entries of
//! [`cae_core::config::Config`] via [`ServeOptions::from_config`].
//!
//! Every prediction carries a [`PhaseBreakdown`] decomposing its
//! server-side latency into queue-wait, batch-assembly, forward and
//! completion-handoff; when metrics recording is on
//! ([`cae_trace::metrics`]) the same durations feed the lock-free
//! `serve.phase.*` histograms, from which the bench harnesses derive
//! per-phase p50/p99 ([`bench::PhaseStats`]).

pub mod bench;
pub mod server;

pub use bench::{
    phase_stats_from_metrics, prediction_log, run_closed_loop, run_open_loop, PhaseStats,
    RequestTrace, RunResult, PHASE_HISTOGRAMS,
};
pub use server::{PhaseBreakdown, Prediction, ServeOptions, ServeSummary, Server, Ticket};
