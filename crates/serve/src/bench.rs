//! Serving benchmark harness: deterministic request traces, closed- and
//! open-loop drivers, latency statistics, and a byte-stable prediction log.
//!
//! The same harness backs three surfaces: the `bench_serve` bin (writes
//! `BENCH_serve.json`), the `cae-dfkd serve-bench` subcommand, and the
//! determinism integration test (same trace ⇒ byte-identical
//! [`prediction_log`] across batching configurations).

use crate::server::{Prediction, ServeOptions, Server, Ticket};
use cae_nn::infer::FrozenClassifier;
use cae_tensor::rng::TensorRng;
use cae_tensor::Tensor;
use cae_trace::metrics;
use std::sync::{Mutex, PoisonError};
use std::time::Instant;

/// The four per-request phases, in pipeline order, paired with their
/// histogram names. The drivers read percentiles back out of these
/// histograms — not out of the raw predictions — so the reported p50/p99
/// are exactly what the live exposition layer would publish.
pub const PHASE_HISTOGRAMS: [(&str, &str); 4] = [
    ("queue_wait", "serve.phase.queue_wait"),
    ("assembly", "serve.phase.assembly"),
    ("forward", "serve.phase.forward"),
    ("handoff", "serve.phase.handoff"),
];

/// Histogram-derived p50/p99 for one serve phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseStats {
    /// Short phase name (`queue_wait`, `assembly`, `forward`, `handoff`).
    pub phase: &'static str,
    /// Samples recorded (= requests served while metrics were on).
    pub count: u64,
    /// Median, µs (log2-bucket resolution).
    pub p50_us: u64,
    /// 99th percentile, µs (log2-bucket resolution).
    pub p99_us: u64,
}

/// Reads the current `serve.phase.*` histogram contents as per-phase
/// stats, pipeline order. Empty when metrics recording is disabled (the
/// histograms then hold no samples).
pub fn phase_stats_from_metrics() -> Vec<PhaseStats> {
    let snap = metrics::snapshot();
    PHASE_HISTOGRAMS
        .iter()
        .filter_map(|&(phase, hist_name)| {
            let h = snap.histogram(hist_name)?;
            if h.count == 0 {
                return None;
            }
            Some(PhaseStats {
                phase,
                count: h.count,
                p50_us: h.p50_ns() / 1_000,
                p99_us: h.p99_ns() / 1_000,
            })
        })
        .collect()
}

/// A reproducible sequence of single-image requests: request `i` is a
/// pure function of `(seed, i)`, so every run over the same trace serves
/// identical inputs.
pub struct RequestTrace {
    images: Vec<Tensor>,
}

impl RequestTrace {
    /// `n` Gaussian images of shape `[1, channels, hw, hw]`.
    pub fn synthetic(n: usize, channels: usize, hw: usize, seed: u64) -> RequestTrace {
        let mut rng = TensorRng::seed_from(seed);
        RequestTrace {
            images: (0..n)
                .map(|_| rng.normal_tensor(&[1, channels, hw, hw], 0.0, 1.0))
                .collect(),
        }
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.images.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.images.is_empty()
    }

    /// The `i`-th request image.
    pub fn image(&self, i: usize) -> &Tensor {
        &self.images[i]
    }
}

/// One driver run: every prediction plus the wall-clock it took.
pub struct RunResult {
    /// All predictions, sorted by request id.
    pub predictions: Vec<Prediction>,
    /// Wall-clock seconds from first submission to last completion.
    pub seconds: f64,
    /// Histogram-derived per-phase p50/p99 for this run (the drivers
    /// reset the histograms at start). Empty when metrics are disabled.
    pub phases: Vec<PhaseStats>,
}

impl RunResult {
    /// Requests per second.
    pub fn throughput_rps(&self) -> f64 {
        self.predictions.len() as f64 / self.seconds.max(1e-12)
    }

    /// Latency percentile in µs over the server-measured per-request
    /// latencies (`q` in `[0, 1]`; nearest-rank on the sorted sample).
    pub fn latency_percentile_us(&self, q: f64) -> u64 {
        let mut lat: Vec<u64> = self.predictions.iter().map(|p| p.latency_us).collect();
        if lat.is_empty() {
            return 0;
        }
        lat.sort_unstable();
        let rank = ((lat.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
        lat[rank]
    }

    /// Mean served batch size.
    pub fn mean_batch(&self) -> f64 {
        if self.predictions.is_empty() {
            return 0.0;
        }
        let total: usize = self.predictions.iter().map(|p| p.batch_size).sum();
        total as f64 / self.predictions.len() as f64
    }

    /// One-line per-phase summary for console output, `None` when no
    /// phase histograms were populated (metrics disabled).
    pub fn phase_summary(&self) -> Option<String> {
        if self.phases.is_empty() {
            return None;
        }
        Some(
            self.phases
                .iter()
                .map(|p| format!("{} p50 {}us p99 {}us", p.phase, p.p50_us, p.p99_us))
                .collect::<Vec<String>>()
                .join(" | "),
        )
    }
}

fn sorted_by_id(mut predictions: Vec<Prediction>) -> Vec<Prediction> {
    predictions.sort_by_key(|p| p.id);
    predictions
}

/// Closed-loop driver: one synchronous client, submit → wait, one request
/// in flight at a time. This is the "one-request-at-a-time" baseline the
/// batched-speedup acceptance gate compares against — it pays the full
/// queue/handoff overhead per request and can never batch.
pub fn run_closed_loop(model: FrozenClassifier, opts: ServeOptions, trace: &RequestTrace) -> RunResult {
    // Per-run phase percentiles: clear whatever a previous run left in
    // the (process-cumulative) histograms.
    metrics::reset();
    let server = Server::start(model, opts);
    let started = Instant::now();
    let predictions = (0..trace.len())
        .map(|i| server.query(i as u64, trace.image(i).clone()))
        .collect();
    let seconds = started.elapsed().as_secs_f64();
    server.shutdown();
    RunResult {
        predictions: sorted_by_id(predictions),
        seconds,
        phases: phase_stats_from_metrics(),
    }
}

/// Open-loop driver: `clients` concurrent submitters flood the queue
/// (bounded by `opts.queue_cap`, so backpressure applies) and collect
/// their tickets. Request `i` goes to client `i % clients`, but ids — and
/// therefore the [`prediction_log`] — are independent of scheduling.
pub fn run_open_loop(
    model: FrozenClassifier,
    opts: ServeOptions,
    trace: &RequestTrace,
    clients: usize,
) -> RunResult {
    assert!(clients >= 1, "at least one client required");
    metrics::reset();
    let server = Server::start(model, opts);
    let collected: Mutex<Vec<Prediction>> = Mutex::new(Vec::with_capacity(trace.len()));
    let started = Instant::now();
    std::thread::scope(|scope| {
        for client in 0..clients {
            let server = &server;
            let collected = &collected;
            scope.spawn(move || {
                let tickets: Vec<Ticket> = (client..trace.len())
                    .step_by(clients)
                    .map(|i| server.submit(i as u64, trace.image(i).clone()))
                    .collect();
                let mine: Vec<Prediction> = tickets.into_iter().map(Ticket::wait).collect();
                collected
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .extend(mine);
            });
        }
    });
    let seconds = started.elapsed().as_secs_f64();
    server.shutdown();
    let predictions = collected.into_inner().unwrap_or_else(PoisonError::into_inner);
    RunResult {
        predictions: sorted_by_id(predictions),
        seconds,
        phases: phase_stats_from_metrics(),
    }
}

/// Renders predictions as a byte-stable log: one `id argmax logit-bits…`
/// line per request, sorted by id. Logits are written as the hex of their
/// f32 bit patterns, so equality is exact — two logs match iff every
/// logit of every request is bit-identical. Latency and batch size are
/// deliberately excluded: they legitimately vary across configurations.
pub fn prediction_log(predictions: &[Prediction]) -> String {
    let mut sorted: Vec<&Prediction> = predictions.iter().collect();
    sorted.sort_by_key(|p| p.id);
    let mut out = String::new();
    for p in sorted {
        out.push_str(&format!("{} {}", p.id, p.argmax));
        for &logit in &p.logits {
            out.push_str(&format!(" {:08x}", logit.to_bits()));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cae_nn::infer::{Activation, FrozenOp};

    fn tiny_model() -> FrozenClassifier {
        let n = 2 * 2 * 9;
        let weight =
            Tensor::from_vec((0..n).map(|i| ((i as f32) * 0.29).sin()).collect(), &[2, 2, 3, 3])
                .unwrap();
        let spatial = vec![FrozenOp::Conv {
            weight,
            bias: Some(Tensor::zeros(&[2])),
            spec: cae_tensor::conv::Conv2dSpec::new(3, 1, 1),
            act: Activation::Relu,
            qweight: None,
        }];
        let head =
            Tensor::from_vec((0..8).map(|i| ((i as f32) * 0.41).cos()).collect(), &[2, 4]).unwrap();
        FrozenClassifier::new(spatial, head, Tensor::zeros(&[4]))
    }

    #[test]
    fn open_and_closed_loop_serve_identical_predictions() {
        let trace = RequestTrace::synthetic(24, 2, 5, 11);
        let closed = run_closed_loop(
            tiny_model(),
            ServeOptions::default().with_max_batch(1),
            &trace,
        );
        let open = run_open_loop(
            tiny_model(),
            ServeOptions::default().with_max_batch(8).with_max_latency_us(1000),
            &trace,
            3,
        );
        assert_eq!(closed.predictions.len(), 24);
        assert_eq!(open.predictions.len(), 24);
        assert_eq!(prediction_log(&closed.predictions), prediction_log(&open.predictions));
    }

    #[test]
    fn percentiles_are_order_statistics() {
        let mk = |latency_us| Prediction {
            id: latency_us,
            argmax: 0,
            logits: vec![0.0],
            latency_us,
            batch_size: 1,
            phases: Default::default(),
        };
        let run = RunResult {
            predictions: (1..=100).map(mk).collect(),
            seconds: 1.0,
            phases: Vec::new(),
        };
        assert_eq!(run.latency_percentile_us(0.0), 1);
        assert_eq!(run.latency_percentile_us(0.5), 51);
        assert_eq!(run.latency_percentile_us(0.99), 99);
        assert_eq!(run.latency_percentile_us(1.0), 100);
        assert!((run.throughput_rps() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn phase_stats_come_from_the_histograms() {
        // Force metrics on for this run: the driver's phases must be the
        // histogram-derived view, one entry per pipeline phase.
        metrics::force_enabled(true);
        let trace = RequestTrace::synthetic(16, 2, 5, 23);
        let run = run_open_loop(
            tiny_model(),
            ServeOptions::default().with_max_batch(4).with_max_latency_us(1000),
            &trace,
            2,
        );
        metrics::reset_to_env();
        // Concurrent tests may interleave their own serve runs (and their
        // drivers reset the shared histograms), so require presence and
        // ordering rather than exact counts.
        assert!(!run.phases.is_empty(), "metrics were on, phases must be populated");
        let names: Vec<&str> = run.phases.iter().map(|p| p.phase).collect();
        for name in &names {
            assert!(
                PHASE_HISTOGRAMS.iter().any(|(phase, _)| phase == name),
                "unknown phase {name}"
            );
        }
        for p in &run.phases {
            assert!(p.p50_us <= p.p99_us, "p50 must not exceed p99");
        }
        let summary = run.phase_summary().expect("phases present");
        assert!(summary.contains("p50"));
        assert!(summary.contains("p99"));
        // Disabled metrics ⇒ empty phases ⇒ no summary line.
        let empty = RunResult { predictions: Vec::new(), seconds: 1.0, phases: Vec::new() };
        assert!(empty.phase_summary().is_none());
    }

    #[test]
    fn log_is_sorted_and_hex_stable() {
        let p = |id, logit: f32| Prediction {
            id,
            argmax: 0,
            logits: vec![logit],
            latency_us: 5,
            batch_size: 2,
            phases: Default::default(),
        };
        let log = prediction_log(&[p(2, 1.5), p(0, -0.25), p(1, 0.0)]);
        let lines: Vec<&str> = log.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("0 "));
        assert_eq!(lines[0], format!("0 0 {:08x}", (-0.25f32).to_bits()));
        assert!(lines[2].starts_with("2 "));
    }
}
