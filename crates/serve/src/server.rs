//! The dynamic-batching scheduler: bounded queue, cutoff-driven dispatch,
//! per-request completion handoff.
//!
//! # Queue design
//!
//! One mutex-protected [`VecDeque`] of pending requests, two condvars:
//! `not_empty` wakes workers when requests arrive (or at shutdown),
//! `not_full` wakes blocked submitters when a batch is drained. No async
//! runtime — like the rest of the zero-dependency substrate, the handoff
//! is hand-rolled from `std::sync` primitives. Each request carries an
//! [`Arc`]'d result slot (a one-shot mutex+condvar cell); the worker that
//! forwards the batch fulfills every slot, and [`Ticket::wait`] blocks the
//! submitting client until its slot fills.
//!
//! # Cutoff semantics
//!
//! A worker dispatches a batch when **either** cutoff trips:
//!
//! * `max_batch` requests are queued (a full batch exists), or
//! * the *oldest* queued request has waited `max_latency_us` — a partial
//!   batch is dispatched rather than stalling the head of the queue.
//!
//! Shutdown relaxes both: remaining requests are drained immediately in
//! `max_batch`-sized chunks until the queue is empty.
//!
//! # Determinism
//!
//! The batched forward stacks images along dim 0 and the underlying GEMM
//! kernels compute each output row independently from that row's inputs,
//! so row `i` of a batch-`n` forward is bit-identical to the same image
//! forwarded alone. Predictions therefore do not depend on which batch a
//! request landed in — the property `tests/determinism.rs` locks down by
//! byte-diffing prediction logs across batching configurations.

use cae_nn::infer::FrozenClassifier;
use cae_tensor::Tensor;
use cae_trace::metrics::{histogram, Histogram};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Scheduler knobs. Defaults mirror the `CAE_SERVE_*` entries in
/// [`cae_core::config::Config`]; [`ServeOptions::from_config`] reads the
/// process snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeOptions {
    /// Dispatch as soon as this many requests are queued.
    pub max_batch: usize,
    /// Dispatch a partial batch once the oldest queued request has waited
    /// this long.
    pub max_latency_us: u64,
    /// Worker threads running batched forwards.
    pub workers: usize,
    /// Bounded-queue capacity; [`Server::submit`] blocks above it
    /// (backpressure instead of unbounded memory growth).
    pub queue_cap: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions { max_batch: 16, max_latency_us: 2000, workers: 1, queue_cap: 64 }
    }
}

impl ServeOptions {
    /// Options from the process-wide `CAE_SERVE_*` snapshot.
    pub fn from_config() -> Self {
        let config = cae_core::Config::get();
        ServeOptions {
            max_batch: config.serve_max_batch,
            max_latency_us: config.serve_max_latency_us,
            workers: config.serve_workers,
            queue_cap: config.serve_max_batch.saturating_mul(4).max(1),
        }
    }

    /// Returns these options with a different `max_batch` (and a queue
    /// capacity rescaled to four batches).
    pub fn with_max_batch(mut self, max_batch: usize) -> Self {
        assert!(max_batch >= 1, "max_batch must be at least 1");
        self.max_batch = max_batch;
        self.queue_cap = max_batch.saturating_mul(4).max(self.queue_cap.min(4));
        self
    }

    /// Returns these options with a different latency cutoff.
    pub fn with_max_latency_us(mut self, max_latency_us: u64) -> Self {
        self.max_latency_us = max_latency_us;
        self
    }
}

/// Where one request's server-side latency went, phase by phase. Carried
/// on every [`Prediction`] (the timestamps are free — the worker already
/// holds them) so bench harnesses can report per-phase percentiles even
/// with metrics recording off; when metrics are on the same durations
/// also land in the `serve.phase.*` histograms for live exposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PhaseBreakdown {
    /// Enqueue until the dispatching worker drained this request.
    pub queue_wait_us: u64,
    /// Drain until the batched forward started (gathering rows, concat).
    pub assembly_us: u64,
    /// The batched forward itself (shared by every request in the batch).
    pub forward_us: u64,
    /// Forward completion until this request's result slot was filled
    /// (row extraction, argmax, slot handoff).
    pub handoff_us: u64,
}

/// One completed request.
#[derive(Debug, Clone, PartialEq)]
pub struct Prediction {
    /// Caller-chosen request id (echoed back; logs sort by it).
    pub id: u64,
    /// Argmax class of the logits row.
    pub argmax: usize,
    /// The full logits row, bit-exact regardless of batch placement.
    pub logits: Vec<f32>,
    /// Server-side latency: enqueue to slot fulfillment.
    pub latency_us: u64,
    /// Size of the batch this request was served in.
    pub batch_size: usize,
    /// Per-phase latency decomposition.
    pub phases: PhaseBreakdown,
}

/// One-shot result cell: the worker fills it, the client waits on it.
struct ResultSlot {
    ready: Mutex<Option<Prediction>>,
    cv: Condvar,
}

/// A pending single-image request (`[1, C, H, W]`).
struct Pending {
    id: u64,
    image: Tensor,
    enqueued: Instant,
    slot: Arc<ResultSlot>,
}

struct QueueState {
    queue: VecDeque<Pending>,
    open: bool,
    /// Deepest the queue has been since the last batch drain. Sampling
    /// the depth gauge only at enqueue/dequeue misses bursts that arrive
    /// and drain between two samples; the high-water mark per batch
    /// window is what capacity planning actually needs.
    high_water: usize,
}

/// `&'static` handles into the `serve.phase.*` latency histograms, looked
/// up once at server start so workers record without touching the
/// registry lock.
struct PhaseHistograms {
    queue_wait: &'static Histogram,
    assembly: &'static Histogram,
    forward: &'static Histogram,
    handoff: &'static Histogram,
}

impl PhaseHistograms {
    fn intern() -> PhaseHistograms {
        PhaseHistograms {
            queue_wait: histogram("serve.phase.queue_wait"),
            assembly: histogram("serve.phase.assembly"),
            forward: histogram("serve.phase.forward"),
            handoff: histogram("serve.phase.handoff"),
        }
    }
}

struct Shared {
    state: Mutex<QueueState>,
    not_empty: Condvar,
    not_full: Condvar,
    opts: ServeOptions,
    model: FrozenClassifier,
    batches: AtomicU64,
    served: AtomicU64,
    phase_hists: PhaseHistograms,
}

/// A claim on one submitted request's eventual [`Prediction`].
pub struct Ticket {
    slot: Arc<ResultSlot>,
}

impl Ticket {
    /// Blocks until the worker fulfills this request.
    pub fn wait(self) -> Prediction {
        let mut ready = self.slot.ready.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(prediction) = ready.take() {
                return prediction;
            }
            ready = self.slot.cv.wait(ready).unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// Totals returned by [`Server::shutdown`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeSummary {
    /// Requests served (every submitted request, including those drained
    /// at shutdown).
    pub served: u64,
    /// Batched forwards dispatched.
    pub batches: u64,
}

/// The inference server: owns a frozen student and `opts.workers` threads
/// draining the shared queue.
pub struct Server {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Starts worker threads over a frozen classifier.
    pub fn start(model: FrozenClassifier, opts: ServeOptions) -> Server {
        assert!(opts.max_batch >= 1, "max_batch must be at least 1");
        assert!(opts.workers >= 1, "at least one worker required");
        assert!(opts.queue_cap >= 1, "queue capacity must be at least 1");
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState { queue: VecDeque::new(), open: true, high_water: 0 }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            opts,
            model,
            batches: AtomicU64::new(0),
            served: AtomicU64::new(0),
            phase_hists: PhaseHistograms::intern(),
        });
        let workers = (0..opts.workers)
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("cae-serve-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("failed to spawn serve worker")
            })
            .collect();
        Server { shared, workers }
    }

    /// Enqueues one single-image request (`[1, C, H, W]`) and returns a
    /// [`Ticket`] for its result. Blocks while the queue is at capacity.
    ///
    /// # Panics
    /// Panics if `image` is not a single-image NCHW tensor.
    pub fn submit(&self, id: u64, image: Tensor) -> Ticket {
        let dims = image.shape().dims();
        assert!(
            dims.len() == 4 && dims[0] == 1,
            "serve requests are single images [1, C, H, W], got {dims:?}"
        );
        let slot = Arc::new(ResultSlot { ready: Mutex::new(None), cv: Condvar::new() });
        let pending =
            Pending { id, image, enqueued: Instant::now(), slot: slot.clone() };
        let mut state = self.shared.state.lock().unwrap_or_else(PoisonError::into_inner);
        while state.queue.len() >= self.shared.opts.queue_cap {
            state = self
                .shared
                .not_full
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
        state.queue.push_back(pending);
        state.high_water = state.high_water.max(state.queue.len());
        cae_trace::gauge("serve.queue_depth", state.queue.len() as f64);
        drop(state);
        self.shared.not_empty.notify_all();
        Ticket { slot }
    }

    /// Closed-loop convenience: submit one request and block for its
    /// prediction.
    pub fn query(&self, id: u64, image: Tensor) -> Prediction {
        self.submit(id, image).wait()
    }

    /// Closes the queue, drains every remaining request, joins the
    /// workers, and returns the totals.
    pub fn shutdown(self) -> ServeSummary {
        {
            let mut state = self.shared.state.lock().unwrap_or_else(PoisonError::into_inner);
            state.open = false;
        }
        self.shared.not_empty.notify_all();
        for handle in self.workers {
            handle.join().expect("serve worker panicked");
        }
        ServeSummary {
            served: self.shared.served.load(Ordering::Relaxed),
            batches: self.shared.batches.load(Ordering::Relaxed),
        }
    }
}

/// Waits for a dispatchable batch and drains it (returning the drain
/// instant, which anchors the per-request phase decomposition), or
/// returns `None` when the server is shut down and the queue is empty.
fn next_batch(shared: &Shared) -> Option<(Vec<Pending>, Instant)> {
    let opts = &shared.opts;
    let mut state = shared.state.lock().unwrap_or_else(PoisonError::into_inner);
    loop {
        if state.queue.is_empty() {
            if !state.open {
                return None;
            }
            state = shared
                .not_empty
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
            continue;
        }
        if state.queue.len() >= opts.max_batch || !state.open {
            break;
        }
        let oldest = state.queue.front().expect("queue checked non-empty").enqueued;
        let deadline = oldest + Duration::from_micros(opts.max_latency_us);
        let now = Instant::now();
        if now >= deadline {
            break;
        }
        // Partial batch: wait for more requests, but never past the oldest
        // request's latency cutoff. Spurious and timeout wakeups both loop
        // back through the dispatch conditions.
        let (guard, _) = shared
            .not_empty
            .wait_timeout(state, deadline - now)
            .unwrap_or_else(PoisonError::into_inner);
        state = guard;
    }
    let n = opts.max_batch.min(state.queue.len());
    let batch: Vec<Pending> = state.queue.drain(..n).collect();
    let drained_at = Instant::now();
    cae_trace::gauge("serve.queue_depth", state.queue.len() as f64);
    cae_trace::gauge("serve.queue_high_water", state.high_water as f64);
    state.high_water = state.queue.len();
    drop(state);
    shared.not_full.notify_all();
    Some((batch, drained_at))
}

fn worker_loop(shared: &Shared) {
    while let Some((batch, drained_at)) = next_batch(shared) {
        let batch_index = shared.batches.fetch_add(1, Ordering::Relaxed);
        cae_trace::series("serve.batch_size", batch_index, batch.len() as f64);
        // Assembly: everything between draining the queue and launching
        // the batched forward (gathering image refs, the dim-0 concat).
        let input = {
            let images: Vec<&Tensor> = batch.iter().map(|p| &p.image).collect();
            Tensor::concat0(&images)
        };
        let forward_start = Instant::now();
        let logits = {
            let _stat = cae_trace::span_stat("serve.forward");
            shared.model.forward(&input)
        };
        let forward_end = Instant::now();
        let assembly_ns = forward_start.duration_since(drained_at).as_nanos() as u64;
        let forward_ns = forward_end.duration_since(forward_start).as_nanos() as u64;
        let classes = logits.shape().dims()[1];
        for (row, pending) in batch.iter().enumerate() {
            let row_logits = logits.data()[row * classes..(row + 1) * classes].to_vec();
            let argmax = row_logits
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i)
                .expect("logits row is non-empty");
            let queue_wait_ns = drained_at.duration_since(pending.enqueued).as_nanos() as u64;
            // Handoff ends here, just before the slot fills: the row
            // extraction and argmax above are this request's share of
            // completion work.
            let handoff_ns = forward_end.elapsed().as_nanos() as u64;
            shared.phase_hists.queue_wait.record_ns(queue_wait_ns);
            shared.phase_hists.assembly.record_ns(assembly_ns);
            shared.phase_hists.forward.record_ns(forward_ns);
            shared.phase_hists.handoff.record_ns(handoff_ns);
            let prediction = Prediction {
                id: pending.id,
                argmax,
                logits: row_logits,
                latency_us: forward_end.duration_since(pending.enqueued).as_micros() as u64,
                batch_size: batch.len(),
                phases: PhaseBreakdown {
                    queue_wait_us: queue_wait_ns / 1_000,
                    assembly_us: assembly_ns / 1_000,
                    forward_us: forward_ns / 1_000,
                    handoff_us: handoff_ns / 1_000,
                },
            };
            let mut ready = pending
                .slot
                .ready
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            *ready = Some(prediction);
            pending.slot.cv.notify_all();
        }
        shared.served.fetch_add(batch.len() as u64, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cae_nn::infer::{Activation, FrozenOp};

    /// A tiny deterministic frozen classifier: 2 input channels, 3 classes.
    fn tiny_model() -> FrozenClassifier {
        let n = 2 * 3 * 9;
        let weight =
            Tensor::from_vec((0..n).map(|i| ((i as f32) * 0.37).sin()).collect(), &[3, 2, 3, 3])
                .unwrap();
        let spatial = vec![FrozenOp::Conv {
            weight,
            bias: Some(Tensor::zeros(&[3])),
            spec: cae_tensor::conv::Conv2dSpec::new(3, 1, 1),
            act: Activation::Relu,
            qweight: None,
        }];
        let head_weight =
            Tensor::from_vec((0..9).map(|i| ((i as f32) * 0.53).cos()).collect(), &[3, 3]).unwrap();
        FrozenClassifier::new(spatial, head_weight, Tensor::zeros(&[3]))
    }

    fn image(seed: u64) -> Tensor {
        let mut rng = cae_tensor::rng::TensorRng::seed_from(seed);
        rng.normal_tensor(&[1, 2, 6, 6], 0.0, 1.0)
    }

    #[test]
    fn every_request_is_served_exactly_once_and_batches_respect_cutoff() {
        let opts = ServeOptions::default().with_max_batch(4).with_max_latency_us(500);
        let server = Server::start(tiny_model(), opts);
        let tickets: Vec<Ticket> =
            (0..13).map(|i| server.submit(i, image(i))).collect();
        let mut ids: Vec<u64> = tickets
            .into_iter()
            .map(|t| {
                let p = t.wait();
                assert!(p.batch_size >= 1 && p.batch_size <= 4);
                assert_eq!(p.logits.len(), 3);
                p.id
            })
            .collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..13).collect::<Vec<u64>>());
        let summary = server.shutdown();
        assert_eq!(summary.served, 13);
        assert!(summary.batches >= 4, "13 requests at max_batch 4 need >= 4 batches");
    }

    #[test]
    fn shutdown_drains_queued_requests() {
        // A huge latency cutoff would park requests for a minute; shutdown
        // must drain them immediately instead.
        let opts = ServeOptions::default().with_max_batch(64).with_max_latency_us(60_000_000);
        let server = Server::start(tiny_model(), opts);
        let tickets: Vec<Ticket> = (0..5).map(|i| server.submit(i, image(i))).collect();
        let summary = server.shutdown();
        assert_eq!(summary.served, 5);
        for t in tickets {
            let p = t.wait();
            assert_eq!(p.logits.len(), 3);
        }
    }

    #[test]
    fn batched_and_single_predictions_are_bit_identical() {
        let opts = ServeOptions::default().with_max_batch(8).with_max_latency_us(2000);
        let batched_server = Server::start(tiny_model(), opts);
        let batched: Vec<Prediction> = {
            let tickets: Vec<Ticket> =
                (0..8).map(|i| batched_server.submit(i, image(i))).collect();
            tickets.into_iter().map(Ticket::wait).collect()
        };
        batched_server.shutdown();

        let single_server = Server::start(tiny_model(), ServeOptions::default().with_max_batch(1));
        for p in &batched {
            let alone = single_server.query(p.id, image(p.id));
            assert_eq!(alone.argmax, p.argmax);
            for (&a, &b) in alone.logits.iter().zip(&p.logits) {
                assert_eq!(a.to_bits(), b.to_bits(), "batch placement changed a logit");
            }
        }
        single_server.shutdown();
    }

    #[test]
    fn queue_high_water_mark_sees_bursts_the_depth_gauge_misses() {
        // Serialize against other tests toggling the global trace state.
        static LOCK: Mutex<()> = Mutex::new(());
        let _l = LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        cae_trace::force_enabled(true);
        let _ = cae_trace::drain();
        // A far-off latency cutoff parks all five requests; shutdown then
        // drains them in one batch, so dequeue-time depth sampling sees
        // only 0 — the high-water gauge must still report the burst of 5.
        let opts = ServeOptions::default().with_max_batch(64).with_max_latency_us(60_000_000);
        let server = Server::start(tiny_model(), opts);
        let tickets: Vec<Ticket> = (0..5).map(|i| server.submit(i, image(i))).collect();
        server.shutdown();
        for t in tickets {
            t.wait();
        }
        let trace = cae_trace::drain();
        cae_trace::reset_to_env();
        // Other concurrently-running tests may also emit serve gauges (the
        // whole suite runs under CAE_TRACE=1 in tier1), so assert the burst
        // is visible rather than demanding exact ownership of the trace.
        let high_water = trace.gauges["serve.queue_high_water"];
        assert!(high_water.max >= 5.0, "the full burst must be visible, got {}", high_water.max);
        let depth = trace.gauges["serve.queue_depth"];
        assert!(depth.count > 0, "depth gauge still sampled at enqueue/dequeue");
    }

    #[test]
    fn phase_breakdown_is_carried_on_every_prediction() {
        let opts = ServeOptions::default().with_max_batch(4).with_max_latency_us(500);
        let server = Server::start(tiny_model(), opts);
        let tickets: Vec<Ticket> = (0..8).map(|i| server.submit(i, image(i))).collect();
        for t in tickets {
            let p = t.wait();
            let ph = p.phases;
            // Phases partition enqueue→fulfillment, so their sum can't
            // exceed the end-to-end latency by more than handoff (which
            // extends past the latency stamp) plus rounding.
            let partial = ph.queue_wait_us + ph.assembly_us + ph.forward_us;
            assert!(
                partial <= p.latency_us + 4,
                "queue+assembly+forward ({partial}us) exceeds total latency ({}us)",
                p.latency_us
            );
        }
        server.shutdown();
    }

    #[test]
    #[should_panic(expected = "single images")]
    fn rejects_multi_image_submissions() {
        let server = Server::start(tiny_model(), ServeOptions::default());
        let bad = Tensor::zeros(&[2, 2, 6, 6]);
        // Leak the server so the panic doesn't double-panic in drop.
        let _ = std::mem::ManuallyDrop::new(server).submit(0, bad);
    }
}
