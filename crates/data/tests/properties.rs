//! Property-based tests of the procedural data worlds.

use cae_data::dataset::SplitDataset;
use cae_data::dense::DenseWorld;
use cae_data::viz::tile_batch;
use cae_data::world::VisionWorld;
use cae_tensor::rng::TensorRng;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every sampled image stays inside the pixel range for any world.
    #[test]
    fn images_stay_in_range(classes in 2usize..8, res in 4usize..16, seed in 0u64..500) {
        let world = VisionWorld::new(classes, res, seed);
        let mut rng = TensorRng::seed_from(seed ^ 1);
        for k in 0..classes {
            let img = world.sample(k, &mut rng);
            prop_assert_eq!(img.shape().dims(), &[3, res, res]);
            prop_assert!(img.min() >= -1.0 && img.max() <= 1.0);
        }
    }

    /// World construction is a pure function of its seed.
    #[test]
    fn worlds_are_deterministic(classes in 2usize..6, seed in 0u64..500) {
        let a = VisionWorld::new(classes, 8, seed);
        let b = VisionWorld::new(classes, 8, seed);
        let mut ra = TensorRng::seed_from(9);
        let mut rb = TensorRng::seed_from(9);
        for k in 0..classes {
            let sa = a.sample(k, &mut ra);
            let sb = b.sample(k, &mut rb);
            prop_assert_eq!(sa.data(), sb.data());
        }
    }

    /// Splits are balanced and disjointly seeded (train ≠ test pixelwise).
    #[test]
    fn splits_are_balanced(classes in 2usize..5, per_train in 2usize..6, per_test in 1usize..4, seed in 0u64..200) {
        let world = VisionWorld::new(classes, 6, seed);
        let split = SplitDataset::sample(&world, per_train, per_test, seed ^ 3);
        prop_assert_eq!(split.train.len(), classes * per_train);
        prop_assert_eq!(split.test.len(), classes * per_test);
        for k in 0..classes {
            let count = (0..split.train.len()).filter(|&i| split.train.label(i) == k).count();
            prop_assert_eq!(count, per_train);
        }
        let (a, _) = split.train.batch(&[0]);
        let (b, _) = split.test.batch(&[0]);
        prop_assert_ne!(a.data(), b.data());
    }

    /// Dense samples are internally consistent: seg ids bounded, depth
    /// positive, normals unit, boxes inside the image and consistent with
    /// the number of placed objects.
    #[test]
    fn dense_samples_are_consistent(classes in 2usize..6, res in 8usize..20, seed in 0u64..300) {
        let world = DenseWorld::new(classes, res, seed);
        let mut rng = TensorRng::seed_from(seed ^ 7);
        let s = world.sample(&mut rng);
        prop_assert_eq!(s.seg.len(), res * res);
        prop_assert!(s.seg.iter().all(|&c| c <= classes));
        prop_assert!(s.depth.data().iter().all(|&d| d > -0.5 && d < 2.5));
        let nd = s.normals.data();
        let p = res * res;
        for px in 0..p {
            let n2 = nd[px].powi(2) + nd[p + px].powi(2) + nd[2 * p + px].powi(2);
            prop_assert!((n2 - 1.0).abs() < 1e-3);
        }
        prop_assert!(!s.boxes.is_empty() && s.boxes.len() <= 3);
        for b in &s.boxes {
            prop_assert!(b.x1 <= res && b.y1 <= res && b.x0 < b.x1 && b.y0 < b.y1);
            prop_assert!(b.class < classes);
        }
    }

    /// Tiling preserves pixel values and pads with black.
    #[test]
    fn tiling_preserves_pixels(n in 1usize..7, cols in 1usize..4, seed in 0u64..100) {
        let mut rng = TensorRng::seed_from(seed);
        let batch = rng.uniform_tensor(&[n, 3, 2, 2], -1.0, 1.0);
        let grid = tile_batch(&batch, cols);
        let rows = n.div_ceil(cols);
        prop_assert_eq!(grid.shape().dims(), &[3, rows * 2, cols * 2]);
        // First image's top-left pixel lands at the grid origin, channel 0.
        prop_assert_eq!(grid.data()[0], batch.data()[0]);
    }
}
