//! Classification dataset presets simulating the paper's benchmarks.
//!
//! Class counts and resolutions are scaled for CPU training; the *relative*
//! ordering (CIFAR-10 < CIFAR-100 < Tiny-ImageNet in class count,
//! CIFAR < Tiny-ImageNet < ImageNet in resolution) is preserved. Every
//! preset carries real class-name vocabularies so the language-model prompts
//! (`"a photo of {class}"`) are meaningful.

use crate::dataset::SplitDataset;
use crate::world::VisionWorld;

/// The CIFAR-10 vocabulary.
pub const C10_NAMES: [&str; 10] = [
    "airplane", "automobile", "bird", "cat", "deer", "dog", "frog", "horse", "ship", "truck",
];

/// Twenty CIFAR-100 class names (the scaled stand-in for the 100-class set).
pub const C100_NAMES: [&str; 20] = [
    "apple", "aquarium fish", "bear", "beaver", "bicycle", "bottle", "bridge", "butterfly",
    "camel", "castle", "chair", "clock", "dolphin", "elephant", "forest", "lamp", "maple tree",
    "motorcycle", "mushroom", "orange",
];

/// Thirty Tiny-ImageNet class names (scaled stand-in for the 200-class set).
pub const TINY_NAMES: [&str; 30] = [
    "goldfish", "salamander", "bullfrog", "tailed frog", "alligator", "boa constrictor",
    "trilobite", "scorpion", "spider", "centipede", "goose", "koala", "jellyfish", "snail",
    "lobster", "flamingo", "penguin", "whale", "walrus", "chihuahua", "shepherd dog",
    "golden retriever", "tabby cat", "persian cat", "cougar", "lion", "brown bear", "ladybug",
    "fly", "bee",
];

/// Twelve ImageNet-1K class names (scaled stand-in for the 1000-class set).
pub const IMAGENET_NAMES: [&str; 12] = [
    "tench", "great white shark", "hammerhead", "electric ray", "cock", "hen", "ostrich",
    "brambling", "goldfinch", "house finch", "junco", "indigo bunting",
];

/// The four recognition benchmarks of the paper, in scaled procedural form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClassificationPreset {
    /// CIFAR-10 stand-in: 10 classes at 12×12.
    C10Sim,
    /// CIFAR-100 stand-in: 20 classes at 12×12.
    C100Sim,
    /// Tiny-ImageNet stand-in: 30 classes at 16×16.
    TinyImageNetSim,
    /// ImageNet-1K stand-in: 12 classes at 24×24.
    ImageNetSim,
}

serde::impl_json_unit_enum!(ClassificationPreset {
    C10Sim,
    C100Sim,
    TinyImageNetSim,
    ImageNetSim,
});

impl ClassificationPreset {
    /// Display name referencing the simulated benchmark.
    pub fn name(&self) -> &'static str {
        match self {
            ClassificationPreset::C10Sim => "CIFAR-10 (sim)",
            ClassificationPreset::C100Sim => "CIFAR-100 (sim)",
            ClassificationPreset::TinyImageNetSim => "Tiny-ImageNet (sim)",
            ClassificationPreset::ImageNetSim => "ImageNet-1K (sim)",
        }
    }

    /// Class-name vocabulary for language-model prompts.
    pub fn class_names(&self) -> Vec<&'static str> {
        match self {
            ClassificationPreset::C10Sim => C10_NAMES.to_vec(),
            ClassificationPreset::C100Sim => C100_NAMES.to_vec(),
            ClassificationPreset::TinyImageNetSim => TINY_NAMES.to_vec(),
            ClassificationPreset::ImageNetSim => IMAGENET_NAMES.to_vec(),
        }
    }

    /// Number of categories.
    pub fn num_classes(&self) -> usize {
        self.class_names().len()
    }

    /// Image side length (a multiple of 4, matching the generator).
    pub fn resolution(&self) -> usize {
        match self {
            ClassificationPreset::C10Sim | ClassificationPreset::C100Sim => 12,
            ClassificationPreset::TinyImageNetSim => 16,
            ClassificationPreset::ImageNetSim => 24,
        }
    }

    /// Training images per class.
    pub fn train_per_class(&self) -> usize {
        match self {
            ClassificationPreset::C10Sim => 120,
            ClassificationPreset::C100Sim => 80,
            ClassificationPreset::TinyImageNetSim => 60,
            ClassificationPreset::ImageNetSim => 60,
        }
    }

    /// Test images per class.
    pub fn test_per_class(&self) -> usize {
        match self {
            ClassificationPreset::C10Sim => 30,
            ClassificationPreset::C100Sim => 25,
            ClassificationPreset::TinyImageNetSim => 15,
            ClassificationPreset::ImageNetSim => 15,
        }
    }

    /// Builds the world defining the preset's categories.
    pub fn world(&self, seed: u64) -> VisionWorld {
        VisionWorld::new(self.num_classes(), self.resolution(), seed)
    }

    /// Samples the full train/test split.
    pub fn generate(&self, seed: u64) -> SplitDataset {
        SplitDataset::sample(
            &self.world(seed),
            self.train_per_class(),
            self.test_per_class(),
            seed ^ 0x5a5a,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_consistent() {
        for p in [
            ClassificationPreset::C10Sim,
            ClassificationPreset::C100Sim,
            ClassificationPreset::TinyImageNetSim,
            ClassificationPreset::ImageNetSim,
        ] {
            assert_eq!(p.class_names().len(), p.num_classes());
            assert_eq!(p.resolution() % 4, 0, "{}", p.name());
        }
    }

    #[test]
    fn resolution_ordering_matches_paper() {
        assert!(
            ClassificationPreset::C10Sim.resolution()
                < ClassificationPreset::TinyImageNetSim.resolution()
        );
        assert!(
            ClassificationPreset::TinyImageNetSim.resolution()
                < ClassificationPreset::ImageNetSim.resolution()
        );
    }

    #[test]
    fn generate_produces_expected_sizes() {
        let s = ClassificationPreset::C10Sim.generate(1);
        assert_eq!(s.train.len(), 10 * 120);
        assert_eq!(s.test.len(), 10 * 30);
        assert_eq!(s.train.resolution(), 12);
    }
}
