//! # cae-data
//!
//! Procedural datasets for the CAE-DFKD reproduction.
//!
//! The paper evaluates on CIFAR-10/100, Tiny-ImageNet and ImageNet-1K for
//! recognition, and on NYUv2 / ADE-20K / COCO-2017 for downstream transfer.
//! None of that data is available here, so this crate provides *procedural
//! worlds*: class-conditional image distributions whose classes are defined
//! by seeded colour/stripe/blob parameters with intra-class jitter
//! ([`world`]), and a dense-prediction world composing class-textured
//! objects over a smooth height-field, from which segmentation masks, depth
//! maps, surface normals and bounding boxes are derived analytically
//! ([`dense`]).
//!
//! The substitution preserves what DFKD actually needs: a learnable,
//! class-structured distribution for teacher pre-training and inversion, and
//! downstream tasks whose labels are consistent functions of the same visual
//! vocabulary, so *transferability differences between methods remain
//! measurable*.
//!
//! # Example
//!
//! ```
//! use cae_data::presets::ClassificationPreset;
//!
//! let split = ClassificationPreset::C10Sim.generate(42);
//! assert_eq!(split.train.num_classes(), 10);
//! let (images, labels) = split.train.batch(&[0, 1, 2]);
//! assert_eq!(images.shape().dims()[0], 3);
//! assert_eq!(labels.len(), 3);
//! ```

pub mod dataset;
pub mod dense;
pub mod presets;
pub mod viz;
pub mod world;

pub use dataset::{Dataset, SplitDataset};
pub use presets::ClassificationPreset;
pub use world::VisionWorld;
