//! The dense-prediction world simulating NYUv2 / ADE-20K / COCO-2017.
//!
//! A sample is an image composed of class-textured rectangular objects over
//! a smooth height-field background. All labels are derived analytically
//! from the composition:
//!
//! * **segmentation** — per-pixel object class (0 = background);
//! * **depth** — the height field, with each object raised by its own
//!   elevation;
//! * **surface normals** — unit normals of the depth surface (central
//!   differences);
//! * **detection** — the objects' bounding boxes and classes.
//!
//! Object textures come from the same procedural vocabulary as the
//! classification worlds ([`crate::world::ClassSpec`]), so features learned
//! during (data-free) classification genuinely transfer.

use crate::world::VisionWorld;
use cae_tensor::rng::TensorRng;
use cae_tensor::Tensor;

/// An axis-aligned bounding box with inclusive-exclusive pixel bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BBox {
    /// Left column.
    pub x0: usize,
    /// Top row.
    pub y0: usize,
    /// Right column (exclusive).
    pub x1: usize,
    /// Bottom row (exclusive).
    pub y1: usize,
    /// Object class (0-based, *without* the background offset).
    pub class: usize,
}

impl BBox {
    /// Box area in pixels.
    pub fn area(&self) -> usize {
        (self.x1 - self.x0) * (self.y1 - self.y0)
    }

    /// Intersection-over-union with another box.
    pub fn iou(&self, other: &BBox) -> f32 {
        let ix0 = self.x0.max(other.x0);
        let iy0 = self.y0.max(other.y0);
        let ix1 = self.x1.min(other.x1);
        let iy1 = self.y1.min(other.y1);
        if ix1 <= ix0 || iy1 <= iy0 {
            return 0.0;
        }
        let inter = ((ix1 - ix0) * (iy1 - iy0)) as f32;
        let union = (self.area() + other.area()) as f32 - inter;
        inter / union
    }
}

/// One fully labelled dense sample.
#[derive(Debug, Clone)]
pub struct DenseSample {
    /// RGB image `[3, H, W]` in `[-1, 1]`.
    pub image: Tensor,
    /// Per-pixel class ids, `0` = background, `k + 1` = object class `k`.
    pub seg: Vec<usize>,
    /// Depth map `[H, W]` in roughly `[0, 1.6]`.
    pub depth: Tensor,
    /// Surface normals `[3, H, W]`, unit length.
    pub normals: Tensor,
    /// Ground-truth boxes.
    pub boxes: Vec<BBox>,
}

/// Generator of dense samples over a fixed object vocabulary.
#[derive(Debug, Clone)]
pub struct DenseWorld {
    objects: VisionWorld,
    resolution: usize,
}

impl DenseWorld {
    /// Creates a world with `num_object_classes` object categories at
    /// `resolution`×`resolution`.
    pub fn new(num_object_classes: usize, resolution: usize, seed: u64) -> Self {
        DenseWorld {
            objects: VisionWorld::new(num_object_classes, resolution, seed ^ 0x0b7ec7),
            resolution,
        }
    }

    /// Number of object categories (segmentation additionally has a
    /// background class).
    pub fn num_object_classes(&self) -> usize {
        self.objects.num_classes()
    }

    /// Number of segmentation classes (objects + background).
    pub fn num_seg_classes(&self) -> usize {
        self.num_object_classes() + 1
    }

    /// Image side length.
    pub fn resolution(&self) -> usize {
        self.resolution
    }

    /// Draws one labelled sample.
    pub fn sample(&self, rng: &mut TensorRng) -> DenseSample {
        let r = self.resolution;
        // Smooth height field: three random sinusoids.
        let mut waves = Vec::new();
        for _ in 0..3 {
            waves.push((
                rng.uniform_in(0.5, 2.0),                        // frequency
                rng.uniform_in(0.0, std::f32::consts::TAU),      // phase
                rng.uniform_in(0.0, std::f32::consts::PI),       // direction
                rng.uniform_in(0.05, 0.15),                      // amplitude
            ));
        }
        let height = |u: f32, v: f32| -> f32 {
            let mut z = 0.5f32;
            for &(f, p, a, amp) in &waves {
                let t = u * a.cos() + v * a.sin();
                z += amp * (std::f32::consts::TAU * f * t + p).sin();
            }
            z
        };

        let mut image = vec![0.0f32; 3 * r * r];
        let mut depth = vec![0.0f32; r * r];
        let mut seg = vec![0usize; r * r];
        for i in 0..r {
            for j in 0..r {
                let z = height(i as f32 / r as f32, j as f32 / r as f32);
                depth[i * r + j] = z;
                // Background colour tracks height (like shaded terrain).
                let shade = (z - 0.5) * 2.0;
                image[i * r + j] = (-0.3 + 0.6 * shade).clamp(-1.0, 1.0);
                image[r * r + i * r + j] = (0.1 + 0.4 * shade).clamp(-1.0, 1.0);
                image[2 * r * r + i * r + j] = (0.2 - 0.5 * shade).clamp(-1.0, 1.0);
            }
        }

        // Place 2–3 objects.
        let num_objects = 2 + rng.index(2);
        let mut boxes = Vec::new();
        for _ in 0..num_objects {
            let side_min = (r as f32 * 0.25) as usize;
            let side_max = (r as f32 * 0.5) as usize;
            let sw = side_min + rng.index(side_max - side_min + 1);
            let sh = side_min + rng.index(side_max - side_min + 1);
            let x0 = rng.index(r - sw);
            let y0 = rng.index(r - sh);
            let class = rng.index(self.num_object_classes());
            let elevation = rng.uniform_in(0.3, 0.6);
            // Render a texture patch for the object's class.
            let patch_res = sw.max(sh).max(4);
            let patch = self.objects.spec(class).render(patch_res, rng);
            for dy in 0..sh {
                for dx in 0..sw {
                    let (i, j) = (y0 + dy, x0 + dx);
                    let (pi, pj) = (dy.min(patch_res - 1), dx.min(patch_res - 1));
                    for c in 0..3 {
                        image[c * r * r + i * r + j] =
                            patch[c * patch_res * patch_res + pi * patch_res + pj];
                    }
                    seg[i * r + j] = class + 1;
                    depth[i * r + j] += elevation;
                }
            }
            boxes.push(BBox {
                x0,
                y0,
                x1: x0 + sw,
                y1: y0 + sh,
                class,
            });
        }

        // Normals from central differences of the final depth surface.
        let mut normals = vec![0.0f32; 3 * r * r];
        let d = |i: isize, j: isize| -> f32 {
            let i = i.clamp(0, r as isize - 1) as usize;
            let j = j.clamp(0, r as isize - 1) as usize;
            depth[i * r + j]
        };
        for i in 0..r {
            for j in 0..r {
                let (ii, jj) = (i as isize, j as isize);
                let dzdi = (d(ii + 1, jj) - d(ii - 1, jj)) * 0.5 * r as f32 / 4.0;
                let dzdj = (d(ii, jj + 1) - d(ii, jj - 1)) * 0.5 * r as f32 / 4.0;
                let norm = (dzdi * dzdi + dzdj * dzdj + 1.0).sqrt();
                normals[i * r + j] = -dzdi / norm;
                normals[r * r + i * r + j] = -dzdj / norm;
                normals[2 * r * r + i * r + j] = 1.0 / norm;
            }
        }

        DenseSample {
            image: Tensor::from_vec(image, &[3, r, r]).expect("shape consistent"),
            seg,
            depth: Tensor::from_vec(depth, &[r, r]).expect("shape consistent"),
            normals: Tensor::from_vec(normals, &[3, r, r]).expect("shape consistent"),
            boxes,
        }
    }
}

/// A fixed collection of dense samples with batching.
#[derive(Debug, Clone)]
pub struct DenseDataset {
    samples: Vec<DenseSample>,
    resolution: usize,
    num_seg_classes: usize,
}

impl DenseDataset {
    /// Samples `n` examples from `world`.
    pub fn sample(world: &DenseWorld, n: usize, rng: &mut TensorRng) -> Self {
        DenseDataset {
            samples: (0..n).map(|_| world.sample(rng)).collect(),
            resolution: world.resolution(),
            num_seg_classes: world.num_seg_classes(),
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Number of segmentation classes (objects + background).
    pub fn num_seg_classes(&self) -> usize {
        self.num_seg_classes
    }

    /// Image side length.
    pub fn resolution(&self) -> usize {
        self.resolution
    }

    /// Sample accessor.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn sample_at(&self, i: usize) -> &DenseSample {
        &self.samples[i]
    }

    /// Assembles the images at `indices` into an NCHW batch.
    ///
    /// # Panics
    /// Panics if any index is out of range.
    pub fn image_batch(&self, indices: &[usize]) -> Tensor {
        let r = self.resolution;
        let mut data = Vec::with_capacity(indices.len() * 3 * r * r);
        for &i in indices {
            data.extend_from_slice(self.samples[i].image.data());
        }
        Tensor::from_vec(data, &[indices.len(), 3, r, r]).expect("shape consistent")
    }
}

/// The three downstream benchmarks of the paper, in scaled procedural form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DensePreset {
    /// NYUv2 stand-in (seg + depth + normals): 8 object classes at 16×16.
    NyuSim,
    /// ADE-20K stand-in (seg): 12 object classes at 16×16.
    AdeSim,
    /// COCO-2017 stand-in (detection): 8 object classes at 20×20.
    CocoSim,
}

serde::impl_json_unit_enum!(DensePreset {
    NyuSim,
    AdeSim,
    CocoSim,
});

impl DensePreset {
    /// Display name referencing the simulated benchmark.
    pub fn name(&self) -> &'static str {
        match self {
            DensePreset::NyuSim => "NYUv2 (sim)",
            DensePreset::AdeSim => "ADE-20K (sim)",
            DensePreset::CocoSim => "COCO-2017 (sim)",
        }
    }

    /// Number of object classes.
    pub fn num_object_classes(&self) -> usize {
        match self {
            DensePreset::NyuSim => 8,
            DensePreset::AdeSim => 12,
            DensePreset::CocoSim => 8,
        }
    }

    /// Image side length.
    pub fn resolution(&self) -> usize {
        match self {
            DensePreset::NyuSim | DensePreset::AdeSim => 16,
            DensePreset::CocoSim => 20,
        }
    }

    /// Builds the world.
    pub fn world(&self, seed: u64) -> DenseWorld {
        DenseWorld::new(self.num_object_classes(), self.resolution(), seed)
    }

    /// Samples train and test datasets of the given sizes.
    pub fn generate(&self, train_n: usize, test_n: usize, seed: u64) -> (DenseDataset, DenseDataset) {
        let world = self.world(seed);
        let mut train_rng = TensorRng::seed_from(seed ^ 0x7a17);
        let mut test_rng = TensorRng::seed_from(seed ^ 0x7e57);
        (
            DenseDataset::sample(&world, train_n, &mut train_rng),
            DenseDataset::sample(&world, test_n, &mut test_rng),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_labels_are_consistent() {
        let world = DenseWorld::new(5, 16, 3);
        let mut rng = TensorRng::seed_from(0);
        let s = world.sample(&mut rng);
        assert_eq!(s.image.shape().dims(), &[3, 16, 16]);
        assert_eq!(s.seg.len(), 256);
        assert!(!s.boxes.is_empty());
        // Box interiors must be labelled with the box class... except where a
        // later box overlaps. At least the last box is fully labelled.
        let last = *s.boxes.last().expect("at least one box");
        for i in last.y0..last.y1 {
            for j in last.x0..last.x1 {
                assert_eq!(s.seg[i * 16 + j], last.class + 1);
            }
        }
    }

    #[test]
    fn normals_are_unit_length() {
        let world = DenseWorld::new(4, 12, 9);
        let mut rng = TensorRng::seed_from(1);
        let s = world.sample(&mut rng);
        let nd = s.normals.data();
        for p in 0..144 {
            let n2 = nd[p].powi(2) + nd[144 + p].powi(2) + nd[288 + p].powi(2);
            assert!((n2 - 1.0).abs() < 1e-4, "normal norm² {n2}");
        }
    }

    #[test]
    fn objects_raise_depth() {
        let world = DenseWorld::new(4, 16, 5);
        let mut rng = TensorRng::seed_from(2);
        let s = world.sample(&mut rng);
        let mut obj_sum = 0.0f32;
        let mut obj_n = 0usize;
        let mut bg_sum = 0.0f32;
        let mut bg_n = 0usize;
        for (p, &class) in s.seg.iter().enumerate() {
            if class > 0 {
                obj_sum += s.depth.data()[p];
                obj_n += 1;
            } else {
                bg_sum += s.depth.data()[p];
                bg_n += 1;
            }
        }
        assert!(obj_n > 0 && bg_n > 0);
        assert!(obj_sum / obj_n as f32 > bg_sum / bg_n as f32);
    }

    #[test]
    fn iou_of_identical_boxes_is_one() {
        let b = BBox { x0: 1, y0: 1, x1: 5, y1: 6, class: 0 };
        assert!((b.iou(&b) - 1.0).abs() < 1e-6);
        let far = BBox { x0: 10, y0: 10, x1: 12, y1: 12, class: 0 };
        assert_eq!(b.iou(&far), 0.0);
    }

    #[test]
    fn presets_generate() {
        for p in [DensePreset::NyuSim, DensePreset::AdeSim, DensePreset::CocoSim] {
            let (train, test) = p.generate(4, 2, 7);
            assert_eq!(train.len(), 4);
            assert_eq!(test.len(), 2);
            assert_eq!(train.num_seg_classes(), p.num_object_classes() + 1);
        }
    }
}
