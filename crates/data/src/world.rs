//! The procedural class-conditional image world.

use cae_tensor::rng::TensorRng;
use cae_tensor::Tensor;

/// Seeded visual parameters of one category.
///
/// A category is a joint distribution over colours, a stripe pattern and a
/// blob: discriminative enough that a CNN can learn it, variable enough that
/// memorization does not suffice.
#[derive(Debug, Clone)]
pub struct ClassSpec {
    color_a: [f32; 3],
    color_b: [f32; 3],
    stripe_freq: f32,
    stripe_angle: f32,
    blob_center: (f32, f32),
    blob_radius: f32,
}

impl ClassSpec {
    /// Derives the category's parameters from a seed.
    pub fn from_seed(seed: u64) -> Self {
        let mut rng = TensorRng::seed_from(seed);
        let mut color = |lo: f32| {
            [
                rng.uniform_in(lo, 1.0),
                rng.uniform_in(lo, 1.0),
                rng.uniform_in(lo, 1.0),
            ]
        };
        let color_a = color(-1.0);
        let color_b = color(-1.0);
        ClassSpec {
            color_a,
            color_b,
            stripe_freq: rng.uniform_in(1.0, 4.0).round(),
            stripe_angle: rng.uniform_in(0.0, std::f32::consts::PI),
            blob_center: (rng.uniform_in(0.2, 0.8), rng.uniform_in(0.2, 0.8)),
            blob_radius: rng.uniform_in(0.15, 0.35),
        }
    }

    /// Renders one sample of this category at `res`×`res`, drawing
    /// intra-class jitter (phase, colour, pixel noise) from `rng`.
    /// Pixels are in `[-1, 1]`, layout `[3, res, res]` (flat).
    pub fn render(&self, res: usize, rng: &mut TensorRng) -> Vec<f32> {
        let phase = rng.uniform_in(0.0, std::f32::consts::TAU);
        let jitter: [f32; 3] = [
            rng.uniform_in(-0.15, 0.15),
            rng.uniform_in(-0.15, 0.15),
            rng.uniform_in(-0.15, 0.15),
        ];
        let (cx, cy) = (
            self.blob_center.0 + rng.uniform_in(-0.1, 0.1),
            self.blob_center.1 + rng.uniform_in(-0.1, 0.1),
        );
        let (sin_a, cos_a) = self.stripe_angle.sin_cos();
        let mut img = vec![0.0f32; 3 * res * res];
        for i in 0..res {
            for j in 0..res {
                let u = i as f32 / res as f32;
                let v = j as f32 / res as f32;
                let t = u * cos_a + v * sin_a;
                let stripe = (std::f32::consts::TAU * self.stripe_freq * t + phase).sin();
                let d2 = (u - cx).powi(2) + (v - cy).powi(2);
                let blob = (-d2 / (self.blob_radius * self.blob_radius)).exp();
                let mix = (0.5 + 0.35 * stripe + 0.5 * blob).clamp(0.0, 1.0);
                for c in 0..3 {
                    let base = self.color_a[c] * (1.0 - mix) + self.color_b[c] * mix;
                    let noisy = base + jitter[c] + 0.08 * rng.normal();
                    img[c * res * res + i * res + j] = noisy.clamp(-1.0, 1.0);
                }
            }
        }
        img
    }
}

/// A world of `K` procedural categories at a fixed resolution.
#[derive(Debug, Clone)]
pub struct VisionWorld {
    specs: Vec<ClassSpec>,
    resolution: usize,
}

impl VisionWorld {
    /// Creates a world with `num_classes` categories derived from `seed`.
    pub fn new(num_classes: usize, resolution: usize, seed: u64) -> Self {
        let specs = (0..num_classes)
            .map(|k| ClassSpec::from_seed(seed.wrapping_add(0x9e37_79b9 * (k as u64 + 1))))
            .collect();
        VisionWorld {
            specs,
            resolution,
        }
    }

    /// Number of categories.
    pub fn num_classes(&self) -> usize {
        self.specs.len()
    }

    /// Image side length.
    pub fn resolution(&self) -> usize {
        self.resolution
    }

    /// The spec of category `k`.
    ///
    /// # Panics
    /// Panics if `k` is out of range.
    pub fn spec(&self, k: usize) -> &ClassSpec {
        &self.specs[k]
    }

    /// Draws one sample of category `k`.
    ///
    /// # Panics
    /// Panics if `k` is out of range.
    pub fn sample(&self, k: usize, rng: &mut TensorRng) -> Tensor {
        let img = self.specs[k].render(self.resolution, rng);
        Tensor::from_vec(img, &[3, self.resolution, self.resolution])
            .expect("length matches dims by construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_are_in_range_and_shaped() {
        let world = VisionWorld::new(4, 8, 7);
        let mut rng = TensorRng::seed_from(0);
        let img = world.sample(2, &mut rng);
        assert_eq!(img.shape().dims(), &[3, 8, 8]);
        for &v in img.data() {
            assert!((-1.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn same_class_varies_different_classes_differ_more() {
        let world = VisionWorld::new(6, 12, 7);
        let mut rng = TensorRng::seed_from(1);
        let a1 = world.sample(0, &mut rng);
        let a2 = world.sample(0, &mut rng);
        let b = world.sample(3, &mut rng);
        let intra = a1.sub(&a2).sq_norm();
        let inter = a1.sub(&b).sq_norm();
        assert!(intra > 0.0, "intra-class jitter must exist");
        assert!(
            inter > intra,
            "inter-class distance ({inter}) must exceed intra ({intra})"
        );
    }

    #[test]
    fn worlds_are_reproducible_from_seed() {
        let w1 = VisionWorld::new(3, 8, 99);
        let w2 = VisionWorld::new(3, 8, 99);
        let mut r1 = TensorRng::seed_from(5);
        let mut r2 = TensorRng::seed_from(5);
        assert_eq!(w1.sample(1, &mut r1).data(), w2.sample(1, &mut r2).data());
    }
}
