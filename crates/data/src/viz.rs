//! Image export: render `[3, H, W]` tensors (pixel range `[-1, 1]`) as
//! binary PPM files and tile batches into grids.
//!
//! Used to materialize the paper's qualitative panels (Fig. 2b synthetic
//! images, Fig. 5 downstream comparisons) as real image artifacts.

use cae_tensor::Tensor;
use std::io::Write;
use std::path::Path;

/// Converts a `[-1, 1]` channel value to a display byte.
fn to_byte(v: f32) -> u8 {
    (((v + 1.0) * 0.5).clamp(0.0, 1.0) * 255.0).round() as u8
}

/// Renders one `[3, H, W]` image into interleaved RGB bytes.
///
/// # Panics
/// Panics if the tensor is not `[3, H, W]`.
pub fn to_rgb_bytes(image: &Tensor) -> (Vec<u8>, usize, usize) {
    let dims = image.shape().dims();
    assert!(
        dims.len() == 3 && dims[0] == 3,
        "expected a [3, H, W] image, got {dims:?}"
    );
    let (h, w) = (dims[1], dims[2]);
    let mut bytes = Vec::with_capacity(3 * h * w);
    for p in 0..h * w {
        for c in 0..3 {
            bytes.push(to_byte(image.data()[c * h * w + p]));
        }
    }
    (bytes, w, h)
}

/// Tiles an NCHW batch into one `[3, rows·H, cols·W]` grid image (excess
/// cells are black).
///
/// # Panics
/// Panics if the batch is not `[N, 3, H, W]` or `cols` is zero.
pub fn tile_batch(batch: &Tensor, cols: usize) -> Tensor {
    let (n, c, h, w) = batch.shape().nchw();
    assert_eq!(c, 3, "expected RGB images");
    assert!(cols > 0, "cols must be positive");
    let rows = n.div_ceil(cols);
    let (gh, gw) = (rows * h, cols * w);
    let mut grid = Tensor::full(&[3, gh, gw], -1.0);
    for i in 0..n {
        let (r, col) = (i / cols, i % cols);
        for ci in 0..3 {
            for y in 0..h {
                for x in 0..w {
                    let src = batch.data()[((i * 3 + ci) * h + y) * w + x];
                    grid.data_mut()[ci * gh * gw + (r * h + y) * gw + col * w + x] = src;
                }
            }
        }
    }
    grid
}

/// Writes a `[3, H, W]` image as a binary PPM (P6) file.
///
/// # Errors
/// Returns any I/O error from creating directories or writing the file.
///
/// # Panics
/// Panics if the tensor is not `[3, H, W]`.
pub fn write_ppm(image: &Tensor, path: &Path) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let (bytes, w, h) = to_rgb_bytes(image);
    let mut file = std::fs::File::create(path)?;
    write!(file, "P6\n{w} {h}\n255\n")?;
    file.write_all(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_mapping_covers_the_range() {
        assert_eq!(to_byte(-1.0), 0);
        assert_eq!(to_byte(1.0), 255);
        assert_eq!(to_byte(0.0), 128);
        assert_eq!(to_byte(-5.0), 0); // clamped
    }

    #[test]
    fn rgb_bytes_are_interleaved() {
        // 1x1 image with channels (-1, 0, 1) → bytes (0, 128, 255).
        let img = Tensor::from_vec(vec![-1.0, 0.0, 1.0], &[3, 1, 1]).unwrap();
        let (bytes, w, h) = to_rgb_bytes(&img);
        assert_eq!((w, h), (1, 1));
        assert_eq!(bytes, vec![0, 128, 255]);
    }

    #[test]
    fn tiling_places_images_and_pads() {
        let batch = Tensor::full(&[3, 3, 2, 2], 1.0); // three white 2x2 images
        let grid = tile_batch(&batch, 2);
        assert_eq!(grid.shape().dims(), &[3, 4, 4]);
        // Fourth cell (bottom-right) is padding (-1).
        let gw = 4;
        assert_eq!(grid.data()[2 * gw + 2], -1.0); // channel 0
        assert_eq!(grid.data()[0], 1.0);
    }

    #[test]
    fn ppm_file_has_header_and_payload() {
        let img = Tensor::full(&[3, 2, 2], 0.0);
        let dir = std::env::temp_dir().join("cae_viz_test");
        let path = dir.join("img.ppm");
        write_ppm(&img, &path).expect("write succeeds");
        let content = std::fs::read(&path).expect("read back");
        assert!(content.starts_with(b"P6\n2 2\n255\n"));
        assert_eq!(content.len(), 11 + 12);
        std::fs::remove_dir_all(&dir).ok();
    }
}
