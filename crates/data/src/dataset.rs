//! In-memory labelled datasets and batching.

use crate::world::VisionWorld;
use cae_tensor::rng::TensorRng;
use cae_tensor::Tensor;

/// A labelled, in-memory image classification dataset.
#[derive(Debug, Clone)]
pub struct Dataset {
    images: Vec<Vec<f32>>,
    labels: Vec<usize>,
    num_classes: usize,
    resolution: usize,
}

impl Dataset {
    /// Samples a balanced dataset of `per_class` images per category from
    /// `world`.
    pub fn sample_balanced(world: &VisionWorld, per_class: usize, rng: &mut TensorRng) -> Self {
        let mut images = Vec::with_capacity(world.num_classes() * per_class);
        let mut labels = Vec::with_capacity(world.num_classes() * per_class);
        for k in 0..world.num_classes() {
            for _ in 0..per_class {
                images.push(world.sample(k, rng).data().to_vec());
                labels.push(k);
            }
        }
        Dataset {
            images,
            labels,
            num_classes: world.num_classes(),
            resolution: world.resolution(),
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.images.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.images.is_empty()
    }

    /// Number of categories.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Image side length.
    pub fn resolution(&self) -> usize {
        self.resolution
    }

    /// Label of sample `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn label(&self, i: usize) -> usize {
        self.labels[i]
    }

    /// Assembles the samples at `indices` into an NCHW batch.
    ///
    /// # Panics
    /// Panics if any index is out of range.
    pub fn batch(&self, indices: &[usize]) -> (Tensor, Vec<usize>) {
        let r = self.resolution;
        let mut data = Vec::with_capacity(indices.len() * 3 * r * r);
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            data.extend_from_slice(&self.images[i]);
            labels.push(self.labels[i]);
        }
        (
            Tensor::from_vec(data, &[indices.len(), 3, r, r])
                .expect("length matches dims by construction"),
            labels,
        )
    }

    /// Yields shuffled minibatch index lists covering one epoch.
    pub fn epoch_batches(&self, batch_size: usize, rng: &mut TensorRng) -> Vec<Vec<usize>> {
        let mut order: Vec<usize> = (0..self.len()).collect();
        // Fisher–Yates shuffle.
        for i in (1..order.len()).rev() {
            let j = rng.index(i + 1);
            order.swap(i, j);
        }
        order
            .chunks(batch_size.max(1))
            .map(|c| c.to_vec())
            .collect()
    }
}

/// A train/test split over the same world.
#[derive(Debug, Clone)]
pub struct SplitDataset {
    /// Training partition.
    pub train: Dataset,
    /// Held-out evaluation partition.
    pub test: Dataset,
}

impl SplitDataset {
    /// Samples `train_per_class`/`test_per_class` balanced images per
    /// category from `world`, using independent RNG streams.
    pub fn sample(
        world: &VisionWorld,
        train_per_class: usize,
        test_per_class: usize,
        seed: u64,
    ) -> Self {
        let mut train_rng = TensorRng::seed_from(seed);
        let mut test_rng = TensorRng::seed_from(seed ^ 0xdead_beef);
        SplitDataset {
            train: Dataset::sample_balanced(world, train_per_class, &mut train_rng),
            test: Dataset::sample_balanced(world, test_per_class, &mut test_rng),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_split() -> SplitDataset {
        let world = VisionWorld::new(3, 8, 11);
        SplitDataset::sample(&world, 4, 2, 5)
    }

    #[test]
    fn balanced_sizes() {
        let s = tiny_split();
        assert_eq!(s.train.len(), 12);
        assert_eq!(s.test.len(), 6);
        let count0 = (0..s.train.len()).filter(|&i| s.train.label(i) == 0).count();
        assert_eq!(count0, 4);
    }

    #[test]
    fn batch_shapes() {
        let s = tiny_split();
        let (x, y) = s.train.batch(&[0, 5, 11]);
        assert_eq!(x.shape().dims(), &[3, 3, 8, 8]);
        assert_eq!(y.len(), 3);
    }

    #[test]
    fn epoch_batches_cover_everything_once() {
        let s = tiny_split();
        let mut rng = TensorRng::seed_from(0);
        let batches = s.train.epoch_batches(5, &mut rng);
        let mut all: Vec<usize> = batches.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..12).collect::<Vec<_>>());
    }
}
