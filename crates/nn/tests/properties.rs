//! Property-based tests of the neural-network layer zoo, optimizers and
//! checkpointing.

use cae_nn::layers::{BatchNorm2d, Conv2d, Linear};
use cae_nn::loss::cross_entropy;
use cae_nn::models::Arch;
use cae_nn::module::{ForwardCtx, Module};
use cae_nn::optim::{Adam, CosineSchedule, Optimizer, Sgd};
use cae_nn::serialize::{restore, snapshot};
use cae_tensor::rng::TensorRng;
use cae_tensor::{Tensor, Var};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Linear layers map [N, in] → [N, out] for arbitrary sizes.
    #[test]
    fn linear_shapes(n in 1usize..6, fan_in in 1usize..8, fan_out in 1usize..8, seed in 0u64..100) {
        let mut rng = TensorRng::seed_from(seed);
        let layer = Linear::new(fan_in, fan_out, &mut rng);
        let x = Var::constant(rng.normal_tensor(&[n, fan_in], 0.0, 1.0));
        let y = layer.forward(&x, &mut ForwardCtx::eval());
        prop_assert_eq!(y.dims(), vec![n, fan_out]);
        prop_assert_eq!(layer.num_parameters(), fan_in * fan_out + fan_out);
    }

    /// Conv layers honour the output-size formula for random geometry.
    #[test]
    fn conv_shapes(
        n in 1usize..3,
        cin in 1usize..4,
        cout in 1usize..4,
        stride in 1usize..3,
        pad in 0usize..2,
        seed in 0u64..100,
    ) {
        let mut rng = TensorRng::seed_from(seed);
        let size = 8usize;
        let layer = Conv2d::new(cin, cout, 3, stride, pad, false, &mut rng);
        let x = Var::constant(rng.normal_tensor(&[n, cin, size, size], 0.0, 1.0));
        let y = layer.forward(&x, &mut ForwardCtx::eval());
        let expect = (size + 2 * pad - 3) / stride + 1;
        prop_assert_eq!(y.dims(), vec![n, cout, expect, expect]);
    }

    /// Training-mode batch norm always produces ~zero-mean unit-variance
    /// channels regardless of the input statistics.
    #[test]
    fn batchnorm_normalizes_any_input(mean in -5.0f32..5.0, std in 0.5f32..4.0, seed in 0u64..100) {
        let mut rng = TensorRng::seed_from(seed);
        let bn = BatchNorm2d::new(3);
        let x = Var::constant(rng.normal_tensor(&[8, 3, 4, 4], mean, std));
        let y = bn.forward(&x, &mut ForwardCtx::train());
        let m = y.mean_channels();
        for &v in m.value().data() {
            prop_assert!(v.abs() < 1e-2, "channel mean {v}");
        }
    }

    /// SGD strictly decreases a convex quadratic from any start when the
    /// learning rate is stable.
    #[test]
    fn sgd_decreases_quadratic(start in -4.0f32..4.0, lr in 0.01f32..0.4) {
        let w = Var::parameter(Tensor::from_vec(vec![start], &[1]).unwrap());
        let mut opt = Sgd::new(vec![w.clone()], lr, 0.0, 0.0);
        let before = w.square().sum_all().item();
        for _ in 0..5 {
            opt.zero_grad();
            w.square().sum_all().backward();
            opt.step();
        }
        let after = w.square().sum_all().item();
        prop_assert!(after <= before + 1e-6, "loss rose: {before} -> {after}");
    }

    /// Adam converges on shifted quadratics from any start.
    #[test]
    fn adam_converges_anywhere(start in -5.0f32..5.0, target in -3.0f32..3.0) {
        let w = Var::parameter(Tensor::from_vec(vec![start], &[1]).unwrap());
        let mut opt = Adam::new(vec![w.clone()], 0.2);
        for _ in 0..150 {
            opt.zero_grad();
            w.add_scalar(-target).square().sum_all().backward();
            opt.step();
        }
        let v = w.value().data()[0];
        prop_assert!((v - target).abs() < 0.1, "{v} != {target}");
    }

    /// Cosine schedules are monotonically non-increasing.
    #[test]
    fn cosine_schedule_is_monotone(base in 0.001f32..1.0, steps in 2usize..200) {
        let s = CosineSchedule::new(base, steps);
        let mut prev = f32::INFINITY;
        for t in 0..=steps {
            let lr = s.lr_at(t);
            prop_assert!(lr <= prev + 1e-7);
            prop_assert!(lr >= 0.0 && lr <= base + 1e-7);
            prev = lr;
        }
    }

    /// Checkpoint snapshot/restore is an exact round-trip for every
    /// architecture.
    #[test]
    fn checkpoint_roundtrip_all_archs(arch_idx in 0usize..8, seed in 0u64..50) {
        let archs = [
            Arch::ResNet18, Arch::ResNet34, Arch::ResNet50, Arch::Wrn40x2,
            Arch::Wrn40x1, Arch::Wrn16x2, Arch::Wrn16x1, Arch::Vgg11,
        ];
        let arch = archs[arch_idx];
        let mut rng = TensorRng::seed_from(seed);
        let a = arch.build(3, 4, &mut rng);
        let b = arch.build(3, 4, &mut rng);
        restore(b.as_ref(), &snapshot(a.as_ref())).expect("same structure");
        let x = Var::constant(rng.normal_tensor(&[1, 3, 8, 8], 0.0, 1.0));
        let ya = a.forward(&x, &mut ForwardCtx::eval());
        let yb = b.forward(&x, &mut ForwardCtx::eval());
        let (ta, tb) = (ya.to_tensor(), yb.to_tensor());
        prop_assert_eq!(ta.data(), tb.data());
    }

    /// One supervised step reduces loss on the training batch itself for
    /// every architecture (overfit-one-batch sanity).
    #[test]
    fn one_step_overfits_one_batch(arch_idx in 0usize..8, seed in 0u64..20) {
        let archs = [
            Arch::ResNet18, Arch::ResNet34, Arch::ResNet50, Arch::Wrn40x2,
            Arch::Wrn40x1, Arch::Wrn16x2, Arch::Wrn16x1, Arch::Vgg11,
        ];
        let arch = archs[arch_idx];
        let mut rng = TensorRng::seed_from(seed);
        let model = arch.build(3, 4, &mut rng);
        let x = Var::constant(rng.normal_tensor(&[6, 3, 8, 8], 0.0, 1.0));
        let y = vec![0usize, 1, 2, 0, 1, 2];
        let mut opt = Sgd::new(model.parameters(), 0.05, 0.9, 0.0);
        let loss0 = cross_entropy(&model.forward(&x, &mut ForwardCtx::train()), &y);
        opt.zero_grad();
        loss0.backward();
        opt.step();
        let mut last = loss0.item();
        for _ in 0..6 {
            opt.zero_grad();
            let loss = cross_entropy(&model.forward(&x, &mut ForwardCtx::train()), &y);
            loss.backward();
            opt.step();
            last = loss.item();
        }
        prop_assert!(last < loss0.item(), "{} -> {last}", loss0.item());
    }
}
