//! Parity between [`cae_nn::infer`] frozen forwards and the autograd
//! eval-mode path, across every architecture in the zoo.
//!
//! * `FreezeMode::Exact` must be **bit-identical** to
//!   `Module::forward(.., ForwardCtx::eval())` — the tier-1 byte-diff gate
//!   on report files depends on this.
//! * `FreezeMode::Fused` (conv+BN folding) must stay within the documented
//!   tolerance `|a - b| <= 1e-4 + 1e-3 * |b|`.
//!
//! Base widths are drawn from a set that includes ragged (non-multiple-of-
//! SIMD-lane) channel counts, so masked tail lanes in the fused epilogues
//! are exercised.

use cae_nn::infer::FreezeOptions;
use cae_nn::models::{Arch, DfkdGenerator, GeneratorConfig};
use cae_nn::module::{Classifier, ForwardCtx, Generator};
use cae_tensor::rng::TensorRng;
use cae_tensor::{Tensor, Var};
use proptest::prelude::*;

const ALL_ARCHS: [Arch; 8] = [
    Arch::ResNet18,
    Arch::ResNet34,
    Arch::ResNet50,
    Arch::Wrn40x2,
    Arch::Wrn40x1,
    Arch::Wrn16x2,
    Arch::Wrn16x1,
    Arch::Vgg11,
];

/// Documented fused-mode tolerance (see `cae_nn::infer` module docs).
fn fused_close(a: f32, b: f32) -> bool {
    (a - b).abs() <= 1e-4 + 1e-3 * b.abs()
}

/// Runs the reference autograd eval forward: `(embedding, logits)`.
fn var_eval(model: &dyn Classifier, x: &Tensor) -> (Vec<f32>, Vec<f32>) {
    let xv = Var::constant(x.clone());
    let (emb, logits) = model.forward_embedding(&xv, &mut ForwardCtx::eval());
    (emb.to_tensor().data().to_vec(), logits.to_tensor().data().to_vec())
}

/// Builds a model with non-trivial batch-norm running statistics by pushing
/// a few training batches through it — freshly initialized running stats
/// (mean 0, var 1) would make BN folding nearly a no-op and hide bugs.
fn warmed_model(arch: Arch, classes: usize, width: usize, seed: u64) -> Box<dyn Classifier> {
    let mut rng = TensorRng::seed_from(seed);
    let model = arch.build(classes, width, &mut rng);
    for _ in 0..2 {
        let x = Var::constant(rng.normal_tensor(&[4, 3, 8, 8], 0.3, 1.4));
        model.forward(&x, &mut ForwardCtx::train());
    }
    model
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn exact_freeze_is_bit_identical_for_every_arch(
        arch_idx in 0usize..ALL_ARCHS.len(),
        // 3/5/6/7 include ragged channel counts (width, 2*width, 4*width
        // all land off SIMD-lane multiples for 3/5/7).
        width_idx in 0usize..5,
        seed in 0u64..1000,
    ) {
        let arch = ALL_ARCHS[arch_idx];
        let width = [3usize, 4, 5, 6, 7][width_idx];
        let model = warmed_model(arch, 5, width, seed);
        let frozen = model.freeze_with(&FreezeOptions::exact());
        let mut rng = TensorRng::seed_from(seed ^ 0x5eed);
        let x = rng.normal_tensor(&[2, 3, 8, 8], 0.0, 1.0);

        let (ref_emb, ref_logits) = var_eval(model.as_ref(), &x);
        let logits = frozen.forward(&x);
        prop_assert_eq!(logits.shape().dims(), &[2, 5]);
        prop_assert_eq!(logits.data(), &ref_logits[..], "{} logits differ", arch.name());

        let (emb, logits2) = frozen.forward_embedding(&x);
        prop_assert_eq!(emb.data(), &ref_emb[..], "{} embedding differs", arch.name());
        prop_assert_eq!(logits2.data(), &ref_logits[..]);
    }

    #[test]
    fn fused_freeze_is_within_tolerance_for_every_arch(
        arch_idx in 0usize..ALL_ARCHS.len(),
        width_idx in 0usize..5,
        seed in 0u64..1000,
    ) {
        let arch = ALL_ARCHS[arch_idx];
        let width = [3usize, 4, 5, 6, 7][width_idx];
        let model = warmed_model(arch, 5, width, seed);
        let frozen = model.freeze_with(&FreezeOptions::fused());
        let mut rng = TensorRng::seed_from(seed ^ 0xf00d);
        let x = rng.normal_tensor(&[2, 3, 8, 8], 0.0, 1.0);

        let (_, ref_logits) = var_eval(model.as_ref(), &x);
        let logits = frozen.forward(&x);
        for (i, (&a, &b)) in logits.data().iter().zip(&ref_logits).enumerate() {
            prop_assert!(
                fused_close(a, b),
                "{} logit {i}: fused {a} vs reference {b}",
                arch.name()
            );
        }
    }

    #[test]
    fn exact_generator_freeze_is_bit_identical(
        bc_idx in 0usize..4,
        seed in 0u64..1000,
    ) {
        let base_channels = [4usize, 6, 8, 10][bc_idx];
        let mut rng = TensorRng::seed_from(seed);
        let g = DfkdGenerator::new(GeneratorConfig::new(8, base_channels, 8), &mut rng);
        // Warm BN running stats as for classifiers.
        for _ in 0..2 {
            let z = Var::constant(rng.normal_tensor(&[4, 8], 0.0, 1.0));
            g.generate(&z, &mut ForwardCtx::train());
        }
        let frozen = g.freeze_with(&FreezeOptions::exact());
        let z = rng.normal_tensor(&[2, 8], 0.0, 1.0);
        let reference = g
            .generate(&Var::constant(z.clone()), &mut ForwardCtx::eval())
            .to_tensor();
        let img = frozen.generate(&z);
        prop_assert_eq!(img.shape().dims(), reference.shape().dims());
        prop_assert_eq!(img.data(), reference.data());
    }

    #[test]
    fn fused_generator_freeze_is_within_tolerance(
        bc_idx in 0usize..3,
        seed in 0u64..1000,
    ) {
        let base_channels = [4usize, 6, 8][bc_idx];
        let mut rng = TensorRng::seed_from(seed);
        let g = DfkdGenerator::new(GeneratorConfig::new(8, base_channels, 8), &mut rng);
        for _ in 0..2 {
            let z = Var::constant(rng.normal_tensor(&[4, 8], 0.0, 1.0));
            g.generate(&z, &mut ForwardCtx::train());
        }
        let frozen = g.freeze_with(&FreezeOptions::fused());
        let z = rng.normal_tensor(&[2, 8], 0.0, 1.0);
        let reference = g
            .generate(&Var::constant(z.clone()), &mut ForwardCtx::eval())
            .to_tensor();
        let img = frozen.generate(&z);
        for (i, (&a, &b)) in img.data().iter().zip(reference.data()).enumerate() {
            prop_assert!(fused_close(a, b), "pixel {i}: fused {a} vs reference {b}");
        }
    }
}

#[test]
fn exact_freeze_handles_tiny_inputs_like_vgg_pool_guard() {
    // VGG skips 2×2 pooling once the map is 1×1; the frozen MaxPool op must
    // apply the same guard or shapes diverge on small inputs.
    let model = warmed_model(Arch::Vgg11, 3, 4, 7);
    let frozen = model.freeze_with(&FreezeOptions::exact());
    let mut rng = TensorRng::seed_from(7);
    let x = rng.normal_tensor(&[1, 3, 4, 4], 0.0, 1.0);
    let (_, ref_logits) = var_eval(model.as_ref(), &x);
    assert_eq!(frozen.forward(&x).data(), &ref_logits[..]);
}

#[test]
fn int8_freeze_stays_close_to_f32_and_batching_is_row_independent() {
    let model = warmed_model(Arch::ResNet18, 5, 4, 21);
    let f32_frozen = model.freeze_with(&FreezeOptions::fused());
    let int8_frozen = model.freeze_with(&FreezeOptions::fused().int8());
    assert!(!f32_frozen.quantized());
    assert!(int8_frozen.quantized());
    let mut rng = TensorRng::seed_from(21);
    let x = rng.normal_tensor(&[4, 3, 8, 8], 0.0, 1.0);
    let (a, b) = (f32_frozen.forward(&x), int8_frozen.forward(&x));
    // int8 rounding perturbs each weight by at most half a step; logits
    // must stay in the same neighborhood (loose sanity bound — the bench
    // gates the end-to-end accuracy delta).
    for (&ya, &yb) in a.data().iter().zip(b.data()) {
        assert!(
            (ya - yb).abs() <= 0.15 + 0.1 * ya.abs(),
            "int8 drifted too far: {ya} vs {yb}"
        );
    }
    // Per-row determinism: row i of a batched int8 forward is bit-identical
    // to the same image run alone — the property cae-serve's dynamic
    // batching relies on.
    let dims = x.shape().dims().to_vec();
    let row: Vec<f32> = x.data()[2 * dims[1] * dims[2] * dims[3]..3 * dims[1] * dims[2] * dims[3]].to_vec();
    let single = Tensor::from_vec(row, &[1, dims[1], dims[2], dims[3]]).unwrap();
    let alone = int8_frozen.forward(&single);
    let classes = b.shape().dims()[1];
    assert_eq!(&b.data()[2 * classes..3 * classes], alone.data());
}

#[test]
fn frozen_spatial_matches_var_spatial_exactly() {
    let model = warmed_model(Arch::Wrn16x2, 4, 4, 11);
    let frozen = model.freeze_with(&FreezeOptions::exact());
    let mut rng = TensorRng::seed_from(11);
    let x = rng.normal_tensor(&[2, 3, 8, 8], 0.0, 1.0);
    let reference = model
        .forward_spatial(&Var::constant(x.clone()), &mut ForwardCtx::eval())
        .to_tensor();
    let spatial = frozen.forward_spatial(&x);
    assert_eq!(spatial.shape().dims(), reference.shape().dims());
    assert_eq!(spatial.data(), reference.data());
}
