//! Core layers: linear, convolution and batch normalization.

use crate::init;
use crate::module::{BnBatchStats, ForwardCtx, Module};
use cae_tensor::conv::Conv2dSpec;
use cae_tensor::rng::TensorRng;
use cae_tensor::{Tensor, Var};
use std::sync::Mutex;

/// Fully connected layer computing `y = x · W + b` on `[N, in]` inputs.
#[derive(Debug)]
pub struct Linear {
    weight: Var,
    bias: Var,
}

impl Linear {
    /// Creates a Kaiming-initialized linear layer.
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut TensorRng) -> Self {
        Linear {
            weight: Var::parameter(init::kaiming_linear(in_dim, out_dim, rng)),
            bias: Var::parameter(Tensor::zeros(&[out_dim])),
        }
    }
}

impl Linear {
    /// Snapshots `(weight, bias)` for the frozen inference compiler.
    pub(crate) fn freeze_parts(&self) -> (Tensor, Tensor) {
        (self.weight.to_tensor(), self.bias.to_tensor())
    }
}

impl Module for Linear {
    fn forward(&self, x: &Var, _ctx: &mut ForwardCtx) -> Var {
        x.matmul(&self.weight).add_rows(&self.bias)
    }

    fn parameters(&self) -> Vec<Var> {
        vec![self.weight.clone(), self.bias.clone()]
    }
}

/// 2-d convolution layer with a square kernel.
#[derive(Debug)]
pub struct Conv2d {
    weight: Var,
    bias: Option<Var>,
    spec: Conv2dSpec,
}

impl Conv2d {
    /// Creates a Kaiming-initialized convolution.
    ///
    /// # Panics
    /// Panics if `kernel` or `stride` is zero.
    pub fn new(
        in_ch: usize,
        out_ch: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        bias: bool,
        rng: &mut TensorRng,
    ) -> Self {
        Conv2d {
            weight: Var::parameter(init::kaiming_conv(out_ch, in_ch, kernel, rng)),
            bias: bias.then(|| Var::parameter(Tensor::zeros(&[out_ch]))),
            spec: Conv2dSpec::new(kernel, stride, padding),
        }
    }

    /// The convolution spec (kernel/stride/padding).
    pub fn spec(&self) -> Conv2dSpec {
        self.spec
    }

    /// Snapshots `(weight, bias, spec)` for the frozen inference compiler.
    pub(crate) fn freeze_parts(&self) -> (Tensor, Option<Tensor>, Conv2dSpec) {
        (
            self.weight.to_tensor(),
            self.bias.as_ref().map(Var::to_tensor),
            self.spec,
        )
    }
}

impl Module for Conv2d {
    fn forward(&self, x: &Var, _ctx: &mut ForwardCtx) -> Var {
        x.conv2d(&self.weight, self.bias.as_ref(), self.spec)
    }

    fn parameters(&self) -> Vec<Var> {
        let mut p = vec![self.weight.clone()];
        if let Some(b) = &self.bias {
            p.push(b.clone());
        }
        p
    }
}

/// Batch normalization over the channel dimension of NCHW tensors.
///
/// In training mode the layer normalizes with (differentiable) batch
/// statistics and updates its running statistics; in evaluation mode it
/// normalizes with the running statistics. When
/// [`ForwardCtx::collect_bn_stats`] is set, the layer additionally records
/// [`BnBatchStats`] so the DFKD `L_BN` loss can match synthetic-batch
/// statistics against the teacher's running statistics.
/// Running statistics live behind a `Mutex` (not a `RefCell`) so a model is
/// `Sync`; each experiment cell owns its models, so the locks are
/// uncontended in practice.
#[derive(Debug)]
pub struct BatchNorm2d {
    gamma: Var,
    beta: Var,
    running_mean: Mutex<Tensor>,
    running_var: Mutex<Tensor>,
    momentum: f32,
    eps: f32,
}

impl BatchNorm2d {
    /// Creates a batch-norm layer for `channels` feature maps with the
    /// conventional momentum `0.1` and epsilon `1e-5`.
    pub fn new(channels: usize) -> Self {
        BatchNorm2d {
            gamma: Var::parameter(Tensor::ones(&[channels])),
            beta: Var::parameter(Tensor::zeros(&[channels])),
            running_mean: Mutex::new(Tensor::zeros(&[channels])),
            running_var: Mutex::new(Tensor::ones(&[channels])),
            momentum: 0.1,
            eps: 1e-5,
        }
    }

    /// Snapshot of the running mean.
    pub fn running_mean(&self) -> Tensor {
        self.running_mean.lock().expect("BN stats lock poisoned").clone()
    }

    /// Snapshot of the running variance.
    pub fn running_var(&self) -> Tensor {
        self.running_var.lock().expect("BN stats lock poisoned").clone()
    }

    fn batch_stats(&self, x: &Var) -> (Var, Var) {
        let mean = x.mean_channels();
        let centered = x.add_channels(&mean.neg());
        let var = centered.square().mean_channels();
        (mean, var)
    }

    /// Snapshots `(gamma, beta, running_mean, running_var, eps)` for the
    /// frozen inference compiler.
    pub(crate) fn freeze_parts(&self) -> (Tensor, Tensor, Tensor, Tensor, f32) {
        (
            self.gamma.to_tensor(),
            self.beta.to_tensor(),
            self.running_mean(),
            self.running_var(),
            self.eps,
        )
    }
}

impl Module for BatchNorm2d {
    fn forward(&self, x: &Var, ctx: &mut ForwardCtx) -> Var {
        let (mean, var) = if ctx.training || ctx.collect_bn_stats {
            let (m, v) = self.batch_stats(x);
            if ctx.collect_bn_stats {
                ctx.bn_stats.push(BnBatchStats {
                    mean: m.clone(),
                    var: v.clone(),
                    running_mean: self.running_mean(),
                    running_var: self.running_var(),
                });
            }
            (Some(m), Some(v))
        } else {
            (None, None)
        };

        if ctx.training {
            let m = mean.expect("batch mean computed in training mode");
            let v = var.expect("batch var computed in training mode");
            // Update running statistics from detached batch statistics.
            {
                let mut rm = self.running_mean.lock().expect("BN stats lock poisoned");
                let mut rv = self.running_var.lock().expect("BN stats lock poisoned");
                let bm = m.to_tensor();
                let bv = v.to_tensor();
                *rm = rm.scale(1.0 - self.momentum).add(&bm.scale(self.momentum));
                *rv = rv.scale(1.0 - self.momentum).add(&bv.scale(self.momentum));
            }
            let inv_std = v.add_scalar(self.eps).powf(-0.5);
            x.add_channels(&m.neg())
                .mul_channels(&inv_std)
                .mul_channels(&self.gamma)
                .add_channels(&self.beta)
        } else {
            // Evaluation: normalize with frozen running statistics.
            let rm = Var::constant(self.running_mean());
            let inv_std = Var::constant(
                self.running_var()
                    .map(|v| 1.0 / (v + self.eps).sqrt()),
            );
            x.add_channels(&rm.neg())
                .mul_channels(&inv_std)
                .mul_channels(&self.gamma)
                .add_channels(&self.beta)
        }
    }

    fn parameters(&self) -> Vec<Var> {
        vec![self.gamma.clone(), self.beta.clone()]
    }

    fn buffers(&self) -> Vec<Tensor> {
        vec![self.running_mean(), self.running_var()]
    }

    fn set_buffers(&self, bufs: &[Tensor]) {
        assert_eq!(bufs.len(), 2, "BatchNorm2d expects 2 buffers, got {}", bufs.len());
        *self.running_mean.lock().expect("BN stats lock poisoned") = bufs[0].clone();
        *self.running_var.lock().expect("BN stats lock poisoned") = bufs[1].clone();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_shapes_and_param_count() {
        let mut rng = TensorRng::seed_from(0);
        let l = Linear::new(5, 3, &mut rng);
        assert_eq!(l.num_parameters(), 5 * 3 + 3);
        let x = Var::constant(Tensor::zeros(&[2, 5]));
        assert_eq!(l.forward(&x, &mut ForwardCtx::eval()).dims(), vec![2, 3]);
    }

    #[test]
    fn conv_layer_output_shape() {
        let mut rng = TensorRng::seed_from(1);
        let c = Conv2d::new(3, 8, 3, 2, 1, false, &mut rng);
        let x = Var::constant(Tensor::zeros(&[2, 3, 8, 8]));
        assert_eq!(c.forward(&x, &mut ForwardCtx::eval()).dims(), vec![2, 8, 4, 4]);
    }

    #[test]
    fn batchnorm_train_normalizes_batch() {
        let mut rng = TensorRng::seed_from(2);
        let bn = BatchNorm2d::new(4);
        let x = Var::constant(rng.normal_tensor(&[8, 4, 3, 3], 5.0, 2.0));
        let y = bn.forward(&x, &mut ForwardCtx::train());
        // Output batch stats should be ~N(0,1) per channel.
        let m = y.mean_channels();
        for &v in m.value().data() {
            assert!(v.abs() < 1e-3, "channel mean {v} not ~0");
        }
        // Running stats moved toward batch stats.
        let rm = bn.running_mean();
        for &v in rm.data() {
            assert!((v - 0.5).abs() < 0.3, "running mean {v} should be ~0.1*5");
        }
    }

    #[test]
    fn batchnorm_eval_uses_running_stats() {
        let bn = BatchNorm2d::new(2);
        let x = Var::constant(Tensor::full(&[1, 2, 2, 2], 3.0));
        let y = bn.forward(&x, &mut ForwardCtx::eval());
        // Fresh running stats are mean 0 var 1, so eval output ≈ input.
        for &v in y.value().data() {
            assert!((v - 3.0).abs() < 1e-3);
        }
    }

    #[test]
    fn batchnorm_collects_stats_in_eval_mode() {
        let mut rng = TensorRng::seed_from(3);
        let bn = BatchNorm2d::new(4);
        let x = Var::constant(rng.normal_tensor(&[4, 4, 3, 3], 1.0, 1.0));
        let mut ctx = ForwardCtx::eval_with_bn_stats();
        bn.forward(&x, &mut ctx);
        assert_eq!(ctx.bn_stats.len(), 1);
        assert_eq!(ctx.bn_stats[0].mean.dims(), vec![4]);
    }

    #[test]
    fn batchnorm_stats_are_differentiable_toward_input() {
        let mut rng = TensorRng::seed_from(4);
        let bn = BatchNorm2d::new(2);
        let x = Var::parameter(rng.normal_tensor(&[2, 2, 2, 2], 0.0, 1.0));
        let mut ctx = ForwardCtx::eval_with_bn_stats();
        bn.forward(&x, &mut ctx);
        let stats = &ctx.bn_stats[0];
        // An L_BN-style objective must reach x.
        let loss = stats.mean.square().sum_all().add(&stats.var.square().sum_all());
        loss.backward();
        assert!(x.grad().is_some());
    }
}
