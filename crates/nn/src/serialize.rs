//! Model checkpointing: capture and restore the complete state (parameters
//! + buffers) of any [`Module`] as a serde-serializable snapshot.
//!
//! Snapshots are structural: they record shapes alongside values, so loading
//! into a mismatched architecture fails loudly instead of silently
//! scrambling weights.

use crate::module::Module;
use cae_tensor::Tensor;
use std::error::Error;
use std::fmt;

/// A serializable snapshot of a module's trainable parameters and
/// persistent buffers.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Parameter tensors, in the module's stable parameter order.
    pub parameters: Vec<Tensor>,
    /// Buffer tensors (batch-norm running statistics), in buffer order.
    pub buffers: Vec<Tensor>,
}

serde::impl_json_struct!(Checkpoint { parameters, buffers });

/// Error returned when a checkpoint does not match the target module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoadCheckpointError {
    /// The checkpoint holds a different number of parameters.
    ParameterCount {
        /// Parameters expected by the module.
        expected: usize,
        /// Parameters present in the checkpoint.
        found: usize,
    },
    /// A parameter's shape differs.
    ParameterShape {
        /// Index of the offending parameter.
        index: usize,
        /// Shape expected by the module.
        expected: Vec<usize>,
        /// Shape found in the checkpoint.
        found: Vec<usize>,
    },
    /// The checkpoint holds a different number of buffers.
    BufferCount {
        /// Buffers expected by the module.
        expected: usize,
        /// Buffers present in the checkpoint.
        found: usize,
    },
}

impl fmt::Display for LoadCheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadCheckpointError::ParameterCount { expected, found } => {
                write!(f, "checkpoint has {found} parameters, module expects {expected}")
            }
            LoadCheckpointError::ParameterShape { index, expected, found } => write!(
                f,
                "parameter {index} has shape {found:?}, module expects {expected:?}"
            ),
            LoadCheckpointError::BufferCount { expected, found } => {
                write!(f, "checkpoint has {found} buffers, module expects {expected}")
            }
        }
    }
}

impl Error for LoadCheckpointError {}

/// Captures a snapshot of `module`.
pub fn snapshot(module: &dyn Module) -> Checkpoint {
    Checkpoint {
        parameters: module.parameters().iter().map(|p| p.to_tensor()).collect(),
        buffers: module.buffers(),
    }
}

/// Restores a snapshot into `module`.
///
/// # Errors
/// Returns a [`LoadCheckpointError`] if the checkpoint's structure does not
/// match the module; the module is left unchanged in that case.
pub fn restore(module: &dyn Module, checkpoint: &Checkpoint) -> Result<(), LoadCheckpointError> {
    let params = module.parameters();
    if params.len() != checkpoint.parameters.len() {
        return Err(LoadCheckpointError::ParameterCount {
            expected: params.len(),
            found: checkpoint.parameters.len(),
        });
    }
    for (i, (p, t)) in params.iter().zip(&checkpoint.parameters).enumerate() {
        if p.dims() != t.shape().dims() {
            return Err(LoadCheckpointError::ParameterShape {
                index: i,
                expected: p.dims(),
                found: t.shape().dims().to_vec(),
            });
        }
    }
    let expected_buffers = module.buffers().len();
    if expected_buffers != checkpoint.buffers.len() {
        return Err(LoadCheckpointError::BufferCount {
            expected: expected_buffers,
            found: checkpoint.buffers.len(),
        });
    }
    for (p, t) in params.iter().zip(&checkpoint.parameters) {
        p.set_value(t.clone());
    }
    module.set_buffers(&checkpoint.buffers);
    Ok(())
}

/// Serializes a snapshot of `module` to JSON.
pub fn to_json(module: &dyn Module) -> String {
    serde_json::to_string(&snapshot(module)).expect("checkpoint serialization cannot fail")
}

/// Restores `module` from a JSON checkpoint.
///
/// # Errors
/// Returns a boxed error for malformed JSON or structural mismatch.
pub fn from_json(module: &dyn Module, json: &str) -> Result<(), Box<dyn Error + Send + Sync>> {
    let checkpoint: Checkpoint = serde_json::from_str(json)?;
    restore(module, &checkpoint)?;
    Ok(())
}

/// Serializes a [`FrozenClassifier`](crate::infer::FrozenClassifier) to JSON.
///
/// Frozen models are self-describing (op list plus snapshotted tensors), so
/// unlike [`Checkpoint`]s they load without a pre-built module of the right
/// architecture.
pub fn frozen_classifier_to_json(model: &crate::infer::FrozenClassifier) -> String {
    serde_json::to_string(model).expect("frozen model serialization cannot fail")
}

/// Deserializes a [`FrozenClassifier`](crate::infer::FrozenClassifier) from
/// JSON produced by [`frozen_classifier_to_json`].
///
/// # Errors
/// Returns a boxed error for malformed JSON.
pub fn frozen_classifier_from_json(
    json: &str,
) -> Result<crate::infer::FrozenClassifier, Box<dyn Error + Send + Sync>> {
    Ok(serde_json::from_str(json)?)
}

/// Serializes a [`FrozenGenerator`](crate::infer::FrozenGenerator) to JSON.
pub fn frozen_generator_to_json(model: &crate::infer::FrozenGenerator) -> String {
    serde_json::to_string(model).expect("frozen model serialization cannot fail")
}

/// Deserializes a [`FrozenGenerator`](crate::infer::FrozenGenerator) from
/// JSON produced by [`frozen_generator_to_json`].
///
/// # Errors
/// Returns a boxed error for malformed JSON.
pub fn frozen_generator_from_json(
    json: &str,
) -> Result<crate::infer::FrozenGenerator, Box<dyn Error + Send + Sync>> {
    Ok(serde_json::from_str(json)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::Arch;
    use crate::module::{Classifier, ForwardCtx};
    use cae_tensor::rng::TensorRng;
    use cae_tensor::Var;

    fn logits_of(model: &dyn Classifier, x: &Tensor) -> Vec<f32> {
        model
            .forward(&Var::constant(x.clone()), &mut ForwardCtx::eval())
            .to_tensor()
            .data()
            .to_vec()
    }

    #[test]
    fn snapshot_restore_roundtrip_preserves_outputs() {
        let mut rng = TensorRng::seed_from(0);
        let a = Arch::Wrn16x1.build(4, 4, &mut rng);
        let b = Arch::Wrn16x1.build(4, 4, &mut rng); // different init
        let x = rng.normal_tensor(&[2, 3, 8, 8], 0.0, 1.0);
        assert_ne!(logits_of(a.as_ref(), &x), logits_of(b.as_ref(), &x));
        restore(b.as_ref(), &snapshot(a.as_ref())).expect("structures match");
        assert_eq!(logits_of(a.as_ref(), &x), logits_of(b.as_ref(), &x));
    }

    #[test]
    fn json_roundtrip() {
        let mut rng = TensorRng::seed_from(1);
        let a = Arch::ResNet18.build(3, 4, &mut rng);
        let json = to_json(a.as_ref());
        let b = Arch::ResNet18.build(3, 4, &mut rng);
        from_json(b.as_ref(), &json).expect("load succeeds");
        let x = rng.normal_tensor(&[1, 3, 8, 8], 0.0, 1.0);
        assert_eq!(logits_of(a.as_ref(), &x), logits_of(b.as_ref(), &x));
    }

    #[test]
    fn frozen_classifier_json_roundtrip_preserves_forward() {
        let mut rng = TensorRng::seed_from(3);
        let model = Arch::ResNet18.build(3, 4, &mut rng);
        let frozen = model.freeze_with(&crate::infer::FreezeOptions::fused());
        let json = frozen_classifier_to_json(&frozen);
        let back = frozen_classifier_from_json(&json).expect("load succeeds");
        assert_eq!(back.embed_dim(), frozen.embed_dim());
        assert_eq!(back.num_classes(), frozen.num_classes());
        let x = rng.normal_tensor(&[2, 3, 8, 8], 0.0, 1.0);
        assert_eq!(frozen.forward(&x).data(), back.forward(&x).data());
    }

    #[test]
    fn quantized_frozen_classifier_json_roundtrip_is_bit_exact() {
        let mut rng = TensorRng::seed_from(5);
        let model = Arch::ResNet18.build(3, 4, &mut rng);
        let frozen = model.freeze_with(&crate::infer::FreezeOptions::fused().int8());
        assert!(frozen.quantized());
        let json = frozen_classifier_to_json(&frozen);
        assert!(json.contains("\"qweight\""), "int8 payload must be serialized");
        let back = frozen_classifier_from_json(&json).expect("load succeeds");
        assert!(back.quantized());
        // Dequant-on-load reconstructs the exact in-memory f32 weights, so
        // forwards are bit-identical, not just close.
        let x = rng.normal_tensor(&[2, 3, 8, 8], 0.0, 1.0);
        let (a, b) = (frozen.forward(&x), back.forward(&x));
        for (&ya, &yb) in a.data().iter().zip(b.data()) {
            assert_eq!(ya.to_bits(), yb.to_bits());
        }
        // And the int8 payload is smaller on the wire than the f32 weights.
        let f32_json = frozen_classifier_to_json(
            &model.freeze_with(&crate::infer::FreezeOptions::fused()),
        );
        assert!(
            json.len() < f32_json.len(),
            "quantized JSON ({}) should undercut f32 JSON ({})",
            json.len(),
            f32_json.len()
        );
    }

    #[test]
    fn frozen_generator_json_roundtrip_preserves_output() {
        use crate::models::{DfkdGenerator, GeneratorConfig};
        use crate::module::Generator;
        let mut rng = TensorRng::seed_from(4);
        let g = DfkdGenerator::new(GeneratorConfig::new(8, 8, 8), &mut rng);
        let frozen = g.freeze_with(&crate::infer::FreezeOptions::exact());
        let json = frozen_generator_to_json(&frozen);
        let back = frozen_generator_from_json(&json).expect("load succeeds");
        assert_eq!(back.latent_dim(), frozen.latent_dim());
        let z = rng.normal_tensor(&[2, 8], 0.0, 1.0);
        assert_eq!(frozen.generate(&z).data(), back.generate(&z).data());
    }

    #[test]
    fn mismatched_architecture_is_rejected_without_mutation() {
        let mut rng = TensorRng::seed_from(2);
        let a = Arch::ResNet18.build(3, 4, &mut rng);
        let b = Arch::Vgg11.build(3, 4, &mut rng);
        let x = rng.normal_tensor(&[1, 3, 8, 8], 0.0, 1.0);
        let before = logits_of(b.as_ref(), &x);
        let err = restore(b.as_ref(), &snapshot(a.as_ref()));
        assert!(err.is_err());
        assert_eq!(before, logits_of(b.as_ref(), &x), "failed load must not mutate");
    }
}
