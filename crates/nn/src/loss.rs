//! Classification and distillation losses.

use cae_tensor::{Tensor, Var};

/// Cross-entropy between logits `[N, K]` and hard labels.
///
/// # Panics
/// Panics if `targets.len()` differs from the batch size or any label is out
/// of range.
pub fn cross_entropy(logits: &Var, targets: &[usize]) -> Var {
    logits
        .log_softmax_rows()
        .gather_rows(targets)
        .mean_all()
        .neg()
}

/// Cross-entropy between logits and a constant soft-target distribution
/// `[N, K]` (used by Mixup).
///
/// # Panics
/// Panics if the shapes differ.
pub fn soft_cross_entropy(logits: &Var, target_probs: &Tensor) -> Var {
    let n = logits.dims()[0].max(1) as f32;
    logits
        .log_softmax_rows()
        .mul_const(target_probs)
        .sum_all()
        .scale(-1.0 / n)
}

/// Temperature-scaled KL distillation loss `KL(p_T ‖ p_S)` between frozen
/// teacher logits and student logits, with the conventional `T²` gradient
/// rescaling.
///
/// The teacher term is a constant; gradients flow only into
/// `student_logits`.
///
/// # Panics
/// Panics if the logit shapes differ.
pub fn kd_kl_divergence(student_logits: &Var, teacher_logits: &Tensor, temperature: f32) -> Var {
    let (n, k) = student_logits.value().shape().matrix();
    let t_probs = teacher_logits.scale(1.0 / temperature).softmax_rows();
    assert_eq!(
        t_probs.shape().dims(),
        &[n, k],
        "teacher/student logit shapes differ"
    );
    // Constant teacher entropy term: Σ p ln p / N.
    let entropy: f32 = t_probs.data().iter().map(|&p| if p > 0.0 { p * p.ln() } else { 0.0 }).sum::<f32>()
        / n as f32;
    let log_ps = student_logits.scale(1.0 / temperature).log_softmax_rows();
    let ce = log_ps.mul_const(&t_probs).sum_all().scale(-1.0 / n as f32);
    ce.add_scalar(entropy).scale(temperature * temperature)
}

/// Mean squared error between two same-shape variables.
///
/// # Panics
/// Panics if the shapes differ.
pub fn mse(a: &Var, b: &Var) -> Var {
    a.sub(b).square().mean_all()
}

/// Mean absolute (L1) error between two same-shape variables.
///
/// # Panics
/// Panics if the shapes differ.
pub fn l1(a: &Var, b: &Var) -> Var {
    a.sub(b).abs().mean_all()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cae_tensor::gradcheck::check_gradients;
    use cae_tensor::rng::TensorRng;

    #[test]
    fn cross_entropy_is_minimized_by_correct_confident_logits() {
        let good = Var::constant(Tensor::from_vec(vec![10.0, -10.0], &[1, 2]).unwrap());
        let bad = Var::constant(Tensor::from_vec(vec![-10.0, 10.0], &[1, 2]).unwrap());
        assert!(cross_entropy(&good, &[0]).item() < 1e-3);
        assert!(cross_entropy(&bad, &[0]).item() > 5.0);
    }

    #[test]
    fn kd_loss_zero_when_student_matches_teacher() {
        let logits = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.5, 0.0], &[2, 3]).unwrap();
        let s = Var::constant(logits.clone());
        let loss = kd_kl_divergence(&s, &logits, 4.0);
        assert!(loss.item().abs() < 1e-5, "loss {}", loss.item());
    }

    #[test]
    fn kd_loss_positive_and_differentiable_when_mismatched() {
        let mut rng = TensorRng::seed_from(5);
        let t = rng.normal_tensor(&[3, 4], 0.0, 1.0);
        let s = Var::parameter(rng.normal_tensor(&[3, 4], 0.0, 1.0));
        let loss = kd_kl_divergence(&s, &t, 2.0);
        assert!(loss.item() > 0.0);
        let r = check_gradients(std::slice::from_ref(&s), 1e-3, || kd_kl_divergence(&s, &t, 2.0));
        assert!(r.passes(1e-2), "max rel err {}", r.max_rel_err);
    }

    #[test]
    fn cross_entropy_gradcheck() {
        let mut rng = TensorRng::seed_from(6);
        let x = Var::parameter(rng.normal_tensor(&[4, 3], 0.0, 1.0));
        let r = check_gradients(std::slice::from_ref(&x), 1e-3, || cross_entropy(&x, &[0, 1, 2, 1]));
        assert!(r.passes(1e-2), "max rel err {}", r.max_rel_err);
    }

    #[test]
    fn soft_cross_entropy_matches_hard_when_one_hot() {
        let mut rng = TensorRng::seed_from(7);
        let x = Var::constant(rng.normal_tensor(&[2, 3], 0.0, 1.0));
        let one_hot =
            Tensor::from_vec(vec![1.0, 0.0, 0.0, 0.0, 0.0, 1.0], &[2, 3]).unwrap();
        let hard = cross_entropy(&x, &[0, 2]).item();
        let soft = soft_cross_entropy(&x, &one_hot).item();
        assert!((hard - soft).abs() < 1e-5);
    }
}
