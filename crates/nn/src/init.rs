//! Weight initialization.

use cae_tensor::rng::TensorRng;
use cae_tensor::Tensor;

/// Kaiming-normal initialization for a convolution weight `[O, C, k, k]`:
/// `std = sqrt(2 / fan_in)` with `fan_in = C·k·k`.
pub fn kaiming_conv(out_ch: usize, in_ch: usize, kernel: usize, rng: &mut TensorRng) -> Tensor {
    let fan_in = (in_ch * kernel * kernel) as f32;
    let std = (2.0 / fan_in).sqrt();
    rng.normal_tensor(&[out_ch, in_ch, kernel, kernel], 0.0, std)
}

/// Kaiming-normal initialization for a linear weight `[in, out]` stored in
/// input-major order (`y = x · W`).
pub fn kaiming_linear(in_dim: usize, out_dim: usize, rng: &mut TensorRng) -> Tensor {
    let std = (2.0 / in_dim as f32).sqrt();
    rng.normal_tensor(&[in_dim, out_dim], 0.0, std)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kaiming_std_scales_with_fan_in() {
        let mut rng = TensorRng::seed_from(0);
        let w = kaiming_conv(64, 16, 3, &mut rng);
        let std = (w.sq_norm() / w.numel() as f32).sqrt();
        let expected = (2.0f32 / (16.0 * 9.0)).sqrt();
        assert!((std - expected).abs() / expected < 0.1, "std {std} vs {expected}");
    }
}
