//! The module system: forward contexts and the [`Module`] / [`Classifier`]
//! traits.

use cae_tensor::{Tensor, Var};

/// Differentiable per-batch statistics of one batch-normalization layer,
/// captured during a forward pass.
///
/// The DFKD batch-norm loss (`L_BN` in Eq. 5 of the paper) matches these
/// batch statistics — computed on *synthetic* images — against the running
/// statistics the teacher accumulated on real data. The `mean`/`var`
/// variables stay connected to the generator's graph so the loss can push
/// gradients into it.
#[derive(Debug, Clone)]
pub struct BnBatchStats {
    /// Differentiable per-channel batch mean of the layer input.
    pub mean: Var,
    /// Differentiable per-channel (biased) batch variance of the layer input.
    pub var: Var,
    /// The layer's running mean (frozen snapshot).
    pub running_mean: Tensor,
    /// The layer's running variance (frozen snapshot).
    pub running_var: Tensor,
}

/// Mutable state threaded through a forward pass.
///
/// * `training` selects batch statistics (and running-stat updates) in
///   batch-norm layers.
/// * `collect_bn_stats` asks every batch-norm layer to record
///   [`BnBatchStats`] regardless of mode — used by the generator update.
#[derive(Debug, Default)]
pub struct ForwardCtx {
    /// Whether layers should behave as in training (batch-norm batch stats,
    /// running-stat updates).
    pub training: bool,
    /// Whether batch-norm layers should capture differentiable batch
    /// statistics into [`ForwardCtx::bn_stats`].
    pub collect_bn_stats: bool,
    /// Captured batch-norm statistics, in layer order.
    pub bn_stats: Vec<BnBatchStats>,
}

impl ForwardCtx {
    /// Context for training-mode forward passes.
    pub fn train() -> Self {
        ForwardCtx {
            training: true,
            ..Default::default()
        }
    }

    /// Context for evaluation-mode forward passes.
    pub fn eval() -> Self {
        ForwardCtx::default()
    }

    /// Evaluation-mode context that also captures differentiable batch-norm
    /// statistics (for the DFKD `L_BN` loss).
    pub fn eval_with_bn_stats() -> Self {
        ForwardCtx {
            training: false,
            collect_bn_stats: true,
            ..Default::default()
        }
    }
}

/// A neural-network component with trainable parameters.
///
/// `Module` requires `Send + Sync` so trained models (and trait objects
/// over them) can cross thread boundaries — the experiment scheduler runs
/// whole distillation cells on pool workers, and the global teacher cache
/// shares pretrained masters between them. Interior mutability inside
/// layers (batch-norm running statistics) must therefore be lock-based,
/// not `RefCell`-based.
pub trait Module: Send + Sync {
    /// Runs the module on `x`.
    fn forward(&self, x: &Var, ctx: &mut ForwardCtx) -> Var;

    /// All trainable parameters (leaf [`Var::parameter`] nodes), in a stable
    /// order.
    fn parameters(&self) -> Vec<Var>;

    /// Persistent non-trainable state (batch-norm running statistics), in a
    /// stable order matching [`Module::set_buffers`].
    fn buffers(&self) -> Vec<Tensor> {
        Vec::new()
    }

    /// Restores state captured by [`Module::buffers`].
    ///
    /// # Panics
    /// Implementations panic if `bufs` has the wrong length or shapes.
    fn set_buffers(&self, bufs: &[Tensor]) {
        assert!(
            bufs.is_empty(),
            "module has no buffers but {} were provided",
            bufs.len()
        );
    }

    /// Total number of scalar parameters.
    fn num_parameters(&self) -> usize {
        self.parameters().iter().map(|p| p.value().numel()).sum()
    }
}

/// Copies all trainable parameters and buffers from `src` into `dst`.
///
/// Both modules must have identical structure (same architecture and
/// configuration).
///
/// # Panics
/// Panics if parameter counts or shapes differ.
pub fn copy_state(src: &dyn Module, dst: &dyn Module) {
    let sp = src.parameters();
    let dp = dst.parameters();
    assert_eq!(sp.len(), dp.len(), "parameter lists differ in length");
    for (s, d) in sp.iter().zip(dp.iter()) {
        assert_eq!(s.dims(), d.dims(), "parameter shapes differ");
        d.set_value(s.to_tensor());
    }
    dst.set_buffers(&src.buffers());
}

/// An image classifier exposing its penultimate embedding.
///
/// CAE-DFKD's CNCL loss contrasts *student embeddings* of generated images,
/// so every backbone must expose the feature vector feeding its linear head.
pub trait Classifier: Module {
    /// Number of output classes.
    fn num_classes(&self) -> usize;

    /// Dimension of the penultimate embedding.
    fn embed_dim(&self) -> usize;

    /// Returns `(embedding [N, D], logits [N, K])`.
    fn forward_embedding(&self, x: &Var, ctx: &mut ForwardCtx) -> (Var, Var);

    /// Returns the last spatial feature map `[N, D, H', W']` (before global
    /// pooling), used by dense-prediction transfer heads.
    fn forward_spatial(&self, x: &Var, ctx: &mut ForwardCtx) -> Var;

    /// Compiles the current weights into a graph-free
    /// [`FrozenClassifier`](crate::infer::FrozenClassifier) for eval-mode
    /// forwards. [`FreezeOptions`](crate::infer::FreezeOptions) carries the
    /// folding mode plus optional int8 weight quantization (see
    /// [`crate::infer`] for the semantics of each).
    fn freeze_with(&self, opts: &crate::infer::FreezeOptions) -> crate::infer::FrozenClassifier;

    /// Mode-only freeze, superseded by [`Classifier::freeze_with`].
    #[deprecated(note = "use freeze_with(&FreezeOptions::with_mode(mode)) instead")]
    fn freeze(&self, mode: crate::infer::FreezeMode) -> crate::infer::FrozenClassifier {
        self.freeze_with(&crate::infer::FreezeOptions::with_mode(mode))
    }
}

/// An image generator mapping latent embeddings to images in `[-1, 1]`.
pub trait Generator: Module {
    /// Latent input dimension.
    fn latent_dim(&self) -> usize;

    /// Generates images from latent codes `z[N, latent_dim]`.
    fn generate(&self, z: &Var, ctx: &mut ForwardCtx) -> Var;

    /// Compiles the current weights into a graph-free
    /// [`FrozenGenerator`](crate::infer::FrozenGenerator) for eval-mode
    /// generation. [`FreezeOptions`](crate::infer::FreezeOptions) carries
    /// the folding mode plus optional int8 weight quantization.
    fn freeze_with(&self, opts: &crate::infer::FreezeOptions) -> crate::infer::FrozenGenerator;

    /// Mode-only freeze, superseded by [`Generator::freeze_with`].
    #[deprecated(note = "use freeze_with(&FreezeOptions::with_mode(mode)) instead")]
    fn freeze(&self, mode: crate::infer::FreezeMode) -> crate::infer::FrozenGenerator {
        self.freeze_with(&crate::infer::FreezeOptions::with_mode(mode))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_trait_objects_are_send_sync() {
        fn assert_send_sync<T: Send + Sync + ?Sized>() {}
        assert_send_sync::<dyn Module>();
        assert_send_sync::<dyn Classifier>();
        assert_send_sync::<dyn Generator>();
        assert_send_sync::<Box<dyn Classifier>>();
    }

    #[test]
    fn contexts_have_expected_flags() {
        assert!(ForwardCtx::train().training);
        assert!(!ForwardCtx::eval().training);
        let c = ForwardCtx::eval_with_bn_stats();
        assert!(!c.training && c.collect_bn_stats);
    }
}
