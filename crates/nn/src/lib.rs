//! # cae-nn
//!
//! Neural-network building blocks for the CAE-DFKD reproduction: a small
//! module system over [`cae_tensor`]'s autograd, the layer zoo needed by the
//! paper (convolutions, batch normalization with running statistics and
//! differentiable batch-statistic capture, pooling, upsampling), the model
//! families used in the evaluation (ResNet, WideResNet, VGG and the DFKD
//! image generator), optimizers (SGD with momentum, Adam, cosine annealing)
//! and the classification/distillation losses.
//!
//! # Example
//!
//! ```
//! use cae_nn::layers::Linear;
//! use cae_nn::module::{ForwardCtx, Module};
//! use cae_tensor::rng::TensorRng;
//! use cae_tensor::{Tensor, Var};
//!
//! let mut rng = TensorRng::seed_from(0);
//! let layer = Linear::new(4, 2, &mut rng);
//! let x = Var::constant(Tensor::zeros(&[3, 4]));
//! let y = layer.forward(&x, &mut ForwardCtx::eval());
//! assert_eq!(y.dims(), vec![3, 2]);
//! ```

pub mod infer;
pub mod init;
pub mod layers;
pub mod loss;
pub mod models;
pub mod module;
pub mod optim;
pub mod serialize;

pub use infer::{FreezeMode, FreezeOptions, FrozenClassifier, FrozenGenerator, QuantSpec};
pub use module::{Classifier, ForwardCtx, Generator, Module};
