//! The DFKD image generator.
//!
//! A DCGAN-style decoder mapping a latent embedding to an image in `[-1, 1]`:
//! linear projection to a small spatial grid, two nearest-neighbour
//! upsampling stages with 3×3 convolutions, batch normalization and leaky
//! ReLU, and a tanh output layer. This is the generator family used across
//! generator-based DFKD methods (DAFL, DFQ, CMI, NAYER, CAE-DFKD); the
//! methods differ in *what they feed it* and *how they train it*, which is
//! exactly what the `cae-core` crate implements.

use crate::infer::{self, Activation, FreezeOptions, FrozenGenerator, FrozenOp};
use crate::layers::{BatchNorm2d, Conv2d, Linear};
use crate::module::{ForwardCtx, Generator, Module};
use cae_tensor::rng::TensorRng;
use cae_tensor::Var;

/// Configuration of a [`DfkdGenerator`].
#[derive(Debug, Clone, Copy)]
pub struct GeneratorConfig {
    /// Latent input dimension (must match the embedding provider).
    pub latent_dim: usize,
    /// Base channel count of the decoder.
    pub base_channels: usize,
    /// Output image side (must be divisible by 4).
    pub out_size: usize,
    /// Output channels (3 for RGB).
    pub out_channels: usize,
}

impl GeneratorConfig {
    /// Creates a config.
    ///
    /// # Panics
    /// Panics if `out_size` is not divisible by 4.
    pub fn new(latent_dim: usize, base_channels: usize, out_size: usize) -> Self {
        assert!(
            out_size.is_multiple_of(4) && out_size >= 4,
            "generator output size must be a positive multiple of 4, got {out_size}"
        );
        GeneratorConfig {
            latent_dim,
            base_channels,
            out_size,
            out_channels: 3,
        }
    }
}

/// DCGAN-style DFKD generator. See the [module docs](self).
#[derive(Debug)]
pub struct DfkdGenerator {
    config: GeneratorConfig,
    project: Linear,
    bn0: BatchNorm2d,
    conv1: Conv2d,
    bn1: BatchNorm2d,
    conv2: Conv2d,
    bn2: BatchNorm2d,
    conv_out: Conv2d,
}

impl DfkdGenerator {
    /// Builds a generator.
    pub fn new(config: GeneratorConfig, rng: &mut TensorRng) -> Self {
        let gc = config.base_channels;
        let h0 = config.out_size / 4;
        DfkdGenerator {
            project: Linear::new(config.latent_dim, gc * h0 * h0, rng),
            bn0: BatchNorm2d::new(gc),
            conv1: Conv2d::new(gc, gc, 3, 1, 1, false, rng),
            bn1: BatchNorm2d::new(gc),
            conv2: Conv2d::new(gc, gc / 2, 3, 1, 1, false, rng),
            bn2: BatchNorm2d::new(gc / 2),
            conv_out: Conv2d::new(gc / 2, config.out_channels, 3, 1, 1, true, rng),
            config,
        }
    }

    /// The generator's configuration.
    pub fn config(&self) -> GeneratorConfig {
        self.config
    }
}

impl Module for DfkdGenerator {
    fn forward(&self, z: &Var, ctx: &mut ForwardCtx) -> Var {
        self.generate(z, ctx)
    }

    fn parameters(&self) -> Vec<Var> {
        let mut p = Vec::new();
        p.extend(self.project.parameters());
        p.extend(self.bn0.parameters());
        p.extend(self.conv1.parameters());
        p.extend(self.bn1.parameters());
        p.extend(self.conv2.parameters());
        p.extend(self.bn2.parameters());
        p.extend(self.conv_out.parameters());
        p
    }

    fn buffers(&self) -> Vec<cae_tensor::Tensor> {
        [&self.bn0, &self.bn1, &self.bn2]
            .iter()
            .flat_map(|bn| bn.buffers())
            .collect()
    }

    fn set_buffers(&self, bufs: &[cae_tensor::Tensor]) {
        assert_eq!(bufs.len(), 6, "buffer count mismatch");
        for (i, bn) in [&self.bn0, &self.bn1, &self.bn2].iter().enumerate() {
            bn.set_buffers(&bufs[i * 2..i * 2 + 2]);
        }
    }
}

impl Generator for DfkdGenerator {
    fn latent_dim(&self) -> usize {
        self.config.latent_dim
    }

    fn generate(&self, z: &Var, ctx: &mut ForwardCtx) -> Var {
        let n = z.dims()[0];
        let gc = self.config.base_channels;
        let h0 = self.config.out_size / 4;
        let mut h = self
            .project
            .forward(z, ctx)
            .reshape(&[n, gc, h0, h0]);
        h = self.bn0.forward(&h, ctx).leaky_relu(0.2);
        h = h.upsample_nearest2d(2);
        h = self
            .bn1
            .forward(&self.conv1.forward(&h, ctx), ctx)
            .leaky_relu(0.2);
        h = h.upsample_nearest2d(2);
        h = self
            .bn2
            .forward(&self.conv2.forward(&h, ctx), ctx)
            .leaky_relu(0.2);
        self.conv_out.forward(&h, ctx).tanh()
    }

    fn freeze_with(&self, opts: &FreezeOptions) -> FrozenGenerator {
        let mode = opts.mode;
        let gc = self.config.base_channels;
        let h0 = self.config.out_size / 4;
        let mut ops = vec![
            infer::linear_op(&self.project),
            FrozenOp::Reshape { ch: gc, h: h0, w: h0 },
        ];
        ops.extend(infer::bn_ops(&self.bn0, Activation::LeakyRelu(0.2), mode));
        ops.push(FrozenOp::Upsample { factor: 2 });
        ops.extend(infer::conv_bn_ops(
            &self.conv1,
            &self.bn1,
            Activation::LeakyRelu(0.2),
            mode,
        ));
        ops.push(FrozenOp::Upsample { factor: 2 });
        ops.extend(infer::conv_bn_ops(
            &self.conv2,
            &self.bn2,
            Activation::LeakyRelu(0.2),
            mode,
        ));
        ops.extend(infer::conv_ops(&self.conv_out, Activation::Tanh, mode));
        opts.finish_generator(FrozenGenerator::new(ops, self.config.latent_dim))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_images_in_range() {
        let mut rng = TensorRng::seed_from(0);
        let g = DfkdGenerator::new(GeneratorConfig::new(16, 8, 12), &mut rng);
        let z = Var::constant(rng.normal_tensor(&[4, 16], 0.0, 1.0));
        let img = g.generate(&z, &mut ForwardCtx::train());
        assert_eq!(img.dims(), vec![4, 3, 12, 12]);
        for &v in img.value().data() {
            assert!((-1.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn generator_is_trainable_end_to_end() {
        let mut rng = TensorRng::seed_from(1);
        let g = DfkdGenerator::new(GeneratorConfig::new(8, 8, 8), &mut rng);
        let z = Var::constant(rng.normal_tensor(&[2, 8], 0.0, 1.0));
        let img = g.generate(&z, &mut ForwardCtx::train());
        img.square().mean_all().backward();
        let with_grad = g.parameters().iter().filter(|p| p.grad().is_some()).count();
        assert_eq!(with_grad, g.parameters().len());
    }

    #[test]
    #[should_panic(expected = "multiple of 4")]
    fn rejects_bad_output_size() {
        GeneratorConfig::new(8, 8, 10);
    }
}
