//! CIFAR-style residual networks (basic and bottleneck blocks).

use crate::infer::{self, Activation, FreezeMode, FreezeOptions, FrozenClassifier, FrozenOp};
use crate::layers::{BatchNorm2d, Conv2d, Linear};
use crate::module::{Classifier, ForwardCtx, Module};
use cae_tensor::rng::TensorRng;
use cae_tensor::Var;

/// Block flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BlockKind {
    Basic,
    Bottleneck,
}

/// Configuration of a scaled residual network.
#[derive(Debug, Clone)]
pub struct ResNetConfig {
    blocks: [usize; 3],
    base_width: usize,
    num_classes: usize,
    kind: BlockKind,
}

impl ResNetConfig {
    /// Basic-block network (ResNet-18/34 family) with stage widths
    /// `[w, 2w, 4w]`.
    pub fn basic(blocks: [usize; 3], base_width: usize, num_classes: usize) -> Self {
        ResNetConfig {
            blocks,
            base_width,
            num_classes,
            kind: BlockKind::Basic,
        }
    }

    /// Bottleneck network (ResNet-50 family; expansion 2 in this scaled
    /// variant).
    pub fn bottleneck(blocks: [usize; 3], base_width: usize, num_classes: usize) -> Self {
        ResNetConfig {
            blocks,
            base_width,
            num_classes,
            kind: BlockKind::Bottleneck,
        }
    }
}

const BOTTLENECK_EXPANSION: usize = 2;

#[derive(Debug)]
struct Block {
    kind: BlockKind,
    conv1: Conv2d,
    bn1: BatchNorm2d,
    conv2: Conv2d,
    bn2: BatchNorm2d,
    conv3: Option<Conv2d>,
    bn3: Option<BatchNorm2d>,
    down: Option<(Conv2d, BatchNorm2d)>,
}

impl Block {
    fn basic(in_ch: usize, out_ch: usize, stride: usize, rng: &mut TensorRng) -> Self {
        let down = (stride != 1 || in_ch != out_ch).then(|| {
            (
                Conv2d::new(in_ch, out_ch, 1, stride, 0, false, rng),
                BatchNorm2d::new(out_ch),
            )
        });
        Block {
            kind: BlockKind::Basic,
            conv1: Conv2d::new(in_ch, out_ch, 3, stride, 1, false, rng),
            bn1: BatchNorm2d::new(out_ch),
            conv2: Conv2d::new(out_ch, out_ch, 3, 1, 1, false, rng),
            bn2: BatchNorm2d::new(out_ch),
            conv3: None,
            bn3: None,
            down,
        }
    }

    fn bottleneck(in_ch: usize, mid_ch: usize, stride: usize, rng: &mut TensorRng) -> Self {
        let out_ch = mid_ch * BOTTLENECK_EXPANSION;
        let down = (stride != 1 || in_ch != out_ch).then(|| {
            (
                Conv2d::new(in_ch, out_ch, 1, stride, 0, false, rng),
                BatchNorm2d::new(out_ch),
            )
        });
        Block {
            kind: BlockKind::Bottleneck,
            conv1: Conv2d::new(in_ch, mid_ch, 1, 1, 0, false, rng),
            bn1: BatchNorm2d::new(mid_ch),
            conv2: Conv2d::new(mid_ch, mid_ch, 3, stride, 1, false, rng),
            bn2: BatchNorm2d::new(mid_ch),
            conv3: Some(Conv2d::new(mid_ch, out_ch, 1, 1, 0, false, rng)),
            bn3: Some(BatchNorm2d::new(out_ch)),
            down,
        }
    }

    fn forward(&self, x: &Var, ctx: &mut ForwardCtx) -> Var {
        let identity = match &self.down {
            Some((conv, bn)) => bn.forward(&conv.forward(x, ctx), ctx),
            None => x.clone(),
        };
        let mut h = self.bn1.forward(&self.conv1.forward(x, ctx), ctx).relu();
        h = self.bn2.forward(&self.conv2.forward(&h, ctx), ctx);
        if self.kind == BlockKind::Bottleneck {
            h = h.relu();
            let conv3 = self.conv3.as_ref().expect("bottleneck has conv3");
            let bn3 = self.bn3.as_ref().expect("bottleneck has bn3");
            h = bn3.forward(&conv3.forward(&h, ctx), ctx);
        }
        h.add(&identity).relu()
    }

    fn parameters(&self) -> Vec<Var> {
        let mut p = Vec::new();
        p.extend(self.conv1.parameters());
        p.extend(self.bn1.parameters());
        p.extend(self.conv2.parameters());
        p.extend(self.bn2.parameters());
        if let Some(c) = &self.conv3 {
            p.extend(c.parameters());
        }
        if let Some(b) = &self.bn3 {
            p.extend(b.parameters());
        }
        if let Some((c, b)) = &self.down {
            p.extend(c.parameters());
            p.extend(b.parameters());
        }
        p
    }

    fn bn_layers(&self) -> Vec<&BatchNorm2d> {
        let mut bns = vec![&self.bn1, &self.bn2];
        if let Some(b) = &self.bn3 {
            bns.push(b);
        }
        if let Some((_, b)) = &self.down {
            bns.push(b);
        }
        bns
    }

    /// Compiles this post-activation residual block: `relu(main(x) + skip(x))`.
    fn freeze(&self, mode: FreezeMode) -> FrozenOp {
        let mut main = infer::conv_bn_ops(&self.conv1, &self.bn1, Activation::Relu, mode);
        if self.kind == BlockKind::Bottleneck {
            main.extend(infer::conv_bn_ops(&self.conv2, &self.bn2, Activation::Relu, mode));
            let conv3 = self.conv3.as_ref().expect("bottleneck has conv3");
            let bn3 = self.bn3.as_ref().expect("bottleneck has bn3");
            main.extend(infer::conv_bn_ops(conv3, bn3, Activation::None, mode));
        } else {
            main.extend(infer::conv_bn_ops(&self.conv2, &self.bn2, Activation::None, mode));
        }
        let skip = self
            .down
            .as_ref()
            .map(|(conv, bn)| infer::conv_bn_ops(conv, bn, Activation::None, mode));
        FrozenOp::Block {
            pre: Vec::new(),
            main,
            skip,
            post: Activation::Relu,
        }
    }
}

/// A scaled CIFAR-style residual network: 3×3 stem, three stages with
/// stride-2 transitions, global average pooling and a linear head.
#[derive(Debug)]
pub struct ResNet {
    stem: Conv2d,
    stem_bn: BatchNorm2d,
    stages: Vec<Block>,
    head: Linear,
    embed_dim: usize,
    num_classes: usize,
}

impl ResNet {
    /// Builds the network described by `config`.
    pub fn new(config: ResNetConfig, rng: &mut TensorRng) -> Self {
        let w = config.base_width;
        let widths = [w, 2 * w, 4 * w];
        let expansion = match config.kind {
            BlockKind::Basic => 1,
            BlockKind::Bottleneck => BOTTLENECK_EXPANSION,
        };
        let stem = Conv2d::new(3, w, 3, 1, 1, false, rng);
        let stem_bn = BatchNorm2d::new(w);
        let mut stages = Vec::new();
        let mut in_ch = w;
        for (si, &width) in widths.iter().enumerate() {
            let stride0 = if si == 0 { 1 } else { 2 };
            for bi in 0..config.blocks[si] {
                let stride = if bi == 0 { stride0 } else { 1 };
                let block = match config.kind {
                    BlockKind::Basic => Block::basic(in_ch, width, stride, rng),
                    BlockKind::Bottleneck => Block::bottleneck(in_ch, width, stride, rng),
                };
                in_ch = width * expansion;
                stages.push(block);
            }
        }
        let embed_dim = in_ch;
        let head = Linear::new(embed_dim, config.num_classes, rng);
        ResNet {
            stem,
            stem_bn,
            stages,
            head,
            embed_dim,
            num_classes: config.num_classes,
        }
    }
}

impl ResNet {
    fn bn_layers(&self) -> Vec<&BatchNorm2d> {
        let mut bns = vec![&self.stem_bn];
        for b in &self.stages {
            bns.extend(b.bn_layers());
        }
        bns
    }
}

impl Module for ResNet {
    fn forward(&self, x: &Var, ctx: &mut ForwardCtx) -> Var {
        self.forward_embedding(x, ctx).1
    }

    fn parameters(&self) -> Vec<Var> {
        let mut p = Vec::new();
        p.extend(self.stem.parameters());
        p.extend(self.stem_bn.parameters());
        for b in &self.stages {
            p.extend(b.parameters());
        }
        p.extend(self.head.parameters());
        p
    }

    fn buffers(&self) -> Vec<cae_tensor::Tensor> {
        self.bn_layers().iter().flat_map(|bn| bn.buffers()).collect()
    }

    fn set_buffers(&self, bufs: &[cae_tensor::Tensor]) {
        let bns = self.bn_layers();
        assert_eq!(bufs.len(), bns.len() * 2, "buffer count mismatch");
        for (i, bn) in bns.iter().enumerate() {
            bn.set_buffers(&bufs[i * 2..i * 2 + 2]);
        }
    }
}

impl Classifier for ResNet {
    fn num_classes(&self) -> usize {
        self.num_classes
    }

    fn embed_dim(&self) -> usize {
        self.embed_dim
    }

    fn forward_embedding(&self, x: &Var, ctx: &mut ForwardCtx) -> (Var, Var) {
        let emb = self.forward_spatial(x, ctx).global_avg_pool();
        let logits = self.head.forward(&emb, ctx);
        (emb, logits)
    }

    fn forward_spatial(&self, x: &Var, ctx: &mut ForwardCtx) -> Var {
        let mut h = self.stem_bn.forward(&self.stem.forward(x, ctx), ctx).relu();
        for block in &self.stages {
            h = block.forward(&h, ctx);
        }
        h
    }

    fn freeze_with(&self, opts: &FreezeOptions) -> FrozenClassifier {
        let mode = opts.mode;
        let mut spatial = infer::conv_bn_ops(&self.stem, &self.stem_bn, Activation::Relu, mode);
        for block in &self.stages {
            spatial.push(block.freeze(mode));
        }
        let (hw, hb) = self.head.freeze_parts();
        opts.finish_classifier(FrozenClassifier::new(spatial, hw, hb))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cae_tensor::Tensor;

    #[test]
    fn basic_resnet_shapes() {
        let mut rng = TensorRng::seed_from(0);
        let net = ResNet::new(ResNetConfig::basic([1, 1, 1], 4, 7), &mut rng);
        let x = Var::constant(Tensor::zeros(&[2, 3, 12, 12]));
        let (emb, logits) = net.forward_embedding(&x, &mut ForwardCtx::eval());
        assert_eq!(emb.dims(), vec![2, 16]);
        assert_eq!(logits.dims(), vec![2, 7]);
    }

    #[test]
    fn bottleneck_resnet_shapes() {
        let mut rng = TensorRng::seed_from(1);
        let net = ResNet::new(ResNetConfig::bottleneck([1, 1, 1], 4, 3), &mut rng);
        let x = Var::constant(Tensor::zeros(&[1, 3, 16, 16]));
        let (emb, logits) = net.forward_embedding(&x, &mut ForwardCtx::eval());
        assert_eq!(emb.dims(), vec![1, 32]); // 4w * expansion 2
        assert_eq!(logits.dims(), vec![1, 3]);
    }

    #[test]
    fn training_forward_is_differentiable_to_all_params() {
        let mut rng = TensorRng::seed_from(2);
        let net = ResNet::new(ResNetConfig::basic([1, 1, 1], 4, 3), &mut rng);
        let x = Var::constant(rng.normal_tensor(&[4, 3, 8, 8], 0.0, 1.0));
        let logits = net.forward(&x, &mut ForwardCtx::train());
        crate::loss::cross_entropy(&logits, &[0, 1, 2, 0]).backward();
        let with_grad = net
            .parameters()
            .iter()
            .filter(|p| p.grad().is_some())
            .count();
        assert_eq!(with_grad, net.parameters().len());
    }
}
