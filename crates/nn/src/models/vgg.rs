//! Scaled VGG with batch normalization.

use crate::infer::{self, Activation, FreezeOptions, FrozenClassifier, FrozenOp};
use crate::layers::{BatchNorm2d, Conv2d, Linear};
use crate::module::{Classifier, ForwardCtx, Module};
use cae_tensor::rng::TensorRng;
use cae_tensor::Var;

/// One VGG feature stage: a convolution (+BN+ReLU) optionally followed by a
/// 2×2 max-pool.
#[derive(Debug, Clone, Copy)]
struct StageSpec {
    width: usize,
    pool: bool,
}

/// Configuration of a scaled VGG network.
#[derive(Debug, Clone)]
pub struct VggConfig {
    stages: Vec<StageSpec>,
    num_classes: usize,
}

impl VggConfig {
    /// Scaled VGG-11: five conv stages with pooling after stages 1, 2 and 4,
    /// widths `[w, 2w, 4w, 4w, 4w]`.
    pub fn vgg11(base_width: usize, num_classes: usize) -> Self {
        let w = base_width;
        VggConfig {
            stages: vec![
                StageSpec { width: w, pool: true },
                StageSpec { width: 2 * w, pool: true },
                StageSpec { width: 4 * w, pool: false },
                StageSpec { width: 4 * w, pool: true },
                StageSpec { width: 4 * w, pool: false },
            ],
            num_classes,
        }
    }
}

/// A scaled VGG classifier (conv/BN/ReLU stacks with max pooling, global
/// average pooling and a linear head).
#[derive(Debug)]
pub struct Vgg {
    convs: Vec<(Conv2d, BatchNorm2d, bool)>,
    head: Linear,
    embed_dim: usize,
    num_classes: usize,
}

impl Vgg {
    /// Builds the network described by `config`.
    pub fn new(config: VggConfig, rng: &mut TensorRng) -> Self {
        let mut convs = Vec::new();
        let mut in_ch = 3;
        for stage in &config.stages {
            convs.push((
                Conv2d::new(in_ch, stage.width, 3, 1, 1, false, rng),
                BatchNorm2d::new(stage.width),
                stage.pool,
            ));
            in_ch = stage.width;
        }
        Vgg {
            head: Linear::new(in_ch, config.num_classes, rng),
            embed_dim: in_ch,
            num_classes: config.num_classes,
            convs,
        }
    }
}

impl Module for Vgg {
    fn forward(&self, x: &Var, ctx: &mut ForwardCtx) -> Var {
        self.forward_embedding(x, ctx).1
    }

    fn parameters(&self) -> Vec<Var> {
        let mut p = Vec::new();
        for (c, b, _) in &self.convs {
            p.extend(c.parameters());
            p.extend(b.parameters());
        }
        p.extend(self.head.parameters());
        p
    }

    fn buffers(&self) -> Vec<cae_tensor::Tensor> {
        self.convs.iter().flat_map(|(_, b, _)| b.buffers()).collect()
    }

    fn set_buffers(&self, bufs: &[cae_tensor::Tensor]) {
        assert_eq!(bufs.len(), self.convs.len() * 2, "buffer count mismatch");
        for (i, (_, b, _)) in self.convs.iter().enumerate() {
            b.set_buffers(&bufs[i * 2..i * 2 + 2]);
        }
    }
}

impl Classifier for Vgg {
    fn num_classes(&self) -> usize {
        self.num_classes
    }

    fn embed_dim(&self) -> usize {
        self.embed_dim
    }

    fn forward_embedding(&self, x: &Var, ctx: &mut ForwardCtx) -> (Var, Var) {
        let emb = self.forward_spatial(x, ctx).global_avg_pool();
        let logits = self.head.forward(&emb, ctx);
        (emb, logits)
    }

    fn forward_spatial(&self, x: &Var, ctx: &mut ForwardCtx) -> Var {
        let mut h = x.clone();
        for (conv, bn, pool) in &self.convs {
            h = bn.forward(&conv.forward(&h, ctx), ctx).relu();
            if *pool {
                let (_, _, hh, _) = {
                    let v = h.value();
                    v.shape().nchw()
                };
                if hh >= 2 {
                    h = h.max_pool2d(2, 2);
                }
            }
        }
        h
    }

    fn freeze_with(&self, opts: &FreezeOptions) -> FrozenClassifier {
        let mut spatial = Vec::new();
        for (conv, bn, pool) in &self.convs {
            spatial.extend(infer::conv_bn_ops(conv, bn, Activation::Relu, opts.mode));
            if *pool {
                spatial.push(FrozenOp::MaxPool { kernel: 2, stride: 2 });
            }
        }
        let (hw, hb) = self.head.freeze_parts();
        opts.finish_classifier(FrozenClassifier::new(spatial, hw, hb))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cae_tensor::Tensor;

    #[test]
    fn vgg_shapes() {
        let mut rng = TensorRng::seed_from(0);
        let net = Vgg::new(VggConfig::vgg11(4, 6), &mut rng);
        let x = Var::constant(Tensor::zeros(&[2, 3, 12, 12]));
        let (emb, logits) = net.forward_embedding(&x, &mut ForwardCtx::eval());
        assert_eq!(emb.dims(), vec![2, 16]);
        assert_eq!(logits.dims(), vec![2, 6]);
    }

    #[test]
    fn vgg_handles_tiny_inputs_without_pool_underflow() {
        let mut rng = TensorRng::seed_from(1);
        let net = Vgg::new(VggConfig::vgg11(4, 3), &mut rng);
        let x = Var::constant(Tensor::zeros(&[1, 3, 4, 4]));
        let logits = net.forward(&x, &mut ForwardCtx::eval());
        assert_eq!(logits.dims(), vec![1, 3]);
    }
}
