//! Scaled WideResNet (pre-activation residual blocks, `6n+4` layout).

use crate::infer::{self, Activation, FreezeMode, FreezeOptions, FrozenClassifier, FrozenOp};
use crate::layers::{BatchNorm2d, Conv2d, Linear};
use crate::module::{Classifier, ForwardCtx, Module};
use cae_tensor::rng::TensorRng;
use cae_tensor::Var;

/// Configuration of a scaled WideResNet.
///
/// The real WRN-`d`-`k` has `n = (d - 4) / 6` blocks per stage and widen
/// factor `k`; the scaled variants keep `k` and shrink `n` and the base
/// width.
#[derive(Debug, Clone, Copy)]
pub struct WideResNetConfig {
    /// Blocks per stage.
    pub n: usize,
    /// Widen factor.
    pub widen: usize,
    /// Base channel count (real WRN uses 16).
    pub base_width: usize,
    /// Number of classes.
    pub num_classes: usize,
}

impl WideResNetConfig {
    /// Creates a config.
    pub fn new(n: usize, widen: usize, base_width: usize, num_classes: usize) -> Self {
        WideResNetConfig {
            n,
            widen,
            base_width,
            num_classes,
        }
    }
}

#[derive(Debug)]
struct PreactBlock {
    bn1: BatchNorm2d,
    conv1: Conv2d,
    bn2: BatchNorm2d,
    conv2: Conv2d,
    down: Option<Conv2d>,
}

impl PreactBlock {
    fn new(in_ch: usize, out_ch: usize, stride: usize, rng: &mut TensorRng) -> Self {
        let down = (stride != 1 || in_ch != out_ch)
            .then(|| Conv2d::new(in_ch, out_ch, 1, stride, 0, false, rng));
        PreactBlock {
            bn1: BatchNorm2d::new(in_ch),
            conv1: Conv2d::new(in_ch, out_ch, 3, stride, 1, false, rng),
            bn2: BatchNorm2d::new(out_ch),
            conv2: Conv2d::new(out_ch, out_ch, 3, 1, 1, false, rng),
            down,
        }
    }

    fn forward(&self, x: &Var, ctx: &mut ForwardCtx) -> Var {
        let pre = self.bn1.forward(x, ctx).relu();
        let identity = match &self.down {
            Some(conv) => conv.forward(&pre, ctx),
            None => x.clone(),
        };
        let mut h = self.conv1.forward(&pre, ctx);
        h = self.conv2.forward(&self.bn2.forward(&h, ctx).relu(), ctx);
        h.add(&identity)
    }

    fn parameters(&self) -> Vec<Var> {
        let mut p = Vec::new();
        p.extend(self.bn1.parameters());
        p.extend(self.conv1.parameters());
        p.extend(self.bn2.parameters());
        p.extend(self.conv2.parameters());
        if let Some(c) = &self.down {
            p.extend(c.parameters());
        }
        p
    }

    /// Compiles this pre-activation block: `main(pre(x)) + skip`, where the
    /// identity shortcut bypasses the pre-activation entirely and the
    /// downsample shortcut (when present) reads the pre-activated input.
    fn freeze(&self, mode: FreezeMode) -> FrozenOp {
        let pre = infer::bn_ops(&self.bn1, Activation::Relu, mode);
        let mut main = infer::conv_bn_ops(&self.conv1, &self.bn2, Activation::Relu, mode);
        main.extend(infer::conv_ops(&self.conv2, Activation::None, mode));
        let skip = self
            .down
            .as_ref()
            .map(|conv| infer::conv_ops(conv, Activation::None, mode));
        FrozenOp::Block {
            pre,
            main,
            skip,
            post: Activation::None,
        }
    }
}

/// A scaled WideResNet classifier.
#[derive(Debug)]
pub struct WideResNet {
    stem: Conv2d,
    blocks: Vec<PreactBlock>,
    final_bn: BatchNorm2d,
    head: Linear,
    embed_dim: usize,
    num_classes: usize,
}

impl WideResNet {
    /// Builds the network described by `config`.
    pub fn new(config: WideResNetConfig, rng: &mut TensorRng) -> Self {
        let w = config.base_width;
        let widths = [
            w * config.widen,
            2 * w * config.widen,
            4 * w * config.widen,
        ];
        let stem = Conv2d::new(3, w, 3, 1, 1, false, rng);
        let mut blocks = Vec::new();
        let mut in_ch = w;
        for (si, &width) in widths.iter().enumerate() {
            let stride0 = if si == 0 { 1 } else { 2 };
            for bi in 0..config.n {
                let stride = if bi == 0 { stride0 } else { 1 };
                blocks.push(PreactBlock::new(in_ch, width, stride, rng));
                in_ch = width;
            }
        }
        WideResNet {
            stem,
            blocks,
            final_bn: BatchNorm2d::new(in_ch),
            head: Linear::new(in_ch, config.num_classes, rng),
            embed_dim: in_ch,
            num_classes: config.num_classes,
        }
    }
}

impl WideResNet {
    fn bn_layers(&self) -> Vec<&BatchNorm2d> {
        let mut bns = Vec::new();
        for b in &self.blocks {
            bns.push(&b.bn1);
            bns.push(&b.bn2);
        }
        bns.push(&self.final_bn);
        bns
    }
}

impl Module for WideResNet {
    fn forward(&self, x: &Var, ctx: &mut ForwardCtx) -> Var {
        self.forward_embedding(x, ctx).1
    }

    fn parameters(&self) -> Vec<Var> {
        let mut p = Vec::new();
        p.extend(self.stem.parameters());
        for b in &self.blocks {
            p.extend(b.parameters());
        }
        p.extend(self.final_bn.parameters());
        p.extend(self.head.parameters());
        p
    }

    fn buffers(&self) -> Vec<cae_tensor::Tensor> {
        self.bn_layers().iter().flat_map(|bn| bn.buffers()).collect()
    }

    fn set_buffers(&self, bufs: &[cae_tensor::Tensor]) {
        let bns = self.bn_layers();
        assert_eq!(bufs.len(), bns.len() * 2, "buffer count mismatch");
        for (i, bn) in bns.iter().enumerate() {
            bn.set_buffers(&bufs[i * 2..i * 2 + 2]);
        }
    }
}

impl Classifier for WideResNet {
    fn num_classes(&self) -> usize {
        self.num_classes
    }

    fn embed_dim(&self) -> usize {
        self.embed_dim
    }

    fn forward_embedding(&self, x: &Var, ctx: &mut ForwardCtx) -> (Var, Var) {
        let emb = self.forward_spatial(x, ctx).global_avg_pool();
        let logits = self.head.forward(&emb, ctx);
        (emb, logits)
    }

    fn forward_spatial(&self, x: &Var, ctx: &mut ForwardCtx) -> Var {
        let mut h = self.stem.forward(x, ctx);
        for b in &self.blocks {
            h = b.forward(&h, ctx);
        }
        self.final_bn.forward(&h, ctx).relu()
    }

    fn freeze_with(&self, opts: &FreezeOptions) -> FrozenClassifier {
        let mode = opts.mode;
        let mut spatial = infer::conv_ops(&self.stem, Activation::None, mode);
        for block in &self.blocks {
            spatial.push(block.freeze(mode));
        }
        spatial.extend(infer::bn_ops(&self.final_bn, Activation::Relu, mode));
        let (hw, hb) = self.head.freeze_parts();
        opts.finish_classifier(FrozenClassifier::new(spatial, hw, hb))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cae_tensor::Tensor;

    #[test]
    fn wrn_shapes_follow_widen_factor() {
        let mut rng = TensorRng::seed_from(0);
        let x = Var::constant(Tensor::zeros(&[1, 3, 8, 8]));
        let w1 = WideResNet::new(WideResNetConfig::new(1, 1, 4, 5), &mut rng);
        let w2 = WideResNet::new(WideResNetConfig::new(1, 2, 4, 5), &mut rng);
        let (e1, _) = w1.forward_embedding(&x, &mut ForwardCtx::eval());
        let (e2, _) = w2.forward_embedding(&x, &mut ForwardCtx::eval());
        assert_eq!(e1.dims(), vec![1, 16]);
        assert_eq!(e2.dims(), vec![1, 32]);
    }

    #[test]
    fn deeper_wrn_has_more_blocks_and_params() {
        let mut rng = TensorRng::seed_from(1);
        let shallow = WideResNet::new(WideResNetConfig::new(1, 1, 4, 5), &mut rng);
        let deep = WideResNet::new(WideResNetConfig::new(3, 1, 4, 5), &mut rng);
        assert!(deep.num_parameters() > shallow.num_parameters());
    }
}
