//! Model families used in the paper's evaluation.
//!
//! All models are *scaled* variants of their namesakes: the architecture
//! family (residual topology, wide-resnet `6n+4` layout, VGG conv/pool
//! stacks) is preserved while width/depth are reduced for CPU training.
//! Relative capacity ordering between variants is preserved, which is what
//! the teacher→student comparisons in the paper exercise.

mod generator;
mod resnet;
mod vgg;
mod wideresnet;

pub use generator::{DfkdGenerator, GeneratorConfig};
pub use resnet::{ResNet, ResNetConfig};
pub use vgg::{Vgg, VggConfig};
pub use wideresnet::{WideResNet, WideResNetConfig};

use crate::module::Classifier;
use cae_tensor::rng::TensorRng;

/// The classifier architectures appearing in the paper's tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Arch {
    /// ResNet-18 (scaled): basic blocks `[2, 2, 2]`.
    ResNet18,
    /// ResNet-34 (scaled): basic blocks `[3, 4, 3]`.
    ResNet34,
    /// ResNet-50 (scaled): bottleneck blocks `[2, 3, 2]`.
    ResNet50,
    /// WRN-40-2 (scaled): `n = 3`, widen factor 2.
    Wrn40x2,
    /// WRN-40-1 (scaled): `n = 3`, widen factor 1.
    Wrn40x1,
    /// WRN-16-2 (scaled): `n = 1`, widen factor 2.
    Wrn16x2,
    /// WRN-16-1 (scaled): `n = 1`, widen factor 1.
    Wrn16x1,
    /// VGG-11 (scaled).
    Vgg11,
}

serde::impl_json_unit_enum!(Arch {
    ResNet18,
    ResNet34,
    ResNet50,
    Wrn40x2,
    Wrn40x1,
    Wrn16x2,
    Wrn16x1,
    Vgg11,
});

impl Arch {
    /// Human-readable name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            Arch::ResNet18 => "ResNet-18",
            Arch::ResNet34 => "ResNet-34",
            Arch::ResNet50 => "ResNet-50",
            Arch::Wrn40x2 => "WRN-40-2",
            Arch::Wrn40x1 => "WRN-40-1",
            Arch::Wrn16x2 => "WRN-16-2",
            Arch::Wrn16x1 => "WRN-16-1",
            Arch::Vgg11 => "VGG-11",
        }
    }

    /// Builds the scaled model.
    ///
    /// `base_width` controls overall capacity (the simulation analogue of
    /// channel counts; 4–8 is typical here).
    pub fn build(
        &self,
        num_classes: usize,
        base_width: usize,
        rng: &mut TensorRng,
    ) -> Box<dyn Classifier> {
        match self {
            Arch::ResNet18 => Box::new(ResNet::new(
                ResNetConfig::basic([2, 2, 2], base_width, num_classes),
                rng,
            )),
            Arch::ResNet34 => Box::new(ResNet::new(
                ResNetConfig::basic([3, 4, 3], base_width, num_classes),
                rng,
            )),
            Arch::ResNet50 => Box::new(ResNet::new(
                ResNetConfig::bottleneck([2, 3, 2], base_width, num_classes),
                rng,
            )),
            Arch::Wrn40x2 => Box::new(WideResNet::new(
                WideResNetConfig::new(3, 2, base_width, num_classes),
                rng,
            )),
            Arch::Wrn40x1 => Box::new(WideResNet::new(
                WideResNetConfig::new(3, 1, base_width, num_classes),
                rng,
            )),
            Arch::Wrn16x2 => Box::new(WideResNet::new(
                WideResNetConfig::new(1, 2, base_width, num_classes),
                rng,
            )),
            Arch::Wrn16x1 => Box::new(WideResNet::new(
                WideResNetConfig::new(1, 1, base_width, num_classes),
                rng,
            )),
            Arch::Vgg11 => Box::new(Vgg::new(VggConfig::vgg11(base_width, num_classes), rng)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::ForwardCtx;
    use cae_tensor::{Tensor, Var};

    #[test]
    fn every_arch_builds_and_classifies() {
        let mut rng = TensorRng::seed_from(0);
        let x = Var::constant(Tensor::zeros(&[2, 3, 8, 8]));
        for arch in [
            Arch::ResNet18,
            Arch::ResNet34,
            Arch::ResNet50,
            Arch::Wrn40x2,
            Arch::Wrn40x1,
            Arch::Wrn16x2,
            Arch::Wrn16x1,
            Arch::Vgg11,
        ] {
            let m = arch.build(5, 4, &mut rng);
            let (emb, logits) = m.forward_embedding(&x, &mut ForwardCtx::eval());
            assert_eq!(logits.dims(), vec![2, 5], "{}", arch.name());
            assert_eq!(emb.dims(), vec![2, m.embed_dim()], "{}", arch.name());
            assert!(m.num_parameters() > 0);
        }
    }

    #[test]
    fn capacity_ordering_is_preserved() {
        let mut rng = TensorRng::seed_from(0);
        let n34 = Arch::ResNet34.build(10, 4, &mut rng).num_parameters();
        let n18 = Arch::ResNet18.build(10, 4, &mut rng).num_parameters();
        let w402 = Arch::Wrn40x2.build(10, 4, &mut rng).num_parameters();
        let w161 = Arch::Wrn16x1.build(10, 4, &mut rng).num_parameters();
        assert!(n34 > n18, "ResNet-34 must outsize ResNet-18");
        assert!(w402 > w161, "WRN-40-2 must outsize WRN-16-1");
    }
}
