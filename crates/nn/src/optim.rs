//! Optimizers and learning-rate schedules.

use cae_tensor::{Tensor, Var};
use std::collections::HashMap;

/// Common interface for first-order optimizers.
pub trait Optimizer {
    /// Applies one update step using the gradients currently accumulated in
    /// the managed parameters, then leaves the gradients untouched (call
    /// [`Optimizer::zero_grad`] explicitly).
    fn step(&mut self);

    /// Clears all managed parameters' gradients.
    fn zero_grad(&self);

    /// Sets the learning rate (used by schedulers).
    fn set_lr(&mut self, lr: f32);

    /// Current learning rate.
    fn lr(&self) -> f32;
}

/// Stochastic gradient descent with momentum and decoupled weight decay,
/// matching the student optimizer in the paper (SGD, initial lr 0.1).
#[derive(Debug)]
pub struct Sgd {
    params: Vec<Var>,
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: HashMap<u64, Tensor>,
}

impl Sgd {
    /// Creates an SGD optimizer over `params`.
    pub fn new(params: Vec<Var>, lr: f32, momentum: f32, weight_decay: f32) -> Self {
        Sgd {
            params,
            lr,
            momentum,
            weight_decay,
            velocity: HashMap::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self) {
        for p in &self.params {
            let Some(mut g) = p.grad() else { continue };
            if self.weight_decay > 0.0 {
                let w = p.to_tensor();
                g.add_assign_scaled(&w, self.weight_decay);
            }
            let v = self
                .velocity
                .entry(p.id())
                .or_insert_with(|| Tensor::zeros(&p.dims()));
            // v = momentum*v + g ; w -= lr*v
            let mut new_v = v.scale(self.momentum);
            new_v.add_assign_scaled(&g, 1.0);
            *v = new_v.clone();
            p.update_value(|w| w.add_assign_scaled(&new_v, -self.lr));
        }
    }

    fn zero_grad(&self) {
        for p in &self.params {
            p.zero_grad();
        }
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn lr(&self) -> f32 {
        self.lr
    }
}

/// Adam, matching the generator optimizer in the paper (Adam, lr 1e-3).
#[derive(Debug)]
pub struct Adam {
    params: Vec<Var>,
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: HashMap<u64, Tensor>,
    v: HashMap<u64, Tensor>,
}

impl Adam {
    /// Creates an Adam optimizer with the conventional betas `(0.9, 0.999)`.
    pub fn new(params: Vec<Var>, lr: f32) -> Self {
        Adam {
            params,
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: HashMap::new(),
            v: HashMap::new(),
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for p in &self.params {
            let Some(g) = p.grad() else { continue };
            let m = self
                .m
                .entry(p.id())
                .or_insert_with(|| Tensor::zeros(&p.dims()));
            let v = self
                .v
                .entry(p.id())
                .or_insert_with(|| Tensor::zeros(&p.dims()));
            let mut new_m = m.scale(self.beta1);
            new_m.add_assign_scaled(&g, 1.0 - self.beta1);
            let g2 = g.mul(&g);
            let mut new_v = v.scale(self.beta2);
            new_v.add_assign_scaled(&g2, 1.0 - self.beta2);
            *m = new_m.clone();
            *v = new_v.clone();
            let lr = self.lr;
            let eps = self.eps;
            p.update_value(|w| {
                // w -= lr * (m/bc1) / (sqrt(v/bc2) + eps), vectorized.
                cae_tensor::simd::vecmath::vec_adam(
                    w.data_mut(),
                    new_m.data(),
                    new_v.data(),
                    lr,
                    bc1,
                    bc2,
                    eps,
                );
            });
        }
    }

    fn zero_grad(&self) {
        for p in &self.params {
            p.zero_grad();
        }
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn lr(&self) -> f32 {
        self.lr
    }
}

/// Cosine-annealing schedule from `base_lr` down to `min_lr` over
/// `total_steps`, as used for the student in the paper.
#[derive(Debug, Clone, Copy)]
pub struct CosineSchedule {
    /// Initial learning rate.
    pub base_lr: f32,
    /// Final learning rate.
    pub min_lr: f32,
    /// Horizon in steps.
    pub total_steps: usize,
}

impl CosineSchedule {
    /// Creates a schedule decaying to zero.
    pub fn new(base_lr: f32, total_steps: usize) -> Self {
        CosineSchedule {
            base_lr,
            min_lr: 0.0,
            total_steps: total_steps.max(1),
        }
    }

    /// Learning rate at `step` (clamped to the horizon).
    pub fn lr_at(&self, step: usize) -> f32 {
        let t = step.min(self.total_steps) as f32 / self.total_steps as f32;
        self.min_lr
            + 0.5 * (self.base_lr - self.min_lr) * (1.0 + (std::f32::consts::PI * t).cos())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_step(opt: &mut dyn Optimizer, w: &Var) -> f32 {
        opt.zero_grad();
        let loss = w.square().sum_all();
        loss.backward();
        opt.step();
        loss.item()
    }

    #[test]
    fn sgd_minimizes_quadratic() {
        let w = Var::parameter(Tensor::from_vec(vec![2.0, -3.0], &[2]).unwrap());
        let mut opt = Sgd::new(vec![w.clone()], 0.1, 0.9, 0.0);
        let first = quadratic_step(&mut opt, &w);
        let mut last = first;
        for _ in 0..50 {
            last = quadratic_step(&mut opt, &w);
        }
        assert!(last < first * 1e-2, "loss {first} -> {last}");
    }

    #[test]
    fn adam_minimizes_quadratic() {
        let w = Var::parameter(Tensor::from_vec(vec![5.0, -1.0], &[2]).unwrap());
        let mut opt = Adam::new(vec![w.clone()], 0.1);
        let first = quadratic_step(&mut opt, &w);
        let mut last = first;
        for _ in 0..200 {
            last = quadratic_step(&mut opt, &w);
        }
        assert!(last < first * 1e-3, "loss {first} -> {last}");
    }

    #[test]
    fn weight_decay_shrinks_weights_without_gradient() {
        let w = Var::parameter(Tensor::from_vec(vec![1.0], &[1]).unwrap());
        let mut opt = Sgd::new(vec![w.clone()], 0.1, 0.0, 0.5);
        // Provide a zero gradient so only decay acts.
        let loss = w.scale(0.0).sum_all();
        loss.backward();
        opt.step();
        assert!(w.value().data()[0] < 1.0);
    }

    #[test]
    fn cosine_schedule_endpoints() {
        let s = CosineSchedule::new(0.1, 100);
        assert!((s.lr_at(0) - 0.1).abs() < 1e-7);
        assert!(s.lr_at(100) < 1e-7);
        assert!((s.lr_at(50) - 0.05).abs() < 1e-3);
    }
}
