//! Graph-free inference: frozen models compiled from trained modules.
//!
//! Every inference-shaped forward in the stack — teacher logits in the
//! trainer, accuracy/agreement metrics, confidence profiles, CNCL anchor
//! generation, transfer-eval feature extraction — used to run through the
//! full autograd graph (`Var::constant` plus per-op node allocation) even
//! though no gradient was ever requested. This module compiles a trained
//! [`Module`](crate::module::Module) into a flat program of [`FrozenOp`]s
//! over plain [`Tensor`]s: no `Arc`/`RwLock` node per op, no tape, just the
//! SIMD `vecmath`/GEMM kernels the autograd forwards already bottom out in.
//!
//! Two freeze modes, selected by [`FreezeMode`] (default read from the
//! `CAE_FUSE` environment variable):
//!
//! * [`FreezeMode::Exact`] replays the evaluation-mode autograd forward
//!   kernel for kernel — the same conv → four-pass BN-eval → activation
//!   sequence, in the same per-channel loop order, on the same dispatched
//!   kernels — so outputs are **bit-identical** to
//!   `Module::forward(.., &mut ForwardCtx::eval())`. `tier1.sh` gates this
//!   with a byte-diff of a whole experiment report.
//! * [`FreezeMode::Fused`] (the default) folds each conv's following
//!   batch-norm into adjusted weights/bias, fuses ReLU/leaky-ReLU epilogues
//!   into the conv bias pass ([`cae_tensor::conv::conv2d_fused`]), and
//!   collapses standalone BN layers into a single fma scale-shift pass.
//!   Results agree with the exact path within the tolerance documented in
//!   `tests/frozen_parity.rs` (|a−b| ≤ 1e-4 + 1e-3·|b|): the only rounding
//!   differences are one fma per folded op and the algebraic rearrangement
//!   `γ·(x−μ)·σ⁻¹+β → x·s+t`.
//!
//! Call sites opt out of the frozen path entirely with `CAE_INFER=0`
//! (see [`infer_enabled`]), which routes eval forwards back through the
//! legacy autograd path — the reference the tier-1 byte-diff compares
//! against.
//!
//! Frozen models round-trip to disk through [`crate::serialize`]
//! (`frozen_to_json` / `frozen_classifier_from_json`): this is the seam a
//! future `cae-serve` loads from, with no training state attached.

use crate::layers::{BatchNorm2d, Conv2d, Linear};
use cae_tensor::conv::{self, Conv2dSpec, ConvEpilogue};
use cae_tensor::simd::vecmath;
use cae_tensor::{linalg, Tensor};

/// How [`freeze_with`](crate::module::Classifier::freeze_with) compiles a
/// module (carried by [`FreezeOptions`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FreezeMode {
    /// No folding: replay the eval-mode autograd kernels bit-for-bit.
    Exact,
    /// Fold conv+BN and fuse activation epilogues (default).
    #[default]
    Fused,
}

serde::impl_json_unit_enum!(FreezeMode { Exact, Fused });

/// Shared disable-token rule for boolean `CAE_*` variables: `0`, `off`,
/// `false` and `no`, case-insensitively, surrounding whitespace ignored
/// (the same convention as `CAE_CELL_PARALLEL` and `CAE_SIMD`).
fn env_disabled(var: &str) -> bool {
    match std::env::var(var) {
        Ok(v) => matches!(
            v.trim().to_ascii_lowercase().as_str(),
            "0" | "off" | "false" | "no"
        ),
        Err(_) => false,
    }
}

impl FreezeMode {
    /// Reads the mode from `CAE_FUSE`: `0`/`off`/`false`/`no` selects
    /// [`FreezeMode::Exact`], anything else (including unset) selects
    /// [`FreezeMode::Fused`]. Parsed once per process (the snapshot
    /// surfaced by `cae_core::config::Config`); tests exercising both modes
    /// pass them explicitly instead of mutating the environment.
    pub fn from_env() -> Self {
        static MODE: std::sync::OnceLock<FreezeMode> = std::sync::OnceLock::new();
        *MODE.get_or_init(|| {
            if env_disabled("CAE_FUSE") {
                FreezeMode::Exact
            } else {
                FreezeMode::Fused
            }
        })
    }
}

/// Whether eval-mode call sites should route through frozen models at all.
///
/// `CAE_INFER=0`/`off`/`false`/`no` restores the legacy `Var`-based eval
/// forwards; anything else (including unset) enables the frozen path.
/// Parsed once per process.
pub fn infer_enabled() -> bool {
    static ENABLED: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ENABLED.get_or_init(|| !env_disabled("CAE_INFER"))
}

/// How to compile a module into a frozen program: the [`FreezeMode`] plus
/// optional int8 weight quantization. Replaces the old positional
/// `freeze(mode)` so new knobs land without another positional parameter.
///
/// ```
/// use cae_nn::infer::{FreezeMode, FreezeOptions};
/// let exact = FreezeOptions::exact();
/// let int8 = FreezeOptions::fused().int8();
/// assert_eq!(exact.mode, FreezeMode::Exact);
/// assert!(int8.quantize.is_some());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FreezeOptions {
    /// Folding mode (default [`FreezeMode::Fused`]).
    pub mode: FreezeMode,
    /// Optional weight quantization applied after compilation.
    pub quantize: Option<QuantSpec>,
}

impl FreezeOptions {
    /// Fused compilation, no quantization (the default).
    pub fn fused() -> Self {
        FreezeOptions::default()
    }

    /// Exact (bit-identical) compilation, no quantization.
    pub fn exact() -> Self {
        FreezeOptions::with_mode(FreezeMode::Exact)
    }

    /// Options for an explicit mode, no quantization.
    pub fn with_mode(mode: FreezeMode) -> Self {
        FreezeOptions { mode, quantize: None }
    }

    /// Mode from `CAE_FUSE` (see [`FreezeMode::from_env`]), no quantization.
    pub fn from_env() -> Self {
        FreezeOptions::with_mode(FreezeMode::from_env())
    }

    /// Adds int8 per-output-channel symmetric weight quantization.
    pub fn int8(mut self) -> Self {
        self.quantize = Some(QuantSpec::int8());
        self
    }

    /// Applies the post-compilation steps (quantization) to a freshly
    /// compiled classifier. Model `freeze_with` implementations funnel
    /// their result through this.
    pub fn finish_classifier(&self, mut frozen: FrozenClassifier) -> FrozenClassifier {
        if let Some(spec) = &self.quantize {
            frozen.quantize(spec);
        }
        frozen
    }

    /// Applies the post-compilation steps to a freshly compiled generator.
    pub fn finish_generator(&self, mut frozen: FrozenGenerator) -> FrozenGenerator {
        if let Some(spec) = &self.quantize {
            frozen.quantize(spec);
        }
        frozen
    }
}

// ---------------------------------------------------------------------------
// int8 weight quantization.

/// Weight-quantization scheme: int8, symmetric, one scale per output
/// channel (`scale_o = max|W[o]| / 127`, values clamped to `[-127, 127]`).
///
/// Quantization happens at freeze time and is immediately *dequantized*
/// back into the op's f32 weight — every stored f32 is exactly
/// `scale · q` for an integer `q`, so the fused conv/GEMM path runs
/// unchanged and serialization can ship the i8 payload instead of the f32
/// weights ("dequant-on-load").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantSpec {
    /// Floor applied to each channel scale so all-zero channels keep a
    /// finite scale (and dequantize to exact zeros).
    pub min_scale: f32,
}

impl QuantSpec {
    /// The int8 per-output-channel symmetric scheme.
    pub fn int8() -> Self {
        QuantSpec {
            min_scale: f32::MIN_POSITIVE,
        }
    }
}

impl Default for QuantSpec {
    fn default() -> Self {
        QuantSpec::int8()
    }
}

/// Which axis of the stored tensor the per-channel scales run along.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuantLayout {
    /// One scale per leading-dimension slice (conv weights `[O, C, k, k]`:
    /// each output channel is one contiguous block).
    Row,
    /// One scale per trailing-dimension column (linear weights
    /// `[in, out]`: each output unit is one strided column).
    Col,
}

serde::impl_json_unit_enum!(QuantLayout { Row, Col });

/// An int8-quantized weight tensor: shape, per-channel scales, and the
/// quantized values. Dequantizes through the SIMD slice kernels
/// ([`vecmath::vec_dequant_i8`] / [`vecmath::vec_dequant_i8_cols`]), which
/// are bit-identical across backends — so `dequantize()` reproduces the
/// in-memory frozen weights exactly, on any host.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantTensor {
    shape: Vec<usize>,
    scales: Vec<f32>,
    layout: QuantLayout,
    data: Vec<i8>,
}

serde::impl_json_struct!(QuantTensor {
    shape,
    scales,
    layout,
    data,
});

impl QuantTensor {
    /// Quantizes with one scale per leading-dimension slice (the conv
    /// weight layout: output channel `o` owns `w[o·per .. (o+1)·per]`).
    pub fn quantize_rows(w: &Tensor, spec: &QuantSpec) -> QuantTensor {
        let dims = w.shape().dims();
        let rows = dims.first().copied().unwrap_or(1).max(1);
        let per = w.numel() / rows;
        let wd = w.data();
        let mut scales = Vec::with_capacity(rows);
        let mut data = Vec::with_capacity(w.numel());
        for r in 0..rows {
            let block = &wd[r * per..(r + 1) * per];
            let scale = row_scale(block.iter().copied(), spec);
            scales.push(scale);
            data.extend(block.iter().map(|&v| quantize_value(v, scale)));
        }
        QuantTensor {
            shape: dims.to_vec(),
            scales,
            layout: QuantLayout::Row,
            data,
        }
    }

    /// Quantizes a 2-d `[in, out]` tensor with one scale per column (the
    /// linear weight layout: output unit `o` owns column `o`).
    pub fn quantize_cols(w: &Tensor, spec: &QuantSpec) -> QuantTensor {
        let dims = w.shape().dims();
        assert_eq!(dims.len(), 2, "per-column quantization expects 2-d, got {dims:?}");
        let (rows, cols) = (dims[0], dims[1]);
        let wd = w.data();
        let scales: Vec<f32> = (0..cols)
            .map(|c| row_scale((0..rows).map(|r| wd[r * cols + c]), spec))
            .collect();
        let data: Vec<i8> = wd
            .iter()
            .enumerate()
            .map(|(i, &v)| quantize_value(v, scales[i % cols]))
            .collect();
        QuantTensor {
            shape: dims.to_vec(),
            scales,
            layout: QuantLayout::Col,
            data,
        }
    }

    /// Reconstructs the f32 tensor via the dispatched dequant kernels.
    pub fn dequantize(&self) -> Tensor {
        let mut out = Tensor::zeros(&self.shape);
        let od = out.data_mut();
        match self.layout {
            QuantLayout::Row => {
                let per = self.data.len() / self.scales.len().max(1);
                for (r, &scale) in self.scales.iter().enumerate() {
                    let span = r * per..(r + 1) * per;
                    vecmath::vec_dequant_i8(&self.data[span.clone()], scale, &mut od[span]);
                }
            }
            QuantLayout::Col => {
                let cols = self.scales.len();
                for (src, dst) in self.data.chunks(cols).zip(od.chunks_mut(cols)) {
                    vecmath::vec_dequant_i8_cols(src, &self.scales, dst);
                }
            }
        }
        out
    }

    /// Per-channel scales.
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// Shape of the dequantized tensor.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Quantized payload.
    pub fn data(&self) -> &[i8] {
        &self.data
    }
}

fn row_scale(values: impl Iterator<Item = f32>, spec: &QuantSpec) -> f32 {
    let max_abs = values.fold(0.0f32, |m, v| m.max(v.abs()));
    (max_abs / 127.0).max(spec.min_scale)
}

fn quantize_value(v: f32, scale: f32) -> i8 {
    (v / scale).round().clamp(-127.0, 127.0) as i8
}

/// Quantizes every Conv/Linear weight in a program in place, recursing
/// into residual blocks. Weights are replaced by their dequantized form so
/// execution stays pure f32.
fn quantize_ops(ops: &mut [FrozenOp], spec: &QuantSpec) {
    for op in ops {
        quantize_op(op, spec);
    }
}

fn quantize_op(op: &mut FrozenOp, spec: &QuantSpec) {
    match op {
        FrozenOp::Conv { weight, qweight, .. } => {
            let q = QuantTensor::quantize_rows(weight, spec);
            *weight = q.dequantize();
            *qweight = Some(Box::new(q));
        }
        FrozenOp::Linear { weight, qweight, .. } => {
            let q = QuantTensor::quantize_cols(weight, spec);
            *weight = q.dequantize();
            *qweight = Some(Box::new(q));
        }
        FrozenOp::Block { pre, main, skip, .. } => {
            quantize_ops(pre, spec);
            quantize_ops(main, spec);
            if let Some(skip) = skip {
                quantize_ops(skip, spec);
            }
        }
        _ => {}
    }
}

/// Activation attached to a frozen op (or standing alone as
/// [`FrozenOp::Act`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Activation {
    /// Identity.
    None,
    /// `max(x, 0)`.
    Relu,
    /// `x > 0 ? x : slope·x`.
    LeakyRelu(f32),
    /// Hyperbolic tangent (never fused into a conv epilogue).
    Tanh,
}

/// One instruction of a frozen model's flat program.
///
/// Parameters are snapshotted [`Tensor`]s; executing an op performs zero
/// autograd allocation. Residual topologies are expressed by the nested
/// [`FrozenOp::Block`], which covers both post-activation (ResNet) and
/// pre-activation (WideResNet) residual forms.
#[derive(Debug, Clone, PartialEq)]
pub enum FrozenOp {
    /// im2col GEMM convolution with optional bias and fused epilogue.
    Conv {
        /// `[O, C, k, k]` weights (BN-folded in fused mode; when
        /// `qweight` is present, exactly its dequantized form).
        weight: Tensor,
        /// Per-output-channel bias.
        bias: Option<Tensor>,
        /// Kernel/stride/padding.
        spec: Conv2dSpec,
        /// Epilogue fused into the bias pass (always `None` in exact mode).
        act: Activation,
        /// int8 payload when the op was frozen with quantization;
        /// serialization ships this instead of the f32 weights.
        qweight: Option<Box<QuantTensor>>,
    },
    /// Exact-mode BN eval: four sequential per-channel passes replaying
    /// `add_channels(−μ) → mul_channels(σ⁻¹) → mul_channels(γ) →
    /// add_channels(β)` on the same kernels in the same order.
    BnEval {
        /// `−running_mean`, computed via `Tensor::scale(-1.0)` exactly as
        /// the autograd path's `rm.neg()`.
        neg_mean: Tensor,
        /// `1 / sqrt(running_var + eps)`, the autograd path's expression.
        inv_std: Tensor,
        /// Learned scale.
        gamma: Tensor,
        /// Learned shift.
        beta: Tensor,
    },
    /// Fused standalone BN eval: one per-channel fma pass
    /// `x·scale + shift` with an optional fused activation.
    ScaleShift {
        /// `γ / sqrt(running_var + eps)` per channel.
        scale: Tensor,
        /// `β − running_mean · scale` per channel.
        shift: Tensor,
        /// Activation fused into the same pass.
        act: Activation,
    },
    /// Standalone out-of-place activation (the exact-mode form, and tanh).
    Act(Activation),
    /// Max pooling; skipped when the input extent is smaller than the
    /// window (replicating VGG's dimension-guarded pooling).
    MaxPool {
        /// Window size.
        kernel: usize,
        /// Stride.
        stride: usize,
    },
    /// Nearest-neighbour upsampling by an integer factor.
    Upsample {
        /// Scale factor.
        factor: usize,
    },
    /// Mean over each feature map: `[N, C, H, W] → [N, C]`.
    GlobalAvgPool,
    /// Row-major dense layer `y = x·W + b`.
    Linear {
        /// `[in, out]` weights (when `qweight` is present, exactly its
        /// dequantized form).
        weight: Tensor,
        /// `[out]` bias.
        bias: Tensor,
        /// int8 payload when the op was frozen with quantization.
        qweight: Option<Box<QuantTensor>>,
    },
    /// Reinterpret `[N, ch·h·w]` as `[N, ch, h, w]`.
    Reshape {
        /// Channels.
        ch: usize,
        /// Height.
        h: usize,
        /// Width.
        w: usize,
    },
    /// Residual block: `out = post(main(p) + skip(p))` where
    /// `p = pre(x)` and a missing `skip` takes the *original* input `x`
    /// (pre-activation identity shortcuts bypass `pre`).
    Block {
        /// Pre-activation prefix shared by both branches (empty for
        /// post-activation blocks).
        pre: Vec<FrozenOp>,
        /// Main branch.
        main: Vec<FrozenOp>,
        /// Projection shortcut; `None` means identity on the original
        /// input.
        skip: Option<Vec<FrozenOp>>,
        /// Activation applied after the residual add.
        post: Activation,
    },
}

// ---------------------------------------------------------------------------
// Execution.

/// Runs a program on a borrowed input, avoiding the defensive copy when the
/// first op only reads its input.
fn run(ops: &[FrozenOp], x: &Tensor) -> Tensor {
    match ops.split_first() {
        None => x.clone(),
        Some((first, rest)) => run_owned(rest, apply_ref(first, x)),
    }
}

fn run_owned(ops: &[FrozenOp], mut x: Tensor) -> Tensor {
    for op in ops {
        x = apply_owned(op, x);
    }
    x
}

/// Applies one op to a borrowed input. In-place ops (`BnEval`,
/// `ScaleShift`) clone first; everything else reads through the reference.
fn apply_ref(op: &FrozenOp, x: &Tensor) -> Tensor {
    match op {
        FrozenOp::BnEval { .. } | FrozenOp::ScaleShift { .. } | FrozenOp::Block { .. } => {
            apply_owned(op, x.clone())
        }
        FrozenOp::Conv {
            weight,
            bias,
            spec,
            act,
            ..
        } => apply_conv(x, weight, bias.as_ref(), *spec, *act),
        FrozenOp::Act(act) => activation(x, *act),
        FrozenOp::MaxPool { kernel, stride } => apply_max_pool(x, *kernel, *stride),
        FrozenOp::Upsample { factor } => conv::upsample_nearest2d(x, *factor),
        FrozenOp::GlobalAvgPool => global_avg_pool(x),
        FrozenOp::Linear { weight, bias, .. } => apply_linear(x, weight, bias),
        FrozenOp::Reshape { ch, h, w } => apply_reshape(x, *ch, *h, *w),
    }
}

fn apply_owned(op: &FrozenOp, x: Tensor) -> Tensor {
    match op {
        FrozenOp::BnEval {
            neg_mean,
            inv_std,
            gamma,
            beta,
        } => {
            // Four sequential whole-tensor passes, matching the autograd
            // eval path's `add_channels`/`mul_channels` chain op for op
            // (same kernels, same per-(n,c) loop order → bit-identical).
            let mut x = x;
            channel_pass(&mut x, neg_mean, vecmath::vec_add_scalar_inplace);
            channel_pass(&mut x, inv_std, vecmath::vec_scale_inplace);
            channel_pass(&mut x, gamma, vecmath::vec_scale_inplace);
            channel_pass(&mut x, beta, vecmath::vec_add_scalar_inplace);
            x
        }
        FrozenOp::ScaleShift { scale, shift, act } => {
            let mut x = x;
            let (n, c, h, w) = x.shape().nchw();
            let hw = h * w;
            let (sd, td) = (scale.data(), shift.data());
            let xd = x.data_mut();
            for ni in 0..n {
                for ci in 0..c {
                    let off = (ni * c + ci) * hw;
                    let row = &mut xd[off..off + hw];
                    match *act {
                        Activation::None | Activation::Tanh => {
                            vecmath::vec_scale_shift_inplace(row, sd[ci], td[ci]);
                        }
                        Activation::Relu => {
                            vecmath::vec_scale_shift_relu_inplace(row, sd[ci], td[ci]);
                        }
                        Activation::LeakyRelu(slope) => {
                            vecmath::vec_scale_shift_leaky_relu_inplace(row, sd[ci], td[ci], slope);
                        }
                    }
                }
            }
            if *act == Activation::Tanh {
                activation(&x, Activation::Tanh)
            } else {
                x
            }
        }
        FrozenOp::Block {
            pre,
            main,
            skip,
            post,
        } => {
            let mut out = match skip {
                Some(sops) => {
                    let p = run_owned(pre, x);
                    let identity = run(sops, &p);
                    let mut out = run(main, &p);
                    vecmath::vec_add_inplace(out.data_mut(), identity.data());
                    out
                }
                None => {
                    // Identity shortcut takes the original input, before
                    // any pre-activation prefix.
                    let mut out = if pre.is_empty() {
                        run(main, &x)
                    } else {
                        run_owned(main, run(pre, &x))
                    };
                    vecmath::vec_add_inplace(out.data_mut(), x.data());
                    out
                }
            };
            if *post != Activation::None {
                out = activation(&out, *post);
            }
            out
        }
        _ => apply_ref(op, &x),
    }
}

/// One per-channel pass over `[N, C, H, W]` with a scalar-per-channel
/// kernel — the loop shape of the autograd `add_channels`/`mul_channels`
/// forwards.
fn channel_pass(x: &mut Tensor, per_channel: &Tensor, kernel: fn(&mut [f32], f32)) {
    let (n, c, h, w) = x.shape().nchw();
    let hw = h * w;
    let s = per_channel.data();
    let xd = x.data_mut();
    for ni in 0..n {
        for (ci, &sv) in s.iter().enumerate().take(c) {
            let off = (ni * c + ci) * hw;
            kernel(&mut xd[off..off + hw], sv);
        }
    }
}

fn apply_conv(
    x: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    spec: Conv2dSpec,
    act: Activation,
) -> Tensor {
    match act {
        Activation::None => conv::conv2d(x, weight, bias, spec),
        Activation::Relu => conv::conv2d_fused(x, weight, bias, spec, ConvEpilogue::Relu),
        Activation::LeakyRelu(slope) => {
            conv::conv2d_fused(x, weight, bias, spec, ConvEpilogue::LeakyRelu(slope))
        }
        Activation::Tanh => {
            let y = conv::conv2d(x, weight, bias, spec);
            activation(&y, Activation::Tanh)
        }
    }
}

/// Out-of-place activation on the same dispatched kernels as the autograd
/// forwards (`vec_relu` / `vec_leaky_relu` / `vec_tanh`).
fn activation(x: &Tensor, act: Activation) -> Tensor {
    let mut out = Tensor::zeros(x.shape().dims());
    match act {
        Activation::None => return x.clone(),
        Activation::Relu => vecmath::vec_relu(x.data(), out.data_mut()),
        Activation::LeakyRelu(slope) => vecmath::vec_leaky_relu(x.data(), slope, out.data_mut()),
        Activation::Tanh => vecmath::vec_tanh(x.data(), out.data_mut()),
    }
    out
}

fn apply_max_pool(x: &Tensor, kernel: usize, stride: usize) -> Tensor {
    // VGG guards pooling on the current spatial extent; replicate so frozen
    // models accept the same input sizes as the trainable forward.
    let (_, _, h, _) = x.shape().nchw();
    if h < kernel {
        return x.clone();
    }
    conv::max_pool2d(x, kernel, stride).0
}

/// Scalar per-map mean, matching the autograd `global_avg_pool` forward
/// exactly (plain `iter().sum()`, not the SIMD reduction).
fn global_avg_pool(x: &Tensor) -> Tensor {
    let (n, c, h, w) = x.shape().nchw();
    let hw = h * w;
    let inv = 1.0 / hw as f32;
    let mut out = Tensor::zeros(&[n, c]);
    let (xd, od) = (x.data(), out.data_mut());
    for nc in 0..n * c {
        od[nc] = xd[nc * hw..(nc + 1) * hw].iter().sum::<f32>() * inv;
    }
    out
}

/// GEMM plus the autograd `add_rows` scalar bias loop.
fn apply_linear(x: &Tensor, weight: &Tensor, bias: &Tensor) -> Tensor {
    let mut out = linalg::matmul(x, weight);
    let d = bias.numel();
    let n = out.numel() / d;
    let (od, bd) = (out.data_mut(), bias.data());
    for i in 0..n {
        for (v, &b) in od[i * d..(i + 1) * d].iter_mut().zip(bd) {
            *v += b;
        }
    }
    out
}

fn apply_reshape(x: &Tensor, ch: usize, h: usize, w: usize) -> Tensor {
    let n = x.numel() / (ch * h * w);
    x.reshape(&[n, ch, h, w])
        .expect("frozen reshape: element count mismatch")
}

// ---------------------------------------------------------------------------
// Freeze builders (used by the model `freeze` implementations).

/// Freezes a conv followed by a batch-norm (plus optional activation).
///
/// Exact mode emits the literal `conv → BN-eval → act` sequence; fused mode
/// folds the BN into the conv — `s = γ/√(σ²+ε)`, `W′[o] = W[o]·s_o`,
/// `b′_o = β_o + (b_o − μ_o)·s_o` — and fuses the activation into the conv
/// epilogue.
pub(crate) fn conv_bn_ops(
    conv: &Conv2d,
    bn: &BatchNorm2d,
    act: Activation,
    mode: FreezeMode,
) -> Vec<FrozenOp> {
    let (weight, bias, spec) = conv.freeze_parts();
    let (gamma, beta, rm, rv, eps) = bn.freeze_parts();
    match mode {
        FreezeMode::Exact => {
            let mut ops = vec![
                FrozenOp::Conv {
                    weight,
                    bias,
                    spec,
                    act: Activation::None,
                    qweight: None,
                },
                bn_eval_op(&gamma, &beta, &rm, &rv, eps),
            ];
            push_act(&mut ops, act);
            ops
        }
        FreezeMode::Fused => {
            let o = gamma.numel();
            let per = weight.numel() / o;
            let mut w = weight.clone();
            let mut b = Tensor::zeros(&[o]);
            {
                let (wd, bd) = (w.data_mut(), b.data_mut());
                for oi in 0..o {
                    let s = gamma.data()[oi] / (rv.data()[oi] + eps).sqrt();
                    vecmath::vec_scale_inplace(&mut wd[oi * per..(oi + 1) * per], s);
                    let b0 = bias.as_ref().map_or(0.0, |b| b.data()[oi]);
                    bd[oi] = beta.data()[oi] + (b0 - rm.data()[oi]) * s;
                }
            }
            let mut ops = vec![FrozenOp::Conv {
                weight: w,
                bias: Some(b),
                spec,
                act: fusable(act),
                qweight: None,
            }];
            if act == Activation::Tanh {
                ops.push(FrozenOp::Act(Activation::Tanh));
            }
            ops
        }
    }
}

/// Freezes a conv with no following batch-norm.
pub(crate) fn conv_ops(conv: &Conv2d, act: Activation, mode: FreezeMode) -> Vec<FrozenOp> {
    let (weight, bias, spec) = conv.freeze_parts();
    match mode {
        FreezeMode::Exact => {
            let mut ops = vec![FrozenOp::Conv {
                weight,
                bias,
                spec,
                act: Activation::None,
                qweight: None,
            }];
            push_act(&mut ops, act);
            ops
        }
        FreezeMode::Fused => {
            let mut ops = vec![FrozenOp::Conv {
                weight,
                bias,
                spec,
                act: fusable(act),
                qweight: None,
            }];
            if act == Activation::Tanh {
                ops.push(FrozenOp::Act(Activation::Tanh));
            }
            ops
        }
    }
}

/// Freezes a standalone batch-norm (plus optional activation).
pub(crate) fn bn_ops(bn: &BatchNorm2d, act: Activation, mode: FreezeMode) -> Vec<FrozenOp> {
    let (gamma, beta, rm, rv, eps) = bn.freeze_parts();
    match mode {
        FreezeMode::Exact => {
            let mut ops = vec![bn_eval_op(&gamma, &beta, &rm, &rv, eps)];
            push_act(&mut ops, act);
            ops
        }
        FreezeMode::Fused => {
            let c = gamma.numel();
            let mut scale = Tensor::zeros(&[c]);
            let mut shift = Tensor::zeros(&[c]);
            for ci in 0..c {
                let s = gamma.data()[ci] / (rv.data()[ci] + eps).sqrt();
                scale.data_mut()[ci] = s;
                shift.data_mut()[ci] = beta.data()[ci] - rm.data()[ci] * s;
            }
            vec![FrozenOp::ScaleShift { scale, shift, act }]
        }
    }
}

/// Freezes a dense head.
pub(crate) fn linear_op(linear: &Linear) -> FrozenOp {
    let (weight, bias) = linear.freeze_parts();
    FrozenOp::Linear { weight, bias, qweight: None }
}

fn bn_eval_op(gamma: &Tensor, beta: &Tensor, rm: &Tensor, rv: &Tensor, eps: f32) -> FrozenOp {
    FrozenOp::BnEval {
        neg_mean: rm.scale(-1.0),
        inv_std: rv.map(|v| 1.0 / (v + eps).sqrt()),
        gamma: gamma.clone(),
        beta: beta.clone(),
    }
}

fn push_act(ops: &mut Vec<FrozenOp>, act: Activation) {
    if act != Activation::None {
        ops.push(FrozenOp::Act(act));
    }
}

fn fusable(act: Activation) -> Activation {
    match act {
        Activation::Tanh => Activation::None,
        other => other,
    }
}

// ---------------------------------------------------------------------------
// Frozen models.

/// A classifier compiled into a flat inference program: spatial trunk,
/// global average pool, dense head. Forward is `&Tensor → Tensor` with zero
/// autograd allocation.
#[derive(Debug, Clone, PartialEq)]
pub struct FrozenClassifier {
    spatial: Vec<FrozenOp>,
    head: FrozenOp,
    embed_dim: usize,
    num_classes: usize,
}

serde::impl_json_struct!(FrozenClassifier {
    spatial,
    head,
    embed_dim,
    num_classes,
});

impl FrozenClassifier {
    /// Assembles a frozen classifier from a compiled spatial trunk and the
    /// snapshotted head weights (`[embed_dim, num_classes]`).
    pub fn new(spatial: Vec<FrozenOp>, head_weight: Tensor, head_bias: Tensor) -> Self {
        let d = head_weight.shape().dims().to_vec();
        assert_eq!(d.len(), 2, "head weight must be 2-d, got {d:?}");
        FrozenClassifier {
            spatial,
            head: FrozenOp::Linear {
                weight: head_weight,
                bias: head_bias,
                qweight: None,
            },
            embed_dim: d[0],
            num_classes: d[1],
        }
    }

    /// Class-logit forward: `[N, C, H, W] → [N, num_classes]`.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        self.forward_embedding(x).1
    }

    /// Returns `(embedding, logits)` like
    /// [`Classifier::forward_embedding`](crate::module::Classifier::forward_embedding).
    pub fn forward_embedding(&self, x: &Tensor) -> (Tensor, Tensor) {
        let _stat = cae_trace::span_stat("infer.forward");
        cae_trace::counter("infer.calls", 1);
        let feat = run(&self.spatial, x);
        let emb = global_avg_pool(&feat);
        let logits = apply_ref(&self.head, &emb);
        (emb, logits)
    }

    /// Last spatial feature map before pooling.
    pub fn forward_spatial(&self, x: &Tensor) -> Tensor {
        let _stat = cae_trace::span_stat("infer.forward");
        cae_trace::counter("infer.calls", 1);
        run(&self.spatial, x)
    }

    /// Output class count.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Embedding width fed to the head.
    pub fn embed_dim(&self) -> usize {
        self.embed_dim
    }

    /// The compiled spatial program (inspection/diagnostics).
    pub fn spatial_ops(&self) -> &[FrozenOp] {
        &self.spatial
    }

    /// Quantizes every Conv/Linear weight in place (trunk and head); see
    /// [`QuantSpec`] for the scheme. Usually reached through
    /// [`FreezeOptions::int8`] rather than called directly.
    pub fn quantize(&mut self, spec: &QuantSpec) {
        quantize_ops(&mut self.spatial, spec);
        quantize_op(&mut self.head, spec);
    }

    /// Whether any op carries an int8 payload.
    pub fn quantized(&self) -> bool {
        fn any_quantized(ops: &[FrozenOp]) -> bool {
            ops.iter().any(op_quantized)
        }
        fn op_quantized(op: &FrozenOp) -> bool {
            match op {
                FrozenOp::Conv { qweight, .. } | FrozenOp::Linear { qweight, .. } => {
                    qweight.is_some()
                }
                FrozenOp::Block { pre, main, skip, .. } => {
                    any_quantized(pre)
                        || any_quantized(main)
                        || skip.as_deref().is_some_and(any_quantized)
                }
                _ => false,
            }
        }
        any_quantized(&self.spatial) || op_quantized(&self.head)
    }
}

/// A generator compiled into a flat inference program: `z[N, latent] →
/// images`, used for anchor generation and convergence probes where the
/// generator itself is not being trained.
#[derive(Debug, Clone, PartialEq)]
pub struct FrozenGenerator {
    ops: Vec<FrozenOp>,
    latent_dim: usize,
}

serde::impl_json_struct!(FrozenGenerator { ops, latent_dim });

impl FrozenGenerator {
    /// Assembles a frozen generator from a compiled program.
    pub fn new(ops: Vec<FrozenOp>, latent_dim: usize) -> Self {
        FrozenGenerator { ops, latent_dim }
    }

    /// Maps latent codes to images.
    pub fn generate(&self, z: &Tensor) -> Tensor {
        let _stat = cae_trace::span_stat("infer.forward");
        cae_trace::counter("infer.calls", 1);
        run(&self.ops, z)
    }

    /// Latent dimensionality expected by [`FrozenGenerator::generate`].
    pub fn latent_dim(&self) -> usize {
        self.latent_dim
    }

    /// Quantizes every Conv/Linear weight in place; see [`QuantSpec`].
    pub fn quantize(&mut self, spec: &QuantSpec) {
        quantize_ops(&mut self.ops, spec);
    }
}

// ---------------------------------------------------------------------------
// Serde: hand-written externally-tagged representation for the payload
// enums (the vendored serde has no derive; see `cae-core`'s `method.rs` for
// the precedent).

fn tagged(tag: &str, fields: Vec<(String, serde::Value)>) -> serde::Value {
    serde::Value::Object(vec![(tag.to_owned(), serde::Value::Object(fields))])
}

fn kv<T: serde::Serialize>(key: &str, v: &T) -> (String, serde::Value) {
    (key.to_owned(), v.to_value())
}

/// Looks up an optional field: absent keys read as `None` (so pre-int8
/// frozen JSON stays loadable).
fn opt_field<T: serde::Deserialize>(
    v: &serde::Value,
    name: &str,
) -> Result<Option<T>, serde::DeError> {
    match v.get(name) {
        Some(serde::Value::Null) | None => Ok(None),
        Some(inner) => T::from_value(inner).map(Some),
    }
}

/// Serializes a weight: the compact i8 payload when quantized (the f32
/// form is reconstructed bit-exactly on load), the f32 tensor otherwise.
fn weight_kv(weight: &Tensor, qweight: &Option<Box<QuantTensor>>) -> (String, serde::Value) {
    match qweight {
        Some(q) => kv("qweight", q.as_ref()),
        None => kv("weight", weight),
    }
}

/// Deserializes a weight written by [`weight_kv`]: dequantize-on-load when
/// the i8 payload is present.
fn weight_field(
    inner: &serde::Value,
) -> Result<(Tensor, Option<Box<QuantTensor>>), serde::DeError> {
    match opt_field::<QuantTensor>(inner, "qweight")? {
        Some(q) => Ok((q.dequantize(), Some(Box::new(q)))),
        None => Ok((serde::field(inner, "weight")?, None)),
    }
}

impl serde::Serialize for Activation {
    fn to_value(&self) -> serde::Value {
        match self {
            Activation::None => serde::Value::String("None".to_owned()),
            Activation::Relu => serde::Value::String("Relu".to_owned()),
            Activation::Tanh => serde::Value::String("Tanh".to_owned()),
            Activation::LeakyRelu(slope) => tagged("LeakyRelu", vec![kv("slope", slope)]),
        }
    }
}

impl serde::Deserialize for Activation {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        match v {
            serde::Value::String(s) if s == "None" => Ok(Activation::None),
            serde::Value::String(s) if s == "Relu" => Ok(Activation::Relu),
            serde::Value::String(s) if s == "Tanh" => Ok(Activation::Tanh),
            serde::Value::Object(fields) if fields.len() == 1 => {
                let (tag, inner) = &fields[0];
                match tag.as_str() {
                    "LeakyRelu" => Ok(Activation::LeakyRelu(serde::field(inner, "slope")?)),
                    other => Err(serde::DeError(format!("unknown Activation variant: {other}"))),
                }
            }
            other => Err(serde::DeError(format!(
                "expected Activation, found {other:?}"
            ))),
        }
    }
}

impl serde::Serialize for FrozenOp {
    fn to_value(&self) -> serde::Value {
        match self {
            FrozenOp::Conv {
                weight,
                bias,
                spec,
                act,
                qweight,
            } => tagged(
                "Conv",
                vec![
                    weight_kv(weight, qweight),
                    kv("bias", bias),
                    kv("spec", spec),
                    kv("act", act),
                ],
            ),
            FrozenOp::BnEval {
                neg_mean,
                inv_std,
                gamma,
                beta,
            } => tagged(
                "BnEval",
                vec![
                    kv("neg_mean", neg_mean),
                    kv("inv_std", inv_std),
                    kv("gamma", gamma),
                    kv("beta", beta),
                ],
            ),
            FrozenOp::ScaleShift { scale, shift, act } => tagged(
                "ScaleShift",
                vec![kv("scale", scale), kv("shift", shift), kv("act", act)],
            ),
            FrozenOp::Act(act) => tagged("Act", vec![kv("act", act)]),
            FrozenOp::MaxPool { kernel, stride } => {
                tagged("MaxPool", vec![kv("kernel", kernel), kv("stride", stride)])
            }
            FrozenOp::Upsample { factor } => tagged("Upsample", vec![kv("factor", factor)]),
            FrozenOp::GlobalAvgPool => serde::Value::String("GlobalAvgPool".to_owned()),
            FrozenOp::Linear {
                weight,
                bias,
                qweight,
            } => tagged(
                "Linear",
                vec![weight_kv(weight, qweight), kv("bias", bias)],
            ),
            FrozenOp::Reshape { ch, h, w } => {
                tagged("Reshape", vec![kv("ch", ch), kv("h", h), kv("w", w)])
            }
            FrozenOp::Block {
                pre,
                main,
                skip,
                post,
            } => tagged(
                "Block",
                vec![
                    kv("pre", pre),
                    kv("main", main),
                    kv("skip", skip),
                    kv("post", post),
                ],
            ),
        }
    }
}

impl serde::Deserialize for FrozenOp {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        match v {
            serde::Value::String(s) if s == "GlobalAvgPool" => Ok(FrozenOp::GlobalAvgPool),
            serde::Value::Object(fields) if fields.len() == 1 => {
                let (tag, inner) = &fields[0];
                match tag.as_str() {
                    "Conv" => {
                        let (weight, qweight) = weight_field(inner)?;
                        Ok(FrozenOp::Conv {
                            weight,
                            bias: serde::field(inner, "bias")?,
                            spec: serde::field(inner, "spec")?,
                            act: serde::field(inner, "act")?,
                            qweight,
                        })
                    }
                    "BnEval" => Ok(FrozenOp::BnEval {
                        neg_mean: serde::field(inner, "neg_mean")?,
                        inv_std: serde::field(inner, "inv_std")?,
                        gamma: serde::field(inner, "gamma")?,
                        beta: serde::field(inner, "beta")?,
                    }),
                    "ScaleShift" => Ok(FrozenOp::ScaleShift {
                        scale: serde::field(inner, "scale")?,
                        shift: serde::field(inner, "shift")?,
                        act: serde::field(inner, "act")?,
                    }),
                    "Act" => Ok(FrozenOp::Act(serde::field(inner, "act")?)),
                    "MaxPool" => Ok(FrozenOp::MaxPool {
                        kernel: serde::field(inner, "kernel")?,
                        stride: serde::field(inner, "stride")?,
                    }),
                    "Upsample" => Ok(FrozenOp::Upsample {
                        factor: serde::field(inner, "factor")?,
                    }),
                    "Linear" => {
                        let (weight, qweight) = weight_field(inner)?;
                        Ok(FrozenOp::Linear {
                            weight,
                            bias: serde::field(inner, "bias")?,
                            qweight,
                        })
                    }
                    "Reshape" => Ok(FrozenOp::Reshape {
                        ch: serde::field(inner, "ch")?,
                        h: serde::field(inner, "h")?,
                        w: serde::field(inner, "w")?,
                    }),
                    "Block" => Ok(FrozenOp::Block {
                        pre: serde::field(inner, "pre")?,
                        main: serde::field(inner, "main")?,
                        skip: serde::field(inner, "skip")?,
                        post: serde::field(inner, "post")?,
                    }),
                    other => Err(serde::DeError(format!("unknown FrozenOp variant: {other}"))),
                }
            }
            other => Err(serde::DeError(format!("expected FrozenOp, found {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Serialize;

    #[test]
    fn freeze_mode_env_parsing() {
        // Uses explicit matches rather than env mutation (tests run in
        // parallel threads sharing the process environment).
        assert_eq!(FreezeMode::Fused, FreezeMode::from_env());
        assert!(infer_enabled());
    }

    #[test]
    fn activation_serde_roundtrip() {
        for act in [
            Activation::None,
            Activation::Relu,
            Activation::Tanh,
            Activation::LeakyRelu(0.2),
        ] {
            let back = <Activation as serde::Deserialize>::from_value(&act.to_value()).unwrap();
            assert_eq!(back, act);
        }
    }

    #[test]
    fn frozen_op_serde_roundtrip() {
        let ops = vec![
            FrozenOp::Conv {
                weight: Tensor::ones(&[2, 1, 3, 3]),
                bias: Some(Tensor::zeros(&[2])),
                spec: Conv2dSpec::new(3, 1, 1),
                act: Activation::Relu,
                qweight: None,
            },
            FrozenOp::BnEval {
                neg_mean: Tensor::zeros(&[2]),
                inv_std: Tensor::ones(&[2]),
                gamma: Tensor::ones(&[2]),
                beta: Tensor::zeros(&[2]),
            },
            FrozenOp::ScaleShift {
                scale: Tensor::ones(&[2]),
                shift: Tensor::zeros(&[2]),
                act: Activation::LeakyRelu(0.2),
            },
            FrozenOp::Act(Activation::Tanh),
            FrozenOp::MaxPool { kernel: 2, stride: 2 },
            FrozenOp::Upsample { factor: 2 },
            FrozenOp::GlobalAvgPool,
            FrozenOp::Reshape { ch: 2, h: 4, w: 4 },
            FrozenOp::Block {
                pre: vec![],
                main: vec![FrozenOp::Act(Activation::Relu)],
                skip: None,
                post: Activation::Relu,
            },
        ];
        let back = <Vec<FrozenOp> as serde::Deserialize>::from_value(&ops.to_value()).unwrap();
        assert_eq!(back, ops);
    }

    #[test]
    fn scale_shift_matches_bn_eval_within_tolerance() {
        let (gamma, beta) = (Tensor::full(&[3], 1.3), Tensor::full(&[3], -0.2));
        let rm = Tensor::from_vec(vec![0.1, -0.4, 0.7], &[3]).unwrap();
        let rv = Tensor::from_vec(vec![0.9, 1.4, 0.3], &[3]).unwrap();
        let eps = 1e-5;
        let exact = bn_eval_op(&gamma, &beta, &rm, &rv, eps);
        let fused = {
            let mut scale = Tensor::zeros(&[3]);
            let mut shift = Tensor::zeros(&[3]);
            for ci in 0..3 {
                let s = gamma.data()[ci] / (rv.data()[ci] + eps).sqrt();
                scale.data_mut()[ci] = s;
                shift.data_mut()[ci] = beta.data()[ci] - rm.data()[ci] * s;
            }
            FrozenOp::ScaleShift {
                scale,
                shift,
                act: Activation::None,
            }
        };
        let x = Tensor::from_vec(
            (0..2 * 3 * 4).map(|i| (i as f32 * 0.31).sin()).collect(),
            &[2, 3, 2, 2],
        )
        .unwrap();
        let a = apply_ref(&exact, &x);
        let b = apply_ref(&fused, &x);
        for (&ya, &yb) in a.data().iter().zip(b.data()) {
            assert!(
                (ya - yb).abs() <= 1e-5 + 1e-4 * yb.abs(),
                "bn fold mismatch: {ya} vs {yb}"
            );
        }
    }

    #[test]
    fn max_pool_skips_too_small_inputs() {
        let x = Tensor::ones(&[1, 2, 1, 1]);
        let y = apply_ref(&FrozenOp::MaxPool { kernel: 2, stride: 2 }, &x);
        assert_eq!(y.shape().dims(), &[1, 2, 1, 1]);
    }

    fn ramp(dims: &[usize], step: f32) -> Tensor {
        let n: usize = dims.iter().product();
        Tensor::from_vec((0..n).map(|i| ((i as f32) * step).sin()).collect(), dims).unwrap()
    }

    #[test]
    fn quantize_rows_dequantize_is_within_one_step() {
        let w = ramp(&[4, 2, 3, 3], 0.37);
        let q = QuantTensor::quantize_rows(&w, &QuantSpec::int8());
        assert_eq!(q.shape(), w.shape().dims());
        assert_eq!(q.scales().len(), 4);
        let back = q.dequantize();
        let block = w.data().len() / 4;
        for (i, (&orig, &deq)) in w.data().iter().zip(back.data()).enumerate() {
            let scale = q.scales()[i / block];
            assert!(
                (orig - deq).abs() <= 0.5 * scale + 1e-7,
                "row quant error beyond half a step at {i}: {orig} vs {deq}"
            );
        }
    }

    #[test]
    fn quantize_cols_uses_per_column_scales() {
        // Column 1 has 100x the magnitude of column 0; per-column scales
        // must keep column 0's error at its own (small) scale.
        let w = Tensor::from_vec(vec![0.01, 1.0, -0.02, -2.0, 0.015, 1.5], &[3, 2]).unwrap();
        let q = QuantTensor::quantize_cols(&w, &QuantSpec::int8());
        assert_eq!(q.scales().len(), 2);
        assert!(q.scales()[1] > 10.0 * q.scales()[0]);
        let back = q.dequantize();
        for (i, (&orig, &deq)) in w.data().iter().zip(back.data()).enumerate() {
            let scale = q.scales()[i % 2];
            assert!((orig - deq).abs() <= 0.5 * scale + 1e-7);
        }
    }

    #[test]
    fn quantized_serde_roundtrip_is_bit_exact_and_compact() {
        let mut op = FrozenOp::Conv {
            weight: ramp(&[3, 2, 3, 3], 0.23),
            bias: Some(ramp(&[3], 0.11)),
            spec: Conv2dSpec::new(3, 1, 1),
            act: Activation::Relu,
            qweight: None,
        };
        quantize_op(&mut op, &QuantSpec::int8());
        let json = serde_json::to_string(&op).unwrap();
        assert!(json.contains("\"qweight\""), "quantized op must ship i8 payload");
        assert!(!json.contains("\"weight\""), "quantized op must not ship f32 weights");
        let back: FrozenOp = serde_json::from_str(&json).unwrap();
        // Dequant-on-load must reproduce the in-memory f32 weights bit-for-bit.
        match (&op, &back) {
            (
                FrozenOp::Conv { weight: a, qweight: qa, .. },
                FrozenOp::Conv { weight: b, qweight: qb, .. },
            ) => {
                assert!(qa.is_some() && qb.is_some());
                for (&x, &y) in a.data().iter().zip(b.data()) {
                    assert_eq!(x.to_bits(), y.to_bits());
                }
            }
            _ => panic!("variant changed across roundtrip"),
        }
        assert_eq!(back, op);
    }

    #[test]
    fn linear_quantized_serde_roundtrip() {
        let mut op = FrozenOp::Linear {
            weight: ramp(&[5, 4], 0.19),
            bias: ramp(&[4], 0.07),
            qweight: None,
        };
        quantize_op(&mut op, &QuantSpec::int8());
        let back = <FrozenOp as serde::Deserialize>::from_value(&op.to_value()).unwrap();
        assert_eq!(back, op);
    }

    #[test]
    fn classifier_quantize_sets_flag_and_keeps_argmax_on_frozen_forward() {
        // A frozen net whose logits gaps are far wider than int8 rounding
        // error: quantization must not flip the argmax.
        let mut net = FrozenClassifier::new(
            vec![FrozenOp::Conv {
                weight: ramp(&[2, 1, 3, 3], 0.41),
                bias: Some(ramp(&[2], 0.3)),
                spec: Conv2dSpec::new(3, 1, 1),
                act: Activation::Relu,
                qweight: None,
            }],
            ramp(&[2, 3], 0.53),
            ramp(&[3], 0.29),
        );
        assert!(!net.quantized());
        let x = ramp(&[2, 1, 4, 4], 0.17);
        let before = net.forward(&x);
        net.quantize(&QuantSpec::int8());
        assert!(net.quantized());
        let after = net.forward(&x);
        assert_eq!(before.shape().dims(), after.shape().dims());
        assert_eq!(before.argmax_rows(), after.argmax_rows());
    }
}
