//! Core-crate integration tests: cross-module behaviour that unit tests
//! don't cover.

use cae_core::config::{DfkdConfig, ExperimentBudget};
use cae_core::method::MethodSpec;
use cae_core::metrics::confidence::confidence_profile;
use cae_core::report::Report;
use cae_core::teacher::{pretrained, train_supervised};
use cae_core::trainer::DfkdTrainer;
use cae_data::presets::ClassificationPreset;
use cae_data::world::VisionWorld;
use cae_data::SplitDataset;
use cae_nn::models::Arch;
use cae_tensor::rng::TensorRng;

#[test]
fn memory_capacity_is_respected_throughout_training() {
    let world = VisionWorld::new(3, 8, 31);
    let split = SplitDataset::sample(&world, 12, 4, 2);
    let mut rng = TensorRng::seed_from(0);
    let teacher = Arch::ResNet18.build(3, 4, &mut rng);
    train_supervised(teacher.as_ref(), &split.train, 20, 12, 0.1, &mut rng);
    let budget = ExperimentBudget::smoke();
    let config = DfkdConfig {
        batch_size: 8,
        memory_capacity: 24,
        ..Default::default()
    };
    let mut trainer = DfkdTrainer::new(
        teacher.as_ref(),
        Arch::Wrn16x1.build(3, 4, &mut rng),
        &["a", "b", "c"],
        8,
        &MethodSpec::cae_dfkd(3),
        config,
        &budget,
        1,
    );
    for _ in 0..6 {
        trainer.generator_step();
        assert!(trainer.memory().len() <= 24);
    }
    assert_eq!(trainer.memory().len(), 24);
}

#[test]
fn a_trained_teacher_is_confident_on_real_images_not_noise() {
    let world = VisionWorld::new(4, 8, 17);
    let split = SplitDataset::sample(&world, 30, 10, 5);
    let mut rng = TensorRng::seed_from(3);
    let teacher = Arch::ResNet34.build(4, 4, &mut rng);
    train_supervised(teacher.as_ref(), &split.train, 100, 16, 0.1, &mut rng);

    let indices: Vec<usize> = (0..32).collect();
    let (real, labels) = split.test.batch(&indices);
    let real_profile = confidence_profile(teacher.as_ref(), &real, &labels, 4, 0.5);
    let noise = rng.normal_tensor(&[32, 3, 8, 8], 0.0, 1.0);
    let noise_profile = confidence_profile(teacher.as_ref(), &noise, &labels, 4, 0.5);
    let mean = |v: &[f32]| v.iter().sum::<f32>() / v.len() as f32;
    assert!(
        mean(&real_profile.mean_max_prob) > mean(&noise_profile.mean_max_prob) - 0.05,
        "teacher should be at least as confident on in-distribution images"
    );
}

#[test]
fn method_specs_serialize_roundtrip() {
    for spec in [
        MethodSpec::vanilla(),
        MethodSpec::deepinv_like(),
        MethodSpec::cmi_like(),
        MethodSpec::nayer_like(),
        MethodSpec::cae_dfkd(5),
        MethodSpec::cend_only(2),
        MethodSpec::nayer_like().with_mixup(0.3),
    ] {
        let json = serde_json::to_string(&spec).expect("serialize");
        let back: MethodSpec = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, spec);
    }
}

#[test]
fn reports_persist_to_disk() {
    let mut report = Report::new("Table T/demo", "persistence", &["x"]);
    report.push_row("row", [1.0]);
    let dir = std::env::temp_dir().join("cae_report_test");
    let path = report.save_json(&dir).expect("save succeeds");
    let loaded = Report::from_json(&std::fs::read_to_string(&path).expect("read"))
        .expect("parse");
    assert_eq!(loaded, report);
    assert!(path.file_name().expect("name").to_string_lossy().contains("table_t_demo"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn teacher_cache_key_distinguishes_budgets_and_archs() {
    // `pretrained` returns private copies, so cache behaviour is observed
    // through the per-prefix training-run counter: distinct keys miss (and
    // train), repeated keys hit.
    let split = ClassificationPreset::C10Sim.generate(4);
    let smoke = ExperimentBudget::smoke();
    let other = ExperimentBudget {
        pretrain_steps: smoke.pretrain_steps + 1,
        ..smoke
    };
    let _a = pretrained("k-int", Arch::Wrn16x1, &split.train, &smoke, 16);
    let _b = pretrained("k-int", Arch::Wrn16x1, &split.train, &other, 16);
    let _c = pretrained("k-int", Arch::Wrn16x2, &split.train, &smoke, 16);
    assert_eq!(
        cae_core::teacher::pretrain_runs_for("k-int"),
        3,
        "budget and arch must both be part of the key"
    );
    let _again = pretrained("k-int", Arch::Wrn16x1, &split.train, &smoke, 16);
    assert_eq!(
        cae_core::teacher::pretrain_runs_for("k-int"),
        3,
        "an identical request must hit the cache"
    );
}
