//! Tabular experiment reports: rendered as text for the console and
//! serialized as JSON artifacts under `results/`.

use std::fmt;
use std::path::Path;

/// One row of a report: a label plus one value per column.
#[derive(Debug, Clone, PartialEq)]
pub struct ReportRow {
    /// Row label (method name, category, …).
    pub label: String,
    /// Values, one per report column; `None` renders as `-`.
    pub values: Vec<Option<f32>>,
}

serde::impl_json_struct!(ReportRow { label, values });

/// A table or figure reproduction: identifier, caption, columns and rows.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// Identifier matching the paper ("Table II", "Figure 2a", …).
    pub id: String,
    /// Short caption.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Data rows.
    pub rows: Vec<ReportRow>,
    /// Free-form notes (budget, substitutions, expected shape).
    pub notes: Vec<String>,
}

serde::impl_json_struct!(Report { id, title, columns, rows, notes });

impl Report {
    /// Creates an empty report.
    pub fn new(id: &str, title: &str, columns: &[&str]) -> Self {
        Report {
            id: id.to_owned(),
            title: title.to_owned(),
            columns: columns.iter().map(|&c| c.to_owned()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the value count differs from the column count.
    pub fn push_row(&mut self, label: &str, values: Vec<Option<f32>>) {
        assert_eq!(
            values.len(),
            self.columns.len(),
            "row has {} values for {} columns",
            values.len(),
            self.columns.len()
        );
        self.rows.push(ReportRow {
            label: label.to_owned(),
            values,
        });
    }

    /// Appends a fully populated row.
    pub fn push_full_row(&mut self, label: &str, values: &[f32]) {
        self.push_row(label, values.iter().map(|&v| Some(v)).collect());
    }

    /// Appends a note.
    pub fn note(&mut self, text: &str) {
        self.notes.push(text.to_owned());
    }

    /// Looks up a cell by row label and column header.
    pub fn cell(&self, label: &str, column: &str) -> Option<f32> {
        let col = self.columns.iter().position(|c| c == column)?;
        self.rows
            .iter()
            .find(|r| r.label == label)
            .and_then(|r| r.values.get(col).copied().flatten())
    }

    /// Serializes the report to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialization cannot fail")
    }

    /// Parses a report from its JSON artifact.
    ///
    /// # Errors
    /// Returns the underlying parse error for malformed input.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// Writes the JSON artifact to `dir/<id>.json` (spaces replaced).
    ///
    /// # Errors
    /// Returns any I/O error from creating the directory or writing.
    pub fn save_json(&self, dir: &Path) -> std::io::Result<std::path::PathBuf> {
        std::fs::create_dir_all(dir)?;
        let file = dir.join(format!("{}.json", self.id.replace([' ', '/'], "_").to_lowercase()));
        std::fs::write(&file, self.to_json())?;
        Ok(file)
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "=== {} — {} ===", self.id, self.title)?;
        let label_w = self
            .rows
            .iter()
            .map(|r| r.label.len())
            .chain(std::iter::once("method".len()))
            .max()
            .unwrap_or(8)
            + 2;
        let col_w = self
            .columns
            .iter()
            .map(|c| c.len().max(8) + 2)
            .collect::<Vec<_>>();
        write!(f, "{:label_w$}", "method")?;
        for (c, w) in self.columns.iter().zip(&col_w) {
            write!(f, "{c:>w$}", w = w)?;
        }
        writeln!(f)?;
        for row in &self.rows {
            write!(f, "{:label_w$}", row.label)?;
            for (v, w) in row.values.iter().zip(&col_w) {
                match v {
                    Some(v) => write!(f, "{v:>w$.3}", w = w)?,
                    None => write!(f, "{:>w$}", "-", w = w)?,
                }
            }
            writeln!(f)?;
        }
        for n in &self.notes {
            writeln!(f, "  note: {n}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_render_and_serialize() {
        let mut r = Report::new("Table T", "demo", &["acc", "miou"]);
        r.push_full_row("CAE-DFKD", &[0.9, 0.5]);
        r.push_row("Base", vec![Some(0.8), None]);
        r.note("fast budget");
        let text = r.to_string();
        assert!(text.contains("CAE-DFKD"));
        assert!(text.contains('-'));
        let json = r.to_json();
        let back: Report = serde_json::from_str(&json).expect("roundtrip");
        assert_eq!(back, r);
        assert_eq!(r.cell("CAE-DFKD", "miou"), Some(0.5));
        assert_eq!(r.cell("Base", "miou"), None);
    }

    #[test]
    #[should_panic(expected = "columns")]
    fn row_arity_is_checked() {
        let mut r = Report::new("T", "demo", &["a", "b"]);
        r.push_full_row("x", &[1.0]);
    }
}
