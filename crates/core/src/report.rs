//! Tabular experiment reports: rendered as text for the console and
//! serialized as JSON artifacts under `results/`.

use std::fmt;
use std::path::Path;

/// One row of a report: a label plus one value per column.
#[derive(Debug, Clone, PartialEq)]
pub struct ReportRow {
    /// Row label (method name, category, …).
    pub label: String,
    /// Values, one per report column; `None` renders as `-`.
    pub values: Vec<Option<f32>>,
}

serde::impl_json_struct!(ReportRow { label, values });

/// A table or figure reproduction: identifier, caption, columns and rows.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// Identifier matching the paper ("Table II", "Figure 2a", …).
    pub id: String,
    /// Short caption.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Data rows.
    pub rows: Vec<ReportRow>,
    /// Free-form notes (budget, substitutions, expected shape).
    pub notes: Vec<String>,
}

serde::impl_json_struct!(Report { id, title, columns, rows, notes });

/// Conversion into one report row's cell values, so [`Report::push_row`]
/// accepts both sparse (`Option<f32>`) and fully populated (`f32`) rows
/// through a single method.
pub trait IntoRowValues {
    /// Converts `self` into one `Option<f32>` per column.
    fn into_row_values(self) -> Vec<Option<f32>>;
}

impl IntoRowValues for Vec<Option<f32>> {
    fn into_row_values(self) -> Vec<Option<f32>> {
        self
    }
}

impl IntoRowValues for &[Option<f32>] {
    fn into_row_values(self) -> Vec<Option<f32>> {
        self.to_vec()
    }
}

impl IntoRowValues for Vec<f32> {
    fn into_row_values(self) -> Vec<Option<f32>> {
        self.into_iter().map(Some).collect()
    }
}

impl IntoRowValues for &Vec<f32> {
    fn into_row_values(self) -> Vec<Option<f32>> {
        self.iter().copied().map(Some).collect()
    }
}

impl IntoRowValues for &[f32] {
    fn into_row_values(self) -> Vec<Option<f32>> {
        self.iter().copied().map(Some).collect()
    }
}

impl<const N: usize> IntoRowValues for &[f32; N] {
    fn into_row_values(self) -> Vec<Option<f32>> {
        self.iter().copied().map(Some).collect()
    }
}

impl<const N: usize> IntoRowValues for [f32; N] {
    fn into_row_values(self) -> Vec<Option<f32>> {
        self.iter().copied().map(Some).collect()
    }
}

impl<const N: usize> IntoRowValues for [Option<f32>; N] {
    fn into_row_values(self) -> Vec<Option<f32>> {
        self.to_vec()
    }
}

impl Report {
    /// Creates an empty report.
    pub fn new(id: &str, title: &str, columns: &[&str]) -> Self {
        Report {
            id: id.to_owned(),
            title: title.to_owned(),
            columns: columns.iter().map(|&c| c.to_owned()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row. Accepts either optional values (`Vec<Option<f32>>`,
    /// `None` rendering as `-`) or fully populated slices/arrays of `f32`
    /// via [`IntoRowValues`].
    ///
    /// # Panics
    /// Panics — naming this report — if the value count differs from the
    /// column count; a silent mismatch would corrupt every later lookup.
    pub fn push_row<V: IntoRowValues>(&mut self, label: &str, values: V) {
        let values = values.into_row_values();
        assert_eq!(
            values.len(),
            self.columns.len(),
            "report '{}': row '{}' has {} values for {} columns",
            self.id,
            label,
            values.len(),
            self.columns.len()
        );
        self.rows.push(ReportRow {
            label: label.to_owned(),
            values,
        });
    }

    /// Appends a note.
    pub fn note(&mut self, text: &str) {
        self.notes.push(text.to_owned());
    }

    /// Looks up a cell by row label and column header.
    pub fn cell(&self, label: &str, column: &str) -> Option<f32> {
        let col = self.columns.iter().position(|c| c == column)?;
        self.rows
            .iter()
            .find(|r| r.label == label)
            .and_then(|r| r.values.get(col).copied().flatten())
    }

    /// Serializes the report to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialization cannot fail")
    }

    /// Parses a report from its JSON artifact.
    ///
    /// # Errors
    /// Returns the underlying parse error for malformed input.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// Filesystem-safe stem derived from the report id ("Table II" →
    /// "table_ii"); shared by the JSON artifact and its trace files.
    pub fn file_stem(&self) -> String {
        self.id.replace([' ', '/'], "_").to_lowercase()
    }

    /// Writes the JSON artifact to `dir/<stem>.json`, creating `dir` (and
    /// any missing parents) first — the same convention as
    /// [`crate::logging::CurveLog::save_csv`].
    ///
    /// # Errors
    /// Returns any I/O error from creating the directory or writing.
    pub fn save_json(&self, dir: &Path) -> std::io::Result<std::path::PathBuf> {
        std::fs::create_dir_all(dir)?;
        let file = dir.join(format!("{}.json", self.file_stem()));
        std::fs::write(&file, self.to_json())?;
        Ok(file)
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "=== {} — {} ===", self.id, self.title)?;
        let label_w = self
            .rows
            .iter()
            .map(|r| r.label.len())
            .chain(std::iter::once("method".len()))
            .max()
            .unwrap_or(8)
            + 2;
        let col_w = self
            .columns
            .iter()
            .map(|c| c.len().max(8) + 2)
            .collect::<Vec<_>>();
        write!(f, "{:label_w$}", "method")?;
        for (c, w) in self.columns.iter().zip(&col_w) {
            write!(f, "{c:>w$}", w = w)?;
        }
        writeln!(f)?;
        for row in &self.rows {
            write!(f, "{:label_w$}", row.label)?;
            for (v, w) in row.values.iter().zip(&col_w) {
                match v {
                    Some(v) => write!(f, "{v:>w$.3}", w = w)?,
                    None => write!(f, "{:>w$}", "-", w = w)?,
                }
            }
            writeln!(f)?;
        }
        for n in &self.notes {
            writeln!(f, "  note: {n}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_render_and_serialize() {
        let mut r = Report::new("Table T", "demo", &["acc", "miou"]);
        r.push_row("CAE-DFKD", [0.9, 0.5]);
        r.push_row("Base", vec![Some(0.8), None]);
        r.note("fast budget");
        let text = r.to_string();
        assert!(text.contains("CAE-DFKD"));
        assert!(text.contains('-'));
        let json = r.to_json();
        let back: Report = serde_json::from_str(&json).expect("roundtrip");
        assert_eq!(back, r);
        assert_eq!(r.cell("CAE-DFKD", "miou"), Some(0.5));
        assert_eq!(r.cell("Base", "miou"), None);
    }

    #[test]
    #[should_panic(expected = "report 'Table Arity'")]
    fn row_arity_mismatch_names_the_report() {
        let mut r = Report::new("Table Arity", "demo", &["a", "b"]);
        r.push_row("x", [1.0]);
    }

    #[test]
    fn push_row_accepts_sparse_and_full_forms() {
        let mut r = Report::new("T", "demo", &["a", "b"]);
        r.push_row("vec-f32", vec![1.0f32, 2.0]);
        r.push_row("slice-f32", &[1.0f32, 2.0][..]);
        r.push_row("array-f32", [1.0f32, 2.0]);
        r.push_row("sparse", [Some(1.0), None]);
        assert!(r.rows.iter().take(3).all(|row| row.values.iter().all(Option::is_some)));
        assert_eq!(r.rows[3].values, vec![Some(1.0), None]);
    }

    #[test]
    fn save_json_creates_nested_directories() {
        let mut r = Report::new("Table Nested/Dirs", "demo", &["a"]);
        r.push_row("x", [1.0]);
        let dir = std::env::temp_dir()
            .join(format!("cae_report_test_{}", std::process::id()))
            .join("deeply")
            .join("nested");
        let path = r.save_json(&dir).expect("creates parents like CurveLog::save_csv");
        assert_eq!(path, dir.join("table_nested_dirs.json"));
        let back = Report::from_json(&std::fs::read_to_string(&path).expect("written"))
            .expect("roundtrips");
        assert_eq!(back, r);
        std::fs::remove_dir_all(dir.parent().expect("parent").parent().expect("root")).ok();
    }
}
