//! Baseline-specific machinery: image-level augmentations (Mixup, two-view
//! contrastive) and optimization-based inversion (DeepInversion-like).
//!
//! The baselines themselves are [`crate::method::MethodSpec`] configurations
//! executed by the shared [`crate::trainer::DfkdTrainer`]; this module holds
//! the code paths only they exercise.

pub mod augment;
pub mod deepinv;
