//! Image-level augmentations used by the Mixup and contrastive baselines
//! (the operations paper Fig. 2c shows degrading ambiguous synthetic
//! images).

use cae_tensor::rng::TensorRng;
use cae_tensor::Tensor;

/// Mixup over an NCHW batch: pairs each image with a circularly shifted
/// partner, returning mixed images and per-row `(i, j, λ)` assignments.
///
/// # Panics
/// Panics if the batch is not 4-d.
pub fn mixup_batch(images: &Tensor, alpha: f32, rng: &mut TensorRng) -> (Tensor, Vec<(usize, usize, f32)>) {
    let (n, c, h, w) = images.shape().nchw();
    let stride = c * h * w;
    let shift = 1 + rng.index(n.max(2) - 1);
    let mut mixed = images.clone();
    let mut assignment = Vec::with_capacity(n);
    for i in 0..n {
        let j = (i + shift) % n;
        // A Beta(α, α)-like draw via the average of uniforms, biased toward
        // strong mixing for larger α.
        let lam = 0.5 + (rng.uniform() - 0.5) * (1.0 - alpha.clamp(0.0, 1.0));
        for p in 0..stride {
            let a = images.data()[i * stride + p];
            let b = images.data()[j * stride + p];
            mixed.data_mut()[i * stride + p] = lam * a + (1.0 - lam) * b;
        }
        assignment.push((i, j, lam));
    }
    (mixed, assignment)
}

/// Produces two stochastically augmented views of an NCHW batch (horizontal
/// flip, channel jitter, pixel noise) — the SimCLR-style pair construction
/// used by the image-level contrastive baseline.
pub fn two_views(images: &Tensor, rng: &mut TensorRng) -> (Tensor, Tensor) {
    (augment_view(images, rng), augment_view(images, rng))
}

fn augment_view(images: &Tensor, rng: &mut TensorRng) -> Tensor {
    let (n, c, h, w) = images.shape().nchw();
    let mut out = images.clone();
    for i in 0..n {
        let flip = rng.uniform() < 0.5;
        let jitter: Vec<f32> = (0..c).map(|_| rng.uniform_in(-0.2, 0.2)).collect();
        let noise_std = rng.uniform_in(0.02, 0.12);
        for (ci, &jit) in jitter.iter().enumerate() {
            for y in 0..h {
                for x in 0..w {
                    let sx = if flip { w - 1 - x } else { x };
                    let src = images.data()[((i * c + ci) * h + y) * w + sx];
                    let v = src + jit + noise_std * rng.normal();
                    out.data_mut()[((i * c + ci) * h + y) * w + x] = v.clamp(-1.0, 1.0);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixup_interpolates_pairs() {
        let mut rng = TensorRng::seed_from(0);
        let mut img = Tensor::zeros(&[2, 1, 2, 2]);
        for v in &mut img.data_mut()[4..8] {
            *v = 1.0; // second image all ones
        }
        let (mixed, assign) = mixup_batch(&img, 0.8, &mut rng);
        let (_, j, lam) = assign[0];
        assert_eq!(j, 1);
        // First mixed image = lam*0 + (1-lam)*1.
        for &v in &mixed.data()[0..4] {
            assert!((v - (1.0 - lam)).abs() < 1e-6);
        }
    }

    #[test]
    fn views_differ_from_each_other_and_the_original() {
        let mut rng = TensorRng::seed_from(1);
        let img = rng.normal_tensor(&[2, 3, 4, 4], 0.0, 0.5);
        let (a, b) = two_views(&img, &mut rng);
        assert_ne!(a.data(), b.data());
        assert_ne!(a.data(), img.data());
        assert_eq!(a.shape(), img.shape());
    }
}
