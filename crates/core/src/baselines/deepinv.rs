//! Optimization-based inversion (DeepInversion-like baseline).
//!
//! Instead of training a generator network, a batch of image pixels is
//! optimized directly against the frozen teacher: cross-entropy toward the
//! target labels, batch-norm statistic matching, and a total-variation
//! smoothness prior.

use crate::losses::{bn_loss, total_variation};
use cae_nn::loss::cross_entropy;
use cae_nn::module::{Classifier, ForwardCtx};
use cae_nn::optim::{Adam, Optimizer};
use cae_tensor::rng::TensorRng;
use cae_tensor::{Tensor, Var};

/// Hyper-parameters for one inversion round.
#[derive(Debug, Clone, Copy)]
pub struct InversionConfig {
    /// Adam steps per batch.
    pub steps: usize,
    /// Adam learning rate on the pixels.
    pub lr: f32,
    /// Weight of the BN statistic loss.
    pub lambda_bn: f32,
    /// Weight of the total-variation prior.
    pub lambda_tv: f32,
}

impl Default for InversionConfig {
    fn default() -> Self {
        InversionConfig {
            steps: 12,
            lr: 0.05,
            lambda_bn: 1.0,
            lambda_tv: 1e-2,
        }
    }
}

/// Synthesizes one labelled batch by direct pixel optimization against the
/// teacher. Returns the final images (clamped to `[-1, 1]`).
pub fn invert_batch(
    teacher: &dyn Classifier,
    labels: &[usize],
    resolution: usize,
    config: InversionConfig,
    rng: &mut TensorRng,
) -> Tensor {
    let n = labels.len();
    let pixels = Var::parameter(rng.normal_tensor(&[n, 3, resolution, resolution], 0.0, 0.5));
    let mut opt = Adam::new(vec![pixels.clone()], config.lr);
    for _ in 0..config.steps {
        let mut ctx = ForwardCtx::eval_with_bn_stats();
        let logits = teacher.forward(&pixels, &mut ctx);
        let loss = cross_entropy(&logits, labels)
            .add(&bn_loss(&ctx.bn_stats).scale(config.lambda_bn))
            .add(&total_variation(&pixels).scale(config.lambda_tv));
        opt.zero_grad();
        loss.backward();
        opt.step();
        // Keep pixels in the valid image range.
        pixels.update_value(|t| {
            for v in t.data_mut() {
                *v = v.clamp(-1.0, 1.0);
            }
        });
    }
    pixels.to_tensor()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cae_data::world::VisionWorld;
    use cae_data::SplitDataset;
    use cae_nn::models::Arch;

    #[test]
    fn inversion_raises_teacher_confidence_in_target_class() {
        // Train a small teacher, then invert and check the teacher believes
        // the synthesized images more than random noise.
        let world = VisionWorld::new(3, 8, 21);
        let split = SplitDataset::sample(&world, 16, 4, 3);
        let mut rng = TensorRng::seed_from(0);
        let teacher = Arch::ResNet18.build(3, 4, &mut rng);
        crate::teacher::train_supervised(teacher.as_ref(), &split.train, 40, 16, 0.1, &mut rng);

        let labels = vec![0, 1, 2, 0];
        let frozen = teacher.freeze_with(&cae_nn::infer::FreezeOptions::exact());
        let ce_of = |imgs: &Tensor| {
            let logits = Var::constant(frozen.forward(imgs));
            cross_entropy(&logits, &labels).item()
        };
        let noise = rng.normal_tensor(&[4, 3, 8, 8], 0.0, 0.5);
        let inverted = invert_batch(
            teacher.as_ref(),
            &labels,
            8,
            InversionConfig { steps: 20, ..Default::default() },
            &mut rng,
        );
        assert!(
            ce_of(&inverted) < ce_of(&noise),
            "inversion must reduce teacher cross-entropy"
        );
        for &v in inverted.data() {
            assert!((-1.0..=1.0).contains(&v));
        }
    }
}
