//! Supervised pre-training of teachers and data-accessible student
//! references, with a process-global cache.
//!
//! Every DFKD experiment needs the same frozen teacher for a given
//! (dataset, architecture, budget) triple; training it once and sharing it
//! across method cells keeps table runs tractable. Models are `Send + Sync`
//! (autograd nodes are `Arc`-based), so the cache is a process-global map
//! of per-key [`OnceLock`] slots: when several experiment cells request the
//! same teacher concurrently, exactly one trains it and the rest block on
//! the slot until the master is ready.
//!
//! The cached master is never handed out directly. DFKD's adversarial loss
//! backpropagates into the teacher's parameter gradient buffers, so sharing
//! the master's `Var`s across concurrent cells would cross-contaminate
//! their gradients; [`pretrained`] therefore returns a private structural
//! clone per call and the master stays read-only.

use crate::config::ExperimentBudget;
use cae_data::dataset::Dataset;
use cae_nn::infer::{FreezeMode, FrozenClassifier};
use cae_nn::loss::cross_entropy;
use cae_nn::models::Arch;
use cae_nn::module::{copy_state, Classifier, ForwardCtx};
use cae_nn::optim::{CosineSchedule, Optimizer, Sgd};
use cae_tensor::rng::TensorRng;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// One cache entry: a lazily trained master model plus lazily compiled
/// frozen forms (one per [`FreezeMode`]). The outer map hands out
/// `Arc<Slot>`s under a short-lived lock; the expensive pre-training runs
/// inside `get_or_init` without holding the map lock, so cells requesting
/// *different* teachers train in parallel while cells requesting the *same*
/// teacher wait for the single trainer.
#[derive(Default)]
struct Slot {
    master: OnceLock<Box<dyn Classifier>>,
    frozen_exact: OnceLock<Arc<FrozenClassifier>>,
    frozen_fused: OnceLock<Arc<FrozenClassifier>>,
}

fn cache() -> &'static Mutex<HashMap<String, Arc<Slot>>> {
    static CACHE: OnceLock<Mutex<HashMap<String, Arc<Slot>>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Number of actual pre-training runs performed (cache misses). Exposed so
/// tests can assert that N concurrent requests for one key train once.
static PRETRAIN_RUNS: AtomicUsize = AtomicUsize::new(0);

fn runs_by_prefix() -> &'static Mutex<HashMap<String, usize>> {
    static RUNS: OnceLock<Mutex<HashMap<String, usize>>> = OnceLock::new();
    RUNS.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Total number of supervised pre-training runs executed so far (i.e. cache
/// misses; cache hits do not increment this).
pub fn pretrain_runs() -> usize {
    PRETRAIN_RUNS.load(Ordering::Relaxed)
}

/// Pre-training runs whose cache key starts with `key_prefix`. Lets tests
/// assert hit/miss behaviour for their own keys without interference from
/// pre-training triggered elsewhere in the process.
pub fn pretrain_runs_for(key_prefix: &str) -> usize {
    runs_by_prefix()
        .lock()
        .expect("teacher run-count lock poisoned")
        .get(key_prefix)
        .copied()
        .unwrap_or(0)
}

/// Trains `model` supervised on `dataset` for `steps` SGD steps with cosine
/// annealing. Returns the final running training loss.
pub fn train_supervised(
    model: &dyn Classifier,
    dataset: &Dataset,
    steps: usize,
    batch_size: usize,
    base_lr: f32,
    rng: &mut TensorRng,
) -> f32 {
    let mut opt = Sgd::new(model.parameters(), base_lr, 0.9, 5e-4);
    let schedule = CosineSchedule::new(base_lr, steps);
    let mut step = 0usize;
    let mut last_loss = f32::NAN;
    'outer: loop {
        for batch in dataset.epoch_batches(batch_size, rng) {
            if step >= steps {
                break 'outer;
            }
            opt.set_lr(schedule.lr_at(step));
            let (x, y) = dataset.batch(&batch);
            let logits = model.forward(&cae_tensor::Var::constant(x), &mut ForwardCtx::train());
            let loss = cross_entropy(&logits, &y);
            opt.zero_grad();
            loss.backward();
            opt.step();
            last_loss = loss.item();
            step += 1;
        }
    }
    last_loss
}

/// Returns a supervised classifier for `(arch, dataset)` trained under
/// `budget`, training it on the first request (concurrent requesters for
/// the same key block until that single training run finishes) and serving
/// every request from the cached master afterwards.
///
/// The returned model is a private copy: callers may fine-tune it or
/// backpropagate through it freely without affecting other cells.
pub fn pretrained(
    key_prefix: &str,
    arch: Arch,
    dataset: &Dataset,
    budget: &ExperimentBudget,
    batch_size: usize,
) -> Box<dyn Classifier> {
    let slot = acquire_trained_slot(key_prefix, arch, dataset, budget, batch_size);
    let master = slot.master.get().expect("slot was just initialized");
    clone_classifier(
        master.as_ref(),
        arch,
        dataset.num_classes(),
        budget.base_width,
    )
}

/// Like [`pretrained`], but returns a shared [`FrozenClassifier`] compiled
/// from the cached master under `mode`.
///
/// Frozen models are immutable (plain tensors, no gradient buffers), so a
/// single compiled instance per `(key, mode)` is shared by all callers via
/// `Arc` — no per-call structural clone, no per-call BN folding.
pub fn pretrained_frozen(
    key_prefix: &str,
    arch: Arch,
    dataset: &Dataset,
    budget: &ExperimentBudget,
    batch_size: usize,
    mode: FreezeMode,
) -> Arc<FrozenClassifier> {
    let slot = acquire_trained_slot(key_prefix, arch, dataset, budget, batch_size);
    let master = slot.master.get().expect("slot was just initialized");
    let cell = match mode {
        FreezeMode::Exact => &slot.frozen_exact,
        FreezeMode::Fused => &slot.frozen_fused,
    };
    cell.get_or_init(|| {
        let _sp = cae_trace::span("teacher.freeze");
        Arc::new(master.freeze_with(&cae_nn::infer::FreezeOptions::with_mode(mode)))
    })
    .clone()
}

/// Returns the slot for the cache key, training the master on first use.
fn acquire_trained_slot(
    key_prefix: &str,
    arch: Arch,
    dataset: &Dataset,
    budget: &ExperimentBudget,
    batch_size: usize,
) -> Arc<Slot> {
    let key = format!(
        "{key_prefix}/{arch:?}/k{}/r{}/n{}/s{}/w{}/seed{}",
        dataset.num_classes(),
        dataset.resolution(),
        dataset.len(),
        budget.pretrain_steps,
        budget.base_width,
        budget.seed,
    );
    let slot = {
        let mut map = cache().lock().expect("teacher cache lock poisoned");
        map.entry(key).or_default().clone()
    };
    // A populated slot is a hit; otherwise this call either trains the
    // master itself (span `teacher.pretrain`) or blocks until a concurrent
    // trainer finishes (the remainder of `teacher.cache_acquire`).
    let hit = slot.master.get().is_some();
    cae_trace::counter(
        if hit { "teacher.cache_hits" } else { "teacher.cache_misses" },
        1,
    );
    let _acquire = if hit { None } else { Some(cae_trace::span("teacher.cache_acquire")) };
    slot.master.get_or_init(|| {
        let _sp = cae_trace::span("teacher.pretrain");
        PRETRAIN_RUNS.fetch_add(1, Ordering::Relaxed);
        *runs_by_prefix()
            .lock()
            .expect("teacher run-count lock poisoned")
            .entry(key_prefix.to_owned())
            .or_insert(0) += 1;
        let mut rng = TensorRng::seed_from(budget.seed ^ 0x7e4c_4e12);
        let model = arch.build(dataset.num_classes(), budget.base_width, &mut rng);
        train_supervised(
            model.as_ref(),
            dataset,
            budget.pretrain_steps,
            batch_size,
            0.1,
            &mut rng,
        );
        model
    });
    slot
}

/// Clears the teacher cache (useful in long test sessions).
pub fn clear_cache() {
    cache().lock().expect("teacher cache lock poisoned").clear();
}

/// Builds a structurally identical classifier and copies all weights and
/// batch-norm statistics from `src`.
///
/// # Panics
/// Panics if `arch`/`num_classes`/`base_width` do not describe `src`.
pub fn clone_classifier(
    src: &dyn Classifier,
    arch: Arch,
    num_classes: usize,
    base_width: usize,
) -> Box<dyn Classifier> {
    let mut rng = TensorRng::seed_from(0);
    let dst = arch.build(num_classes, base_width, &mut rng);
    copy_state(src, dst.as_ref());
    dst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::classification::top1_accuracy;
    use cae_data::presets::ClassificationPreset;
    use cae_data::world::VisionWorld;
    use cae_data::SplitDataset;

    #[test]
    fn supervised_training_beats_chance() {
        let world = VisionWorld::new(4, 8, 3);
        let split = SplitDataset::sample(&world, 24, 8, 1);
        let mut rng = TensorRng::seed_from(0);
        let model = Arch::ResNet18.build(4, 4, &mut rng);
        train_supervised(model.as_ref(), &split.train, 60, 16, 0.1, &mut rng);
        let acc = top1_accuracy(model.as_ref(), &split.test, 16);
        assert!(acc > 0.4, "accuracy {acc} not above chance (0.25)");
    }

    #[test]
    fn cache_trains_once_and_returns_equal_private_copies() {
        let split = ClassificationPreset::C10Sim.generate(9);
        let tiny = ExperimentBudget::smoke();
        let a = pretrained("t-once", Arch::ResNet18, &split.train, &tiny, 16);
        assert_eq!(pretrain_runs_for("t-once"), 1, "first request trains the master");
        let b = pretrained("t-once", Arch::ResNet18, &split.train, &tiny, 16);
        assert_eq!(pretrain_runs_for("t-once"), 1, "second request is a hit");
        // Private copies: equal outputs, independent parameters.
        let (x, _) = split.test.batch(&[0, 1]);
        let xv = cae_tensor::Var::constant(x);
        let ya = a.forward(&xv, &mut ForwardCtx::eval());
        let yb = b.forward(&xv, &mut ForwardCtx::eval());
        assert_eq!(ya.to_tensor(), yb.to_tensor());
        let pa = a.parameters();
        let pb = b.parameters();
        assert!(pa.iter().zip(&pb).all(|(p, q)| p.id() != q.id()));
    }

    #[test]
    fn pretrained_frozen_shares_one_compiled_instance_per_mode() {
        let split = ClassificationPreset::C10Sim.generate(21);
        let tiny = ExperimentBudget::smoke();
        let a = pretrained_frozen("t-frozen", Arch::Wrn16x1, &split.train, &tiny, 16, FreezeMode::Fused);
        let b = pretrained_frozen("t-frozen", Arch::Wrn16x1, &split.train, &tiny, 16, FreezeMode::Fused);
        assert!(Arc::ptr_eq(&a, &b), "same (key, mode) must share one frozen instance");
        assert_eq!(pretrain_runs_for("t-frozen"), 1, "freezing must not retrain");
        // The exact-mode frozen forward matches the Var master bit-for-bit.
        let master = pretrained("t-frozen", Arch::Wrn16x1, &split.train, &tiny, 16);
        let (x, _) = split.test.batch(&[0, 1]);
        let reference = master
            .forward(&cae_tensor::Var::constant(x.clone()), &mut ForwardCtx::eval())
            .to_tensor();
        let exact =
            pretrained_frozen("t-frozen", Arch::Wrn16x1, &split.train, &tiny, 16, FreezeMode::Exact);
        assert_eq!(exact.forward(&x).data(), reference.data());
    }

    #[test]
    fn concurrent_requests_for_one_key_pretrain_exactly_once() {
        let split = std::sync::Arc::new(ClassificationPreset::C10Sim.generate(13));
        let tiny = ExperimentBudget {
            seed: 1312,
            ..ExperimentBudget::smoke()
        };
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let split = split.clone();
                std::thread::spawn(move || {
                    pretrained("t-conc", Arch::Wrn16x1, &split.train, &tiny, 16)
                        .num_parameters()
                })
            })
            .collect();
        let counts: Vec<usize> = handles
            .into_iter()
            .map(|h| h.join().expect("no deadlock or panic"))
            .collect();
        assert!(counts.windows(2).all(|w| w[0] == w[1]));
        assert_eq!(
            pretrain_runs_for("t-conc"),
            1,
            "4 concurrent requests must share one training run"
        );
    }

    #[test]
    fn clone_classifier_reproduces_outputs() {
        let world = VisionWorld::new(3, 8, 5);
        let split = SplitDataset::sample(&world, 8, 4, 2);
        let mut rng = TensorRng::seed_from(1);
        let model = Arch::Wrn16x1.build(3, 4, &mut rng);
        train_supervised(model.as_ref(), &split.train, 10, 8, 0.1, &mut rng);
        let copy = clone_classifier(model.as_ref(), Arch::Wrn16x1, 3, 4);
        let (x, _) = split.test.batch(&[0, 1, 2]);
        let xa = cae_tensor::Var::constant(x);
        let ya = model.forward(&xa, &mut ForwardCtx::eval());
        let yb = copy.forward(&xa, &mut ForwardCtx::eval());
        for (a, b) in ya.value().data().iter().zip(yb.value().data()) {
            assert!((a - b).abs() < 1e-5, "outputs differ: {a} vs {b}");
        }
    }
}
