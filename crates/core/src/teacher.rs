//! Supervised pre-training of teachers and data-accessible student
//! references, with a per-session cache.
//!
//! Every DFKD experiment needs the same frozen teacher for a given
//! (dataset, architecture, budget) triple; training it once and sharing it
//! across method cells keeps table runs tractable. Models are not `Send`
//! (autograd nodes are `Rc`-based), so the cache is thread-local.

use crate::config::ExperimentBudget;
use cae_data::dataset::Dataset;
use cae_nn::loss::cross_entropy;
use cae_nn::models::Arch;
use cae_nn::module::{copy_state, Classifier, ForwardCtx};
use cae_nn::optim::{CosineSchedule, Optimizer, Sgd};
use cae_tensor::rng::TensorRng;
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

thread_local! {
    static CACHE: RefCell<HashMap<String, Rc<dyn Classifier>>> = RefCell::new(HashMap::new());
}

/// Trains `model` supervised on `dataset` for `steps` SGD steps with cosine
/// annealing. Returns the final running training loss.
pub fn train_supervised(
    model: &dyn Classifier,
    dataset: &Dataset,
    steps: usize,
    batch_size: usize,
    base_lr: f32,
    rng: &mut TensorRng,
) -> f32 {
    let mut opt = Sgd::new(model.parameters(), base_lr, 0.9, 5e-4);
    let schedule = CosineSchedule::new(base_lr, steps);
    let mut step = 0usize;
    let mut last_loss = f32::NAN;
    'outer: loop {
        for batch in dataset.epoch_batches(batch_size, rng) {
            if step >= steps {
                break 'outer;
            }
            opt.set_lr(schedule.lr_at(step));
            let (x, y) = dataset.batch(&batch);
            let logits = model.forward(&cae_tensor::Var::constant(x), &mut ForwardCtx::train());
            let loss = cross_entropy(&logits, &y);
            opt.zero_grad();
            loss.backward();
            opt.step();
            last_loss = loss.item();
            step += 1;
        }
    }
    last_loss
}

/// Returns a supervised classifier for `(arch, dataset)` trained under
/// `budget`, training it on first request and caching it for the rest of
/// the session.
///
/// The cached model must be treated as read-only; use
/// [`clone_classifier`] before fine-tuning.
pub fn pretrained(
    key_prefix: &str,
    arch: Arch,
    dataset: &Dataset,
    budget: &ExperimentBudget,
    batch_size: usize,
) -> Rc<dyn Classifier> {
    let key = format!(
        "{key_prefix}/{arch:?}/k{}/r{}/n{}/s{}/w{}/seed{}",
        dataset.num_classes(),
        dataset.resolution(),
        dataset.len(),
        budget.pretrain_steps,
        budget.base_width,
        budget.seed,
    );
    if let Some(hit) = CACHE.with(|c| c.borrow().get(&key).cloned()) {
        return hit;
    }
    let mut rng = TensorRng::seed_from(budget.seed ^ 0x7e4c_4e12);
    let model = arch.build(dataset.num_classes(), budget.base_width, &mut rng);
    train_supervised(
        model.as_ref(),
        dataset,
        budget.pretrain_steps,
        batch_size,
        0.1,
        &mut rng,
    );
    let rc: Rc<dyn Classifier> = Rc::from(model);
    CACHE.with(|c| c.borrow_mut().insert(key, rc.clone()));
    rc
}

/// Clears the teacher cache (useful in long test sessions).
pub fn clear_cache() {
    CACHE.with(|c| c.borrow_mut().clear());
}

/// Builds a structurally identical classifier and copies all weights and
/// batch-norm statistics from `src`.
///
/// # Panics
/// Panics if `arch`/`num_classes`/`base_width` do not describe `src`.
pub fn clone_classifier(
    src: &dyn Classifier,
    arch: Arch,
    num_classes: usize,
    base_width: usize,
) -> Box<dyn Classifier> {
    let mut rng = TensorRng::seed_from(0);
    let dst = arch.build(num_classes, base_width, &mut rng);
    copy_state(src, dst.as_ref());
    dst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::classification::top1_accuracy;
    use cae_data::presets::ClassificationPreset;
    use cae_data::world::VisionWorld;
    use cae_data::SplitDataset;

    #[test]
    fn supervised_training_beats_chance() {
        let world = VisionWorld::new(4, 8, 3);
        let split = SplitDataset::sample(&world, 24, 8, 1);
        let mut rng = TensorRng::seed_from(0);
        let model = Arch::ResNet18.build(4, 4, &mut rng);
        train_supervised(model.as_ref(), &split.train, 60, 16, 0.1, &mut rng);
        let acc = top1_accuracy(model.as_ref(), &split.test, 16);
        assert!(acc > 0.4, "accuracy {acc} not above chance (0.25)");
    }

    #[test]
    fn cache_returns_the_same_model() {
        clear_cache();
        let split = ClassificationPreset::C10Sim.generate(9);
        let tiny = ExperimentBudget::smoke();
        let a = pretrained("t", Arch::ResNet18, &split.train, &tiny, 16);
        let b = pretrained("t", Arch::ResNet18, &split.train, &tiny, 16);
        assert!(Rc::ptr_eq(&a, &b));
        clear_cache();
    }

    #[test]
    fn clone_classifier_reproduces_outputs() {
        let world = VisionWorld::new(3, 8, 5);
        let split = SplitDataset::sample(&world, 8, 4, 2);
        let mut rng = TensorRng::seed_from(1);
        let model = Arch::Wrn16x1.build(3, 4, &mut rng);
        train_supervised(model.as_ref(), &split.train, 10, 8, 0.1, &mut rng);
        let copy = clone_classifier(model.as_ref(), Arch::Wrn16x1, 3, 4);
        let (x, _) = split.test.batch(&[0, 1, 2]);
        let xa = cae_tensor::Var::constant(x);
        let ya = model.forward(&xa, &mut ForwardCtx::eval());
        let yb = copy.forward(&xa, &mut ForwardCtx::eval());
        for (a, b) in ya.value().data().iter().zip(yb.value().data()) {
            assert!((a - b).abs() < 1e-5, "outputs differ: {a} vs {b}");
        }
    }
}
