//! Generator input providers: what each DFKD method feeds the generator.

use crate::cend::CendLayer;
use cae_lm::{initial_embeddings, LanguageModel, PromptTemplate};
use cae_tensor::rng::TensorRng;
use cae_tensor::Tensor;

/// Produces per-class latent inputs for the generator.
///
/// The three variants span the methods compared in the paper:
///
/// * [`EmbeddingProvider::Gaussian`] — native DFKD: unstructured noise,
///   class-agnostic (the class label only supervises the CE loss).
/// * [`EmbeddingProvider::Label`] — NAYER-style: the raw language-model
///   category embedding, no diffusion.
/// * [`EmbeddingProvider::Cend`] — CAE-DFKD: category embeddings diffused
///   by the CEND layer.
#[derive(Debug, Clone)]
pub enum EmbeddingProvider {
    /// Unstructured Gaussian latents of the given dimension.
    Gaussian {
        /// Latent dimensionality.
        dim: usize,
    },
    /// Raw offline category embeddings `E^off`.
    Label {
        /// The `[K, D]` table.
        e_off: Tensor,
    },
    /// CEND-diffused category embeddings.
    Cend {
        /// The `[K, D]` table.
        e_off: Tensor,
        /// The diffusion layer.
        layer: CendLayer,
    },
}

impl EmbeddingProvider {
    /// Builds the offline table from a language model and wraps it in a CEND
    /// provider.
    pub fn cend_from_lm(
        lm: &dyn LanguageModel,
        class_names: &[&str],
        template: PromptTemplate,
        layer: CendLayer,
    ) -> Self {
        EmbeddingProvider::Cend {
            e_off: initial_embeddings(lm, class_names, template),
            layer,
        }
    }

    /// Builds the offline table from a language model and uses it raw
    /// (NAYER-like).
    pub fn label_from_lm(
        lm: &dyn LanguageModel,
        class_names: &[&str],
        template: PromptTemplate,
    ) -> Self {
        EmbeddingProvider::Label {
            e_off: initial_embeddings(lm, class_names, template),
        }
    }

    /// Latent dimensionality fed to the generator.
    pub fn dim(&self) -> usize {
        match self {
            EmbeddingProvider::Gaussian { dim } => *dim,
            EmbeddingProvider::Label { e_off } | EmbeddingProvider::Cend { e_off, .. } => {
                e_off.shape().dim(1)
            }
        }
    }

    /// Samples latent inputs for the given class labels.
    ///
    /// # Panics
    /// Panics if a class index exceeds the embedding table (structured
    /// variants only).
    pub fn sample(&self, classes: &[usize], rng: &mut TensorRng) -> Tensor {
        match self {
            EmbeddingProvider::Gaussian { dim } => {
                rng.normal_tensor(&[classes.len(), *dim], 0.0, 1.0)
            }
            EmbeddingProvider::Label { e_off } => {
                // NAYER pairs its label-text embedding with a (periodically
                // re-initialized) noisy layer; the analogue here is a small
                // isotropic Gaussian jitter so repeated samples of one class
                // are not byte-identical. This is *single-source, single
                // distribution* noise — CEND's multi-source diffusion is the
                // paper's contribution on top of it.
                let (_, d) = e_off.shape().matrix();
                let scale = 0.3 / (d as f32).sqrt();
                let mut data = Vec::with_capacity(classes.len() * d);
                for &k in classes {
                    data.extend(
                        e_off.data()[k * d..(k + 1) * d]
                            .iter()
                            .map(|&e| e + scale * rng.normal()),
                    );
                }
                Tensor::from_vec(data, &[classes.len(), d]).expect("shape consistent")
            }
            EmbeddingProvider::Cend { e_off, layer } => layer.diffuse_batch(e_off, classes, rng),
        }
    }

    /// The offline table, when the provider is structured.
    pub fn e_off(&self) -> Option<&Tensor> {
        match self {
            EmbeddingProvider::Gaussian { .. } => None,
            EmbeddingProvider::Label { e_off } | EmbeddingProvider::Cend { e_off, .. } => {
                Some(e_off)
            }
        }
    }

    /// The CEND layer, when present.
    pub fn cend_layer(&self) -> Option<&CendLayer> {
        match self {
            EmbeddingProvider::Cend { layer, .. } => Some(layer),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cae_lm::ClipSim;

    #[test]
    fn gaussian_provider_is_class_agnostic_noise() {
        let p = EmbeddingProvider::Gaussian { dim: 16 };
        let mut rng = TensorRng::seed_from(0);
        let z = p.sample(&[0, 0, 1], &mut rng);
        assert_eq!(z.shape().dims(), &[3, 16]);
        // Same class, different draws.
        assert_ne!(&z.data()[0..16], &z.data()[16..32]);
    }

    #[test]
    fn label_provider_jitters_around_the_category_embedding() {
        let lm = ClipSim::new();
        let p = EmbeddingProvider::label_from_lm(&lm, &["cat", "dog"], PromptTemplate::ClassName);
        let mut rng = TensorRng::seed_from(0);
        let z = p.sample(&[1, 1], &mut rng);
        let d = p.dim();
        // Two draws of the same class: not identical (NAYER's noisy layer)…
        assert_ne!(&z.data()[0..d], &z.data()[d..2 * d]);
        // …but both close to the category embedding.
        let e = p.e_off().expect("structured provider");
        for row in 0..2 {
            let dist2: f32 = z.data()[row * d..(row + 1) * d]
                .iter()
                .zip(&e.data()[d..2 * d])
                .map(|(a, b)| (a - b).powi(2))
                .sum();
            assert!(dist2 < 0.5, "jitter too large: {dist2}");
        }
    }

    #[test]
    fn cend_provider_varies_around_label_embedding() {
        let lm = ClipSim::new();
        let layer = CendLayer::with_default_sources(4, 0.2);
        let p = EmbeddingProvider::cend_from_lm(
            &lm,
            &["cat", "dog"],
            PromptTemplate::ClassName,
            layer,
        );
        let mut rng = TensorRng::seed_from(0);
        let z1 = p.sample(&[0], &mut rng);
        let z2 = p.sample(&[0], &mut rng);
        assert_ne!(z1.data(), z2.data(), "diffusion must vary");
        let e = p.e_off().expect("structured provider");
        let d = p.dim();
        let dist: f32 = z1
            .data()
            .iter()
            .zip(&e.data()[0..d])
            .map(|(a, b)| (a - b).powi(2))
            .sum();
        assert!(dist < 1.0, "diffused latent strayed too far: {dist}");
    }
}
