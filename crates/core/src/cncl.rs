//! Category Noise Contrastive Learning (CNCL, paper §III-C and Eq. 4).
//!
//! Instead of contrasting augmented *images* (which amplifies the semantic
//! ambiguity of low-quality synthetic images — paper Table I), CNCL uses the
//! generator to construct contrastive pairs *in the embedding space*:
//!
//! * **anchor** `S_k = G(e_k^off)` — the image generated from category `k`'s
//!   offline embedding;
//! * **positives** `S_k^n = G(e_k^n)` — images generated from the `N`
//!   CEND-diffused embeddings of the same category;
//! * **negatives** — the positives of every other category in the batch.
//!
//! The InfoNCE objective over cosine similarities of *student embeddings*
//! pulls each anchor toward its diffusion family and away from other
//! categories, teaching the student domain-invariant category features.

use crate::cend::CendLayer;
use cae_nn::infer::{self, FreezeOptions};
use cae_nn::module::{Classifier, ForwardCtx, Generator};
use cae_tensor::rng::TensorRng;
use cae_tensor::{Tensor, Var};

/// CNCL hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CnclConfig {
    /// Temperature `τ` of Eq. 4.
    pub tau: f32,
    /// Number of categories contrasted per step (anchors per batch).
    pub classes_per_step: usize,
}

serde::impl_json_struct!(CnclConfig { tau, classes_per_step });

impl Default for CnclConfig {
    fn default() -> Self {
        CnclConfig {
            tau: 0.2,
            classes_per_step: 4,
        }
    }
}

/// Computes the CNCL loss (Eq. 4) for one step.
///
/// The generator is used in evaluation mode and *detached* — gradients flow
/// only into the student, matching the paper where `L_cncl` appears in the
/// student objective (Eq. 6).
///
/// # Panics
/// Panics if `e_off` has fewer categories than `config.classes_per_step`
/// requires at least one of, or shapes are inconsistent.
pub fn cncl_loss(
    student: &dyn Classifier,
    generator: &dyn Generator,
    e_off: &Tensor,
    cend: &CendLayer,
    config: CnclConfig,
    rng: &mut TensorRng,
) -> Var {
    let (num_classes, d) = e_off.shape().matrix();
    let kb = config.classes_per_step.clamp(2, num_classes);
    let n = cend.num_sources();

    // Choose kb distinct categories.
    let mut classes: Vec<usize> = (0..num_classes).collect();
    for i in (1..classes.len()).rev() {
        let j = rng.index(i + 1);
        classes.swap(i, j);
    }
    classes.truncate(kb);

    // Latents: anchors first, then each category's N diffusions.
    let mut latents = Vec::with_capacity((kb + kb * n) * d);
    for &k in &classes {
        latents.extend_from_slice(&e_off.data()[k * d..(k + 1) * d]);
    }
    for &k in &classes {
        let diffused = cend.diffuse_all_sources(e_off, k, rng);
        latents.extend_from_slice(diffused.data());
    }
    let z = Tensor::from_vec(latents, &[kb + kb * n, d]).expect("shape consistent");

    // Generate all images in one pass, detached from the generator. The
    // frozen path never builds a graph, so detachment is structural; the
    // legacy path (`CAE_INFER=0`) detaches explicitly.
    let images = if infer::infer_enabled() {
        Var::constant(generator.freeze_with(&FreezeOptions::from_env()).generate(&z))
    } else {
        generator
            .generate(&Var::constant(z), &mut ForwardCtx::eval())
            .detach()
    };

    // Student embeddings (training mode: gradients flow into the student).
    let mut ctx = ForwardCtx::train();
    let (emb, _) = student.forward_embedding(&images, &mut ctx);
    let anchors = emb.slice0(0, kb).l2_normalize_rows();
    let candidates = emb.slice0(kb, kb * n).l2_normalize_rows();

    // Similarity matrix [kb, kb*n]: row k's positives are columns
    // k*n..(k+1)*n, everything else is a negative.
    let sim = anchors.matmul_nt(&candidates).scale(1.0 / config.tau);
    let logp = sim.log_softmax_rows();
    let mut mask = Tensor::zeros(&[kb, kb * n]);
    for k in 0..kb {
        for p in 0..n {
            mask.data_mut()[k * (kb * n) + k * n + p] = 1.0;
        }
    }
    logp.mul_const(&mask)
        .sum_all()
        .scale(-1.0 / (kb * n) as f32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cae_nn::models::{Arch, DfkdGenerator, GeneratorConfig};

    fn setup() -> (Box<dyn Classifier>, DfkdGenerator, Tensor, CendLayer, TensorRng) {
        let mut rng = TensorRng::seed_from(3);
        let student = Arch::ResNet18.build(4, 4, &mut rng);
        let generator = DfkdGenerator::new(GeneratorConfig::new(8, 8, 8), &mut rng);
        let e_off = rng.normal_tensor(&[4, 8], 0.0, 1.0);
        let cend = CendLayer::with_default_sources(3, 0.2);
        (student, generator, e_off, cend, rng)
    }

    #[test]
    fn loss_is_finite_and_positive() {
        let (student, generator, e_off, cend, mut rng) = setup();
        let loss = cncl_loss(
            student.as_ref(),
            &generator,
            &e_off,
            &cend,
            CnclConfig::default(),
            &mut rng,
        );
        assert!(loss.item().is_finite());
        assert!(loss.item() > 0.0, "InfoNCE with random nets must be > 0");
    }

    #[test]
    fn gradients_reach_student_but_not_generator() {
        let (student, generator, e_off, cend, mut rng) = setup();
        let loss = cncl_loss(
            student.as_ref(),
            &generator,
            &e_off,
            &cend,
            CnclConfig::default(),
            &mut rng,
        );
        loss.backward();
        assert!(
            student.parameters().iter().any(|p| p.grad().is_some()),
            "student must receive gradients"
        );
        assert!(
            cae_nn::Module::parameters(&generator)
                .iter()
                .all(|p| p.grad().is_none()),
            "generator must be detached"
        );
    }

    #[test]
    fn perfect_separation_yields_lower_loss_than_collapse() {
        // Direct check of the InfoNCE core: if anchors align with their own
        // positives, the Eq. 4 denominator is dominated by the positives and
        // the loss shrinks. (Exercised through the public function by using
        // a fixed degenerate generator is impractical, so we verify the
        // monotonicity on the similarity structure instead.)
        let tau = 0.2f32;
        let aligned: f32 = -((1.0f32 / tau).exp() / ((1.0f32 / tau).exp() + 3.0 * (-1.0f32 / tau).exp())).ln();
        let collapsed: f32 = -(1.0f32 / 4.0).ln();
        assert!(aligned < collapsed);
    }
}
