//! Lightweight scalar logging: named training curves with CSV export.
//!
//! Experiment figures (loss trajectories, convergence curves) are persisted
//! next to the JSON reports so EXPERIMENTS.md numbers remain regenerable.

use std::collections::BTreeMap;
use std::io::Write;
use std::path::Path;

/// A collection of named scalar series indexed by step.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CurveLog {
    series: BTreeMap<String, Vec<(usize, f32)>>,
}

impl CurveLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        CurveLog::default()
    }

    /// Appends `(step, value)` to the series `name` (created on first use).
    pub fn push(&mut self, name: &str, step: usize, value: f32) {
        self.series.entry(name.to_owned()).or_default().push((step, value));
    }

    /// The recorded series names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.series.keys().map(String::as_str).collect()
    }

    /// A series by name.
    pub fn series(&self, name: &str) -> Option<&[(usize, f32)]> {
        self.series.get(name).map(Vec::as_slice)
    }

    /// Last value of a series.
    pub fn last(&self, name: &str) -> Option<f32> {
        self.series.get(name).and_then(|s| s.last()).map(|&(_, v)| v)
    }

    /// Simple smoothing: mean of the last `window` values of a series.
    pub fn tail_mean(&self, name: &str, window: usize) -> Option<f32> {
        let s = self.series.get(name)?;
        if s.is_empty() {
            return None;
        }
        let tail = &s[s.len().saturating_sub(window.max(1))..];
        Some(tail.iter().map(|&(_, v)| v).sum::<f32>() / tail.len() as f32)
    }

    /// Renders the log as long-format CSV (`series,step,value`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("series,step,value\n");
        for (name, points) in &self.series {
            for &(step, value) in points {
                out.push_str(&format!("{name},{step},{value}\n"));
            }
        }
        out
    }

    /// Writes the CSV to `path`, creating parent directories.
    ///
    /// # Errors
    /// Returns any I/O error from creating directories or writing.
    pub fn save_csv(&self, path: &Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let mut file = std::fs::File::create(path)?;
        file.write_all(self.to_csv().as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_query() {
        let mut log = CurveLog::new();
        log.push("loss", 0, 2.0);
        log.push("loss", 1, 1.0);
        log.push("acc", 1, 0.5);
        assert_eq!(log.names(), vec!["acc", "loss"]);
        assert_eq!(log.last("loss"), Some(1.0));
        assert_eq!(log.tail_mean("loss", 2), Some(1.5));
        assert_eq!(log.series("missing"), None);
    }

    #[test]
    fn csv_is_long_format() {
        let mut log = CurveLog::new();
        log.push("a", 0, 1.5);
        let csv = log.to_csv();
        assert!(csv.starts_with("series,step,value\n"));
        assert!(csv.contains("a,0,1.5"));
    }
}
