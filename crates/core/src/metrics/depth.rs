//! Depth-estimation metrics: absolute and relative error (paper Table V).

/// Accumulated depth errors.
#[derive(Debug, Clone, Copy, Default)]
pub struct DepthErrors {
    abs_sum: f64,
    rel_sum: f64,
    count: u64,
}

impl DepthErrors {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        DepthErrors::default()
    }

    /// Adds one image's per-pixel predictions and ground truth.
    ///
    /// # Panics
    /// Panics if the slices differ in length.
    pub fn add(&mut self, pred: &[f32], gt: &[f32]) {
        assert_eq!(pred.len(), gt.len(), "prediction/label size mismatch");
        for (&p, &g) in pred.iter().zip(gt) {
            let diff = (p - g).abs() as f64;
            self.abs_sum += diff;
            self.rel_sum += diff / (g.abs().max(1e-3) as f64);
            self.count += 1;
        }
    }

    /// Mean absolute error (the paper's AErr, lower is better).
    pub fn abs_error(&self) -> f32 {
        if self.count == 0 {
            0.0
        } else {
            (self.abs_sum / self.count as f64) as f32
        }
    }

    /// Mean relative error (the paper's RErr, lower is better).
    pub fn rel_error(&self) -> f32 {
        if self.count == 0 {
            0.0
        } else {
            (self.rel_sum / self.count as f64) as f32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_prediction_has_zero_error() {
        let mut e = DepthErrors::new();
        e.add(&[0.5, 1.0], &[0.5, 1.0]);
        assert_eq!(e.abs_error(), 0.0);
        assert_eq!(e.rel_error(), 0.0);
    }

    #[test]
    fn constant_offset_yields_that_abs_error() {
        let mut e = DepthErrors::new();
        e.add(&[1.1, 2.1], &[1.0, 2.0]);
        assert!((e.abs_error() - 0.1).abs() < 1e-5);
        assert!((e.rel_error() - 0.075).abs() < 1e-4); // (0.1/1 + 0.1/2)/2
    }
}
