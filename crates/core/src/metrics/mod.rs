//! Evaluation metrics matching the paper's tables: top-1 accuracy,
//! teacher-confidence histograms (Fig. 2a), segmentation mIoU / pixel
//! accuracy, depth errors, surface-normal angle statistics and detection
//! mAP.

pub mod classification;
pub mod confidence;
pub mod depth;
pub mod detection;
pub mod normals;
pub mod seg;
