//! Surface-normal metrics: mean/median angular error and within-t°
//! percentages (paper Table V).

/// Accumulated angular errors between predicted and ground-truth unit
/// normals.
#[derive(Debug, Clone, Default)]
pub struct NormalErrors {
    angles_deg: Vec<f32>,
}

impl NormalErrors {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        NormalErrors::default()
    }

    /// Adds per-pixel normals in planar `[3·P]` layout (x-plane, y-plane,
    /// z-plane), the layout produced by the dense world and the normal head.
    ///
    /// # Panics
    /// Panics if lengths differ or are not multiples of 3.
    pub fn add_planar(&mut self, pred: &[f32], gt: &[f32]) {
        assert_eq!(pred.len(), gt.len(), "prediction/label size mismatch");
        assert_eq!(pred.len() % 3, 0, "planar normals require 3 planes");
        let p = pred.len() / 3;
        for i in 0..p {
            let dot = pred[i] * gt[i]
                + pred[p + i] * gt[p + i]
                + pred[2 * p + i] * gt[2 * p + i];
            let pn = (pred[i].powi(2) + pred[p + i].powi(2) + pred[2 * p + i].powi(2))
                .sqrt()
                .max(1e-8);
            let gn = (gt[i].powi(2) + gt[p + i].powi(2) + gt[2 * p + i].powi(2))
                .sqrt()
                .max(1e-8);
            let cos = (dot / (pn * gn)).clamp(-1.0, 1.0);
            self.angles_deg.push(cos.acos().to_degrees());
        }
    }

    /// Mean angular error in degrees (lower is better).
    pub fn mean(&self) -> f32 {
        if self.angles_deg.is_empty() {
            0.0
        } else {
            self.angles_deg.iter().sum::<f32>() / self.angles_deg.len() as f32
        }
    }

    /// Median angular error in degrees (lower is better).
    pub fn median(&self) -> f32 {
        if self.angles_deg.is_empty() {
            return 0.0;
        }
        let mut sorted = self.angles_deg.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("angles are finite"));
        sorted[sorted.len() / 2]
    }

    /// Fraction of pixels with angular error within `t` degrees (higher is
    /// better). The paper reports t ∈ {11.25, 22.5, 30}.
    pub fn within_degrees(&self, t: f32) -> f32 {
        if self.angles_deg.is_empty() {
            return 0.0;
        }
        let hits = self.angles_deg.iter().filter(|&&a| a <= t).count();
        hits as f32 / self.angles_deg.len() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_normals_have_zero_error() {
        let mut e = NormalErrors::new();
        let n = vec![0.0, 0.0, 1.0]; // one pixel, planar layout
        e.add_planar(&n, &n);
        assert!(e.mean() < 1e-3);
        assert_eq!(e.within_degrees(11.25), 1.0);
    }

    #[test]
    fn orthogonal_normals_are_ninety_degrees() {
        let mut e = NormalErrors::new();
        e.add_planar(&[1.0, 0.0, 0.0], &[0.0, 0.0, 1.0]);
        assert!((e.mean() - 90.0).abs() < 1e-3);
        assert_eq!(e.within_degrees(30.0), 0.0);
    }

    #[test]
    fn median_of_mixed_errors() {
        let mut e = NormalErrors::new();
        // Three pixels: 0°, 0°, 90°.
        e.add_planar(
            &[0.0, 0.0, 1.0, 0.0, 0.0, 1.0, 1.0, 1.0, 0.0],
            &[0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0, 1.0, 1.0],
        );
        assert!(e.median() < 1.0);
    }
}
