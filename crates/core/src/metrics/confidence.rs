//! Teacher-confidence statistics over synthetic images (paper Fig. 2a).

use cae_nn::infer::{self, FreezeOptions};
use cae_nn::module::{Classifier, ForwardCtx};
use cae_tensor::{Tensor, Var};

/// Per-category confidence statistics of a teacher over a labelled set of
/// (synthetic) images.
#[derive(Debug, Clone)]
pub struct ConfidenceProfile {
    /// For each category: fraction of its images whose *highest* teacher
    /// probability is at most the threshold (the paper's "low-confidence
    /// proportion", threshold 0.1).
    pub low_conf_fraction: Vec<f32>,
    /// For each category: mean highest probability.
    pub mean_max_prob: Vec<f32>,
}

impl ConfidenceProfile {
    /// Spread between the most and least reliable categories — the Fig. 2a
    /// "quality difference across categories" in one number.
    pub fn low_conf_spread(&self) -> f32 {
        let max = self
            .low_conf_fraction
            .iter()
            .copied()
            .fold(f32::NEG_INFINITY, f32::max);
        let min = self
            .low_conf_fraction
            .iter()
            .copied()
            .fold(f32::INFINITY, f32::min);
        (max - min).max(0.0)
    }

    /// Overall low-confidence fraction.
    pub fn mean_low_conf(&self) -> f32 {
        if self.low_conf_fraction.is_empty() {
            0.0
        } else {
            self.low_conf_fraction.iter().sum::<f32>() / self.low_conf_fraction.len() as f32
        }
    }
}

/// Computes the teacher-confidence profile of labelled images.
///
/// # Panics
/// Panics if `labels.len()` differs from the batch size or a label is out
/// of range for `num_classes`.
pub fn confidence_profile(
    teacher: &dyn Classifier,
    images: &Tensor,
    labels: &[usize],
    num_classes: usize,
    threshold: f32,
) -> ConfidenceProfile {
    assert_eq!(images.shape().dim(0), labels.len(), "one label per image");
    let logits = if infer::infer_enabled() {
        teacher.freeze_with(&FreezeOptions::from_env()).forward(images)
    } else {
        teacher
            .forward(&Var::constant(images.clone()), &mut ForwardCtx::eval())
            .to_tensor()
    };
    let probs = logits.softmax_rows();
    let (n, k) = probs.shape().matrix();
    let mut low = vec![0usize; num_classes];
    let mut count = vec![0usize; num_classes];
    let mut sum_max = vec![0.0f32; num_classes];
    for (i, &label) in labels.iter().enumerate().take(n) {
        let row = &probs.data()[i * k..(i + 1) * k];
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        assert!(label < num_classes, "label {label} out of range");
        count[label] += 1;
        sum_max[label] += max;
        if max <= threshold {
            low[label] += 1;
        }
    }
    ConfidenceProfile {
        low_conf_fraction: low
            .iter()
            .zip(&count)
            .map(|(&l, &c)| if c == 0 { 0.0 } else { l as f32 / c as f32 })
            .collect(),
        mean_max_prob: sum_max
            .iter()
            .zip(&count)
            .map(|(&s, &c)| if c == 0 { 0.0 } else { s / c as f32 })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cae_nn::models::Arch;
    use cae_tensor::rng::TensorRng;

    #[test]
    fn profile_counts_are_consistent() {
        let mut rng = TensorRng::seed_from(0);
        let teacher = Arch::ResNet18.build(3, 4, &mut rng);
        let images = rng.normal_tensor(&[6, 3, 8, 8], 0.0, 1.0);
        let labels = vec![0, 0, 1, 1, 2, 2];
        let p = confidence_profile(teacher.as_ref(), &images, &labels, 3, 0.5);
        assert_eq!(p.low_conf_fraction.len(), 3);
        for (&f, &m) in p.low_conf_fraction.iter().zip(&p.mean_max_prob) {
            assert!((0.0..=1.0).contains(&f));
            assert!((0.0..=1.0).contains(&m));
        }
        assert!(p.low_conf_spread() >= 0.0);
    }
}
