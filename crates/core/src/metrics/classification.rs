//! Top-1 classification accuracy.

use cae_data::dataset::Dataset;
use cae_nn::infer::{self, FreezeOptions};
use cae_nn::module::{Classifier, ForwardCtx};
use cae_tensor::Var;

/// Evaluates top-1 accuracy of `model` on `dataset` (evaluation mode,
/// batched).
///
/// The model is compiled into a graph-free frozen forward once for the
/// whole sweep (it does not change between batches); `CAE_INFER=0` falls
/// back to the legacy autograd eval path.
pub fn top1_accuracy(model: &dyn Classifier, dataset: &Dataset, batch_size: usize) -> f32 {
    let frozen = infer::infer_enabled().then(|| model.freeze_with(&FreezeOptions::from_env()));
    let mut correct = 0usize;
    let n = dataset.len();
    let mut start = 0usize;
    while start < n {
        let len = batch_size.min(n - start);
        let indices: Vec<usize> = (start..start + len).collect();
        let (x, y) = dataset.batch(&indices);
        let pred = match &frozen {
            Some(f) => f.forward(&x).argmax_rows(),
            None => model
                .forward(&Var::constant(x), &mut ForwardCtx::eval())
                .value()
                .argmax_rows(),
        };
        correct += pred.iter().zip(&y).filter(|(p, t)| p == t).count();
        start += len;
    }
    correct as f32 / n.max(1) as f32
}

/// Evaluates top-1 accuracy of an already-frozen classifier on `dataset`
/// (batched). Used where the caller owns the frozen compilation — e.g. the
/// serve bench comparing one student's f32 and int8 freezes on the same
/// eval set.
pub fn frozen_top1_accuracy(
    frozen: &cae_nn::infer::FrozenClassifier,
    dataset: &Dataset,
    batch_size: usize,
) -> f32 {
    let mut correct = 0usize;
    let n = dataset.len();
    let mut start = 0usize;
    while start < n {
        let len = batch_size.min(n - start);
        let indices: Vec<usize> = (start..start + len).collect();
        let (x, y) = dataset.batch(&indices);
        let pred = frozen.forward(&x).argmax_rows();
        correct += pred.iter().zip(&y).filter(|(p, t)| p == t).count();
        start += len;
    }
    correct as f32 / n.max(1) as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use cae_data::world::VisionWorld;
    use cae_data::SplitDataset;
    use cae_nn::models::Arch;
    use cae_tensor::rng::TensorRng;

    #[test]
    fn untrained_model_is_near_chance() {
        let world = VisionWorld::new(5, 8, 1);
        let split = SplitDataset::sample(&world, 8, 10, 0);
        let mut rng = TensorRng::seed_from(0);
        let model = Arch::ResNet18.build(5, 4, &mut rng);
        let acc = top1_accuracy(model.as_ref(), &split.test, 16);
        assert!((0.0..=0.7).contains(&acc), "accuracy {acc}");
    }
}
