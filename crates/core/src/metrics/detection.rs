//! Object-detection mAP (paper Table VI: mAP, mAP@50, mAP@75 and
//! small/medium/large buckets).

use cae_data::dense::BBox;

/// One scored detection.
#[derive(Debug, Clone, Copy)]
pub struct Detection {
    /// Predicted box (with class).
    pub bbox: BBox,
    /// Confidence score.
    pub score: f32,
}

/// Object-size bucket, relative to the image area (scaled analogue of the
/// COCO 32²/96² absolute thresholds).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SizeBucket {
    /// Area below 1/16 of the image.
    Small,
    /// Area in [1/16, 1/4) of the image.
    Medium,
    /// Area at least 1/4 of the image.
    Large,
}

impl SizeBucket {
    /// Classifies a box within an `image_area`-pixel image.
    pub fn of(bbox: &BBox, image_area: usize) -> SizeBucket {
        let a = bbox.area() as f32 / image_area.max(1) as f32;
        if a < 1.0 / 16.0 {
            SizeBucket::Small
        } else if a < 0.25 {
            SizeBucket::Medium
        } else {
            SizeBucket::Large
        }
    }
}

/// Average precision for one class at one IoU threshold over a set of
/// images (all-point interpolation).
fn average_precision(
    per_image: &[(Vec<Detection>, Vec<BBox>)],
    class: usize,
    iou_thr: f32,
    bucket: Option<(SizeBucket, usize)>,
) -> Option<f32> {
    // Collect class ground truth per image, tracking bucket membership.
    let mut gt_boxes: Vec<Vec<(BBox, bool)>> = Vec::new(); // (box, in-bucket)
    let mut total_gt = 0usize;
    for (_, gts) in per_image {
        let boxes: Vec<(BBox, bool)> = gts
            .iter()
            .filter(|b| b.class == class)
            .map(|b| {
                let keep = match bucket {
                    Some((bk, area)) => SizeBucket::of(b, area) == bk,
                    None => true,
                };
                (*b, keep)
            })
            .collect();
        total_gt += boxes.iter().filter(|(_, keep)| *keep).count();
        gt_boxes.push(boxes);
    }
    if total_gt == 0 {
        return None;
    }

    // Flatten predictions with image ids, sorted by descending score.
    let mut preds: Vec<(usize, Detection)> = Vec::new();
    for (img, (dets, _)) in per_image.iter().enumerate() {
        for d in dets.iter().filter(|d| d.bbox.class == class) {
            preds.push((img, *d));
        }
    }
    preds.sort_by(|a, b| b.1.score.partial_cmp(&a.1.score).expect("finite scores"));

    let mut matched: Vec<Vec<bool>> = gt_boxes.iter().map(|g| vec![false; g.len()]).collect();
    let mut tp = 0usize;
    let mut fp = 0usize;
    let mut curve: Vec<(f32, f32)> = Vec::new(); // (recall, precision)
    for (img, det) in preds {
        // Best unmatched ground truth.
        let mut best = None;
        let mut best_iou = iou_thr;
        for (gi, (g, _)) in gt_boxes[img].iter().enumerate() {
            if matched[img][gi] {
                continue;
            }
            let iou = det.bbox.iou(g);
            if iou >= best_iou {
                best_iou = iou;
                best = Some(gi);
            }
        }
        match best {
            Some(gi) => {
                matched[img][gi] = true;
                if gt_boxes[img][gi].1 {
                    tp += 1;
                } else {
                    // Matched an out-of-bucket object: ignore the detection.
                    continue;
                }
            }
            None => fp += 1,
        }
        curve.push((tp as f32 / total_gt as f32, tp as f32 / (tp + fp) as f32));
    }

    // All-point AP: integrate precision envelope over recall.
    let mut ap = 0.0f32;
    let mut prev_recall = 0.0f32;
    let mut i = 0usize;
    while i < curve.len() {
        let recall = curve[i].0;
        // Maximum precision at recall ≥ current.
        let max_prec = curve[i..]
            .iter()
            .map(|&(_, p)| p)
            .fold(0.0f32, f32::max);
        ap += (recall - prev_recall) * max_prec;
        prev_recall = recall;
        // Skip forward to the next recall change.
        while i < curve.len() && curve[i].0 <= recall {
            i += 1;
        }
    }
    Some(ap)
}

/// Mean average precision over classes, at one IoU threshold, optionally
/// restricted to one size bucket.
pub fn mean_ap(
    per_image: &[(Vec<Detection>, Vec<BBox>)],
    num_classes: usize,
    iou_thr: f32,
    bucket: Option<(SizeBucket, usize)>,
) -> f32 {
    let mut total = 0.0f32;
    let mut counted = 0usize;
    for c in 0..num_classes {
        if let Some(ap) = average_precision(per_image, c, iou_thr, bucket) {
            total += ap;
            counted += 1;
        }
    }
    if counted == 0 {
        0.0
    } else {
        total / counted as f32
    }
}

/// COCO-style mAP averaged over IoU thresholds 0.5..0.95 (step 0.05).
pub fn coco_map(per_image: &[(Vec<Detection>, Vec<BBox>)], num_classes: usize) -> f32 {
    let thresholds: Vec<f32> = (0..10).map(|i| 0.5 + 0.05 * i as f32).collect();
    let sum: f32 = thresholds
        .iter()
        .map(|&t| mean_ap(per_image, num_classes, t, None))
        .sum();
    sum / thresholds.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bx(x0: usize, y0: usize, x1: usize, y1: usize, class: usize) -> BBox {
        BBox { x0, y0, x1, y1, class }
    }

    #[test]
    fn perfect_detection_scores_one() {
        let gt = vec![bx(2, 2, 8, 8, 0)];
        let det = vec![Detection { bbox: bx(2, 2, 8, 8, 0), score: 0.9 }];
        let data = vec![(det, gt)];
        assert!((mean_ap(&data, 1, 0.5, None) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn missed_objects_reduce_recall() {
        let gt = vec![bx(0, 0, 4, 4, 0), bx(8, 8, 12, 12, 0)];
        let det = vec![Detection { bbox: bx(0, 0, 4, 4, 0), score: 0.9 }];
        let data = vec![(det, gt)];
        let ap = mean_ap(&data, 1, 0.5, None);
        assert!((ap - 0.5).abs() < 1e-6, "ap {ap}");
    }

    #[test]
    fn false_positives_reduce_precision() {
        let gt = vec![bx(0, 0, 4, 4, 0)];
        let det = vec![
            Detection { bbox: bx(20, 20, 24, 24, 0), score: 0.95 }, // FP first
            Detection { bbox: bx(0, 0, 4, 4, 0), score: 0.9 },
        ];
        let data = vec![(det, gt)];
        let ap = mean_ap(&data, 1, 0.5, None);
        assert!(ap < 1.0 && ap > 0.0, "ap {ap}");
    }

    #[test]
    fn higher_iou_threshold_is_stricter() {
        let gt = vec![bx(0, 0, 10, 10, 0)];
        // Shifted box: IoU ≈ 0.68.
        let det = vec![Detection { bbox: bx(2, 0, 12, 10, 0), score: 0.9 }];
        let data = vec![(det, gt)];
        assert!(mean_ap(&data, 1, 0.5, None) > 0.9);
        assert!(mean_ap(&data, 1, 0.75, None) < 0.1);
    }

    #[test]
    fn size_buckets_partition() {
        let area = 20 * 20;
        assert_eq!(SizeBucket::of(&bx(0, 0, 4, 4, 0), area), SizeBucket::Small);
        assert_eq!(SizeBucket::of(&bx(0, 0, 8, 8, 0), area), SizeBucket::Medium);
        assert_eq!(SizeBucket::of(&bx(0, 0, 12, 12, 0), area), SizeBucket::Large);
    }
}
