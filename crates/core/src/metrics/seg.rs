//! Semantic-segmentation metrics: mean IoU and pixel accuracy.

/// Accumulates a confusion matrix over (prediction, ground-truth) pixel
/// pairs and derives mIoU / pAcc, the metrics used for NYUv2 and ADE-20K in
/// the paper.
#[derive(Debug, Clone)]
pub struct SegConfusion {
    num_classes: usize,
    matrix: Vec<u64>, // [gt * num_classes + pred]
}

impl SegConfusion {
    /// Creates an empty confusion matrix over `num_classes` classes.
    ///
    /// # Panics
    /// Panics if `num_classes` is zero.
    pub fn new(num_classes: usize) -> Self {
        assert!(num_classes > 0, "need at least one class");
        SegConfusion {
            num_classes,
            matrix: vec![0; num_classes * num_classes],
        }
    }

    /// Adds one image's predictions.
    ///
    /// # Panics
    /// Panics if slices differ in length or contain out-of-range ids.
    pub fn add(&mut self, pred: &[usize], gt: &[usize]) {
        assert_eq!(pred.len(), gt.len(), "prediction/label size mismatch");
        for (&p, &g) in pred.iter().zip(gt) {
            assert!(p < self.num_classes && g < self.num_classes, "class id out of range");
            self.matrix[g * self.num_classes + p] += 1;
        }
    }

    /// Pixel accuracy.
    pub fn pixel_accuracy(&self) -> f32 {
        let total: u64 = self.matrix.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let diag: u64 = (0..self.num_classes)
            .map(|c| self.matrix[c * self.num_classes + c])
            .sum();
        diag as f32 / total as f32
    }

    /// Mean intersection-over-union over classes that appear in the ground
    /// truth or predictions.
    pub fn mean_iou(&self) -> f32 {
        let mut total = 0.0f32;
        let mut classes = 0usize;
        for c in 0..self.num_classes {
            let tp = self.matrix[c * self.num_classes + c];
            let gt_total: u64 = (0..self.num_classes)
                .map(|p| self.matrix[c * self.num_classes + p])
                .sum();
            let pred_total: u64 = (0..self.num_classes)
                .map(|g| self.matrix[g * self.num_classes + c])
                .sum();
            let union = gt_total + pred_total - tp;
            if union > 0 {
                total += tp as f32 / union as f32;
                classes += 1;
            }
        }
        if classes == 0 {
            0.0
        } else {
            total / classes as f32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction_scores_one() {
        let mut c = SegConfusion::new(3);
        c.add(&[0, 1, 2, 1], &[0, 1, 2, 1]);
        assert!((c.pixel_accuracy() - 1.0).abs() < 1e-6);
        assert!((c.mean_iou() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn half_right_scores_between() {
        let mut c = SegConfusion::new(2);
        c.add(&[0, 0, 1, 1], &[0, 1, 1, 0]);
        assert!((c.pixel_accuracy() - 0.5).abs() < 1e-6);
        let iou = c.mean_iou();
        assert!(iou > 0.0 && iou < 1.0);
    }

    #[test]
    fn absent_classes_do_not_dilute_miou() {
        let mut c = SegConfusion::new(5);
        c.add(&[0, 0], &[0, 0]); // classes 1..4 never appear
        assert!((c.mean_iou() - 1.0).abs() < 1e-6);
    }
}
