//! The synthetic-image memory bank (paper Fig. 3).
//!
//! Generator updates *write* freshly synthesized batches; student updates
//! *read* random replay batches. The bank is a bounded ring buffer so stale
//! images from early, low-quality generator states age out.

use cae_tensor::rng::TensorRng;
use cae_tensor::Tensor;
use std::collections::VecDeque;

/// Bounded replay buffer of labelled synthetic images.
#[derive(Debug, Clone)]
pub struct MemoryBank {
    entries: VecDeque<(Vec<f32>, usize)>,
    capacity: usize,
    image_dims: Vec<usize>,
}

impl MemoryBank {
    /// Creates a bank holding at most `capacity` images of shape
    /// `image_dims` (CHW).
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize, image_dims: &[usize]) -> Self {
        assert!(capacity > 0, "memory capacity must be positive");
        MemoryBank {
            entries: VecDeque::with_capacity(capacity),
            capacity,
            image_dims: image_dims.to_vec(),
        }
    }

    /// Number of stored images.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the bank is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Capacity in images.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Writes a labelled NCHW batch, evicting the oldest images when full.
    ///
    /// # Panics
    /// Panics if the batch's trailing dimensions differ from the bank's
    /// image shape or `labels.len()` differs from the batch size.
    pub fn push_batch(&mut self, images: &Tensor, labels: &[usize]) {
        let dims = images.shape().dims();
        assert_eq!(
            &dims[1..],
            self.image_dims.as_slice(),
            "batch image shape {:?} differs from bank shape {:?}",
            &dims[1..],
            self.image_dims
        );
        assert_eq!(dims[0], labels.len(), "one label per image required");
        let stride: usize = self.image_dims.iter().product();
        for (i, &label) in labels.iter().enumerate() {
            if self.entries.len() == self.capacity {
                self.entries.pop_front();
            }
            self.entries
                .push_back((images.data()[i * stride..(i + 1) * stride].to_vec(), label));
        }
    }

    /// Draws a uniform random replay batch (with replacement).
    ///
    /// # Panics
    /// Panics if the bank is empty or `batch` is zero.
    pub fn sample_batch(&self, batch: usize, rng: &mut TensorRng) -> (Tensor, Vec<usize>) {
        assert!(!self.is_empty(), "cannot sample from an empty memory bank");
        assert!(batch > 0, "batch size must be positive");
        let stride: usize = self.image_dims.iter().product();
        let mut data = Vec::with_capacity(batch * stride);
        let mut labels = Vec::with_capacity(batch);
        for _ in 0..batch {
            let (img, label) = &self.entries[rng.index(self.entries.len())];
            data.extend_from_slice(img);
            labels.push(*label);
        }
        let mut dims = vec![batch];
        dims.extend_from_slice(&self.image_dims);
        (
            Tensor::from_vec(data, &dims).expect("shape consistent"),
            labels,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(n: usize, fill: f32) -> (Tensor, Vec<usize>) {
        (Tensor::full(&[n, 3, 2, 2], fill), vec![1; n])
    }

    #[test]
    fn push_and_sample_roundtrip() {
        let mut bank = MemoryBank::new(8, &[3, 2, 2]);
        let (imgs, labels) = batch(4, 0.5);
        bank.push_batch(&imgs, &labels);
        assert_eq!(bank.len(), 4);
        let mut rng = TensorRng::seed_from(0);
        let (out, lbl) = bank.sample_batch(2, &mut rng);
        assert_eq!(out.shape().dims(), &[2, 3, 2, 2]);
        assert_eq!(lbl, vec![1, 1]);
        assert!(out.data().iter().all(|&v| v == 0.5));
    }

    #[test]
    fn capacity_evicts_oldest() {
        let mut bank = MemoryBank::new(4, &[3, 2, 2]);
        let (old, l1) = batch(4, 1.0);
        bank.push_batch(&old, &l1);
        let (new, l2) = batch(4, 2.0);
        bank.push_batch(&new, &l2);
        assert_eq!(bank.len(), 4);
        let mut rng = TensorRng::seed_from(0);
        let (out, _) = bank.sample_batch(8, &mut rng);
        assert!(out.data().iter().all(|&v| v == 2.0), "old images must be gone");
    }

    #[test]
    #[should_panic(expected = "empty memory bank")]
    fn sampling_empty_bank_panics() {
        let bank = MemoryBank::new(4, &[3, 2, 2]);
        let mut rng = TensorRng::seed_from(0);
        bank.sample_batch(1, &mut rng);
    }
}
