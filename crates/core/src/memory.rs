//! The synthetic-image memory bank (paper Fig. 3).
//!
//! Generator updates *write* freshly synthesized batches; student updates
//! *read* random replay batches. The bank is a bounded ring buffer so stale
//! images from early, low-quality generator states age out.

use cae_tensor::rng::TensorRng;
use cae_tensor::Tensor;
use std::collections::VecDeque;

/// Bounded replay buffer of labelled synthetic images.
#[derive(Debug, Clone)]
pub struct MemoryBank {
    entries: VecDeque<(Vec<f32>, usize)>,
    capacity: usize,
    image_dims: Vec<usize>,
}

impl MemoryBank {
    /// Creates a bank holding at most `capacity` images of shape
    /// `image_dims` (CHW).
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize, image_dims: &[usize]) -> Self {
        assert!(capacity > 0, "memory capacity must be positive");
        MemoryBank {
            entries: VecDeque::with_capacity(capacity),
            capacity,
            image_dims: image_dims.to_vec(),
        }
    }

    /// Number of stored images.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the bank is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Capacity in images.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Writes a labelled NCHW batch, evicting the oldest images when full.
    /// A batch larger than the capacity is accepted: its oldest images are
    /// evicted in turn, leaving the newest `capacity` images in order.
    ///
    /// # Panics
    /// Panics if the batch's rank or trailing dimensions differ from the
    /// bank's image shape or `labels.len()` differs from the batch size.
    pub fn push_batch(&mut self, images: &Tensor, labels: &[usize]) {
        let dims = images.shape().dims();
        assert_eq!(
            dims.len(),
            1 + self.image_dims.len(),
            "batch must be rank {} (N plus image dims {:?}), got shape {:?}",
            1 + self.image_dims.len(),
            self.image_dims,
            dims
        );
        assert_eq!(
            &dims[1..],
            self.image_dims.as_slice(),
            "batch image shape {:?} differs from bank shape {:?}",
            &dims[1..],
            self.image_dims
        );
        assert_eq!(dims[0], labels.len(), "one label per image required");
        let stride: usize = self.image_dims.iter().product();
        for (i, &label) in labels.iter().enumerate() {
            if self.entries.len() == self.capacity {
                self.entries.pop_front();
            }
            self.entries
                .push_back((images.data()[i * stride..(i + 1) * stride].to_vec(), label));
        }
    }

    /// Draws a uniform random replay batch (with replacement).
    ///
    /// # Panics
    /// Panics if the bank is empty or `batch` is zero.
    pub fn sample_batch(&self, batch: usize, rng: &mut TensorRng) -> (Tensor, Vec<usize>) {
        assert!(!self.is_empty(), "cannot sample from an empty memory bank");
        assert!(batch > 0, "batch size must be positive");
        let stride: usize = self.image_dims.iter().product();
        let mut data = Vec::with_capacity(batch * stride);
        let mut labels = Vec::with_capacity(batch);
        for _ in 0..batch {
            let (img, label) = &self.entries[rng.index(self.entries.len())];
            data.extend_from_slice(img);
            labels.push(*label);
        }
        let mut dims = vec![batch];
        dims.extend_from_slice(&self.image_dims);
        (
            Tensor::from_vec(data, &dims).expect("shape consistent"),
            labels,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(n: usize, fill: f32) -> (Tensor, Vec<usize>) {
        (Tensor::full(&[n, 3, 2, 2], fill), vec![1; n])
    }

    #[test]
    fn push_and_sample_roundtrip() {
        let mut bank = MemoryBank::new(8, &[3, 2, 2]);
        let (imgs, labels) = batch(4, 0.5);
        bank.push_batch(&imgs, &labels);
        assert_eq!(bank.len(), 4);
        let mut rng = TensorRng::seed_from(0);
        let (out, lbl) = bank.sample_batch(2, &mut rng);
        assert_eq!(out.shape().dims(), &[2, 3, 2, 2]);
        assert_eq!(lbl, vec![1, 1]);
        assert!(out.data().iter().all(|&v| v == 0.5));
    }

    #[test]
    fn capacity_evicts_oldest() {
        let mut bank = MemoryBank::new(4, &[3, 2, 2]);
        let (old, l1) = batch(4, 1.0);
        bank.push_batch(&old, &l1);
        let (new, l2) = batch(4, 2.0);
        bank.push_batch(&new, &l2);
        assert_eq!(bank.len(), 4);
        let mut rng = TensorRng::seed_from(0);
        let (out, _) = bank.sample_batch(8, &mut rng);
        assert!(out.data().iter().all(|&v| v == 2.0), "old images must be gone");
    }

    #[test]
    #[should_panic(expected = "empty memory bank")]
    fn sampling_empty_bank_panics() {
        let bank = MemoryBank::new(4, &[3, 2, 2]);
        let mut rng = TensorRng::seed_from(0);
        bank.sample_batch(1, &mut rng);
    }

    #[test]
    fn oversized_batch_keeps_newest_capacity_images_in_order() {
        // One push of 7 images into a 4-slot bank: the batch evicts its own
        // leading images, leaving exactly the newest 4 in push order.
        let mut bank = MemoryBank::new(4, &[1, 1, 1]);
        let data: Vec<f32> = (0..7).map(|v| v as f32).collect();
        let imgs = Tensor::from_vec(data, &[7, 1, 1, 1]).expect("shape");
        let labels: Vec<usize> = (0..7).collect();
        bank.push_batch(&imgs, &labels);
        assert_eq!(bank.len(), 4);
        let stored: Vec<(f32, usize)> = bank.entries.iter().map(|(d, l)| (d[0], *l)).collect();
        assert_eq!(stored, vec![(3.0, 3), (4.0, 4), (5.0, 5), (6.0, 6)]);
    }

    #[test]
    #[should_panic(expected = "batch must be rank 4")]
    fn non_4d_batch_is_rejected() {
        let mut bank = MemoryBank::new(4, &[3, 2, 2]);
        // Right element count (4 × 12 floats), wrong rank: must be caught
        // by the shape check, not silently reinterpreted.
        let flat = Tensor::full(&[4, 12], 0.0);
        bank.push_batch(&flat, &[0, 1, 2, 3]);
    }
}
