//! Paper Figure 2: quality differences in synthetic images.
//!
//! (a) The proportion of low-confidence (teacher max-prob ≤ 0.1·K-adjusted
//! threshold) synthetic images varies strongly across categories under
//! vanilla DFKD — evidence of category-imbalanced synthesis quality.
//! (b/c) Numeric proxy for the qualitative panels: mean teacher max-prob of
//! synthetic images before and after image-level augmentation — the
//! augmentation makes ambiguous images *more* ambiguous.

use crate::baselines::augment::two_views;
use crate::config::{DfkdConfig, ExperimentBudget};
use crate::experiments::scheduler;
use crate::method::MethodSpec;
use crate::metrics::confidence::confidence_profile;
use crate::report::Report;
use crate::teacher::pretrained;
use crate::trainer::DfkdTrainer;
use cae_data::presets::ClassificationPreset;
use cae_nn::models::Arch;
use cae_tensor::rng::TensorRng;

/// Runs the experiment.
pub fn run(budget: &ExperimentBudget) -> Report {
    let preset = ClassificationPreset::C100Sim;
    let split = preset.generate(budget.seed);
    let config = DfkdConfig::default();
    let teacher = pretrained("teacher", Arch::ResNet34, &split.train, budget, config.batch_size);

    // Train a vanilla DFKD generator briefly and harvest its memory bank.
    // This figure is one monolithic cell (a single trainer), so it derives
    // the cell-0 seed directly instead of fanning out.
    let seed = scheduler::cell_seed(budget.seed, 0);
    let mut rng = TensorRng::seed_from(seed ^ 0xf19);
    let student = Arch::ResNet18.build(preset.num_classes(), budget.base_width, &mut rng);
    let class_names = preset.class_names();
    let spec = MethodSpec::vanilla();
    let mut trainer = DfkdTrainer::new(
        teacher.as_ref(),
        student,
        &class_names,
        preset.resolution(),
        &spec,
        config,
        budget,
        seed,
    );
    for _ in 0..budget.total_generator_steps().max(8) {
        trainer.generator_step();
    }
    let (images, labels) = trainer
        .memory()
        .sample_batch(256.min(trainer.memory().len()), &mut rng);

    // Low-confidence threshold: the paper uses 0.1 on 100 classes (10×
    // chance); scale the same factor to our class count.
    let threshold = (10.0 / preset.num_classes() as f32).min(0.95);
    let profile = confidence_profile(
        teacher.as_ref(),
        &images,
        &labels,
        preset.num_classes(),
        threshold,
    );

    let mut report = Report::new(
        "Figure 2",
        "Per-category low-confidence proportion of vanilla-DFKD synthetic images (a); augmentation ambiguity proxy (b/c)",
        &["low-conf frac", "mean max-prob"],
    );
    for (k, name) in class_names.iter().enumerate() {
        report.push_row(
            name,
            [profile.low_conf_fraction[k], profile.mean_max_prob[k]],
        );
    }
    report.push_row(
        "[spread across categories]",
        [profile.low_conf_spread(), profile.mean_low_conf()],
    );

    // Fig. 2c proxy: augmentation lowers teacher confidence.
    let (aug, _) = two_views(&images, &mut rng);
    let aug_profile = confidence_profile(
        teacher.as_ref(),
        &aug,
        &labels,
        preset.num_classes(),
        threshold,
    );
    let mean = |v: &[f32]| v.iter().sum::<f32>() / v.len().max(1) as f32;
    report.push_row(
        "[mean max-prob: raw vs augmented]",
        [mean(&profile.mean_max_prob), mean(&aug_profile.mean_max_prob)],
    );
    report.note("paper shape: low-conf fraction differs strongly across categories (a); augmentation reduces confidence (c)");
    report.note(&format!("budget: {budget:?}"));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_has_one_row_per_category_plus_summaries() {
        let b = ExperimentBudget::smoke();
        let r = run(&b);
        assert_eq!(
            r.rows.len(),
            ClassificationPreset::C100Sim.num_classes() + 2
        );
    }
}
