//! Design-choice ablations beyond the paper's own tables (DESIGN.md calls
//! these out): memory-bank capacity, adversarial-loss weight `λ_adv`, and
//! CEND perturbation magnitude `M`.

use crate::config::{DfkdConfig, ExperimentBudget};
use crate::method::{EmbeddingKind, MethodSpec};
use crate::metrics::classification::top1_accuracy;
use crate::report::Report;
use crate::teacher::pretrained;
use crate::trainer::DfkdTrainer;
use cae_data::presets::ClassificationPreset;
use cae_lm::{LmKind, PromptTemplate};
use cae_nn::models::Arch;
use cae_tensor::rng::TensorRng;

fn run_with(config: DfkdConfig, spec: &MethodSpec, budget: &ExperimentBudget) -> f32 {
    let preset = ClassificationPreset::C10Sim;
    let split = preset.generate(budget.seed);
    let teacher = pretrained("teacher", Arch::ResNet34, &split.train, budget, config.batch_size);
    let mut rng = TensorRng::seed_from(budget.seed ^ 0xab1a);
    let student = Arch::ResNet18.build(preset.num_classes(), budget.base_width, &mut rng);
    let class_names = preset.class_names();
    let mut trainer = DfkdTrainer::new(
        teacher.as_ref(),
        student,
        &class_names,
        preset.resolution(),
        spec,
        config,
        budget,
        budget.seed,
    );
    trainer.run(budget);
    top1_accuracy(trainer.student(), &split.test, 32)
}

/// Runs the ablation suite.
pub fn run(budget: &ExperimentBudget) -> Report {
    let mut report = Report::new(
        "Ablations",
        "Design-choice ablations (CIFAR-10 sim, ResNet-34→ResNet-18, top-1 %)",
        &["Top-1 Acc (%)"],
    );

    // Memory-bank capacity.
    for capacity in [32usize, 128, 512] {
        let config = DfkdConfig { memory_capacity: capacity, ..Default::default() };
        let acc = run_with(config, &MethodSpec::cae_dfkd(4), budget);
        report.push_full_row(&format!("memory capacity = {capacity}"), &[acc * 100.0]);
    }

    // Adversarial weight λ_adv.
    for lambda in [0.0f32, 0.5, 2.0] {
        let config = DfkdConfig { lambda_adv: lambda, ..Default::default() };
        let acc = run_with(config, &MethodSpec::cae_dfkd(4), budget);
        report.push_full_row(&format!("lambda_adv = {lambda}"), &[acc * 100.0]);
    }

    // CEND perturbation magnitude M.
    for magnitude in [0.05f32, 0.3, 1.0] {
        let spec = MethodSpec {
            embedding: EmbeddingKind::Cend {
                lm: LmKind::Clip,
                template: PromptTemplate::ClassName,
                n_sources: 4,
                magnitude,
            },
            ..MethodSpec::cae_dfkd(4)
        };
        let acc = run_with(DfkdConfig::default(), &spec, budget);
        report.push_full_row(&format!("CEND magnitude = {magnitude}"), &[acc * 100.0]);
    }

    report.note("expectation: mid-range memory/λ_adv/magnitude settings dominate the extremes");
    report.note(&format!("budget: {budget:?}"));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[ignore = "minutes at smoke budget; exercised by the bench harness"]
    fn smoke_rows() {
        let r = run(&ExperimentBudget::smoke());
        assert_eq!(r.rows.len(), 9);
    }
}
