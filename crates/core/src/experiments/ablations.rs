//! Design-choice ablations beyond the paper's own tables (DESIGN.md calls
//! these out): memory-bank capacity, adversarial-loss weight `λ_adv`, and
//! CEND perturbation magnitude `M`.

use crate::config::{DfkdConfig, ExperimentBudget};
use crate::experiments::{push_failure_rows, scheduler};
use crate::method::{EmbeddingKind, MethodSpec};
use crate::metrics::classification::top1_accuracy;
use crate::report::Report;
use crate::teacher::pretrained;
use crate::trainer::DfkdTrainer;
use cae_data::presets::ClassificationPreset;
use cae_lm::{LmKind, PromptTemplate};
use cae_nn::models::Arch;
use cae_tensor::rng::TensorRng;

fn run_with(config: DfkdConfig, spec: &MethodSpec, budget: &ExperimentBudget, seed: u64) -> f32 {
    let preset = ClassificationPreset::C10Sim;
    let split = preset.generate(budget.seed);
    let teacher = pretrained("teacher", Arch::ResNet34, &split.train, budget, config.batch_size);
    let mut rng = TensorRng::seed_from(seed ^ 0xab1a);
    let student = Arch::ResNet18.build(preset.num_classes(), budget.base_width, &mut rng);
    let class_names = preset.class_names();
    let mut trainer = DfkdTrainer::new(
        teacher.as_ref(),
        student,
        &class_names,
        preset.resolution(),
        spec,
        config,
        budget,
        seed,
    );
    trainer.run(budget);
    top1_accuracy(trainer.student(), &split.test, 32)
}

/// Runs the ablation suite.
pub fn run(budget: &ExperimentBudget) -> Report {
    let mut report = Report::new(
        "Ablations",
        "Design-choice ablations (CIFAR-10 sim, ResNet-34→ResNet-18, top-1 %)",
        &["Top-1 Acc (%)"],
    );

    // One cell per swept setting, flattened in row order.
    let mut plan: Vec<(String, DfkdConfig, MethodSpec)> = Vec::new();
    for capacity in [32usize, 128, 512] {
        plan.push((
            format!("memory capacity = {capacity}"),
            DfkdConfig { memory_capacity: capacity, ..Default::default() },
            MethodSpec::cae_dfkd(4),
        ));
    }
    for lambda in [0.0f32, 0.5, 2.0] {
        plan.push((
            format!("lambda_adv = {lambda}"),
            DfkdConfig { lambda_adv: lambda, ..Default::default() },
            MethodSpec::cae_dfkd(4),
        ));
    }
    for magnitude in [0.05f32, 0.3, 1.0] {
        let spec = MethodSpec {
            embedding: EmbeddingKind::Cend {
                lm: LmKind::Clip,
                template: PromptTemplate::ClassName,
                n_sources: 4,
                magnitude,
            },
            ..MethodSpec::cae_dfkd(4)
        };
        plan.push((format!("CEND magnitude = {magnitude}"), DfkdConfig::default(), spec));
    }

    let outcomes = scheduler::run_indexed_isolated(budget.seed, plan.len(), |i| {
        let (_, config, spec) = &plan[i];
        run_with(*config, spec, budget, scheduler::cell_seed(budget.seed, i as u64))
    });
    let (accs, failures) = scheduler::split_failures(outcomes);
    for ((label, _, _), acc) in plan.iter().zip(accs) {
        report.push_row(label, [acc.map(|a| a * 100.0)]);
    }
    push_failure_rows(&mut report, &failures);

    report.note("expectation: mid-range memory/λ_adv/magnitude settings dominate the extremes");
    report.note(&format!("budget: {budget:?}"));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[ignore = "minutes at smoke budget; exercised by the bench harness"]
    fn smoke_rows() {
        let r = run(&ExperimentBudget::smoke());
        assert_eq!(r.rows.len(), 9);
    }
}
