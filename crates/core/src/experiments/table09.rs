//! Paper Table IX: CEND's convergence speedup.
//!
//! The paper reports wall-clock epoch time with and without CEND; the
//! underlying mechanism is that a "structured → structured" generator
//! converges in fewer updates. We measure end-to-end: the wall-clock (and
//! epochs) the full DFKD loop needs until the *student* reaches a fixed
//! top-1 accuracy bar, with and without CEND, and report the speedup. The
//! measurement is symmetric across methods (identical student pipeline and
//! quality bar).

use crate::config::{DfkdConfig, ExperimentBudget};
use crate::experiments::{push_failure_rows, scheduler, Pair};
use crate::method::MethodSpec;
use crate::report::Report;
use crate::teacher::pretrained;
use crate::trainer::DfkdTrainer;
use cae_data::presets::ClassificationPreset;
use cae_nn::models::Arch;
use cae_tensor::rng::TensorRng;

/// Convergence measurement for one method on one pair: epochs and seconds
/// until the student reaches `target_top1` on the held-out split.
pub fn convergence_seconds(
    pair: Pair,
    spec: &MethodSpec,
    budget: &ExperimentBudget,
    target_top1: f32,
    max_epochs: usize,
) -> (usize, f32) {
    let preset = ClassificationPreset::C100Sim;
    let split = preset.generate(budget.seed);
    let config = DfkdConfig::default();
    let teacher = pretrained("teacher", pair.teacher, &split.train, budget, config.batch_size);
    let mut rng = TensorRng::seed_from(budget.seed ^ 0x909);
    let student = pair
        .student
        .build(preset.num_classes(), budget.base_width, &mut rng);
    let class_names = preset.class_names();
    let mut trainer = DfkdTrainer::new(
        teacher.as_ref(),
        student,
        &class_names,
        preset.resolution(),
        spec,
        config,
        budget,
        budget.seed,
    );
    let epoch_shape = (
        budget.generator_steps_per_epoch,
        budget.student_steps_per_epoch,
    );
    let (epochs, elapsed) =
        trainer.time_to_student_accuracy(target_top1, &split.test, epoch_shape, max_epochs);
    (epochs, elapsed.as_secs_f32())
}

/// Runs the experiment.
pub fn run(budget: &ExperimentBudget) -> Report {
    let mut report = Report::new(
        "Table IX",
        "DFKD convergence with vs without CEND (time for the student to reach the accuracy bar)",
        &["w/o CEND epochs", "w/o CEND s", "w/ CEND epochs", "w/ CEND s", "SpeedUp ×"],
    );
    // Accuracy bar: 3.5× chance on the 20-class C100 sim.
    let target = 3.5 / ClassificationPreset::C100Sim.num_classes() as f32;
    let max_epochs = (budget.dfkd_epochs * 3).max(6);
    // Single runs are noisy at this scale; average over a few repetitions,
    // each on its own cell-derived seed.
    const REPS: usize = 3;
    let pairs = [
        Pair::new(Arch::ResNet34, Arch::ResNet18),
        Pair::new(Arch::Wrn40x2, Arch::Wrn16x1),
    ];
    // One cell per (pair × repetition × {base, cend}). Cells still go
    // through the scheduler; note that under cell-level parallelism the
    // wall-clock columns measure *contended* time — the base/CEND ratio is
    // preserved because both arms of a repetition contend equally.
    let mut plan = Vec::new();
    for (p, pair) in pairs.iter().enumerate() {
        for rep in 0..REPS {
            let seeded = ExperimentBudget {
                seed: scheduler::cell_seed(budget.seed, (p * REPS + rep) as u64),
                ..*budget
            };
            plan.push((*pair, seeded, false));
            plan.push((*pair, seeded, true));
        }
    }
    let isolated = scheduler::run_indexed_isolated(budget.seed, plan.len(), |i| {
        let (pair, seeded, with_cend) = &plan[i];
        let spec = if *with_cend {
            MethodSpec::cend_only(4)
        } else {
            MethodSpec::vanilla().named("CAE-DFKD w/o CEND")
        };
        convergence_seconds(*pair, &spec, seeded, target, max_epochs)
    });
    let (outcomes, failures) = scheduler::split_failures(isolated);
    for (p, pair) in pairs.iter().enumerate() {
        // Averages need every repetition of both arms; if any cell of this
        // pair failed, the whole row is marked unavailable (the trailing
        // FAILED rows carry the reasons) rather than averaging a biased
        // subset.
        let slots = &outcomes[p * REPS * 2..(p + 1) * REPS * 2];
        if slots.iter().any(Option::is_none) {
            report.push_row(&pair.label(), vec![None; 5]);
            continue;
        }
        let mut acc = [0.0f32; 4]; // base epochs/s, cend epochs/s
        for rep in 0..REPS {
            let at = rep * 2;
            let (be, bs) = slots[at].expect("checked above");
            let (ce, cs) = slots[at + 1].expect("checked above");
            acc[0] += be as f32;
            acc[1] += bs;
            acc[2] += ce as f32;
            acc[3] += cs;
        }
        let n = REPS as f32;
        let (base_epochs, base_s, cend_epochs, cend_s) =
            (acc[0] / n, acc[1] / n, acc[2] / n, acc[3] / n);
        let speedup = if cend_s > 0.0 { base_s / cend_s } else { 1.0 };
        report.push_row(
            &pair.label(),
            [base_epochs, base_s, cend_epochs, cend_s, speedup],
        );
    }
    push_failure_rows(&mut report, &failures);
    report.note("paper shape: w/ CEND converges faster (paper: 1.37×/1.71× epoch-time speedup)");
    report.note(&format!("budget: {budget:?}"));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[ignore = "minutes at smoke budget; exercised by the bench harness"]
    fn smoke_rows() {
        let r = run(&ExperimentBudget::smoke());
        assert_eq!(r.rows.len(), 2);
    }
}
