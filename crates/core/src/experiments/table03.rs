//! Paper Table III: medium resolution (Tiny-ImageNet sim),
//! ResNet-34 → ResNet-18.

use crate::config::ExperimentBudget;
use crate::experiments::{distill, push_failure_rows, scheduler, Pair};
use crate::method::MethodSpec;
use crate::pipeline::run_data_accessible;
use crate::report::Report;
use cae_data::presets::ClassificationPreset;
use cae_nn::models::Arch;

/// Runs the experiment.
pub fn run(budget: &ExperimentBudget) -> Report {
    let preset = ClassificationPreset::TinyImageNetSim;
    let pair = Pair::new(Arch::ResNet34, Arch::ResNet18);
    let mut report = Report::new(
        "Table III",
        "Medium-resolution experiments (Tiny-ImageNet sim, ResNet-34→ResNet-18, top-1 %)",
        &["Top-1 Acc (%)"],
    );
    let specs = [
        MethodSpec::vanilla(),
        MethodSpec::cmi_like(),
        MethodSpec::nayer_like(),
        MethodSpec::cae_dfkd(4),
    ];
    // Cells: the two data-accessible references, then one per method.
    let mut cells: Vec<scheduler::Cell<'_, f32>> = vec![
        Box::new(move || run_data_accessible(preset, pair.teacher, budget).1),
        Box::new(move || run_data_accessible(preset, pair.student, budget).1),
    ];
    for spec in &specs {
        let idx = cells.len() as u64;
        cells.push(Box::new(move || {
            distill(preset, pair, spec, budget, idx).student_top1
        }));
    }
    let outcomes = scheduler::run_cells_isolated(budget.seed, cells);
    let (accs, failures) = scheduler::split_failures(outcomes);
    report.push_row("Teacher", [accs[0].map(|a| a * 100.0)]);
    report.push_row("Student", [accs[1].map(|a| a * 100.0)]);
    for (spec, acc) in specs.iter().zip(&accs[2..]) {
        report.push_row(&spec.name, [acc.map(|a| a * 100.0)]);
    }
    push_failure_rows(&mut report, &failures);
    report.note("paper shape: CAE-DFKD > NAYER > CMI ≫ weaker baselines, approaching the data-accessible Student");
    report.note("rows PREKD/MBDFKD/MAD/KAKR/SpaceShipNet/KDCI are cited numbers and not re-implemented");
    report.note(&format!("budget: {budget:?}"));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[ignore = "minutes at smoke budget; exercised by the bench harness"]
    fn smoke_rows() {
        let r = run(&ExperimentBudget::smoke());
        assert_eq!(r.rows.len(), 6);
    }
}
