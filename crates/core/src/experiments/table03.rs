//! Paper Table III: medium resolution (Tiny-ImageNet sim),
//! ResNet-34 → ResNet-18.

use crate::config::ExperimentBudget;
use crate::experiments::{distill, Pair};
use crate::method::MethodSpec;
use crate::pipeline::run_data_accessible;
use crate::report::Report;
use cae_data::presets::ClassificationPreset;
use cae_nn::models::Arch;

/// Runs the experiment.
pub fn run(budget: &ExperimentBudget) -> Report {
    let preset = ClassificationPreset::TinyImageNetSim;
    let pair = Pair::new(Arch::ResNet34, Arch::ResNet18);
    let mut report = Report::new(
        "Table III",
        "Medium-resolution experiments (Tiny-ImageNet sim, ResNet-34→ResNet-18, top-1 %)",
        &["Top-1 Acc (%)"],
    );
    let (_, t_acc) = run_data_accessible(preset, pair.teacher, budget);
    let (_, s_acc) = run_data_accessible(preset, pair.student, budget);
    report.push_full_row("Teacher", &[t_acc * 100.0]);
    report.push_full_row("Student", &[s_acc * 100.0]);
    for spec in [
        MethodSpec::vanilla(),
        MethodSpec::cmi_like(),
        MethodSpec::nayer_like(),
        MethodSpec::cae_dfkd(4),
    ] {
        let run = distill(preset, pair, &spec, budget);
        report.push_full_row(&spec.name, &[run.student_top1 * 100.0]);
    }
    report.note("paper shape: CAE-DFKD > NAYER > CMI ≫ weaker baselines, approaching the data-accessible Student");
    report.note("rows PREKD/MBDFKD/MAD/KAKR/SpaceShipNet/KDCI are cited numbers and not re-implemented");
    report.note(&format!("budget: {budget:?}"));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[ignore = "minutes at smoke budget; exercised by the bench harness"]
    fn smoke_rows() {
        let r = run(&ExperimentBudget::smoke());
        assert_eq!(r.rows.len(), 6);
    }
}
