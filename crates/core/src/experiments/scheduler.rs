//! Cell-parallel experiment scheduler.
//!
//! A table runner's unit of work is a *cell*: one independent
//! (teacher→student pair × preset × method) distillation run. Cells share
//! no mutable state — each owns its models, optimizers and RNG, and the
//! pretrained-teacher cache hands out private copies — so a runner can fan
//! its cells out over the persistent [`cae_tensor::pool`] worker threads.
//!
//! Composition with kernel-level parallelism is automatic: inside a pool
//! task, nested [`cae_tensor::pool::parallel_for`] calls degrade to inline
//! execution, so a parallel table run spends every core on distinct cells
//! while a serial run (one cell, `CAE_CELL_PARALLEL=0`, or a single-core
//! host) spends them inside each cell's kernels.
//!
//! # Determinism
//!
//! Results are byte-identical regardless of execution order or thread
//! count: every cell derives its RNG streams from
//! [`cell_seed`]`(budget.seed, cell_index)` and writes only to its own
//! result slot, and runners assemble rows from the returned vector in
//! cell-index order.

use cae_tensor::pool;
use std::sync::Mutex;

/// Derives a per-cell RNG seed from the experiment seed and the cell's
/// index within its runner (splitmix64-style finalizer, so neighbouring
/// indices produce uncorrelated streams and cell 0 differs from the base
/// seed itself).
pub fn cell_seed(base: u64, cell_index: u64) -> u64 {
    let mut z = base
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(cell_index.wrapping_mul(0xD1B5_4A32_D192_ED03));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Whether cell-level parallelism is enabled (`CAE_CELL_PARALLEL=0` or
/// `off` forces serial cell execution; kernels then parallelize instead).
/// Read per call so tests can toggle it within one process.
pub fn cell_parallelism_enabled() -> bool {
    !matches!(
        std::env::var("CAE_CELL_PARALLEL").as_deref(),
        Ok("0") | Ok("off") | Ok("false")
    )
}

/// Runs every cell closure and returns their results in cell order.
///
/// Cells run concurrently on the tensor pool when it has more than one
/// thread and [`cell_parallelism_enabled`] holds; otherwise they run
/// serially on the calling thread (in index order, with kernel-level
/// parallelism intact). Heterogeneous cells can be passed as
/// `Vec<Box<dyn FnOnce() -> T + Send>>`.
///
/// # Panics
/// Propagates a panic if any cell panics.
pub fn run_cells<T, F>(cells: Vec<F>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let n = cells.len();
    if n <= 1 || pool::max_parallelism() == 1 || !cell_parallelism_enabled() {
        return cells.into_iter().map(|cell| cell()).collect();
    }
    let pending: Vec<Mutex<Option<F>>> = cells.into_iter().map(|c| Mutex::new(Some(c))).collect();
    let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    pool::parallel_for(n, |i| {
        let cell = pending[i]
            .lock()
            .expect("cell slot lock poisoned")
            .take()
            .expect("cell executed twice");
        let out = cell();
        *results[i].lock().expect("cell result lock poisoned") = Some(out);
    });
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("cell result lock poisoned")
                .expect("cell produced no result")
        })
        .collect()
}

/// [`run_cells`] with per-cell trace spans: each cell `i` executes inside a
/// `scheduler.cell` span tagged with its index and the RNG seed
/// [`cell_seed`]`(base_seed, i)` the runner derives for it, so a drained
/// trace attributes every interval to a concrete (cell, seed) pair even
/// when cells interleave across pool workers.
pub fn run_cells_seeded<'a, T>(base_seed: u64, cells: Vec<Box<dyn FnOnce() -> T + Send + 'a>>) -> Vec<T>
where
    T: Send + 'a,
{
    let traced: Vec<Box<dyn FnOnce() -> T + Send + 'a>> = cells
        .into_iter()
        .enumerate()
        .map(|(i, cell)| {
            Box::new(move || {
                let _sp = cell_span(base_seed, i);
                cell()
            }) as Box<dyn FnOnce() -> T + Send + 'a>
        })
        .collect();
    run_cells(traced)
}

/// [`run_indexed`] with the same per-cell trace spans as
/// [`run_cells_seeded`].
pub fn run_indexed_seeded<T, F>(base_seed: u64, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_indexed(n, move |i| {
        let _sp = cell_span(base_seed, i);
        f(i)
    })
}

fn cell_span(base_seed: u64, i: usize) -> cae_trace::SpanGuard {
    cae_trace::span_with(
        "scheduler.cell",
        &[
            ("cell", (i as u64).into()),
            ("cell_seed", cell_seed(base_seed, i as u64).into()),
        ],
    )
}

/// Indexed convenience wrapper: runs `f(0..n)` as cells and collects the
/// results in index order.
pub fn run_indexed<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if n <= 1 || pool::max_parallelism() == 1 || !cell_parallelism_enabled() {
        return (0..n).map(f).collect();
    }
    let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    pool::parallel_for(n, |i| {
        let out = f(i);
        *results[i].lock().expect("cell result lock poisoned") = Some(out);
    });
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("cell result lock poisoned")
                .expect("cell produced no result")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cae_tensor::rng::TensorRng;

    #[test]
    fn cell_seeds_are_distinct_and_stable() {
        let seeds: Vec<u64> = (0..64).map(|i| cell_seed(42, i)).collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds.len(), "cell seeds must not collide");
        assert_eq!(cell_seed(42, 7), cell_seed(42, 7), "seeds are pure");
        assert_ne!(cell_seed(42, 0), 42, "cell 0 must not reuse the base seed");
    }

    #[test]
    fn run_cells_preserves_order_and_results() {
        let cells: Vec<Box<dyn FnOnce() -> u64 + Send>> = (0..23u64)
            .map(|i| Box::new(move || i * i) as Box<dyn FnOnce() -> u64 + Send>)
            .collect();
        let out = run_cells(cells);
        assert_eq!(out, (0..23u64).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn run_indexed_matches_serial_execution_with_rng_work() {
        // Each cell draws from its own seeded RNG; parallel and serial
        // execution must agree bit-for-bit.
        let work = |i: usize| {
            let mut rng = TensorRng::seed_from(cell_seed(7, i as u64));
            let t = rng.normal_tensor(&[17], 0.0, 1.0);
            t.data().iter().map(|v| v.to_bits() as u64).sum::<u64>()
        };
        let parallel = run_indexed(33, work);
        let serial: Vec<u64> = (0..33).map(work).collect();
        assert_eq!(parallel, serial);
    }

    #[test]
    fn seeded_cells_trace_the_seed_they_actually_use() {
        // Each cell reports the seed it derives for itself (exactly what
        // `distill` does); the scheduler's span tag must agree.
        let base = 0xBADC_0FFE_E0DD_F00D_u64;
        cae_trace::force_enabled(true);
        let used: Vec<u64> = run_indexed_seeded(base, 6, |i| cell_seed(base, i as u64));
        let trace = cae_trace::drain();
        cae_trace::reset_to_env();
        for (i, &used_seed) in used.iter().enumerate() {
            let tagged = trace.spans_named("scheduler.cell").any(|s| {
                s.tags.contains(&("cell", cae_trace::TagValue::U64(i as u64)))
                    && s.tags.contains(&("cell_seed", cae_trace::TagValue::U64(used_seed)))
            });
            assert!(
                tagged,
                "cell {i} has no scheduler.cell span tagged with its seed {used_seed:#x}"
            );
        }
    }

    #[test]
    fn nested_kernel_parallelism_degrades_inline() {
        // Cells may call parallel_for internally; this must not deadlock.
        let out = run_indexed(8, |i| {
            let acc = std::sync::atomic::AtomicUsize::new(0);
            cae_tensor::pool::parallel_for(4, |j| {
                acc.fetch_add(i + j, std::sync::atomic::Ordering::Relaxed);
            });
            acc.into_inner()
        });
        let expect: Vec<usize> = (0..8).map(|i| 4 * i + 6).collect();
        assert_eq!(out, expect);
    }
}
