//! Cell-parallel experiment scheduler with fault isolation.
//!
//! A table runner's unit of work is a *cell*: one independent
//! (teacher→student pair × preset × method) distillation run. Cells share
//! no mutable state — each owns its models, optimizers and RNG, and the
//! pretrained-teacher cache hands out private copies — so a runner can fan
//! its cells out over the persistent [`cae_tensor::pool`] worker threads.
//!
//! Composition with kernel-level parallelism is cooperative: cells are
//! submitted with [`cae_tensor::pool::JobOpts::cell`] and a per-cell
//! **thread budget** of `ceil(pool_threads / cells)` (overridable via
//! `CAE_CELL_THREAD_BUDGET`), so when cells outnumber threads every core
//! runs a distinct cell with its kernels inline, and when threads
//! outnumber cells the surplus workers fan out *inside* the cells'
//! kernels instead of idling. A serial run (one cell,
//! `CAE_CELL_PARALLEL=0`, or a single-core host) spends every thread
//! inside each cell's kernels.
//!
//! # Determinism
//!
//! Results are byte-identical regardless of execution order or thread
//! count: every cell derives its RNG streams from
//! [`cell_seed`]`(budget.seed, cell_index)` and writes only to its own
//! result slot, and runners assemble rows from the returned vector in
//! cell-index order.
//!
//! # Fault isolation
//!
//! Long many-cell runs should degrade gracefully, not abort: generator
//! DFKD training is unstable early on, so partial failure is routine. The
//! `*_isolated` runners wrap every cell in `catch_unwind` and return
//! `Result<T, CellError>` per cell — a panicking cell costs exactly its
//! own slot, never its siblings' completed work. Failed cells may be
//! retried (`CAE_CELL_RETRIES`, default 0); a retry re-runs the cell with
//! the *identical* derived seed, so a run whose retries all succeed is
//! byte-identical to a fault-free run. `CAE_FAULT_INJECT=<prob>:<seed>`
//! deterministically injects panics at cell-attempt entry (consulted via a
//! per-(cell, attempt) seeded RNG before the cell does any work) to make
//! the whole recovery path testable end to end.

use cae_tensor::pool;
use cae_tensor::rng::TensorRng;
use std::any::Any;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Mutex, PoisonError};

/// A boxed retryable cell: unlike the `FnOnce` cells of [`run_cells`], an
/// isolated cell may be invoked again after a panic, so it must be `Fn`
/// (and `Sync`, because retries happen on pool worker threads).
pub type Cell<'a, T> = Box<dyn Fn() -> T + Send + Sync + 'a>;

/// Derives a per-cell RNG seed from the experiment seed and the cell's
/// index within its runner (splitmix64-style finalizer, so neighbouring
/// indices produce uncorrelated streams and cell 0 differs from the base
/// seed itself).
pub fn cell_seed(base: u64, cell_index: u64) -> u64 {
    let mut z = base
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(cell_index.wrapping_mul(0xD1B5_4A32_D192_ED03));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// In-process override of the `CAE_CELL_PARALLEL` snapshot: `0` = follow
/// the config, `1` = forced serial, `2` = forced parallel.
static FORCED_CELL_PARALLEL: std::sync::atomic::AtomicU8 = std::sync::atomic::AtomicU8::new(0);

/// Forces cell parallelism on or off for this process, overriding the
/// `CAE_CELL_PARALLEL` snapshot in [`crate::config::Config`]; `None`
/// restores the config value. This is the supported way for one process to
/// compare serial and parallel scheduling (the serial-vs-parallel
/// byte-identity test, the profiler's serial mode) — the environment is
/// parsed once per process and mutating it after startup has no effect.
pub fn force_cell_parallelism(value: Option<bool>) {
    let encoded = match value {
        None => 0,
        Some(false) => 1,
        Some(true) => 2,
    };
    FORCED_CELL_PARALLEL.store(encoded, std::sync::atomic::Ordering::Relaxed);
}

/// Whether cell-level parallelism is enabled: an in-process
/// [`force_cell_parallelism`] override if one is set, otherwise the
/// `CAE_CELL_PARALLEL` snapshot (disabled by `0`, `off`, `false` or `no`,
/// case-insensitive; any other value or unset leaves it enabled, and
/// kernels then parallelize inside each cell instead).
pub fn cell_parallelism_enabled() -> bool {
    match FORCED_CELL_PARALLEL.load(std::sync::atomic::Ordering::Relaxed) {
        1 => false,
        2 => true,
        _ => crate::config::Config::get().cell_parallel,
    }
}

/// Whether a `CAE_CELL_PARALLEL` value requests serial cells. The accepted
/// disabling values are `0`, `off`, `false` and `no`, case-insensitively.
pub(crate) fn parallelism_disabled_by(value: &str) -> bool {
    matches!(
        value.trim().to_ascii_lowercase().as_str(),
        "0" | "off" | "false" | "no"
    )
}

/// One cell's failure: which cell, the exact seed it ran under (so the
/// failure is reproducible in isolation), the original panic message, and —
/// when tracing was enabled — a training-health verdict over the series the
/// failing attempt recorded before it died.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellError {
    /// Index of the failed cell within its runner.
    pub cell: usize,
    /// The derived RNG seed the cell ran (and was retried) under.
    pub seed: u64,
    /// The original panic message (not a generic re-panic).
    pub message: String,
    /// [`cae_trace::health::HealthReport::summary`] over the failing
    /// attempt's series, present only when tracing was enabled (so
    /// untraced reports stay byte-identical).
    pub health: Option<String>,
}

impl fmt::Display for CellError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cell {} seed {:#x}: {}", self.cell, self.seed, self.message)?;
        if let Some(health) = &self.health {
            write!(f, " [health: {health}]")?;
        }
        Ok(())
    }
}

impl std::error::Error for CellError {}

/// Renders a panic payload's message: `&str` and `String` payloads pass
/// through verbatim, anything else degrades to a placeholder.
pub fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_owned()
    }
}

/// Retry/fault-injection policy, resolved **once per scheduler call on the
/// calling thread** (pool workers never consult it), so one run sees one
/// coherent policy. The default comes from the `CAE_CELL_RETRIES` /
/// `CAE_FAULT_INJECT` snapshot in [`crate::config::Config`]; harnesses
/// comparing policies within one process install explicit ones via
/// [`force_fault_policy`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPolicy {
    /// How many times a failed cell is re-run (`CAE_CELL_RETRIES`).
    pub retries: usize,
    /// Deterministic fault injection as `(probability, seed)`
    /// (`CAE_FAULT_INJECT=<prob>:<seed>`), or `None`.
    pub inject: Option<(f32, u64)>,
}

/// In-process override installed by [`force_fault_policy`].
static FORCED_FAULT_POLICY: Mutex<Option<FaultPolicy>> = Mutex::new(None);

/// Forces the retry/fault-injection policy for subsequent scheduler calls
/// in this process, overriding the environment snapshot; `None` restores
/// it. Replaces the old pattern of mutating `CAE_FAULT_INJECT` /
/// `CAE_CELL_RETRIES` between runs, which stopped working once the
/// environment became a parse-once snapshot.
pub fn force_fault_policy(policy: Option<FaultPolicy>) {
    *FORCED_FAULT_POLICY.lock().unwrap_or_else(PoisonError::into_inner) = policy;
}

impl FaultPolicy {
    /// No retries, no injection.
    pub const NONE: FaultPolicy = FaultPolicy { retries: 0, inject: None };

    /// The policy for the next scheduler call: the
    /// [`force_fault_policy`] override if installed, else the config
    /// snapshot.
    fn resolve() -> Self {
        if let Some(forced) = *FORCED_FAULT_POLICY.lock().unwrap_or_else(PoisonError::into_inner) {
            return forced;
        }
        let config = crate::config::Config::get();
        FaultPolicy {
            retries: config.cell_retries,
            inject: config.fault_inject,
        }
    }

    /// Whether attempt `attempt` of the cell seeded `seed` should fail.
    /// Consulted via a fresh RNG derived from the cell's own seed (plus the
    /// injection seed and attempt number), so the verdict is a pure
    /// function of `(inject, seed, attempt)` — independent of scheduling —
    /// and the cell's working RNG stream is never perturbed.
    fn injects_fault(&self, seed: u64, attempt: usize) -> bool {
        let Some((prob, fault_seed)) = self.inject else {
            return false;
        };
        let mut rng = TensorRng::seed_from(cell_seed(seed ^ fault_seed, attempt as u64));
        rng.uniform() < prob
    }
}

/// Parses a `CAE_FAULT_INJECT` value of the form `<prob>:<seed>` (e.g.
/// `0.2:7`). Probabilities are clamped to `[0, 1]`; non-positive
/// probabilities and malformed values disable injection.
pub(crate) fn parse_fault_inject(value: &str) -> Option<(f32, u64)> {
    let (prob, seed) = value.split_once(':')?;
    let prob = prob.trim().parse::<f32>().ok()?;
    let seed = seed.trim().parse::<u64>().ok()?;
    (prob > 0.0).then_some((prob.min(1.0), seed))
}

/// Runs one cell attempt-by-attempt under `policy`: injected faults and
/// real panics are caught, counted (`cell.failed`, and `cell.retried` per
/// re-run), and retried up to `policy.retries` times with the identical
/// seed. Returns the first success, or a [`CellError`] carrying the *last*
/// attempt's original panic message once retries are exhausted.
fn run_isolated<T>(policy: &FaultPolicy, cell: usize, seed: u64, body: &dyn Fn() -> T) -> Result<T, CellError> {
    let mut attempt = 0;
    loop {
        // Marks this thread's series buffer so a failed attempt's partial
        // training curves can be (a) removed — retries must not pollute the
        // drained trace with duplicate steps — and (b) analyzed for a
        // health verdict explaining the failure.
        let series_mark = cae_trace::thread_series_mark();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            if policy.injects_fault(seed, attempt) {
                panic!("injected fault (cell {cell}, seed {seed:#x}, attempt {attempt})");
            }
            body()
        }));
        match outcome {
            Ok(value) => return Ok(value),
            Err(payload) => {
                cae_trace::counter("cell.failed", 1);
                let attempt_series = cae_trace::take_thread_series_since(series_mark);
                if attempt < policy.retries {
                    attempt += 1;
                    cae_trace::counter("cell.retried", 1);
                    continue;
                }
                let health = cae_trace::enabled().then(|| {
                    cae_trace::health::HealthMonitor::default()
                        .check_events(&attempt_series)
                        .summary()
                });
                return Err(CellError {
                    cell,
                    seed,
                    message: panic_message(payload.as_ref()),
                    health,
                });
            }
        }
    }
}

/// Runs every cell closure and returns their results in cell order.
///
/// Cells run concurrently on the tensor pool when it has more than one
/// thread and [`cell_parallelism_enabled`] holds; otherwise they run
/// serially on the calling thread (in index order, with kernel-level
/// parallelism intact). Heterogeneous cells can be passed as
/// `Vec<Box<dyn FnOnce() -> T + Send>>`.
///
/// # Panics
/// Re-raises the first panicking cell's original payload (see
/// [`cae_tensor::pool::parallel_for`]); sibling results are lost, so
/// prefer [`run_cells_isolated`] for long fault-prone runs.
pub fn run_cells<T, F>(cells: Vec<F>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let n = cells.len();
    if n <= 1 || pool::max_parallelism() == 1 || !cell_parallelism_enabled() {
        return cells.into_iter().map(|cell| cell()).collect();
    }
    let pending: Vec<Mutex<Option<F>>> = cells.into_iter().map(|c| Mutex::new(Some(c))).collect();
    let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    pool::parallel_for_with(pool::JobOpts::cell(cell_thread_budget(n)), n, |i| {
        let cell = pending[i]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take()
            .expect("cell executed twice");
        let out = cell();
        *results[i].lock().unwrap_or_else(PoisonError::into_inner) = Some(out);
    });
    collect_results(results)
}

/// The thread budget each parallel cell's kernels may use: an explicit
/// `CAE_CELL_THREAD_BUDGET` wins, otherwise `ceil(pool / cells)` — 1 when
/// cells saturate the pool (kernels degrade inline, the old behavior), more
/// when cells are scarcer than threads so surplus workers help inside the
/// cells instead of idling.
fn cell_thread_budget(n_cells: usize) -> usize {
    crate::config::Config::get()
        .cell_thread_budget
        .unwrap_or_else(|| auto_cell_budget(pool::max_parallelism(), n_cells))
}

/// The derived per-cell budget for a pool of `threads` running `n_cells`.
pub(crate) fn auto_cell_budget(threads: usize, n_cells: usize) -> usize {
    threads.div_ceil(n_cells.max(1)).max(1)
}

/// Collects per-cell result slots in order, recovering poisoned slot locks
/// (the value, not the lock, is the source of truth) and naming the cell —
/// instead of surfacing lock-poisoning noise — if one produced no result.
fn collect_results<T>(results: Vec<Mutex<Option<T>>>) -> Vec<T> {
    results
        .into_iter()
        .enumerate()
        .map(|(i, m)| {
            m.into_inner()
                .unwrap_or_else(PoisonError::into_inner)
                .unwrap_or_else(|| panic!("cell {i} produced no result"))
        })
        .collect()
}

/// [`run_cells`] with per-cell trace spans: each cell `i` executes inside a
/// `scheduler.cell` span tagged with its index and the RNG seed
/// [`cell_seed`]`(base_seed, i)` the runner derives for it, so a drained
/// trace attributes every interval to a concrete (cell, seed) pair even
/// when cells interleave across pool workers.
pub fn run_cells_seeded<'a, T>(base_seed: u64, cells: Vec<Box<dyn FnOnce() -> T + Send + 'a>>) -> Vec<T>
where
    T: Send + 'a,
{
    let traced: Vec<Box<dyn FnOnce() -> T + Send + 'a>> = cells
        .into_iter()
        .enumerate()
        .map(|(i, cell)| {
            Box::new(move || {
                let _sp = cell_span(base_seed, i);
                cell()
            }) as Box<dyn FnOnce() -> T + Send + 'a>
        })
        .collect();
    run_cells(traced)
}

/// [`run_indexed`] with the same per-cell trace spans as
/// [`run_cells_seeded`].
pub fn run_indexed_seeded<T, F>(base_seed: u64, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_indexed(n, move |i| {
        let _sp = cell_span(base_seed, i);
        f(i)
    })
}

/// Fault-isolated [`run_cells_seeded`]: every cell runs inside
/// `catch_unwind` with the retry/fault-injection policy from the
/// environment (`CAE_CELL_RETRIES`, `CAE_FAULT_INJECT`), and the result
/// vector carries one `Result` per cell in cell order — a panicking cell
/// never aborts its siblings, and completed work is always returned.
pub fn run_cells_isolated<'a, T>(base_seed: u64, cells: Vec<Cell<'a, T>>) -> Vec<Result<T, CellError>>
where
    T: Send + 'a,
{
    let policy = FaultPolicy::resolve();
    run_cells_isolated_with(&policy, base_seed, cells)
}

fn run_cells_isolated_with<'a, T>(
    policy: &FaultPolicy,
    base_seed: u64,
    cells: Vec<Cell<'a, T>>,
) -> Vec<Result<T, CellError>>
where
    T: Send + 'a,
{
    let cells = &cells;
    run_indexed(cells.len(), move |i| {
        let _sp = cell_span(base_seed, i);
        run_isolated(policy, i, cell_seed(base_seed, i as u64), &*cells[i])
    })
}

/// Fault-isolated [`run_indexed_seeded`] (see [`run_cells_isolated`]).
pub fn run_indexed_isolated<T, F>(base_seed: u64, n: usize, f: F) -> Vec<Result<T, CellError>>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let policy = FaultPolicy::resolve();
    run_indexed_isolated_with(&policy, base_seed, n, f)
}

fn run_indexed_isolated_with<T, F>(
    policy: &FaultPolicy,
    base_seed: u64,
    n: usize,
    f: F,
) -> Vec<Result<T, CellError>>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_indexed(n, move |i| {
        let _sp = cell_span(base_seed, i);
        run_isolated(policy, i, cell_seed(base_seed, i as u64), &|| f(i))
    })
}

/// Splits isolated cell outcomes into per-cell optional values (`None` for
/// failed cells, in cell order) plus the collected failures, so runners
/// can render partial tables and report what broke.
pub fn split_failures<T>(results: Vec<Result<T, CellError>>) -> (Vec<Option<T>>, Vec<CellError>) {
    let mut failures = Vec::new();
    let values = results
        .into_iter()
        .map(|r| match r {
            Ok(v) => Some(v),
            Err(e) => {
                failures.push(e);
                None
            }
        })
        .collect();
    (values, failures)
}

fn cell_span(base_seed: u64, i: usize) -> cae_trace::SpanGuard {
    cae_trace::span_with(
        "scheduler.cell",
        &[
            ("cell", (i as u64).into()),
            ("cell_seed", cell_seed(base_seed, i as u64).into()),
        ],
    )
}

/// Indexed convenience wrapper: runs `f(0..n)` as cells and collects the
/// results in index order.
pub fn run_indexed<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if n <= 1 || pool::max_parallelism() == 1 || !cell_parallelism_enabled() {
        return (0..n).map(f).collect();
    }
    let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    pool::parallel_for_with(pool::JobOpts::cell(cell_thread_budget(n)), n, |i| {
        let out = f(i);
        *results[i].lock().unwrap_or_else(PoisonError::into_inner) = Some(out);
    });
    collect_results(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cae_tensor::rng::TensorRng;

    #[test]
    fn auto_cell_budget_splits_the_pool_ceil_wise() {
        // Cells saturate the pool: kernels inline (budget 1).
        assert_eq!(auto_cell_budget(4, 4), 1);
        assert_eq!(auto_cell_budget(4, 70), 1);
        // Threads outnumber cells: surplus workers help inside cells.
        assert_eq!(auto_cell_budget(4, 2), 2);
        assert_eq!(auto_cell_budget(4, 3), 2);
        assert_eq!(auto_cell_budget(8, 3), 3);
        // Degenerate inputs clamp sanely.
        assert_eq!(auto_cell_budget(1, 5), 1);
        assert_eq!(auto_cell_budget(4, 0), 4);
    }

    #[test]
    fn cell_seeds_are_distinct_and_stable() {
        let seeds: Vec<u64> = (0..64).map(|i| cell_seed(42, i)).collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds.len(), "cell seeds must not collide");
        assert_eq!(cell_seed(42, 7), cell_seed(42, 7), "seeds are pure");
        assert_ne!(cell_seed(42, 0), 42, "cell 0 must not reuse the base seed");
    }

    #[test]
    fn run_cells_preserves_order_and_results() {
        let cells: Vec<Box<dyn FnOnce() -> u64 + Send>> = (0..23u64)
            .map(|i| Box::new(move || i * i) as Box<dyn FnOnce() -> u64 + Send>)
            .collect();
        let out = run_cells(cells);
        assert_eq!(out, (0..23u64).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn run_indexed_matches_serial_execution_with_rng_work() {
        // Each cell draws from its own seeded RNG; parallel and serial
        // execution must agree bit-for-bit.
        let work = |i: usize| {
            let mut rng = TensorRng::seed_from(cell_seed(7, i as u64));
            let t = rng.normal_tensor(&[17], 0.0, 1.0);
            t.data().iter().map(|v| v.to_bits() as u64).sum::<u64>()
        };
        let parallel = run_indexed(33, work);
        let serial: Vec<u64> = (0..33).map(work).collect();
        assert_eq!(parallel, serial);
    }

    #[test]
    fn seeded_cells_trace_the_seed_they_actually_use() {
        // Each cell reports the seed it derives for itself (exactly what
        // `distill` does); the scheduler's span tag must agree.
        let base = 0xBADC_0FFE_E0DD_F00D_u64;
        let _guard = crate::trace_test_lock();
        cae_trace::force_enabled(true);
        let used: Vec<u64> = run_indexed_seeded(base, 6, |i| cell_seed(base, i as u64));
        let trace = cae_trace::drain();
        cae_trace::reset_to_env();
        for (i, &used_seed) in used.iter().enumerate() {
            let tagged = trace.spans_named("scheduler.cell").any(|s| {
                s.tags.contains(&("cell", cae_trace::TagValue::U64(i as u64)))
                    && s.tags.contains(&("cell_seed", cae_trace::TagValue::U64(used_seed)))
            });
            assert!(
                tagged,
                "cell {i} has no scheduler.cell span tagged with its seed {used_seed:#x}"
            );
        }
    }

    #[test]
    fn failed_cell_carries_a_health_verdict_and_removes_its_series() {
        let _guard = crate::trace_test_lock();
        cae_trace::force_enabled(true);
        let mark_before = cae_trace::thread_series_mark();
        let err = run_isolated::<()>(&FaultPolicy::NONE, 3, 0x77, &|| {
            cae_trace::series("student.loss", 0, 1.0);
            cae_trace::series("student.loss", 1, f64::NAN);
            panic!("loss went non-finite");
        })
        .expect_err("cell must fail");
        let mark_after = cae_trace::thread_series_mark();
        cae_trace::reset_to_env();
        assert_eq!(
            err.health.as_deref(),
            Some("student.loss: non-finite at step 1"),
            "the verdict must name the pathology"
        );
        assert!(
            err.to_string().ends_with("[health: student.loss: non-finite at step 1]"),
            "Display renders the verdict: {err}"
        );
        assert_eq!(
            mark_after, mark_before,
            "the failed attempt's partial series must leave the thread buffer"
        );
    }

    #[test]
    fn retry_discards_only_the_failed_attempts_series() {
        let _guard = crate::trace_test_lock();
        cae_trace::force_enabled(true);
        let mark_before = cae_trace::thread_series_mark();
        let policy = FaultPolicy { retries: 1, inject: None };
        let attempts = std::cell::Cell::new(0u32);
        let out = run_isolated(&policy, 0, 0x9, &|| {
            let attempt = attempts.get();
            attempts.set(attempt + 1);
            cae_trace::series("student.loss", 0, 2.0 + f64::from(attempt));
            assert!(attempt > 0, "first attempt dies after recording a point");
            attempt
        })
        .expect("retry succeeds");
        let kept = cae_trace::take_thread_series_since(mark_before);
        cae_trace::reset_to_env();
        assert_eq!(out, 1);
        // Only the successful attempt's point survives — retries must not
        // pollute the drained trace with duplicate steps.
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].step, 0);
        assert_eq!(kept[0].value, 3.0);
    }

    #[test]
    fn nested_kernel_parallelism_degrades_inline() {
        // Cells may call parallel_for internally; this must not deadlock.
        let out = run_indexed(8, |i| {
            let acc = std::sync::atomic::AtomicUsize::new(0);
            cae_tensor::pool::parallel_for(4, |j| {
                acc.fetch_add(i + j, std::sync::atomic::Ordering::Relaxed);
            });
            acc.into_inner()
        });
        let expect: Vec<usize> = (0..8).map(|i| 4 * i + 6).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn parallelism_values_are_case_insensitive() {
        for v in ["0", "off", "OFF", "Off", "false", "FALSE", "no", "No", " off "] {
            assert!(parallelism_disabled_by(v), "{v:?} must disable cell parallelism");
        }
        for v in ["1", "on", "true", "yes", "", "anything"] {
            assert!(!parallelism_disabled_by(v), "{v:?} must leave cell parallelism on");
        }
    }

    #[test]
    fn fault_inject_parsing() {
        assert_eq!(parse_fault_inject("0.2:7"), Some((0.2, 7)));
        assert_eq!(parse_fault_inject(" 1.5 : 42 "), Some((1.0, 42)), "prob clamps to 1");
        assert_eq!(parse_fault_inject("0:7"), None, "zero probability disables");
        assert_eq!(parse_fault_inject("-0.5:7"), None);
        assert_eq!(parse_fault_inject("0.5"), None, "missing seed");
        assert_eq!(parse_fault_inject("x:7"), None);
        assert_eq!(parse_fault_inject("0.5:x"), None);
    }

    #[test]
    fn isolated_cells_capture_panics_and_siblings_complete() {
        let out = run_indexed_isolated_with(&FaultPolicy::NONE, 9, 8, |i| {
            if i == 3 {
                panic!("cell three exploded");
            }
            i * 10
        });
        assert_eq!(out.len(), 8);
        for (i, r) in out.iter().enumerate() {
            if i == 3 {
                let e = r.as_ref().expect_err("cell 3 must fail");
                assert_eq!(e.cell, 3);
                assert_eq!(e.seed, cell_seed(9, 3));
                assert_eq!(e.message, "cell three exploded", "original message must survive");
            } else {
                assert_eq!(*r.as_ref().expect("sibling cells must complete"), i * 10);
            }
        }
    }

    #[test]
    fn isolated_boxed_cells_preserve_order_and_errors() {
        let cells: Vec<Cell<u64>> = (0..12u64)
            .map(|i| {
                Box::new(move || {
                    if i % 5 == 4 {
                        panic!("boxed cell {i} failed");
                    }
                    i * i
                }) as Cell<u64>
            })
            .collect();
        let out = run_cells_isolated_with(&FaultPolicy::NONE, 3, cells);
        for (i, r) in out.iter().enumerate() {
            if i % 5 == 4 {
                let e = r.as_ref().expect_err("must fail");
                assert_eq!(e.message, format!("boxed cell {i} failed"));
            } else {
                assert_eq!(*r.as_ref().expect("must pass"), (i * i) as u64);
            }
        }
    }

    #[test]
    fn injected_faults_fail_without_retries_and_are_absorbed_by_them() {
        // Certain injection with no retries: every cell fails with the
        // injection message.
        let certain = FaultPolicy { retries: 0, inject: Some((1.0, 7)) };
        let out = run_indexed_isolated_with(&certain, 5, 4, |i| i);
        for r in &out {
            let e = r.as_ref().expect_err("certain injection must fail");
            assert!(e.message.starts_with("injected fault"), "{}", e.message);
        }
        // Probabilistic injection with ample retries: results must equal a
        // fault-free run exactly (retries re-run the identical seed).
        let flaky = FaultPolicy { retries: 30, inject: Some((0.7, 99)) };
        let noisy = run_indexed_isolated_with(&flaky, 5, 6, |i| i as u64 + 1);
        let clean = run_indexed_isolated_with(&FaultPolicy::NONE, 5, 6, |i| i as u64 + 1);
        let noisy: Vec<u64> = noisy.into_iter().map(|r| r.expect("retries absorb faults")).collect();
        let clean: Vec<u64> = clean.into_iter().map(|r| r.expect("no faults")).collect();
        assert_eq!(noisy, clean);
    }

    #[test]
    fn retries_reuse_the_identical_cell_seed() {
        // A cell that fails once on its own must see the same derived seed
        // on the retry — determinism is preserved across recovery.
        use std::sync::atomic::{AtomicUsize, Ordering};
        let attempts = AtomicUsize::new(0);
        let policy = FaultPolicy { retries: 2, inject: None };
        let out = run_indexed_isolated_with(&policy, 11, 1, |i| {
            if attempts.fetch_add(1, Ordering::Relaxed) == 0 {
                panic!("transient failure");
            }
            let mut rng = TensorRng::seed_from(cell_seed(11, i as u64));
            rng.uniform().to_bits()
        });
        let mut rng = TensorRng::seed_from(cell_seed(11, 0));
        assert_eq!(out[0].as_ref().copied(), Ok(rng.uniform().to_bits()));
        assert_eq!(attempts.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn split_failures_partitions_in_order() {
        let results: Vec<Result<u32, CellError>> = vec![
            Ok(1),
            Err(CellError { cell: 1, seed: 0xabc, message: "x".into(), health: None }),
            Ok(3),
        ];
        let (values, failures) = split_failures(results);
        assert_eq!(values, vec![Some(1), None, Some(3)]);
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].cell, 1);
        assert_eq!(failures[0].to_string(), "cell 1 seed 0xabc: x");
    }

    #[test]
    fn fault_injection_is_deterministic_per_attempt() {
        let policy = FaultPolicy { retries: 0, inject: Some((0.5, 1234)) };
        let verdicts: Vec<bool> = (0..32).map(|a| policy.injects_fault(77, a)).collect();
        let again: Vec<bool> = (0..32).map(|a| policy.injects_fault(77, a)).collect();
        assert_eq!(verdicts, again, "injection verdicts must be pure");
        assert!(verdicts.iter().any(|&v| v), "p=0.5 over 32 attempts must inject at least once");
        assert!(!verdicts.iter().all(|&v| v), "p=0.5 over 32 attempts must also pass sometimes");
    }
}
