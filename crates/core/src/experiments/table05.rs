//! Paper Table V: NYUv2 transfer — semantic segmentation, depth estimation
//! and surface-normal prediction after data-free distillation on CIFAR-100
//! (sim).

use crate::config::ExperimentBudget;
use crate::experiments::{dense_split, distill, push_cell_row, scheduler, transfer_clone, Pair};
use crate::method::MethodSpec;
use crate::pipeline::run_data_accessible;
use crate::report::Report;
use crate::transfer::{transfer_evaluate, TaskSet, TransferMetrics};
use cae_data::dense::DensePreset;
use cae_data::presets::ClassificationPreset;
use cae_nn::models::Arch;

fn metrics_row(m: &TransferMetrics) -> Vec<f32> {
    vec![
        m.miou.unwrap_or(0.0) * 100.0,
        m.pacc.unwrap_or(0.0) * 100.0,
        m.abs_err.unwrap_or(0.0),
        m.rel_err.unwrap_or(0.0),
        m.normal_mean.unwrap_or(0.0),
        m.normal_median.unwrap_or(0.0),
        m.within_11.unwrap_or(0.0) * 100.0,
        m.within_22.unwrap_or(0.0) * 100.0,
        m.within_30.unwrap_or(0.0) * 100.0,
    ]
}

/// Runs the experiment.
pub fn run(budget: &ExperimentBudget) -> Report {
    let preset = ClassificationPreset::C100Sim;
    let pair = Pair::new(Arch::ResNet34, Arch::ResNet18);
    let (train, test) = dense_split(DensePreset::NyuSim, budget);
    let mut report = Report::new(
        "Table V",
        "NYUv2 (sim) transfer: seg / depth / normals after DFKD on CIFAR-100 (sim)",
        &[
            "mIoU", "pAcc", "AErr", "RErr", "NMean", "NMED", "11.25", "22.5", "30",
        ],
    );

    // Cells: each distills (or trains) a backbone and transfer-evaluates it
    // end to end, returning one metrics row.
    let specs = [MethodSpec::nayer_like(), MethodSpec::cae_dfkd(4)];
    let (train, test) = (&train, &test);
    let mut cells: Vec<scheduler::Cell<'_, Vec<f32>>> = vec![
        Box::new(move || {
            let (t_model, _) = run_data_accessible(preset, pair.teacher, budget);
            let m = transfer_evaluate(t_model, TaskSet::nyu(), train, test, budget.finetune_steps, 1);
            metrics_row(&m)
        }),
        Box::new(move || {
            let (s_model, _) = run_data_accessible(preset, pair.student, budget);
            let m = transfer_evaluate(s_model, TaskSet::nyu(), train, test, budget.finetune_steps, 2);
            metrics_row(&m)
        }),
    ];
    for spec in &specs {
        let idx = cells.len() as u64;
        cells.push(Box::new(move || {
            let run = distill(preset, pair, spec, budget, idx);
            let m = transfer_clone(
                run.student.as_ref(),
                pair.student,
                preset.num_classes(),
                budget,
                TaskSet::nyu(),
                train,
                test,
                3,
            );
            metrics_row(&m)
        }));
    }
    let rows = scheduler::run_cells_isolated(budget.seed, cells);
    let labels: Vec<&str> = ["Teacher", "Student"]
        .into_iter()
        .chain(specs.iter().map(|s| s.name.as_str()))
        .collect();
    for (label, outcome) in labels.into_iter().zip(rows) {
        push_cell_row(&mut report, label, outcome);
    }
    report.note("paper shape: CAE-DFKD > NAYER on every subtask, closing most of the gap to the data-accessible Student");
    report.note(&format!("budget: {budget:?}"));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[ignore = "minutes at smoke budget; exercised by the bench harness"]
    fn smoke_rows() {
        let r = run(&ExperimentBudget::smoke());
        assert_eq!(r.rows.len(), 4);
        assert_eq!(r.columns.len(), 9);
    }
}
