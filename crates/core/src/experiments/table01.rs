//! Paper Table I: image-level Mixup and contrastive learning *hurt* DFKD.
//!
//! Setting: CIFAR-100 (sim), ResNet-34 → ResNet-18. The base method is the
//! strongest existing baseline (NAYER-like, matching the paper's "Vanilla"
//! row which equals NAYER's Table II number); adding image-level Mixup or
//! two-view contrastive learning to the synthetic images degrades top-1.

use crate::config::ExperimentBudget;
use crate::experiments::{distill, push_failure_rows, scheduler, Pair};
use crate::method::MethodSpec;
use crate::report::Report;
use cae_data::presets::ClassificationPreset;
use cae_nn::models::Arch;

/// Runs the experiment.
pub fn run(budget: &ExperimentBudget) -> Report {
    let pair = Pair::new(Arch::ResNet34, Arch::ResNet18);
    let preset = ClassificationPreset::C100Sim;
    let mut report = Report::new(
        "Table I",
        "Image-level augmentation hurts DFKD (CIFAR-100 sim, ResNet-34→ResNet-18)",
        &["Top-1 Acc (%)"],
    );
    let specs = [
        MethodSpec::nayer_like().named("Vanilla"),
        MethodSpec::nayer_like().named("Vanilla").with_mixup(0.8),
        MethodSpec::nayer_like()
            .named("Vanilla")
            .with_image_contrastive(1.0),
    ];
    let outcomes = scheduler::run_indexed_isolated(budget.seed, specs.len(), |i| {
        distill(preset, pair, &specs[i], budget, i as u64).student_top1
    });
    let (accs, failures) = scheduler::split_failures(outcomes);
    for (spec, acc) in specs.iter().zip(accs) {
        report.push_row(&spec.name, [acc.map(|a| a * 100.0)]);
    }
    push_failure_rows(&mut report, &failures);
    report.note("paper shape: Vanilla > +Mixup > +Contrastive Learning (both additions hurt)");
    report.note(&format!("budget: {budget:?}"));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_produces_three_rows() {
        let r = run(&ExperimentBudget::smoke());
        assert_eq!(r.rows.len(), 3);
        assert!(r.rows.iter().all(|row| row.values[0].is_some()));
    }
}
