//! Paper Table VII: component ablation — CEND and CNCL added on top of a
//! CMI-like base, evaluated by ADE-20K (sim) transfer, for two pairs.

use crate::config::ExperimentBudget;
use crate::experiments::{dense_split, distill, push_cell_row, scheduler, transfer_clone, Pair};
use crate::method::MethodSpec;
use crate::report::Report;
use crate::transfer::TaskSet;
use cae_data::dense::DensePreset;
use cae_data::presets::ClassificationPreset;
use cae_nn::models::Arch;

/// Runs the experiment.
pub fn run(budget: &ExperimentBudget) -> Report {
    let preset = ClassificationPreset::C100Sim;
    let (train, test) = dense_split(DensePreset::AdeSim, budget);
    let mut report = Report::new(
        "Table VII",
        "Component ablation over a CMI-like base (ADE-20K sim transfer)",
        &["pAcc", "mIoU"],
    );
    // One cell per (pair × spec), flattened in row order.
    let mut plan = Vec::new();
    for pair in [
        Pair::new(Arch::ResNet34, Arch::ResNet18),
        Pair::new(Arch::Wrn40x2, Arch::Wrn40x1),
    ] {
        let specs = [
            MethodSpec::cmi_like().named("Base (CMI-like)"),
            MethodSpec::cmi_like().named("Base").with_cend(4, 0.3),
            MethodSpec::cmi_like()
                .named("Base")
                .with_cend(4, 0.3)
                .with_cncl(),
        ];
        for spec in specs {
            plan.push((pair, spec));
        }
    }
    let (train, test) = (&train, &test);
    let rows = scheduler::run_indexed_isolated(budget.seed, plan.len(), |i| {
        let (pair, spec) = &plan[i];
        let run = distill(preset, *pair, spec, budget, i as u64);
        let m = transfer_clone(
            run.student.as_ref(),
            pair.student,
            preset.num_classes(),
            budget,
            TaskSet::seg_only(),
            train,
            test,
            7,
        );
        [m.pacc.unwrap_or(0.0) * 100.0, m.miou.unwrap_or(0.0) * 100.0]
    });
    for ((pair, spec), outcome) in plan.iter().zip(rows) {
        push_cell_row(
            &mut report,
            &format!("{} [{}]", spec.name, pair.label()),
            outcome,
        );
    }
    report.note("paper shape: Base < Base+CEND < Base+CEND+CNCL for both pairs");
    report.note(&format!("budget: {budget:?}"));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[ignore = "minutes at smoke budget; exercised by the bench harness"]
    fn smoke_rows() {
        let r = run(&ExperimentBudget::smoke());
        assert_eq!(r.rows.len(), 6);
    }
}
