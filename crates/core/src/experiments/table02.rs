//! Paper Table II: small-resolution main results — five teacher→student
//! pairs on CIFAR-10 (sim) and CIFAR-100 (sim) across methods.
//!
//! Rows we re-implement on our substrate: the data-accessible Teacher and
//! Student references, vanilla generator DFKD (the DAFL/ZSKT/DFQ family),
//! DeepInversion-like optimization-based inversion, CMI-like, NAYER-like
//! and CAE-DFKD. Rows of Table II that are *cited numbers from other
//! papers* (SpaceShipNet, SSD-KD, KDCI, CCL-D) are not reproducible without
//! their code and are noted instead.

use crate::config::ExperimentBudget;
use crate::experiments::{distill, push_failure_rows, scheduler, table2_pairs};
use crate::method::MethodSpec;
use crate::pipeline::run_data_accessible;
use crate::report::Report;
use cae_data::presets::ClassificationPreset;

/// Runs the experiment.
pub fn run(budget: &ExperimentBudget) -> Report {
    let datasets = [ClassificationPreset::C100Sim, ClassificationPreset::C10Sim];
    let pairs = table2_pairs();
    let columns: Vec<String> = datasets
        .iter()
        .flat_map(|d| {
            pairs.iter().map(move |p| {
                format!(
                    "{} {}",
                    if *d == ClassificationPreset::C100Sim { "C100" } else { "C10" },
                    p.label()
                )
            })
        })
        .collect();
    let col_refs: Vec<&str> = columns.iter().map(String::as_str).collect();
    let mut report = Report::new(
        "Table II",
        "Small-resolution experiments (top-1 %, CIFAR-10/100 sims)",
        &col_refs,
    );

    let methods = [
        MethodSpec::vanilla(),
        MethodSpec::deepinv_like(),
        MethodSpec::cmi_like(),
        MethodSpec::nayer_like(),
        MethodSpec::cae_dfkd(4),
    ];

    // One flat cell list: reference cells (teacher then student per
    // dataset×pair) followed by one method cell per (method × dataset ×
    // pair). Each cell returns one top-1 accuracy; the scheduler preserves
    // cell order, so rows are assembled by slicing the result vector. Cells
    // run isolated: a failed cell leaves a `-` in its column (plus a
    // trailing FAILED row naming the cause) instead of aborting the table.
    let mut cells: Vec<scheduler::Cell<'_, f32>> = Vec::new();
    for &dataset in &datasets {
        for pair in &pairs {
            let (t, s) = (pair.teacher, pair.student);
            cells.push(Box::new(move || run_data_accessible(dataset, t, budget).1));
            cells.push(Box::new(move || run_data_accessible(dataset, s, budget).1));
        }
    }
    let ref_cells = cells.len();
    for spec in &methods {
        for &dataset in &datasets {
            for pair in &pairs {
                let pair = *pair;
                let idx = cells.len() as u64;
                cells.push(Box::new(move || {
                    distill(dataset, pair, spec, budget, idx).student_top1
                }));
            }
        }
    }
    let outcomes = scheduler::run_cells_isolated(budget.seed, cells);
    let (accs, failures) = scheduler::split_failures(outcomes);

    let mut teacher_row = Vec::new();
    let mut student_row = Vec::new();
    for chunk in accs[..ref_cells].chunks_exact(2) {
        teacher_row.push(chunk[0].map(|a| a * 100.0));
        student_row.push(chunk[1].map(|a| a * 100.0));
    }
    report.push_row("Teacher", teacher_row);
    report.push_row("Student", student_row);

    let cols = datasets.len() * pairs.len();
    for (m, spec) in methods.iter().enumerate() {
        let start = ref_cells + m * cols;
        let row: Vec<Option<f32>> = accs[start..start + cols]
            .iter()
            .map(|a| a.map(|a| a * 100.0))
            .collect();
        report.push_row(&spec.name, row);
    }
    push_failure_rows(&mut report, &failures);
    report.note("paper shape: CAE-DFKD ≥ NAYER ≥ CMI ≥ vanilla/DeepInv across pairs; close to data-accessible Student");
    report.note("rows SpaceShipNet/SSD-KD/KDCI/CCL-D are cited numbers in the paper and are not re-implemented");
    report.note(&format!("budget: {budget:?}"));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[ignore = "several minutes even at smoke budget; exercised by the bench harness"]
    fn smoke_table_has_all_rows() {
        let r = run(&ExperimentBudget::smoke());
        assert_eq!(r.rows.len(), 7);
        assert_eq!(r.columns.len(), 10);
    }

    #[test]
    #[ignore = "runs the fast budget twice (serial then parallel); minutes of wall-clock"]
    fn serial_and_parallel_runs_emit_identical_json() {
        // Per-cell seeds make every cell's RNG stream a function of
        // (budget.seed, cell_index) only, so thread count and execution
        // order must not change a single byte of the report.
        let budget = ExperimentBudget::fast();
        crate::experiments::scheduler::force_cell_parallelism(Some(false));
        let serial = run(&budget).to_json();
        crate::experiments::scheduler::force_cell_parallelism(Some(true));
        let parallel = run(&budget).to_json();
        crate::experiments::scheduler::force_cell_parallelism(None);
        assert_eq!(serial, parallel, "table02 report depends on cell scheduling");
    }
}
