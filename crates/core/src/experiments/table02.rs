//! Paper Table II: small-resolution main results — five teacher→student
//! pairs on CIFAR-10 (sim) and CIFAR-100 (sim) across methods.
//!
//! Rows we re-implement on our substrate: the data-accessible Teacher and
//! Student references, vanilla generator DFKD (the DAFL/ZSKT/DFQ family),
//! DeepInversion-like optimization-based inversion, CMI-like, NAYER-like
//! and CAE-DFKD. Rows of Table II that are *cited numbers from other
//! papers* (SpaceShipNet, SSD-KD, KDCI, CCL-D) are not reproducible without
//! their code and are noted instead.

use crate::config::ExperimentBudget;
use crate::experiments::{distill, table2_pairs};
use crate::method::MethodSpec;
use crate::pipeline::run_data_accessible;
use crate::report::Report;
use cae_data::presets::ClassificationPreset;

/// Runs the experiment.
pub fn run(budget: &ExperimentBudget) -> Report {
    let datasets = [ClassificationPreset::C100Sim, ClassificationPreset::C10Sim];
    let pairs = table2_pairs();
    let columns: Vec<String> = datasets
        .iter()
        .flat_map(|d| {
            pairs.iter().map(move |p| {
                format!(
                    "{} {}",
                    if *d == ClassificationPreset::C100Sim { "C100" } else { "C10" },
                    p.label()
                )
            })
        })
        .collect();
    let col_refs: Vec<&str> = columns.iter().map(String::as_str).collect();
    let mut report = Report::new(
        "Table II",
        "Small-resolution experiments (top-1 %, CIFAR-10/100 sims)",
        &col_refs,
    );

    let methods = [
        MethodSpec::vanilla(),
        MethodSpec::deepinv_like(),
        MethodSpec::cmi_like(),
        MethodSpec::nayer_like(),
        MethodSpec::cae_dfkd(4),
    ];

    // Reference rows.
    let mut teacher_row = Vec::new();
    let mut student_row = Vec::new();
    for &dataset in &datasets {
        for pair in &pairs {
            let (_, t_acc) = run_data_accessible(dataset, pair.teacher, budget);
            let (_, s_acc) = run_data_accessible(dataset, pair.student, budget);
            teacher_row.push(Some(t_acc * 100.0));
            student_row.push(Some(s_acc * 100.0));
        }
    }
    report.push_row("Teacher", teacher_row);
    report.push_row("Student", student_row);

    for spec in &methods {
        let mut row = Vec::new();
        for &dataset in &datasets {
            for pair in &pairs {
                let run = distill(dataset, *pair, spec, budget);
                row.push(Some(run.student_top1 * 100.0));
            }
        }
        report.push_row(&spec.name, row);
    }
    report.note("paper shape: CAE-DFKD ≥ NAYER ≥ CMI ≥ vanilla/DeepInv across pairs; close to data-accessible Student");
    report.note("rows SpaceShipNet/SSD-KD/KDCI/CCL-D are cited numbers in the paper and are not re-implemented");
    report.note(&format!("budget: {budget:?}"));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[ignore = "several minutes even at smoke budget; exercised by the bench harness"]
    fn smoke_table_has_all_rows() {
        let r = run(&ExperimentBudget::smoke());
        assert_eq!(r.rows.len(), 7);
        assert_eq!(r.columns.len(), 10);
    }
}
