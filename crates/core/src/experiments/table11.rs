//! Paper Table XI: prompt design — `"a photo of {class name}"` vs the
//! privacy-preserving `"a photo of {class index}"` — on NYUv2 (sim)
//! segmentation, for two pairs.

use crate::config::ExperimentBudget;
use crate::experiments::{dense_split, distill, push_cell_row, scheduler, transfer_clone, Pair};
use crate::method::MethodSpec;
use crate::report::Report;
use crate::transfer::TaskSet;
use cae_data::dense::DensePreset;
use cae_data::presets::ClassificationPreset;
use cae_lm::PromptTemplate;
use cae_nn::models::Arch;

/// Runs the experiment.
pub fn run(budget: &ExperimentBudget) -> Report {
    let preset = ClassificationPreset::C100Sim;
    let (train, test) = dense_split(DensePreset::NyuSim, budget);
    let mut report = Report::new(
        "Table XI",
        "Prompt design vs NYUv2 (sim) segmentation",
        &["mIoU", "pAcc"],
    );
    // One cell per (pair × prompt template), flattened in row order.
    let mut plan = Vec::new();
    for pair in [
        Pair::new(Arch::ResNet34, Arch::ResNet18),
        Pair::new(Arch::Vgg11, Arch::ResNet18),
    ] {
        for (template, label) in [
            (PromptTemplate::ClassName, "a photo of {class name}"),
            (PromptTemplate::ClassIndex, "a photo of {class index}"),
        ] {
            plan.push((pair, MethodSpec::cae_dfkd(4).with_template(template), label));
        }
    }
    let (train, test) = (&train, &test);
    let rows = scheduler::run_indexed_isolated(budget.seed, plan.len(), |i| {
        let (pair, spec, _) = &plan[i];
        let run = distill(preset, *pair, spec, budget, i as u64);
        let m = transfer_clone(
            run.student.as_ref(),
            pair.student,
            preset.num_classes(),
            budget,
            TaskSet::seg_only(),
            train,
            test,
            11,
        );
        [m.miou.unwrap_or(0.0) * 100.0, m.pacc.unwrap_or(0.0) * 100.0]
    });
    for ((pair, _, label), outcome) in plan.iter().zip(rows) {
        push_cell_row(&mut report, &format!("{} [{}]", label, pair.label()), outcome);
    }
    report.note("paper shape: class-name prompts slightly beat class-index prompts; both work");
    report.note(&format!("budget: {budget:?}"));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[ignore = "minutes at smoke budget; exercised by the bench harness"]
    fn smoke_rows() {
        let r = run(&ExperimentBudget::smoke());
        assert_eq!(r.rows.len(), 4);
    }
}
