//! Paper Table VI: ADE-20K segmentation and COCO-2017 detection transfer
//! after data-free distillation on CIFAR-100 (sim).

use crate::config::ExperimentBudget;
use crate::experiments::{dense_split, distill, push_cell_row, scheduler, Pair};
use crate::method::MethodSpec;
use crate::pipeline::run_data_accessible;
use crate::report::Report;
use crate::teacher::clone_classifier;
use crate::transfer::{transfer_evaluate, TaskSet, TransferMetrics};
use cae_data::dense::DensePreset;
use cae_data::presets::ClassificationPreset;
use cae_nn::models::Arch;
use cae_nn::module::Classifier;

fn row(ade: &TransferMetrics, coco: &TransferMetrics) -> Vec<f32> {
    vec![
        ade.pacc.unwrap_or(0.0) * 100.0,
        ade.miou.unwrap_or(0.0) * 100.0,
        coco.map.unwrap_or(0.0) * 100.0,
        coco.map50.unwrap_or(0.0) * 100.0,
        coco.map75.unwrap_or(0.0) * 100.0,
        coco.map_small.unwrap_or(0.0) * 100.0,
        coco.map_medium.unwrap_or(0.0) * 100.0,
        coco.map_large.unwrap_or(0.0) * 100.0,
    ]
}

/// Runs the experiment.
pub fn run(budget: &ExperimentBudget) -> Report {
    let preset = ClassificationPreset::C100Sim;
    let pair = Pair::new(Arch::ResNet34, Arch::ResNet18);
    let (ade_train, ade_test) = dense_split(DensePreset::AdeSim, budget);
    let (coco_train, coco_test) = dense_split(DensePreset::CocoSim, budget);
    let mut report = Report::new(
        "Table VI",
        "ADE-20K (sim) segmentation + COCO-2017 (sim) detection transfer",
        &[
            "pAcc", "mIoU", "mAP", "mAP50", "mAP75", "mAPs", "mAPm", "mAPl",
        ],
    );

    let (ade_train, ade_test) = (&ade_train, &ade_test);
    let (coco_train, coco_test) = (&coco_train, &coco_test);
    let eval_both = move |backbone: &dyn Classifier, arch: Arch, seed: u64| {
        let ade_bb = clone_classifier(backbone, arch, preset.num_classes(), budget.base_width);
        let ade = transfer_evaluate(
            ade_bb,
            TaskSet::seg_only(),
            ade_train,
            ade_test,
            budget.finetune_steps,
            seed,
        );
        let coco_bb = clone_classifier(backbone, arch, preset.num_classes(), budget.base_width);
        let coco = transfer_evaluate(
            coco_bb,
            TaskSet::detection_only(),
            coco_train,
            coco_test,
            budget.finetune_steps,
            seed ^ 0xc0c0,
        );
        row(&ade, &coco)
    };

    // Cells: the two references plus one per method; each produces one row.
    let specs = [MethodSpec::cmi_like(), MethodSpec::cae_dfkd(4)];
    let eval_both = &eval_both;
    let mut cells: Vec<scheduler::Cell<'_, Vec<f32>>> = vec![
        Box::new(move || {
            let (t_model, _) = run_data_accessible(preset, pair.teacher, budget);
            eval_both(t_model.as_ref(), pair.teacher, 1)
        }),
        Box::new(move || {
            let (s_model, _) = run_data_accessible(preset, pair.student, budget);
            eval_both(s_model.as_ref(), pair.student, 2)
        }),
    ];
    for spec in &specs {
        let idx = cells.len() as u64;
        cells.push(Box::new(move || {
            let run = distill(preset, pair, spec, budget, idx);
            eval_both(run.student.as_ref(), pair.student, 3)
        }));
    }
    let rows = scheduler::run_cells_isolated(budget.seed, cells);
    let labels: Vec<&str> = ["Teacher", "Student"]
        .into_iter()
        .chain(specs.iter().map(|s| s.name.as_str()))
        .collect();
    for (label, outcome) in labels.into_iter().zip(rows) {
        push_cell_row(&mut report, label, outcome);
    }
    report.note("paper shape: CAE-DFKD > CMI on both datasets; beats the data-accessible Student on mAP_s/mAP_m");
    report.note("row SpaceShipNet is a cited number and not re-implemented");
    report.note(&format!("budget: {budget:?}"));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[ignore = "minutes at smoke budget; exercised by the bench harness"]
    fn smoke_rows() {
        let r = run(&ExperimentBudget::smoke());
        assert_eq!(r.rows.len(), 4);
        assert_eq!(r.columns.len(), 8);
    }
}
