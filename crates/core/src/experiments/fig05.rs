//! Paper Figure 5: downstream qualitative comparison.
//!
//! The paper visualizes depth and segmentation predictions; the numeric
//! proxy here is the per-pixel error summary of each method's predictions
//! on the same held-out NYUv2 (sim) images: segmentation error rate
//! (1 − pAcc) and depth absolute error. Lower is better, and the ordering
//! mirrors the visual quality ordering in the figure.

use crate::config::ExperimentBudget;
use crate::experiments::{dense_split, distill, push_cell_row, scheduler, transfer_clone, Pair};
use crate::method::MethodSpec;
use crate::pipeline::run_data_accessible;
use crate::report::Report;
use crate::transfer::{transfer_evaluate, TaskSet};
use cae_data::dense::DensePreset;
use cae_data::presets::ClassificationPreset;
use cae_nn::models::Arch;

/// Runs the experiment.
pub fn run(budget: &ExperimentBudget) -> Report {
    let preset = ClassificationPreset::C100Sim;
    let pair = Pair::new(Arch::ResNet34, Arch::ResNet18);
    let (train, test) = dense_split(DensePreset::NyuSim, budget);
    let mut report = Report::new(
        "Figure 5",
        "Downstream error-map summary (seg error rate, depth abs error)",
        &["seg err", "depth AErr"],
    );

    // Cells: the data-accessible reference plus one per method.
    let specs = [
        MethodSpec::vanilla().with_image_contrastive(1.0).named("Image-level CL"),
        MethodSpec::cae_dfkd(4).named("CAE-DFKD (embedding-level)"),
    ];
    let (train, test) = (&train, &test);
    let mut cells: Vec<scheduler::Cell<'_, [f32; 2]>> = vec![Box::new(move || {
        let (s_model, _) = run_data_accessible(preset, pair.student, budget);
        let m = transfer_evaluate(s_model, TaskSet::nyu(), train, test, budget.finetune_steps, 5);
        [1.0 - m.pacc.unwrap_or(0.0), m.abs_err.unwrap_or(0.0)]
    })];
    for spec in &specs {
        let idx = cells.len() as u64;
        cells.push(Box::new(move || {
            let run = distill(preset, pair, spec, budget, idx);
            let m = transfer_clone(
                run.student.as_ref(),
                pair.student,
                preset.num_classes(),
                budget,
                TaskSet::nyu(),
                train,
                test,
                6,
            );
            [1.0 - m.pacc.unwrap_or(0.0), m.abs_err.unwrap_or(0.0)]
        }));
    }
    let rows = scheduler::run_cells_isolated(budget.seed, cells);
    let labels: Vec<&str> = std::iter::once("Student (data-accessible)")
        .chain(specs.iter().map(|s| s.name.as_str()))
        .collect();
    for (label, outcome) in labels.into_iter().zip(rows) {
        push_cell_row(&mut report, label, outcome);
    }
    report.note("paper shape: embedding-level (CAE-DFKD) error maps are cleaner than image-level contrastive");
    report.note(&format!("budget: {budget:?}"));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[ignore = "minutes at smoke budget; exercised by the bench harness"]
    fn smoke_rows() {
        let r = run(&ExperimentBudget::smoke());
        assert_eq!(r.rows.len(), 3);
    }
}
