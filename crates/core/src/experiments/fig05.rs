//! Paper Figure 5: downstream qualitative comparison.
//!
//! The paper visualizes depth and segmentation predictions; the numeric
//! proxy here is the per-pixel error summary of each method's predictions
//! on the same held-out NYUv2 (sim) images: segmentation error rate
//! (1 − pAcc) and depth absolute error. Lower is better, and the ordering
//! mirrors the visual quality ordering in the figure.

use crate::config::ExperimentBudget;
use crate::experiments::{dense_split, distill, transfer_clone, Pair};
use crate::method::MethodSpec;
use crate::pipeline::run_data_accessible;
use crate::report::Report;
use crate::transfer::{transfer_evaluate, TaskSet};
use cae_data::dense::DensePreset;
use cae_data::presets::ClassificationPreset;
use cae_nn::models::Arch;

/// Runs the experiment.
pub fn run(budget: &ExperimentBudget) -> Report {
    let preset = ClassificationPreset::C100Sim;
    let pair = Pair::new(Arch::ResNet34, Arch::ResNet18);
    let (train, test) = dense_split(DensePreset::NyuSim, budget);
    let mut report = Report::new(
        "Figure 5",
        "Downstream error-map summary (seg error rate, depth abs error)",
        &["seg err", "depth AErr"],
    );

    let (s_model, _) = run_data_accessible(preset, pair.student, budget);
    let m = transfer_evaluate(s_model, TaskSet::nyu(), &train, &test, budget.finetune_steps, 5);
    report.push_full_row(
        "Student (data-accessible)",
        &[1.0 - m.pacc.unwrap_or(0.0), m.abs_err.unwrap_or(0.0)],
    );

    for spec in [
        MethodSpec::vanilla().with_image_contrastive(1.0).named("Image-level CL"),
        MethodSpec::cae_dfkd(4).named("CAE-DFKD (embedding-level)"),
    ] {
        let run = distill(preset, pair, &spec, budget);
        let m = transfer_clone(
            run.student.as_ref(),
            pair.student,
            preset.num_classes(),
            budget,
            TaskSet::nyu(),
            &train,
            &test,
            6,
        );
        report.push_full_row(
            &spec.name,
            &[1.0 - m.pacc.unwrap_or(0.0), m.abs_err.unwrap_or(0.0)],
        );
    }
    report.note("paper shape: embedding-level (CAE-DFKD) error maps are cleaner than image-level contrastive");
    report.note(&format!("budget: {budget:?}"));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[ignore = "minutes at smoke budget; exercised by the bench harness"]
    fn smoke_rows() {
        let r = run(&ExperimentBudget::smoke());
        assert_eq!(r.rows.len(), 3);
    }
}
