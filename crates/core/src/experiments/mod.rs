//! One runner per paper table/figure. Every runner takes an
//! [`ExperimentBudget`] and returns a [`Report`] with the same rows/columns
//! (modulo the substitutions documented in DESIGN.md) as the paper.

pub mod ablations;
pub mod fig02;
pub mod fig05;
pub mod scheduler;
pub mod table01;
pub mod table02;
pub mod table03;
pub mod table04;
pub mod table05;
pub mod table06;
pub mod table07;
pub mod table08;
pub mod table09;
pub mod table10;
pub mod table11;

use crate::config::ExperimentBudget;
use crate::method::MethodSpec;
use crate::pipeline::{run_dfkd, DfkdRun};
use crate::report::Report;
use crate::teacher::clone_classifier;
use crate::transfer::{transfer_evaluate, TaskSet, TransferMetrics};
use cae_data::dense::{DenseDataset, DensePreset};
use cae_data::presets::ClassificationPreset;
use cae_nn::models::Arch;
use cae_nn::module::Classifier;

/// A teacher→student architecture pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pair {
    /// Teacher architecture.
    pub teacher: Arch,
    /// Student architecture.
    pub student: Arch,
}

impl Pair {
    /// Creates a pair.
    pub fn new(teacher: Arch, student: Arch) -> Self {
        Pair { teacher, student }
    }

    /// Display label ("ResNet-34→ResNet-18").
    pub fn label(&self) -> String {
        format!("{}→{}", self.teacher.name(), self.student.name())
    }
}

/// The five small-resolution pairs of paper Table II.
pub fn table2_pairs() -> Vec<Pair> {
    vec![
        Pair::new(Arch::ResNet34, Arch::ResNet18),
        Pair::new(Arch::Vgg11, Arch::ResNet18),
        Pair::new(Arch::Wrn40x2, Arch::Wrn16x1),
        Pair::new(Arch::Wrn40x2, Arch::Wrn40x1),
        Pair::new(Arch::Wrn40x2, Arch::Wrn16x2),
    ]
}

/// Distills one cell (convenience wrapper around [`run_dfkd`]).
///
/// `cell_index` is the cell's position within its runner; the run's RNG
/// seed is derived as [`scheduler::cell_seed`]`(budget.seed, cell_index)`
/// so every cell of a table gets an independent stream and results do not
/// depend on execution order or thread count.
pub fn distill(
    preset: ClassificationPreset,
    pair: Pair,
    spec: &MethodSpec,
    budget: &ExperimentBudget,
    cell_index: u64,
) -> DfkdRun {
    let seed = scheduler::cell_seed(budget.seed, cell_index);
    run_dfkd(preset, pair.teacher, pair.student, spec, budget, seed)
}

/// Dense dataset sizes scaled by budget.
pub fn dense_sizes(budget: &ExperimentBudget) -> (usize, usize) {
    if budget.finetune_steps >= 200 {
        (160, 40)
    } else if budget.finetune_steps >= 80 {
        (96, 24)
    } else {
        (24, 8)
    }
}

/// Generates the dense train/test split for a preset under a budget.
pub fn dense_split(preset: DensePreset, budget: &ExperimentBudget) -> (DenseDataset, DenseDataset) {
    let (tr, te) = dense_sizes(budget);
    preset.generate(tr, te, budget.seed ^ 0xd53e)
}

/// Clones a distilled backbone (so one student can be fine-tuned on several
/// tasks) and transfer-evaluates it.
#[allow(clippy::too_many_arguments)]
pub fn transfer_clone(
    student: &dyn Classifier,
    arch: Arch,
    num_classes: usize,
    budget: &ExperimentBudget,
    tasks: TaskSet,
    train: &DenseDataset,
    test: &DenseDataset,
    seed: u64,
) -> TransferMetrics {
    let backbone = clone_classifier(student, arch, num_classes, budget.base_width);
    transfer_evaluate(backbone, tasks, train, test, budget.finetune_steps, seed)
}

/// One registered experiment runner: a stable id, a human title and the
/// `run` entry point. The registry is the single authority every consumer
/// (bench bins, benches, the CLI, examples) looks experiments up in, so
/// adding a runner module means adding exactly one entry here.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentEntry {
    /// Stable lookup id, equal to the runner module's name ("table02").
    pub id: &'static str,
    /// Short human-readable title.
    pub title: &'static str,
    /// Whether the paper itself reports this table/figure (the ablation
    /// suite is ours and is excluded from paper-order sweeps).
    pub in_paper: bool,
    /// The runner.
    pub run: fn(&ExperimentBudget) -> Report,
}

impl ExperimentEntry {
    /// Runs the experiment inside an `experiment` trace span tagged with
    /// the registry id, so a drained trace attributes every interval to
    /// the table that produced it.
    pub fn run_traced(&self, budget: &ExperimentBudget) -> Report {
        let _sp = cae_trace::span_with("experiment", &[("id", self.id.into())]);
        (self.run)(budget)
    }
}

/// Every experiment, in paper order (tables and figures interleaved as the
/// paper presents them), with the ablation suite last.
pub const REGISTRY: &[ExperimentEntry] = &[
    ExperimentEntry {
        id: "table01",
        title: "Image-level augmentation hurts DFKD",
        in_paper: true,
        run: table01::run,
    },
    ExperimentEntry {
        id: "fig02",
        title: "Per-category confidence and augmentation-ambiguity diagnostics",
        in_paper: true,
        run: fig02::run,
    },
    ExperimentEntry {
        id: "table02",
        title: "Small-resolution main results (CIFAR-10/100 sims)",
        in_paper: true,
        run: table02::run,
    },
    ExperimentEntry {
        id: "table03",
        title: "Medium-resolution results (Tiny-ImageNet sim)",
        in_paper: true,
        run: table03::run,
    },
    ExperimentEntry {
        id: "table04",
        title: "Large-resolution results (ImageNet-1K sim)",
        in_paper: true,
        run: table04::run,
    },
    ExperimentEntry {
        id: "table05",
        title: "NYUv2 (sim) transfer: seg / depth / normals",
        in_paper: true,
        run: table05::run,
    },
    ExperimentEntry {
        id: "table06",
        title: "ADE-20K (sim) segmentation + COCO-2017 (sim) detection transfer",
        in_paper: true,
        run: table06::run,
    },
    ExperimentEntry {
        id: "table07",
        title: "Component ablation over a CMI-like base (ADE-20K sim transfer)",
        in_paper: true,
        run: table07::run,
    },
    ExperimentEntry {
        id: "table08",
        title: "Noise-source count N vs downstream mIoU (NYUv2 sim)",
        in_paper: true,
        run: table08::run,
    },
    ExperimentEntry {
        id: "table09",
        title: "DFKD convergence with vs without CEND",
        in_paper: true,
        run: table09::run,
    },
    ExperimentEntry {
        id: "table10",
        title: "Language-model choice vs COCO-2017 (sim) mAP@50",
        in_paper: true,
        run: table10::run,
    },
    ExperimentEntry {
        id: "table11",
        title: "Prompt design vs NYUv2 (sim) segmentation",
        in_paper: true,
        run: table11::run,
    },
    ExperimentEntry {
        id: "fig05",
        title: "Downstream error-map summary (seg error, depth abs error)",
        in_paper: true,
        run: fig05::run,
    },
    ExperimentEntry {
        id: "ablations",
        title: "Design-choice ablations (memory, λ_adv, CEND magnitude)",
        in_paper: false,
        run: ablations::run,
    },
];

/// The registry, ordered as [`REGISTRY`].
pub fn registry() -> &'static [ExperimentEntry] {
    REGISTRY
}

/// Looks an experiment up by id.
pub fn find(id: &str) -> Option<&'static ExperimentEntry> {
    REGISTRY.iter().find(|e| e.id == id)
}

/// Runs an experiment by registry id (traced); `None` for unknown ids.
pub fn run_by_id(id: &str, budget: &ExperimentBudget) -> Option<Report> {
    find(id).map(|e| e.run_traced(budget))
}

/// Runs every table and figure the paper reports, in paper order.
pub fn run_all(budget: &ExperimentBudget) -> Vec<Report> {
    registry()
        .iter()
        .filter(|e| e.in_paper)
        .map(|e| e.run_traced(budget))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pairs_match_paper_table2() {
        let pairs = table2_pairs();
        assert_eq!(pairs.len(), 5);
        assert_eq!(pairs[0].label(), "ResNet-34→ResNet-18");
    }

    #[test]
    fn dense_sizes_scale_with_budget() {
        let (smoke_tr, _) = dense_sizes(&ExperimentBudget::smoke());
        let (fast_tr, _) = dense_sizes(&ExperimentBudget::fast());
        let (full_tr, _) = dense_sizes(&ExperimentBudget::full());
        assert!(smoke_tr < fast_tr && fast_tr < full_tr);
    }

    #[test]
    fn registry_covers_every_runner_module_exactly_once() {
        // Registry ids equal runner module names, so the source directory
        // is the ground truth: every `experiments/*.rs` file except the
        // infrastructure modules must appear in the registry exactly once.
        let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("src/experiments");
        let mut modules: Vec<String> = std::fs::read_dir(&dir)
            .expect("experiments source dir readable")
            .map(|e| e.expect("dir entry").file_name().to_string_lossy().into_owned())
            .filter_map(|name| name.strip_suffix(".rs").map(str::to_owned))
            .filter(|stem| stem != "mod" && stem != "scheduler")
            .collect();
        modules.sort();
        let mut ids: Vec<String> = registry().iter().map(|e| e.id.to_owned()).collect();
        ids.sort();
        assert_eq!(
            ids, modules,
            "registry ids must match the runner modules one-to-one"
        );
        let mut dedup = ids.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), registry().len(), "duplicate registry id");
    }

    #[test]
    fn registry_lookup_and_paper_order() {
        assert!(find("table02").is_some());
        assert!(find("nope").is_none());
        assert!(run_by_id("nope", &ExperimentBudget::smoke()).is_none());
        let paper: Vec<&str> = registry().iter().filter(|e| e.in_paper).map(|e| e.id).collect();
        assert_eq!(paper.len(), 13, "eleven tables plus fig02/fig05");
        assert_eq!(paper.first(), Some(&"table01"));
        assert_eq!(paper.last(), Some(&"fig05"));
        assert!(registry().iter().all(|e| !e.title.is_empty()));
    }
}
