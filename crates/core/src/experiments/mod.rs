//! One runner per paper table/figure. Every runner takes an
//! [`ExperimentBudget`] and returns a [`Report`] with the same rows/columns
//! (modulo the substitutions documented in DESIGN.md) as the paper.

pub mod ablations;
pub mod fig02;
pub mod fig05;
pub mod scheduler;
pub mod table01;
pub mod table02;
pub mod table03;
pub mod table04;
pub mod table05;
pub mod table06;
pub mod table07;
pub mod table08;
pub mod table09;
pub mod table10;
pub mod table11;

use crate::config::ExperimentBudget;
use crate::method::MethodSpec;
use crate::pipeline::{run_dfkd, DfkdRun};
use crate::report::{IntoRowValues, Report};
use crate::teacher::clone_classifier;
use scheduler::CellError;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use crate::transfer::{transfer_evaluate, TaskSet, TransferMetrics};
use cae_data::dense::{DenseDataset, DensePreset};
use cae_data::presets::ClassificationPreset;
use cae_nn::models::Arch;
use cae_nn::module::Classifier;

/// A teacher→student architecture pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pair {
    /// Teacher architecture.
    pub teacher: Arch,
    /// Student architecture.
    pub student: Arch,
}

impl Pair {
    /// Creates a pair.
    pub fn new(teacher: Arch, student: Arch) -> Self {
        Pair { teacher, student }
    }

    /// Display label ("ResNet-34→ResNet-18").
    pub fn label(&self) -> String {
        format!("{}→{}", self.teacher.name(), self.student.name())
    }
}

/// The five small-resolution pairs of paper Table II.
pub fn table2_pairs() -> Vec<Pair> {
    vec![
        Pair::new(Arch::ResNet34, Arch::ResNet18),
        Pair::new(Arch::Vgg11, Arch::ResNet18),
        Pair::new(Arch::Wrn40x2, Arch::Wrn16x1),
        Pair::new(Arch::Wrn40x2, Arch::Wrn40x1),
        Pair::new(Arch::Wrn40x2, Arch::Wrn16x2),
    ]
}

/// Distills one cell (convenience wrapper around [`run_dfkd`]).
///
/// `cell_index` is the cell's position within its runner; the run's RNG
/// seed is derived as [`scheduler::cell_seed`]`(budget.seed, cell_index)`
/// so every cell of a table gets an independent stream and results do not
/// depend on execution order or thread count.
pub fn distill(
    preset: ClassificationPreset,
    pair: Pair,
    spec: &MethodSpec,
    budget: &ExperimentBudget,
    cell_index: u64,
) -> DfkdRun {
    let seed = scheduler::cell_seed(budget.seed, cell_index);
    run_dfkd(preset, pair.teacher, pair.student, spec, budget, seed)
}

/// Dense dataset sizes scaled by budget.
pub fn dense_sizes(budget: &ExperimentBudget) -> (usize, usize) {
    if budget.finetune_steps >= 200 {
        (160, 40)
    } else if budget.finetune_steps >= 80 {
        (96, 24)
    } else {
        (24, 8)
    }
}

/// Generates the dense train/test split for a preset under a budget.
pub fn dense_split(preset: DensePreset, budget: &ExperimentBudget) -> (DenseDataset, DenseDataset) {
    let (tr, te) = dense_sizes(budget);
    preset.generate(tr, te, budget.seed ^ 0xd53e)
}

/// Clones a distilled backbone (so one student can be fine-tuned on several
/// tasks) and transfer-evaluates it.
#[allow(clippy::too_many_arguments)]
pub fn transfer_clone(
    student: &dyn Classifier,
    arch: Arch,
    num_classes: usize,
    budget: &ExperimentBudget,
    tasks: TaskSet,
    train: &DenseDataset,
    test: &DenseDataset,
    seed: u64,
) -> TransferMetrics {
    let backbone = clone_classifier(student, arch, num_classes, budget.base_width);
    transfer_evaluate(backbone, tasks, train, test, budget.finetune_steps, seed)
}

/// A whole experiment failed: the runner itself panicked (outside any
/// isolated cell — e.g. during report assembly). Cell-level failures are
/// absorbed into `FAILED(...)` report rows instead (see
/// [`push_failure_rows`]); this error is the outer safety net that keeps
/// one broken table from aborting an `all_tables` sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExperimentError {
    /// Registry id of the experiment that failed.
    pub id: &'static str,
    /// The runner's original panic message.
    pub message: String,
    /// Training-health verdict over the series recorded up to the failure
    /// ([`cae_trace::health::HealthReport::summary`]); present only when
    /// tracing was enabled at failure time.
    pub health: Option<String>,
}

impl fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "experiment '{}' failed: {}", self.id, self.message)?;
        if let Some(health) = &self.health {
            write!(f, " [health: {health}]")?;
        }
        Ok(())
    }
}

impl std::error::Error for ExperimentError {}

/// One registered experiment runner: a stable id, a human title and the
/// runner entry point. The registry is the single authority every consumer
/// (bench bins, benches, the CLI, examples) looks experiments up in, so
/// adding a runner module means adding exactly one entry here.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentEntry {
    /// Stable lookup id, equal to the runner module's name ("table02").
    pub id: &'static str,
    /// Short human-readable title.
    pub title: &'static str,
    /// Whether the paper itself reports this table/figure (the ablation
    /// suite is ours and is excluded from paper-order sweeps).
    pub in_paper: bool,
    /// File stem of the report artifact the runner produces
    /// (`Report::file_stem()` of its report id, e.g. "table_ii"), declared
    /// here so resume logic can locate a run's artifact *without* running
    /// it first. `run()` asserts the two stay in sync.
    pub artifact_stem: &'static str,
    /// The runner.
    pub runner: fn(&ExperimentBudget) -> Report,
}

impl ExperimentEntry {
    /// Runs the experiment inside an `experiment` trace span tagged with
    /// the registry id, so a drained trace attributes every interval to
    /// the table that produced it. The runner executes under
    /// `catch_unwind`: a panic that escapes the runner (cell failures
    /// normally don't — they become `FAILED` rows) is returned as a typed
    /// [`ExperimentError`] carrying the original message, so sweeps over
    /// the registry can continue past one broken table.
    pub fn run(&self, budget: &ExperimentBudget) -> Result<Report, ExperimentError> {
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let _sp = cae_trace::span_with("experiment", &[("id", self.id.into())]);
            (self.runner)(budget)
        }));
        match outcome {
            Ok(report) => {
                debug_assert_eq!(
                    report.file_stem(),
                    self.artifact_stem,
                    "registry entry '{}' declares artifact stem '{}' but its report is '{}'",
                    self.id,
                    self.artifact_stem,
                    report.file_stem()
                );
                Ok(report)
            }
            Err(payload) => {
                // Snapshot (non-destructively — the caller may still want a
                // full drain) whatever series the run recorded before dying
                // and attach a health verdict explaining the blow-up.
                let health = cae_trace::enabled().then(|| {
                    cae_trace::health::HealthMonitor::default()
                        .check_events(&cae_trace::series_snapshot())
                        .summary()
                });
                Err(ExperimentError {
                    id: self.id,
                    message: scheduler::panic_message(payload.as_ref()),
                    health,
                })
            }
        }
    }
}

/// Appends one all-`None` row per cell failure, labelled
/// `FAILED(<cell> seed <seed>: <message>)`, so a partially failed table
/// still renders and records *why* each missing cell is missing. Call it
/// last so data rows keep their positions.
pub fn push_failure_rows(report: &mut Report, failures: &[CellError]) {
    for e in failures {
        report.push_row(&format!("FAILED({e})"), vec![None; report.columns.len()]);
    }
}

/// Appends one row per isolated cell outcome: a successful cell renders
/// normally under `label`, a failed one as a `FAILED(<label>: <error>)` row
/// of `-`s in the same position, keeping row order stable under partial
/// failure.
pub fn push_cell_row<V: IntoRowValues>(report: &mut Report, label: &str, outcome: Result<V, CellError>) {
    match outcome {
        Ok(values) => report.push_row(label, values),
        Err(e) => {
            report.push_row(&format!("FAILED({label}: {e})"), vec![None; report.columns.len()]);
        }
    }
}

/// Every experiment, in paper order (tables and figures interleaved as the
/// paper presents them), with the ablation suite last.
pub const REGISTRY: &[ExperimentEntry] = &[
    ExperimentEntry {
        id: "table01",
        title: "Image-level augmentation hurts DFKD",
        in_paper: true,
        artifact_stem: "table_i",
        runner: table01::run,
    },
    ExperimentEntry {
        id: "fig02",
        title: "Per-category confidence and augmentation-ambiguity diagnostics",
        in_paper: true,
        artifact_stem: "figure_2",
        runner: fig02::run,
    },
    ExperimentEntry {
        id: "table02",
        title: "Small-resolution main results (CIFAR-10/100 sims)",
        in_paper: true,
        artifact_stem: "table_ii",
        runner: table02::run,
    },
    ExperimentEntry {
        id: "table03",
        title: "Medium-resolution results (Tiny-ImageNet sim)",
        in_paper: true,
        artifact_stem: "table_iii",
        runner: table03::run,
    },
    ExperimentEntry {
        id: "table04",
        title: "Large-resolution results (ImageNet-1K sim)",
        in_paper: true,
        artifact_stem: "table_iv",
        runner: table04::run,
    },
    ExperimentEntry {
        id: "table05",
        title: "NYUv2 (sim) transfer: seg / depth / normals",
        in_paper: true,
        artifact_stem: "table_v",
        runner: table05::run,
    },
    ExperimentEntry {
        id: "table06",
        title: "ADE-20K (sim) segmentation + COCO-2017 (sim) detection transfer",
        in_paper: true,
        artifact_stem: "table_vi",
        runner: table06::run,
    },
    ExperimentEntry {
        id: "table07",
        title: "Component ablation over a CMI-like base (ADE-20K sim transfer)",
        in_paper: true,
        artifact_stem: "table_vii",
        runner: table07::run,
    },
    ExperimentEntry {
        id: "table08",
        title: "Noise-source count N vs downstream mIoU (NYUv2 sim)",
        in_paper: true,
        artifact_stem: "table_viii",
        runner: table08::run,
    },
    ExperimentEntry {
        id: "table09",
        title: "DFKD convergence with vs without CEND",
        in_paper: true,
        artifact_stem: "table_ix",
        runner: table09::run,
    },
    ExperimentEntry {
        id: "table10",
        title: "Language-model choice vs COCO-2017 (sim) mAP@50",
        in_paper: true,
        artifact_stem: "table_x",
        runner: table10::run,
    },
    ExperimentEntry {
        id: "table11",
        title: "Prompt design vs NYUv2 (sim) segmentation",
        in_paper: true,
        artifact_stem: "table_xi",
        runner: table11::run,
    },
    ExperimentEntry {
        id: "fig05",
        title: "Downstream error-map summary (seg error, depth abs error)",
        in_paper: true,
        artifact_stem: "figure_5",
        runner: fig05::run,
    },
    ExperimentEntry {
        id: "ablations",
        title: "Design-choice ablations (memory, λ_adv, CEND magnitude)",
        in_paper: false,
        artifact_stem: "ablations",
        runner: ablations::run,
    },
];

/// The registry, ordered as [`REGISTRY`].
pub fn registry() -> &'static [ExperimentEntry] {
    REGISTRY
}

/// Looks an experiment up by id.
pub fn find(id: &str) -> Option<&'static ExperimentEntry> {
    REGISTRY.iter().find(|e| e.id == id)
}

/// Runs an experiment by registry id (traced, fault-isolated); `None` for
/// unknown ids, `Some(Err(..))` if the runner itself panicked.
pub fn run_by_id(id: &str, budget: &ExperimentBudget) -> Option<Result<Report, ExperimentError>> {
    find(id).map(|e| e.run(budget))
}

/// Runs every table and figure the paper reports, in paper order. One
/// failed experiment yields its `Err` slot; the sweep continues.
pub fn run_all(budget: &ExperimentBudget) -> Vec<Result<Report, ExperimentError>> {
    registry()
        .iter()
        .filter(|e| e.in_paper)
        .map(|e| e.run(budget))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pairs_match_paper_table2() {
        let pairs = table2_pairs();
        assert_eq!(pairs.len(), 5);
        assert_eq!(pairs[0].label(), "ResNet-34→ResNet-18");
    }

    #[test]
    fn dense_sizes_scale_with_budget() {
        let (smoke_tr, _) = dense_sizes(&ExperimentBudget::smoke());
        let (fast_tr, _) = dense_sizes(&ExperimentBudget::fast());
        let (full_tr, _) = dense_sizes(&ExperimentBudget::full());
        assert!(smoke_tr < fast_tr && fast_tr < full_tr);
    }

    #[test]
    fn registry_covers_every_runner_module_exactly_once() {
        // Registry ids equal runner module names, so the source directory
        // is the ground truth: every `experiments/*.rs` file except the
        // infrastructure modules must appear in the registry exactly once.
        let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("src/experiments");
        let mut modules: Vec<String> = std::fs::read_dir(&dir)
            .expect("experiments source dir readable")
            .map(|e| e.expect("dir entry").file_name().to_string_lossy().into_owned())
            .filter_map(|name| name.strip_suffix(".rs").map(str::to_owned))
            .filter(|stem| stem != "mod" && stem != "scheduler")
            .collect();
        modules.sort();
        let mut ids: Vec<String> = registry().iter().map(|e| e.id.to_owned()).collect();
        ids.sort();
        assert_eq!(
            ids, modules,
            "registry ids must match the runner modules one-to-one"
        );
        let mut dedup = ids.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), registry().len(), "duplicate registry id");
    }

    #[test]
    fn registry_lookup_and_paper_order() {
        assert!(find("table02").is_some());
        assert!(find("nope").is_none());
        assert!(run_by_id("nope", &ExperimentBudget::smoke()).is_none());
        let paper: Vec<&str> = registry().iter().filter(|e| e.in_paper).map(|e| e.id).collect();
        assert_eq!(paper.len(), 13, "eleven tables plus fig02/fig05");
        assert_eq!(paper.first(), Some(&"table01"));
        assert_eq!(paper.last(), Some(&"fig05"));
        assert!(registry().iter().all(|e| !e.title.is_empty()));
    }

    #[test]
    fn artifact_stems_are_unique_and_filesystem_safe() {
        let mut stems: Vec<&str> = registry().iter().map(|e| e.artifact_stem).collect();
        stems.sort_unstable();
        let mut dedup = stems.clone();
        dedup.dedup();
        assert_eq!(dedup, stems, "artifact stems must be unique");
        for stem in stems {
            assert!(!stem.is_empty());
            assert!(
                stem.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'),
                "stem {stem:?} must be lowercase ascii/underscore"
            );
        }
    }

    #[test]
    fn entry_run_converts_runner_panics_into_typed_errors() {
        fn broken(_: &ExperimentBudget) -> Report {
            panic!("report assembly fell over");
        }
        let entry = ExperimentEntry {
            id: "broken",
            title: "deliberately panicking runner",
            in_paper: false,
            artifact_stem: "broken",
            runner: broken,
        };
        // Pin tracing off: with CAE_TRACE=1 in the environment the error
        // would (correctly) carry a health annotation, which is covered by
        // the scheduler/health tests. This test asserts the untraced shape.
        let _guard = crate::trace_test_lock();
        cae_trace::force_enabled(false);
        let err = entry.run(&ExperimentBudget::smoke()).expect_err("must fail");
        cae_trace::reset_to_env();
        assert_eq!(err.id, "broken");
        assert_eq!(err.message, "report assembly fell over");
        assert_eq!(err.health, None);
        assert_eq!(
            err.to_string(),
            "experiment 'broken' failed: report assembly fell over"
        );
    }

    #[test]
    fn failure_rows_render_reason_and_preserve_columns() {
        let mut report = Report::new("Table F", "demo", &["a", "b"]);
        report.push_row("ok", [1.0, 2.0]);
        push_failure_rows(
            &mut report,
            &[CellError { cell: 4, seed: 0x2a, message: "boom".into(), health: None }],
        );
        push_cell_row(&mut report, "late", Err::<[f32; 2], _>(CellError {
            cell: 5,
            seed: 0x2b,
            message: "bang".into(),
            health: Some("student.loss: non-finite at step 7".into()),
        }));
        push_cell_row(&mut report, "fine", Ok([3.0, 4.0]));
        assert_eq!(report.rows.len(), 4);
        assert_eq!(report.rows[1].label, "FAILED(cell 4 seed 0x2a: boom)");
        assert_eq!(report.rows[1].values, vec![None, None]);
        assert_eq!(
            report.rows[2].label,
            "FAILED(late: cell 5 seed 0x2b: bang [health: student.loss: non-finite at step 7])"
        );
        assert_eq!(report.cell("fine", "b"), Some(4.0));
    }
}
