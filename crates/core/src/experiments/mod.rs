//! One runner per paper table/figure. Every runner takes an
//! [`ExperimentBudget`] and returns a [`Report`] with the same rows/columns
//! (modulo the substitutions documented in DESIGN.md) as the paper.

pub mod ablations;
pub mod fig02;
pub mod fig05;
pub mod scheduler;
pub mod table01;
pub mod table02;
pub mod table03;
pub mod table04;
pub mod table05;
pub mod table06;
pub mod table07;
pub mod table08;
pub mod table09;
pub mod table10;
pub mod table11;

use crate::config::ExperimentBudget;
use crate::method::MethodSpec;
use crate::pipeline::{run_dfkd, DfkdRun};
use crate::report::Report;
use crate::teacher::clone_classifier;
use crate::transfer::{transfer_evaluate, TaskSet, TransferMetrics};
use cae_data::dense::{DenseDataset, DensePreset};
use cae_data::presets::ClassificationPreset;
use cae_nn::models::Arch;
use cae_nn::module::Classifier;

/// A teacher→student architecture pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pair {
    /// Teacher architecture.
    pub teacher: Arch,
    /// Student architecture.
    pub student: Arch,
}

impl Pair {
    /// Creates a pair.
    pub fn new(teacher: Arch, student: Arch) -> Self {
        Pair { teacher, student }
    }

    /// Display label ("ResNet-34→ResNet-18").
    pub fn label(&self) -> String {
        format!("{}→{}", self.teacher.name(), self.student.name())
    }
}

/// The five small-resolution pairs of paper Table II.
pub fn table2_pairs() -> Vec<Pair> {
    vec![
        Pair::new(Arch::ResNet34, Arch::ResNet18),
        Pair::new(Arch::Vgg11, Arch::ResNet18),
        Pair::new(Arch::Wrn40x2, Arch::Wrn16x1),
        Pair::new(Arch::Wrn40x2, Arch::Wrn40x1),
        Pair::new(Arch::Wrn40x2, Arch::Wrn16x2),
    ]
}

/// Distills one cell (convenience wrapper around [`run_dfkd`]).
///
/// `cell_index` is the cell's position within its runner; the run's RNG
/// seed is derived as [`scheduler::cell_seed`]`(budget.seed, cell_index)`
/// so every cell of a table gets an independent stream and results do not
/// depend on execution order or thread count.
pub fn distill(
    preset: ClassificationPreset,
    pair: Pair,
    spec: &MethodSpec,
    budget: &ExperimentBudget,
    cell_index: u64,
) -> DfkdRun {
    let seed = scheduler::cell_seed(budget.seed, cell_index);
    run_dfkd(preset, pair.teacher, pair.student, spec, budget, seed)
}

/// Dense dataset sizes scaled by budget.
pub fn dense_sizes(budget: &ExperimentBudget) -> (usize, usize) {
    if budget.finetune_steps >= 200 {
        (160, 40)
    } else if budget.finetune_steps >= 80 {
        (96, 24)
    } else {
        (24, 8)
    }
}

/// Generates the dense train/test split for a preset under a budget.
pub fn dense_split(preset: DensePreset, budget: &ExperimentBudget) -> (DenseDataset, DenseDataset) {
    let (tr, te) = dense_sizes(budget);
    preset.generate(tr, te, budget.seed ^ 0xd53e)
}

/// Clones a distilled backbone (so one student can be fine-tuned on several
/// tasks) and transfer-evaluates it.
#[allow(clippy::too_many_arguments)]
pub fn transfer_clone(
    student: &dyn Classifier,
    arch: Arch,
    num_classes: usize,
    budget: &ExperimentBudget,
    tasks: TaskSet,
    train: &DenseDataset,
    test: &DenseDataset,
    seed: u64,
) -> TransferMetrics {
    let backbone = clone_classifier(student, arch, num_classes, budget.base_width);
    transfer_evaluate(backbone, tasks, train, test, budget.finetune_steps, seed)
}

/// Runs every table and figure, returning reports in paper order.
pub fn run_all(budget: &ExperimentBudget) -> Vec<Report> {
    vec![
        table01::run(budget),
        fig02::run(budget),
        table02::run(budget),
        table03::run(budget),
        table04::run(budget),
        table05::run(budget),
        table06::run(budget),
        table07::run(budget),
        table08::run(budget),
        table09::run(budget),
        table10::run(budget),
        table11::run(budget),
        fig05::run(budget),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pairs_match_paper_table2() {
        let pairs = table2_pairs();
        assert_eq!(pairs.len(), 5);
        assert_eq!(pairs[0].label(), "ResNet-34→ResNet-18");
    }

    #[test]
    fn dense_sizes_scale_with_budget() {
        let (smoke_tr, _) = dense_sizes(&ExperimentBudget::smoke());
        let (fast_tr, _) = dense_sizes(&ExperimentBudget::fast());
        let (full_tr, _) = dense_sizes(&ExperimentBudget::full());
        assert!(smoke_tr < fast_tr && fast_tr < full_tr);
    }
}
