//! Paper Table IV: large resolution (ImageNet-1K sim),
//! ResNet-50 → ResNet-50.

use crate::config::ExperimentBudget;
use crate::experiments::{distill, Pair};
use crate::method::MethodSpec;
use crate::pipeline::run_data_accessible;
use crate::report::Report;
use cae_data::presets::ClassificationPreset;
use cae_nn::models::Arch;

/// Runs the experiment.
pub fn run(budget: &ExperimentBudget) -> Report {
    let preset = ClassificationPreset::ImageNetSim;
    let pair = Pair::new(Arch::ResNet50, Arch::ResNet50);
    let mut report = Report::new(
        "Table IV",
        "Large-resolution experiments (ImageNet-1K sim, ResNet-50→ResNet-50, top-1 %)",
        &["Top-1 Acc (%)"],
    );
    let (_, t_acc) = run_data_accessible(preset, pair.teacher, budget);
    report.push_full_row("Teacher", &[t_acc * 100.0]);
    report.push_full_row("Student", &[t_acc * 100.0]); // same architecture/pipeline as teacher
    for spec in [
        MethodSpec::vanilla().named("FM-like (vanilla fast DFKD)"),
        MethodSpec::deepinv_like(),
        MethodSpec::nayer_like(),
        MethodSpec::cae_dfkd(4),
    ] {
        let run = distill(preset, pair, &spec, budget);
        report.push_full_row(&spec.name, &[run.student_top1 * 100.0]);
    }
    report.note("paper shape: CAE-DFKD > NAYER > DeepInv > FM; all below the data-accessible reference");
    report.note(&format!("budget: {budget:?}"));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[ignore = "minutes at smoke budget; exercised by the bench harness"]
    fn smoke_rows() {
        let r = run(&ExperimentBudget::smoke());
        assert_eq!(r.rows.len(), 6);
    }
}
