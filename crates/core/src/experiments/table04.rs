//! Paper Table IV: large resolution (ImageNet-1K sim),
//! ResNet-50 → ResNet-50.

use crate::config::ExperimentBudget;
use crate::experiments::{distill, push_failure_rows, scheduler, Pair};
use crate::method::MethodSpec;
use crate::pipeline::run_data_accessible;
use crate::report::Report;
use cae_data::presets::ClassificationPreset;
use cae_nn::models::Arch;

/// Runs the experiment.
pub fn run(budget: &ExperimentBudget) -> Report {
    let preset = ClassificationPreset::ImageNetSim;
    let pair = Pair::new(Arch::ResNet50, Arch::ResNet50);
    let mut report = Report::new(
        "Table IV",
        "Large-resolution experiments (ImageNet-1K sim, ResNet-50→ResNet-50, top-1 %)",
        &["Top-1 Acc (%)"],
    );
    let specs = [
        MethodSpec::vanilla().named("FM-like (vanilla fast DFKD)"),
        MethodSpec::deepinv_like(),
        MethodSpec::nayer_like(),
        MethodSpec::cae_dfkd(4),
    ];
    // Cells: the teacher reference, then one per method.
    let mut cells: Vec<scheduler::Cell<'_, f32>> =
        vec![Box::new(move || run_data_accessible(preset, pair.teacher, budget).1)];
    for spec in &specs {
        let idx = cells.len() as u64;
        cells.push(Box::new(move || {
            distill(preset, pair, spec, budget, idx).student_top1
        }));
    }
    let outcomes = scheduler::run_cells_isolated(budget.seed, cells);
    let (accs, failures) = scheduler::split_failures(outcomes);
    report.push_row("Teacher", [accs[0].map(|a| a * 100.0)]);
    report.push_row("Student", [accs[0].map(|a| a * 100.0)]); // same architecture/pipeline as teacher
    for (spec, acc) in specs.iter().zip(&accs[1..]) {
        report.push_row(&spec.name, [acc.map(|a| a * 100.0)]);
    }
    push_failure_rows(&mut report, &failures);
    report.note("paper shape: CAE-DFKD > NAYER > DeepInv > FM; all below the data-accessible reference");
    report.note(&format!("budget: {budget:?}"));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[ignore = "minutes at smoke budget; exercised by the bench harness"]
    fn smoke_rows() {
        let r = run(&ExperimentBudget::smoke());
        assert_eq!(r.rows.len(), 6);
    }
}
