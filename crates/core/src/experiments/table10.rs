//! Paper Table X: choice of language model (doc2vec / CLIP / SBERT) vs
//! downstream COCO mAP@50, for two pairs.

use crate::config::ExperimentBudget;
use crate::experiments::{dense_split, distill, push_failure_rows, scheduler, transfer_clone, Pair};
use crate::method::MethodSpec;
use crate::report::Report;
use crate::transfer::TaskSet;
use cae_data::dense::DensePreset;
use cae_data::presets::ClassificationPreset;
use cae_lm::LmKind;
use cae_nn::models::Arch;

/// Runs the experiment.
pub fn run(budget: &ExperimentBudget) -> Report {
    let preset = ClassificationPreset::C100Sim;
    let (train, test) = dense_split(DensePreset::CocoSim, budget);
    let mut report = Report::new(
        "Table X",
        "Language-model choice vs COCO-2017 (sim) mAP@50",
        &["doc2vec", "CLIP", "SBERT"],
    );
    // One cell per (pair × language model), flattened in row order.
    let pairs = [
        Pair::new(Arch::ResNet34, Arch::ResNet18),
        Pair::new(Arch::Wrn40x2, Arch::Wrn40x1),
    ];
    let lms = [LmKind::Doc2Vec, LmKind::Clip, LmKind::Sbert];
    let mut plan = Vec::new();
    for pair in pairs {
        for lm in lms {
            plan.push((pair, MethodSpec::cae_dfkd(4).with_lm(lm)));
        }
    }
    let (train, test) = (&train, &test);
    let outcomes = scheduler::run_indexed_isolated(budget.seed, plan.len(), |i| {
        let (pair, spec) = &plan[i];
        let run = distill(preset, *pair, spec, budget, i as u64);
        let m = transfer_clone(
            run.student.as_ref(),
            pair.student,
            preset.num_classes(),
            budget,
            TaskSet::detection_only(),
            train,
            test,
            10,
        );
        m.map50.unwrap_or(0.0) * 100.0
    });
    let (map50s, failures) = scheduler::split_failures(outcomes);
    for (p, pair) in pairs.iter().enumerate() {
        let row: Vec<Option<f32>> = map50s[p * lms.len()..(p + 1) * lms.len()].to_vec();
        report.push_row(&pair.label(), row);
    }
    push_failure_rows(&mut report, &failures);
    report.note("paper shape: all three LMs work; CLIP is slightly best");
    report.note(&format!("budget: {budget:?}"));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[ignore = "minutes at smoke budget; exercised by the bench harness"]
    fn smoke_rows() {
        let r = run(&ExperimentBudget::smoke());
        assert_eq!(r.rows.len(), 2);
        assert_eq!(r.columns.len(), 3);
    }
}
